/**
 * @file
 * Example: explore the static scheduling design space on one benchmark.
 *
 * Compares the three partitioners (native/cluster-unaware, round-robin,
 * and the paper's local scheduler) across imbalance thresholds, and
 * reports cycles, dual-distribution rate, transfer traffic, and spill
 * cost — the trade-off space of §3.
 *
 * Usage: scheduler_explorer [benchmark] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

struct Variant
{
    std::string name;
    compiler::CompileOptions options;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string bench_name = argc > 1 ? argv[1] : "compress";
    workloads::WorkloadParams wp;
    wp.scale = argc > 2 ? std::atof(argv[2]) : 0.2;

    const auto program =
        workloads::benchmarkByName(bench_name).make(wp);

    std::vector<Variant> variants;
    {
        Variant v;
        v.name = "native (cluster-unaware)";
        v.options.scheduler = compiler::SchedulerKind::Native;
        v.options.numClusters = 1;
        variants.push_back(v);
    }
    {
        Variant v;
        v.name = "round-robin";
        v.options.scheduler = compiler::SchedulerKind::RoundRobin;
        v.options.numClusters = 2;
        variants.push_back(v);
    }
    for (unsigned t : {1u, 2u, 4u, 8u}) {
        Variant v;
        v.name = "local, threshold " + std::to_string(t);
        v.options.scheduler = compiler::SchedulerKind::Local;
        v.options.numClusters = 2;
        v.options.imbalanceThreshold = t;
        variants.push_back(v);
    }

    std::cout << "Scheduler exploration on '" << bench_name
              << "' (dual-cluster 8-way machine)\n\n";
    TextTable table;
    table.header({"scheduler", "cycles", "ipc", "dual%", "op-fwd",
                  "res-fwd", "spill ld/st", "replays"});
    for (const auto &v : variants) {
        const auto out = compiler::compile(program, v.options);
        const auto s = harness::simulate(
            out.binary, out.hardwareMap(2),
            core::ProcessorConfig::dualCluster8(), 42, 300'000);
        const double total =
            static_cast<double>(s.distSingle + s.distDual);
        table.row({v.name, std::to_string(s.cycles),
                   TextTable::num(s.ipc, 2),
                   TextTable::num(total ? 100.0 * s.distDual / total : 0,
                                  1),
                   std::to_string(s.operandForwards),
                   std::to_string(s.resultForwards),
                   std::to_string(out.alloc.spillLoadsInserted) + "/" +
                       std::to_string(out.alloc.spillStoresInserted),
                   std::to_string(s.replays)});
    }
    table.print(std::cout);
    std::cout << "\n(The native binary is measured on the dual-cluster "
                 "machine — the paper's\n\"none\" baseline. Lower "
                 "dual%% usually means fewer transfers but possibly\n"
                 "worse balance; the local scheduler trades between "
                 "them.)\n";
    return 0;
}
