/**
 * @file
 * Example: building a custom workload with the full program-model API —
 * multiple functions, nested loops, branch-behaviour models, address
 * streams with different localities, and floating-point kernels — then
 * characterizing it on both machines.
 *
 * The program is a toy "molecular dynamics" step: an outer timestep
 * loop calls a force kernel (fp, stencil-like reads), applies an
 * integration update (fp multiply/add), and occasionally rebuilds a
 * neighbour list (integer, data-dependent branches).
 */

#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "prog/builder.hh"

int
main()
{
    using namespace mca;
    using isa::Op;
    using isa::RegClass;

    prog::Builder b("custom-md");
    b.globalValue(RegClass::Int, "sp");
    b.globalValue(RegClass::Int, "gp");

    const auto fn_main = b.function("main");
    const auto fn_force = b.function("force_kernel");

    // --- force kernel: strided fp reads, divide, accumulate ---------
    {
        const auto entry = b.block(fn_force, 1, "f_entry");
        const auto body = b.block(fn_force, 64, "f_body");
        const auto exit = b.block(fn_force, 1, "f_exit");
        const auto pos = b.stream(prog::AddrStream::strided(
            0x0300'0000, 8, 256 * 1024));
        const auto frc = b.stream(prog::AddrStream::strided(
            0x0340'2020, 8, 256 * 1024));

        b.setInsertPoint(fn_force, entry);
        const auto k = b.emitConst(RegClass::Int, 0, "k");
        const auto pbase = b.emitConst(RegClass::Int, 0x300000, "pb");
        const auto eps = b.emitConst(RegClass::Fp, 2, "eps");
        b.edge(fn_force, entry, body);

        b.setInsertPoint(fn_force, body);
        const auto r = b.emitLoad(Op::Ldt, pos, pbase, "r");
        const auto r2 = b.emitRRR(Op::MulF, r, r, "r2");
        const auto inv = b.emitRRR(Op::DivD, eps, r2, "inv");
        const auto f = b.emitRRR(Op::MulF, inv, r, "f");
        b.emitStore(Op::Stt, f, frc, pbase);
        b.emitRRITo(k, Op::Add, k, 1);
        const auto c = b.emitRRI(Op::CmpLt, k, 64, "c");
        b.emitBranch(Op::Bne, c, b.branch(prog::BranchModel::loop(64)));
        b.edge(fn_force, body, exit);
        b.edge(fn_force, body, body);

        b.setInsertPoint(fn_force, exit);
        b.emitRet();
    }

    // --- main: timestep loop with an occasional neighbour rebuild ----
    {
        const auto entry = b.block(fn_main, 1, "entry");
        const auto step = b.block(fn_main, 400, "step");
        const auto integrate = b.block(fn_main, 400, "integrate");
        const auto rebuild = b.block(fn_main, 40, "rebuild");
        const auto latch = b.block(fn_main, 400, "latch");
        const auto done = b.block(fn_main, 1, "done");
        const auto vel = b.stream(prog::AddrStream::strided(
            0x0380'4040, 8, 128 * 1024));
        const auto nbr = b.stream(prog::AddrStream::randomIn(
            0x03c0'6060, 96 * 1024));

        b.setInsertPoint(fn_main, entry);
        const auto t = b.emitConst(RegClass::Int, 0, "t");
        const auto vbase = b.emitConst(RegClass::Int, 0x380000, "vb");
        const auto dt = b.emitConst(RegClass::Fp, 1, "dt");
        b.edge(fn_main, entry, step);

        b.setInsertPoint(fn_main, step);
        b.emitJsr(fn_force);
        b.edge(fn_main, step, integrate);

        b.setInsertPoint(fn_main, integrate);
        const auto v = b.emitLoad(Op::Ldt, vel, vbase, "v");
        const auto dv = b.emitRRR(Op::MulF, v, dt, "dv");
        const auto v2 = b.emitRRR(Op::AddF, v, dv, "v2");
        b.emitStore(Op::Stt, v2, vel, vbase);
        // Rebuild the neighbour list every ~10th step.
        const auto drift = b.emitRRI(Op::And, t, 0xf, "drift");
        b.emitBranch(Op::Bne, drift,
                     b.branch(prog::BranchModel::bernoulli(0.1)));
        b.edge(fn_main, integrate, latch);   // usually skip
        b.edge(fn_main, integrate, rebuild); // taken: rebuild

        b.setInsertPoint(fn_main, rebuild);
        const auto cell = b.emitLoad(Op::Ldl, nbr, t, "cell");
        const auto h = b.emitRRI(Op::Srl, cell, 3, "h");
        b.emitStore(Op::Stl, h, nbr, cell);
        b.edge(fn_main, rebuild, latch);

        b.setInsertPoint(fn_main, latch);
        b.emitRRITo(t, Op::Add, t, 1);
        const auto c = b.emitRRI(Op::CmpLt, t, 400, "c");
        b.emitBranch(Op::Bne, c, b.branch(prog::BranchModel::loop(400)));
        b.edge(fn_main, latch, done);
        b.edge(fn_main, latch, step);

        b.setInsertPoint(fn_main, done);
        b.emitRet();
    }

    const prog::Program program = b.build();
    std::cout << "custom workload '" << program.name << "': "
              << program.staticInstCount() << " static instructions, "
              << program.values.size() << " live ranges\n\n";

    // Characterize on both machines with the local scheduler.
    compiler::CompileOptions nopt;
    nopt.scheduler = compiler::SchedulerKind::Native;
    nopt.numClusters = 1;
    const auto native = compiler::compile(program, nopt);

    compiler::CompileOptions lopt;
    lopt.scheduler = compiler::SchedulerKind::Local;
    lopt.numClusters = 2;
    const auto local = compiler::compile(program, lopt);
    std::cout << "local scheduler: "
              << local.partitionTrace.assignmentOrder.size()
              << " live ranges partitioned, "
              << local.alloc.spillLoadsInserted << " spill loads, "
              << local.alloc.otherClusterSpills
              << " ranges recolored into the other cluster\n\n";

    const auto single = harness::simulate(
        native.binary, native.hardwareMap(1),
        core::ProcessorConfig::singleCluster8(), 9, 500'000);
    const auto dual = harness::simulate(
        local.binary, local.hardwareMap(2),
        core::ProcessorConfig::dualCluster8(), 9, 500'000);

    std::cout << "single cluster: " << single.cycles << " cycles (ipc "
              << single.ipc << ")\n"
              << "dual cluster:   " << dual.cycles << " cycles (ipc "
              << dual.ipc << "), dual-distributed " << dual.distDual
              << " instructions, " << dual.operandForwards
              << " operand + " << dual.resultForwards
              << " result transfers\n";
    return 0;
}
