/**
 * @file
 * Quickstart: the minimal end-to-end flow of the library in ~60 lines.
 *
 *  1. Build a small program with the prog::Builder API.
 *  2. Compile it twice: cluster-unaware (the "native binary") and with
 *     the paper's local scheduler for a dual-cluster target.
 *  3. Simulate three machine/binary combinations and compare cycles —
 *     a one-program version of the paper's Table-2 methodology.
 */

#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "prog/builder.hh"

int
main()
{
    using namespace mca;
    using isa::Op;
    using isa::RegClass;

    // --- 1. a small program: sum an array and count odd elements -----
    prog::Builder b("quickstart");
    b.globalValue(RegClass::Int, "sp"); // stack pointer (global reg)
    const auto fn = b.function("main");
    const auto entry = b.block(fn, 1, "entry");
    const auto body = b.block(fn, 5000, "body");
    const auto odd = b.block(fn, 2500, "odd");
    const auto latch = b.block(fn, 5000, "latch");
    const auto done = b.block(fn, 1, "done");

    const auto array = b.stream(prog::AddrStream::strided(
        0x0100'0000, 8, 512 * 1024));
    const auto out = b.stream(prog::AddrStream::fixed(0x0200'0000));

    b.setInsertPoint(fn, entry);
    const auto i = b.emitConst(RegClass::Int, 0, "i");
    const auto sum = b.emitConst(RegClass::Int, 0, "sum");
    const auto odds = b.emitConst(RegClass::Int, 0, "odds");
    const auto base = b.emitConst(RegClass::Int, 0x0100'0000, "base");
    b.edge(fn, entry, body);

    b.setInsertPoint(fn, body);
    const auto x = b.emitLoad(Op::Ldl, array, base, "x");
    b.emitRRRTo(sum, Op::Add, sum, x);
    const auto bit = b.emitRRI(Op::And, x, 1, "bit");
    b.emitBranch(Op::Bne, bit,
                 b.branch(prog::BranchModel::bernoulli(0.5)));
    b.edge(fn, body, latch); // even: fall through
    b.edge(fn, body, odd);   // odd: taken

    b.setInsertPoint(fn, odd);
    b.emitRRITo(odds, Op::Add, odds, 1);
    b.edge(fn, odd, latch);

    b.setInsertPoint(fn, latch);
    b.emitRRITo(i, Op::Add, i, 1);
    const auto c = b.emitRRI(Op::CmpLt, i, 5000, "c");
    b.emitBranch(Op::Bne, c, b.branch(prog::BranchModel::loop(5000)));
    b.edge(fn, latch, done);
    b.edge(fn, latch, body);

    b.setInsertPoint(fn, done);
    b.emitStore(Op::Stl, sum, out, base);
    b.emitRet();
    const prog::Program program = b.build();

    // --- 2. compile both ways -------------------------------------
    compiler::CompileOptions native_opt;
    native_opt.scheduler = compiler::SchedulerKind::Native;
    native_opt.numClusters = 1;
    const auto native = compiler::compile(program, native_opt);

    compiler::CompileOptions local_opt;
    local_opt.scheduler = compiler::SchedulerKind::Local;
    local_opt.numClusters = 2;
    const auto local = compiler::compile(program, local_opt);

    // --- 3. simulate ---------------------------------------------------
    const auto single = harness::simulate(
        native.binary, native.hardwareMap(1),
        core::ProcessorConfig::singleCluster8(), 42, 1'000'000);
    const auto dual_none = harness::simulate(
        native.binary, native.hardwareMap(2),
        core::ProcessorConfig::dualCluster8(), 42, 1'000'000);
    const auto dual_local = harness::simulate(
        local.binary, local.hardwareMap(2),
        core::ProcessorConfig::dualCluster8(), 42, 1'000'000);

    auto report = [&](const char *name, const harness::RunStats &s) {
        std::cout << name << ": " << s.cycles << " cycles, ipc "
                  << s.ipc << ", dual-distributed " << s.distDual
                  << " of " << (s.distSingle + s.distDual)
                  << " instructions\n";
    };
    std::cout << "quickstart program, " << single.retired
              << " dynamic instructions\n\n";
    report("8-way single cluster (native binary) ", single);
    report("dual cluster        (native binary) ", dual_none);
    report("dual cluster        (local sched)   ", dual_local);

    const double pct_none =
        100.0 - 100.0 * double(dual_none.cycles) / double(single.cycles);
    const double pct_local =
        100.0 - 100.0 * double(dual_local.cycles) / double(single.cycles);
    std::cout << "\nTable-2-style ratios: none "
              << (pct_none >= 0 ? "+" : "") << pct_none << "%, local "
              << (pct_local >= 0 ? "+" : "") << pct_local << "%\n";
    return 0;
}
