/**
 * @file
 * Example: using the delay model to answer the paper's headline
 * question for *your* workload — "at which feature size does the
 * multicluster organization win?"
 *
 * Runs one benchmark through the Table-2 methodology, then sweeps
 * feature sizes to find the crossover where the dual-cluster machine's
 * faster clock outweighs its extra cycles.
 *
 * Usage: cycletime_tradeoff [benchmark] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "support/table.hh"
#include "timing/delay_model.hh"

int
main(int argc, char **argv)
{
    using namespace mca;

    const std::string bench_name = argc > 1 ? argv[1] : "tomcatv";
    harness::ExperimentOptions opt;
    opt.workload.scale = argc > 2 ? std::atof(argv[2]) : 0.2;
    opt.maxInsts = 150'000;

    const auto row = harness::runTable2Row(
        workloads::benchmarkByName(bench_name), opt);
    const double ratio = static_cast<double>(row.dualLocal.cycles) /
                         static_cast<double>(row.single.cycles);

    std::cout << "benchmark '" << bench_name << "': dual-cluster needs "
              << TextTable::num(100.0 * (ratio - 1.0), 1)
              << "% more cycles than the 8-way single cluster\n"
              << "required clock-period reduction to break even: "
              << TextTable::num(100.0 * timing::DelayModel::
                                    requiredClockReduction(
                                        100.0 * (ratio - 1.0)),
                                1)
              << "%\n\n";

    timing::DelayModel model;
    std::cout << "feature-size sweep (positive net = dual-cluster "
                 "wins):\n";
    TextTable table;
    table.header({"feature (um)", "clock advantage", "net speedup"});
    double crossover = 0.0;
    for (double f = 0.50; f >= 0.095; f -= 0.01) {
        const double clock_adv =
            1.0 - 1.0 / model.widthGrowthRatio(4, 8, f);
        const double net = model.netSpeedupPercent(ratio, 8, 4, f);
        if (net >= 0 && crossover == 0.0)
            crossover = f;
        // Print a coarse subset to keep the table readable.
        const bool print_row =
            std::abs(f - 0.35) < 1e-9 || std::abs(f - 0.25) < 1e-9 ||
            std::abs(f - 0.18) < 1e-9 || std::abs(f - 0.13) < 1e-9 ||
            std::abs(f - 0.50) < 1e-9 || std::abs(f - 0.10) < 1e-9;
        if (print_row)
            table.row({TextTable::num(f, 2),
                       TextTable::num(100.0 * clock_adv, 1) + "%",
                       TextTable::signedPercent(net, 1) + "%"});
    }
    table.print(std::cout);
    if (crossover > 0)
        std::cout << "\ncrossover: the dual-cluster machine wins below "
                     "roughly "
                  << TextTable::num(crossover, 2) << " um for '"
                  << bench_name << "'\n";
    else
        std::cout << "\nno crossover in the swept range\n";
    return 0;
}
