/**
 * @file
 * Example: compile one benchmark and simulate it on a chosen machine,
 * dumping the full statistics registry.
 *
 * Usage: simulate_benchmark [benchmark] [machine] [scheduler] [scale]
 *   benchmark: compress | doduc | gcc1 | ora | su2cor | tomcatv
 *   machine:   single8 | dual8 | single4 | dual4
 *   scheduler: native | local | roundrobin
 *
 * Demonstrates the full public API surface: workload generation, the
 * compilation pipeline, machine configuration, and the processor model.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "compiler/pipeline.hh"
#include "core/processor.hh"
#include "exec/trace.hh"
#include "support/stats.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace mca;

    const std::string bench_name = argc > 1 ? argv[1] : "compress";
    const std::string machine = argc > 2 ? argv[2] : "dual8";
    const std::string sched = argc > 3 ? argv[3] : "local";
    const double scale = argc > 4 ? std::atof(argv[4]) : 0.2;

    // 1. Generate the workload program.
    workloads::WorkloadParams wp;
    wp.scale = scale;
    const prog::Program program =
        workloads::benchmarkByName(bench_name).make(wp);
    std::cout << "program '" << program.name << "': "
              << program.staticInstCount() << " static instructions, "
              << program.values.size() << " live ranges\n";

    // 2. Compile it for the target machine.
    compiler::CompileOptions copt;
    if (sched == "native") {
        copt.scheduler = compiler::SchedulerKind::Native;
        copt.numClusters = 1;
    } else if (sched == "roundrobin") {
        copt.scheduler = compiler::SchedulerKind::RoundRobin;
        copt.numClusters = 2;
    } else {
        copt.scheduler = compiler::SchedulerKind::Local;
        copt.numClusters = 2;
    }
    const auto out = compiler::compile(program, copt);
    std::cout << "compiled: " << out.binary.staticInstCount()
              << " machine instructions, "
              << out.alloc.memorySpills << " ranges spilled to memory, "
              << out.alloc.otherClusterSpills
              << " recolored across clusters\n";

    // 3. Configure the machine and run.
    core::ProcessorConfig cfg;
    unsigned clusters = 2;
    if (machine == "single8") {
        cfg = core::ProcessorConfig::singleCluster8();
        clusters = 1;
    } else if (machine == "single4") {
        cfg = core::ProcessorConfig::singleCluster4();
        clusters = 1;
    } else if (machine == "dual4") {
        cfg = core::ProcessorConfig::dualCluster4();
    } else {
        cfg = core::ProcessorConfig::dualCluster8();
    }
    cfg.regMap = out.hardwareMap(clusters);

    StatGroup stats(bench_name + "@" + machine);
    exec::ProgramTrace trace(out.binary, 42, 400'000);
    core::Processor cpu(cfg, trace, stats);
    const auto result = cpu.run();

    std::cout << "simulated " << result.instructions << " instructions in "
              << result.cycles << " cycles (ipc "
              << (result.cycles
                      ? static_cast<double>(result.instructions) /
                            static_cast<double>(result.cycles)
                      : 0.0)
              << ")\n\n";
    stats.dump(std::cout);
    return 0;
}
