/**
 * @file
 * Differential lockstep tests: the Event issue engine and the idle
 * fast-forward must be cycle-exact against the reference Scan engine
 * (ISSUE: the refactor must be a pure reorganization of *when* the
 * issue logic looks at instructions, never of *what* it decides).
 *
 * Coverage: the six Table-2 benchmarks, a random fuzzer program, and
 * the pointer-chase stress workload (all on the dual-cluster machine
 * that exercises every transfer scenario), the single-cluster machine,
 * and the five §2.1 scenario reproductions. The lockstep harness (src/harness/lockstep.hh)
 * compares per-cycle retire decisions, full event timelines (per-cycle
 * issue decisions), statistics JSON, and cycle-stack attributions.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "compiler/pipeline.hh"
#include "harness/lockstep.hh"
#include "harness/scenarios.hh"
#include "runner/jobspec.hh"
#include "workloads/workloads.hh"

#include "table2_reference.hh"

namespace
{

using namespace mca;
using IssueEngine = core::ProcessorConfig::IssueEngine;

constexpr std::uint64_t kTraceSeed = 42;
constexpr std::uint64_t kMaxInsts = 40'000;

harness::LockstepResult
lockstepBenchmark(const std::string &name, bool dual)
{
    const auto &bench = workloads::benchmarkByName(name);
    const prog::Program program = bench.make({});
    compiler::CompileOptions copt = compiler::compileOptionsFor("native", 1);
    copt.profileSeed = kTraceSeed;
    const auto out = compiler::compile(program, copt);
    const auto cfg = dual ? core::ProcessorConfig::dualCluster8()
                          : core::ProcessorConfig::singleCluster8();
    return harness::runLockstep(out.binary,
                                out.hardwareMap(dual ? 2 : 1), cfg,
                                kTraceSeed, kMaxInsts);
}

class LockstepBenchmark : public testing::TestWithParam<const char *>
{
};

TEST_P(LockstepBenchmark, DualClusterEnginesAreCycleExact)
{
    const auto r = lockstepBenchmark(GetParam(), /*dual=*/true);
    EXPECT_TRUE(r.identical) << r.divergence;
    EXPECT_GT(r.retired, 0u);
}

INSTANTIATE_TEST_SUITE_P(Table2, LockstepBenchmark,
                         testing::Values("compress", "doduc", "gcc1",
                                         "ora", "su2cor", "tomcatv"));

TEST(Lockstep, SingleClusterEnginesAreCycleExact)
{
    // numClusters == 1 keeps scenarios 2-5 out of the picture; this
    // pins the wakeup bookkeeping on the degenerate machine.
    const auto r = lockstepBenchmark("compress", /*dual=*/false);
    EXPECT_TRUE(r.identical) << r.divergence;
}

TEST(Lockstep, RandomProgramIsCycleExact)
{
    workloads::RandomProgramParams rp;
    rp.seed = 7;
    rp.numFunctions = 4;
    rp.segmentsPerFunction = 8;
    rp.loopTrip = 20;
    const prog::Program program = workloads::makeRandomProgram(rp);
    compiler::CompileOptions copt = compiler::compileOptionsFor("local", 2);
    copt.profileSeed = kTraceSeed;
    const auto out = compiler::compile(program, copt);
    const auto r = harness::runLockstep(
        out.binary, out.hardwareMap(2),
        core::ProcessorConfig::dualCluster8(), kTraceSeed, kMaxInsts);
    EXPECT_TRUE(r.identical) << r.divergence;
    EXPECT_GT(r.retired, 0u);
}

TEST(Lockstep, PointerChaseIsCycleExact)
{
    // Memory-latency-bound serial load misses: the heaviest idle-skip
    // user after ora (see bench/micro_perf.cc), so pin its exactness.
    const prog::Program program =
        workloads::makePointerChase(workloads::WorkloadParams{0.1});
    compiler::CompileOptions copt = compiler::compileOptionsFor("local", 2);
    copt.profileSeed = kTraceSeed;
    const auto out = compiler::compile(program, copt);
    const auto r = harness::runLockstep(
        out.binary, out.hardwareMap(2),
        core::ProcessorConfig::dualCluster8(), kTraceSeed, kMaxInsts);
    EXPECT_TRUE(r.identical) << r.divergence;
    EXPECT_GT(r.retired, 0u);
    EXPECT_GT(r.cyclesSkipped, 0u);
}

TEST(Lockstep, FastForwardActuallySkipsCycles)
{
    // Guard against the idle fast-forward silently never firing: ora's
    // long fp-divide chains leave plenty of dead cycles to skip.
    const auto r = lockstepBenchmark("ora", /*dual=*/true);
    ASSERT_TRUE(r.identical) << r.divergence;
    EXPECT_GT(r.cyclesSkipped, 0u)
        << "idle fast-forward never skipped a cycle";
}

TEST(Lockstep, PaperModeMatchesPreRefactorTable2Reference)
{
    // Checked-in pre-MemorySystem-refactor results: default (paper
    // mode) MemoryParams must keep every Table-2 job bit-identical —
    // cycle count, retired count, and the full cycle stack. The old
    // dcache_miss cause maps to dcache_mem; dcache_l2 must stay zero
    // without an L2 (tests/table2_reference.hh).
    static_assert(obs::kNumStallCauses ==
                      std::tuple_size_v<decltype(
                          tests::Table2Reference{}.stackSlotCycles)>,
                  "taxonomy changed: regenerate tests/table2_reference.hh "
                  "with a mapping from the checked-in causes");
    for (const auto &ref : tests::kTable2Reference) {
        SCOPED_TRACE(std::string(ref.benchmark) + "/" + ref.machine +
                     "/" + ref.scheduler);
        runner::JobSpec spec;
        spec.benchmark = ref.benchmark;
        spec.machine = ref.machine;
        spec.scheduler = ref.scheduler;
        spec.scale = 0.05;
        spec.maxInsts = 20'000;
        spec.threshold = 4;
        spec.traceSeed = 42;
        spec.profileSeed = 42;
        const runner::JobResult r = runner::runJob(spec);
        ASSERT_EQ(r.status, runner::JobStatus::Ok) << r.error;
        EXPECT_EQ(r.cycles, ref.cycles);
        EXPECT_EQ(r.retired, ref.retired);
        EXPECT_EQ(r.stackSlots, ref.stackSlots);
        for (std::size_t i = 0; i < obs::kNumStallCauses; ++i)
            EXPECT_EQ(r.stackSlotCycles[i], ref.stackSlotCycles[i])
                << "stack cause "
                << obs::stallCauseName(static_cast<obs::StallCause>(i));
    }
}

TEST(Lockstep, ScenariosBitIdenticalAcrossEngines)
{
    const auto scan = harness::runScenarios(IssueEngine::Scan);
    const auto event = harness::runScenarios(IssueEngine::Event);
    ASSERT_EQ(scan.size(), event.size());
    for (std::size_t i = 0; i < scan.size(); ++i) {
        SCOPED_TRACE("scenario " + std::to_string(scan[i].number));
        EXPECT_EQ(scan[i].totalCycles, event[i].totalCycles);
        EXPECT_EQ(scan[i].dual, event[i].dual);
        auto sameStream =
            [](const std::vector<core::TimelineRecord> &a,
               const std::vector<core::TimelineRecord> &b) {
                if (a.size() != b.size())
                    return false;
                for (std::size_t j = 0; j < a.size(); ++j)
                    if (a[j].cycle != b[j].cycle ||
                        a[j].seq != b[j].seq ||
                        a[j].cluster != b[j].cluster ||
                        a[j].event != b[j].event)
                        return false;
                return true;
            };
        EXPECT_TRUE(
            sameStream(scan[i].addEvents, event[i].addEvents));
        EXPECT_TRUE(sameStream(scan[i].producerEvents,
                               event[i].producerEvents));
        EXPECT_EQ(scan[i].stack.slotCycles, event[i].stack.slotCycles);
        EXPECT_EQ(scan[i].stack.cycles, event[i].stack.cycles);
        EXPECT_TRUE(event[i].stack.conserved());
    }
}

} // namespace
