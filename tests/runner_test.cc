/**
 * @file
 * Tests for the campaign runner (src/runner): grid expansion, spec-hash
 * stability, cache hit/miss behaviour, determinism across worker
 * widths, and timeout/failure capture.
 */

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include <gtest/gtest.h>

#include "compiler/pipeline.hh"
#include "runner/campaign.hh"
#include "runner/artifact_store.hh"
#include "runner/emit.hh"
#include "runner/table2.hh"
#include "runner/thread_pool.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;
using runner::JobResult;
using runner::JobSpec;
using runner::JobStatus;

/** Tiny spec that compiles and simulates in a few milliseconds. */
JobSpec
tinySpec()
{
    JobSpec spec;
    spec.benchmark = "compress";
    spec.scale = 0.05;
    spec.maxInsts = 10'000;
    return spec;
}

/** Self-cleaning temporary directory for cache tests. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(std::filesystem::temp_directory_path() /
                ("mca_runner_test_" + tag + "_" +
                 std::to_string(::getpid())))
    {
        std::filesystem::remove_all(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    std::filesystem::path path_;
};

TEST(GridExpansion, CrossProductOrderAndSize)
{
    runner::CampaignGrid grid;
    grid.benchmarks = {"compress", "ora"};
    grid.machines = {"single8", "dual8"};
    grid.schedulers = {"native", "local"};
    grid.thresholds = {2, 4};
    grid.traceSeeds = {1, 2, 3};

    const auto specs = runner::expandGrid(grid);
    ASSERT_EQ(specs.size(), 2u * 2u * 2u * 2u * 3u);

    // Nesting order: benchmark (outer) ... traceSeed (inner).
    EXPECT_EQ(specs[0].benchmark, "compress");
    EXPECT_EQ(specs[0].machine, "single8");
    EXPECT_EQ(specs[0].scheduler, "native");
    EXPECT_EQ(specs[0].threshold, 2u);
    EXPECT_EQ(specs[0].traceSeed, 1u);
    EXPECT_EQ(specs[1].traceSeed, 2u);
    EXPECT_EQ(specs[3].threshold, 4u);
    EXPECT_EQ(specs.back().benchmark, "ora");
    EXPECT_EQ(specs.back().scheduler, "local");
    EXPECT_EQ(specs.back().traceSeed, 3u);

    // Every spec is distinct.
    std::set<std::string> keys;
    for (const auto &spec : specs)
        keys.insert(spec.canonicalKey());
    EXPECT_EQ(keys.size(), specs.size());
}

TEST(GridExpansion, SharedParametersReachEverySpec)
{
    runner::CampaignGrid grid;
    grid.scale = 0.75;
    grid.unroll = 3;
    grid.predictor = "gshare";
    grid.maxInsts = 1234;
    grid.maxCycles = 9999;
    grid.traceSeeds = {7};

    const auto specs = runner::expandGrid(grid);
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_DOUBLE_EQ(specs[0].scale, 0.75);
    EXPECT_EQ(specs[0].unroll, 3u);
    EXPECT_EQ(specs[0].predictor, "gshare");
    EXPECT_EQ(specs[0].maxInsts, 1234u);
    EXPECT_EQ(specs[0].maxCycles, 9999u);
    // profileSeed follows traceSeed by default (Table-2 convention).
    EXPECT_EQ(specs[0].profileSeed, 7u);
}

TEST(GridExpansion, EmptyAxisThrows)
{
    runner::CampaignGrid grid;
    grid.machines.clear();
    EXPECT_THROW(runner::expandGrid(grid), std::runtime_error);
}

TEST(JobSpecHash, StableAndCanonical)
{
    const JobSpec a = tinySpec();
    JobSpec b = tinySpec();
    EXPECT_EQ(a.contentHash(), b.contentHash());
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());

    // 16 lowercase hex digits.
    EXPECT_EQ(a.contentHash().size(), 16u);
    EXPECT_EQ(a.contentHash().find_first_not_of("0123456789abcdef"),
              std::string::npos);

    // The hash is a pure function of the spec: copies agree across
    // separate constructions, and the key round-trips every field that
    // can affect the outcome.
    EXPECT_NE(a.canonicalKey().find("benchmark=compress"),
              std::string::npos);
    EXPECT_NE(a.canonicalKey().find("maxInsts=10000"), std::string::npos);
}

TEST(JobSpecHash, EveryOutcomeFieldChangesTheHash)
{
    const JobSpec base = tinySpec();
    std::set<std::string> hashes = {base.contentHash()};

    auto expectFresh = [&](JobSpec spec, const char *field) {
        const auto inserted = hashes.insert(spec.contentHash()).second;
        EXPECT_TRUE(inserted) << "field did not alter the hash: " << field;
    };

    JobSpec s = base;
    s.benchmark = "ora";
    expectFresh(s, "benchmark");
    s = base;
    s.scale = 0.051;
    expectFresh(s, "scale");
    s = base;
    s.machine = "single8";
    expectFresh(s, "machine");
    s = base;
    s.scheduler = "native";
    expectFresh(s, "scheduler");
    s = base;
    s.threshold = 5;
    expectFresh(s, "threshold");
    s = base;
    s.unroll = 2;
    expectFresh(s, "unroll");
    s = base;
    s.predictor = "bimodal";
    expectFresh(s, "predictor");
    s = base;
    s.traceSeed = 43;
    expectFresh(s, "traceSeed");
    s = base;
    s.profileSeed = 43;
    expectFresh(s, "profileSeed");
    s = base;
    s.maxInsts = 10'001;
    expectFresh(s, "maxInsts");
    s = base;
    s.maxCycles = 10'000;
    expectFresh(s, "maxCycles");
}

TEST(RunJob, InvalidSpecsAreCapturedNotFatal)
{
    JobSpec spec = tinySpec();
    spec.benchmark = "nonesuch";
    const JobResult result = runner::runJob(spec);
    EXPECT_EQ(result.status, JobStatus::Failed);
    EXPECT_NE(result.error.find("nonesuch"), std::string::npos);
    // The error names the valid choices so scripts can self-correct.
    EXPECT_NE(result.error.find("compress"), std::string::npos);

    spec = tinySpec();
    spec.machine = "hex16";
    EXPECT_EQ(runner::runJob(spec).status, JobStatus::Failed);

    spec = tinySpec();
    spec.scheduler = "global";
    EXPECT_EQ(runner::runJob(spec).status, JobStatus::Failed);

    spec = tinySpec();
    spec.predictor = "oracle";
    EXPECT_EQ(runner::runJob(spec).status, JobStatus::Failed);
}

TEST(RunJob, CycleBudgetExhaustionIsTimeout)
{
    JobSpec spec = tinySpec();
    spec.maxCycles = 500; // far below what the trace needs
    const JobResult result = runner::runJob(spec);
    EXPECT_EQ(result.status, JobStatus::TimedOut);
    EXPECT_EQ(result.cycles, 500u);
    EXPECT_NE(result.error.find("cycle budget"), std::string::npos);
}

TEST(Campaign, FailuresDoNotAbortTheCampaign)
{
    std::vector<JobSpec> specs(3, tinySpec());
    specs[1].benchmark = "nonesuch";   // fails validation
    specs[2].maxCycles = 500;          // times out

    runner::CampaignOptions options;
    runner::CampaignSummary summary;
    const auto results = runner::runCampaign(specs, options, &summary);

    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].status, JobStatus::Ok);
    EXPECT_EQ(results[1].status, JobStatus::Failed);
    EXPECT_EQ(results[2].status, JobStatus::TimedOut);
    EXPECT_EQ(summary.ok, 1u);
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(summary.timedOut, 1u);
    EXPECT_EQ(summary.total, 3u);
}

TEST(Campaign, DeterministicAcrossJobWidths)
{
    runner::CampaignGrid grid;
    grid.benchmarks = {"compress", "ora"};
    grid.machines = {"single8", "dual8"};
    grid.schedulers = {"native", "local"};
    grid.scale = 0.05;
    grid.maxInsts = 10'000;
    const auto specs = runner::expandGrid(grid);

    runner::CampaignOptions serial;
    serial.jobs = 1;
    runner::CampaignOptions wide;
    wide.jobs = 4;

    const auto a = runner::runCampaign(specs, serial);
    const auto b = runner::runCampaign(specs, wide);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].spec.canonicalKey(), b[i].spec.canonicalKey());
        EXPECT_EQ(a[i].status, b[i].status) << i;
        EXPECT_EQ(a[i].cycles, b[i].cycles) << i;
        EXPECT_EQ(a[i].retired, b[i].retired) << i;
        EXPECT_EQ(a[i].distSingle, b[i].distSingle) << i;
        EXPECT_EQ(a[i].distDual, b[i].distDual) << i;
        EXPECT_EQ(a[i].replays, b[i].replays) << i;
        EXPECT_DOUBLE_EQ(a[i].ipc, b[i].ipc) << i;
        EXPECT_DOUBLE_EQ(a[i].bpredAccuracy, b[i].bpredAccuracy) << i;
    }
}

TEST(Campaign, ResultCacheHitsAndMisses)
{
    const TempDir dir("cache");
    runner::CampaignOptions options;
    options.cacheDir = dir.str();

    std::vector<JobSpec> specs = {tinySpec()};
    const auto first = runner::runCampaign(specs, options);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].status, JobStatus::Ok);
    EXPECT_FALSE(first[0].fromCache);

    // Identical spec: served from cache, identical numbers.
    const auto second = runner::runCampaign(specs, options);
    EXPECT_TRUE(second[0].fromCache);
    EXPECT_EQ(second[0].cycles, first[0].cycles);
    EXPECT_EQ(second[0].retired, first[0].retired);
    EXPECT_DOUBLE_EQ(second[0].ipc, first[0].ipc);
    EXPECT_EQ(second[0].spillLoads, first[0].spillLoads);

    // Changed point: miss, fresh simulation.
    specs[0].traceSeed = 43;
    const auto third = runner::runCampaign(specs, options);
    EXPECT_FALSE(third[0].fromCache);
}

TEST(Campaign, CacheRejectsMismatchedKey)
{
    const TempDir dir("collide");
    const JobSpec spec = tinySpec();
    const JobResult result = runner::runJob(spec);
    const runner::ArtifactStore store(dir.str());
    store.storeResult(result);

    // Corrupt the stored key: the loader must treat it as a miss (this
    // is the collision-safety path — hash matches, key does not).
    const std::string path = store.resultPath(spec);
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    const auto pos = contents.find("benchmark=compress");
    ASSERT_NE(pos, std::string::npos);
    contents.replace(pos, 18, "benchmark=tampered");
    std::ofstream(path, std::ios::trunc) << contents;

    EXPECT_FALSE(store.loadResult(spec).has_value());
}

TEST(Campaign, FailedJobsAreNotCached)
{
    const TempDir dir("nofail");
    runner::CampaignOptions options;
    options.cacheDir = dir.str();

    std::vector<JobSpec> specs = {tinySpec()};
    specs[0].benchmark = "nonesuch";
    const auto first = runner::runCampaign(specs, options);
    EXPECT_EQ(first[0].status, JobStatus::Failed);
    const auto second = runner::runCampaign(specs, options);
    EXPECT_FALSE(second[0].fromCache); // retried, not replayed
}

TEST(Campaign, TimeoutsAreCached)
{
    const TempDir dir("timeout");
    runner::CampaignOptions options;
    options.cacheDir = dir.str();

    std::vector<JobSpec> specs = {tinySpec()};
    specs[0].maxCycles = 500;
    const auto first = runner::runCampaign(specs, options);
    EXPECT_EQ(first[0].status, JobStatus::TimedOut);
    const auto second = runner::runCampaign(specs, options);
    EXPECT_TRUE(second[0].fromCache);
    EXPECT_EQ(second[0].status, JobStatus::TimedOut);
}

TEST(Campaign, ProgressCallbackSeesEveryJob)
{
    std::vector<JobSpec> specs(4, tinySpec());
    specs[1].traceSeed = 43;
    specs[2].traceSeed = 44;
    specs[3].traceSeed = 45;

    runner::CampaignOptions options;
    options.jobs = 2;
    std::size_t calls = 0;
    std::size_t lastFinished = 0;
    options.onResult = [&](std::size_t finished, std::size_t total,
                           const JobResult &) {
        ++calls;
        EXPECT_EQ(total, 4u);
        EXPECT_GT(finished, lastFinished); // monotone under the lock
        lastFinished = finished;
    };
    runner::runCampaign(specs, options);
    EXPECT_EQ(calls, 4u);
}

TEST(Table2Campaign, MatchesTheSerialHarness)
{
    harness::ExperimentOptions opt;
    opt.workload.scale = 0.05;
    opt.maxInsts = 10'000;

    // Reference: the original single-threaded harness path.
    const auto reference = harness::runTable2Row(
        workloads::allBenchmarks().front(), opt);

    runner::CampaignOptions campaign;
    campaign.jobs = 3;
    const auto result = runner::runTable2Campaign(opt, campaign);
    ASSERT_EQ(result.rows.size(), workloads::allBenchmarks().size());
    ASSERT_EQ(result.jobs.size(), 3 * result.rows.size());

    const auto &row = result.rows.front();
    EXPECT_EQ(row.benchmark, reference.benchmark);
    EXPECT_EQ(row.single.cycles, reference.single.cycles);
    EXPECT_EQ(row.dualNone.cycles, reference.dualNone.cycles);
    EXPECT_EQ(row.dualLocal.cycles, reference.dualLocal.cycles);
    EXPECT_DOUBLE_EQ(row.pctNone, reference.pctNone);
    EXPECT_DOUBLE_EQ(row.pctLocal, reference.pctLocal);
    EXPECT_EQ(row.spillLoadsLocal, reference.spillLoadsLocal);
    EXPECT_EQ(row.spillStoresLocal, reference.spillStoresLocal);
}

TEST(Emit, JsonAndCsvShapes)
{
    const JobResult result = runner::runJob(tinySpec());
    ASSERT_EQ(result.status, JobStatus::Ok);

    std::ostringstream json;
    runner::emitJsonLine(json, result);
    const std::string line = json.str();
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"benchmark\":\"compress\""), std::string::npos);
    EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(line.find("\"cycles\":" + std::to_string(result.cycles)),
              std::string::npos);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    std::ostringstream csv;
    runner::emitCsv(csv, {result});
    const std::string text = csv.str();
    // Header column count == row column count.
    const auto countCommas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    const auto nl = text.find('\n');
    ASSERT_NE(nl, std::string::npos);
    const std::string header = text.substr(0, nl);
    const std::string row = text.substr(nl + 1);
    EXPECT_EQ(countCommas(header), countCommas(row));
    EXPECT_NE(header.find("cycles"), std::string::npos);
}

TEST(ArtifactStoreTest, OneBuildPerKey)
{
    runner::ArtifactStore store;
    int builds = 0;
    auto build = [&builds] {
        ++builds;
        const auto p = workloads::makeCompress(
            workloads::WorkloadParams{0.05});
        return compiler::compile(
            p, compiler::compileOptionsFor("native", 1));
    };

    bool hit = true;
    const auto first = store.getOrCompile("k1", build, &hit);
    EXPECT_FALSE(hit);
    const auto again = store.getOrCompile("k1", build, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first.get(), again.get()); // literally the same output
    store.getOrCompile("k2", build, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(builds, 2);

    const auto stats = store.stats();
    EXPECT_EQ(stats.compileLookups, 3u);
    EXPECT_EQ(stats.compileHits, 1u);
    EXPECT_EQ(stats.compiles, 2u);
}

TEST(ArtifactStoreTest, BuilderExceptionReachesEveryWaiter)
{
    runner::ArtifactStore store;
    const auto boom = []() -> compiler::CompileOutput {
        throw std::runtime_error("boom");
    };
    EXPECT_THROW(store.getOrCompile("bad", boom), std::runtime_error);
    // The poisoned entry rethrows instead of re-running the builder.
    int builds = 0;
    EXPECT_THROW(store.getOrCompile(
                     "bad",
                     [&builds]() -> compiler::CompileOutput {
                         ++builds;
                         throw std::runtime_error("unreachable");
                     }),
                 std::runtime_error);
    EXPECT_EQ(builds, 0);
}

TEST(ArtifactStoreTest, KeyIgnoresMachineAndRunControlFields)
{
    JobSpec a = tinySpec();
    a.machine = "single8";
    JobSpec b = tinySpec();
    b.machine = "dual8";
    b.traceSeed = 99;
    b.maxInsts = 77;
    // Native compiles are cluster-blind, so both land on numClusters=1
    // and the key collapses across machines, seeds, and budgets.
    const auto copt = compiler::compileOptionsFor("native", 1);
    EXPECT_EQ(runner::ArtifactStore::compileKeyFor(a, copt),
              runner::ArtifactStore::compileKeyFor(b, copt));

    JobSpec scaled = tinySpec();
    scaled.scale = 0.1;
    EXPECT_NE(runner::ArtifactStore::compileKeyFor(a, copt),
              runner::ArtifactStore::compileKeyFor(scaled, copt));
    JobSpec other = tinySpec();
    other.benchmark = "ora";
    EXPECT_NE(runner::ArtifactStore::compileKeyFor(a, copt),
              runner::ArtifactStore::compileKeyFor(other, copt));
    EXPECT_NE(
        runner::ArtifactStore::compileKeyFor(
            a, compiler::compileOptionsFor("local", 2)),
        runner::ArtifactStore::compileKeyFor(a, copt));
}

TEST(Campaign, CompileCacheSharesCompilesAcrossTheGrid)
{
    // 2 benchmarks x {single8, dual8} x {native, local} = 8 jobs but
    // only 4 distinct compiles: native is cluster-blind, and `local`
    // on a single-cluster machine degrades to the native compile.
    runner::CampaignGrid grid;
    grid.benchmarks = {"compress", "ora"};
    grid.machines = {"single8", "dual8"};
    grid.schedulers = {"native", "local"};
    grid.scale = 0.05;
    grid.maxInsts = 10'000;
    const auto specs = runner::expandGrid(grid);
    ASSERT_EQ(specs.size(), 8u);

    runner::CampaignOptions options;
    options.jobs = 4;
    runner::CampaignSummary summary;
    const auto cached = runner::runCampaign(specs, options, &summary);
    EXPECT_EQ(summary.compiles, 4u);
    EXPECT_EQ(summary.compileHits, 4u);

    // Shared compiles change nothing observable: results match an
    // uncached serial run field for field.
    runner::CampaignOptions uncached;
    uncached.jobs = 1;
    uncached.compileCache = false;
    runner::CampaignSummary usummary;
    const auto plain = runner::runCampaign(specs, uncached, &usummary);
    EXPECT_EQ(usummary.compiles, 0u);
    ASSERT_EQ(plain.size(), cached.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].status, cached[i].status) << i;
        EXPECT_EQ(plain[i].cycles, cached[i].cycles) << i;
        EXPECT_EQ(plain[i].retired, cached[i].retired) << i;
        EXPECT_EQ(plain[i].spillLoads, cached[i].spillLoads) << i;
        EXPECT_EQ(plain[i].spillStores, cached[i].spillStores) << i;
        EXPECT_DOUBLE_EQ(plain[i].ipc, cached[i].ipc) << i;
    }
}

TEST(ThreadPoolTest, RunsEverythingAndWaits)
{
    runner::ThreadPool pool(4);
    EXPECT_EQ(pool.width(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);

    // The pool is reusable after a wait().
    pool.submit([&counter] { counter += 10; });
    pool.wait();
    EXPECT_EQ(counter.load(), 110);
}

TEST(ThreadPoolTest, WidthClampedToOne)
{
    runner::ThreadPool pool(0);
    EXPECT_EQ(pool.width(), 1u);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

} // namespace
