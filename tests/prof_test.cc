/**
 * @file
 * Host-profiler tests (src/prof).
 *
 * The contracts under test:
 *  - disabled scopes record nothing (and stay recording-free after a
 *    reset), so the default path carries no profile state;
 *  - nested scopes account self vs total time correctly: a region's
 *    total includes its children, self = total - children, and every
 *    call is counted;
 *  - the merged snapshot is deterministic across ThreadPool widths:
 *    the same sampled run at jobs=1 and jobs=3 yields trees with
 *    identical structure and call counts (only nanoseconds differ);
 *  - requesting hardware counters never breaks time profiling: when
 *    perf_event_open is unavailable the profile is still complete and
 *    says so in its header;
 *  - the JSON export is well-formed and carries the whole tree;
 *  - profiling enabled vs disabled does not perturb simulated results
 *    (bit-identical cycle and instruction counts).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "compiler/pipeline.hh"
#include "core/processor.hh"
#include "exec/trace.hh"
#include "prof/prof.hh"
#include "sample/driver.hh"
#include "sample/spec.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

/** Every test leaves the profiler the way the suite found it: off and
 *  empty. The fixture enforces that even on assertion failure. */
class ProfTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        prof::setEnabled(false);
        prof::setHwEnabled(false);
        prof::reset();
    }
};

/** Spin until the steady clock visibly advances, so a region's time is
 *  reliably nonzero without sleeping. */
void
burnClock()
{
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::microseconds(50)) {
    }
}

TEST_F(ProfTest, DisabledScopesRecordNothing)
{
    prof::reset();
    ASSERT_FALSE(prof::enabled());
    {
        PROF_SCOPE("prof_test.off");
        burnClock();
    }
    const prof::Profile p = prof::snapshot();
    EXPECT_EQ(p.threads, 0u);
    EXPECT_TRUE(p.root.children.empty());
    EXPECT_EQ(p.root.totalNs, 0u);
}

TEST_F(ProfTest, NestedScopesAccountSelfAndTotal)
{
    prof::reset();
    prof::setEnabled(true);
    for (int i = 0; i < 3; ++i) {
        PROF_SCOPE("prof_test.outer");
        burnClock();
        {
            PROF_SCOPE("prof_test.inner");
            burnClock();
        }
        {
            PROF_SCOPE("prof_test.inner");
            burnClock();
        }
    }
    prof::setEnabled(false);
    const prof::Profile p = prof::snapshot();

    const prof::ProfileNode *outer = p.root.child("prof_test.outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->calls, 3u);
    const prof::ProfileNode *inner = outer->child("prof_test.inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->calls, 6u);
    // find() walks the same path.
    EXPECT_EQ(p.root.find({"prof_test.outer", "prof_test.inner"}),
              inner);

    // total = self + children, and the burn loops guarantee both self
    // and child time are visible.
    EXPECT_EQ(outer->totalNs, outer->selfNs() + outer->childNs);
    EXPECT_EQ(outer->childNs, inner->totalNs);
    EXPECT_GT(outer->selfNs(), 0u);
    EXPECT_GT(inner->totalNs, 0u);
    EXPECT_GE(outer->totalNs, inner->totalNs);

    // The root aggregates every top-level region and the wall clock
    // spans at least the instrumented time.
    EXPECT_GE(p.root.totalNs, outer->totalNs);
    EXPECT_GE(p.wallNs, p.root.totalNs);
    EXPECT_EQ(p.threads, 1u);
}

/** Structure and call counts (not nanoseconds) of two trees match. */
void
expectSameShape(const prof::ProfileNode &a, const prof::ProfileNode &b,
                const std::string &path)
{
    EXPECT_EQ(a.name, b.name) << "at " << path;
    EXPECT_EQ(a.calls, b.calls) << "at " << path << "/" << a.name;
    ASSERT_EQ(a.children.size(), b.children.size())
        << "at " << path << "/" << a.name;
    for (std::size_t i = 0; i < a.children.size(); ++i)
        expectSameShape(a.children[i], b.children[i],
                        path + "/" + a.name);
}

TEST_F(ProfTest, MergeIsDeterministicAcrossThreadPoolWidths)
{
    const auto program =
        workloads::makeCompress(workloads::WorkloadParams{0.1});
    compiler::CompileOptions copt =
        compiler::compileOptionsFor("local", 2);
    const auto out = compiler::compile(program, copt);
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.regMap = out.hardwareMap(2);

    sample::SampledDriver driver(out.binary, cfg, 42, 40'000);

    auto profiledRun = [&](unsigned jobs) {
        sample::SampleSpec spec = sample::SampleSpec::parse(
            "systematic:period=8000,detail=1000,warmup=200,jobs=" +
            std::to_string(jobs));
        prof::reset();
        prof::setEnabled(true);
        const auto rep = driver.run(spec);
        prof::setEnabled(false);
        EXPECT_GT(rep.intervals.size(), 1u);
        return prof::snapshot();
    };

    const prof::Profile serial = profiledRun(1);
    const prof::Profile parallel = profiledRun(3);

    // jobs=1 runs everything on one worker; jobs=3 spreads the same
    // intervals across three. The merged tree must not care.
    expectSameShape(serial.root, parallel.root, "");
    EXPECT_GE(parallel.threads, serial.threads);
}

TEST_F(ProfTest, HwCountersDegradeGracefully)
{
    prof::reset();
    prof::setHwEnabled(true);
    prof::setEnabled(true);
    {
        PROF_SCOPE("prof_test.hw");
        burnClock();
    }
    prof::setEnabled(false);
    const prof::Profile p = prof::snapshot();

    // Whatever the kernel said, time profiling worked...
    const prof::ProfileNode *node = p.root.child("prof_test.hw");
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->calls, 1u);
    EXPECT_GT(node->totalNs, 0u);
    // ...and the availability bit is consistent with the data: no hw
    // samples unless the group opened.
    EXPECT_EQ(p.hwAvailable, prof::hwAvailable());
    if (!p.hwAvailable)
        EXPECT_FALSE(node->hw.valid);
    else
        EXPECT_GT(node->hw.cycles, 0u);
}

TEST_F(ProfTest, JsonExportIsWellFormed)
{
    prof::reset();
    prof::setEnabled(true);
    {
        PROF_SCOPE("prof_test.json \"quoted\"");
        burnClock();
        PROF_SCOPE("prof_test.json_child");
        burnClock();
    }
    prof::setEnabled(false);
    const std::string json = prof::snapshot().jsonString();

    // Structural sanity; the full round-trip through a JSON parser is
    // exercised by scripts/prof_report.py in ci.sh.
    EXPECT_EQ(json.front(), '{');
    long depth = 0;
    for (const char c : json) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_NE(json.find("\"version\""), std::string::npos);
    EXPECT_NE(json.find("\"wall_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"root\""), std::string::npos);
    EXPECT_NE(json.find("prof_test.json \\\"quoted\\\""),
              std::string::npos);
    EXPECT_NE(json.find("prof_test.json_child"), std::string::npos);
}

TEST_F(ProfTest, ProfilingDoesNotPerturbSimulation)
{
    const auto program =
        workloads::makeCompress(workloads::WorkloadParams{0.1});
    compiler::CompileOptions copt =
        compiler::compileOptionsFor("local", 2);
    const auto out = compiler::compile(program, copt);

    auto simulate = [&] {
        auto cfg = core::ProcessorConfig::dualCluster8();
        cfg.regMap = out.hardwareMap(2);
        StatGroup stats("prof_test");
        exec::ProgramTrace trace(out.binary, 42, 40'000);
        core::Processor cpu(cfg, trace, stats);
        return cpu.run();
    };

    const auto plain = simulate();
    prof::reset();
    prof::setEnabled(true);
    const auto profiled = simulate();
    prof::setEnabled(false);

    // Bit-identical simulated results: the profiler observes the
    // simulator, never the other way around.
    EXPECT_EQ(plain.cycles, profiled.cycles);
    EXPECT_EQ(plain.instructions, profiled.instructions);
    EXPECT_EQ(plain.completed, profiled.completed);

    // And the profiled run did record the hot stages.
    const prof::Profile p = prof::snapshot();
    EXPECT_NE(p.root.child("core.dispatch"), nullptr);
    EXPECT_NE(p.root.child("core.retire"), nullptr);
}

} // namespace
