/**
 * @file
 * Tests for the dynamic register-reassignment extension (paper §2.1
 * mentions the hardware mechanism; §6 proposes compiler-directed use).
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "exec/trace.hh"
#include "support/stats.hh"

namespace
{

using namespace mca;
using core::TimelineEvent;
using isa::intReg;
using isa::Op;

exec::DynInst
add(unsigned dest, unsigned a, unsigned b)
{
    exec::DynInst di;
    di.mi = isa::makeRRR(Op::Add, intReg(dest), intReg(a), intReg(b));
    return di;
}

/** Map with r3 and r5 re-homed into cluster 0. */
isa::RegisterMap
rehomedMap()
{
    isa::RegisterMap map(2);
    map.setHome(intReg(3), 0);
    map.setHome(intReg(5), 0);
    return map;
}

// --- RegisterMap.setHome --------------------------------------------------

TEST(RegisterMapHomes, OverridesReplaceModRule)
{
    const auto map = rehomedMap();
    EXPECT_EQ(map.homeCluster(intReg(3)), 0u);
    EXPECT_EQ(map.homeCluster(intReg(5)), 0u);
    EXPECT_EQ(map.homeCluster(intReg(7)), 1u); // untouched
    EXPECT_TRUE(map.accessibleFrom(intReg(3), 0));
    EXPECT_FALSE(map.accessibleFrom(intReg(3), 1));
}

TEST(RegisterMapHomes, ClearHomeRestoresModRule)
{
    auto map = rehomedMap();
    map.clearHome(intReg(3));
    EXPECT_EQ(map.homeCluster(intReg(3)), 1u);
}

TEST(RegisterMapHomes, DifferingHomesCountsChanges)
{
    isa::RegisterMap base(2);
    EXPECT_EQ(base.differingHomes(base), 0u);
    EXPECT_EQ(base.differingHomes(rehomedMap()), 2u);
    auto withGlobal = base;
    withGlobal.setGlobal(intReg(8));
    EXPECT_EQ(base.differingHomes(withGlobal), 1u);
}

TEST(RegisterMapHomes, LocalRegCountTracksOverrides)
{
    const auto map = rehomedMap();
    // Cluster 0 gains r3 and r5 on top of its 15 defaults.
    EXPECT_EQ(map.localRegCount(isa::RegClass::Int, 0), 17u);
    EXPECT_EQ(map.localRegCount(isa::RegClass::Int, 1), 12u);
}

TEST(RegisterMapHomes, DistributionFollowsOverrides)
{
    const auto map = rehomedMap();
    // add r2 <- r3 + r5: all cluster 0 under the re-homed map.
    const auto mi = isa::makeRRR(Op::Add, intReg(2), intReg(3), intReg(5));
    EXPECT_FALSE(isa::decideDistribution(mi, map).isDual());
    EXPECT_TRUE(
        isa::decideDistribution(mi, isa::RegisterMap(2)).isDual());
}

// --- the machine mechanism ---------------------------------------------

struct RemapRun
{
    StatGroup stats{"remap"};
    core::TimelineRecorder timeline;
    core::SimResult result;

    explicit RemapRun(std::vector<exec::DynInst> insts,
                      unsigned transfer_rate = 4)
    {
        core::ProcessorConfig cfg = core::ProcessorConfig::dualCluster8();
        cfg.mapSchedule = {rehomedMap()};
        cfg.remapTransferRate = transfer_rate;
        exec::VectorTrace trace(
            exec::VectorTrace::normalize(std::move(insts)));
        core::Processor cpu(cfg, trace, stats);
        cpu.attachTimeline(&timeline);
        result = cpu.run(100'000);
    }
};

TEST(Remap, SwitchEliminatesDualDistribution)
{
    // Phase: adds over {r3, r5, r2} — dual under even/odd, single once
    // r3/r5 are re-homed into cluster 0.
    std::vector<exec::DynInst> phase;
    for (int i = 0; i < 6; ++i)
        phase.push_back(add(2, 3, 5));

    // Without the remap.
    {
        std::vector<exec::DynInst> v = phase;
        RemapRun run(v);
        EXPECT_EQ(run.stats.counterAt("dist.dual").value(), 6u);
    }
    // With the remap point ahead of the phase.
    {
        std::vector<exec::DynInst> v = phase;
        v.front().remapIndex = 0;
        RemapRun run(v);
        EXPECT_EQ(run.stats.counterAt("remap.events").value(), 1u);
        EXPECT_EQ(run.stats.counterAt("dist.dual").value(), 0u);
        EXPECT_EQ(run.stats.counterAt("sim.retired").value(), 6u);
    }
}

TEST(Remap, DrainsBeforeSwitching)
{
    // A long-latency op in flight forces the remap to wait.
    std::vector<exec::DynInst> v;
    exec::DynInst div;
    div.mi = isa::makeRRR(Op::DivD, isa::fpReg(2), isa::fpReg(0),
                          isa::fpReg(0));
    v.push_back(div);
    auto remap = add(2, 3, 5);
    remap.remapIndex = 0;
    v.push_back(remap);
    RemapRun run(v);
    EXPECT_TRUE(run.result.completed);
    EXPECT_GT(run.stats.counterAt("remap.drain_cycles").value(), 10u);
    // The post-remap add dispatches only after the divide retires.
    const auto div_retire = [&] {
        for (const auto &r : run.timeline.records())
            if (r.seq == 0 && r.event == TimelineEvent::Retired)
                return r.cycle;
        return kNoCycle;
    }();
    const auto add_issue = [&] {
        for (const auto &r : run.timeline.records())
            if (r.seq == 1 && r.event == TimelineEvent::MasterIssued)
                return r.cycle;
        return kNoCycle;
    }();
    ASSERT_NE(div_retire, kNoCycle);
    ASSERT_NE(add_issue, kNoCycle);
    EXPECT_GT(add_issue, div_retire);
}

TEST(Remap, TransferLatencyDelaysFirstUse)
{
    auto slow = [] {
        std::vector<exec::DynInst> v;
        auto remap = add(2, 3, 5);
        remap.remapIndex = 0;
        v.push_back(remap);
        return v;
    };
    RemapRun fast(slow(), /*transfer_rate=*/32);
    RemapRun throttled(slow(), /*transfer_rate=*/1);
    EXPECT_GT(throttled.stats.counterAt("remap.regs_moved").value(), 0u);
    EXPECT_GT(throttled.result.cycles, fast.result.cycles);
}

TEST(Remap, StateIsConsistentAcrossManySwitches)
{
    // Alternate remap points and work; everything must retire.
    std::vector<exec::DynInst> v;
    for (int k = 0; k < 8; ++k) {
        auto r = add(2, 3, 5);
        if (k % 2 == 0)
            r.remapIndex = 0;
        v.push_back(r);
        v.push_back(add(4, 2, 6));
    }
    RemapRun run(v);
    EXPECT_TRUE(run.result.completed);
    EXPECT_EQ(run.stats.counterAt("sim.retired").value(), 16u);
    EXPECT_EQ(run.stats.counterAt("remap.events").value(), 4u);
}

} // namespace
