/**
 * @file
 * Unit tests for the branch predictors: bimodal, gshare, and the
 * McFarling combining predictor.
 */

#include <gtest/gtest.h>

#include <deque>

#include "bpred/predictors.hh"
#include "support/random.hh"

namespace
{

using namespace mca;

// --- Bimodal ---------------------------------------------------------

TEST(Bimodal, LearnsABiasedBranch)
{
    bpred::BimodalPredictor p(10);
    const Addr pc = 0x1000;
    for (int i = 0; i < 10; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predict(pc));
    EXPECT_GT(p.accuracy(), 0.7);
}

TEST(Bimodal, HysteresisSurvivesOneFlip)
{
    bpred::BimodalPredictor p(10);
    const Addr pc = 0x2000;
    for (int i = 0; i < 4; ++i)
        p.update(pc, true);
    p.update(pc, false); // single anomaly
    EXPECT_TRUE(p.predict(pc)); // 2-bit counter still weakly taken
}

TEST(Bimodal, DistinctPcsIndependent)
{
    bpred::BimodalPredictor p(10);
    for (int i = 0; i < 8; ++i) {
        p.update(0x1000, true);
        p.update(0x1004, false);
    }
    EXPECT_TRUE(p.predict(0x1000));
    EXPECT_FALSE(p.predict(0x1004));
}

TEST(Bimodal, CannotLearnAlternation)
{
    bpred::BimodalPredictor p(10);
    const Addr pc = 0x3000;
    int correct = 0;
    bool dir = false;
    for (int i = 0; i < 1000; ++i) {
        dir = !dir;
        correct += (p.predict(pc) == dir) ? 1 : 0;
        p.update(pc, dir);
    }
    EXPECT_LT(correct / 1000.0, 0.7);
}

// --- Gshare -----------------------------------------------------------

TEST(Gshare, LearnsAPeriodicPattern)
{
    bpred::GsharePredictor p(12, 12);
    const Addr pc = 0x4000;
    const bool pattern[] = {true, true, false, true, false};
    int correct = 0;
    for (int i = 0; i < 5000; ++i) {
        const bool dir = pattern[i % 5];
        correct += (p.predict(pc) == dir) ? 1 : 0;
        p.update(pc, dir);
    }
    // After warmup the history disambiguates every pattern position.
    EXPECT_GT(correct / 5000.0, 0.95);
}

TEST(Gshare, HistoryIsBounded)
{
    bpred::GsharePredictor p(4, 12);
    for (int i = 0; i < 100; ++i)
        p.pushHistory(true);
    EXPECT_LT(p.history(), 16u);
}

TEST(Gshare, LearnsCorrelatedBranches)
{
    bpred::GsharePredictor p(12, 12);
    Rng rng(3);
    // Branch B follows branch A's direction; A is random.
    int correct_b = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const bool a = rng.nextBool(0.5);
        p.update(0x100, a);
        correct_b += (p.predict(0x200) == a) ? 1 : 0;
        p.update(0x200, a);
    }
    EXPECT_GT(static_cast<double>(correct_b) / n, 0.9);
}

// --- McFarling combining ------------------------------------------------

TEST(McFarling, BeatsBimodalOnPatterns)
{
    bpred::McFarlingPredictor comb;
    bpred::BimodalPredictor bim(11);
    const Addr pc = 0x5000;
    const bool pattern[] = {true, false, true, true, false, false};
    int comb_ok = 0, bim_ok = 0;
    for (int i = 0; i < 6000; ++i) {
        const bool dir = pattern[i % 6];
        comb_ok += (comb.predict(pc) == dir) ? 1 : 0;
        bim_ok += (bim.predict(pc) == dir) ? 1 : 0;
        comb.update(pc, dir);
        bim.update(pc, dir);
    }
    EXPECT_GT(comb_ok, bim_ok);
    EXPECT_GT(comb_ok / 6000.0, 0.9);
}

TEST(McFarling, MatchesBimodalOnBiasedNoise)
{
    bpred::McFarlingPredictor comb;
    Rng rng(17);
    const Addr pc = 0x6000;
    int ok = 0;
    const int n = 8000;
    for (int i = 0; i < n; ++i) {
        const bool dir = rng.nextBool(0.85);
        ok += (comb.predict(pc) == dir) ? 1 : 0;
        comb.update(pc, dir);
    }
    // On an unlearnable biased branch the combiner should approach the
    // bias itself.
    EXPECT_GT(static_cast<double>(ok) / n, 0.78);
}

TEST(McFarling, AccuracyBookkeeping)
{
    bpred::McFarlingPredictor comb;
    const Addr pc = 0x7000;
    for (int i = 0; i < 10; ++i)
        comb.update(pc, true);
    EXPECT_EQ(comb.predictions(), 10u);
    EXPECT_GT(comb.accuracy(), 0.5);
}

TEST(McFarling, PredictHasNoSideEffects)
{
    bpred::McFarlingPredictor comb;
    const Addr pc = 0x8000;
    const bool first = comb.predict(pc);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(comb.predict(pc), first);
    EXPECT_EQ(comb.predictions(), 0u); // stats only count updates
}

TEST(McFarling, ChooserSelectsPerBranch)
{
    bpred::McFarlingPredictor comb;
    Rng rng(23);
    // pc1: heavily biased (bimodal-friendly); pc2: alternating
    // (history-friendly). Train both interleaved; the chooser should
    // let each be predicted well.
    int ok1 = 0, ok2 = 0;
    bool alt = false;
    const int n = 6000;
    for (int i = 0; i < n; ++i) {
        const bool d1 = rng.nextBool(0.95);
        alt = !alt;
        ok1 += (comb.predict(0x9000) == d1) ? 1 : 0;
        comb.update(0x9000, d1);
        ok2 += (comb.predict(0xa000) == alt) ? 1 : 0;
        comb.update(0xa000, alt);
    }
    EXPECT_GT(static_cast<double>(ok1) / n, 0.85);
    EXPECT_GT(static_cast<double>(ok2) / n, 0.9);
}

// --- speculative history ---------------------------------------------------

TEST(SpeculativeHistory, GshareLearnsPatternsWithInFlightBranches)
{
    // Model the machine: predictions happen several branches ahead of
    // updates. With update-at-execute history the pattern is
    // unlearnable; with speculative history it is learned.
    auto run = [](bool spec) {
        bpred::GsharePredictor p(12, 12, spec);
        const Addr pc = 0x4000;
        const bool pattern[] = {true, true, false, true, false};
        std::deque<std::pair<bool, bool>> inflight; // (predicted, actual)
        int correct = 0, total = 0;
        for (int i = 0; i < 6000; ++i) {
            const bool dir = pattern[i % 5];
            inflight.emplace_back(p.predict(pc), dir);
            // Updates lag predictions by 4 branches.
            if (inflight.size() > 4) {
                auto [pred, actual] = inflight.front();
                inflight.pop_front();
                ++total;
                correct += (pred == actual);
                p.update(pc, actual);
                if (pred != actual)
                    p.squashRepair(actual);
            }
        }
        return static_cast<double>(correct) / total;
    };
    EXPECT_LT(run(false), 0.8); // stale history cannot learn it
    EXPECT_GT(run(true), 0.90); // speculative history can
}

TEST(SpeculativeHistory, RepairRestoresHistoryAfterMispredict)
{
    bpred::GsharePredictor p(8, 12, true);
    // Cold counters predict not-taken; a taken branch mispredicts.
    const bool pred = p.predict(0x100);
    EXPECT_FALSE(pred);
    EXPECT_EQ(p.history() & 1, 0u); // speculative push of the prediction
    p.update(0x100, true);
    p.squashRepair(true);
    EXPECT_EQ(p.history() & 1, 1u); // repaired to the actual direction
}

TEST(SpeculativeHistory, McFarlingChooserLearnsFromSnapshots)
{
    // With in-flight lag, the combining predictor must still route the
    // pattern branch to its (speculative-history) gshare component.
    bpred::McFarlingPredictor p(11, 12, 12, 12, true);
    const Addr pc = 0x5000;
    const bool pattern[] = {true, false, false, true, true, false};
    std::deque<std::pair<bool, bool>> inflight;
    int correct = 0, total = 0;
    for (int i = 0; i < 9000; ++i) {
        const bool dir = pattern[i % 6];
        inflight.emplace_back(p.predict(pc), dir);
        if (inflight.size() > 3) {
            auto [predicted, actual] = inflight.front();
            inflight.pop_front();
            ++total;
            correct += (predicted == actual);
            p.update(pc, actual);
            if (predicted != actual)
                p.squashRepair(actual);
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.85);
}

// --- StaticPredictor ------------------------------------------------------

TEST(StaticPredictor, AlwaysSameDirection)
{
    bpred::StaticPredictor taken(true);
    EXPECT_TRUE(taken.predict(0x100));
    taken.update(0x100, false);
    taken.update(0x100, true);
    EXPECT_TRUE(taken.predict(0x100));
    EXPECT_DOUBLE_EQ(taken.accuracy(), 0.5);
}

} // namespace
