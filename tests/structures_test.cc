/**
 * @file
 * Unit tests for the core hardware bookkeeping structures: transfer
 * buffers (delayed-free semantics) and physical register files.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/structures.hh"

namespace
{

using namespace mca;

// --- TransferBuffer ----------------------------------------------------

TEST(TransferBuffer, AllocUntilCapacity)
{
    core::TransferBuffer buf;
    buf.init(3);
    EXPECT_EQ(buf.capacity(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(buf.canAlloc());
        buf.alloc();
    }
    EXPECT_FALSE(buf.canAlloc());
    EXPECT_EQ(buf.inUse(), 3u);
}

TEST(TransferBuffer, FreedEntryReusableNextCycle)
{
    core::TransferBuffer buf;
    buf.init(1);
    buf.alloc();
    buf.scheduleFree(10);
    // Still unavailable within the freeing cycle...
    buf.beginCycle(10);
    EXPECT_FALSE(buf.canAlloc());
    // ...available from the next one (paper §2.1).
    buf.beginCycle(11);
    EXPECT_TRUE(buf.canAlloc());
    EXPECT_EQ(buf.inUse(), 0u);
}

TEST(TransferBuffer, PendingFreesAreCounted)
{
    core::TransferBuffer buf;
    buf.init(4);
    buf.alloc();
    buf.alloc();
    buf.scheduleFree(5);
    EXPECT_EQ(buf.pendingFrees(), 1u);
    EXPECT_EQ(buf.inUse(), 2u); // still occupied until maturity
    buf.beginCycle(6);
    EXPECT_EQ(buf.pendingFrees(), 0u);
    EXPECT_EQ(buf.inUse(), 1u);
}

TEST(TransferBuffer, MultipleFreesMatureTogether)
{
    core::TransferBuffer buf;
    buf.init(4);
    for (int i = 0; i < 4; ++i)
        buf.alloc();
    buf.scheduleFree(3);
    buf.scheduleFree(3);
    buf.scheduleFree(7);
    buf.beginCycle(4);
    EXPECT_EQ(buf.inUse(), 2u);
    buf.beginCycle(8);
    EXPECT_EQ(buf.inUse(), 1u);
}

TEST(TransferBuffer, InitResetsState)
{
    core::TransferBuffer buf;
    buf.init(2);
    buf.alloc();
    buf.scheduleFree(1);
    buf.init(2);
    EXPECT_EQ(buf.inUse(), 0u);
    EXPECT_EQ(buf.pendingFrees(), 0u);
}

TEST(TransferBufferDeath, OverflowAndUnderflowPanic)
{
    core::TransferBuffer buf;
    buf.init(1);
    buf.alloc();
    EXPECT_DEATH(buf.alloc(), "overflow");
    buf.scheduleFree(0);
    buf.scheduleFree(0); // one more free than allocations
    EXPECT_DEATH(buf.beginCycle(1), "underflow");
}

// --- PhysRegFile -----------------------------------------------------------

TEST(PhysRegFile, AllRegistersStartFreeAndReady)
{
    core::PhysRegFile rf;
    rf.init(8);
    EXPECT_TRUE(rf.hasFree(8));
    for (Cycle c : rf.readyAt)
        EXPECT_EQ(c, 0u);
}

TEST(PhysRegFile, AllocReturnsDistinctRegisters)
{
    core::PhysRegFile rf;
    rf.init(16);
    std::set<std::uint16_t> seen;
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(seen.insert(rf.alloc()).second);
    EXPECT_FALSE(rf.hasFree());
}

TEST(PhysRegFile, FreeMakesRegisterAvailableAgain)
{
    core::PhysRegFile rf;
    rf.init(2);
    const auto a = rf.alloc();
    rf.alloc();
    EXPECT_FALSE(rf.hasFree());
    rf.free(a);
    EXPECT_TRUE(rf.hasFree());
    EXPECT_EQ(rf.alloc(), a); // LIFO reuse
}

TEST(PhysRegFileDeath, UnderflowPanics)
{
    core::PhysRegFile rf;
    rf.init(1);
    rf.alloc();
    EXPECT_DEATH(rf.alloc(), "underflow");
}

} // namespace
