/**
 * @file
 * End-to-end integration tests: workload -> compiler -> trace ->
 * timing model, across machine configurations.
 */

#include <gtest/gtest.h>

#include "compiler/pipeline.hh"
#include "exec/trace.hh"
#include "harness/experiment.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

/** Compile + simulate a benchmark on a machine; sanity-check results. */
harness::RunStats
runOn(const prog::Program &program, compiler::SchedulerKind sched,
      unsigned clusters, std::uint64_t max_insts)
{
    compiler::CompileOptions copt;
    copt.scheduler = sched;
    copt.numClusters = sched == compiler::SchedulerKind::Native
                           ? 1
                           : clusters;
    const auto out = compiler::compile(program, copt);
    const auto cfg = clusters == 1
                         ? core::ProcessorConfig::singleCluster8()
                         : core::ProcessorConfig::dualCluster8();
    return harness::simulate(out.binary, out.hardwareMap(clusters), cfg,
                             7, max_insts);
}

TEST(Integration, CompressRunsOnSingleCluster)
{
    const auto program =
        workloads::makeCompress(workloads::WorkloadParams{0.05});
    const auto stats =
        runOn(program, compiler::SchedulerKind::Native, 1, 50'000);
    EXPECT_TRUE(stats.completed);
    EXPECT_GT(stats.retired, 1'000u);
    EXPECT_GT(stats.ipc, 0.1);
    EXPECT_LE(stats.ipc, 8.0);
    // A single-cluster machine never dual-distributes.
    EXPECT_EQ(stats.distDual, 0u);
    EXPECT_EQ(stats.operandForwards, 0u);
    EXPECT_EQ(stats.resultForwards, 0u);
}

TEST(Integration, CompressNativeOnDualClusterDualDistributes)
{
    const auto program =
        workloads::makeCompress(workloads::WorkloadParams{0.05});
    const auto stats =
        runOn(program, compiler::SchedulerKind::Native, 2, 50'000);
    EXPECT_TRUE(stats.completed);
    EXPECT_GT(stats.retired, 1'000u);
    // The cluster-unaware binary scatters live ranges across both
    // clusters, so dual distribution must occur.
    EXPECT_GT(stats.distDual, 0u);
}

TEST(Integration, LocalSchedulerReducesDualDistribution)
{
    const auto program =
        workloads::makeCompress(workloads::WorkloadParams{0.05});
    const auto none =
        runOn(program, compiler::SchedulerKind::Native, 2, 50'000);
    const auto local =
        runOn(program, compiler::SchedulerKind::Local, 2, 50'000);
    EXPECT_TRUE(local.completed);
    // The paper's key mechanism: rescheduling cuts dual distribution.
    EXPECT_LT(local.distDual, none.distDual);
}

TEST(Integration, DualClusterSlowerInCyclesThanSingle)
{
    const auto program =
        workloads::makeSu2cor(workloads::WorkloadParams{0.05});
    const auto single =
        runOn(program, compiler::SchedulerKind::Native, 1, 50'000);
    const auto dual =
        runOn(program, compiler::SchedulerKind::Native, 2, 50'000);
    // Partitioning costs cycles (the common trend of §4.2).
    EXPECT_GE(dual.cycles, single.cycles);
}

TEST(Integration, AllBenchmarksDrainOnBothMachines)
{
    for (const auto &bench : workloads::allBenchmarks()) {
        SCOPED_TRACE(bench.name);
        const auto program =
            bench.make(workloads::WorkloadParams{0.02});
        const auto single =
            runOn(program, compiler::SchedulerKind::Native, 1, 20'000);
        const auto dual =
            runOn(program, compiler::SchedulerKind::Local, 2, 20'000);
        EXPECT_TRUE(single.completed);
        EXPECT_TRUE(dual.completed);
        EXPECT_GT(single.retired, 100u);
        // Both machines retire the same dynamic instruction stream only
        // if the binaries are identical; local rescheduling adds spill
        // code, so allow the dual count to be >= single's.
        EXPECT_GE(dual.retired, single.retired / 2);
    }
}

TEST(Integration, Table2RowComputesPercentages)
{
    harness::ExperimentOptions opt;
    opt.workload.scale = 0.02;
    opt.maxInsts = 20'000;
    const auto row = harness::runTable2Row(
        workloads::benchmarkByName("compress"), opt);
    EXPECT_GT(row.single.cycles, 0u);
    EXPECT_GT(row.dualNone.cycles, 0u);
    EXPECT_GT(row.dualLocal.cycles, 0u);
    // Percentage definition: positive = dual-cluster speedup.
    const double expect_none =
        100.0 - 100.0 * static_cast<double>(row.dualNone.cycles) /
                    static_cast<double>(row.single.cycles);
    EXPECT_NEAR(row.pctNone, expect_none, 1e-9);
}

TEST(Integration, TraceIsDeterministic)
{
    const auto program =
        workloads::makeGcc1(workloads::WorkloadParams{0.02});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Native;
    copt.numClusters = 1;
    const auto out = compiler::compile(program, copt);

    auto runOnce = [&] {
        const auto cfg = core::ProcessorConfig::singleCluster8();
        return harness::simulate(out.binary, out.hardwareMap(1), cfg, 99,
                                 20'000);
    };
    const auto a = runOnce();
    const auto b = runOnce();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retired, b.retired);
}

} // namespace
