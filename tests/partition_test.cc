/**
 * @file
 * N-cluster partitioning-layer tests: every partitioner produces a
 * verifyIR-legal assignment at every supported cluster count, the
 * multilevel partitioner is deterministic, balanced, and never cut-worse
 * than round-robin, the validation paths name their offending flag, and
 * the campaign runner reproduces partition results at any --jobs width.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "compiler/affinity.hh"
#include "compiler/partition.hh"
#include "compiler/partition_ml.hh"
#include "compiler/pipeline.hh"
#include "core/config.hh"
#include "prog/verify.hh"
#include "runner/campaign.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

compiler::ClusterAssignment
partitionBy(const std::string &name, const prog::Program &p,
            const compiler::PartitionOptions &opt,
            compiler::PartitionStats *stats = nullptr)
{
    if (name == "local")
        return compiler::localSchedule(p, opt);
    if (name == "roundrobin")
        return compiler::roundRobinSchedule(p, opt);
    EXPECT_EQ(name, "multilevel");
    return compiler::multilevelPartition(p, opt, stats);
}

} // namespace

// Every partitioner, every registry workload, every supported cluster
// count: the assignment must pass the IR verifier's partition checks
// (clusters in range, global candidates unassigned).
TEST(PartitionProperty, EveryPartitionerLegalAtEveryWidth)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.05;
    for (const auto &bench : workloads::allBenchmarks()) {
        const auto p = bench.make(wp);
        for (unsigned n : {1u, 2u, 4u, 8u}) {
            compiler::PartitionOptions opt;
            opt.numClusters = n;
            for (const auto &pname : compiler::partitionerNames()) {
                auto assignment = partitionBy(pname, p, opt);
                prog::VerifyOptions vo;
                vo.clusterOf = &assignment.cluster;
                vo.numClusters = n;
                const auto res = prog::verifyIR(p, vo);
                EXPECT_TRUE(res.ok())
                    << bench.name << " / " << pname << " / " << n
                    << " clusters:\n"
                    << res.str();
            }
        }
    }
}

// The multilevel partitioner has no randomness: equal inputs give
// bit-equal assignments, including across separately built (but
// identical) programs.
TEST(PartitionProperty, MultilevelDeterministic)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.05;
    for (const auto &bench : workloads::allBenchmarks()) {
        compiler::PartitionOptions opt;
        opt.numClusters = 4;
        const auto a =
            compiler::multilevelPartition(bench.make(wp), opt);
        const auto b =
            compiler::multilevelPartition(bench.make(wp), opt);
        EXPECT_EQ(a.cluster, b.cluster) << bench.name;
    }
}

// The balance cap is max((1 + tolerance) * ideal + 1, heaviest node).
// Node weights are discrete, so a cluster whose every member is too
// heavy to move can exceed the cap — but never by more than one
// heaviest-node weight (see MultilevelOptions::balanceTolerance).
TEST(PartitionProperty, MultilevelRespectsBalanceBound)
{
    const compiler::MultilevelOptions ml;
    workloads::WorkloadParams wp;
    wp.scale = 0.05;
    for (const auto &bench : workloads::allBenchmarks()) {
        const auto p = bench.make(wp);
        const auto graph = compiler::buildAffinityGraph(p);
        if (graph.totalNodeWeight == 0)
            continue;
        std::uint64_t maxNode = 0;
        for (const auto w : graph.nodeWeight)
            maxNode = std::max(maxNode, w);
        for (unsigned n : {2u, 4u, 8u}) {
            compiler::PartitionOptions opt;
            opt.numClusters = n;
            compiler::PartitionStats stats;
            compiler::multilevelPartition(p, opt, &stats);
            const double ideal =
                static_cast<double>(graph.totalNodeWeight) / n;
            const double cap = std::max(
                ideal * (1.0 + ml.balanceTolerance) + 1.0,
                static_cast<double>(maxNode));
            EXPECT_LE(stats.balance,
                      (cap + static_cast<double>(maxNode)) / ideal + 1e-9)
                << bench.name << " at " << n << " clusters";
        }
    }
}

// Regression: the multilevel partitioner must never cut more affinity
// weight than blind round-robin, on any Table-2 workload at any width.
TEST(PartitionRegression, MultilevelCutNoWorseThanRoundRobin)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.1;
    for (const auto &bench : workloads::allBenchmarks()) {
        const auto p = bench.make(wp);
        const auto graph = compiler::buildAffinityGraph(p);
        for (unsigned n : {2u, 4u, 8u}) {
            compiler::PartitionOptions opt;
            opt.numClusters = n;
            const auto rr = compiler::roundRobinSchedule(p, opt);
            const auto ml = compiler::multilevelPartition(p, opt);
            EXPECT_LE(compiler::cutWeight(graph, ml),
                      compiler::cutWeight(graph, rr))
                << bench.name << " at " << n << " clusters";
        }
    }
}

// scorePartition and the partitioner's own bookkeeping agree.
TEST(PartitionProperty, StatsMatchScore)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.05;
    const auto p = workloads::makeCompress(wp);
    const auto graph = compiler::buildAffinityGraph(p);
    compiler::PartitionOptions opt;
    opt.numClusters = 4;
    compiler::PartitionStats stats;
    const auto a = compiler::multilevelPartition(p, opt, &stats);
    const auto score = compiler::scorePartition(graph, a, 4);
    EXPECT_EQ(stats.cutWeight, score.cutWeight);
    EXPECT_DOUBLE_EQ(stats.balance, score.balance);
    EXPECT_EQ(stats.totalEdgeWeight, graph.totalEdgeWeight);
    EXPECT_LE(stats.cutWeight, stats.totalEdgeWeight);
    EXPECT_EQ(stats.initialCutWeight, stats.cutWeight + stats.fmGain);
}

// N = 1 is a supported degenerate width: every referenced local value
// lands on cluster 0.
TEST(PartitionProperty, SingleClusterAssignsEverythingToZero)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.05;
    const auto p = workloads::makeCompress(wp);
    compiler::PartitionOptions opt;
    opt.numClusters = 1;
    for (const auto &pname : compiler::partitionerNames()) {
        const auto a = partitionBy(pname, p, opt);
        for (const auto c : a.cluster)
            EXPECT_TRUE(c == 0 || c == compiler::ClusterAssignment::kUnassigned) << pname;
    }
}

TEST(PartitionValidation, ClusterCountRangeEnforced)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.02;
    const auto p = workloads::makeCompress(wp);
    for (unsigned bad : {0u, 128u, 200u}) {
        compiler::PartitionOptions opt;
        opt.numClusters = bad;
        for (const auto &pname : compiler::partitionerNames()) {
            try {
                partitionBy(pname, p, opt);
                FAIL() << pname << " accepted numClusters = " << bad;
            } catch (const std::runtime_error &e) {
                EXPECT_NE(std::string(e.what()).find("1..127"),
                          std::string::npos)
                    << pname << ": " << e.what();
            }
        }
    }
    compiler::PartitionOptions ok;
    ok.numClusters = compiler::ClusterAssignment::kMaxClusters;
    EXPECT_NO_THROW(ok.validate());
}

TEST(PartitionValidation, ClusterOfOutOfRangeIsUnassigned)
{
    compiler::ClusterAssignment a;
    a.cluster = {0, 1};
    EXPECT_EQ(a.clusterOf(0), 0);
    EXPECT_EQ(a.clusterOf(1), 1);
    EXPECT_EQ(a.clusterOf(2), compiler::ClusterAssignment::kUnassigned);
    EXPECT_EQ(a.clusterOf(9999), compiler::ClusterAssignment::kUnassigned);
}

// multiCluster8 rejects counts the 128-entry budget cannot divide, and
// the error names whichever flag asked for it.
TEST(PartitionValidation, MultiCluster8NamesOffendingFlag)
{
    for (unsigned n : {1u, 2u, 4u, 8u})
        EXPECT_EQ(core::ProcessorConfig::multiCluster8(n).numClusters, n);
    for (unsigned bad : {0u, 3u, 5u, 6u, 7u, 9u, 16u}) {
        try {
            core::ProcessorConfig::multiCluster8(bad);
            FAIL() << "multiCluster8 accepted " << bad;
        } catch (const std::runtime_error &e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find("multiCluster8(" + std::to_string(bad) +
                               ")"),
                      std::string::npos)
                << msg;
            EXPECT_NE(msg.find("1, 2, 4, or 8"), std::string::npos)
                << msg;
        }
    }
    try {
        core::ProcessorConfig::multiCluster8(3, "--clusters");
        FAIL() << "multiCluster8 accepted 3";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("--clusters"),
                  std::string::npos)
            << e.what();
    }
}

// The scheduler-name-to-options map: "multilevel" targets the machine's
// cluster count, and degrades to Native when there is nothing to
// partition. The canonical compile key must distinguish partitioners,
// or the compile/result caches would alias them.
TEST(PartitionPipeline, CompileOptionsForMultilevel)
{
    const auto four = compiler::compileOptionsFor("multilevel", 4);
    EXPECT_EQ(four.scheduler, compiler::SchedulerKind::Multilevel);
    EXPECT_EQ(four.numClusters, 4u);

    const auto one = compiler::compileOptionsFor("multilevel", 1);
    EXPECT_EQ(one.scheduler, compiler::SchedulerKind::Native);

    const auto local = compiler::compileOptionsFor("local", 4);
    EXPECT_NE(four.canonicalKey(), local.canonicalKey());

    const auto &names = compiler::partitionerNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "multilevel"),
              names.end());
    EXPECT_EQ(std::find(names.begin(), names.end(), "native"),
              names.end());
}

// Full-pipeline partition stats: a multilevel compile reports a
// coherent quality record on the output.
TEST(PartitionPipeline, CompileReportsPartitionStats)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.05;
    const auto p = workloads::makeCompress(wp);
    auto copt = compiler::compileOptionsFor("multilevel", 4);
    copt.verifyIr = true;
    const auto out = compiler::compile(p, copt);
    EXPECT_EQ(out.partitionStats.numClusters, 4u);
    EXPECT_GT(out.partitionStats.numNodes, 0u);
    EXPECT_LE(out.partitionStats.cutWeight,
              out.partitionStats.totalEdgeWeight);
    EXPECT_GE(out.partitionStats.balance, 1.0);
}

// Campaign determinism: the partitioner sweep must be bit-identical at
// any --jobs width, partition-quality columns included.
TEST(PartitionRunner, DeterministicAcrossJobWidths)
{
    runner::CampaignGrid grid;
    grid.benchmarks = {"compress", "tomcatv"};
    grid.machines = {"quad8"};
    grid.schedulers = {"local", "multilevel"};
    grid.scale = 0.05;
    grid.maxInsts = 20'000;
    const auto specs = runner::expandGrid(grid);

    runner::CampaignOptions serial;
    serial.jobs = 1;
    serial.cacheDir.clear();
    runner::CampaignOptions wide = serial;
    wide.jobs = 4;

    const auto a = runner::runCampaign(specs, serial);
    const auto b = runner::runCampaign(specs, wide);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].status, runner::JobStatus::Ok);
        EXPECT_EQ(a[i].cycles, b[i].cycles);
        EXPECT_EQ(a[i].retired, b[i].retired);
        EXPECT_EQ(a[i].partitionCut, b[i].partitionCut);
        EXPECT_DOUBLE_EQ(a[i].partitionBalance, b[i].partitionBalance);
    }
}
