/**
 * @file
 * Pass-manager tests: registry contents, per-pass stats, dump capture
 * (including the golden-text regression for every pass on a small
 * fixed program), between-pass verification, and the canonical
 * compile-options key.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "compiler/pass.hh"
#include "compiler/pipeline.hh"
#include "obs/json.hh"
#include "prog/builder.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;
using isa::Op;
using isa::RegClass;

/** Small fixed two-function program the golden dumps are pinned to. */
prog::Program
goldenProgram()
{
    prog::Builder b("golden");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1, "entry");
    const auto b1 = b.block(fn, 4, "loop");
    const auto b2 = b.block(fn, 1, "exit");

    b.setInsertPoint(fn, b0);
    const auto n = b.emitConst(RegClass::Int, 8, "n");
    const auto acc = b.emitConst(RegClass::Int, 0, "acc");
    b.edge(fn, b0, b1);

    b.setInsertPoint(fn, b1);
    const auto next = b.emitRRR(Op::Add, acc, n, "next");
    b.emitRRITo(acc, Op::Mov, next, 0);
    const auto t = b.emitRRI(Op::Sub, n, 1, "t");
    b.emitRRITo(n, Op::Mov, t, 0);
    b.emitBranch(Op::Bne, n, b.branch(prog::BranchModel::loop(8)));
    b.edge(fn, b1, b2);
    b.edge(fn, b1, b1);

    b.setInsertPoint(fn, b2);
    const auto st = b.stream(prog::AddrStream::fixed(0x1000));
    b.emitStore(Op::Stl, acc, st, acc);
    b.emitRet();
    return b.build();
}

compiler::CompileOptions
goldenOptions()
{
    compiler::CompileOptions copt = compiler::compileOptionsFor("local", 2);
    copt.dumpAfter = {"all"};
    return copt;
}

TEST(PassRegistry, ListsPipelineInCanonicalOrder)
{
    const std::vector<std::string> expected = {
        "optimize", "unroll",    "superblock", "schedule",
        "profile",  "partition", "regalloc",   "emit",
    };
    const auto &passes = compiler::allPasses();
    ASSERT_EQ(passes.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(passes[i].name, expected[i]);
        EXPECT_FALSE(passes[i].description.empty());
    }
}

TEST(PassRegistry, IsPassName)
{
    for (const auto &info : compiler::allPasses())
        EXPECT_TRUE(compiler::isPassName(info.name));
    EXPECT_FALSE(compiler::isPassName("bogus"));
    EXPECT_FALSE(compiler::isPassName(""));
    EXPECT_FALSE(compiler::isPassName("all"));
}

TEST(BuildPipeline, MatchesOptions)
{
    auto names = [](const compiler::CompileOptions &copt) {
        std::vector<std::string> out;
        for (const auto &pass : compiler::buildPipeline(copt))
            out.push_back(std::string(pass->name()));
        return out;
    };

    const auto native = compiler::compileOptionsFor("native", 1);
    EXPECT_EQ(names(native),
              (std::vector<std::string>{"optimize", "schedule",
                                        "regalloc", "emit"}));

    const auto local = compiler::compileOptionsFor("local", 2);
    EXPECT_EQ(names(local),
              (std::vector<std::string>{"optimize", "schedule",
                                        "profile", "partition",
                                        "regalloc", "emit"}));

    auto everything = compiler::compileOptionsFor("local", 2);
    everything.unrollFactor = 2;
    everything.superblocks = true;
    EXPECT_EQ(names(everything),
              (std::vector<std::string>{"optimize", "unroll",
                                        "superblock", "schedule",
                                        "profile", "partition",
                                        "regalloc", "emit"}));

    auto bare = compiler::compileOptionsFor("native", 1);
    bare.optimize = false;
    bare.listSchedule = false;
    EXPECT_EQ(names(bare),
              (std::vector<std::string>{"regalloc", "emit"}));
}

TEST(PassStats, RecordedPerPass)
{
    const auto p =
        workloads::makeCompress(workloads::WorkloadParams{0.05});
    const auto copt = compiler::compileOptionsFor("local", 2);
    const auto out = compiler::compile(p, copt);

    ASSERT_EQ(out.passStats.size(), 6u);
    const std::vector<std::string> expected = {
        "optimize", "schedule", "profile", "partition", "regalloc",
        "emit",
    };
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(out.passStats[i].pass, expected[i]);

    // Deltas line up between adjacent passes.
    for (std::size_t i = 1; i < out.passStats.size(); ++i) {
        EXPECT_EQ(out.passStats[i].instsBefore,
                  out.passStats[i - 1].instsAfter);
        EXPECT_EQ(out.passStats[i].blocksBefore,
                  out.passStats[i - 1].blocksAfter);
        EXPECT_EQ(out.passStats[i].valuesBefore,
                  out.passStats[i - 1].valuesAfter);
    }
    // Optimize only removes instructions; spills only appear at
    // regalloc; wall clocks are non-negative.
    EXPECT_LE(out.passStats[0].instsAfter,
              out.passStats[0].instsBefore);
    for (const auto &ps : out.passStats) {
        EXPECT_GE(ps.wallMs, 0.0);
        if (ps.pass != "regalloc") {
            EXPECT_EQ(ps.spillOpsAfter, ps.spillOpsBefore);
        }
    }
    EXPECT_EQ(out.passStats.back().spillOpsAfter,
              out.alloc.spillLoadsInserted +
                  out.alloc.spillStoresInserted);
}

TEST(PassStats, ExportedCountersMakeValidJson)
{
    const auto out = compiler::compile(
        goldenProgram(), compiler::compileOptionsFor("local", 2));
    StatGroup group("compile");
    compiler::exportPassStats(out.passStats, group, "compile.pass");
    EXPECT_TRUE(group.hasCounter("compile.pass.00_optimize.insts"));
    EXPECT_TRUE(group.hasCounter("compile.pass.05_emit.spill_ops"));
    std::ostringstream oss;
    group.dumpJson(oss);
    EXPECT_TRUE(obs::isValidJson(oss.str())) << oss.str();
}

TEST(Dumps, CapturedOnlyForRequestedPasses)
{
    auto copt = compiler::compileOptionsFor("local", 2);
    copt.dumpAfter = {"regalloc"};
    const auto out = compiler::compile(goldenProgram(), copt);
    ASSERT_EQ(out.dumps.size(), 1u);
    EXPECT_EQ(out.dumps[0].first, "regalloc");
    EXPECT_NE(out.dumpFor("regalloc"), nullptr);
    EXPECT_EQ(out.dumpFor("optimize"), nullptr);

    const auto none =
        compiler::compile(goldenProgram(),
                          compiler::compileOptionsFor("local", 2));
    EXPECT_TRUE(none.dumps.empty());
}

TEST(Dumps, ByteStableAcrossRunsAndThreads)
{
    const auto reference =
        compiler::compile(goldenProgram(), goldenOptions()).dumps;
    ASSERT_EQ(reference.size(), 6u);

    // Re-run serially and 4-wide: every dump must be byte-identical.
    const auto again =
        compiler::compile(goldenProgram(), goldenOptions()).dumps;
    EXPECT_EQ(again, reference);

    std::vector<std::vector<std::pair<std::string, std::string>>>
        parallel(4);
    {
        std::vector<std::thread> threads;
        for (auto &slot : parallel)
            threads.emplace_back([&slot] {
                slot = compiler::compile(goldenProgram(),
                                         goldenOptions())
                           .dumps;
            });
        for (auto &t : threads)
            t.join();
    }
    for (const auto &dumps : parallel)
        EXPECT_EQ(dumps, reference);
}

TEST(Dumps, EmitPassDumpsTheBinary)
{
    const auto out =
        compiler::compile(goldenProgram(), goldenOptions());
    const std::string *emitted = out.dumpFor("emit");
    ASSERT_NE(emitted, nullptr);
    EXPECT_EQ(*emitted, prog::dumpProgram(out.binary));
    // IL dumps name live ranges; the machine dump names registers.
    EXPECT_NE(out.dumpFor("regalloc"), nullptr);
    EXPECT_NE(*out.dumpFor("regalloc"), *emitted);
}

TEST(PassManager, VerifyCatchesCorruptingPass)
{
    class EvilPass : public compiler::Pass
    {
      public:
        std::string_view name() const override { return "evil"; }
        std::string_view description() const override
        {
            return "corrupts the CFG (test only)";
        }
        void
        run(compiler::PassContext &ctx) override
        {
            ctx.program.functions[0].blocks[0].succs.push_back(99);
        }
    };

    const auto p = goldenProgram();
    auto copt = compiler::compileOptionsFor("local", 2);
    compiler::CompileOutput out;
    compiler::PassContext ctx(p, copt, out);
    compiler::PassManager manager(/*verify_ir=*/true);
    manager.add(std::make_unique<EvilPass>());
    try {
        manager.run(ctx);
        FAIL() << "corrupt IR passed verification";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("after pass 'evil'"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("dangling CFG edge"),
                  std::string::npos)
            << e.what();
    }
}

TEST(PassManager, VerifyIrDoesNotPerturbTheBinary)
{
    const auto p =
        workloads::makeCompress(workloads::WorkloadParams{0.05});
    for (const char *scheduler : {"native", "local", "roundrobin"}) {
        auto on = compiler::compileOptionsFor(scheduler, 2);
        on.unrollFactor = 3;
        on.superblocks = true;
        auto off = on;
        on.verifyIr = true;
        off.verifyIr = false;
        const auto a = compiler::compile(p, on);
        const auto b = compiler::compile(p, off);
        EXPECT_EQ(prog::dumpProgram(a.binary),
                  prog::dumpProgram(b.binary))
            << scheduler;
    }
}

TEST(CompileOptions, CanonicalKeyTracksBinaryAffectingFieldsOnly)
{
    const auto base = compiler::compileOptionsFor("local", 2);
    auto diagnostic = base;
    diagnostic.verifyIr = !diagnostic.verifyIr;
    diagnostic.dumpAfter = {"all"};
    EXPECT_EQ(base.canonicalKey(), diagnostic.canonicalKey());

    auto unrolled = base;
    unrolled.unrollFactor = 4;
    EXPECT_NE(base.canonicalKey(), unrolled.canonicalKey());
    EXPECT_NE(base.canonicalKey(),
              compiler::compileOptionsFor("native", 2).canonicalKey());
    EXPECT_NE(base.canonicalKey(),
              compiler::compileOptionsFor("roundrobin", 2)
                  .canonicalKey());

    auto threshold = base;
    threshold.imbalanceThreshold = 9;
    EXPECT_NE(base.canonicalKey(), threshold.canonicalKey());
}

} // namespace
