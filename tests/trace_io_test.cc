/**
 * @file
 * Tests for trace-file I/O: roundtrip fidelity, header validation,
 * replay equivalence on the timing model.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "compiler/pipeline.hh"
#include "exec/trace.hh"
#include "exec/trace_io.hh"
#include "harness/experiment.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

struct TraceIoFixture : ::testing::Test
{
    std::string path;

    void
    SetUp() override
    {
        path = (std::filesystem::temp_directory_path() /
                ("mca_trace_test_" +
                 std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
    }

    void TearDown() override { std::remove(path.c_str()); }

    static compiler::CompileOutput
    compiledCompress()
    {
        const auto p =
            workloads::makeCompress(workloads::WorkloadParams{0.02});
        compiler::CompileOptions copt;
        copt.scheduler = compiler::SchedulerKind::Native;
        copt.numClusters = 1;
        return compiler::compile(p, copt);
    }
};

TEST_F(TraceIoFixture, RoundtripPreservesEveryField)
{
    const auto out = compiledCompress();
    exec::ProgramTrace source(out.binary, 7, 5'000);
    const auto written = exec::writeTrace(path, source);
    EXPECT_EQ(written, 5'000u);

    exec::ProgramTrace reference(out.binary, 7, 5'000);
    exec::FileTrace replay(path);
    EXPECT_EQ(replay.count(), 5'000u);
    std::size_t n = 0;
    while (auto expect = reference.next()) {
        const auto got = replay.next();
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->seq, expect->seq);
        EXPECT_EQ(got->pc, expect->pc);
        EXPECT_EQ(got->nextPc, expect->nextPc);
        EXPECT_EQ(got->effAddr, expect->effAddr);
        EXPECT_EQ(got->taken, expect->taken);
        EXPECT_EQ(got->isSpill, expect->isSpill);
        EXPECT_EQ(got->mi.op, expect->mi.op);
        EXPECT_EQ(got->mi.imm, expect->mi.imm);
        EXPECT_EQ(got->mi.dest.has_value(),
                  expect->mi.dest.has_value());
        if (expect->mi.dest) {
            EXPECT_TRUE(*got->mi.dest == *expect->mi.dest);
        }
        for (int i = 0; i < 2; ++i) {
            ASSERT_EQ(got->mi.srcs[i].has_value(),
                      expect->mi.srcs[i].has_value());
            if (expect->mi.srcs[i]) {
                EXPECT_TRUE(*got->mi.srcs[i] == *expect->mi.srcs[i]);
            }
        }
        ++n;
    }
    EXPECT_EQ(n, 5'000u);
    EXPECT_FALSE(replay.next().has_value());
}

TEST_F(TraceIoFixture, ReplayedTraceSimulatesIdentically)
{
    const auto out = compiledCompress();
    {
        exec::ProgramTrace source(out.binary, 7, 10'000);
        exec::writeTrace(path, source);
    }

    auto runWith = [&](exec::TraceSource &trace) {
        StatGroup stats("t");
        core::Processor cpu(core::ProcessorConfig::singleCluster8(),
                            trace, stats);
        return cpu.run().cycles;
    };
    exec::ProgramTrace live(out.binary, 7, 10'000);
    exec::FileTrace replay(path);
    EXPECT_EQ(runWith(live), runWith(replay));
}

TEST_F(TraceIoFixture, ShortTraceStopsAtSourceEnd)
{
    const auto out = compiledCompress();
    exec::ProgramTrace source(out.binary, 7, 123);
    const auto written = exec::writeTrace(path, source, {}, 1'000'000);
    EXPECT_EQ(written, 123u);
    exec::FileTrace replay(path);
    EXPECT_EQ(replay.count(), 123u);
}

TEST_F(TraceIoFixture, RejectsForeignFiles)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a trace", f);
    std::fclose(f);
    EXPECT_DEATH({ exec::FileTrace t(path); },
                 "not a multicluster trace");
}

TEST_F(TraceIoFixture, RejectsMissingFile)
{
    EXPECT_DEATH({ exec::FileTrace t("/nonexistent/nope.mct"); },
                 "cannot open");
}

TEST_F(TraceIoFixture, GlobalRegistersRoundtripThroughTheHeader)
{
    const auto out = compiledCompress();
    {
        exec::ProgramTrace source(out.binary, 7, 500);
        // compress precolors SP (r30) and GP (r29) as globals.
        exec::writeTrace(path, source, out.alloc.globalRegs);
    }
    exec::FileTrace replay(path);
    ASSERT_EQ(replay.globalRegs().size(), out.alloc.globalRegs.size());
    isa::RegisterMap map(2);
    map.setLocal(isa::intReg(isa::kStackPointer));
    map.setLocal(isa::intReg(isa::kGlobalPointer));
    replay.applyGlobals(map);
    EXPECT_TRUE(map.isGlobal(isa::intReg(isa::kStackPointer)));
    EXPECT_TRUE(map.isGlobal(isa::intReg(isa::kGlobalPointer)));
}

TEST(OccupancyStats, DistributionsArePopulated)
{
    const auto p =
        workloads::makeCompress(workloads::WorkloadParams{0.02});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Local;
    copt.numClusters = 2;
    const auto out = compiler::compile(p, copt);
    StatGroup stats("occ");
    exec::ProgramTrace trace(out.binary, 7, 20'000);
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.regMap = out.hardwareMap(2);
    core::Processor cpu(cfg, trace, stats);
    const auto result = cpu.run();

    const auto &rob = stats.distribution("rob.occupancy", 16, 32);
    EXPECT_EQ(rob.samples(), result.cycles);
    EXPECT_GT(rob.mean(), 0.0);
    const auto &q0 = stats.distribution("queue.occupancy.c0", 8, 32);
    const auto &q1 = stats.distribution("queue.occupancy.c1", 8, 32);
    EXPECT_EQ(q0.samples(), result.cycles);
    EXPECT_LE(q0.max(), 64u);
    EXPECT_LE(q1.max(), 64u);
    const auto &wait = stats.distribution("issue.wait_cycles", 4, 32);
    EXPECT_GT(wait.samples(), 0u);
    EXPECT_GE(wait.mean(), 1.0); // issue is at least a cycle after dispatch
}

} // namespace
