/**
 * @file
 * Unit tests for the ISA layer: opcode classes, the Table-1 latency and
 * issue rules, register-to-cluster mapping, and the distribution rule
 * (the paper's five scenarios as pure decisions).
 */

#include <gtest/gtest.h>

#include "isa/distribution.hh"
#include "isa/inst.hh"
#include "isa/issue_rules.hh"
#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace
{

using namespace mca;
using isa::fpReg;
using isa::intReg;
using isa::Op;
using isa::OpClass;

// --- opcode classes and latencies (paper Table 1 row 3) -------------------

struct OpExpectation
{
    Op op;
    OpClass cls;
    unsigned latency;
    bool pipelined;
};

class OpTableTest : public ::testing::TestWithParam<OpExpectation>
{
};

TEST_P(OpTableTest, ClassLatencyPipelining)
{
    const auto &e = GetParam();
    EXPECT_EQ(isa::opClass(e.op), e.cls);
    EXPECT_EQ(isa::opLatency(e.op), e.latency);
    EXPECT_EQ(isa::opPipelined(e.op), e.pipelined);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, OpTableTest,
    ::testing::Values(
        OpExpectation{Op::Add, OpClass::IntOther, 1, true},
        OpExpectation{Op::Sub, OpClass::IntOther, 1, true},
        OpExpectation{Op::And, OpClass::IntOther, 1, true},
        OpExpectation{Op::Xor, OpClass::IntOther, 1, true},
        OpExpectation{Op::Sll, OpClass::IntOther, 1, true},
        OpExpectation{Op::CmpEq, OpClass::IntOther, 1, true},
        OpExpectation{Op::Lda, OpClass::IntOther, 1, true},
        OpExpectation{Op::Mov, OpClass::IntOther, 1, true},
        OpExpectation{Op::Mull, OpClass::IntMul, 6, true},
        OpExpectation{Op::AddF, OpClass::FpOther, 3, true},
        OpExpectation{Op::MulF, OpClass::FpOther, 3, true},
        OpExpectation{Op::CmpF, OpClass::FpOther, 3, true},
        OpExpectation{Op::DivF, OpClass::FpDiv, 8, false},
        OpExpectation{Op::DivD, OpClass::FpDiv, 16, false},
        OpExpectation{Op::SqrtD, OpClass::FpDiv, 16, false},
        OpExpectation{Op::Ldl, OpClass::LoadStore, 2, true},
        OpExpectation{Op::Ldt, OpClass::LoadStore, 2, true},
        OpExpectation{Op::Stl, OpClass::LoadStore, 1, true},
        OpExpectation{Op::Stt, OpClass::LoadStore, 1, true},
        OpExpectation{Op::Br, OpClass::CtrlFlow, 1, true},
        OpExpectation{Op::Beq, OpClass::CtrlFlow, 1, true},
        OpExpectation{Op::FBne, OpClass::CtrlFlow, 1, true},
        OpExpectation{Op::Jsr, OpClass::CtrlFlow, 1, true},
        OpExpectation{Op::Ret, OpClass::CtrlFlow, 1, true}));

TEST(Opcodes, Predicates)
{
    EXPECT_TRUE(isa::isLoad(Op::Ldl));
    EXPECT_TRUE(isa::isStore(Op::Stt));
    EXPECT_TRUE(isa::isMemOp(Op::Ldt));
    EXPECT_FALSE(isa::isMemOp(Op::Add));
    EXPECT_TRUE(isa::isCondBranch(Op::FBeq));
    EXPECT_FALSE(isa::isCondBranch(Op::Br));
    EXPECT_TRUE(isa::isCtrlFlow(Op::Jmp));
    EXPECT_TRUE(isa::isCall(Op::Jsr));
    EXPECT_TRUE(isa::isReturn(Op::Ret));
}

// --- MachInst builders -------------------------------------------------

TEST(MachInst, BuildersPopulateOperands)
{
    const auto add = isa::makeRRR(Op::Add, intReg(3), intReg(1), intReg(2));
    EXPECT_EQ(add.numSrcs(), 2u);
    EXPECT_TRUE(add.hasDest());
    EXPECT_EQ(add.dest->index, 3);

    const auto ld = isa::makeLoad(Op::Ldl, intReg(4), intReg(5), 16);
    EXPECT_EQ(ld.numSrcs(), 1u);
    EXPECT_EQ(ld.imm, 16);

    const auto st = isa::makeStore(Op::Stl, intReg(1), intReg(2), -8);
    EXPECT_FALSE(st.hasDest());
    EXPECT_EQ(st.numSrcs(), 2u);

    const auto br = isa::makeBranch(Op::Bne, intReg(7));
    EXPECT_EQ(br.numSrcs(), 1u);
}

TEST(MachInst, ToStringDisassembles)
{
    const auto add = isa::makeRRR(Op::Add, intReg(3), intReg(1), intReg(2));
    EXPECT_EQ(add.toString(), "add r3, r1, r2");
    const auto ld = isa::makeLoad(Op::Ldt, fpReg(2), intReg(30), 24);
    EXPECT_EQ(ld.toString(), "ldt f2, r30, #24");
}

TEST(MachInstDeath, WrongBuilderOpPanics)
{
    EXPECT_DEATH(isa::makeLoad(Op::Add, intReg(1), intReg(2), 0),
                 "non-load");
    EXPECT_DEATH(isa::makeBranch(Op::Br, intReg(1)), "non-branch");
}

// --- RegisterMap ---------------------------------------------------------

TEST(RegisterMap, DefaultDualClusterEvenOdd)
{
    isa::RegisterMap map(2);
    EXPECT_EQ(map.homeCluster(intReg(0)), 0u);
    EXPECT_EQ(map.homeCluster(intReg(1)), 1u);
    EXPECT_EQ(map.homeCluster(fpReg(6)), 0u);
    EXPECT_EQ(map.homeCluster(fpReg(7)), 1u);
}

TEST(RegisterMap, StackAndGlobalPointersAreGlobal)
{
    isa::RegisterMap map(2);
    EXPECT_TRUE(map.isGlobal(intReg(isa::kStackPointer)));
    EXPECT_TRUE(map.isGlobal(intReg(isa::kGlobalPointer)));
    EXPECT_FALSE(map.isGlobal(intReg(4)));
}

TEST(RegisterMap, ZeroRegistersReadableEverywhere)
{
    isa::RegisterMap map(2);
    EXPECT_TRUE(map.isGlobal(intReg(isa::kIntZeroReg)));
    EXPECT_TRUE(map.isGlobal(fpReg(isa::kFpZeroReg)));
    EXPECT_TRUE(map.accessibleFrom(intReg(31), 0));
    EXPECT_TRUE(map.accessibleFrom(intReg(31), 1));
}

TEST(RegisterMap, SingleClusterEverythingAccessible)
{
    isa::RegisterMap map(1);
    for (unsigned i = 0; i < isa::kNumArchRegs; ++i)
        EXPECT_TRUE(map.accessibleFrom(intReg(i), 0));
}

TEST(RegisterMap, SetGlobalAndLocal)
{
    isa::RegisterMap map(2);
    map.setGlobal(intReg(8));
    EXPECT_TRUE(map.isGlobal(intReg(8)));
    map.setLocal(intReg(8));
    EXPECT_FALSE(map.isGlobal(intReg(8)));
}

TEST(RegisterMap, LocalRegCountExcludesGlobalsAndZero)
{
    isa::RegisterMap map(2);
    // Even registers minus r30 (global): 0..30 even = 16, minus r30.
    EXPECT_EQ(map.localRegCount(isa::RegClass::Int, 0), 15u);
    // Odd minus r31 (zero is odd? r31 is odd) and r29 (global).
    EXPECT_EQ(map.localRegCount(isa::RegClass::Int, 1), 14u);
    // FP: no globals; f31 is the zero register (odd).
    EXPECT_EQ(map.localRegCount(isa::RegClass::Fp, 0), 16u);
    EXPECT_EQ(map.localRegCount(isa::RegClass::Fp, 1), 15u);
}

TEST(RegisterMap, FourClusters)
{
    isa::RegisterMap map(4);
    EXPECT_EQ(map.homeCluster(intReg(5)), 1u);
    EXPECT_EQ(map.homeCluster(intReg(6)), 2u);
    EXPECT_EQ(map.homeCluster(intReg(7)), 3u);
    EXPECT_TRUE(map.isGlobal(intReg(isa::kStackPointer)));
}

// --- IssueSlots (Table 1 rows 1-2) ---------------------------------------

TEST(IssueSlots, AllCapBindsFirst)
{
    isa::IssueSlots slots(isa::IssueRules::singleCluster8Way());
    slots.newCycle();
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(slots.tryConsume(OpClass::IntOther));
    EXPECT_FALSE(slots.tryConsume(OpClass::IntOther));
    EXPECT_FALSE(slots.tryConsume(OpClass::CtrlFlow));
}

TEST(IssueSlots, FpAllSharedBetweenDivAndOther)
{
    isa::IssueSlots slots(isa::IssueRules::singleCluster8Way());
    slots.newCycle();
    EXPECT_TRUE(slots.tryConsume(OpClass::FpDiv));
    EXPECT_TRUE(slots.tryConsume(OpClass::FpDiv));
    EXPECT_TRUE(slots.tryConsume(OpClass::FpOther));
    EXPECT_TRUE(slots.tryConsume(OpClass::FpOther));
    // fpAll = 4 exhausted even though fpOther alone allows 4.
    EXPECT_FALSE(slots.tryConsume(OpClass::FpOther));
    EXPECT_FALSE(slots.tryConsume(OpClass::FpDiv));
    // Integer slots unaffected.
    EXPECT_TRUE(slots.tryConsume(OpClass::IntOther));
}

TEST(IssueSlots, LoadStoreAndCtrlCaps)
{
    isa::IssueSlots slots(isa::IssueRules::singleCluster8Way());
    slots.newCycle();
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(slots.tryConsume(OpClass::LoadStore));
    EXPECT_FALSE(slots.tryConsume(OpClass::LoadStore));
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(slots.tryConsume(OpClass::CtrlFlow));
    EXPECT_FALSE(slots.tryConsume(OpClass::CtrlFlow));
}

TEST(IssueSlots, DualClusterHalvesEverything)
{
    const auto rules = isa::IssueRules::dualClusterPerCluster();
    EXPECT_EQ(rules.all, 4u);
    EXPECT_EQ(rules.fpAll, 2u);
    EXPECT_EQ(rules.loadStore, 2u);
    isa::IssueSlots slots(rules);
    slots.newCycle();
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(slots.tryConsume(OpClass::IntOther));
    EXPECT_FALSE(slots.tryConsume(OpClass::IntOther));
}

TEST(IssueSlots, NewCycleReplenishes)
{
    isa::IssueSlots slots(isa::IssueRules::dualClusterPerCluster());
    slots.newCycle();
    for (int i = 0; i < 4; ++i)
        slots.tryConsume(OpClass::IntOther);
    slots.newCycle();
    EXPECT_TRUE(slots.tryConsume(OpClass::IntOther));
}

TEST(IssueSlots, SlaveConsumesFilePortClass)
{
    isa::IssueSlots slots(isa::IssueRules::dualClusterPerCluster());
    slots.newCycle();
    EXPECT_TRUE(slots.tryConsumeSlave(isa::RegClass::Fp));
    EXPECT_TRUE(slots.tryConsumeSlave(isa::RegClass::Fp));
    // fpAll = 2 consumed by the two slaves.
    EXPECT_FALSE(slots.tryConsume(OpClass::FpOther));
    EXPECT_TRUE(slots.tryConsumeSlave(isa::RegClass::Int));
}

TEST(IssueRules, DividedByScalesWithFloor)
{
    const auto r = isa::IssueRules::singleCluster8Way().dividedBy(4);
    EXPECT_EQ(r.all, 2u);
    EXPECT_EQ(r.fpAll, 1u);
    EXPECT_EQ(r.fpDiv, 1u); // floor at 1
}

// --- decideDistribution (the five scenarios) -----------------------------

TEST(Distribution, Scenario1AllLocalOneCluster)
{
    isa::RegisterMap map(2);
    const auto mi = isa::makeRRR(Op::Add, intReg(2), intReg(4), intReg(6));
    const auto d = isa::decideDistribution(mi, map);
    EXPECT_FALSE(d.isDual());
    EXPECT_EQ(d.masterCluster, 0u);
    EXPECT_TRUE(d.masterWritesDest);
}

TEST(Distribution, Scenario2OperandForward)
{
    isa::RegisterMap map(2);
    // dest and one source in cluster 0, other source in cluster 1.
    const auto mi = isa::makeRRR(Op::Add, intReg(2), intReg(3), intReg(4));
    const auto d = isa::decideDistribution(mi, map);
    ASSERT_TRUE(d.isDual());
    EXPECT_EQ(d.masterCluster, 0u);
    EXPECT_TRUE(d.masterWritesDest);
    ASSERT_EQ(d.slaves.size(), 1u);
    EXPECT_EQ(d.slaves[0].cluster, 1u);
    EXPECT_TRUE(d.slaves[0].forwardsOperand);
    EXPECT_FALSE(d.slaves[0].receivesResult);
    EXPECT_EQ(d.slaves[0].srcMask, 1u); // srcs[0] = r3
}

TEST(Distribution, Scenario3ResultForward)
{
    isa::RegisterMap map(2);
    // Both sources cluster 0; destination cluster 1.
    const auto mi = isa::makeRRR(Op::Add, intReg(3), intReg(2), intReg(4));
    const auto d = isa::decideDistribution(mi, map);
    ASSERT_TRUE(d.isDual());
    EXPECT_EQ(d.masterCluster, 0u);
    EXPECT_FALSE(d.masterWritesDest);
    ASSERT_EQ(d.slaves.size(), 1u);
    EXPECT_EQ(d.slaves[0].cluster, 1u);
    EXPECT_FALSE(d.slaves[0].forwardsOperand);
    EXPECT_TRUE(d.slaves[0].receivesResult);
}

TEST(Distribution, Scenario4GlobalDestination)
{
    isa::RegisterMap map(2);
    map.setGlobal(intReg(8));
    const auto mi = isa::makeRRR(Op::Add, intReg(8), intReg(2), intReg(4));
    const auto d = isa::decideDistribution(mi, map);
    ASSERT_TRUE(d.isDual());
    EXPECT_EQ(d.masterCluster, 0u);
    EXPECT_TRUE(d.masterWritesDest); // master writes its own copy
    ASSERT_EQ(d.slaves.size(), 1u);
    EXPECT_TRUE(d.slaves[0].receivesResult);
    EXPECT_FALSE(d.slaves[0].forwardsOperand);
}

TEST(Distribution, Scenario5OperandAndResultForward)
{
    isa::RegisterMap map(2);
    map.setGlobal(intReg(8));
    // Sources split across clusters, destination global. The tie breaks
    // to the lowest cluster (matching the paper's Figure 5).
    const auto mi = isa::makeRRR(Op::Add, intReg(8), intReg(2), intReg(3));
    const auto d = isa::decideDistribution(mi, map);
    ASSERT_TRUE(d.isDual());
    EXPECT_EQ(d.masterCluster, 0u);
    EXPECT_TRUE(d.masterWritesDest);
    ASSERT_EQ(d.slaves.size(), 1u);
    EXPECT_EQ(d.slaves[0].cluster, 1u);
    EXPECT_TRUE(d.slaves[0].forwardsOperand);
    EXPECT_TRUE(d.slaves[0].receivesResult);
    EXPECT_EQ(d.slaves[0].srcMask, 2u); // srcs[1] = r3
}

TEST(Distribution, ZeroRegistersImposeNoConstraint)
{
    isa::RegisterMap map(2);
    const auto mi =
        isa::makeRRR(Op::Add, intReg(2), intReg(31), intReg(31));
    const auto d = isa::decideDistribution(mi, map);
    EXPECT_FALSE(d.isDual());
    EXPECT_EQ(d.masterCluster, 0u);
}

TEST(Distribution, WriteToZeroRegisterAllocatesNothing)
{
    isa::RegisterMap map(2);
    const auto mi =
        isa::makeRRR(Op::Add, intReg(31), intReg(2), intReg(4));
    const auto d = isa::decideDistribution(mi, map);
    EXPECT_FALSE(d.isDual());
    EXPECT_FALSE(d.masterWritesDest);
}

TEST(Distribution, AllGlobalUsesTieBreak)
{
    isa::RegisterMap map(2);
    const auto mi = isa::makeRRR(Op::Add, intReg(30), intReg(30),
                                 intReg(29));
    const auto d0 = isa::decideDistribution(mi, map, 0);
    const auto d1 = isa::decideDistribution(mi, map, 1);
    EXPECT_EQ(d0.masterCluster, 0u);
    EXPECT_EQ(d1.masterCluster, 1u);
    // Global destination still replicates to the other cluster.
    EXPECT_TRUE(d0.isDual());
}

TEST(Distribution, MajorityRulePicksMaster)
{
    isa::RegisterMap map(2);
    // Two cluster-1 registers vs one cluster-0 register.
    const auto mi = isa::makeRRR(Op::Add, intReg(3), intReg(5), intReg(2));
    const auto d = isa::decideDistribution(mi, map);
    EXPECT_EQ(d.masterCluster, 1u);
    ASSERT_EQ(d.slaves.size(), 1u);
    EXPECT_EQ(d.slaves[0].cluster, 0u);
    EXPECT_TRUE(d.slaves[0].forwardsOperand);
}

TEST(Distribution, StoreWithSplitOperands)
{
    isa::RegisterMap map(2);
    // Store: data in cluster 0, base in cluster 1, no destination.
    const auto mi = isa::makeStore(Op::Stl, intReg(2), intReg(3), 0);
    const auto d = isa::decideDistribution(mi, map);
    ASSERT_TRUE(d.isDual());
    EXPECT_FALSE(d.masterWritesDest);
    EXPECT_EQ(d.slaves.size(), 1u);
    EXPECT_TRUE(d.slaves[0].forwardsOperand);
}

TEST(Distribution, SingleClusterMachineNeverDual)
{
    isa::RegisterMap map(1);
    const auto mi = isa::makeRRR(Op::Add, intReg(3), intReg(2), intReg(5));
    const auto d = isa::decideDistribution(mi, map);
    EXPECT_FALSE(d.isDual());
    EXPECT_TRUE(d.masterWritesDest);
}

TEST(Distribution, FourClustersMultipleSlaves)
{
    isa::RegisterMap map(4);
    // Sources in clusters 1 and 2, dest in cluster 3.
    const auto mi = isa::makeRRR(Op::Add, intReg(7), intReg(5), intReg(6));
    const auto d = isa::decideDistribution(mi, map);
    ASSERT_TRUE(d.isDual());
    EXPECT_EQ(d.width(), 3u);
    // Master is the lowest tied cluster (1); slaves at 2 (operand) and
    // 3 (result).
    EXPECT_EQ(d.masterCluster, 1u);
    ASSERT_EQ(d.slaves.size(), 2u);
    EXPECT_EQ(d.slaves[0].cluster, 2u);
    EXPECT_TRUE(d.slaves[0].forwardsOperand);
    EXPECT_EQ(d.slaves[1].cluster, 3u);
    EXPECT_TRUE(d.slaves[1].receivesResult);
}

TEST(Distribution, GlobalDestFourClustersReplicatesEverywhere)
{
    isa::RegisterMap map(4);
    map.setGlobal(intReg(8));
    const auto mi = isa::makeRRR(Op::Add, intReg(8), intReg(4), intReg(4));
    const auto d = isa::decideDistribution(mi, map);
    EXPECT_EQ(d.width(), 4u);
    for (const auto &s : d.slaves)
        EXPECT_TRUE(s.receivesResult);
}

TEST(Distribution, DoublyReadSourceAttractsMaster)
{
    isa::RegisterMap map(2);
    // B = A * A with A odd: both read ports are in cluster 1, so the
    // majority rule executes there and forwards the result to B's home.
    const auto mi = isa::makeRRR(Op::Mull, intReg(2), intReg(3), intReg(3));
    const auto d = isa::decideDistribution(mi, map);
    EXPECT_EQ(d.masterCluster, 1u);
    ASSERT_EQ(d.slaves.size(), 1u);
    EXPECT_EQ(d.slaves[0].cluster, 0u);
    EXPECT_TRUE(d.slaves[0].receivesResult);
    EXPECT_FALSE(d.slaves[0].forwardsOperand);
    EXPECT_EQ(d.slaves[0].srcMask, 0u);
}

} // namespace
