/**
 * @file
 * Tests for superblock formation (paper §6): tail duplication,
 * straightening, dynamic-path preservation, and the interaction with
 * the partitioner.
 */

#include <gtest/gtest.h>

#include "compiler/pipeline.hh"
#include "compiler/superblock.hh"
#include "exec/trace.hh"
#include "exec/walker.hh"
#include "harness/experiment.hh"
#include "prog/builder.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;
using isa::Op;
using isa::RegClass;

/** Diamond inside a loop: the join block is a tail-duplication target. */
prog::Program
diamondLoop(std::uint64_t trip)
{
    prog::Builder b("dloop");
    const auto fn = b.function("main");
    const auto entry = b.block(fn, 1, "entry");
    const auto head = b.block(fn, static_cast<double>(trip), "head");
    const auto then_b = b.block(fn, trip * 0.7, "then");
    const auto else_b = b.block(fn, trip * 0.3, "else");
    const auto join = b.block(fn, static_cast<double>(trip), "join");
    const auto exit = b.block(fn, 1, "exit");

    b.setInsertPoint(fn, entry);
    const auto i = b.emitConst(RegClass::Int, 0, "i");
    const auto acc = b.emitConst(RegClass::Int, 0, "acc");
    b.edge(fn, entry, head);

    b.setInsertPoint(fn, head);
    const auto t = b.emitRRI(Op::And, i, 3, "t");
    b.emitBranch(Op::Bne, t, b.branch(prog::BranchModel::bernoulli(0.7)));
    b.edge(fn, head, else_b);
    b.edge(fn, head, then_b);

    b.setInsertPoint(fn, then_b);
    b.emitRRRTo(acc, Op::Add, acc, t);
    b.emitBr();
    b.edge(fn, then_b, join);

    b.setInsertPoint(fn, else_b);
    b.emitRRRTo(acc, Op::Sub, acc, t);
    b.edge(fn, else_b, join);

    b.setInsertPoint(fn, join);
    const auto sq = b.emitRRR(Op::Mull, acc, acc, "sq");
    b.emitRRRTo(acc, Op::Xor, acc, sq);
    b.emitRRITo(i, Op::Add, i, 1);
    const auto c = b.emitRRI(Op::CmpLt, i, 1000, "c");
    b.emitBranch(Op::Bne, c, b.branch(prog::BranchModel::loop(trip)));
    b.edge(fn, join, exit);
    b.edge(fn, join, head);

    b.setInsertPoint(fn, exit);
    b.emitRet();
    return b.build();
}

/** Dynamic (op) sequence of an IL program. */
std::vector<isa::Op>
opSequence(const prog::Program &p, std::uint64_t cap = 200'000)
{
    exec::CfgWalker<prog::Program> walker(p, 5);
    exec::WalkSite site;
    std::vector<isa::Op> ops;
    while (ops.size() < cap && walker.step(site)) {
        const auto op =
            p.functions[site.fn].blocks[site.blk].instrs[site.idx].op;
        if (op != isa::Op::Br) // straightening removes Br instructions
            ops.push_back(op);
    }
    return ops;
}

TEST(Superblock, DuplicatesTheJoinTail)
{
    auto p = diamondLoop(100);
    const auto nblocks = p.functions[0].blocks.size();
    const auto stats = compiler::formSuperblocks(p);
    EXPECT_GE(stats.tailsDuplicated, 1u);
    EXPECT_GT(p.functions[0].blocks.size(), nblocks);
}

TEST(Superblock, StraighteningGrowsHotBlocks)
{
    auto p = diamondLoop(100);
    std::size_t max_before = 0;
    for (const auto &blk : p.functions[0].blocks)
        max_before = std::max(max_before, blk.instrs.size());
    const auto stats = compiler::formSuperblocks(p);
    EXPECT_GE(stats.blocksMerged, 1u);
    std::size_t max_after = 0;
    for (const auto &blk : p.functions[0].blocks)
        max_after = std::max(max_after, blk.instrs.size());
    // then/else arms merge with their private join copies.
    EXPECT_GT(max_after, max_before);
}

TEST(Superblock, DynamicPathPreservedModuloBranches)
{
    auto p = diamondLoop(200);
    const auto before = opSequence(p);
    compiler::formSuperblocks(p);
    const auto after = opSequence(p);
    // Same computation ops in the same order (shared branch models keep
    // the walk identical; only unconditional branches disappear).
    EXPECT_EQ(before, after);
}

TEST(Superblock, GrowthIsBounded)
{
    auto p = diamondLoop(100);
    std::size_t before = p.staticInstCount();
    compiler::formSuperblocks(p, 1.3);
    EXPECT_LE(p.staticInstCount(),
              static_cast<std::size_t>(1.3 * before) + 16);
}

TEST(Superblock, SelfLoopsAreLeftAlone)
{
    // A pure counted self-loop has no joins to duplicate.
    prog::Builder b("selfloop");
    const auto fn = b.function("main");
    const auto e = b.block(fn, 1);
    const auto body = b.block(fn, 50);
    const auto x = b.block(fn, 1);
    b.setInsertPoint(fn, e);
    const auto i = b.emitConst(RegClass::Int, 0, "i");
    b.edge(fn, e, body);
    b.setInsertPoint(fn, body);
    b.emitRRITo(i, Op::Add, i, 1);
    const auto c = b.emitRRI(Op::CmpLt, i, 50, "c");
    b.emitBranch(Op::Bne, c, b.branch(prog::BranchModel::loop(50)));
    b.edge(fn, body, x);
    b.edge(fn, body, body);
    b.setInsertPoint(fn, x);
    b.emitRet();
    auto p = b.build();
    const auto stats = compiler::formSuperblocks(p);
    EXPECT_EQ(stats.tailsDuplicated, 0u);
}

TEST(Superblock, CompiledProgramsStillSimulate)
{
    for (const auto &bench : workloads::allBenchmarks()) {
        SCOPED_TRACE(bench.name);
        const auto program =
            bench.make(workloads::WorkloadParams{0.02});
        compiler::CompileOptions copt;
        copt.scheduler = compiler::SchedulerKind::Local;
        copt.numClusters = 2;
        copt.superblocks = true;
        const auto out = compiler::compile(program, copt);
        const auto s = harness::simulate(
            out.binary, out.hardwareMap(2),
            core::ProcessorConfig::dualCluster8(), 11, 30'000);
        EXPECT_TRUE(s.completed);
        EXPECT_GT(s.retired, 100u);
    }
}

TEST(Superblock, PathEquivalenceHoldsThroughFullPipeline)
{
    const auto p = diamondLoop(300);
    auto compileWith = [&](compiler::SchedulerKind k, unsigned n) {
        compiler::CompileOptions copt;
        copt.scheduler = k;
        copt.numClusters = n;
        copt.superblocks = true;
        return compiler::compile(p, copt);
    };
    const auto native =
        compileWith(compiler::SchedulerKind::Native, 1);
    const auto local = compileWith(compiler::SchedulerKind::Local, 2);
    auto ops = [](const prog::MachProgram &mp) {
        exec::ProgramTrace trace(mp, 13, 100'000);
        std::vector<isa::Op> out;
        while (auto di = trace.next())
            if (!di->isSpill)
                out.push_back(di->mi.op);
        return out;
    };
    EXPECT_EQ(ops(native.binary), ops(local.binary));
}

} // namespace
