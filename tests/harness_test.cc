/**
 * @file
 * Tests for the experiment harness: the Table-2 methodology runner,
 * the Figure-6 fixture, the scenario runner plumbing, and the
 * delay-model integration used by the cycle-time bench.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/figure6.hh"
#include "harness/scenarios.hh"
#include "timing/delay_model.hh"

namespace
{

using namespace mca;

TEST(Harness, PaperTable2ValuesAreThePublishedOnes)
{
    const auto &paper = harness::paperTable2();
    ASSERT_EQ(paper.size(), 6u);
    EXPECT_STREQ(paper[0].benchmark, "compress");
    EXPECT_EQ(paper[0].pctNone, -14);
    EXPECT_EQ(paper[0].pctLocal, +6);
    EXPECT_EQ(paper[3].pctNone, -5);   // ora
    EXPECT_EQ(paper[3].pctLocal, -22);
    EXPECT_EQ(paper[5].pctNone, -41);  // tomcatv
    EXPECT_EQ(paper[5].pctLocal, -19);
}

TEST(Harness, SimulateChecksMapAgainstMachine)
{
    const auto program =
        workloads::makeCompress(workloads::WorkloadParams{0.01});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Native;
    copt.numClusters = 1;
    const auto out = compiler::compile(program, copt);
    // A 2-cluster map on a 1-cluster machine must be rejected.
    EXPECT_DEATH(harness::simulate(
                     out.binary, out.hardwareMap(2),
                     core::ProcessorConfig::singleCluster8(), 1, 1'000),
                 "cluster count");
}

TEST(Harness, Table2RowRunsAllThreeConfigurations)
{
    harness::ExperimentOptions opt;
    opt.workload.scale = 0.02;
    opt.maxInsts = 15'000;
    const auto row = harness::runTable2Row(
        workloads::benchmarkByName("tomcatv"), opt);
    EXPECT_TRUE(row.single.completed);
    EXPECT_TRUE(row.dualNone.completed);
    EXPECT_TRUE(row.dualLocal.completed);
    // The native binary retires identically on both machines.
    EXPECT_EQ(row.single.retired, row.dualNone.retired);
    // Cluster-unaware code dual-distributes; the local scheduler cuts it.
    EXPECT_GT(row.dualNone.distDual, row.dualLocal.distDual);
}

TEST(Harness, Figure6FixtureShape)
{
    const auto fig = harness::makeFigure6();
    ASSERT_EQ(fig.blocks.size(), 5u);
    ASSERT_EQ(fig.values.size(), 8u);
    EXPECT_TRUE(fig.program.values[fig.values.at("S")].globalCandidate);
    // Weights follow the figure: block 4 is the hot one.
    EXPECT_DOUBLE_EQ(
        fig.program.functions[0].blocks[fig.blocks.at(4)].weight, 100.0);
    EXPECT_DOUBLE_EQ(
        fig.program.functions[0].blocks[fig.blocks.at(1)].weight, 20.0);
}

TEST(Harness, ScenariosAreDualExceptTheFirst)
{
    const auto results = harness::runScenarios();
    ASSERT_EQ(results.size(), 5u);
    EXPECT_FALSE(results[0].dual);
    for (std::size_t i = 1; i < 5; ++i)
        EXPECT_TRUE(results[i].dual) << "scenario " << i + 1;
}

TEST(Harness, CycleTimeIntegration)
{
    // The bench's bottom-line computation: a measured cycle ratio turns
    // into a net win below ~0.3 um and a loss above.
    timing::DelayModel model;
    const double ratio = 1.25; // the paper's worst case
    EXPECT_LT(model.netSpeedupPercent(ratio, 8, 4, 0.35), 0.0);
    EXPECT_GT(model.netSpeedupPercent(ratio, 8, 4, 0.18), 0.0);
    // Monotone in feature size.
    double prev = -100.0;
    for (double f = 0.5; f >= 0.1; f -= 0.05) {
        const double net = model.netSpeedupPercent(ratio, 8, 4, f);
        EXPECT_GT(net, prev);
        prev = net;
    }
}

/**
 * Golden regression pins: the simulator is fully deterministic, so key
 * experiment numbers are reproducible bit-for-bit. If a deliberate
 * model change shifts them, re-baseline by running
 *   ./build/tests/harness_test --gtest_filter='*Golden*'
 * and updating the constants — never loosen them to silence a failure
 * you cannot explain.
 */
TEST(Golden, CompressPinnedCycleCounts)
{
    harness::ExperimentOptions opt;
    opt.workload.scale = 0.05;
    opt.maxInsts = 30'000;
    const auto row = harness::runTable2Row(
        workloads::benchmarkByName("compress"), opt);
    // Relative pin: the dual machine needs more cycles, within a band.
    const double none_pct = row.pctNone;
    EXPECT_LT(none_pct, -5.0);
    EXPECT_GT(none_pct, -30.0);
    // Absolute determinism pin.
    const auto again = harness::runTable2Row(
        workloads::benchmarkByName("compress"), opt);
    EXPECT_EQ(row.single.cycles, again.single.cycles);
    EXPECT_EQ(row.dualNone.cycles, again.dualNone.cycles);
    EXPECT_EQ(row.dualLocal.cycles, again.dualLocal.cycles);
}

TEST(Golden, ScenarioTimingsPinned)
{
    const auto results = harness::runScenarios();
    // Scenario relative-timing contracts (the figures' shape), pinned
    // exactly: see scenario_test.cc for the per-event checks; here we
    // pin total cycles so a timing-model drift is caught.
    for (const auto &s : results) {
        EXPECT_GT(s.totalCycles, 20u) << s.title;   // icache cold fill
        EXPECT_LT(s.totalCycles, 60u) << s.title;   // two instructions
    }
    // Dual-distributed scenarios must not be cheaper than scenario 1.
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_GE(results[i].totalCycles, results[0].totalCycles);
}

} // namespace
