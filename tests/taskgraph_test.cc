/**
 * @file
 * Tests for the dependency-aware task-graph executor (src/taskgraph):
 * topological ordering, cycle detection, failure/cancellation
 * propagation, deterministic slot writes at any worker width, stats
 * sanity, and byte-identical campaign output across --jobs widths.
 */

#include <atomic>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/campaign.hh"
#include "runner/emit.hh"
#include "taskgraph/taskgraph.hh"

namespace
{

using namespace mca;
using taskgraph::Executor;
using taskgraph::NodeId;
using taskgraph::NodeStatus;
using taskgraph::TaskGraph;

TEST(TaskGraphTest, RunsAllNodesRespectingEdges)
{
    // Diamond: a -> {b, c} -> d. Order within {b, c} is free, but a
    // must precede both and d must come last.
    TaskGraph graph;
    std::atomic<int> clock{0};
    std::vector<int> when(4, -1);
    const NodeId a = graph.add("a", "t", [&] { when[0] = clock++; });
    const NodeId b = graph.add("b", "t", [&] { when[1] = clock++; });
    const NodeId c = graph.add("c", "t", [&] { when[2] = clock++; });
    const NodeId d = graph.add("d", "t", [&] { when[3] = clock++; });
    graph.addEdge(a, b);
    graph.addEdge(a, c);
    graph.addEdge(b, d);
    graph.addEdge(c, d);

    const auto stats = Executor(4).run(graph);
    EXPECT_EQ(stats.total, 4u);
    EXPECT_EQ(stats.ran, 4u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.cancelled, 0u);
    for (NodeId id : {a, b, c, d})
        EXPECT_EQ(graph.status(id), NodeStatus::Done);
    EXPECT_LT(when[0], when[1]);
    EXPECT_LT(when[0], when[2]);
    EXPECT_LT(when[1], when[3]);
    EXPECT_LT(when[2], when[3]);
}

TEST(TaskGraphTest, CycleDetectionThrows)
{
    TaskGraph graph;
    const NodeId a = graph.add("a", "t", [] {});
    const NodeId b = graph.add("b", "t", [] {});
    const NodeId c = graph.add("c", "t", [] {});
    graph.addEdge(a, b);
    graph.addEdge(b, c);
    graph.addEdge(c, a);
    EXPECT_THROW(graph.validateAcyclic(), std::runtime_error);
    EXPECT_THROW(Executor(2).run(graph), std::runtime_error);
    // No body ever ran.
    for (NodeId id : {a, b, c})
        EXPECT_EQ(graph.status(id), NodeStatus::Pending);
}

TEST(TaskGraphTest, EdgeArgumentChecks)
{
    TaskGraph graph;
    const NodeId a = graph.add("a", "t", [] {});
    EXPECT_THROW(graph.addEdge(a, a), std::invalid_argument);
    EXPECT_THROW(graph.addEdge(a, 99), std::invalid_argument);
    EXPECT_THROW(graph.addEdge(99, a), std::invalid_argument);
}

TEST(TaskGraphTest, FailurePropagatesRootCauseTransitively)
{
    // ok -> bad -> mid -> leaf, plus an independent node that must
    // still run. bad throws; mid and leaf are cancelled with bad's
    // error text, verbatim.
    TaskGraph graph;
    bool leafRan = false;
    bool aloneRan = false;
    const NodeId ok = graph.add("ok", "t", [] {});
    const NodeId bad = graph.add("bad", "t", [] {
        throw std::runtime_error("boom: no such benchmark");
    });
    const NodeId mid = graph.add("mid", "t", [&] { leafRan = true; });
    const NodeId leaf = graph.add("leaf", "t", [&] { leafRan = true; });
    const NodeId alone = graph.add("alone", "t", [&] { aloneRan = true; });
    graph.addEdge(ok, bad);
    graph.addEdge(bad, mid);
    graph.addEdge(mid, leaf);

    const auto stats = Executor(4).run(graph);
    EXPECT_EQ(graph.status(ok), NodeStatus::Done);
    EXPECT_EQ(graph.status(bad), NodeStatus::Failed);
    EXPECT_EQ(graph.error(bad), "boom: no such benchmark");
    EXPECT_EQ(graph.status(mid), NodeStatus::Cancelled);
    EXPECT_EQ(graph.status(leaf), NodeStatus::Cancelled);
    EXPECT_EQ(graph.error(mid), "boom: no such benchmark");
    EXPECT_EQ(graph.error(leaf), "boom: no such benchmark");
    EXPECT_EQ(graph.status(alone), NodeStatus::Done);
    EXPECT_FALSE(leafRan);
    EXPECT_TRUE(aloneRan);
    EXPECT_EQ(stats.ran, 3u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.cancelled, 2u);
}

TEST(TaskGraphTest, CancellationBlamesLowestNumberedFailedDep)
{
    // Two failing deps feed one node; the cancellation text must come
    // from the lowest-numbered one so the outcome is width-invariant.
    TaskGraph graph;
    const NodeId f1 =
        graph.add("f1", "t", [] { throw std::runtime_error("first"); });
    const NodeId f2 =
        graph.add("f2", "t", [] { throw std::runtime_error("second"); });
    const NodeId sink = graph.add("sink", "t", [] {});
    graph.addEdge(f1, sink);
    graph.addEdge(f2, sink);

    for (unsigned width : {1u, 4u}) {
        Executor(width).run(graph);
        EXPECT_EQ(graph.status(sink), NodeStatus::Cancelled) << width;
        EXPECT_EQ(graph.error(sink), "first") << width;
    }
}

TEST(TaskGraphTest, DeterministicSlotsAtAnyWidth)
{
    // 64 independent nodes write into pre-sized slots; the result
    // vector must be identical at every worker width.
    constexpr std::size_t kNodes = 64;
    std::vector<std::vector<int>> runs;
    for (unsigned width : {1u, 4u, 16u}) {
        TaskGraph graph;
        std::vector<int> slots(kNodes, 0);
        for (std::size_t i = 0; i < kNodes; ++i)
            graph.add("n" + std::to_string(i), "t",
                      [&slots, i] { slots[i] = static_cast<int>(i * i); });
        const auto stats = Executor(width).run(graph);
        EXPECT_EQ(stats.ran, kNodes);
        runs.push_back(std::move(slots));
    }
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

TEST(TaskGraphTest, EdgesAreHappensBefore)
{
    // A chain mutating a plain (non-atomic) int: correct iff every
    // edge synchronizes. TSan (scripts/ci.sh thread job) verifies the
    // happens-before claim; the count checks the ordering itself.
    TaskGraph graph;
    int counter = 0;
    constexpr int kChain = 100;
    NodeId prev = graph.add("n0", "t", [&] { ++counter; });
    for (int i = 1; i < kChain; ++i) {
        const NodeId next =
            graph.add("n" + std::to_string(i), "t", [&] { ++counter; });
        graph.addEdge(prev, next);
        prev = next;
    }
    Executor(8).run(graph);
    EXPECT_EQ(counter, kChain);
}

TEST(TaskGraphTest, StatsAndSpansAreConsistent)
{
    TaskGraph graph;
    const NodeId a = graph.add("a", "compile", [] {});
    const NodeId b = graph.add("b", "sim", [] {});
    const NodeId c = graph.add("c", "sim", [] {});
    graph.addEdge(a, b);
    graph.addEdge(a, c);

    const unsigned width = 2;
    const auto stats = Executor(width).run(graph);
    EXPECT_EQ(stats.total, 3u);
    EXPECT_EQ(stats.ran, 3u);
    ASSERT_EQ(stats.spans.size(), 3u);
    EXPECT_GT(stats.wallMs, 0.0);
    EXPECT_GE(stats.criticalPathMs, 0.0);
    EXPECT_LE(stats.criticalPathMs, stats.wallMs + 1.0);
    EXPECT_GE(stats.maxQueueDepth, 1u);
    for (std::size_t i = 1; i < stats.spans.size(); ++i)
        EXPECT_LE(stats.spans[i - 1].startNs, stats.spans[i].startNs);
    for (const auto &span : stats.spans) {
        EXPECT_LE(span.startNs, span.endNs);
        EXPECT_LT(span.lane, width);
        EXPECT_FALSE(span.name.empty());
        EXPECT_FALSE(span.kind.empty());
    }
}

TEST(TaskGraphTest, GraphCanBeReRun)
{
    TaskGraph graph;
    int runs = 0;
    const NodeId a = graph.add("a", "t", [&] { ++runs; });
    const NodeId b = graph.add("b", "t", [&] { ++runs; });
    graph.addEdge(a, b);
    Executor(2).run(graph);
    Executor(2).run(graph);
    EXPECT_EQ(runs, 4);
    EXPECT_EQ(graph.status(a), NodeStatus::Done);
    EXPECT_EQ(graph.status(b), NodeStatus::Done);
}

// ---------------------------------------------------------------------
// Campaign-level determinism: the executor-backed runner must produce
// byte-identical emitted output at every worker width.

std::vector<runner::JobSpec>
compileSharedGrid()
{
    runner::CampaignGrid grid;
    grid.benchmarks = {"compress", "ora"};
    grid.machines = {"single8", "dual8"};
    grid.schedulers = {"native", "local"};
    grid.scale = 0.05;
    grid.maxInsts = 10'000;
    return runner::expandGrid(grid);
}

/** Emitted JSONL + CSV with the host-time column zeroed. */
std::string
emittedBytes(std::vector<runner::JobResult> results)
{
    for (auto &r : results)
        r.wallMs = 0.0;
    std::ostringstream out;
    runner::emitJsonLines(out, results);
    runner::emitCsv(out, results);
    return out.str();
}

TEST(CampaignGraph, ByteIdenticalOutputAcrossWidths)
{
    const auto specs = compileSharedGrid();
    std::vector<std::string> bytes;
    for (unsigned width : {1u, 4u, 16u}) {
        runner::CampaignOptions options;
        options.jobs = width;
        bytes.push_back(emittedBytes(runner::runCampaign(specs, options)));
    }
    EXPECT_EQ(bytes[0], bytes[1]);
    EXPECT_EQ(bytes[0], bytes[2]);
    EXPECT_NE(bytes[0].find("\"status\":\"ok\""), std::string::npos);
}

TEST(CampaignGraph, SampledRunByteIdenticalAcrossWidths)
{
    runner::JobSpec spec;
    spec.benchmark = "compress";
    spec.scale = 0.5;
    spec.maxInsts = 60'000;
    spec.samplePeriod = 20'000;
    const std::vector<runner::JobSpec> specs = {spec};

    std::vector<std::string> bytes;
    for (unsigned width : {1u, 4u, 16u}) {
        runner::CampaignOptions options;
        options.jobs = width;
        auto results = runner::runCampaign(specs, options);
        ASSERT_EQ(results.size(), 1u);
        EXPECT_EQ(results[0].status, runner::JobStatus::Ok) << width;
        EXPECT_TRUE(results[0].sampled);
        bytes.push_back(emittedBytes(std::move(results)));
    }
    EXPECT_EQ(bytes[0], bytes[1]);
    EXPECT_EQ(bytes[0], bytes[2]);
}

TEST(CampaignGraph, ContinuesPastFailedJobs)
{
    // One unbuildable spec must not take down the rest of the grid:
    // its compile node fails, its sim node reports Failed, and every
    // other job still completes Ok.
    auto specs = compileSharedGrid();
    specs[2].benchmark = "nonesuch";

    runner::CampaignOptions options;
    options.jobs = 4;
    runner::CampaignSummary summary;
    const auto results = runner::runCampaign(specs, options, &summary);
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 2) {
            EXPECT_EQ(results[i].status, runner::JobStatus::Failed);
            EXPECT_FALSE(results[i].error.empty());
        } else {
            EXPECT_EQ(results[i].status, runner::JobStatus::Ok) << i;
        }
    }
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(summary.ok, specs.size() - 1);
}

} // namespace
