/**
 * @file
 * Unit tests for the compiler stack: liveness, interference, the local
 * scheduler (including the paper's Figure-6 example), register
 * allocation with cluster-aware spilling, list scheduling, and the
 * local optimizations.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/interference.hh"
#include "compiler/liveness.hh"
#include "compiler/optimize.hh"
#include "compiler/partition.hh"
#include "compiler/pipeline.hh"
#include "compiler/regalloc.hh"
#include "compiler/schedule.hh"
#include "harness/figure6.hh"
#include "prog/builder.hh"
#include "prog/verify.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;
using isa::Op;
using isa::RegClass;

/** Diamond: x defined at entry, used in both arms and after the join. */
prog::Program
diamondProgram(prog::ValueId *x_out = nullptr)
{
    prog::Builder b("diamond");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1, "entry");
    const auto bt = b.block(fn, 1, "then");
    const auto be = b.block(fn, 1, "else");
    const auto bj = b.block(fn, 1, "join");

    b.setInsertPoint(fn, b0);
    const auto x = b.emitConst(RegClass::Int, 1, "x");
    const auto c = b.emitConst(RegClass::Int, 0, "c");
    b.emitBranch(Op::Bne, c, b.branch(prog::BranchModel::bernoulli(0.5)));
    b.edge(fn, b0, be);
    b.edge(fn, b0, bt);

    b.setInsertPoint(fn, bt);
    b.emitRRI(Op::Add, x, 1, "t");
    b.emitBr();
    b.edge(fn, bt, bj);

    b.setInsertPoint(fn, be);
    b.emitRRI(Op::Sub, x, 1, "e");
    b.edge(fn, be, bj);

    b.setInsertPoint(fn, bj);
    b.emitRRI(Op::Add, x, 5, "j");
    b.emitRet();

    if (x_out)
        *x_out = x;
    return b.build();
}

// --- liveness ------------------------------------------------------------

TEST(Liveness, ValueLiveAcrossDiamond)
{
    prog::ValueId x;
    const auto p = diamondProgram(&x);
    const auto live = compiler::computeLiveness(p);
    const auto &fl = live.functions[0];
    // x is live out of entry and into all three later blocks.
    EXPECT_TRUE(fl.liveOut[0].test(x));
    EXPECT_TRUE(fl.liveIn[1].test(x));
    EXPECT_TRUE(fl.liveIn[2].test(x));
    EXPECT_TRUE(fl.liveIn[3].test(x));
    // x is dead after its last use in the join block.
    EXPECT_FALSE(fl.liveOut[3].test(x));
}

TEST(Liveness, DefKillsLiveness)
{
    prog::Builder b("kill");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    const auto b1 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto x = b.emitConst(RegClass::Int, 1, "x");
    b.edge(fn, b0, b1);
    b.setInsertPoint(fn, b1);
    // x redefined before any use: not live into b1.
    prog::Instr redef;
    redef.op = Op::Lda;
    redef.dest = x;
    redef.imm = 7;
    b.emitRaw(redef);
    b.emitRRI(Op::Add, x, 1, "y");
    b.emitRet();
    const auto p = b.build();
    const auto live = compiler::computeLiveness(p);
    EXPECT_FALSE(live.functions[0].liveIn[1].test(x));
}

TEST(Liveness, LoopKeepsCarriedValueLive)
{
    prog::Builder b("loop");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    const auto b1 = b.block(fn, 10);
    const auto b2 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto acc = b.emitConst(RegClass::Int, 0, "acc");
    b.edge(fn, b0, b1);
    b.setInsertPoint(fn, b1);
    b.emitRRITo(acc, Op::Add, acc, 1);
    const auto c = b.emitRRI(Op::CmpLt, acc, 10, "c");
    b.emitBranch(Op::Bne, c, b.branch(prog::BranchModel::loop(10)));
    b.edge(fn, b1, b2);
    b.edge(fn, b1, b1);
    b.setInsertPoint(fn, b2);
    b.emitRRI(Op::Add, acc, 0, "out");
    b.emitRet();
    const auto p = b.build();
    const auto live = compiler::computeLiveness(p);
    // acc is live around the back edge.
    EXPECT_TRUE(live.functions[0].liveOut[1].test(acc));
    EXPECT_TRUE(live.functions[0].liveIn[1].test(acc));
}

TEST(Liveness, CallCrossingValuesDetected)
{
    const auto p = workloads::makeDoduc(workloads::WorkloadParams{0.01});
    const auto live = compiler::computeLiveness(p);
    const auto crossing = compiler::callCrossingValues(p, live);
    // doduc keeps fp values live across its kernel calls.
    EXPECT_GT(crossing.count(), 0u);
}

TEST(LivenessDeath, CrossFunctionLocalValuePanics)
{
    prog::Builder b("bad");
    const auto f0 = b.function("a");
    const auto f1 = b.function("b");
    const auto b0 = b.block(f0, 1);
    const auto b1 = b.block(f1, 1);
    b.setInsertPoint(f0, b0);
    const auto x = b.emitConst(RegClass::Int, 1, "x");
    b.emitRet();
    b.setInsertPoint(f1, b1);
    b.emitRRI(Op::Add, x, 1, "y");
    b.emitRet();
    const auto p = b.build();
    EXPECT_DEATH(compiler::checkValueLocality(p), "function-local");
}

// --- interference ------------------------------------------------------

TEST(Interference, SimultaneouslyLiveValuesInterfere)
{
    prog::Builder b("intf");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto x = b.emitConst(RegClass::Int, 1, "x");
    const auto y = b.emitConst(RegClass::Int, 2, "y");
    b.emitRRR(Op::Add, x, y, "z");
    b.emitRet();
    const auto p = b.build();
    const auto live = compiler::computeLiveness(p);
    BitSet none(p.values.size());
    const auto g = compiler::buildInterference(p, 0, RegClass::Int, live,
                                               none);
    EXPECT_TRUE(g.interferes(x, y));
}

TEST(Interference, SerialChainDoesNotInterfere)
{
    prog::Builder b("chain");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto a = b.emitConst(RegClass::Int, 1, "a");
    const auto c = b.emitRRI(Op::Add, a, 1, "c");   // a dies here
    const auto d = b.emitRRI(Op::Add, c, 1, "d");   // c dies here
    b.emitRRI(Op::Add, d, 1, "e");
    b.emitRet();
    const auto p = b.build();
    const auto live = compiler::computeLiveness(p);
    BitSet none(p.values.size());
    const auto g = compiler::buildInterference(p, 0, RegClass::Int, live,
                                               none);
    EXPECT_FALSE(g.interferes(a, c));
    EXPECT_FALSE(g.interferes(c, d));
}

TEST(Interference, ClassesAreSeparate)
{
    prog::Builder b("cls");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto x = b.emitConst(RegClass::Int, 1, "x");
    const auto f = b.emitConst(RegClass::Fp, 2, "f");
    b.emitRRR(Op::Add, x, x, "y");
    b.emitRRR(Op::AddF, f, f, "g");
    b.emitRet();
    const auto p = b.build();
    const auto live = compiler::computeLiveness(p);
    BitSet none(p.values.size());
    const auto g = compiler::buildInterference(p, 0, RegClass::Int, live,
                                               none);
    // The fp value is not even a node of the int graph.
    EXPECT_EQ(g.nodeOf(f), ~std::size_t{0});
}

// --- the local scheduler and Figure 6 -----------------------------------

TEST(Figure6, BlockTraversalOrderMatchesPaper)
{
    const auto fig = harness::makeFigure6();
    compiler::PartitionOptions opt;
    compiler::PartitionTrace trace;
    compiler::localSchedule(fig.program, opt, &trace);
    // Paper: blocks visited in the order 4, 1, 5, 3, 2.
    ASSERT_GE(trace.blockOrder.size(), 5u);
    EXPECT_EQ(trace.blockOrder[0].second, fig.blocks.at(4));
    EXPECT_EQ(trace.blockOrder[1].second, fig.blocks.at(1));
    EXPECT_EQ(trace.blockOrder[2].second, fig.blocks.at(5));
    EXPECT_EQ(trace.blockOrder[3].second, fig.blocks.at(3));
    EXPECT_EQ(trace.blockOrder[4].second, fig.blocks.at(2));
}

TEST(Figure6, AssignmentOrderMatchesPaper)
{
    const auto fig = harness::makeFigure6();
    compiler::PartitionOptions opt;
    compiler::PartitionTrace trace;
    compiler::localSchedule(fig.program, opt, &trace);
    // Paper: live ranges assigned in the order C, G, B, A, E, D, H.
    const std::vector<std::string> expected = {"C", "G", "B", "A",
                                               "E", "D", "H"};
    ASSERT_GE(trace.assignmentOrder.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(fig.program.values[trace.assignmentOrder[i]].name,
                  expected[i])
            << "position " << i;
}

TEST(Figure6, GlobalCandidateSIsNeverAssigned)
{
    const auto fig = harness::makeFigure6();
    compiler::PartitionOptions opt;
    const auto assignment = compiler::localSchedule(fig.program, opt);
    EXPECT_FALSE(assignment.assigned(fig.values.at("S")));
}

TEST(LocalScheduler, EveryWrittenLocalValueGetsACluster)
{
    const auto p = workloads::makeCompress(workloads::WorkloadParams{0.01});
    compiler::PartitionOptions opt;
    const auto assignment = compiler::localSchedule(p, opt);
    for (prog::ValueId v = 0; v < p.values.size(); ++v) {
        if (p.values[v].globalCandidate)
            continue;
        // Written values must be assigned.
        bool written = false;
        for (const auto &fn : p.functions)
            for (const auto &blk : fn.blocks)
                for (const auto &in : blk.instrs)
                    written |= (in.dest == v);
        if (written) {
            EXPECT_TRUE(assignment.assigned(v)) << "value " << v;
        }
    }
}

TEST(LocalScheduler, ImbalanceForcesUnderSubscribedCluster)
{
    // One big block whose first values all vote for cluster 0; once the
    // spread exceeds the threshold, new live ranges must go to the
    // under-subscribed cluster.
    prog::Builder b("imb");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 100, "big");
    b.setInsertPoint(fn, b0);
    const auto seedv = b.emitConst(RegClass::Int, 1, "seed");
    std::vector<prog::ValueId> chain = {seedv};
    for (int i = 0; i < 12; ++i)
        chain.push_back(
            b.emitRRI(Op::Add, chain.back(), 1, "v" + std::to_string(i)));
    b.emitRet();
    const auto p = b.build();
    compiler::PartitionOptions opt;
    opt.imbalanceThreshold = 3;
    const auto assignment = compiler::localSchedule(p, opt);
    bool used[2] = {false, false};
    for (auto v : chain)
        if (assignment.assigned(v))
            used[assignment.clusterOf(v)] = true;
    EXPECT_TRUE(used[0]);
    EXPECT_TRUE(used[1]);
}

TEST(RoundRobin, AlternatesClusters)
{
    const auto p = workloads::makeOra(workloads::WorkloadParams{0.01});
    compiler::PartitionOptions opt;
    const auto assignment = compiler::roundRobinSchedule(p, opt);
    std::size_t c0 = 0, c1 = 0;
    for (prog::ValueId v = 0; v < p.values.size(); ++v) {
        if (assignment.clusterOf(v) == 0)
            ++c0;
        else if (assignment.clusterOf(v) == 1)
            ++c1;
    }
    EXPECT_NEAR(static_cast<double>(c0),
                static_cast<double>(c1), 2.0);
}

// --- register allocation ---------------------------------------------------

TEST(Regalloc, NoInterferingValuesShareARegister)
{
    const auto p = workloads::makeCompress(workloads::WorkloadParams{0.02});
    compiler::AllocOptions opt;
    opt.regMap = isa::RegisterMap(1);
    const auto result = compiler::allocateRegisters(p, opt);

    const auto live = compiler::computeLiveness(result.rewritten);
    BitSet spilled(result.rewritten.values.size());
    for (std::size_t ci = 0; ci < 2; ++ci) {
        const auto cls = static_cast<RegClass>(ci);
        const auto g = compiler::buildInterference(result.rewritten, 0,
                                                   cls, live, spilled);
        for (std::size_t i = 0; i < g.numNodes(); ++i) {
            const auto vi = g.valueOf(i);
            g.forEachNeighbor(i, [&](std::size_t j) {
                const auto vj = g.valueOf(j);
                EXPECT_FALSE(result.regOf[vi] == result.regOf[vj])
                    << "values " << vi << " and " << vj << " share "
                    << isa::regName(result.regOf[vi]);
            });
        }
    }
}

TEST(Regalloc, SerialChainCollapsesToOneRegister)
{
    prog::Builder b("chain");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto a = b.emitConst(RegClass::Int, 1, "a");
    auto prev = a;
    std::vector<prog::ValueId> links;
    for (int i = 0; i < 6; ++i) {
        prev = b.emitRRI(Op::Add, prev, 1, "l" + std::to_string(i));
        links.push_back(prev);
    }
    b.emitRet();
    const auto p = b.build();
    compiler::AllocOptions opt;
    opt.regMap = isa::RegisterMap(1);
    const auto result = compiler::allocateRegisters(p, opt);
    for (auto v : links)
        EXPECT_TRUE(result.regOf[v] == result.regOf[links[0]]);
}

TEST(Regalloc, GlobalCandidatesPrecoloredDescending)
{
    prog::Builder b("glob");
    const auto sp = b.globalValue(RegClass::Int, "sp");
    const auto gp = b.globalValue(RegClass::Int, "gp");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    b.emitRRR(Op::Add, sp, gp, "x");
    b.emitRet();
    const auto p = b.build();
    compiler::AllocOptions opt;
    opt.regMap = isa::RegisterMap(2);
    const auto result = compiler::allocateRegisters(p, opt);
    EXPECT_TRUE(result.regOf[sp] == isa::intReg(isa::kStackPointer));
    EXPECT_TRUE(result.regOf[gp] == isa::intReg(isa::kGlobalPointer));
    ASSERT_EQ(result.globalRegs.size(), 2u);
    EXPECT_TRUE(result.finalMap.isGlobal(isa::intReg(30)));
}

TEST(Regalloc, ClusterAssignmentRespectedByParity)
{
    const auto p = workloads::makeCompress(workloads::WorkloadParams{0.02});
    compiler::PartitionOptions popt;
    const auto assignment = compiler::localSchedule(p, popt);
    compiler::AllocOptions opt;
    opt.regMap = isa::RegisterMap(2);
    opt.assignment = assignment;
    const auto result = compiler::allocateRegisters(p, opt);
    for (prog::ValueId v = 0; v < p.values.size(); ++v) {
        if (p.values[v].globalCandidate || result.spilledToMemory[v])
            continue;
        const int cluster = result.finalAssignment.clusterOf(v);
        if (cluster < 0)
            continue;
        const auto reg = result.regOf[v];
        if (reg.isZero())
            continue;
        EXPECT_EQ(reg.index % 2, static_cast<unsigned>(cluster))
            << "value " << v << " reg " << isa::regName(reg);
    }
}

TEST(Regalloc, HighPressureSpillsToMemory)
{
    // More than 32 simultaneously live values cannot fit one class.
    prog::Builder b("pressure");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    std::vector<prog::ValueId> vals;
    for (int i = 0; i < 40; ++i)
        vals.push_back(b.emitConst(RegClass::Int, i, "v"));
    // Use them all afterwards so they are simultaneously live.
    auto acc = vals[0];
    for (int i = 1; i < 40; ++i)
        acc = b.emitRRR(Op::Add, acc, vals[i], "s");
    b.emitRet();
    const auto p = b.build();
    compiler::AllocOptions opt;
    opt.regMap = isa::RegisterMap(1);
    const auto result = compiler::allocateRegisters(p, opt);
    EXPECT_GT(result.memorySpills, 0u);
    EXPECT_GT(result.spillLoadsInserted, 0u);
    EXPECT_GT(result.spillStoresInserted, 0u);
    EXPECT_GT(result.rounds, 1u);
    // The rewritten program still validates and has more instructions.
    EXPECT_GT(result.rewritten.staticInstCount(), p.staticInstCount());
}

TEST(Regalloc, CallCrossingValuesAreForceSpilled)
{
    const auto p = workloads::makeDoduc(workloads::WorkloadParams{0.01});
    compiler::AllocOptions opt;
    opt.regMap = isa::RegisterMap(1);
    const auto result = compiler::allocateRegisters(p, opt);
    EXPECT_GT(result.callCrossingSpills, 0u);
    EXPECT_GT(result.spillLoadsInserted, 0u);
}

TEST(Regalloc, SpillSlotsAreUniquePerValue)
{
    prog::Builder b("slots");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    std::vector<prog::ValueId> vals;
    for (int i = 0; i < 40; ++i)
        vals.push_back(b.emitConst(RegClass::Int, i, "v"));
    auto acc = vals[0];
    for (int i = 1; i < 40; ++i)
        acc = b.emitRRR(Op::Add, acc, vals[i], "s");
    b.emitRet();
    const auto p = b.build();
    compiler::AllocOptions opt;
    opt.regMap = isa::RegisterMap(1);
    const auto result = compiler::allocateRegisters(p, opt);
    // All fixed spill streams must target distinct slots.
    std::vector<Addr> slots;
    for (const auto &s : result.rewritten.streams)
        if (s.kind == prog::AddrStream::Kind::Fixed &&
            s.base >= result.rewritten.spillBase)
            slots.push_back(s.base);
    std::sort(slots.begin(), slots.end());
    EXPECT_TRUE(std::adjacent_find(slots.begin(), slots.end()) ==
                slots.end());
}

// --- emitMachine ------------------------------------------------------------

TEST(EmitMachine, PreservesShapeAndStreams)
{
    const auto p = workloads::makeCompress(workloads::WorkloadParams{0.01});
    compiler::AllocOptions opt;
    opt.regMap = isa::RegisterMap(1);
    const auto alloc = compiler::allocateRegisters(p, opt);
    const auto mp = compiler::emitMachine(alloc);
    ASSERT_EQ(mp.functions.size(), alloc.rewritten.functions.size());
    EXPECT_EQ(mp.staticInstCount(), alloc.rewritten.staticInstCount());
    EXPECT_EQ(mp.streams.size(), alloc.rewritten.streams.size());
    // Every memory op has a base register slot (zero reg if none).
    for (const auto &fn : mp.functions)
        for (const auto &blk : fn.blocks)
            for (const auto &e : blk.instrs) {
                if (isa::isLoad(e.mi.op)) {
                    EXPECT_TRUE(e.mi.srcs[0].has_value());
                }
                if (isa::isStore(e.mi.op)) {
                    EXPECT_TRUE(e.mi.srcs[1].has_value());
                }
            }
}

// --- list scheduler ---------------------------------------------------------

TEST(ListSchedule, PreservesDataDependences)
{
    auto p = workloads::makeCompress(workloads::WorkloadParams{0.01});
    compiler::listSchedule(p);
    // In every block, no use may precede its in-block def, stores stay
    // ordered relative to each other, and terminators stay last.
    for (const auto &fn : p.functions) {
        for (const auto &blk : fn.blocks) {
            std::map<prog::ValueId, std::size_t> def_pos;
            std::size_t last_store = 0;
            bool seen_store = false;
            for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
                const auto &in = blk.instrs[i];
                for (auto s : in.srcs)
                    if (s != prog::kNoValue && def_pos.count(s)) {
                        EXPECT_LT(def_pos[s], i + 1);
                    }
                if (in.dest != prog::kNoValue)
                    def_pos[in.dest] = i;
                if (isa::isStore(in.op)) {
                    if (seen_store) {
                        EXPECT_GT(i, last_store);
                    }
                    last_store = i;
                    seen_store = true;
                }
                if (isa::isCtrlFlow(in.op)) {
                    EXPECT_EQ(i, blk.instrs.size() - 1);
                }
            }
        }
    }
}

TEST(ListSchedule, HoistsLongLatencyOps)
{
    prog::Builder b("hoist");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto a = b.liveInValue(RegClass::Fp, "a");
    // Cheap independent work first in program order...
    const auto x = b.emitConst(RegClass::Int, 1, "x");
    b.emitRRI(Op::Add, x, 1, "y");
    // ...then a divide chain that dominates the critical path.
    const auto d = b.emitRRR(Op::DivD, a, a, "d");
    b.emitRRR(Op::AddF, d, a, "e");
    b.emitRet();
    auto p = b.build();
    const auto stats = compiler::listSchedule(p);
    EXPECT_GT(stats.instsMoved, 0u);
    // The divide's operand def (a) and the divide must now come before
    // the cheap adds that have no consumers on the critical path.
    const auto &instrs = p.functions[0].blocks[0].instrs;
    std::size_t div_pos = 99, add_pos = 99;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        if (instrs[i].op == Op::DivD)
            div_pos = i;
        if (instrs[i].op == Op::Add)
            add_pos = i;
    }
    EXPECT_LT(div_pos, add_pos);
}

// --- optimizations ------------------------------------------------------------

TEST(Optimize, ConstantFoldingCollapsesArithmetic)
{
    prog::Builder b("fold");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto a = b.emitConst(RegClass::Int, 6, "a");
    const auto c = b.emitConst(RegClass::Int, 7, "c");
    const auto d = b.emitRRR(Op::Mull, a, c, "d"); // 42, foldable
    b.emitStore(Op::Stl, d, b.stream(prog::AddrStream::fixed(0x100)), a);
    b.emitRet();
    auto p = b.build();
    const auto stats = compiler::optimizeProgram(p);
    EXPECT_GE(stats.constantsFolded, 1u);
    // The multiply became an Lda of 42.
    bool found = false;
    for (const auto &in : p.functions[0].blocks[0].instrs)
        if (in.op == Op::Lda && in.imm == 42)
            found = true;
    EXPECT_TRUE(found);
}

TEST(Optimize, ImmediatePropagation)
{
    prog::Builder b("imm");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto x = b.liveInValue(RegClass::Int, "x");
    const auto k = b.emitConst(RegClass::Int, 3, "k");
    const auto y = b.emitRRR(Op::Add, x, k, "y"); // -> add x, #3
    b.emitStore(Op::Stl, y, b.stream(prog::AddrStream::fixed(0x100)), x);
    b.emitRet();
    auto p = b.build();
    const auto stats = compiler::optimizeProgram(p);
    EXPECT_GE(stats.immediatesPropagated, 1u);
}

TEST(Optimize, CseReplacesRepeatWithMove)
{
    prog::Builder b("cse");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto x = b.liveInValue(RegClass::Int, "x");
    const auto y = b.liveInValue(RegClass::Int, "y");
    const auto s1 = b.emitRRR(Op::Mull, x, y, "s1");
    const auto s2 = b.emitRRR(Op::Mull, x, y, "s2"); // same expression
    const auto st = b.stream(prog::AddrStream::fixed(0x100));
    b.emitStore(Op::Stl, s1, st, x);
    b.emitStore(Op::Stl, s2, st, x);
    b.emitRet();
    auto p = b.build();
    const auto stats = compiler::localCse(p);
    EXPECT_EQ(stats.cseReplaced, 1u);
    EXPECT_EQ(p.functions[0].blocks[0].instrs[1].op, Op::Mov);
}

TEST(Optimize, CseRespectsRedefinition)
{
    prog::Builder b("csekill");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto x = b.liveInValue(RegClass::Int, "x");
    const auto y = b.liveInValue(RegClass::Int, "y");
    const auto s1 = b.emitRRR(Op::Add, x, y, "s1");
    prog::Instr redef; // x changes between the two adds
    redef.op = Op::Lda;
    redef.dest = x;
    redef.imm = 9;
    b.emitRaw(redef);
    const auto s2 = b.emitRRR(Op::Add, x, y, "s2");
    const auto st = b.stream(prog::AddrStream::fixed(0x100));
    b.emitStore(Op::Stl, s1, st, x);
    b.emitStore(Op::Stl, s2, st, x);
    b.emitRet();
    auto p = b.build();
    const auto stats = compiler::localCse(p);
    EXPECT_EQ(stats.cseReplaced, 0u);
}

TEST(Optimize, DeadCodeRemovedTransitively)
{
    prog::Builder b("dce");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto a = b.emitConst(RegClass::Int, 1, "a");
    const auto bb = b.emitRRI(Op::Add, a, 1, "b"); // only feeds dead c
    b.emitRRI(Op::Add, bb, 1, "c");                // dead
    b.emitRet();
    auto p = b.build();
    const auto stats = compiler::deadCodeElim(p);
    EXPECT_EQ(stats.deadRemoved, 3u);
    EXPECT_EQ(p.functions[0].blocks[0].instrs.size(), 1u); // just ret
}

TEST(Optimize, StoresAndBranchesNeverRemoved)
{
    auto p = workloads::makeCompress(workloads::WorkloadParams{0.01});
    const auto before_stores = [&] {
        std::size_t n = 0;
        for (const auto &fn : p.functions)
            for (const auto &blk : fn.blocks)
                for (const auto &in : blk.instrs)
                    n += isa::isStore(in.op) || isa::isCtrlFlow(in.op);
        return n;
    }();
    compiler::optimizeProgram(p);
    std::size_t after = 0;
    for (const auto &fn : p.functions)
        for (const auto &blk : fn.blocks)
            for (const auto &in : blk.instrs)
                after += isa::isStore(in.op) || isa::isCtrlFlow(in.op);
    EXPECT_EQ(after, before_stores);
}

// --- pipeline ------------------------------------------------------------

TEST(Pipeline, NativeBinaryUsesFullRegisterFile)
{
    const auto p = workloads::makeCompress(workloads::WorkloadParams{0.01});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Native;
    copt.numClusters = 1;
    const auto out = compiler::compile(p, copt);
    // Some value must have landed in each parity class.
    bool even = false, odd = false;
    for (const auto &reg : out.alloc.regOf) {
        if (reg.isZero())
            continue;
        (reg.index % 2 == 0 ? even : odd) = true;
    }
    EXPECT_TRUE(even);
    EXPECT_TRUE(odd);
}

TEST(Pipeline, HardwareMapCarriesGlobals)
{
    const auto p = workloads::makeCompress(workloads::WorkloadParams{0.01});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Native;
    copt.numClusters = 1;
    const auto out = compiler::compile(p, copt);
    const auto map = out.hardwareMap(2);
    EXPECT_EQ(map.numClusters(), 2u);
    EXPECT_TRUE(map.isGlobal(isa::intReg(30)));
    EXPECT_TRUE(map.isGlobal(isa::intReg(29)));
}

TEST(Pipeline, LocalSchedulerProfilesFirst)
{
    const auto p = workloads::makeGcc1(workloads::WorkloadParams{0.01});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Local;
    copt.numClusters = 2;
    copt.profileMaxInsts = 5'000;
    const auto out = compiler::compile(p, copt);
    EXPECT_GT(out.partitionTrace.blockOrder.size(), 10u);
    EXPECT_GT(out.binary.staticInstCount(), 0u);
}

} // namespace

// --- copy propagation -----------------------------------------------------

namespace copyprop
{

using namespace mca;
using isa::Op;
using isa::RegClass;

TEST(CopyPropagate, CseMovesAreForwardedAndDied)
{
    prog::Builder b("cp");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto x = b.liveInValue(RegClass::Int, "x");
    const auto y = b.liveInValue(RegClass::Int, "y");
    const auto s1 = b.emitRRR(Op::Mull, x, y, "s1");
    const auto s2 = b.emitRRR(Op::Mull, x, y, "s2"); // CSE -> Mov
    const auto st = b.stream(prog::AddrStream::fixed(0x100));
    b.emitStore(Op::Stl, s1, st, x);
    b.emitStore(Op::Stl, s2, st, x);
    b.emitRet();
    auto p = b.build();
    const auto stats = compiler::optimizeProgram(p);
    EXPECT_GE(stats.cseReplaced, 1u);
    EXPECT_GE(stats.copiesPropagated, 1u);
    // After propagation + DCE the Mov itself is gone: both stores read
    // s1 directly.
    for (const auto &in : p.functions[0].blocks[0].instrs) {
        EXPECT_NE(in.op, Op::Mov);
        if (isa::isStore(in.op)) {
            EXPECT_EQ(in.srcs[0], s1);
        }
    }
}

TEST(CopyPropagate, MultiplyDefinedCopiesStayBlockLocal)
{
    prog::Builder b("cp2");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    const auto b1 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto x = b.liveInValue(RegClass::Int, "x");
    const auto d = b.value(RegClass::Int, "d");
    b.emitRRITo(d, Op::Mov, x, 0);     // d = x
    b.emitRRITo(d, Op::Add, d, 1);     // d redefined
    b.edge(fn, b0, b1);
    b.setInsertPoint(fn, b1);
    const auto st = b.stream(prog::AddrStream::fixed(0x200));
    b.emitStore(Op::Stl, d, st, x);    // must still read d, not x
    b.emitRet();
    auto p = b.build();
    compiler::copyPropagate(p);
    EXPECT_EQ(p.functions[0].blocks[1].instrs[0].srcs[0], d);
}

TEST(CopyPropagate, KillsOnSourceRedefinition)
{
    prog::Builder b("cp3");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto x = b.value(RegClass::Int, "x");
    prog::Instr init;
    init.op = Op::Lda;
    init.dest = x;
    init.imm = 1;
    b.emitRaw(init);
    const auto d = b.value(RegClass::Int, "d");
    b.emitRRITo(d, Op::Mov, x, 0); // d = x (x == 1)
    prog::Instr redef;             // x changes afterwards
    redef.op = Op::Lda;
    redef.dest = x;
    redef.imm = 9;
    b.emitRaw(redef);
    const auto st = b.stream(prog::AddrStream::fixed(0x300));
    b.emitStore(Op::Stl, d, st, x); // d must NOT become x here
    b.emitRet();
    auto p = b.build();
    compiler::copyPropagate(p);
    const auto &instrs = p.functions[0].blocks[0].instrs;
    EXPECT_EQ(instrs[3].srcs[0], d);
}

TEST(CopyPropagate, ChainsOfSingleDefCopiesResolve)
{
    prog::Builder b("cp4");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    const auto b1 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto x = b.liveInValue(RegClass::Int, "x");
    const auto c1 = b.value(RegClass::Int, "c1");
    const auto c2 = b.value(RegClass::Int, "c2");
    b.emitRRITo(c1, Op::Mov, x, 0);
    b.emitRRITo(c2, Op::Mov, c1, 0);
    b.edge(fn, b0, b1);
    b.setInsertPoint(fn, b1);
    const auto st = b.stream(prog::AddrStream::fixed(0x400));
    b.emitStore(Op::Stl, c2, st, x);
    b.emitRet();
    auto p = b.build();
    compiler::copyPropagate(p);
    // The store in the *other* block reads x directly (single-def chain).
    EXPECT_EQ(p.functions[0].blocks[1].instrs[0].srcs[0], x);
}

} // namespace copyprop

// --- verifyIR ------------------------------------------------------------

namespace verify_ir
{

TEST(VerifyIR, CleanProgramsPass)
{
    EXPECT_TRUE(prog::verifyIR(diamondProgram()).ok());
    for (const auto &bench : workloads::allBenchmarks()) {
        const auto p = bench.make(workloads::WorkloadParams{0.02});
        const auto res = prog::verifyIR(p);
        EXPECT_TRUE(res.ok()) << bench.name << ":\n" << res.str();
    }
}

TEST(VerifyIR, UseBeforeDefReported)
{
    prog::Builder b("udef");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1, "entry");
    b.setInsertPoint(fn, b0);
    const auto ghost = b.value(RegClass::Int, "ghost");
    b.emitRRI(Op::Add, ghost, 1, "y");
    b.emitRet();
    const auto res = prog::verifyIR(b.build());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.errors[0].kind, prog::VerifyErrorKind::DefBeforeUse);
    EXPECT_NE(res.str().find("'ghost'"), std::string::npos) << res.str();
    EXPECT_NE(res.str().find("before any definition"),
              std::string::npos);
    EXPECT_NE(res.str().find("bb0 inst 0"), std::string::npos)
        << "message should locate the offending use: " << res.str();
}

TEST(VerifyIR, DefOnOnePathOnlyReported)
{
    // Diamond where the def happens only in the 'then' arm: the join's
    // use is not reached by a definition on the 'else' path.
    prog::Builder b("halfdef");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1, "entry");
    const auto bt = b.block(fn, 1, "then");
    const auto be = b.block(fn, 1, "else");
    const auto bj = b.block(fn, 1, "join");
    const auto part = b.value(RegClass::Int, "part");

    b.setInsertPoint(fn, b0);
    const auto c = b.emitConst(RegClass::Int, 0, "c");
    b.emitBranch(Op::Bne, c,
                 b.branch(prog::BranchModel::bernoulli(0.5)));
    b.edge(fn, b0, be);
    b.edge(fn, b0, bt);

    b.setInsertPoint(fn, bt);
    b.emitRRITo(part, Op::Mov, c, 1);
    b.emitBr();
    b.edge(fn, bt, bj);

    b.setInsertPoint(fn, be);
    b.emitRRI(Op::Add, c, 1, "e");
    b.edge(fn, be, bj);

    b.setInsertPoint(fn, bj);
    b.emitRRI(Op::Add, part, 5, "j");
    b.emitRet();

    const auto res = prog::verifyIR(b.build());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.errors[0].kind, prog::VerifyErrorKind::DefBeforeUse);
    EXPECT_NE(res.str().find("'part'"), std::string::npos) << res.str();
}

TEST(VerifyIR, DanglingEdgeReported)
{
    auto p = diamondProgram();
    p.functions[0].blocks[1].succs[0] = 99;
    const auto res = prog::verifyIR(p);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.errors[0].kind, prog::VerifyErrorKind::Structure);
    EXPECT_NE(res.str().find("dangling CFG edge"), std::string::npos)
        << res.str();
    EXPECT_NE(res.str().find("bb99"), std::string::npos) << res.str();
}

TEST(VerifyIR, PartitionIllegalClusterReported)
{
    const auto p =
        workloads::makeCompress(workloads::WorkloadParams{0.02});
    compiler::PartitionOptions popt;
    auto assignment = compiler::localSchedule(p, popt);
    prog::VerifyOptions vo;
    vo.clusterOf = &assignment.cluster;
    vo.numClusters = 2;
    ASSERT_TRUE(prog::verifyIR(p, vo).ok());

    for (auto &c : assignment.cluster)
        if (c >= 0) {
            c = 5;
            break;
        }
    const auto res = prog::verifyIR(p, vo);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.errors[0].kind, prog::VerifyErrorKind::Partition);
    EXPECT_NE(res.str().find("outside [-1, 2)"), std::string::npos)
        << res.str();
}

TEST(VerifyIR, CrossClusterLocalRegisterReported)
{
    const auto p =
        workloads::makeCompress(workloads::WorkloadParams{0.02});
    compiler::PartitionOptions popt;
    const auto assignment = compiler::localSchedule(p, popt);
    compiler::AllocOptions aopt;
    aopt.regMap = isa::RegisterMap(2);
    aopt.assignment = assignment;
    auto result = compiler::allocateRegisters(p, aopt);

    prog::VerifyOptions vo;
    vo.clusterOf = &result.finalAssignment.cluster;
    vo.numClusters = 2;
    vo.regOf = &result.regOf;
    vo.regMap = &result.finalMap;
    const auto clean = prog::verifyIR(result.rewritten, vo);
    ASSERT_TRUE(clean.ok()) << clean.str();

    // Move every assigned local value to the other cluster: its
    // register parity no longer matches its home, which is exactly the
    // cross-cluster read the partitioning exists to prevent.
    for (std::size_t v = 0; v < result.finalAssignment.cluster.size();
         ++v) {
        auto &c = result.finalAssignment.cluster[v];
        if (c >= 0 && !result.regOf[v].isZero() &&
            !result.finalMap.isGlobal(result.regOf[v]))
            c = static_cast<std::int8_t>(c ^ 1);
    }
    const auto res = prog::verifyIR(result.rewritten, vo);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.errors[0].kind, prog::VerifyErrorKind::Allocation);
    EXPECT_NE(res.str().find("cross-cluster local register"),
              std::string::npos)
        << res.str();
}

TEST(VerifyIR, UncoloredReferencedValueReported)
{
    const auto p = diamondProgram();
    compiler::AllocOptions aopt;
    aopt.regMap = isa::RegisterMap(1);
    auto result = compiler::allocateRegisters(p, aopt);

    prog::VerifyOptions vo;
    vo.regOf = &result.regOf;
    vo.regMap = &result.finalMap;
    ASSERT_TRUE(prog::verifyIR(result.rewritten, vo).ok());

    // Uncolor the first referenced value.
    const auto victim =
        result.rewritten.functions[0].blocks[0].instrs[0].dest;
    ASSERT_NE(victim, prog::kNoValue);
    result.regOf[victim] = isa::RegId();
    const auto res = prog::verifyIR(result.rewritten, vo);
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.str().find("never colored"), std::string::npos)
        << res.str();
}

} // namespace verify_ir
