/**
 * @file
 * Tests for the composed memory hierarchy (mem::MemorySystem): L2
 * hit/miss latency chains, shared-L2 behaviour, backside port
 * contention and its determinism, write-back traffic through the
 * chain, paper-mode equivalence with the flat model, and
 * ProcessorConfig::validate() error reporting.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/config.hh"
#include "mem/memory.hh"
#include "runner/jobspec.hh"
#include "support/stats.hh"

namespace
{

using namespace mca;

mem::MemoryParams
withL2()
{
    mem::MemoryParams p;
    p.icache = mem::CacheParams{1024, 2, 32, 16, true};
    p.dcache = mem::CacheParams{1024, 2, 32, 16, true};
    p.l2SizeBytes = 16 * 1024; // 8-way, 32 B -> 64 sets
    p.l2HitLatency = 6;
    p.memLatency = 20;
    return p;
}

TEST(MemorySystem, PaperModeHasNoL2AndFlatLatency)
{
    StatGroup stats("m");
    mem::MemorySystem sys(mem::MemoryParams{}, stats);
    EXPECT_FALSE(sys.hasL2());
    EXPECT_EQ(sys.l2(), nullptr);
    // A cold L1 miss goes straight to the 16-cycle backside: exactly
    // the flat `now + missLatency` timing of the pre-hierarchy model.
    const auto r = sys.dcache().access(0x1000, false, 0);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.readyAt, 16u);
    EXPECT_EQ(r.servedBy, mem::ServiceLevel::Memory);
    EXPECT_EQ(sys.memory().reads(), 1u);
}

TEST(MemorySystem, PaperModeMatchesStandaloneCacheTiming)
{
    // The hierarchy with default params must time every access exactly
    // like a standalone flat-latency Cache — the bit-identity argument
    // in docs/memory.md, checked here access by access.
    StatGroup sa("a"), sb("b");
    mem::MemorySystem sys(mem::MemoryParams{}, sa);
    mem::Cache flat("d", mem::CacheParams{}, sb);
    Cycle now = 0;
    for (int i = 0; i < 2000; ++i) {
        const Addr a = (static_cast<Addr>(i) * 1664525 + 1013904223) %
                       (256 * 1024);
        const bool write = (i % 7) == 0;
        const auto hier = sys.dcache().access(a & ~Addr{7}, write, now);
        const auto ref = flat.access(a & ~Addr{7}, write, now);
        ASSERT_EQ(hier.hit, ref.hit) << "access " << i;
        ASSERT_EQ(hier.merged, ref.merged) << "access " << i;
        ASSERT_EQ(hier.readyAt, ref.readyAt) << "access " << i;
        now += (i % 3) * 5;
    }
    EXPECT_EQ(sys.dcache().misses(), flat.misses());
    EXPECT_EQ(sys.dcache().writebacks(), flat.writebacks());
}

TEST(MemorySystem, L2MissChainAddsLatencies)
{
    StatGroup stats("m");
    mem::MemorySystem sys(withL2(), stats);
    ASSERT_TRUE(sys.hasL2());
    // Cold: L1 miss -> L2 miss -> memory. 20-cycle backside plus the
    // 6-cycle L2 lookup.
    const auto cold = sys.dcache().access(0x1000, false, 0);
    EXPECT_FALSE(cold.hit);
    EXPECT_EQ(cold.servedBy, mem::ServiceLevel::Memory);
    EXPECT_EQ(cold.readyAt, 26u);
    EXPECT_EQ(sys.l2()->misses(), 1u);
    EXPECT_EQ(sys.memory().reads(), 1u);
}

TEST(MemorySystem, L2HitServesL1Miss)
{
    StatGroup stats("m");
    mem::MemorySystem sys(withL2(), stats);
    sys.dcache().access(0x1000, false, 0); // fill both levels
    sys.dcache().flush();                  // L1 forgets, L2 keeps
    const auto r = sys.dcache().access(0x1000, false, 100);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.servedBy, mem::ServiceLevel::L2);
    EXPECT_EQ(r.readyAt, 106u); // l2HitLatency only
    EXPECT_EQ(sys.memory().reads(), 1u); // no second backside read
}

TEST(MemorySystem, L1sShareTheL2)
{
    StatGroup stats("m");
    mem::MemorySystem sys(withL2(), stats);
    sys.dcache().access(0x1000, false, 0);
    // An icache miss to the block the dcache pulled in hits the shared
    // L2 — one backside read total.
    const auto r = sys.icache().access(0x1000, false, 100);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.servedBy, mem::ServiceLevel::L2);
    EXPECT_EQ(sys.memory().reads(), 1u);
}

TEST(MemorySystem, DirtyL1EvictionWritesIntoL2)
{
    StatGroup stats("m");
    mem::MemorySystem sys(withL2(), stats);
    const Addr a = 0, b = 512, c = 1024; // one L1 set; distinct L2 sets
    sys.dcache().access(a, true, 0); // dirty in L1
    sys.dcache().access(b, false, 50);
    sys.dcache().access(c, false, 100); // evicts dirty a
    EXPECT_EQ(sys.dcache().writebacks(), 1u);
    // The write-back lands in the (write-allocate) L2, not memory:
    // three demand reads plus one write-back = four L2 accesses, and
    // the backside absorbs no write.
    EXPECT_EQ(sys.l2()->accesses(), 4u);
    EXPECT_EQ(sys.memory().writes(), 0u);
    EXPECT_TRUE(sys.l2()->probe(a));
}

TEST(MemorySystem, MemoryPortContentionPushesFillsBack)
{
    mem::MemoryParams p;
    p.dcache = mem::CacheParams{1024, 2, 32, 16, true};
    p.memPorts = 1;
    StatGroup stats("m");
    mem::MemorySystem sys(p, stats);
    // Three same-cycle misses serialize on the single backside port:
    // one completion per cycle, deterministically in request order.
    EXPECT_EQ(sys.dcache().access(0x1000, false, 0).readyAt, 16u);
    EXPECT_EQ(sys.dcache().access(0x2000, false, 0).readyAt, 17u);
    EXPECT_EQ(sys.dcache().access(0x3000, false, 0).readyAt, 18u);
}

TEST(MemorySystem, UncontendedPortsMatchUnlimited)
{
    // Finite ports only matter under contention: widely spaced misses
    // time identically with and without the limit.
    auto run = [](unsigned ports) {
        mem::MemoryParams p;
        p.dcache = mem::CacheParams{1024, 2, 32, 16, true};
        p.memPorts = ports;
        StatGroup stats("m");
        mem::MemorySystem sys(p, stats);
        std::vector<Cycle> readys;
        Cycle now = 0;
        for (int i = 0; i < 100; ++i) {
            readys.push_back(
                sys.dcache()
                    .access(static_cast<Addr>(i) * 0x1000, false, now)
                    .readyAt);
            now += 40;
        }
        return readys;
    };
    EXPECT_EQ(run(0), run(1));
}

TEST(MemorySystem, PortContentionIsDeterministicAcrossRuns)
{
    auto run = [] {
        mem::MemoryParams p;
        p.dcache = mem::CacheParams{1024, 2, 32, 16, true};
        p.dcache.fillPorts = 2;
        p.memLatency = 12;
        p.memPorts = 1;
        StatGroup stats("m");
        mem::MemorySystem sys(p, stats);
        std::vector<Cycle> readys;
        for (int i = 0; i < 200; ++i) {
            const Addr a = (static_cast<Addr>(i) * 2654435761u) %
                           (256 * 1024);
            readys.push_back(sys.dcache()
                                 .access(a & ~Addr{7}, (i % 3) == 0,
                                         static_cast<Cycle>(i) * 2)
                                 .readyAt);
        }
        return readys;
    };
    EXPECT_EQ(run(), run());
}

// --- ProcessorConfig::validate() -----------------------------------------

TEST(ConfigValidate, FactoryConfigsAreValid)
{
    EXPECT_NO_THROW(core::ProcessorConfig::singleCluster8().validate());
    EXPECT_NO_THROW(core::ProcessorConfig::dualCluster8().validate());
    EXPECT_NO_THROW(core::ProcessorConfig::multiCluster8(4).validate());
}

TEST(ConfigValidate, RejectsBadCoreGeometry)
{
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.numClusters = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = core::ProcessorConfig::dualCluster8();
    cfg.fetchWidth = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = core::ProcessorConfig::dualCluster8();
    cfg.numClusters = 3; // regMap still covers 2
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, RejectsBadCacheGeometry)
{
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.memory.dcache.sizeBytes = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = core::ProcessorConfig::dualCluster8();
    cfg.memory.icache.assoc = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = core::ProcessorConfig::dualCluster8();
    cfg.memory.icache.blockBytes = 48; // not a power of two
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = core::ProcessorConfig::dualCluster8();
    cfg.memory.memLatency = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(ConfigValidate, RejectsBadL2Geometry)
{
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.memory.l2SizeBytes = 3 * 1024; // 12 sets: not a power of two
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = core::ProcessorConfig::dualCluster8();
    cfg.memory.l2SizeBytes = 256 * 1024;
    cfg.memory.l2BlockBytes = 16; // smaller than the L1 blocks
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = core::ProcessorConfig::dualCluster8();
    cfg.memory.l2SizeBytes = 256 * 1024;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, ValidationErrorsNameTheParameter)
{
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.memory.dcache.sizeBytes = 0;
    try {
        cfg.validate();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("dcache"), std::string::npos)
            << e.what();
    }
}

TEST(ConfigValidate, MultiCluster8RejectsNonDivisor)
{
    EXPECT_THROW(core::ProcessorConfig::multiCluster8(0),
                 std::runtime_error);
    EXPECT_THROW(core::ProcessorConfig::multiCluster8(3),
                 std::runtime_error);
    EXPECT_THROW(core::ProcessorConfig::multiCluster8(5),
                 std::runtime_error);
    EXPECT_NO_THROW(core::ProcessorConfig::multiCluster8(2));
}

TEST(ConfigValidate, RunnerSpecMemoryAxesReachTheConfig)
{
    runner::JobSpec spec;
    spec.l2Kb = 256;
    spec.l2Lat = 9;
    spec.memLat = 30;
    spec.fillPorts = 2;
    const core::ProcessorConfig cfg = runner::machineConfigFor(spec);
    EXPECT_EQ(cfg.memory.l2SizeBytes, 256u * 1024);
    EXPECT_EQ(cfg.memory.l2HitLatency, 9u);
    EXPECT_EQ(cfg.memory.memLatency, 30u);
    EXPECT_EQ(cfg.memory.dcache.fillPorts, 2u);
    EXPECT_EQ(cfg.memory.memPorts, 2u);

    runner::JobSpec bad;
    bad.l2Kb = 3; // 12 sets: rejected by validate() inside
    EXPECT_THROW(runner::machineConfigFor(bad), std::runtime_error);
}

} // namespace
