/**
 * @file
 * Unit tests for the trace interpreter: CFG walking, branch resolution,
 * calls/returns, profiling, and trace sources.
 */

#include <gtest/gtest.h>

#include "compiler/pipeline.hh"
#include "exec/trace.hh"
#include "exec/walker.hh"
#include "prog/builder.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;
using isa::Op;
using isa::RegClass;

/** Loop program: entry -> body (x trip) -> exit. */
prog::Program
loopProgram(std::uint64_t trip)
{
    prog::Builder b("loop");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1, "entry");
    const auto b1 = b.block(fn, static_cast<double>(trip), "body");
    const auto b2 = b.block(fn, 1, "exit");
    b.setInsertPoint(fn, b0);
    const auto i = b.emitConst(RegClass::Int, 0, "i");
    b.edge(fn, b0, b1);
    b.setInsertPoint(fn, b1);
    b.emitRRITo(i, Op::Add, i, 1);
    const auto c = b.emitRRI(Op::CmpLt, i, 100, "c");
    b.emitBranch(Op::Bne, c, b.branch(prog::BranchModel::loop(trip)));
    b.edge(fn, b1, b2);
    b.edge(fn, b1, b1);
    b.setInsertPoint(fn, b2);
    b.emitRet();
    return b.build();
}

/** Program with a call: main calls callee twice. */
prog::Program
callProgram()
{
    prog::Builder b("calls");
    const auto fn = b.function("main");
    const auto callee = b.function("callee");

    const auto m0 = b.block(fn, 1, "m0");
    const auto m1 = b.block(fn, 1, "m1");
    const auto m2 = b.block(fn, 1, "m2");
    b.setInsertPoint(fn, m0);
    b.emitConst(RegClass::Int, 1, "x");
    b.emitJsr(callee);
    b.edge(fn, m0, m1);
    b.setInsertPoint(fn, m1);
    b.emitJsr(callee);
    b.edge(fn, m1, m2);
    b.setInsertPoint(fn, m2);
    b.emitRet();

    const auto c0 = b.block(callee, 2, "c0");
    b.setInsertPoint(callee, c0);
    b.emitConst(RegClass::Int, 9, "y");
    b.emitConst(RegClass::Int, 10, "z");
    b.emitRet();
    return b.build();
}

/** Walk an IL program and collect (fn, blk, op) triples. */
std::vector<std::tuple<prog::FunctionId, prog::BlockId, isa::Op>>
walkAll(const prog::Program &p, std::uint64_t seed,
        std::size_t cap = 100000)
{
    exec::CfgWalker<prog::Program> walker(p, seed);
    exec::WalkSite site;
    std::vector<std::tuple<prog::FunctionId, prog::BlockId, isa::Op>> out;
    while (out.size() < cap && walker.step(site)) {
        const auto &in =
            p.functions[site.fn].blocks[site.blk].instrs[site.idx];
        out.emplace_back(site.fn, site.blk, in.op);
    }
    return out;
}

// --- CfgWalker -----------------------------------------------------------

TEST(Walker, LoopExecutesBodyTripTimes)
{
    const auto p = loopProgram(7);
    const auto trace = walkAll(p, 1);
    std::size_t body_entries = 0;
    for (const auto &[fn, blk, op] : trace)
        if (blk == 1 && op == Op::Add)
            ++body_entries;
    EXPECT_EQ(body_entries, 7u);
    // 1 (entry) + 7*3 (body) + 1 (ret) instructions.
    EXPECT_EQ(trace.size(), 23u);
}

TEST(Walker, EndsAfterMainReturns)
{
    const auto p = loopProgram(2);
    exec::CfgWalker<prog::Program> walker(p, 1);
    exec::WalkSite site;
    std::size_t n = 0;
    while (walker.step(site))
        ++n;
    EXPECT_FALSE(walker.step(site)); // stays ended
    EXPECT_EQ(n, 8u);
}

TEST(Walker, CallsEnterAndReturn)
{
    const auto p = callProgram();
    const auto trace = walkAll(p, 1);
    // main: const, jsr | callee: const, const, ret | main: jsr |
    // callee again | main: ret.
    std::vector<prog::FunctionId> fns;
    for (const auto &[fn, blk, op] : trace)
        fns.push_back(fn);
    EXPECT_EQ(fns, (std::vector<prog::FunctionId>{0, 0, 1, 1, 1, 0, 1, 1,
                                                  1, 0}));
}

TEST(Walker, NextPcFollowsTakenBranches)
{
    const auto p = loopProgram(3);
    exec::CfgWalker<prog::Program> walker(p, 1);
    exec::WalkSite site;
    // entry const.
    ASSERT_TRUE(walker.step(site));
    const Addr body_pc = site.nextPc;
    // body: add, cmp, bne (taken, back to body start).
    ASSERT_TRUE(walker.step(site));
    EXPECT_EQ(site.pc, body_pc);
    ASSERT_TRUE(walker.step(site));
    ASSERT_TRUE(walker.step(site));
    EXPECT_TRUE(site.taken);
    EXPECT_EQ(site.nextPc, body_pc);
}

TEST(Walker, DeterministicAcrossRuns)
{
    const auto p = workloads::makeGcc1(workloads::WorkloadParams{0.01});
    const auto a = walkAll(p, 77, 5000);
    const auto bb = walkAll(p, 77, 5000);
    EXPECT_EQ(a, bb);
}

TEST(Walker, SeedChangesBernoulliPath)
{
    const auto p = workloads::makeGcc1(workloads::WorkloadParams{0.01});
    const auto a = walkAll(p, 1, 3000);
    const auto bb = walkAll(p, 2, 3000);
    EXPECT_NE(a, bb);
}

TEST(Walker, NestedCallsUnwindCorrectly)
{
    // main -> a -> b, with work after each return.
    prog::Builder b("nested");
    const auto fm = b.function("main");
    const auto fa = b.function("a");
    const auto fb = b.function("b");

    const auto m0 = b.block(fm, 1);
    const auto m1 = b.block(fm, 1);
    b.setInsertPoint(fm, m0);
    b.emitConst(RegClass::Int, 1, "m");
    b.emitJsr(fa);
    b.edge(fm, m0, m1);
    b.setInsertPoint(fm, m1);
    b.emitConst(RegClass::Int, 2, "after_a");
    b.emitRet();

    const auto a0 = b.block(fa, 1);
    const auto a1 = b.block(fa, 1);
    b.setInsertPoint(fa, a0);
    b.emitConst(RegClass::Int, 3, "a_pre");
    b.emitJsr(fb);
    b.edge(fa, a0, a1);
    b.setInsertPoint(fa, a1);
    b.emitConst(RegClass::Int, 4, "a_post");
    b.emitRet();

    const auto b0 = b.block(fb, 1);
    b.setInsertPoint(fb, b0);
    b.emitConst(RegClass::Int, 5, "b_body");
    b.emitRet();

    const auto p = b.build();
    const auto trace = walkAll(p, 1);
    std::vector<prog::FunctionId> fns;
    for (const auto &[fn, blk, op] : trace)
        fns.push_back(fn);
    // main(2) -> a(2) -> b(2) -> a(2) -> main(2)
    EXPECT_EQ(fns, (std::vector<prog::FunctionId>{0, 0, 1, 1, 2, 2, 1,
                                                  1, 0, 0}));
    exec::CfgWalker<prog::Program> w(p, 1);
    exec::WalkSite site;
    std::size_t max_depth = 0;
    while (w.step(site))
        max_depth = std::max(max_depth, w.stackDepth());
    EXPECT_EQ(max_depth, 2u);
}

TEST(Walker, IndirectJumpFollowsWeights)
{
    // A Jmp with 3 targets weighted 8:1:1 visited many times.
    prog::Builder b("switchy");
    const auto fn = b.function("main");
    const auto head = b.block(fn, 100, "head");
    const auto t0 = b.block(fn, 80, "t0");
    const auto t1 = b.block(fn, 10, "t1");
    const auto t2 = b.block(fn, 10, "t2");
    const auto latch = b.block(fn, 100, "latch");
    const auto done = b.block(fn, 1, "done");
    b.setInsertPoint(fn, head);
    const auto sel = b.emitConst(RegClass::Int, 0, "sel");
    b.emitJmp(sel);
    b.edge(fn, head, t0);
    b.edge(fn, head, t1);
    b.edge(fn, head, t2);
    b.succWeights(fn, head, {8, 1, 1});
    for (auto t : {t0, t1, t2}) {
        b.setInsertPoint(fn, t);
        b.emitRRI(Op::Add, sel, 1);
        b.emitBr();
        b.edge(fn, t, latch);
    }
    b.setInsertPoint(fn, latch);
    const auto i = b.emitConst(RegClass::Int, 0, "i");
    b.emitRRITo(i, Op::Add, i, 1);
    const auto c = b.emitRRI(Op::CmpLt, i, 4000, "c");
    b.emitBranch(Op::Bne, c, b.branch(prog::BranchModel::loop(4000)));
    b.edge(fn, latch, done);
    b.edge(fn, latch, head);
    b.setInsertPoint(fn, done);
    b.emitRet();
    const auto p = b.build();

    const auto prof = exec::profileProgram(p, 3, 10'000'000);
    ASSERT_TRUE(prof.completed);
    const double v0 = static_cast<double>(prof.visits[0][t0]);
    const double v1 = static_cast<double>(prof.visits[0][t1]);
    const double v2 = static_cast<double>(prof.visits[0][t2]);
    EXPECT_NEAR(v0 / 4000.0, 0.8, 0.03);
    EXPECT_NEAR(v1 / 4000.0, 0.1, 0.02);
    EXPECT_NEAR(v2 / 4000.0, 0.1, 0.02);
}

// --- profiling --------------------------------------------------------

TEST(Profile, CountsBlockVisits)
{
    const auto p = loopProgram(5);
    const auto prof = exec::profileProgram(p, 1, 100000);
    EXPECT_TRUE(prof.completed);
    EXPECT_EQ(prof.visits[0][0], 1u); // entry
    EXPECT_EQ(prof.visits[0][1], 5u); // body
    EXPECT_EQ(prof.visits[0][2], 1u); // exit
}

TEST(Profile, ApplyProfileOverwritesWeights)
{
    auto p = loopProgram(9);
    const auto prof = exec::profileProgram(p, 1, 100000);
    exec::applyProfile(p, prof);
    EXPECT_DOUBLE_EQ(p.functions[0].blocks[1].weight, 9.0);
}

TEST(Profile, InstCapMarksIncomplete)
{
    const auto p = loopProgram(1000);
    const auto prof = exec::profileProgram(p, 1, 50);
    EXPECT_FALSE(prof.completed);
    EXPECT_EQ(prof.totalInsts, 50u);
}

// --- ProgramTrace -----------------------------------------------------

TEST(ProgramTrace, EmitsMachineInstructionsWithAddresses)
{
    const auto p = workloads::makeCompress(workloads::WorkloadParams{0.01});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Native;
    copt.numClusters = 1;
    const auto out = compiler::compile(p, copt);

    exec::ProgramTrace trace(out.binary, 5, 2000);
    std::size_t n = 0, mem_with_addr = 0;
    while (auto di = trace.next()) {
        ++n;
        if (isa::isMemOp(di->mi.op)) {
            EXPECT_NE(di->effAddr, 0u);
            ++mem_with_addr;
        }
        EXPECT_EQ(di->seq, n - 1);
    }
    EXPECT_EQ(n, 2000u);
    EXPECT_GT(mem_with_addr, 100u);
}

TEST(ProgramTrace, SpillCodeIsMarked)
{
    // A block with 40 simultaneously live values guarantees spills.
    prog::Builder b("pressure");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    std::vector<prog::ValueId> vals;
    for (int i = 0; i < 40; ++i)
        vals.push_back(b.emitConst(RegClass::Int, i, "v"));
    auto acc = vals[0];
    for (int i = 1; i < 40; ++i)
        acc = b.emitRRR(Op::Add, acc, vals[i], "s");
    b.emitRet();
    const auto p = b.build();

    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Native;
    copt.numClusters = 1;
    copt.optimize = false; // keep all 40 constants live
    const auto out = compiler::compile(p, copt);
    ASSERT_GT(out.alloc.spillLoadsInserted, 0u);
    exec::ProgramTrace trace(out.binary, 5, 20000);
    std::size_t spills = 0;
    while (auto di = trace.next())
        spills += di->isSpill ? 1 : 0;
    EXPECT_GT(spills, 0u);
}

// --- VectorTrace ---------------------------------------------------------

TEST(VectorTrace, NormalizeAssignsSequentialSeqAndPcs)
{
    std::vector<exec::DynInst> insts(3);
    insts[0].mi = isa::makeRRR(Op::Add, isa::intReg(1), isa::intReg(2),
                               isa::intReg(3));
    insts[1].mi = insts[0].mi;
    insts[2].mi = insts[0].mi;
    const auto norm = exec::VectorTrace::normalize(insts);
    EXPECT_EQ(norm[0].seq, 0u);
    EXPECT_EQ(norm[2].seq, 2u);
    EXPECT_EQ(norm[0].nextPc, norm[1].pc);
    EXPECT_EQ(norm[1].nextPc, norm[2].pc);
    EXPECT_EQ(norm[2].nextPc, 0u);
}

TEST(VectorTrace, DrainsThenEnds)
{
    std::vector<exec::DynInst> insts(2);
    exec::VectorTrace trace(exec::VectorTrace::normalize(insts));
    EXPECT_TRUE(trace.next().has_value());
    EXPECT_TRUE(trace.next().has_value());
    EXPECT_FALSE(trace.next().has_value());
}

} // namespace
