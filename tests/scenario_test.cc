/**
 * @file
 * Tests for the Figure 2-5 scenario reproductions: each scenario's
 * timeline must show the paper's event structure and ordering.
 */

#include <gtest/gtest.h>

#include "harness/scenarios.hh"

namespace
{

using namespace mca;
using core::TimelineEvent;

struct ScenarioFixture : ::testing::Test
{
    static const std::vector<harness::ScenarioResult> &
    results()
    {
        static const auto r = harness::runScenarios();
        return r;
    }

    static Cycle
    cycleOf(const harness::ScenarioResult &s, TimelineEvent ev,
            unsigned cluster = ~0u)
    {
        for (const auto &rec : s.addEvents)
            if (rec.event == ev &&
                (cluster == ~0u || rec.cluster == cluster))
                return rec.cycle;
        return kNoCycle;
    }

    static bool
    has(const harness::ScenarioResult &s, TimelineEvent ev)
    {
        return cycleOf(s, ev) != kNoCycle;
    }
};

TEST_F(ScenarioFixture, FiveScenariosRun)
{
    ASSERT_EQ(results().size(), 5u);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(results()[i].number, i + 1);
}

TEST_F(ScenarioFixture, Scenario1IsSingleDistribution)
{
    const auto &s = results()[0];
    EXPECT_FALSE(s.dual);
    EXPECT_FALSE(has(s, TimelineEvent::SlaveIssued));
    EXPECT_FALSE(has(s, TimelineEvent::OperandWrittenToBuffer));
    EXPECT_FALSE(has(s, TimelineEvent::ResultWrittenToBuffer));
}

TEST_F(ScenarioFixture, Scenario2OperandForwardTimeline)
{
    const auto &s = results()[1];
    EXPECT_TRUE(s.dual);
    const Cycle slave = cycleOf(s, TimelineEvent::SlaveIssued);
    const Cycle opwrite = cycleOf(s, TimelineEvent::OperandWrittenToBuffer);
    const Cycle master = cycleOf(s, TimelineEvent::MasterIssued);
    const Cycle regwrite = cycleOf(s, TimelineEvent::RegWritten);
    ASSERT_NE(slave, kNoCycle);
    ASSERT_NE(master, kNoCycle);
    // Figure 2: slave issued, operand into C1's buffer, master issued,
    // then the result register is written.
    EXPECT_LT(slave, master);
    EXPECT_GE(opwrite, slave);
    EXPECT_LE(opwrite, master);
    EXPECT_GT(regwrite, master);
    // No result transfer in scenario 2.
    EXPECT_FALSE(has(s, TimelineEvent::ResultWrittenToBuffer));
    EXPECT_FALSE(has(s, TimelineEvent::SlaveWoke));
}

TEST_F(ScenarioFixture, Scenario3ResultForwardTimeline)
{
    const auto &s = results()[2];
    EXPECT_TRUE(s.dual);
    const Cycle master = cycleOf(s, TimelineEvent::MasterIssued);
    const Cycle slave = cycleOf(s, TimelineEvent::SlaveIssued);
    const Cycle reswrite = cycleOf(s, TimelineEvent::ResultWrittenToBuffer);
    ASSERT_NE(master, kNoCycle);
    ASSERT_NE(slave, kNoCycle);
    // Figure 3: master first, result into C2's buffer, slave issues
    // one cycle after the master (1-cycle add), then writes r2.
    EXPECT_EQ(slave, master + 1);
    EXPECT_NE(reswrite, kNoCycle);
    EXPECT_FALSE(has(s, TimelineEvent::OperandWrittenToBuffer));
    // The destination register is written in the slave's cluster (1).
    EXPECT_NE(cycleOf(s, TimelineEvent::RegWritten, 1), kNoCycle);
    EXPECT_EQ(cycleOf(s, TimelineEvent::RegWritten, 0), kNoCycle);
}

TEST_F(ScenarioFixture, Scenario4GlobalDestWritesBothCopies)
{
    const auto &s = results()[3];
    EXPECT_TRUE(s.dual);
    // Figure 4: both clusters write their copy of the global register.
    EXPECT_NE(cycleOf(s, TimelineEvent::RegWritten, 0), kNoCycle);
    EXPECT_NE(cycleOf(s, TimelineEvent::RegWritten, 1), kNoCycle);
    EXPECT_TRUE(has(s, TimelineEvent::ResultWrittenToBuffer));
    // The master's copy is written before or when the slave's is.
    EXPECT_LE(cycleOf(s, TimelineEvent::RegWritten, 0),
              cycleOf(s, TimelineEvent::RegWritten, 1));
}

TEST_F(ScenarioFixture, Scenario5SuspendWakeTimeline)
{
    const auto &s = results()[4];
    EXPECT_TRUE(s.dual);
    const Cycle slave = cycleOf(s, TimelineEvent::SlaveIssued);
    const Cycle susp = cycleOf(s, TimelineEvent::SlaveSuspended);
    const Cycle master = cycleOf(s, TimelineEvent::MasterIssued);
    const Cycle wake = cycleOf(s, TimelineEvent::SlaveWoke);
    ASSERT_NE(slave, kNoCycle);
    ASSERT_NE(susp, kNoCycle);
    ASSERT_NE(master, kNoCycle);
    ASSERT_NE(wake, kNoCycle);
    // Figure 5 ordering: slave issued (operand sent), suspended, master
    // issued, slave wakes, both register copies written.
    EXPECT_EQ(susp, slave);
    EXPECT_GT(master, slave);
    EXPECT_GT(wake, master);
    EXPECT_TRUE(has(s, TimelineEvent::OperandWrittenToBuffer));
    EXPECT_TRUE(has(s, TimelineEvent::ResultWrittenToBuffer));
    EXPECT_NE(cycleOf(s, TimelineEvent::RegWritten, 0), kNoCycle);
    EXPECT_NE(cycleOf(s, TimelineEvent::RegWritten, 1), kNoCycle);
}

TEST_F(ScenarioFixture, AllScenariosRetire)
{
    for (const auto &s : results()) {
        SCOPED_TRACE(s.title);
        EXPECT_TRUE(has(s, TimelineEvent::Retired));
        EXPECT_GT(s.totalCycles, 0u);
    }
}

TEST_F(ScenarioFixture, FormattingIncludesEveryEvent)
{
    const auto &s = results()[1];
    const std::string text = harness::formatScenario(s);
    EXPECT_NE(text.find("Scenario 2"), std::string::npos);
    EXPECT_NE(text.find("slave issued"), std::string::npos);
    EXPECT_NE(text.find("master issued"), std::string::npos);
}

TEST_F(ScenarioFixture, DeterministicAcrossInvocations)
{
    const auto again = harness::runScenarios();
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(again[i].totalCycles, results()[i].totalCycles);
}

} // namespace
