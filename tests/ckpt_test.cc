/**
 * @file
 * Checkpoint/restore tests (src/ckpt + core::Processor::saveState).
 *
 * The contract under test is the hard round-trip invariant: a run that
 * is snapshotted at an arbitrary cycle boundary and resumed in a fresh
 * process-equivalent machine must be bit-identical to the
 * uninterrupted run — same final cycle count, same retired count, and
 * byte-identical statistics dump. A snapshot restored and immediately
 * re-saved must also reproduce the exact payload bytes (the snapshot
 * is a fixed point of save∘load).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ckpt/io.hh"
#include "ckpt/snapshot.hh"
#include "compiler/pipeline.hh"
#include "core/processor.hh"
#include "exec/trace.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

constexpr std::uint64_t kTraceSeed = 42;
constexpr std::uint64_t kMaxInsts = 30'000;

struct Compiled
{
    prog::MachProgram binary;
    isa::RegisterMap map;
};

Compiled
compileBenchmark(const std::string &name, unsigned clusters)
{
    const auto &bench = workloads::benchmarkByName(name);
    const prog::Program program = bench.make({});
    compiler::CompileOptions copt =
        compiler::compileOptionsFor(clusters > 1 ? "local" : "native",
                                    clusters);
    copt.profileSeed = kTraceSeed;
    const auto out = compiler::compile(program, copt);
    return Compiled{out.binary, out.hardwareMap(clusters)};
}

core::ProcessorConfig
dualConfig(const isa::RegisterMap &map)
{
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.regMap = map;
    return cfg;
}

std::string
statsJson(const StatGroup &sg)
{
    std::ostringstream os;
    sg.dumpJson(os);
    return os.str();
}

/** Run uninterrupted to completion; returns (cycles, stats JSON). */
std::pair<Cycle, std::string>
referenceRun(const Compiled &c)
{
    StatGroup sg("mca");
    exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
    core::Processor proc(dualConfig(c.map), trace, sg);
    const auto res = proc.run();
    EXPECT_TRUE(res.completed);
    return {res.cycles, statsJson(sg)};
}

/** Run to `stop_at` cycles, snapshot, restore elsewhere, finish. */
std::pair<Cycle, std::string>
interruptedRun(const Compiled &c, Cycle stop_at)
{
    ckpt::Snapshot snap;
    {
        StatGroup sg("mca");
        exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
        core::Processor proc(dualConfig(c.map), trace, sg);
        proc.run(stop_at);
        ckpt::SnapshotBuilder b(proc.configHash());
        proc.saveState(b);
        snap = b.finish();
    }
    StatGroup sg("mca");
    exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
    core::Processor proc(dualConfig(c.map), trace, sg);
    ckpt::SnapshotParser p(snap, proc.configHash());
    proc.loadState(p);
    const auto res = proc.run();
    EXPECT_TRUE(res.completed);
    return {res.cycles, statsJson(sg)};
}

TEST(CkptRoundTrip, ResumeIsBitIdenticalMidRun)
{
    const auto c = compileBenchmark("compress", 2);
    const auto ref = referenceRun(c);
    ASSERT_GT(ref.first, 2000u);
    const auto cut = interruptedRun(c, ref.first / 2);
    EXPECT_EQ(ref.first, cut.first);
    EXPECT_EQ(ref.second, cut.second);
}

TEST(CkptRoundTrip, ResumeIsBitIdenticalNearStart)
{
    const auto c = compileBenchmark("gcc1", 2);
    const auto ref = referenceRun(c);
    const auto cut = interruptedRun(c, 100);
    EXPECT_EQ(ref.first, cut.first);
    EXPECT_EQ(ref.second, cut.second);
}

TEST(CkptRoundTrip, SaveLoadSaveIsByteIdentical)
{
    const auto c = compileBenchmark("su2cor", 2);
    StatGroup sg("mca");
    exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
    core::Processor proc(dualConfig(c.map), trace, sg);
    proc.run(5000);

    ckpt::SnapshotBuilder b1(proc.configHash());
    proc.saveState(b1);
    const ckpt::Snapshot s1 = b1.finish();

    StatGroup sg2("mca");
    exec::ProgramTrace trace2(c.binary, kTraceSeed, kMaxInsts);
    core::Processor proc2(dualConfig(c.map), trace2, sg2);
    ckpt::SnapshotParser p(s1, proc2.configHash());
    proc2.loadState(p);

    ckpt::SnapshotBuilder b2(proc2.configHash());
    proc2.saveState(b2);
    const ckpt::Snapshot s2 = b2.finish();

    EXPECT_EQ(s1.payload, s2.payload);
    EXPECT_EQ(s1.contentHash(), s2.contentHash());
}

TEST(CkptRoundTrip, SnapshotOfCompletedRunRestoresFinalState)
{
    const auto c = compileBenchmark("ora", 2);
    StatGroup sg("mca");
    exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
    core::Processor proc(dualConfig(c.map), trace, sg);
    const auto res = proc.run();
    ASSERT_TRUE(res.completed);

    ckpt::SnapshotBuilder b(proc.configHash());
    proc.saveState(b);
    const ckpt::Snapshot snap = b.finish();

    StatGroup sg2("mca");
    exec::ProgramTrace trace2(c.binary, kTraceSeed, kMaxInsts);
    core::Processor proc2(dualConfig(c.map), trace2, sg2);
    ckpt::SnapshotParser p(snap, proc2.configHash());
    proc2.loadState(p);
    // Nothing left to simulate; the restored machine is already done.
    const auto res2 = proc2.run();
    EXPECT_EQ(res.cycles, res2.cycles);
    EXPECT_EQ(statsJson(sg), statsJson(sg2));
}

TEST(Ckpt, ConfigHashMismatchIsRejected)
{
    const auto c = compileBenchmark("compress", 2);
    StatGroup sg("mca");
    exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
    core::Processor proc(dualConfig(c.map), trace, sg);
    proc.run(500);
    ckpt::SnapshotBuilder b(proc.configHash());
    proc.saveState(b);
    const ckpt::Snapshot snap = b.finish();

    const auto single = compileBenchmark("compress", 1);
    StatGroup sg2("mca");
    exec::ProgramTrace trace2(single.binary, kTraceSeed, kMaxInsts);
    auto cfg = core::ProcessorConfig::singleCluster8();
    cfg.regMap = single.map;
    core::Processor proc2(cfg, trace2, sg2);
    EXPECT_NE(proc.configHash(), proc2.configHash());
    EXPECT_THROW(ckpt::SnapshotParser(snap, proc2.configHash()),
                 std::runtime_error);
}

TEST(Ckpt, TraceIdentityMismatchIsRejected)
{
    const auto c = compileBenchmark("compress", 2);
    StatGroup sg("mca");
    exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
    core::Processor proc(dualConfig(c.map), trace, sg);
    proc.run(500);
    ckpt::SnapshotBuilder b(proc.configHash());
    proc.saveState(b);
    const ckpt::Snapshot snap = b.finish();

    // Same machine shape, different trace seed: the config hash
    // matches but the trace section must reject the restore.
    StatGroup sg2("mca");
    exec::ProgramTrace trace2(c.binary, kTraceSeed + 1, kMaxInsts);
    core::Processor proc2(dualConfig(c.map), trace2, sg2);
    ckpt::SnapshotParser p(snap, proc2.configHash());
    EXPECT_THROW(proc2.loadState(p), std::runtime_error);
}

TEST(Ckpt, FileRoundTripPreservesBytes)
{
    const auto c = compileBenchmark("doduc", 2);
    StatGroup sg("mca");
    exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
    core::Processor proc(dualConfig(c.map), trace, sg);
    proc.run(1000);
    ckpt::SnapshotBuilder b(proc.configHash());
    proc.saveState(b);
    const ckpt::Snapshot snap = b.finish();

    const std::string path = "ckpt_test_roundtrip.mcackpt";
    snap.saveFile(path);
    const ckpt::Snapshot back = ckpt::Snapshot::loadFile(path);
    std::remove(path.c_str());
    EXPECT_EQ(snap.configHash, back.configHash);
    EXPECT_EQ(snap.payload, back.payload);
}

TEST(Ckpt, CorruptPayloadIsRejected)
{
    const auto c = compileBenchmark("compress", 2);
    StatGroup sg("mca");
    exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
    core::Processor proc(dualConfig(c.map), trace, sg);
    proc.run(500);
    ckpt::SnapshotBuilder b(proc.configHash());
    proc.saveState(b);
    const ckpt::Snapshot snap = b.finish();

    const std::string path = "ckpt_test_corrupt.mcackpt";
    snap.saveFile(path);
    // Flip one payload byte; the content-hash trailer must catch it.
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(64);
        char byte = 0;
        f.seekg(64);
        f.get(byte);
        f.seekp(64);
        f.put(static_cast<char>(byte ^ 0x40));
    }
    EXPECT_THROW(ckpt::Snapshot::loadFile(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Ckpt, TruncatedFileIsRejected)
{
    const auto c = compileBenchmark("compress", 2);
    StatGroup sg("mca");
    exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
    core::Processor proc(dualConfig(c.map), trace, sg);
    proc.run(500);
    ckpt::SnapshotBuilder b(proc.configHash());
    proc.saveState(b);
    const ckpt::Snapshot snap = b.finish();

    std::ostringstream os;
    snap.writeTo(os);
    const std::string whole = os.str();
    std::istringstream is(whole.substr(0, whole.size() / 2));
    EXPECT_THROW(ckpt::Snapshot::readFrom(is), std::runtime_error);
}

TEST(Ckpt, WriterReaderScalarsRoundTrip)
{
    ckpt::Writer w;
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.i64(-42);
    w.f64(3.25);
    w.b(true);
    w.str("hello");
    w.tag("TEST");

    ckpt::Reader r(w.data());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), 3.25);
    EXPECT_TRUE(r.b());
    EXPECT_EQ(r.str(), "hello");
    EXPECT_NO_THROW(r.tag("TEST"));
    EXPECT_TRUE(r.atEnd());
}

TEST(Ckpt, SectionSyncLossIsDiagnosed)
{
    ckpt::Writer w;
    w.tag("CORE");
    w.u64(7);
    ckpt::Reader r(w.data());
    try {
        r.tag("MEMS");
        FAIL() << "mismatched tag accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("MEMS"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("CORE"), std::string::npos);
    }
}

TEST(Ckpt, InvalidConfigIsRejectedAtConstruction)
{
    // Satellite of the checkpoint work: Processor now validates its
    // configuration instead of trusting every caller to have done so.
    const auto c = compileBenchmark("compress", 2);
    StatGroup sg("mca");
    exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.regMap = c.map;
    cfg.fetchWidth = 0;
    EXPECT_THROW(core::Processor(cfg, trace, sg), std::runtime_error);
}

} // namespace
