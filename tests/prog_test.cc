/**
 * @file
 * Unit tests for the program IR: builder, CFG validation, PC
 * assignment, branch-behaviour models, and address streams.
 */

#include <gtest/gtest.h>

#include "prog/addr_stream.hh"
#include "prog/branch_model.hh"
#include "prog/builder.hh"
#include "prog/cfg.hh"
#include "support/random.hh"

namespace
{

using namespace mca;
using isa::Op;
using isa::RegClass;

prog::Program
tinyProgram()
{
    prog::Builder b("tiny");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1, "entry");
    const auto b1 = b.block(fn, 1, "exit");
    b.setInsertPoint(fn, b0);
    const auto x = b.emitConst(RegClass::Int, 5, "x");
    b.emitRRI(Op::Add, x, 1, "y");
    b.edge(fn, b0, b1);
    b.setInsertPoint(fn, b1);
    b.emitRet();
    return b.build();
}

// --- Builder and validation ------------------------------------------

TEST(Builder, BuildsValidProgram)
{
    const auto p = tinyProgram();
    EXPECT_EQ(p.functions.size(), 1u);
    EXPECT_EQ(p.staticInstCount(), 3u);
    EXPECT_EQ(p.values.size(), 2u);
}

TEST(Builder, PcAssignmentIsContiguous)
{
    prog::Builder b("pcs");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    const auto b1 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    b.emitConst(RegClass::Int, 1);
    b.emitConst(RegClass::Int, 2);
    b.edge(fn, b0, b1);
    b.setInsertPoint(fn, b1);
    b.emitRet();
    const auto p = b.build();
    EXPECT_EQ(p.functions[0].blocks[0].startPc, p.codeBase);
    EXPECT_EQ(p.functions[0].blocks[1].startPc, p.codeBase + 8);
}

TEST(Builder, GlobalValuesAreLiveInCandidates)
{
    prog::Builder b("glob");
    const auto sp = b.globalValue(RegClass::Int, "sp");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    b.emitRRI(Op::Add, sp, 8);
    b.emitRet();
    const auto p = b.build();
    EXPECT_TRUE(p.values[sp].globalCandidate);
    EXPECT_TRUE(p.values[sp].liveIn);
}

TEST(BuilderDeath, CondBranchNeedsTwoSuccessors)
{
    prog::Builder b("bad");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    const auto x = b.emitConst(RegClass::Int, 0);
    b.emitBranch(Op::Bne, x, b.branch(prog::BranchModel::never()));
    // only one successor
    const auto b1 = b.block(fn, 1);
    b.edge(fn, b0, b1);
    b.setInsertPoint(fn, b1);
    b.emitRet();
    EXPECT_DEATH(b.build(), "2 successors");
}

TEST(BuilderDeath, ReturnMustNotHaveSuccessors)
{
    prog::Builder b("bad");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    const auto b1 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    b.emitRet();
    b.edge(fn, b0, b1);
    b.setInsertPoint(fn, b1);
    b.emitRet();
    EXPECT_DEATH(b.build(), "no successors");
}

TEST(BuilderDeath, FallthroughNeedsExactlyOneSuccessor)
{
    prog::Builder b("bad");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    b.emitConst(RegClass::Int, 1);
    EXPECT_DEATH(b.build(), "1 succ");
}

TEST(BuilderDeath, MemoryOpRequiresStream)
{
    prog::Program p;
    p.name = "bad";
    prog::Function fn;
    fn.id = 0;
    prog::BasicBlock blk;
    blk.id = 0;
    prog::Instr ld;
    ld.op = Op::Ldl;
    ld.dest = 0;
    blk.instrs.push_back(ld);
    prog::Instr ret;
    ret.op = Op::Ret;
    blk.instrs.push_back(ret);
    fn.blocks.push_back(blk);
    p.functions.push_back(fn);
    p.values.push_back({});
    EXPECT_DEATH(p.finalize(), "without address stream");
}

TEST(BuilderDeath, CallNeedsCallee)
{
    prog::Program p;
    p.name = "bad";
    prog::Function fn;
    fn.id = 0;
    prog::BasicBlock b0;
    b0.id = 0;
    prog::Instr jsr;
    jsr.op = Op::Jsr;
    b0.instrs.push_back(jsr);
    b0.succs = {1};
    prog::BasicBlock b1;
    b1.id = 1;
    prog::Instr ret;
    ret.op = Op::Ret;
    b1.instrs.push_back(ret);
    fn.blocks.push_back(b0);
    fn.blocks.push_back(b1);
    p.functions.push_back(fn);
    EXPECT_DEATH(p.finalize(), "callee");
}

// --- Branch models ------------------------------------------------------

TEST(BranchModel, LoopTakesTripMinusOneThenExits)
{
    const auto m = prog::BranchModel::loop(4);
    prog::BranchModelState st(m, Rng(1));
    // Two full loop executions: T T T N, T T T N.
    for (int round = 0; round < 2; ++round) {
        EXPECT_TRUE(st.nextOutcome());
        EXPECT_TRUE(st.nextOutcome());
        EXPECT_TRUE(st.nextOutcome());
        EXPECT_FALSE(st.nextOutcome());
    }
}

TEST(BranchModel, LoopTripOneNeverTaken)
{
    prog::BranchModelState st(prog::BranchModel::loop(1), Rng(1));
    EXPECT_FALSE(st.nextOutcome());
    EXPECT_FALSE(st.nextOutcome());
}

TEST(BranchModel, PatternRepeats)
{
    const auto m = prog::BranchModel::patterned({true, false, false});
    prog::BranchModelState st(m, Rng(1));
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(st.nextOutcome());
        EXPECT_FALSE(st.nextOutcome());
        EXPECT_FALSE(st.nextOutcome());
    }
}

TEST(BranchModel, AlwaysAndNever)
{
    prog::BranchModelState a(prog::BranchModel::always(), Rng(1));
    prog::BranchModelState n(prog::BranchModel::never(), Rng(1));
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(a.nextOutcome());
        EXPECT_FALSE(n.nextOutcome());
    }
}

TEST(BranchModel, BernoulliDeterministicPerSeed)
{
    const auto m = prog::BranchModel::bernoulli(0.5);
    prog::BranchModelState a(m, Rng(9));
    prog::BranchModelState b(m, Rng(9));
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.nextOutcome(), b.nextOutcome());
}

TEST(BranchModel, BernoulliMatchesBias)
{
    prog::BranchModelState st(prog::BranchModel::bernoulli(0.8), Rng(3));
    int taken = 0;
    for (int i = 0; i < 5000; ++i)
        taken += st.nextOutcome() ? 1 : 0;
    EXPECT_NEAR(taken / 5000.0, 0.8, 0.03);
}

TEST(BranchModel, JitteredTripStaysInBounds)
{
    const auto m = prog::BranchModel::loop(10, 3);
    prog::BranchModelState st(m, Rng(5));
    for (int round = 0; round < 20; ++round) {
        unsigned trip = 1;
        while (st.nextOutcome())
            ++trip;
        EXPECT_GE(trip, 7u);
        EXPECT_LE(trip, 13u);
    }
}

// --- Address streams ------------------------------------------------------

TEST(AddrStream, FixedAlwaysSameAddress)
{
    prog::AddrStreamState st(prog::AddrStream::fixed(0x1000), Rng(1));
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(st.nextAddr(), 0x1000u);
}

TEST(AddrStream, StrideAdvancesAndWraps)
{
    const auto s = prog::AddrStream::strided(0x100, 8, 24);
    prog::AddrStreamState st(s, Rng(1));
    EXPECT_EQ(st.nextAddr(), 0x100u);
    EXPECT_EQ(st.nextAddr(), 0x108u);
    EXPECT_EQ(st.nextAddr(), 0x110u);
    EXPECT_EQ(st.nextAddr(), 0x100u); // wrapped
}

TEST(AddrStream, RandomStaysInRegion)
{
    const auto s = prog::AddrStream::randomIn(0x4000, 256);
    prog::AddrStreamState st(s, Rng(7));
    for (int i = 0; i < 200; ++i) {
        const auto a = st.nextAddr();
        EXPECT_GE(a, 0x4000u);
        EXPECT_LT(a, 0x4100u);
        EXPECT_EQ(a % 8, 0u);
    }
}

TEST(AddrStream, HashTableRevisitsLastAddress)
{
    const auto s = prog::AddrStream::hashTable(0x8000, 4096, 1.0);
    prog::AddrStreamState st(s, Rng(11));
    const auto first = st.nextAddr();
    // pRevisit = 1.0: every subsequent access revisits.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(st.nextAddr(), first);
}

TEST(AddrStream, DeterministicPerSeed)
{
    const auto s = prog::AddrStream::randomIn(0, 4096);
    prog::AddrStreamState a(s, Rng(21)), b(s, Rng(21));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextAddr(), b.nextAddr());
}

// --- MachProgram ---------------------------------------------------------

TEST(MachProgram, FinalizeAssignsPcs)
{
    prog::MachProgram mp;
    mp.name = "m";
    prog::MachFunction fn;
    fn.id = 0;
    prog::MachBlock blk;
    blk.id = 0;
    prog::MachEntry e;
    e.mi = isa::makeJump(Op::Ret);
    blk.instrs.push_back(e);
    fn.blocks.push_back(blk);
    mp.functions.push_back(fn);
    mp.finalize();
    EXPECT_EQ(mp.functions[0].blocks[0].startPc, mp.codeBase);
    EXPECT_EQ(mp.staticInstCount(), 1u);
}



TEST(Dump, IlProgramRendersNamesAndStructure)
{
    const auto p = tinyProgram();
    const std::string text = prog::dumpProgram(p);
    EXPECT_NE(text.find("program 'tiny'"), std::string::npos);
    EXPECT_NE(text.find("fn main:"), std::string::npos);
    EXPECT_NE(text.find("bb0"), std::string::npos);
    EXPECT_NE(text.find("-> bb1"), std::string::npos);
    EXPECT_NE(text.find("lda x"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(Dump, GlobalCandidatesAreMarked)
{
    prog::Builder b("g");
    const auto sp = b.globalValue(RegClass::Int, "sp");
    const auto fn = b.function("main");
    const auto b0 = b.block(fn, 1);
    b.setInsertPoint(fn, b0);
    b.emitRRI(Op::Add, sp, 8, "t");
    b.emitRet();
    const auto p = b.build();
    EXPECT_NE(prog::dumpProgram(p).find("sp!"), std::string::npos);
}

} // namespace
