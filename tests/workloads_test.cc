/**
 * @file
 * Tests for the synthetic SPEC92-like workload generators: structural
 * validity, determinism, scaling, and the per-benchmark instruction-mix
 * characteristics the evaluation depends on.
 */

#include <gtest/gtest.h>

#include <map>

#include "compiler/liveness.hh"
#include "exec/trace.hh"
#include "exec/walker.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

/** Dynamic op-class mix of an IL program, by walking it. */
struct Mix
{
    std::map<isa::OpClass, std::uint64_t> byClass;
    std::uint64_t total = 0;

    double
    fraction(isa::OpClass cls) const
    {
        const auto it = byClass.find(cls);
        return total == 0 || it == byClass.end()
                   ? 0.0
                   : static_cast<double>(it->second) /
                         static_cast<double>(total);
    }
};

Mix
dynamicMix(const prog::Program &p, std::uint64_t cap = 60'000)
{
    Mix mix;
    exec::CfgWalker<prog::Program> walker(p, 99);
    exec::WalkSite site;
    while (mix.total < cap && walker.step(site)) {
        const auto &in =
            p.functions[site.fn].blocks[site.blk].instrs[site.idx];
        ++mix.byClass[isa::opClass(in.op)];
        ++mix.total;
    }
    return mix;
}

class BenchmarkTest
    : public ::testing::TestWithParam<workloads::BenchmarkInfo>
{
};

TEST_P(BenchmarkTest, BuildsAndValidates)
{
    const auto p = GetParam().make(workloads::WorkloadParams{0.05});
    EXPECT_GT(p.staticInstCount(), 10u);
    EXPECT_GT(p.values.size(), 5u);
    compiler::checkValueLocality(p); // panics on violation
}

TEST_P(BenchmarkTest, DeterministicConstruction)
{
    const auto a = GetParam().make(workloads::WorkloadParams{0.05});
    const auto b = GetParam().make(workloads::WorkloadParams{0.05});
    EXPECT_EQ(a.staticInstCount(), b.staticInstCount());
    EXPECT_EQ(a.values.size(), b.values.size());
    // Same dynamic behaviour too.
    EXPECT_EQ(exec::profileProgram(a, 7, 50'000).totalInsts,
              exec::profileProgram(b, 7, 50'000).totalInsts);
}

TEST_P(BenchmarkTest, ScaleGrowsDynamicLength)
{
    const auto small = GetParam().make(workloads::WorkloadParams{0.02});
    const auto large = GetParam().make(workloads::WorkloadParams{0.1});
    const auto ps = exec::profileProgram(small, 7, 10'000'000);
    const auto pl = exec::profileProgram(large, 7, 10'000'000);
    ASSERT_TRUE(ps.completed);
    ASSERT_TRUE(pl.completed);
    EXPECT_GT(pl.totalInsts, ps.totalInsts * 2);
}

TEST_P(BenchmarkTest, TerminatesWithinBudget)
{
    const auto p = GetParam().make(workloads::WorkloadParams{1.0});
    const auto prof = exec::profileProgram(p, 7, 3'000'000);
    EXPECT_TRUE(prof.completed)
        << "default-scale benchmark exceeded 3M instructions";
    EXPECT_GT(prof.totalInsts, 80'000u)
        << "default-scale benchmark suspiciously short";
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, BenchmarkTest,
    ::testing::ValuesIn(workloads::allBenchmarks()),
    [](const ::testing::TestParamInfo<workloads::BenchmarkInfo> &info) {
        return info.param.name;
    });

// --- per-benchmark characters ------------------------------------------

TEST(WorkloadCharacter, CompressIsIntegerOnly)
{
    const auto mix = dynamicMix(
        workloads::makeCompress(workloads::WorkloadParams{0.05}));
    EXPECT_EQ(mix.fraction(isa::OpClass::FpOther), 0.0);
    EXPECT_EQ(mix.fraction(isa::OpClass::FpDiv), 0.0);
    EXPECT_GT(mix.fraction(isa::OpClass::IntOther), 0.3);
    EXPECT_GT(mix.fraction(isa::OpClass::LoadStore), 0.15);
}

TEST(WorkloadCharacter, DoducIsFpHeavyWithDivides)
{
    const auto mix = dynamicMix(
        workloads::makeDoduc(workloads::WorkloadParams{0.05}));
    EXPECT_GT(mix.fraction(isa::OpClass::FpOther) +
                  mix.fraction(isa::OpClass::FpDiv),
              0.3);
    EXPECT_GT(mix.fraction(isa::OpClass::FpDiv), 0.05);
}

TEST(WorkloadCharacter, Gcc1IsBranchy)
{
    const auto mix = dynamicMix(
        workloads::makeGcc1(workloads::WorkloadParams{0.05}));
    EXPECT_GT(mix.fraction(isa::OpClass::CtrlFlow), 0.12);
    EXPECT_EQ(mix.fraction(isa::OpClass::FpOther), 0.0);
}

TEST(WorkloadCharacter, OraIsDivideDominatedWithFewMemOps)
{
    const auto mix =
        dynamicMix(workloads::makeOra(workloads::WorkloadParams{0.05}));
    EXPECT_GT(mix.fraction(isa::OpClass::FpDiv), 0.3);
    EXPECT_LT(mix.fraction(isa::OpClass::LoadStore), 0.1);
}

TEST(WorkloadCharacter, Su2corIsMemoryHeavy)
{
    const auto mix = dynamicMix(
        workloads::makeSu2cor(workloads::WorkloadParams{0.05}));
    EXPECT_GT(mix.fraction(isa::OpClass::LoadStore), 0.3);
    EXPECT_GT(mix.fraction(isa::OpClass::FpOther), 0.15);
}

TEST(WorkloadCharacter, TomcatvIsStencilFp)
{
    const auto mix = dynamicMix(
        workloads::makeTomcatv(workloads::WorkloadParams{0.05}));
    EXPECT_GT(mix.fraction(isa::OpClass::LoadStore), 0.3);
    EXPECT_GT(mix.fraction(isa::OpClass::FpOther), 0.2);
    // Near-perfectly predictable control flow: only loop latches.
    EXPECT_LT(mix.fraction(isa::OpClass::CtrlFlow), 0.15);
}

TEST(WorkloadRegistry, ContainsTheSixPaperBenchmarks)
{
    const auto &all = workloads::allBenchmarks();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0].name, "compress");
    EXPECT_EQ(all[1].name, "doduc");
    EXPECT_EQ(all[2].name, "gcc1");
    EXPECT_EQ(all[3].name, "ora");
    EXPECT_EQ(all[4].name, "su2cor");
    EXPECT_EQ(all[5].name, "tomcatv");
    EXPECT_EQ(workloads::benchmarkByName("ora").name, "ora");
}

// --- random program generator ------------------------------------------

TEST(RandomProgram, ValidAndDeterministic)
{
    workloads::RandomProgramParams rp;
    rp.seed = 5;
    const auto a = workloads::makeRandomProgram(rp);
    const auto b = workloads::makeRandomProgram(rp);
    EXPECT_EQ(a.staticInstCount(), b.staticInstCount());
    compiler::checkValueLocality(a);
}

TEST(RandomProgram, DifferentSeedsDiffer)
{
    workloads::RandomProgramParams rp;
    rp.seed = 5;
    const auto a = workloads::makeRandomProgram(rp);
    rp.seed = 6;
    const auto b = workloads::makeRandomProgram(rp);
    EXPECT_NE(a.staticInstCount(), b.staticInstCount());
}

TEST(RandomProgram, WalksToCompletion)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        workloads::RandomProgramParams rp;
        rp.seed = seed;
        const auto p = workloads::makeRandomProgram(rp);
        const auto prof = exec::profileProgram(p, seed, 1'000'000);
        EXPECT_TRUE(prof.completed) << "seed " << seed;
    }
}

} // namespace
