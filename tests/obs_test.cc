/**
 * @file
 * Tests for the observability subsystem: cycle-stack conservation on
 * the paper scenarios, benchmark runs and campaign jobs; interval
 * sampler row arithmetic and serialization; Perfetto trace-event
 * export (valid JSON, per-track monotonic timestamps, lane packing);
 * and the validating JSON parser itself.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "compiler/pipeline.hh"
#include "core/processor.hh"
#include "core/timeline.hh"
#include "exec/trace.hh"
#include "harness/experiment.hh"
#include "harness/scenarios.hh"
#include "isa/inst.hh"
#include "isa/registers.hh"
#include "obs/cycle_stack.hh"
#include "obs/json.hh"
#include "obs/perfetto.hh"
#include "obs/sampler.hh"
#include "obs/snapshot.hh"
#include "runner/jobspec.hh"
#include "support/stats.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;
using obs::StallCause;

// ---------------------------------------------------------------- //
// CycleStack arithmetic                                            //
// ---------------------------------------------------------------- //

TEST(CycleStack, AccountPartitionsEverySlot)
{
    obs::CycleStack cs;
    cs.slots = 8;
    cs.account(8, StallCause::Base);        // full retire cycle
    cs.account(3, StallCause::DcacheMem);  // 3 base + 5 miss
    cs.account(0, StallCause::RemoteReg);   // fully stalled
    EXPECT_EQ(cs.cycles, 3u);
    EXPECT_EQ(cs.at(StallCause::Base), 11u);
    EXPECT_EQ(cs.at(StallCause::DcacheMem), 5u);
    EXPECT_EQ(cs.at(StallCause::RemoteReg), 8u);
    EXPECT_EQ(cs.totalSlotCycles(), 24u);
    EXPECT_TRUE(cs.conserved());
    EXPECT_DOUBLE_EQ(cs.cyclesOf(StallCause::RemoteReg), 1.0);
    EXPECT_DOUBLE_EQ(cs.cyclesOf(StallCause::DcacheMem), 0.625);
}

TEST(CycleStack, ResetClearsCountsButKeepsSlots)
{
    obs::CycleStack cs;
    cs.slots = 4;
    cs.account(1, StallCause::Squash);
    cs.reset();
    EXPECT_EQ(cs.cycles, 0u);
    EXPECT_EQ(cs.totalSlotCycles(), 0u);
    EXPECT_EQ(cs.slots, 4u);
    EXPECT_TRUE(cs.conserved());
}

TEST(CycleStack, EveryCauseHasDistinctNameAndDesc)
{
    std::vector<std::string> names;
    for (std::size_t i = 0; i < obs::kNumStallCauses; ++i) {
        const auto cause = static_cast<StallCause>(i);
        const std::string name = obs::stallCauseName(cause);
        EXPECT_NE(name, "<bad-cause>");
        EXPECT_NE(std::string(obs::stallCauseDesc(cause)), "<bad-cause>");
        for (const auto &prev : names)
            EXPECT_NE(name, prev);
        names.push_back(name);
    }
}

// ---------------------------------------------------------------- //
// Conservation on real runs                                        //
// ---------------------------------------------------------------- //

TEST(Conservation, AllFivePaperScenarios)
{
    const auto scenarios = harness::runScenarios();
    ASSERT_EQ(scenarios.size(), 5u);
    for (const auto &s : scenarios) {
        SCOPED_TRACE("scenario " + std::to_string(s.number));
        EXPECT_EQ(s.stack.slots, 8u);
        EXPECT_EQ(s.stack.cycles, s.totalCycles);
        EXPECT_TRUE(s.stack.conserved());
        // Two retired instructions occupy exactly two Base slots plus
        // whatever head-executing cycles also land in Base.
        EXPECT_GE(s.stack.at(StallCause::Base), 2u);
        // A two-instruction trace drains the pipeline at the end.
        EXPECT_GT(s.stack.at(StallCause::Drain), 0u);
    }
}

TEST(Conservation, BenchmarkSimulation)
{
    const auto program =
        workloads::makeCompress(workloads::WorkloadParams{0.05});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Local;
    copt.numClusters = 2;
    const auto out = compiler::compile(program, copt);
    const auto stats = harness::simulate(
        out.binary, out.hardwareMap(2),
        core::ProcessorConfig::dualCluster8(), 42, 10'000);
    ASSERT_TRUE(stats.completed);
    const auto &cs = stats.cycleStack;
    EXPECT_EQ(cs.slots, 8u);
    EXPECT_EQ(cs.cycles, stats.cycles);
    EXPECT_TRUE(cs.conserved());
    // Every retired instruction is one Base slot-cycle.
    EXPECT_GE(cs.at(StallCause::Base), stats.retired);
}

TEST(Conservation, CampaignJobCarriesTheStack)
{
    runner::JobSpec spec;
    spec.benchmark = "compress";
    spec.scale = 0.05;
    spec.maxInsts = 10'000;
    const auto result = runner::runJob(spec);
    ASSERT_EQ(result.status, runner::JobStatus::Ok) << result.error;
    EXPECT_EQ(result.stackSlots, 8u);
    std::uint64_t total = 0;
    for (auto v : result.stackSlotCycles)
        total += v;
    EXPECT_EQ(total, std::uint64_t{result.stackSlots} * result.cycles);
}

// ---------------------------------------------------------------- //
// PeriodicSampler                                                  //
// ---------------------------------------------------------------- //

/** Synthetic one-cluster observation after `cycle` completed cycles. */
obs::CycleObs
syntheticObs(Cycle cycle)
{
    obs::CycleObs o;
    o.cycle = cycle;
    o.retired = 2 * cycle;  // steady 2 IPC
    o.dispatched = 3 * cycle;
    o.icacheAccesses = cycle;
    o.icacheMisses = cycle / 10;
    o.dcacheAccesses = 2 * cycle;
    o.dcacheMisses = cycle / 5;
    o.robOcc = 4;
    o.robCap = 32;
    obs::ClusterObs cl;
    cl.queueOcc = 3;
    cl.queueCap = 16;
    cl.otbInUse = 1;
    cl.otbCap = 15;
    cl.rtbInUse = 2;
    cl.rtbCap = 15;
    o.clusters.push_back(cl);
    return o;
}

TEST(PeriodicSampler, RowsPartitionTheRunWithoutLoss)
{
    obs::PeriodicSampler sampler(10);
    const Cycle total = 25;
    for (Cycle c = 1; c <= total; ++c)
        sampler.tick(syntheticObs(c));
    sampler.finish();

    const auto &rows = sampler.rows();
    ASSERT_EQ(rows.size(), 3u);  // 10 + 10 + trailing 5

    // Intervals tile the run: [0,10], [10,20], [20,25].
    EXPECT_EQ(rows[0].cycleBegin, 0u);
    EXPECT_EQ(rows[0].cycleEnd, 10u);
    EXPECT_EQ(rows[1].cycleBegin, 10u);
    EXPECT_EQ(rows[1].cycleEnd, 20u);
    EXPECT_EQ(rows[2].cycleBegin, 20u);
    EXPECT_EQ(rows[2].cycleEnd, 25u);

    // No retired instruction is lost or double-counted across rows.
    std::uint64_t retired = 0;
    for (const auto &row : rows)
        retired += row.retired;
    EXPECT_EQ(retired, 2 * total);
    EXPECT_DOUBLE_EQ(rows[0].ipc, 2.0);
    EXPECT_DOUBLE_EQ(rows[2].ipc, 2.0);

    // Constant occupancies come back exactly.
    ASSERT_EQ(rows[0].clusters.size(), 1u);
    EXPECT_DOUBLE_EQ(rows[0].clusters[0].queueMean, 3.0);
    EXPECT_EQ(rows[0].clusters[0].queueP50, 3u);
    EXPECT_EQ(rows[0].clusters[0].queueP99, 3u);
    EXPECT_DOUBLE_EQ(rows[0].clusters[0].otbMean, 1.0);
    EXPECT_DOUBLE_EQ(rows[0].clusters[0].rtbMean, 2.0);
    EXPECT_DOUBLE_EQ(rows[0].robMean, 4.0);
}

TEST(PeriodicSampler, SerializationsAreWellFormed)
{
    obs::PeriodicSampler sampler(4);
    for (Cycle c = 1; c <= 9; ++c)
        sampler.tick(syntheticObs(c));
    sampler.finish();
    ASSERT_EQ(sampler.rows().size(), 3u);

    std::ostringstream jsonl;
    sampler.writeJsonl(jsonl);
    const std::string lines = jsonl.str();
    std::string error;
    EXPECT_TRUE(obs::isValidJsonLines(lines, &error)) << error;
    EXPECT_EQ(std::count(lines.begin(), lines.end(), '\n'), 3);

    std::ostringstream csv;
    sampler.writeCsv(csv);
    // Header + one line per row, all with the same field count.
    std::istringstream in(csv.str());
    std::string line;
    std::vector<std::size_t> fieldCounts;
    while (std::getline(in, line))
        fieldCounts.push_back(
            1 + std::count(line.begin(), line.end(), ','));
    ASSERT_EQ(fieldCounts.size(), 4u);
    for (std::size_t i = 1; i < fieldCounts.size(); ++i)
        EXPECT_EQ(fieldCounts[i], fieldCounts[0]);
}

TEST(PeriodicSampler, EmptyRunProducesNoRows)
{
    obs::PeriodicSampler sampler(100);
    sampler.finish();
    EXPECT_TRUE(sampler.rows().empty());
    std::ostringstream jsonl;
    sampler.writeJsonl(jsonl);
    EXPECT_TRUE(jsonl.str().empty());
}

// ---------------------------------------------------------------- //
// Perfetto export                                                  //
// ---------------------------------------------------------------- //

/** Per-(pid,tid) timestamps must never go backwards (golden check). */
void
expectMonotonicTracks(const std::vector<obs::PerfettoExporter::Event> &evs)
{
    std::map<std::pair<unsigned, unsigned>, Cycle> lastTs;
    for (const auto &ev : evs) {
        if (ev.ph == 'M')
            continue;
        const auto key = std::make_pair(ev.pid, ev.tid);
        const auto it = lastTs.find(key);
        if (it != lastTs.end()) {
            EXPECT_GE(ev.ts, it->second)
                << "track pid=" << ev.pid << " tid=" << ev.tid;
        }
        lastTs[key] = ev.ts;
    }
}

TEST(Perfetto, RealRunExportsValidMonotonicTrace)
{
    // A dual-distributed producer/consumer pair plus independent work,
    // run on the real processor with recorder and per-cycle counters —
    // the same path `mcasim --trace-out` drives.
    using isa::intReg;
    using isa::Op;
    std::vector<exec::DynInst> insts;
    for (unsigned i = 0; i < 4; ++i) {
        exec::DynInst p;
        p.mi = isa::makeRRR(Op::Mull, intReg(2), intReg(4), intReg(4));
        insts.push_back(p);
        exec::DynInst a;
        a.mi = isa::makeRRR(Op::Add, intReg(3), intReg(2), intReg(5));
        insts.push_back(a);
    }
    exec::VectorTrace trace(exec::VectorTrace::normalize(insts));
    StatGroup stats("perfetto_test");
    core::Processor cpu(core::ProcessorConfig::dualCluster8(), trace,
                        stats);
    core::TimelineRecorder recorder;
    cpu.attachTimeline(&recorder);

    obs::PerfettoExporter exporter;
    obs::CycleObs snap;
    while (cpu.step()) {
        cpu.observe(snap);
        exporter.addCounters(snap);
    }
    exporter.addTimeline(recorder, 2);

    std::ostringstream os;
    exporter.write(os);
    std::string error;
    EXPECT_TRUE(obs::isValidJson(os.str(), &error)) << error;
    EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(os.str().find("process_name"), std::string::npos);

    const auto events = exporter.sortedEvents();
    expectMonotonicTracks(events);
    unsigned slices = 0, counters = 0, metas = 0;
    for (const auto &ev : events) {
        slices += ev.ph == 'X';
        counters += ev.ph == 'C';
        metas += ev.ph == 'M';
    }
    // One process_name per cluster plus the memory-system track.
    EXPECT_EQ(metas, 3u);
    EXPECT_GT(slices, 0u);
    EXPECT_GT(counters, 0u);
}

TEST(Perfetto, OverlappingSlicesGetDistinctLanes)
{
    core::TimelineRecorder rec;
    using core::TimelineEvent;
    // seq 0 spans cycles [1,5], seq 1 spans [2,6] in the same cluster:
    // greedy packing must put them on different lanes.
    rec.record(1, 0, 0, TimelineEvent::Dispatched);
    rec.record(5, 0, 0, TimelineEvent::Retired);
    rec.record(2, 1, 0, TimelineEvent::Dispatched);
    rec.record(6, 1, 0, TimelineEvent::Retired);
    // seq 2 spans [7,8]: lane 1 is free again by then.
    rec.record(7, 2, 0, TimelineEvent::Dispatched);
    rec.record(8, 2, 0, TimelineEvent::Retired);

    obs::PerfettoExporter exporter;
    exporter.addTimeline(rec, 1);
    std::map<InstSeq, unsigned> laneOf;
    for (const auto &ev : exporter.sortedEvents())
        if (ev.ph == 'X') {
            ASSERT_EQ(ev.pid, 0u);
            laneOf[ev.ts == 1 ? 0 : ev.ts == 2 ? 1 : 2] = ev.tid;
        }
    ASSERT_EQ(laneOf.size(), 3u);
    EXPECT_NE(laneOf[0], laneOf[1]);
    EXPECT_EQ(laneOf[2], laneOf[0]);  // reuses the freed first lane
    expectMonotonicTracks(exporter.sortedEvents());
}

TEST(Perfetto, EmptyExportIsStillValidJson)
{
    obs::PerfettoExporter exporter;
    std::ostringstream os;
    exporter.write(os);
    std::string error;
    EXPECT_TRUE(obs::isValidJson(os.str(), &error)) << error;
}

// ---------------------------------------------------------------- //
// JSON validator                                                   //
// ---------------------------------------------------------------- //

TEST(JsonValidator, AcceptsWellFormedDocuments)
{
    const char *good[] = {
        "{}",
        "[]",
        "null",
        "true",
        "-12.5e-3",
        "\"a \\\"quoted\\\" string with \\u00e9 and \\n\"",
        "{\"a\":[1,2,{\"b\":null}],\"c\":false}",
        "  [ 1 , 2 ]  ",
    };
    for (const char *text : good) {
        std::string error;
        EXPECT_TRUE(obs::isValidJson(text, &error))
            << text << ": " << error;
    }
}

TEST(JsonValidator, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "",
        "{",
        "{\"a\":}",
        "[1,2,]",
        "nul",
        "01",
        "\"unterminated",
        "\"bad \\q escape\"",
        "{} {}",       // two top-level values
        "{\"a\":1,}",  // trailing comma
    };
    for (const char *text : bad) {
        std::string error;
        EXPECT_FALSE(obs::isValidJson(text, &error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(JsonValidator, JsonLinesChecksEveryLine)
{
    EXPECT_TRUE(obs::isValidJsonLines("{\"a\":1}\n{\"b\":2}\n"));
    EXPECT_TRUE(obs::isValidJsonLines(""));      // vacuously valid
    EXPECT_TRUE(obs::isValidJsonLines("\n\n"));  // blank lines skipped
    std::string error;
    EXPECT_FALSE(obs::isValidJsonLines("{\"a\":1}\n{oops}\n", &error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

} // namespace
