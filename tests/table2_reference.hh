/**
 * @file
 * Checked-in pre-refactor Table-2 reference results (paper mode).
 *
 * Captured from the flat-cache simulator immediately before the
 * MemorySystem refactor: the Table-2 campaign at scale 0.05,
 * maxInsts 20000, seeds 42, threshold 4. A paper-mode (default
 * MemoryParams) run must reproduce every row bit-for-bit — cycles,
 * retired count, and the full cycle stack (tests/lockstep_test.cc).
 *
 * The stack is stored in the current 11-cause taxonomy: the old
 * dcache_miss cause maps to dcache_mem (all paper-mode misses go to
 * memory; dcache_l2 is identically zero without an L2).
 */

#ifndef MCA_TESTS_TABLE2_REFERENCE_HH
#define MCA_TESTS_TABLE2_REFERENCE_HH

#include <array>
#include <cstdint>

namespace mca::tests
{

struct Table2Reference
{
    const char *benchmark;
    const char *machine;
    const char *scheduler;
    std::uint64_t cycles;
    std::uint64_t retired;
    unsigned stackSlots;
    std::array<std::uint64_t, 11> stackSlotCycles;
};

inline constexpr Table2Reference kTable2Reference[] = {
    {"compress", "single8", "native", 14847, 14809, 8,
     {54516, 0, 0, 0, 0, 0, 343, 0, 62314, 1596, 7}},
    {"compress", "dual8", "native", 16787, 14809, 8,
     {57939, 0, 0, 0, 11159, 0, 335, 0, 63239, 1617, 7}},
    {"compress", "dual8", "local", 15826, 14809, 8,
     {60490, 0, 0, 0, 2552, 0, 335, 0, 61598, 1626, 7}},
    {"doduc", "single8", "native", 16490, 15563, 8,
     {128116, 138, 0, 0, 0, 0, 398, 0, 2929, 336, 3}},
    {"doduc", "dual8", "native", 19600, 15563, 8,
     {152130, 650, 0, 0, 803, 0, 390, 0, 2509, 315, 3}},
    {"doduc", "dual8", "local", 17599, 15563, 8,
     {133850, 60, 0, 0, 3427, 0, 390, 0, 2737, 325, 3}},
    {"gcc1", "single8", "native", 9877, 11983, 8,
     {34005, 0, 0, 0, 0, 0, 8943, 0, 35333, 728, 7}},
    {"gcc1", "dual8", "native", 10732, 11983, 8,
     {36316, 0, 0, 0, 7393, 0, 7478, 0, 34073, 589, 7}},
    {"gcc1", "dual8", "local", 10044, 11983, 8,
     {34834, 0, 0, 0, 2271, 0, 8473, 0, 34124, 643, 7}},
    {"ora", "single8", "native", 19470, 4578, 8,
     {155533, 0, 0, 0, 0, 0, 175, 0, 0, 49, 3}},
    {"ora", "dual8", "native", 20153, 4578, 8,
     {156916, 0, 0, 0, 4096, 0, 167, 0, 0, 42, 3}},
    {"ora", "dual8", "local", 20132, 4578, 8,
     {158989, 0, 0, 0, 1848, 0, 167, 0, 0, 49, 3}},
    {"su2cor", "single8", "native", 1697, 6275, 8,
     {12097, 0, 0, 0, 0, 0, 128, 0, 1345, 0, 6}},
    {"su2cor", "dual8", "native", 2621, 6275, 8,
     {15298, 0, 0, 0, 465, 0, 128, 0, 5071, 0, 6}},
    {"su2cor", "dual8", "local", 1882, 6275, 8,
     {12331, 0, 0, 0, 889, 0, 128, 0, 1702, 0, 6}},
    {"tomcatv", "single8", "native", 4026, 13518, 8,
     {29943, 0, 0, 0, 0, 0, 128, 0, 2130, 0, 7}},
    {"tomcatv", "dual8", "native", 5792, 13518, 8,
     {41647, 0, 0, 0, 4312, 0, 128, 0, 242, 0, 7}},
    {"tomcatv", "dual8", "local", 5310, 13518, 8,
     {38230, 0, 0, 0, 3873, 0, 128, 0, 242, 0, 7}},
};

} // namespace mca::tests

#endif // MCA_TESTS_TABLE2_REFERENCE_HH
