/**
 * @file
 * Property-based tests: randomized programs are pushed through the full
 * compile-and-simulate pipeline and cross-checked against the
 * invariants the reproduction depends on:
 *
 *   1. allocation validity — interfering live ranges never share a
 *      register;
 *   2. cluster discipline — with the local scheduler, every register
 *      respects its live range's final cluster;
 *   3. path equivalence — the native and rescheduled binaries execute
 *      the same dynamic path (same non-spill opcode sequence), the
 *      paper's core methodological invariant;
 *   4. machine liveness — both machines drain every trace completely
 *      and deterministically;
 *   5. snapshot fidelity — at arbitrary mid-run cycle points, a full
 *      machine snapshot survives save → restore → re-save with
 *      byte-identical payloads (the snapshot is a fixed point of
 *      save∘load, so no machine state escapes the checkpoint chain).
 */

#include <gtest/gtest.h>

#include "ckpt/snapshot.hh"
#include "compiler/interference.hh"
#include "compiler/liveness.hh"
#include "compiler/pipeline.hh"
#include "core/processor.hh"
#include "exec/trace.hh"
#include "exec/walker.hh"
#include "harness/experiment.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

class RandomPipeline : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    prog::Program
    program() const
    {
        workloads::RandomProgramParams rp;
        rp.seed = GetParam();
        rp.numFunctions = 3;
        rp.segmentsPerFunction = 5;
        rp.instrsPerBlock = 7;
        return workloads::makeRandomProgram(rp);
    }
};

TEST_P(RandomPipeline, AllocationNeverOverlapsRegisters)
{
    const auto p = program();
    for (const auto sched : {compiler::SchedulerKind::Native,
                             compiler::SchedulerKind::Local}) {
        compiler::CompileOptions copt;
        copt.scheduler = sched;
        copt.numClusters =
            sched == compiler::SchedulerKind::Native ? 1 : 2;
        const auto out = compiler::compile(p, copt);

        const auto &rewritten = out.alloc.rewritten;
        const auto live = compiler::computeLiveness(rewritten);
        BitSet spilled(rewritten.values.size());
        for (prog::FunctionId f = 0; f < rewritten.functions.size();
             ++f) {
            for (unsigned ci = 0; ci < 2; ++ci) {
                const auto cls = static_cast<isa::RegClass>(ci);
                const auto g = compiler::buildInterference(
                    rewritten, f, cls, live, spilled);
                for (std::size_t i = 0; i < g.numNodes(); ++i) {
                    const auto vi = g.valueOf(i);
                    g.forEachNeighbor(i, [&](std::size_t j) {
                        const auto vj = g.valueOf(j);
                        EXPECT_FALSE(out.alloc.regOf[vi] ==
                                     out.alloc.regOf[vj])
                            << "fn " << f << ": values " << vi << "/"
                            << vj << " share "
                            << isa::regName(out.alloc.regOf[vi]);
                    });
                }
            }
        }
    }
}

TEST_P(RandomPipeline, LocalSchedulerClusterDiscipline)
{
    const auto p = program();
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Local;
    copt.numClusters = 2;
    const auto out = compiler::compile(p, copt);
    const auto &alloc = out.alloc;
    for (prog::ValueId v = 0; v < alloc.rewritten.values.size(); ++v) {
        if (alloc.rewritten.values[v].globalCandidate)
            continue;
        const int cluster = alloc.finalAssignment.clusterOf(v);
        if (cluster < 0)
            continue;
        const auto reg = alloc.regOf[v];
        if (reg.isZero())
            continue;
        EXPECT_EQ(reg.index % 2, static_cast<unsigned>(cluster))
            << "value " << v;
    }
}

TEST_P(RandomPipeline, NativeAndLocalExecuteSamePath)
{
    const auto p = program();
    compiler::CompileOptions nat;
    nat.scheduler = compiler::SchedulerKind::Native;
    nat.numClusters = 1;
    const auto native = compiler::compile(p, nat);
    compiler::CompileOptions loc;
    loc.scheduler = compiler::SchedulerKind::Local;
    loc.numClusters = 2;
    const auto local = compiler::compile(p, loc);

    auto opcodes = [](const prog::MachProgram &mp, std::uint64_t seed) {
        exec::ProgramTrace trace(mp, seed, 300'000);
        std::vector<isa::Op> ops;
        while (auto di = trace.next())
            if (!di->isSpill)
                ops.push_back(di->mi.op);
        return ops;
    };
    const auto a = opcodes(native.binary, 13);
    const auto b = opcodes(local.binary, 13);
    // Rescheduling must not change the executed path: identical
    // non-spill opcode sequences (the paper's ATOM invariant).
    EXPECT_EQ(a, b);
}

TEST_P(RandomPipeline, BothMachinesDrainDeterministically)
{
    const auto p = program();
    compiler::CompileOptions nat;
    nat.scheduler = compiler::SchedulerKind::Native;
    nat.numClusters = 1;
    const auto native = compiler::compile(p, nat);
    compiler::CompileOptions loc;
    loc.scheduler = compiler::SchedulerKind::Local;
    loc.numClusters = 2;
    const auto local = compiler::compile(p, loc);

    const auto s1 = harness::simulate(
        native.binary, native.hardwareMap(1),
        core::ProcessorConfig::singleCluster8(), 13, 100'000);
    const auto s2 = harness::simulate(
        native.binary, native.hardwareMap(2),
        core::ProcessorConfig::dualCluster8(), 13, 100'000);
    const auto s3 = harness::simulate(
        local.binary, local.hardwareMap(2),
        core::ProcessorConfig::dualCluster8(), 13, 100'000);
    EXPECT_TRUE(s1.completed);
    EXPECT_TRUE(s2.completed);
    EXPECT_TRUE(s3.completed);
    EXPECT_GT(s1.retired, 0u);
    // Native binary retires the same count on both machines.
    EXPECT_EQ(s1.retired, s2.retired);

    const auto again = harness::simulate(
        local.binary, local.hardwareMap(2),
        core::ProcessorConfig::dualCluster8(), 13, 100'000);
    EXPECT_EQ(again.cycles, s3.cycles);
}

TEST_P(RandomPipeline, FourClusterMachineAlsoDrains)
{
    const auto p = program();
    compiler::CompileOptions nat;
    nat.scheduler = compiler::SchedulerKind::Native;
    nat.numClusters = 1;
    const auto native = compiler::compile(p, nat);
    const auto cfg = core::ProcessorConfig::multiCluster8(4);
    const auto s = harness::simulate(native.binary,
                                     native.hardwareMap(4), cfg, 13,
                                     50'000);
    EXPECT_TRUE(s.completed);
    EXPECT_GT(s.retired, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipeline,
                         ::testing::Range<std::uint64_t>(1, 13));

} // namespace

namespace modes
{

using namespace mca;

/** Every machine-mode combination must drain every random program. */
class ModeMatrix : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ModeMatrix, AllConfigurationsDrainAndAgreeOnRetireCount)
{
    workloads::RandomProgramParams rp;
    rp.seed = GetParam();
    rp.numFunctions = 2;
    rp.segmentsPerFunction = 4;
    const auto p = workloads::makeRandomProgram(rp);
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Local;
    copt.numClusters = 2;
    copt.superblocks = (GetParam() % 2) == 0;
    copt.unrollFactor = (GetParam() % 3) == 0 ? 2 : 1;
    const auto out = compiler::compile(p, copt);

    std::uint64_t retired = 0;
    for (const bool window : {false, true}) {
        for (const bool reserve : {false, true}) {
            auto cfg = core::ProcessorConfig::dualCluster8();
            cfg.regMap = out.hardwareMap(2);
            cfg.holdQueueUntilRetire = window;
            cfg.reserveOldestEntry = reserve;
            cfg.speculativeHistory = reserve; // vary it too
            cfg.paranoid = true;
            StatGroup stats("m");
            exec::ProgramTrace trace(out.binary, 5, 40'000);
            core::Processor cpu(cfg, trace, stats);
            const auto r = cpu.run(10'000'000);
            ASSERT_TRUE(r.completed)
                << "window=" << window << " reserve=" << reserve;
            if (retired == 0)
                retired = r.instructions;
            // Machine policy must never change WHAT executes.
            EXPECT_EQ(r.instructions, retired)
                << "window=" << window << " reserve=" << reserve;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeMatrix,
                         ::testing::Range<std::uint64_t>(20, 28));

} // namespace modes

namespace ckptprop
{

using namespace mca;

/**
 * Snapshot fidelity across every benchmark in the registry plus the
 * pointer-chase microbenchmark: stop a run at pseudo-random cycle
 * points, save the full machine, restore it into a fresh machine, and
 * re-save — the two payloads must be byte-identical. Any drift means
 * some piece of state (queues, rename maps, caches, MSHRs, predictor,
 * trace cursor, stats) escaped the save/restore chain.
 */
class SnapshotRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SnapshotRoundTrip, SaveRestoreSaveIsByteIdentical)
{
    const std::string bench = GetParam();
    const auto program = bench == "chase"
                             ? workloads::makePointerChase({})
                             : workloads::benchmarkByName(bench).make({});
    compiler::CompileOptions copt = compiler::compileOptionsFor("local", 2);
    copt.profileSeed = 42;
    const auto compiled = compiler::compile(program, copt);
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.regMap = compiled.hardwareMap(2);

    // Per-workload pseudo-random mid-run stop points (deterministic,
    // but not aligned to anything the pipeline does).
    std::uint64_t nameSalt = 0;
    for (const char c : bench)
        nameSalt = nameSalt * 131 + static_cast<unsigned char>(c);
    for (std::uint64_t trial = 0; trial < 3; ++trial) {
        const Cycle stop =
            200 + exec::hashSeed(42, nameSalt, trial) % 5'000;

        StatGroup sg("mca");
        exec::ProgramTrace trace(compiled.binary, 42, 20'000);
        core::Processor proc(cfg, trace, sg);
        proc.run(stop);
        ckpt::SnapshotBuilder save(proc.configHash());
        proc.saveState(save);
        const ckpt::Snapshot first = save.finish();

        StatGroup sg2("mca");
        exec::ProgramTrace trace2(compiled.binary, 42, 20'000);
        core::Processor restored(cfg, trace2, sg2);
        ckpt::SnapshotParser parser(first, restored.configHash());
        restored.loadState(parser);
        ckpt::SnapshotBuilder resave(restored.configHash());
        restored.saveState(resave);
        const ckpt::Snapshot second = resave.finish();

        ASSERT_EQ(first.payload, second.payload)
            << bench << ": payload drift at cycle " << stop;
        EXPECT_EQ(first.contentHash(), second.contentHash());
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SnapshotRoundTrip,
                         ::testing::Values("compress", "doduc", "gcc1",
                                           "ora", "su2cor", "tomcatv",
                                           "chase"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

} // namespace ckptprop
