/**
 * @file
 * Tests for the loop-unrolling extension (paper §6): structural
 * correctness, trace-length preservation, loop-carried renaming, and
 * the end-to-end interaction with the partitioner.
 */

#include <gtest/gtest.h>

#include "compiler/pipeline.hh"
#include "compiler/unroll.hh"
#include "exec/trace.hh"
#include "harness/experiment.hh"
#include "prog/builder.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;
using isa::Op;
using isa::RegClass;

/** acc/i counted self-loop with a store, trip iterations. */
prog::Program
makeLoop(std::uint64_t trip)
{
    prog::Builder b("unrollable");
    const auto fn = b.function("main");
    const auto entry = b.block(fn, 1, "entry");
    const auto body = b.block(fn, static_cast<double>(trip), "body");
    const auto exit = b.block(fn, 1, "exit");
    const auto arr = b.stream(prog::AddrStream::strided(0x1000, 8,
                                                        64 * 1024));
    b.setInsertPoint(fn, entry);
    const auto i = b.emitConst(RegClass::Int, 0, "i");
    const auto acc = b.emitConst(RegClass::Int, 0, "acc");
    const auto base = b.emitConst(RegClass::Int, 0x1000, "base");
    b.edge(fn, entry, body);
    b.setInsertPoint(fn, body);
    const auto x = b.emitLoad(Op::Ldl, arr, base, "x");
    b.emitRRRTo(acc, Op::Add, acc, x);
    b.emitRRITo(i, Op::Add, i, 1);
    const auto c = b.emitRRI(Op::CmpLt, i, 0x7fff, "c");
    b.emitBranch(Op::Bne, c, b.branch(prog::BranchModel::loop(trip)));
    b.edge(fn, body, exit);
    b.edge(fn, body, body);
    b.setInsertPoint(fn, exit);
    b.emitStore(Op::Stl, acc, arr, base);
    b.emitRet();
    return b.build();
}

std::uint64_t
dynLength(const prog::Program &p)
{
    return exec::profileProgram(p, 3, 10'000'000).totalInsts;
}

TEST(Unroll, ReplicatesBodyWithSingleLatch)
{
    auto p = makeLoop(64);
    const auto before = p.functions[0].blocks[1].instrs.size();
    const auto stats = compiler::unrollLoops(p, 4);
    EXPECT_EQ(stats.loopsUnrolled, 1u);
    const auto &body = p.functions[0].blocks[1].instrs;
    // 4 copies of the 4-instruction body + one terminator.
    EXPECT_EQ(body.size(), 4 * (before - 1) + 1);
    // Exactly one control-flow instruction, and it is last.
    unsigned ctrl = 0;
    for (const auto &in : body)
        ctrl += isa::isCtrlFlow(in.op);
    EXPECT_EQ(ctrl, 1u);
    EXPECT_TRUE(isa::isCondBranch(body.back().op));
}

TEST(Unroll, DynamicInstructionCountRoughlyPreserved)
{
    auto base = makeLoop(96);
    const auto len_before = dynLength(base);
    compiler::unrollLoops(base, 4);
    const auto len_after = dynLength(base);
    // The same work is executed with 3 of every 4 latch branches
    // removed: shorter, but never by more than the latch share.
    EXPECT_LE(len_after, len_before);
    EXPECT_GE(static_cast<double>(len_after), 0.75 * len_before);
}

TEST(Unroll, IntermediateInstancesGetFreshValues)
{
    auto p = makeLoop(64);
    const auto nvals = p.values.size();
    compiler::unrollLoops(p, 4);
    // Three extra instances of {x, acc, i, c}.
    EXPECT_EQ(p.values.size(), nvals + 3 * 4);
}

TEST(Unroll, FinalInstanceRestoresOriginalNames)
{
    auto p = makeLoop(64);
    const auto acc_name = std::string("acc");
    compiler::unrollLoops(p, 2);
    const auto &body = p.functions[0].blocks[1].instrs;
    // The last write to an 'acc'-family value must be the original.
    prog::ValueId last_acc = prog::kNoValue;
    for (const auto &in : body)
        if (in.dest != prog::kNoValue &&
            p.values[in.dest].name.substr(0, 3) == acc_name)
            last_acc = in.dest;
    ASSERT_NE(last_acc, prog::kNoValue);
    EXPECT_EQ(p.values[last_acc].name, "acc"); // no ".u" suffix
}

TEST(Unroll, SkipsNonCountedLoops)
{
    prog::Builder b("bern");
    const auto fn = b.function("main");
    const auto entry = b.block(fn, 1);
    const auto body = b.block(fn, 10);
    const auto exit = b.block(fn, 1);
    b.setInsertPoint(fn, entry);
    const auto x = b.emitConst(RegClass::Int, 0, "x");
    b.edge(fn, entry, body);
    b.setInsertPoint(fn, body);
    b.emitRRITo(x, Op::Add, x, 1);
    b.emitBranch(Op::Bne, x,
                 b.branch(prog::BranchModel::bernoulli(0.9)));
    b.edge(fn, body, exit);
    b.edge(fn, body, body);
    b.setInsertPoint(fn, exit);
    b.emitRet();
    auto p = b.build();
    const auto stats = compiler::unrollLoops(p, 4);
    EXPECT_EQ(stats.loopsUnrolled, 0u);
}

TEST(Unroll, SkipsLoopsWithCalls)
{
    prog::Builder b("call");
    const auto fn = b.function("main");
    const auto callee = b.function("f");
    const auto entry = b.block(fn, 1);
    const auto body = b.block(fn, 10);
    const auto cont = b.block(fn, 10);
    const auto exit = b.block(fn, 1);
    b.setInsertPoint(fn, entry);
    const auto x = b.emitConst(RegClass::Int, 0, "x");
    b.edge(fn, entry, body);
    b.setInsertPoint(fn, body);
    b.emitRRITo(x, Op::Add, x, 1);
    b.emitJsr(callee);
    b.edge(fn, body, cont);
    b.setInsertPoint(fn, cont);
    b.emitBranch(Op::Bne, x, b.branch(prog::BranchModel::loop(10)));
    b.edge(fn, cont, exit);
    b.edge(fn, cont, body);
    b.setInsertPoint(fn, exit);
    b.emitRet();
    const auto cb = b.block(callee, 10);
    b.setInsertPoint(callee, cb);
    b.emitRet();
    auto p = b.build();
    // The self-loop here is body->cont->body, not a self edge, and the
    // call block must never be replicated.
    const auto stats = compiler::unrollLoops(p, 4);
    EXPECT_EQ(stats.loopsUnrolled, 0u);
}

TEST(Unroll, CompiledUnrolledProgramStillValidates)
{
    auto p = makeLoop(128);
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Local;
    copt.numClusters = 2;
    copt.unrollFactor = 4;
    const auto out = compiler::compile(p, copt);
    EXPECT_EQ(out.unrollStats.loopsUnrolled, 1u);
    const auto s = harness::simulate(
        out.binary, out.hardwareMap(2),
        core::ProcessorConfig::dualCluster8(), 11, 100'000);
    EXPECT_TRUE(s.completed);
    EXPECT_GT(s.retired, 100u);
}

TEST(Unroll, InterleavesIterationsAcrossClusters)
{
    // A serial fp kernel: without unrolling the partitioner must keep
    // the chain in one cluster; with unrolling, distinct iteration
    // instances can land in different clusters.
    prog::Builder b("fpchain");
    const auto fn = b.function("main");
    const auto entry = b.block(fn, 1);
    const auto body = b.block(fn, 512, "body");
    const auto exit = b.block(fn, 1);
    const auto arr = b.stream(prog::AddrStream::strided(0x2000, 8,
                                                        256 * 1024));
    b.setInsertPoint(fn, entry);
    const auto i = b.emitConst(RegClass::Int, 0, "i");
    const auto k1 = b.emitConst(RegClass::Fp, 3, "k1");
    const auto base = b.emitConst(RegClass::Int, 0x2000, "base");
    b.edge(fn, entry, body);
    b.setInsertPoint(fn, body);
    const auto v = b.emitLoad(Op::Ldt, arr, base, "v");
    const auto t1 = b.emitRRR(Op::MulF, v, k1, "t1");
    const auto t2 = b.emitRRR(Op::AddF, t1, v, "t2");
    b.emitStore(Op::Stt, t2, arr, base);
    b.emitRRITo(i, Op::Add, i, 1);
    const auto c = b.emitRRI(Op::CmpLt, i, 512, "c");
    b.emitBranch(Op::Bne, c, b.branch(prog::BranchModel::loop(512)));
    b.edge(fn, body, exit);
    b.edge(fn, body, body);
    b.setInsertPoint(fn, exit);
    b.emitRet();
    const auto p = b.build();

    auto fpWorkBalance = [&](unsigned factor) {
        auto copt = compiler::CompileOptions{};
        copt.scheduler = compiler::SchedulerKind::Local;
        copt.numClusters = 2;
        copt.unrollFactor = factor;
        const auto out = compiler::compile(p, copt);
        // Count fp-op parity split in the hot block of the binary.
        std::uint64_t fp[2] = {0, 0};
        for (const auto &mfn : out.binary.functions)
            for (const auto &blk : mfn.blocks)
                for (const auto &e : blk.instrs) {
                    const auto cls = isa::opClass(e.mi.op);
                    if (cls != isa::OpClass::FpOther ||
                        !e.mi.dest.has_value())
                        continue;
                    ++fp[e.mi.dest->index % 2];
                }
        return fp[0] == 0 || fp[1] == 0
                   ? 0.0
                   : static_cast<double>(std::min(fp[0], fp[1])) /
                         static_cast<double>(fp[0] + fp[1]);
    };

    // Unrolled code must spread fp work at least as well as the rolled
    // loop (and strictly better when the rolled loop is one-sided).
    const double rolled = fpWorkBalance(1);
    const double unrolled = fpWorkBalance(4);
    EXPECT_GE(unrolled, rolled);
    EXPECT_GT(unrolled, 0.2); // both clusters get fp work
}

} // namespace
