/**
 * @file
 * Unit tests for the multicluster timing model: pipeline latencies,
 * issue rules, dual-distribution timing (the five scenarios), transfer
 * buffers, branch handling, memory behaviour, resource stalls, and
 * instruction-replay exceptions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/processor.hh"
#include "exec/trace.hh"
#include "support/stats.hh"

namespace
{

using namespace mca;
using core::TimelineEvent;
using isa::fpReg;
using isa::intReg;
using isa::Op;

/** Run a hand-built instruction vector on one machine. */
struct SimRun
{
    StatGroup stats{"test"};
    core::TimelineRecorder timeline;
    core::SimResult result;

    SimRun(const core::ProcessorConfig &cfg,
           std::vector<exec::DynInst> insts)
    {
        exec::VectorTrace trace(
            exec::VectorTrace::normalize(std::move(insts)));
        core::Processor cpu(cfg, trace, stats);
        cpu.attachTimeline(&timeline);
        result = cpu.run(100'000);
    }

    /** Cycle of the first matching event; kNoCycle if absent. */
    Cycle
    eventCycle(InstSeq seq, TimelineEvent ev, unsigned cluster = ~0u) const
    {
        for (const auto &r : timeline.records())
            if (r.seq == seq && r.event == ev &&
                (cluster == ~0u || r.cluster == cluster))
                return r.cycle;
        return kNoCycle;
    }

    std::uint64_t
    counter(const std::string &name) const
    {
        return stats.counterAt(name).value();
    }
};

exec::DynInst
makeInst(isa::MachInst mi)
{
    exec::DynInst di;
    di.mi = mi;
    return di;
}

exec::DynInst
makeLoadInst(Op op, isa::RegId dest, isa::RegId base, Addr addr)
{
    exec::DynInst di;
    di.mi = isa::makeLoad(op, dest, base, 0);
    di.effAddr = addr;
    return di;
}

// --- basic pipeline timing ----------------------------------------------

TEST(SingleCluster, BackToBackDependentAddsIssueConsecutively)
{
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(1), intReg(2),
                                      intReg(3))));
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(4), intReg(1),
                                      intReg(3))));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    ASSERT_TRUE(run.result.completed);
    const Cycle t0 = run.eventCycle(0, TimelineEvent::MasterIssued);
    const Cycle t1 = run.eventCycle(1, TimelineEvent::MasterIssued);
    EXPECT_EQ(t1, t0 + 1);
}

TEST(SingleCluster, MultiplyLatencySixStallsConsumer)
{
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Mull, intReg(1), intReg(2),
                                      intReg(3))));
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(4), intReg(1),
                                      intReg(3))));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    const Cycle t0 = run.eventCycle(0, TimelineEvent::MasterIssued);
    const Cycle t1 = run.eventCycle(1, TimelineEvent::MasterIssued);
    EXPECT_EQ(t1, t0 + 6);
}

TEST(SingleCluster, IndependentInstructionsIssueTogether)
{
    std::vector<exec::DynInst> v;
    for (int i = 0; i < 4; ++i)
        v.push_back(makeInst(isa::makeRRR(
            Op::Add, intReg(1 + static_cast<unsigned>(i)), intReg(20),
            intReg(21))));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    const Cycle t0 = run.eventCycle(0, TimelineEvent::MasterIssued);
    for (InstSeq s = 1; s < 4; ++s)
        EXPECT_EQ(run.eventCycle(s, TimelineEvent::MasterIssued), t0);
}

TEST(SingleCluster, IssueWidthCapsAtEight)
{
    std::vector<exec::DynInst> v;
    for (int i = 0; i < 9; ++i) {
        auto di = makeInst(isa::makeRRR(
            Op::Add, intReg(1 + static_cast<unsigned>(i)), intReg(20),
            intReg(21)));
        // Keep every PC inside one icache block so the only limiter is
        // the 8-wide issue rule (not a second cold fill).
        di.pc = 0x1000 + 4 * static_cast<Addr>(i % 8);
        v.push_back(di);
    }
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    const Cycle t0 = run.eventCycle(0, TimelineEvent::MasterIssued);
    // Exactly 8 in the first issue cycle; the ninth waits one cycle.
    unsigned at_t0 = 0;
    for (InstSeq s = 0; s < 9; ++s)
        at_t0 += run.eventCycle(s, TimelineEvent::MasterIssued) == t0;
    EXPECT_EQ(at_t0, 8u);
    EXPECT_EQ(run.eventCycle(8, TimelineEvent::MasterIssued), t0 + 1);
}

TEST(SingleCluster, LoadDelaySlotOnHit)
{
    std::vector<exec::DynInst> v;
    // Warm the block, then a hit load feeding an add.
    v.push_back(makeLoadInst(Op::Ldl, intReg(1), intReg(2), 0x1000));
    v.push_back(makeLoadInst(Op::Ldl, intReg(3), intReg(2), 0x1008));
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(4), intReg(3),
                                      intReg(2))));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    const Cycle t_miss = run.eventCycle(0, TimelineEvent::MasterIssued);
    const Cycle t_hit = run.eventCycle(1, TimelineEvent::MasterIssued);
    const Cycle t_add = run.eventCycle(2, TimelineEvent::MasterIssued);
    // The first load misses (fills at +16); the second merges with the
    // outstanding fill.
    EXPECT_EQ(t_hit, t_miss); // both issue immediately (non-blocking)
    EXPECT_GE(t_add, t_miss + 18);
}

TEST(SingleCluster, CacheHitLoadUseLatencyIsTwo)
{
    std::vector<exec::DynInst> v;
    // Load twice from the same block with a long gap so the second hits.
    v.push_back(makeLoadInst(Op::Ldl, intReg(1), intReg(2), 0x1000));
    v.push_back(makeInst(isa::makeRRR(Op::Mull, intReg(5), intReg(1),
                                      intReg(1)))); // consumes the miss
    v.push_back(makeLoadInst(Op::Ldl, intReg(3), intReg(5), 0x1008));
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(4), intReg(3),
                                      intReg(2))));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    const Cycle t_ld = run.eventCycle(2, TimelineEvent::MasterIssued);
    const Cycle t_add = run.eventCycle(3, TimelineEvent::MasterIssued);
    EXPECT_EQ(t_add, t_ld + 2); // 1-cycle access + load-delay slot
}

TEST(SingleCluster, NonPipelinedDividerSerializes)
{
    std::vector<exec::DynInst> v;
    // 5 independent 8-cycle divides on a machine with 4 dividers.
    for (int i = 0; i < 5; ++i)
        v.push_back(makeInst(isa::makeRRR(
            Op::DivF, fpReg(1 + static_cast<unsigned>(i)), fpReg(20),
            fpReg(21))));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    const Cycle t0 = run.eventCycle(0, TimelineEvent::MasterIssued);
    unsigned first_wave = 0;
    for (InstSeq s = 0; s < 5; ++s)
        first_wave += run.eventCycle(s, TimelineEvent::MasterIssued) == t0;
    EXPECT_EQ(first_wave, 4u); // fpDiv issue cap = #dividers = 4
    EXPECT_EQ(run.eventCycle(4, TimelineEvent::MasterIssued), t0 + 8);
}

TEST(SingleCluster, RetireWidthEightAndInOrder)
{
    std::vector<exec::DynInst> v;
    for (int i = 0; i < 16; ++i)
        v.push_back(makeInst(isa::makeRRR(
            Op::Add, intReg(1 + static_cast<unsigned>(i % 8)), intReg(20),
            intReg(21))));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    std::map<Cycle, unsigned> retired_per_cycle;
    Cycle prev = 0;
    for (InstSeq s = 0; s < 16; ++s) {
        const Cycle t = run.eventCycle(s, TimelineEvent::Retired);
        ASSERT_NE(t, kNoCycle);
        EXPECT_GE(t, prev); // program order
        prev = t;
        ++retired_per_cycle[t];
    }
    for (const auto &[cycle, n] : retired_per_cycle)
        EXPECT_LE(n, 8u);
}

TEST(SingleCluster, StoresRetireWithoutRegisterResult)
{
    std::vector<exec::DynInst> v;
    exec::DynInst st;
    st.mi = isa::makeStore(Op::Stl, intReg(1), intReg(2), 0);
    st.effAddr = 0x2000;
    v.push_back(st);
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    EXPECT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("sim.retired"), 1u);
    EXPECT_EQ(run.counter("dcache.accesses"), 1u);
}

TEST(SingleCluster, WritesToZeroRegisterComplete)
{
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(31), intReg(2),
                                      intReg(3))));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    EXPECT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("sim.retired"), 1u);
}

// --- branches --------------------------------------------------------------

TEST(Branches, MispredictStallsFetchUntilResolution)
{
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(1), intReg(2),
                                      intReg(3))));
    exec::DynInst br;
    br.mi = isa::makeBranch(Op::Bne, intReg(1));
    br.taken = true; // cold predictor says not-taken -> mispredict
    br.pc = 0x2000;
    br.nextPc = 0x3000;
    v.push_back(br);
    exec::DynInst tgt =
        makeInst(isa::makeRRR(Op::Add, intReg(4), intReg(2), intReg(3)));
    tgt.pc = 0x3000;
    v.push_back(tgt);
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("bpred.mispredicts"), 1u);
    const Cycle t_br = run.eventCycle(1, TimelineEvent::MasterIssued);
    const Cycle t_tgt = run.eventCycle(2, TimelineEvent::MasterIssued);
    // The target cannot issue until after the branch writes back
    // (resolution at t_br + 3) plus redispatch.
    EXPECT_GE(t_tgt, t_br + 4);
    EXPECT_GT(run.counter("fetch.stall_branch_cycles"), 0u);
}

TEST(Branches, CorrectlyPredictedNotTakenFlowsFreely)
{
    std::vector<exec::DynInst> v;
    exec::DynInst br;
    br.mi = isa::makeBranch(Op::Bne, intReg(2));
    br.taken = false; // cold predictor predicts not-taken: correct
    v.push_back(br);
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(4), intReg(2),
                                      intReg(3))));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    EXPECT_EQ(run.counter("bpred.mispredicts"), 0u);
    const Cycle t_br = run.eventCycle(0, TimelineEvent::MasterIssued);
    const Cycle t_next = run.eventCycle(1, TimelineEvent::MasterIssued);
    EXPECT_EQ(t_next, t_br); // same cycle: independent and fetched together
}

// --- dual-cluster scenarios ---------------------------------------------

TEST(DualCluster, Scenario1SingleDistribution)
{
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(2), intReg(4),
                                      intReg(6))));
    SimRun run(core::ProcessorConfig::dualCluster8(), v);
    EXPECT_EQ(run.counter("dist.single"), 1u);
    EXPECT_EQ(run.counter("dist.dual"), 0u);
    EXPECT_EQ(run.counter("dist.operand_forwards"), 0u);
}

TEST(DualCluster, Scenario2MasterIssuesAfterSlave)
{
    // add r6 <- r2 + r3: r3 lives in cluster 1, the rest in cluster 0.
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(6), intReg(2),
                                      intReg(3))));
    SimRun run(core::ProcessorConfig::dualCluster8(), v);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("dist.dual"), 1u);
    EXPECT_EQ(run.counter("dist.operand_forwards"), 1u);
    const Cycle t_slave =
        run.eventCycle(0, TimelineEvent::SlaveIssued, 1);
    const Cycle t_master =
        run.eventCycle(0, TimelineEvent::MasterIssued, 0);
    ASSERT_NE(t_slave, kNoCycle);
    ASSERT_NE(t_master, kNoCycle);
    // Master can issue as soon as the cycle after the slave (paper).
    EXPECT_EQ(t_master, t_slave + 1);
    EXPECT_NE(run.eventCycle(0, TimelineEvent::OperandWrittenToBuffer, 0),
              kNoCycle);
}

TEST(DualCluster, Scenario3SlaveReceivesResultAfterLatency)
{
    // add r3 <- r2 + r4: sources cluster 0, dest cluster 1.
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(3), intReg(2),
                                      intReg(4))));
    SimRun run(core::ProcessorConfig::dualCluster8(), v);
    EXPECT_EQ(run.counter("dist.result_forwards"), 1u);
    const Cycle t_master =
        run.eventCycle(0, TimelineEvent::MasterIssued, 0);
    const Cycle t_slave = run.eventCycle(0, TimelineEvent::SlaveIssued, 1);
    // One-cycle op: slave issues one cycle after the master (paper).
    EXPECT_EQ(t_slave, t_master + 1);
    EXPECT_NE(run.eventCycle(0, TimelineEvent::RegWritten, 1), kNoCycle);
}

TEST(DualCluster, Scenario3LongLatencyDelaysSlave)
{
    // mull r3 <- r2 * r4 (6 cycles): slave waits for the result.
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Mull, intReg(3), intReg(2),
                                      intReg(4))));
    SimRun run(core::ProcessorConfig::dualCluster8(), v);
    const Cycle t_master =
        run.eventCycle(0, TimelineEvent::MasterIssued, 0);
    const Cycle t_slave = run.eventCycle(0, TimelineEvent::SlaveIssued, 1);
    EXPECT_EQ(t_slave, t_master + 6);
}

TEST(DualCluster, Scenario4GlobalDestWritesBothClusters)
{
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.regMap.setGlobal(intReg(8));
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(8), intReg(2),
                                      intReg(4))));
    SimRun run(cfg, v);
    EXPECT_EQ(run.counter("dist.dual"), 1u);
    EXPECT_NE(run.eventCycle(0, TimelineEvent::RegWritten, 0), kNoCycle);
    EXPECT_NE(run.eventCycle(0, TimelineEvent::RegWritten, 1), kNoCycle);
}

TEST(DualCluster, Scenario5SlaveSuspendsThenWakes)
{
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.regMap.setGlobal(intReg(8));
    // add g8 <- r2 + r3: r2 in cluster 0 (master), r3 forwarded from
    // cluster 1, result replicated to cluster 1.
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(8), intReg(2),
                                      intReg(3))));
    SimRun run(cfg, v);
    ASSERT_TRUE(run.result.completed);
    const Cycle t_slave = run.eventCycle(0, TimelineEvent::SlaveIssued, 1);
    const Cycle t_susp =
        run.eventCycle(0, TimelineEvent::SlaveSuspended, 1);
    const Cycle t_master =
        run.eventCycle(0, TimelineEvent::MasterIssued, 0);
    const Cycle t_wake = run.eventCycle(0, TimelineEvent::SlaveWoke, 1);
    ASSERT_NE(t_wake, kNoCycle);
    EXPECT_EQ(t_susp, t_slave);
    EXPECT_EQ(t_master, t_slave + 1);
    EXPECT_EQ(t_wake, t_master + 1); // 1-cycle add
    EXPECT_EQ(run.counter("issue.wakes"), 1u);
    // Both clusters end up with a written copy of g8.
    EXPECT_NE(run.eventCycle(0, TimelineEvent::RegWritten, 0), kNoCycle);
    EXPECT_NE(run.eventCycle(0, TimelineEvent::RegWritten, 1), kNoCycle);
}

TEST(DualCluster, OperandBufferCapacityThrottles)
{
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.operandBufferEntries = 1;
    // Two independent operand-forward instructions into cluster 0.
    // With one OTB entry the second slave must wait until the first
    // master frees it.
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(6), intReg(2),
                                      intReg(3))));
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(8), intReg(4),
                                      intReg(5))));
    SimRun run(cfg, v);
    const Cycle s1 = run.eventCycle(0, TimelineEvent::SlaveIssued, 1);
    const Cycle m1 = run.eventCycle(0, TimelineEvent::MasterIssued, 0);
    const Cycle s2 = run.eventCycle(1, TimelineEvent::SlaveIssued, 1);
    EXPECT_EQ(m1, s1 + 1);
    // Entry freed at m1, reusable at m1 + 1.
    EXPECT_GE(s2, m1 + 1);

    // Control: with the default 8 entries both slaves issue together.
    SimRun wide(core::ProcessorConfig::dualCluster8(),
                {makeInst(isa::makeRRR(Op::Add, intReg(6), intReg(2),
                                       intReg(3))),
                 makeInst(isa::makeRRR(Op::Add, intReg(8), intReg(4),
                                       intReg(5)))});
    EXPECT_EQ(wide.eventCycle(1, TimelineEvent::SlaveIssued, 1),
              wide.eventCycle(0, TimelineEvent::SlaveIssued, 1));
}

TEST(DualCluster, ResultBufferCapacityDelaysMaster)
{
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.resultBufferEntries = 1;
    // Two independent result-forward multiplies into cluster 1. The
    // second master cannot issue until the first slave reads its entry.
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Mull, intReg(3), intReg(2),
                                      intReg(4))));
    v.push_back(makeInst(isa::makeRRR(Op::Mull, intReg(5), intReg(6),
                                      intReg(8))));
    SimRun run(cfg, v);
    const Cycle m1 = run.eventCycle(0, TimelineEvent::MasterIssued, 0);
    const Cycle s1 = run.eventCycle(0, TimelineEvent::SlaveIssued, 1);
    const Cycle m2 = run.eventCycle(1, TimelineEvent::MasterIssued, 0);
    EXPECT_EQ(s1, m1 + 6);
    EXPECT_GE(m2, s1 + 1); // waits for the RTB entry
}

TEST(DualCluster, SlaveCopiesConsumeIssueSlots)
{
    // Four dual-distributed adds: each consumes a slot in both
    // clusters, so cluster 1 (4-wide) saturates with slave reads.
    std::vector<exec::DynInst> v;
    for (unsigned i = 0; i < 5; ++i)
        v.push_back(makeInst(isa::makeRRR(
            Op::Add, intReg(2 + 2 * i > 28 ? 2 : 2 + 2 * i), intReg(2),
            intReg(3))));
    // All five forward r3 from cluster 1: at most 4 slaves issue there
    // per cycle.
    SimRun run(core::ProcessorConfig::dualCluster8(), v);
    std::map<Cycle, unsigned> slaves_per_cycle;
    for (const auto &r : run.timeline.records())
        if (r.event == TimelineEvent::SlaveIssued && r.cluster == 1)
            ++slaves_per_cycle[r.cycle];
    for (const auto &[cycle, n] : slaves_per_cycle)
        EXPECT_LE(n, 4u);
    EXPECT_EQ(run.counter("issue.slave"), 5u);
}

// --- resource stalls ---------------------------------------------------

TEST(Stalls, RetireWindowFullStallsDispatch)
{
    auto cfg = core::ProcessorConfig::singleCluster8();
    cfg.retireWindow = 4;
    std::vector<exec::DynInst> v;
    for (int i = 0; i < 12; ++i)
        v.push_back(makeInst(isa::makeRRR(
            Op::Mull, intReg(1 + static_cast<unsigned>(i % 8)), intReg(20),
            intReg(21))));
    SimRun run(cfg, v);
    EXPECT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("sim.retired"), 12u);
    EXPECT_GT(run.counter("dispatch.stall_rob"), 0u);
}

TEST(Stalls, PhysicalRegisterExhaustionStallsDispatch)
{
    auto cfg = core::ProcessorConfig::singleCluster8();
    cfg.physIntRegs = 34; // 31 initial mappings + 3 spare
    std::vector<exec::DynInst> v;
    for (int i = 0; i < 10; ++i)
        v.push_back(makeInst(isa::makeRRR(
            Op::Mull, intReg(1 + static_cast<unsigned>(i % 8)), intReg(20),
            intReg(21))));
    SimRun run(cfg, v);
    EXPECT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("sim.retired"), 10u);
    EXPECT_GT(run.counter("dispatch.stall_phys"), 0u);
}

TEST(Stalls, DispatchQueueFullStallsDispatch)
{
    auto cfg = core::ProcessorConfig::singleCluster8();
    cfg.dispatchQueueEntries = 2;
    std::vector<exec::DynInst> v;
    // A dependence chain keeps entries waiting in the queue.
    v.push_back(makeInst(isa::makeRRR(Op::Mull, intReg(1), intReg(2),
                                      intReg(3))));
    for (int i = 0; i < 6; ++i)
        v.push_back(makeInst(isa::makeRRR(
            Op::Mull, intReg(4 + static_cast<unsigned>(i % 4)), intReg(1),
            intReg(1))));
    SimRun run(cfg, v);
    EXPECT_TRUE(run.result.completed);
    EXPECT_GT(run.counter("dispatch.stall_dq"), 0u);
}

TEST(Stalls, InstructionCacheMissStallsFetch)
{
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(1), intReg(2),
                                      intReg(3))));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    // The very first fetch misses the cold icache.
    EXPECT_GE(run.counter("icache.misses"), 1u);
    EXPECT_GT(run.counter("fetch.stall_icache_cycles"), 0u);
    const Cycle t0 = run.eventCycle(0, TimelineEvent::MasterIssued);
    EXPECT_GE(t0, 16u); // waits out the fill
}

// --- instruction-replay exceptions ------------------------------------------

TEST(Replay, GenuineDeadlockTriggersPreciseReplay)
{
    // A true transfer-buffer deadlock (paper §2.1): the oldest
    // instruction O needs an operand transfer buffer entry, but both
    // entries are held by slaves of younger instructions whose masters
    // wait for O's result.
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.operandBufferEntries = 2;
    cfg.bufferBlockThreshold = 4;
    cfg.paranoid = true;

    std::vector<exec::DynInst> v;
    // I0: 16-cycle divide producing f3 in cluster 1.
    v.push_back(makeInst(isa::makeRRR(Op::DivD, fpReg(3), fpReg(1),
                                      fpReg(1))));
    // O = I1: needs f3 forwarded from cluster 1 into cluster 0.
    v.push_back(makeInst(isa::makeRRR(Op::AddF, fpReg(4), fpReg(3),
                                      fpReg(2))));
    // I2/I3: their ready slaves grab both OTB entries of cluster 0;
    // their masters wait for O's f4 — the deadlock cycle.
    v.push_back(makeInst(isa::makeRRR(Op::AddF, fpReg(6), fpReg(1),
                                      fpReg(4))));
    v.push_back(makeInst(isa::makeRRR(Op::AddF, fpReg(8), fpReg(5),
                                      fpReg(4))));
    SimRun run(cfg, v);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("sim.retired"), 4u);
    EXPECT_GE(run.counter("replay.exceptions"), 1u);
    EXPECT_GE(run.counter("replay.buffer_blocked"), 1u);
    EXPECT_EQ(run.counter("replay.watchdog"), 0u);
    EXPECT_GE(run.counter("replay.squashed"), 2u);
}

TEST(Replay, SelfResolvingBufferPressureDoesNotReplay)
{
    // Busy-but-draining buffers must NOT provoke replays: younger
    // independent duals hold entries while an older master merely waits
    // on data that is coming anyway.
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.operandBufferEntries = 1;
    cfg.bufferBlockThreshold = 4;
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::DivD, fpReg(2), fpReg(0),
                                      fpReg(0))));
    v.push_back(makeInst(isa::makeRRR(Op::AddF, fpReg(4), fpReg(2),
                                      fpReg(1)))); // waits on the divide
    v.push_back(makeInst(isa::makeRRR(Op::AddF, fpReg(6), fpReg(0),
                                      fpReg(3)))); // independent dual
    SimRun run(cfg, v);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("sim.retired"), 3u);
    EXPECT_EQ(run.counter("replay.exceptions"), 0u);
}

TEST(Replay, SquashedInstructionsRetireExactlyOnce)
{
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.operandBufferEntries = 1;
    cfg.bufferBlockThreshold = 4;
    std::vector<exec::DynInst> v;
    for (int k = 0; k < 10; ++k) {
        v.push_back(makeInst(isa::makeRRR(Op::DivD, fpReg(2), fpReg(0),
                                          fpReg(0))));
        v.push_back(makeInst(isa::makeRRR(Op::AddF, fpReg(4), fpReg(2),
                                          fpReg(1))));
        v.push_back(makeInst(isa::makeRRR(Op::AddF, fpReg(6), fpReg(2),
                                          fpReg(3))));
    }
    SimRun run(cfg, v);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("sim.retired"), 30u);
}

// --- bookkeeping -----------------------------------------------------------

TEST(Stats, DistributionCountsAreExhaustive)
{
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(2), intReg(4),
                                      intReg(6)))); // single
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(6), intReg(2),
                                      intReg(3)))); // dual
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(3), intReg(5),
                                      intReg(7)))); // single (cluster 1)
    SimRun run(core::ProcessorConfig::dualCluster8(), v);
    EXPECT_EQ(run.counter("dist.single") + run.counter("dist.dual"), 3u);
    EXPECT_EQ(run.counter("dist.copies"), 4u);
}

TEST(Stats, IpcFormulaConsistent)
{
    std::vector<exec::DynInst> v;
    for (int i = 0; i < 20; ++i)
        v.push_back(makeInst(isa::makeRRR(
            Op::Add, intReg(1 + static_cast<unsigned>(i % 8)), intReg(20),
            intReg(21))));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    const double ipc = run.stats.formulaAt("sim.ipc");
    EXPECT_NEAR(ipc,
                20.0 / static_cast<double>(run.result.cycles), 1e-9);
}

TEST(Determinism, IdenticalRunsIdenticalCycles)
{
    auto make = [] {
        std::vector<exec::DynInst> v;
        for (int i = 0; i < 50; ++i)
            v.push_back(makeInst(isa::makeRRR(
                Op::Add, intReg(1 + static_cast<unsigned>(i % 13)),
                intReg(2 + static_cast<unsigned>(i % 7)),
                intReg(3 + static_cast<unsigned>(i % 5)))));
        return v;
    };
    SimRun a(core::ProcessorConfig::dualCluster8(), make());
    SimRun b(core::ProcessorConfig::dualCluster8(), make());
    EXPECT_EQ(a.result.cycles, b.result.cycles);
}



// --- memory dependences (store-to-load ordering/forwarding) --------------

TEST(MemoryDependence, LoadWaitsForOlderStoreToSameAddress)
{
    // mull (6 cycles) -> store r1 -> load from the same address: the
    // load must issue after the store, not in parallel.
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Mull, intReg(1), intReg(2),
                                      intReg(3))));
    exec::DynInst st;
    st.mi = isa::makeStore(Op::Stl, intReg(1), intReg(4), 0);
    st.effAddr = 0x9000;
    v.push_back(st);
    v.push_back(makeLoadInst(Op::Ldl, intReg(5), intReg(4), 0x9000));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    ASSERT_TRUE(run.result.completed);
    const Cycle t_store = run.eventCycle(1, TimelineEvent::MasterIssued);
    const Cycle t_load = run.eventCycle(2, TimelineEvent::MasterIssued);
    EXPECT_GT(t_load, t_store); // ordered
    EXPECT_EQ(run.counter("mem.loads_forwarded"), 1u);
}

TEST(MemoryDependence, IndependentAddressesDoNotOrder)
{
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Mull, intReg(1), intReg(2),
                                      intReg(3))));
    exec::DynInst st;
    st.mi = isa::makeStore(Op::Stl, intReg(1), intReg(4), 0);
    st.effAddr = 0x9000;
    v.push_back(st);
    v.push_back(makeLoadInst(Op::Ldl, intReg(5), intReg(4), 0xa000));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    const Cycle t_store = run.eventCycle(1, TimelineEvent::MasterIssued);
    const Cycle t_load = run.eventCycle(2, TimelineEvent::MasterIssued);
    EXPECT_LT(t_load, t_store); // the load need not wait for the mull
    EXPECT_EQ(run.counter("mem.loads_forwarded"), 0u);
}

TEST(MemoryDependence, ForwardedLoadBypassesTheMissLatency)
{
    // Store misses (starts a 16-cycle fill); the dependent load's data
    // forwards at hit latency instead of waiting for the fill.
    std::vector<exec::DynInst> v;
    exec::DynInst st;
    st.mi = isa::makeStore(Op::Stl, intReg(2), intReg(4), 0);
    st.effAddr = 0xb000;
    v.push_back(st);
    v.push_back(makeLoadInst(Op::Ldl, intReg(5), intReg(4), 0xb000));
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(6), intReg(5),
                                      intReg(2))));
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    const Cycle t_load = run.eventCycle(1, TimelineEvent::MasterIssued);
    const Cycle t_add = run.eventCycle(2, TimelineEvent::MasterIssued);
    EXPECT_EQ(t_add, t_load + 2); // hit-latency forwarding
}

TEST(MemoryDependence, SpilledLoopCarriedChainStaysSerial)
{
    // The regression behind this model: a value "spilled" to memory
    // (store then reload of the same slot each iteration) must keep
    // its loop-carried chain serial through memory.
    std::vector<exec::DynInst> v;
    const Addr slot = 0xc000;
    const unsigned iters = 10;
    for (unsigned k = 0; k < iters; ++k) {
        // f2 = f2 / f1 (16 cycles); spill f2; reload f2.
        exec::DynInst div;
        div.mi = isa::makeRRR(Op::DivD, fpReg(2), fpReg(2), fpReg(0));
        div.pc = 0x1000;
        v.push_back(div);
        exec::DynInst st;
        st.mi = isa::makeStore(Op::Stt, fpReg(2), intReg(4), 0);
        st.effAddr = slot;
        st.pc = 0x1004;
        v.push_back(st);
        exec::DynInst ld;
        ld.mi = isa::makeLoad(Op::Ldt, fpReg(2), intReg(4), 0);
        ld.effAddr = slot;
        ld.pc = 0x1008;
        v.push_back(ld);
    }
    SimRun run(core::ProcessorConfig::singleCluster8(), v);
    ASSERT_TRUE(run.result.completed);
    // Chain bound: ~16 cycles per divide plus the spill round trips.
    EXPECT_GE(run.result.cycles, 16u * iters);
}



// --- replay ordering regression ------------------------------------------

TEST(Replay, ReplaysNeverBreakDependenceChains)
{
    // Regression for a replay-order bug: squashed instructions must be
    // re-dispatched oldest-first, or consumers resolve their reads
    // against pre-squash rename state and issue before their producers.
    // A serial cross-cluster divide chain under heavy replay pressure
    // can never beat its latency bound.
    std::vector<exec::DynInst> v;
    const unsigned links = 24;
    for (unsigned i = 0; i < links; ++i) {
        exec::DynInst di;
        di.mi = isa::makeRRR(Op::DivD, fpReg(2), fpReg(2), fpReg(1));
        di.pc = 0x1000 + 4 * (i % 8);
        v.push_back(di);
        // Independent dual-distributed filler that grabs OTB entries.
        exec::DynInst f;
        f.mi = isa::makeRRR(Op::AddF, fpReg(4 + 2 * (i % 4)), fpReg(3),
                            fpReg(6));
        f.pc = 0x1000 + 4 * ((i + 4) % 8);
        v.push_back(f);
    }
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.operandBufferEntries = 1;
    cfg.bufferBlockThreshold = 4;
    cfg.paranoid = true; // rename/ROB-order invariants every cycle
    SimRun run(cfg, v);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("sim.retired"), 2u * links);
    EXPECT_GE(run.result.cycles, 16u * links);
}

TEST(Replay, ParanoidInvariantsHoldUnderReplayStress)
{
    std::vector<exec::DynInst> v;
    for (int k = 0; k < 12; ++k) {
        exec::DynInst d;
        d.mi = isa::makeRRR(Op::DivD, fpReg(2), fpReg(0), fpReg(0));
        d.pc = 0x1000 + 4 * (k % 8);
        v.push_back(d);
        exec::DynInst a;
        a.mi = isa::makeRRR(Op::AddF, fpReg(4), fpReg(2), fpReg(1));
        a.pc = 0x1000 + 4 * ((k + 2) % 8);
        v.push_back(a);
        exec::DynInst b;
        b.mi = isa::makeRRR(Op::AddF, fpReg(6), fpReg(2), fpReg(3));
        b.pc = 0x1000 + 4 * ((k + 4) % 8);
        v.push_back(b);
    }
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.operandBufferEntries = 1;
    cfg.bufferBlockThreshold = 4;
    cfg.paranoid = true;
    SimRun run(cfg, v);
    EXPECT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("sim.retired"), 36u);
}



// --- multi-cluster generalization (paper §6) ------------------------------

class ClusterCount : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ClusterCount, AllLocalRegistersRouteToTheirHome)
{
    const unsigned n = GetParam();
    auto cfg = core::ProcessorConfig::multiCluster8(n);
    std::vector<exec::DynInst> v;
    // One single-distributed add per cluster (operands share a home).
    for (unsigned c = 0; c < n; ++c)
        v.push_back(makeInst(
            isa::makeRRR(Op::Add, intReg(c), intReg(c + n), intReg(c))));
    SimRun run(cfg, v);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("dist.single"), n);
    EXPECT_EQ(run.counter("dist.dual"), 0u);
    for (unsigned c = 0; c < n; ++c)
        EXPECT_EQ(run.eventCycle(c, TimelineEvent::MasterIssued, c) !=
                      kNoCycle,
                  true)
            << "cluster " << c;
}

TEST_P(ClusterCount, CrossClusterOperandsForward)
{
    const unsigned n = GetParam();
    if (n < 2)
        GTEST_SKIP();
    auto cfg = core::ProcessorConfig::multiCluster8(n);
    std::vector<exec::DynInst> v;
    // dest and src1 in cluster 0; src2 in cluster 1.
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(0), intReg(n),
                                      intReg(1))));
    SimRun run(cfg, v);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("dist.dual"), 1u);
    EXPECT_EQ(run.counter("dist.operand_forwards"), 1u);
    const Cycle slave = run.eventCycle(0, TimelineEvent::SlaveIssued, 1);
    const Cycle master = run.eventCycle(0, TimelineEvent::MasterIssued, 0);
    EXPECT_EQ(master, slave + 1);
}

TEST_P(ClusterCount, GlobalDestinationReplicatesEverywhere)
{
    const unsigned n = GetParam();
    auto cfg = core::ProcessorConfig::multiCluster8(n);
    cfg.regMap.setGlobal(intReg(8 % (n * 2) == 0 ? 8 : 8)); // r8
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(8), intReg(0),
                                      intReg(0))));
    SimRun run(cfg, v);
    ASSERT_TRUE(run.result.completed);
    // Every cluster writes its own copy of r8.
    for (unsigned c = 0; c < n; ++c)
        EXPECT_NE(run.eventCycle(0, TimelineEvent::RegWritten, c),
                  kNoCycle)
            << "cluster " << c;
    EXPECT_EQ(run.counter("dist.copies"), n);
}

TEST_P(ClusterCount, ThreeWayInstructionSpansThreeClusters)
{
    const unsigned n = GetParam();
    if (n < 4)
        GTEST_SKIP();
    auto cfg = core::ProcessorConfig::multiCluster8(n);
    // srcs in clusters 1 and 2, dest in cluster 3: master + 2 slaves.
    std::vector<exec::DynInst> v;
    v.push_back(makeInst(isa::makeRRR(Op::Add, intReg(3), intReg(1),
                                      intReg(2))));
    SimRun run(cfg, v);
    ASSERT_TRUE(run.result.completed);
    EXPECT_EQ(run.counter("dist.copies"), 3u);
    EXPECT_EQ(run.counter("dist.operand_forwards"), 1u);
    EXPECT_EQ(run.counter("dist.result_forwards"), 1u);
    EXPECT_EQ(run.counter("sim.retired"), 1u);
}

INSTANTIATE_TEST_SUITE_P(OneToFour, ClusterCount,
                         ::testing::Values(1u, 2u, 4u));



// --- queue discipline (window vs reservation stations) --------------------

TEST(QueueDiscipline, WindowModeHoldsEntriesUntilRetire)
{
    // A long divide followed by independent adds: in window mode the
    // issued-but-unretired instructions keep their entries, so a tiny
    // queue throttles dispatch; in reservation-station mode it drains
    // at issue.
    auto make = [] {
        std::vector<exec::DynInst> v;
        v.push_back(makeInst(isa::makeRRR(Op::DivD, fpReg(2), fpReg(0),
                                          fpReg(0))));
        for (int i = 0; i < 12; ++i) {
            auto di = makeInst(isa::makeRRR(
                Op::Add, intReg(2 + 2 * (i % 8) > 28 ? 2 : 2 + 2 * (i % 8)),
                intReg(20), intReg(22)));
            di.pc = 0x1000 + 4 * (i % 8);
            v.push_back(di);
        }
        return v;
    };
    auto cfgw = core::ProcessorConfig::singleCluster8();
    cfgw.dispatchQueueEntries = 4;
    cfgw.holdQueueUntilRetire = true;
    SimRun window(cfgw, make());

    auto cfgr = cfgw;
    cfgr.holdQueueUntilRetire = false;
    SimRun rs(cfgr, make());

    ASSERT_TRUE(window.result.completed);
    ASSERT_TRUE(rs.result.completed);
    // The divide blocks retirement; window mode cannot run ahead.
    EXPECT_GT(window.result.cycles, rs.result.cycles);
    EXPECT_GT(window.counter("dispatch.stall_dq"),
              rs.counter("dispatch.stall_dq"));
}

TEST(QueueDiscipline, BothModesRetireEverything)
{
    for (bool hold : {false, true}) {
        std::vector<exec::DynInst> v;
        for (int i = 0; i < 40; ++i)
            v.push_back(makeInst(isa::makeRRR(
                Op::Mull, intReg(2 + 2 * (i % 8)), intReg(20),
                intReg(22))));
        auto cfg = core::ProcessorConfig::dualCluster8();
        cfg.dispatchQueueEntries = 6;
        cfg.holdQueueUntilRetire = hold;
        cfg.paranoid = true;
        SimRun run(cfg, v);
        EXPECT_TRUE(run.result.completed) << "hold=" << hold;
        EXPECT_EQ(run.counter("sim.retired"), 40u) << "hold=" << hold;
    }
}

TEST(Timeline, ForInstSeparatesInterleavedInstructions)
{
    // Records arrive interleaved across sequence numbers and clusters,
    // the way a real dual-distributed run produces them; forInst must
    // return exactly one instruction's records, in time order.
    core::TimelineRecorder rec;
    rec.record(1, 0, 0, TimelineEvent::Dispatched);
    rec.record(1, 1, 1, TimelineEvent::Dispatched);
    rec.record(2, 1, 1, TimelineEvent::MasterIssued);
    rec.record(3, 0, 0, TimelineEvent::MasterIssued);
    rec.record(3, 0, 1, TimelineEvent::SlaveIssued);
    rec.record(5, 1, 1, TimelineEvent::Retired);
    rec.record(6, 0, 0, TimelineEvent::Retired);

    const auto inst0 = rec.forInst(0);
    ASSERT_EQ(inst0.size(), 4u);
    for (const auto &r : inst0)
        EXPECT_EQ(r.seq, 0u);
    for (std::size_t i = 1; i < inst0.size(); ++i)
        EXPECT_GE(inst0[i].cycle, inst0[i - 1].cycle);
    EXPECT_EQ(inst0.front().event, TimelineEvent::Dispatched);
    EXPECT_EQ(inst0.back().event, TimelineEvent::Retired);
    // Both copies' cycle-3 events survive, master and slave clusters.
    EXPECT_EQ(inst0[1].cycle, 3u);
    EXPECT_EQ(inst0[2].cycle, 3u);
    EXPECT_NE(inst0[1].cluster, inst0[2].cluster);

    const auto inst1 = rec.forInst(1);
    ASSERT_EQ(inst1.size(), 3u);
    for (const auto &r : inst1)
        EXPECT_EQ(r.seq, 1u);

    EXPECT_TRUE(rec.forInst(99).empty());
    rec.clear();
    EXPECT_TRUE(rec.forInst(0).empty());
}

TEST(Timeline, ForInstMatchesLinearScanOnARealRun)
{
    // Long dependent chain on the dual machine; the indexed forInst
    // must agree with a brute-force scan of the raw record stream.
    std::vector<exec::DynInst> v;
    for (int i = 0; i < 30; ++i)
        v.push_back(makeInst(
            isa::makeRRR(Op::Add, intReg(2 + 2 * ((i + 1) % 12)),
                         intReg(2 + 2 * (i % 12)), intReg(20))));
    SimRun run(core::ProcessorConfig::dualCluster8(), v);
    ASSERT_TRUE(run.result.completed);
    for (InstSeq seq = 0; seq < 30; ++seq) {
        const auto indexed = run.timeline.forInst(seq);
        std::vector<core::TimelineRecord> scanned;
        for (const auto &r : run.timeline.records())
            if (r.seq == seq)
                scanned.push_back(r);
        ASSERT_EQ(indexed.size(), scanned.size()) << "seq " << seq;
        EXPECT_FALSE(indexed.empty()) << "seq " << seq;
        for (std::size_t i = 1; i < indexed.size(); ++i)
            EXPECT_GE(indexed[i].cycle, indexed[i - 1].cycle);
        // Same multiset of (cycle, cluster, event) triples.
        auto key = [](const core::TimelineRecord &r) {
            return std::tuple(r.cycle, r.cluster, r.event);
        };
        std::vector<std::tuple<Cycle, unsigned, TimelineEvent>> a, b;
        for (const auto &r : indexed)
            a.push_back(key(r));
        for (const auto &r : scanned)
            b.push_back(key(r));
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        EXPECT_EQ(a, b) << "seq " << seq;
    }
}

// --- applyRemap edge cases ----------------------------------------------

/** One instruction carrying a remap to `schedule[0]`, reading r3+r5. */
std::vector<exec::DynInst>
remapCarrier()
{
    exec::DynInst di;
    di.mi = isa::makeRRR(Op::Add, intReg(2), intReg(3), intReg(5));
    di.remapIndex = 0;
    return {di};
}

/** Map with r3 and r5 re-homed into cluster 0 (2 moved registers). */
isa::RegisterMap
remapTargetMap()
{
    isa::RegisterMap map(2);
    map.setHome(intReg(3), 0);
    map.setHome(intReg(5), 0);
    return map;
}

TEST(RemapEdge, PhysicalRegisterExhaustionIsFatal)
{
    // Every integer register made global: each cluster must map all 31
    // non-zero arch regs, which cannot fit in 20 physical registers.
    isa::RegisterMap all_global(2);
    for (unsigned a = 1; a < isa::kNumArchRegs; ++a)
        all_global.setGlobal(intReg(a));
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.physIntRegs = 20; // holds the even/odd locals, not 31 globals
    cfg.mapSchedule = {all_global};
    EXPECT_EXIT(SimRun(cfg, remapCarrier()),
                testing::ExitedWithCode(1),
                "remap exhausts the physical registers");
}

TEST(RemapEdge, StillMappedRegistersSkipTheTransferLatency)
{
    // After the remap, r2 never changed homes (cluster 0 under both
    // maps): it is conservatively re-timed to `now`, NOT to the end of
    // the transfer window, so its reader must issue strictly earlier
    // than a reader of the moved r3/r5.
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.mapSchedule = {remapTargetMap()};
    cfg.remapTransferRate = 1; // 2 moved regs => 2-cycle transfer
    std::vector<exec::DynInst> still;
    still.push_back(makeInst(
        isa::makeRRR(Op::Add, intReg(4), intReg(2), intReg(2))));
    still.front().remapIndex = 0;
    SimRun still_run(cfg, still);
    SimRun moved_run(cfg, remapCarrier());
    const auto still_issue =
        still_run.eventCycle(0, TimelineEvent::MasterIssued);
    const auto moved_issue =
        moved_run.eventCycle(0, TimelineEvent::MasterIssued);
    ASSERT_NE(still_issue, kNoCycle);
    ASSERT_NE(moved_issue, kNoCycle);
    EXPECT_LT(still_issue, moved_issue);
}

TEST(RemapEdge, TransferRateRoundsUp)
{
    // 2 moved registers: rates 2 and 3 both take ceil(2/rate) = 1
    // cycle (a floor would give 1 vs 0), and rate 1 takes exactly one
    // cycle more.
    auto issueAtRate = [](unsigned rate) {
        auto cfg = core::ProcessorConfig::dualCluster8();
        cfg.mapSchedule = {remapTargetMap()};
        cfg.remapTransferRate = rate;
        SimRun run(cfg, remapCarrier());
        return run.eventCycle(0, TimelineEvent::MasterIssued);
    };
    const auto at1 = issueAtRate(1);
    const auto at2 = issueAtRate(2);
    const auto at3 = issueAtRate(3);
    ASSERT_NE(at1, kNoCycle);
    EXPECT_EQ(at2, at3);
    EXPECT_EQ(at1, at2 + 1);
}

} // namespace
