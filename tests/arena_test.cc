/**
 * @file
 * Properties of the SoA machine-state substrate and the devirtualized
 * memory fast path.
 *
 *  - SlabPool generational handles: under arbitrary alloc/free churn,
 *    a handle that outlives its allocation must go stale — it must
 *    never resolve to a *different* live object, even after its slot
 *    is reused many times (the property the core's dispatch-queue and
 *    memory-dependence handles rely on, ISSUE 8).
 *
 *  - Cache::accessFast vs the virtual MemoryLevel chain: running the
 *    six Table-2 workloads and the pointer chase with the L1 fast
 *    path disabled must reproduce the default run bit-identically
 *    (cycles, retired, full timeline, statistics JSON) — the fast
 *    path is an inlined replica of the hit path, never a semantic
 *    fork.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>
#include <vector>

#include "compiler/pipeline.hh"
#include "core/processor.hh"
#include "core/timeline.hh"
#include "exec/trace.hh"
#include "support/arena.hh"
#include "support/random.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

// --- SlabPool generational-aliasing property --------------------------

struct Payload
{
    std::uint64_t token = 0;
};

TEST(SlabPool, StaleHandlesNeverAliasLiveObjects)
{
    constexpr std::size_t kCapacity = 64;
    SlabPool<Payload> pool(kCapacity);
    Rng rng(0xA11A5ULL);

    // Live handles with the token written at allocation; retired
    // handles that must stay stale forever after.
    std::vector<std::pair<SlabPool<Payload>::Handle, std::uint64_t>> live;
    std::vector<SlabPool<Payload>::Handle> stale;
    std::uint64_t next_token = 1;

    for (int step = 0; step < 200'000; ++step) {
        const bool can_alloc = !pool.full();
        const bool do_alloc =
            can_alloc && (live.empty() || rng.nextBool(0.55));
        if (do_alloc) {
            const auto h = pool.alloc();
            pool.get(h).token = next_token;
            live.emplace_back(h, next_token);
            ++next_token;
        } else if (!live.empty()) {
            const std::size_t i = rng.nextBelow(live.size());
            pool.free(live[i].first);
            stale.push_back(live[i].first);
            live[i] = live.back();
            live.pop_back();
        }

        // Every live handle resolves to exactly its own object.
        for (const auto &[h, token] : live) {
            ASSERT_TRUE(pool.isLive(h));
            const Payload *p = pool.tryGet(h);
            ASSERT_NE(p, nullptr);
            ASSERT_EQ(p->token, token);
        }
        // No stale handle may resolve, no matter how often its slot
        // has been reused since (the generation check must hold).
        for (const auto &h : stale) {
            ASSERT_FALSE(pool.isLive(h));
            ASSERT_EQ(pool.tryGet(h), nullptr);
        }
        // Bound the stale set so the churn keeps recycling slots.
        if (stale.size() > 512)
            stale.erase(stale.begin(), stale.begin() + 256);
    }
    EXPECT_EQ(pool.size(), live.size());
}

TEST(SlabPool, GenerationDistinguishesReusedSlot)
{
    SlabPool<Payload> pool(4);
    const auto a = pool.alloc();
    pool.get(a).token = 1;
    pool.free(a);
    // LIFO free list: the next allocation reuses slot a.idx.
    const auto b = pool.alloc();
    pool.get(b).token = 2;
    EXPECT_EQ(a.idx, b.idx);
    EXPECT_NE(a.gen, b.gen);
    EXPECT_FALSE(pool.isLive(a));
    EXPECT_EQ(pool.tryGet(a), nullptr);
    ASSERT_TRUE(pool.isLive(b));
    EXPECT_EQ(pool.tryGet(b)->token, 2u);
}

TEST(SlabPool, ClearRestartsAllGenerations)
{
    SlabPool<Payload> pool(8);
    std::vector<SlabPool<Payload>::Handle> old;
    for (int i = 0; i < 8; ++i)
        old.push_back(pool.alloc());
    pool.clear();
    EXPECT_EQ(pool.size(), 0u);
    for (const auto &h : old)
        EXPECT_FALSE(pool.isLive(h));
    const auto fresh = pool.alloc();
    EXPECT_TRUE(pool.isLive(fresh));
}

// --- devirtualized fast path vs the virtual chain ---------------------

struct FastPathObserved
{
    Cycle cycles = 0;
    std::uint64_t retired = 0;
    std::string statsJson;
    core::TimelineRecorder timeline;
};

/**
 * Run one workload on the dual-cluster Event-engine machine twice —
 * L1 fast path on (default) and forced through the virtual access
 * chain — stepping both in lockstep, and require identical retire
 * progress per cycle plus identical timelines and statistics.
 */
void
expectFastPathExact(const std::string &name,
                    const prog::Program &program)
{
    constexpr std::uint64_t kSeed = 42;
    constexpr std::uint64_t kMaxInsts = 30'000;

    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Local;
    copt.numClusters = 2;
    const auto out = compiler::compile(program, copt);
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.regMap = out.hardwareMap(2);
    cfg.issueEngine = core::ProcessorConfig::IssueEngine::Event;

    struct Leg
    {
        Leg(const prog::MachProgram &binary,
            const core::ProcessorConfig &cfg, bool fast_path)
            : stats(binary.name), trace(binary, kSeed, kMaxInsts),
              cpu(cfg, trace, stats)
        {
            cpu.attachTimeline(&obs.timeline);
            cpu.memorySystem().icache().setFastPath(fast_path);
            cpu.memorySystem().dcache().setFastPath(fast_path);
        }
        StatGroup stats;
        exec::ProgramTrace trace;
        core::Processor cpu;
        FastPathObserved obs;
    };

    Leg fast(out.binary, cfg, true);
    Leg slow(out.binary, cfg, false);
    for (Cycle cycle = 0; cycle < 10'000'000; ++cycle) {
        const bool fast_live = fast.cpu.step();
        const bool slow_live = slow.cpu.step();
        ASSERT_EQ(fast_live, slow_live)
            << name << ": pipeline-empty diverged at cycle " << cycle;
        ASSERT_EQ(fast.cpu.retiredInstructions(),
                  slow.cpu.retiredInstructions())
            << name << ": retired count diverged at cycle " << cycle;
        if (!fast_live)
            break;
    }
    EXPECT_GT(fast.cpu.retiredInstructions(), 0u);
    EXPECT_EQ(fast.cpu.now(), slow.cpu.now());

    const auto &fr = fast.obs.timeline.records();
    const auto &sr = slow.obs.timeline.records();
    ASSERT_EQ(fr.size(), sr.size()) << name << ": timeline sizes differ";
    for (std::size_t i = 0; i < fr.size(); ++i)
        ASSERT_TRUE(fr[i].cycle == sr[i].cycle &&
                    fr[i].seq == sr[i].seq &&
                    fr[i].cluster == sr[i].cluster &&
                    fr[i].event == sr[i].event)
            << name << ": timeline record " << i << " differs";

    std::ostringstream fj, sj;
    fast.stats.dumpJson(fj);
    slow.stats.dumpJson(sj);
    EXPECT_EQ(fj.str(), sj.str())
        << name << ": statistics diverge between the devirtualized "
                   "fast path and the virtual chain";
}

class FastPathWorkload : public testing::TestWithParam<const char *>
{
};

TEST_P(FastPathWorkload, FastPathIsBitIdenticalToVirtualChain)
{
    expectFastPathExact(GetParam(),
                        workloads::benchmarkByName(GetParam()).make(
                            workloads::WorkloadParams{0.2}));
}

INSTANTIATE_TEST_SUITE_P(Table2, FastPathWorkload,
                         testing::Values("compress", "doduc", "gcc1",
                                         "ora", "su2cor", "tomcatv"));

TEST(FastPath, PointerChaseIsBitIdenticalToVirtualChain)
{
    // The chase misses constantly, so nearly every access takes the
    // miss fall-through from accessFast into the virtual chain while
    // fills are in flight — the merge/break interleaving case.
    expectFastPathExact("chase", workloads::makePointerChase(
                                     workloads::WorkloadParams{0.2}));
}

} // namespace
