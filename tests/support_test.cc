/**
 * @file
 * Unit tests for the support library: RNG, saturating counters,
 * circular queues, bitsets, statistics, and the table formatter.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "obs/json.hh"
#include "support/bitset.hh"
#include "support/circular_queue.hh"
#include "support/random.hh"
#include "support/sat_counter.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace
{

using namespace mca;

// --- Rng ---------------------------------------------------------------

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng rng(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= (v == -3);
        hit_hi |= (v == 3);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliApproximatesProbability)
{
    Rng rng(13);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(Rng, GeometricRespectsCap)
{
    Rng rng(17);
    for (int i = 0; i < 200; ++i)
        EXPECT_LE(rng.nextGeometric(0.99, 5), 5u);
}

TEST(Rng, ForkDecorrelates)
{
    Rng a(42);
    Rng child = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == child.next()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

// --- SatCounter ---------------------------------------------------------

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, PredictTakenThreshold)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.predictTaken()); // 0
    c.increment();
    EXPECT_FALSE(c.predictTaken()); // 1 (weakly not-taken)
    c.increment();
    EXPECT_TRUE(c.predictTaken()); // 2 (weakly taken)
    c.increment();
    EXPECT_TRUE(c.predictTaken()); // 3
}

TEST(SatCounter, TrainMovesTowardOutcome)
{
    SatCounter c(2, 1);
    c.train(true);
    EXPECT_EQ(c.value(), 2u);
    c.train(false);
    c.train(false);
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, WiderCounters)
{
    SatCounter c(3, 0);
    EXPECT_EQ(c.saturation(), 7u);
    for (int i = 0; i < 4; ++i)
        c.increment();
    EXPECT_TRUE(c.predictTaken());
}

// --- CircularQueue --------------------------------------------------------

TEST(CircularQueue, FifoOrder)
{
    CircularQueue<int> q(4);
    q.pushBack(1);
    q.pushBack(2);
    q.pushBack(3);
    EXPECT_EQ(q.popFront(), 1);
    EXPECT_EQ(q.popFront(), 2);
    EXPECT_EQ(q.popFront(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(CircularQueue, WrapsAround)
{
    CircularQueue<int> q(3);
    for (int round = 0; round < 10; ++round) {
        q.pushBack(round);
        EXPECT_EQ(q.popFront(), round);
    }
}

TEST(CircularQueue, FullAndFreeSlots)
{
    CircularQueue<int> q(2);
    EXPECT_EQ(q.freeSlots(), 2u);
    q.pushBack(1);
    q.pushBack(2);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.freeSlots(), 0u);
}

TEST(CircularQueue, IndexedAccess)
{
    CircularQueue<int> q(4);
    q.pushBack(10);
    q.pushBack(20);
    q.pushBack(30);
    EXPECT_EQ(q.at(0), 10);
    EXPECT_EQ(q.at(2), 30);
    EXPECT_EQ(q.front(), 10);
    EXPECT_EQ(q.back(), 30);
}

TEST(CircularQueue, TruncateDropsNewest)
{
    CircularQueue<int> q(4);
    q.pushBack(1);
    q.pushBack(2);
    q.pushBack(3);
    q.truncate(2);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.front(), 1);
}

TEST(CircularQueueDeath, PopEmptyPanics)
{
    CircularQueue<int> q(2);
    EXPECT_DEATH(q.popFront(), "pop from empty");
}

TEST(CircularQueueDeath, PushFullPanics)
{
    CircularQueue<int> q(1);
    q.pushBack(1);
    EXPECT_DEATH(q.pushBack(2), "push to full");
}

// --- BitSet ---------------------------------------------------------------

TEST(BitSet, SetTestReset)
{
    BitSet b(130);
    b.set(0);
    b.set(64);
    b.set(129);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(64));
    EXPECT_TRUE(b.test(129));
    EXPECT_FALSE(b.test(1));
    b.reset(64);
    EXPECT_FALSE(b.test(64));
    EXPECT_EQ(b.count(), 2u);
}

TEST(BitSet, UnionReportsChange)
{
    BitSet a(70), b(70);
    b.set(69);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_FALSE(a.unionWith(b)); // no further change
    EXPECT_TRUE(a.test(69));
}

TEST(BitSet, Subtract)
{
    BitSet a(10), b(10);
    a.set(1);
    a.set(2);
    b.set(2);
    a.subtract(b);
    EXPECT_TRUE(a.test(1));
    EXPECT_FALSE(a.test(2));
}

TEST(BitSet, ForEachVisitsInOrder)
{
    BitSet b(200);
    b.set(3);
    b.set(64);
    b.set(199);
    std::vector<std::size_t> seen;
    b.forEach([&](std::size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<std::size_t>{3, 64, 199}));
}

TEST(BitSet, Equality)
{
    BitSet a(50), b(50);
    a.set(7);
    EXPECT_FALSE(a == b);
    b.set(7);
    EXPECT_TRUE(a == b);
}

// --- Stats ------------------------------------------------------------------

TEST(Stats, CountersAccumulate)
{
    StatGroup g("test");
    Counter &c = g.counter("a.b", "desc");
    ++c;
    c += 5;
    EXPECT_EQ(g.counterAt("a.b").value(), 6u);
}

TEST(Stats, CounterIsIdempotentlyCreated)
{
    StatGroup g("test");
    ++g.counter("x");
    ++g.counter("x");
    EXPECT_EQ(g.counterAt("x").value(), 2u);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup g("test");
    Counter &c = g.counter("n");
    g.formula("twice", [&] { return 2.0 * c.value(); });
    c += 4;
    EXPECT_DOUBLE_EQ(g.formulaAt("twice"), 8.0);
}

TEST(Stats, DistributionMoments)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", 4, 8);
    d.sample(0);
    d.sample(4);
    d.sample(8);
    d.sample(100); // overflow bucket
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_EQ(d.max(), 100u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_DOUBLE_EQ(d.mean(), 28.0);
}

TEST(Stats, ResetAllClears)
{
    StatGroup g("test");
    g.counter("n") += 7;
    g.distribution("d", 1, 4).sample(2);
    g.resetAll();
    EXPECT_EQ(g.counterAt("n").value(), 0u);
}

TEST(StatsDeath, MissingCounterPanics)
{
    StatGroup g("test");
    EXPECT_DEATH(g.counterAt("nope"), "no counter");
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatGroup g("grp");
    g.counter("alpha", "first") += 3;
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("alpha"), std::string::npos);
    EXPECT_NE(oss.str().find("3"), std::string::npos);
    EXPECT_NE(oss.str().find("first"), std::string::npos);
}

// --- TextTable ------------------------------------------------------------

TEST(TextTable, FormatsAlignedGrid)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.row({"longer", "22"});
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("| name"), std::string::npos);
    EXPECT_NE(s.find("| longer"), std::string::npos);
}

TEST(TextTable, NumberHelpers)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::signedPercent(6.0), "+6");
    EXPECT_EQ(TextTable::signedPercent(-14.2), "-14");
    EXPECT_EQ(TextTable::signedPercent(-14.2, 1), "-14.2");
}



TEST(Stats, JsonDumpIsWellFormedFlatObject)
{
    StatGroup g("json");
    g.counter("a.count") += 5;
    g.formula("a.ratio", [] { return 0.5; });
    g.distribution("a.dist", 2, 4).sample(3);
    std::ostringstream oss;
    g.dumpJson(oss);
    const std::string s = oss.str();
    EXPECT_EQ(s.front(), '{');
    EXPECT_EQ(s[s.size() - 2], '}');
    EXPECT_NE(s.find("\"a.count\": 5"), std::string::npos);
    EXPECT_NE(s.find("\"a.ratio\": 0.5"), std::string::npos);
    EXPECT_NE(s.find("\"a.dist.samples\": 1"), std::string::npos);
    EXPECT_NE(s.find("\"a.dist.mean\": 3.0"), std::string::npos);
}

TEST(Stats, JsonDumpRoundTripsShortestDoubles)
{
    // std::to_chars shortest round-trip form must survive verbatim —
    // the classic 0.1 + 0.2 value, not a rounded approximation.
    StatGroup g("json");
    g.formula("sum", [] { return 0.1 + 0.2; });
    std::ostringstream oss;
    g.dumpJson(oss);
    EXPECT_NE(oss.str().find("\"sum\": 0.30000000000000004"),
              std::string::npos);
}

TEST(Stats, JsonDumpEscapesAwkwardNames)
{
    StatGroup g("a \"quoted\" group");
    g.counter("weird\"name\\with\nescapes") += 1;
    g.formula("inf", [] { return 1.0 / 0.0; });
    std::ostringstream oss;
    g.dumpJson(oss);
    const std::string s = oss.str();
    std::string error;
    EXPECT_TRUE(obs::isValidJson(s, &error)) << error << "\n" << s;
    EXPECT_NE(s.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(s.find("weird\\\"name\\\\with\\nescapes"),
              std::string::npos);
    EXPECT_NE(s.find("\"inf\": null"), std::string::npos);
}

// --- Distribution percentile / variance --------------------------------

TEST(Stats, DistributionEmptyHasZeroMoments)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", 4, 8);
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_EQ(d.percentile(0.0), 0u);
    EXPECT_EQ(d.percentile(0.5), 0u);
    EXPECT_EQ(d.percentile(1.0), 0u);
}

TEST(Stats, DistributionSingleSampleReportsItEverywhere)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", 4, 8);
    d.sample(13);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_EQ(d.percentile(0.0), 13u);
    EXPECT_EQ(d.percentile(0.5), 13u);
    EXPECT_EQ(d.percentile(0.99), 13u);
    EXPECT_EQ(d.percentile(1.0), 13u);
}

TEST(Stats, DistributionVarianceMatchesClosedForm)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", 1, 16);
    for (std::uint64_t v : {2u, 4u, 4u, 4u, 5u, 5u, 7u, 9u})
        d.sample(v);
    // Textbook population set: mean 5, variance 4.
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.variance(), 4.0);
}

TEST(Stats, DistributionPercentileWalksBucketEdges)
{
    StatGroup g("test");
    // Buckets [0,1] [2,3] [4,5] [6,7]; inclusive upper edges 1,3,5,7.
    Distribution &d = g.distribution("lat", 2, 4);
    for (std::uint64_t v = 0; v < 8; ++v)
        d.sample(v); // two samples per bucket
    EXPECT_EQ(d.percentile(0.25), 1u);
    EXPECT_EQ(d.percentile(0.50), 3u);
    EXPECT_EQ(d.percentile(0.75), 5u);
    EXPECT_EQ(d.percentile(1.00), 7u); // the observed max
}

TEST(Stats, DistributionPercentileOverflowBucketReportsMax)
{
    StatGroup g("test");
    Distribution &d = g.distribution("lat", 1, 4);
    d.sample(1);
    d.sample(500); // overflow
    d.sample(900); // overflow, new max
    EXPECT_EQ(d.overflow(), 2u);
    EXPECT_EQ(d.percentile(0.99), 900u);
    EXPECT_EQ(d.percentile(1.0), 900u);
    EXPECT_EQ(d.percentile(0.1), 1u);
}

} // namespace
