/**
 * @file
 * Unit tests for the cache model: hits/misses, LRU replacement,
 * inverted-MSHR merge behaviour, write-back accounting.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "exec/trace.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "support/stats.hh"

namespace
{

using namespace mca;

mem::CacheParams
smallCache()
{
    // 1 KB, 2-way, 32 B blocks -> 16 sets; 16-cycle miss latency.
    return mem::CacheParams{1024, 2, 32, 16, true};
}

struct CacheFixture : ::testing::Test
{
    StatGroup stats{"cache"};
    mem::Cache cache{"d", smallCache(), stats};
};

TEST_F(CacheFixture, FirstAccessMissesThenHits)
{
    const auto m = cache.access(0x1000, false, 0);
    EXPECT_FALSE(m.hit);
    EXPECT_EQ(m.readyAt, 16u);
    const auto h = cache.access(0x1008, false, 20);
    EXPECT_TRUE(h.hit);
    EXPECT_EQ(h.readyAt, 20u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(CacheFixture, MergedMissSharesFill)
{
    const auto m = cache.access(0x1000, false, 0);
    EXPECT_FALSE(m.hit);
    // Second access to the same block before the fill lands merges.
    const auto g = cache.access(0x1010, false, 5);
    EXPECT_FALSE(g.hit);
    EXPECT_TRUE(g.merged);
    EXPECT_EQ(g.readyAt, m.readyAt);
    EXPECT_EQ(cache.mergedMisses(), 1u);
    // After the fill completes it is a plain hit.
    EXPECT_TRUE(cache.access(0x1018, false, 17).hit);
}

TEST_F(CacheFixture, UnlimitedOutstandingMisses)
{
    // The inverted MSHR places no limit on in-flight misses.
    for (int i = 0; i < 64; ++i) {
        const auto r =
            cache.access(0x4000 + static_cast<Addr>(i) * 0x1000, false, 0);
        EXPECT_FALSE(r.hit);
        EXPECT_FALSE(r.merged);
    }
    EXPECT_EQ(cache.misses(), 64u);
}

TEST_F(CacheFixture, LruEvictsLeastRecentlyUsed)
{
    // Three blocks mapping to the same set of a 2-way cache.
    const Addr a = 0x0000, b = 0x0000 + 512, c = 0x0000 + 1024;
    cache.access(a, false, 0);
    cache.access(b, false, 20);
    cache.access(a, false, 40); // touch a: b becomes LRU
    cache.access(c, false, 60); // evicts b
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
    EXPECT_TRUE(cache.probe(c));
}

TEST_F(CacheFixture, DirtyEvictionCountsWriteback)
{
    const Addr a = 0x0000, b = 0x0000 + 512, c = 0x0000 + 1024;
    cache.access(a, true, 0); // dirty
    cache.access(b, false, 20);
    cache.access(c, false, 40); // evicts dirty a
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST_F(CacheFixture, CleanEvictionNoWriteback)
{
    const Addr a = 0x0000, b = 0x0000 + 512, c = 0x0000 + 1024;
    cache.access(a, false, 0);
    cache.access(b, false, 20);
    cache.access(c, false, 40);
    EXPECT_EQ(cache.writebacks(), 0u);
}

TEST_F(CacheFixture, WriteHitSetsDirty)
{
    const Addr a = 0x0000, b = 0x0000 + 512, c = 0x0000 + 1024;
    cache.access(a, false, 0);
    cache.access(a, true, 20); // write hit dirties the line
    cache.access(b, false, 40);
    cache.access(c, false, 60); // evicts a
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST_F(CacheFixture, FlushInvalidatesEverything)
{
    cache.access(0x2000, false, 0);
    cache.flush();
    EXPECT_FALSE(cache.probe(0x2000));
    EXPECT_FALSE(cache.access(0x2000, false, 100).hit);
}

TEST_F(CacheFixture, MissRateArithmetic)
{
    cache.access(0x100, false, 0);
    cache.access(0x100, false, 50);
    cache.access(0x100, false, 60);
    cache.access(0x100, false, 70);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.25);
}

TEST(CacheConfig, PaperConfiguration)
{
    StatGroup stats("c");
    // 64 KB, 2-way, 32 B blocks, 16-cycle memory (paper §4.1).
    mem::Cache cache("l1", mem::CacheParams{}, stats);
    EXPECT_EQ(cache.params().sizeBytes, 64u * 1024);
    EXPECT_EQ(cache.params().assoc, 2u);
    EXPECT_EQ(cache.params().missLatency, 16u);
}

TEST(CacheConfig, NoWriteAllocateSkipsFill)
{
    StatGroup stats("c");
    auto params = smallCache();
    params.writeAllocate = false;
    mem::Cache cache("l1", params, stats);
    cache.access(0x3000, true, 0);
    EXPECT_FALSE(cache.probe(0x3000));
    // A later read still misses.
    EXPECT_FALSE(cache.access(0x3000, false, 100).hit);
}

/** Property: per-address-pattern, hits + misses == accesses. */
class CacheSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheSweep, CountsAreConsistent)
{
    const auto [size_kb, assoc] = GetParam();
    StatGroup stats("c");
    mem::Cache cache("l1",
                     mem::CacheParams{size_kb * 1024, assoc, 32, 16, true},
                     stats);
    Cycle now = 0;
    Addr last = 0;
    for (int i = 0; i < 3000; ++i) {
        Addr a = (static_cast<Addr>(i) * 1664525 + 1013904223) %
                 (128 * 1024);
        // Every fourth access repeats the previous address, so every
        // configuration sees both hits and misses.
        if (i % 4 == 3)
            a = last;
        last = a;
        cache.access(a & ~Addr{7}, (i % 5) == 0, now);
        now += 40;
    }
    EXPECT_EQ(cache.hits() + cache.misses(), cache.accesses());
    EXPECT_EQ(cache.accesses(), 3000u);
    EXPECT_GT(cache.hits(), 0u);
    EXPECT_GT(cache.misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheSweep,
    ::testing::Combine(::testing::Values(1u, 8u, 64u),
                       ::testing::Values(1u, 2u, 4u)));

// --- explicit MSHR (ablation of the paper's inverted MSHR) ---------------

TEST(ExplicitMshr, RejectsWhenFull)
{
    StatGroup stats("c");
    auto params = smallCache();
    params.mshrEntries = 2;
    mem::Cache cache("d", params, stats);
    // Two outstanding misses fill the file.
    EXPECT_FALSE(cache.wouldReject(0x1000, 0));
    cache.access(0x1000, false, 0);
    EXPECT_FALSE(cache.wouldReject(0x2000, 0));
    cache.access(0x2000, false, 0);
    EXPECT_EQ(cache.outstandingFills(0), 2u);
    // A third distinct block must be rejected...
    EXPECT_TRUE(cache.wouldReject(0x3000, 1));
    EXPECT_GE(cache.mshrRejections(), 1u);
    // ...but a merge with an in-flight fill needs no new entry.
    EXPECT_FALSE(cache.wouldReject(0x1008, 1));
    // After the fills land, capacity frees up.
    EXPECT_FALSE(cache.wouldReject(0x3000, 17));
}

TEST(ExplicitMshr, InvertedNeverRejects)
{
    StatGroup stats("c");
    mem::Cache cache("d", smallCache(), stats);
    for (int i = 0; i < 64; ++i) {
        EXPECT_FALSE(cache.wouldReject(0x1000 + 0x1000 * i, 0));
        cache.access(0x1000 + 0x1000 * static_cast<Addr>(i), false, 0);
    }
    EXPECT_EQ(cache.mshrRejections(), 0u);
}

TEST(ExplicitMshr, HitsNeedNoEntry)
{
    StatGroup stats("c");
    auto params = smallCache();
    params.mshrEntries = 1;
    mem::Cache cache("d", params, stats);
    cache.access(0x1000, false, 0);   // outstanding
    // Resident block (after fill) is a hit: never rejected.
    EXPECT_FALSE(cache.wouldReject(0x1000, 20));
    EXPECT_TRUE(cache.access(0x1008, false, 20).hit);
}

TEST(ExplicitMshr, RetryAfterDrainTakesAnEntry)
{
    StatGroup stats("c");
    auto params = smallCache();
    params.mshrEntries = 1;
    mem::Cache cache("d", params, stats);
    cache.access(0x1000, false, 0);
    // The single entry stays occupied until the fill lands at 16; a
    // caller polling a different block is rejected until then.
    EXPECT_TRUE(cache.wouldReject(0x2000, 1));
    EXPECT_TRUE(cache.wouldReject(0x2000, 15));
    EXPECT_FALSE(cache.wouldReject(0x2000, 16));
    const auto retry = cache.access(0x2000, false, 16);
    EXPECT_FALSE(retry.hit);
    EXPECT_EQ(retry.readyAt, 32u);
    // The retried miss re-occupies the drained entry.
    EXPECT_EQ(cache.outstandingFills(16), 1u);
    EXPECT_TRUE(cache.wouldReject(0x3000, 17));
}

// --- hierarchy edge cases (a Cache with a real next level) ---------------

TEST(CacheChain, DirtyEvictionSendsWritebackTraffic)
{
    StatGroup stats("c");
    mem::FixedLatencyMemory memory("mem", 16, 0, stats);
    mem::Cache cache("d", smallCache(), stats, &memory);
    const Addr a = 0x0000, b = 512, c = 1024; // one 2-way set
    cache.access(a, true, 0); // dirty
    cache.access(b, false, 20);
    cache.access(c, false, 40); // evicts dirty a
    EXPECT_EQ(cache.writebacks(), 1u);
    // The victim's data actually travels: one write reaches the
    // backside, alongside the three demand fills.
    EXPECT_EQ(memory.writes(), 1u);
    EXPECT_EQ(memory.reads(), 3u);
}

TEST(CacheChain, CleanEvictionSendsNoWritebackTraffic)
{
    StatGroup stats("c");
    mem::FixedLatencyMemory memory("mem", 16, 0, stats);
    mem::Cache cache("d", smallCache(), stats, &memory);
    cache.access(0, false, 0);
    cache.access(512, false, 20);
    cache.access(1024, false, 40); // evicts clean line
    EXPECT_EQ(memory.writes(), 0u);
}

TEST(CacheChain, MergeReadyAtEqualsPortDelayedFill)
{
    StatGroup stats("c");
    mem::FixedLatencyMemory memory("mem", 16, 0, stats);
    auto params = smallCache();
    params.fillPorts = 1;
    mem::Cache cache("d", params, stats, &memory);
    const auto first = cache.access(0x1000, false, 0);
    EXPECT_EQ(first.readyAt, 16u);
    // Same-cycle second miss contends for the single fill port and is
    // pushed back one cycle.
    const auto second = cache.access(0x2000, false, 0);
    EXPECT_EQ(second.readyAt, 17u);
    // A merge with the delayed fill observes the *delayed* ready cycle,
    // not the nominal latency.
    const auto merged = cache.access(0x2008, false, 5);
    EXPECT_TRUE(merged.merged);
    EXPECT_EQ(merged.readyAt, second.readyAt);
}

TEST(ExplicitMshr, CoreStallsLoadsOnFullMshr)
{
    // Two independent far-apart loads with a 1-entry MSHR: the second
    // load's issue waits for the first fill.
    std::vector<exec::DynInst> v;
    exec::DynInst a;
    a.mi = isa::makeLoad(isa::Op::Ldl, isa::intReg(2), isa::intReg(4), 0);
    a.effAddr = 0x10000;
    v.push_back(a);
    exec::DynInst b = a;
    b.mi.dest = isa::intReg(6);
    b.effAddr = 0x20000;
    v.push_back(b);

    auto run = [&](unsigned mshr) {
        auto cfg = core::ProcessorConfig::singleCluster8();
        cfg.memory.dcache.mshrEntries = mshr;
        StatGroup stats("t");
        exec::VectorTrace trace(exec::VectorTrace::normalize(v));
        core::Processor cpu(cfg, trace, stats);
        return cpu.run(100000).cycles;
    };
    const auto unlimited = run(0);
    const auto limited = run(1);
    EXPECT_GE(limited, unlimited + 10); // serialized 16-cycle fills
}

} // namespace
