/**
 * @file
 * Tests for the cycle-time (delay) model: the Palacharla anchor points
 * the paper quotes, monotonicity, and the break-even arithmetic.
 */

#include <gtest/gtest.h>

#include "timing/delay_model.hh"

namespace
{

using mca::timing::DelayModel;

TEST(DelayModel, FourWayAnchorAt035um)
{
    DelayModel m;
    EXPECT_NEAR(m.criticalPathPs(4, 0.35), 1248.0, 1.0);
}

TEST(DelayModel, EightWayAnchorAt035um)
{
    DelayModel m;
    // Paper: 1484 ps for the 8-way machine at 0.35 um (+18%).
    EXPECT_NEAR(m.criticalPathPs(8, 0.35), 1484.0, 15.0);
    EXPECT_NEAR(m.widthGrowthRatio(4, 8, 0.35), 1.18, 0.01);
}

TEST(DelayModel, GrowthAt018umIs82Percent)
{
    DelayModel m;
    EXPECT_NEAR(m.widthGrowthRatio(4, 8, 0.18), 1.82, 0.02);
}

TEST(DelayModel, WireShareGrowsAsFeaturesShrink)
{
    DelayModel m;
    EXPECT_LT(m.wireShare(0.35), m.wireShare(0.25));
    EXPECT_LT(m.wireShare(0.25), m.wireShare(0.18));
    EXPECT_LT(m.wireShare(0.18), m.wireShare(0.10));
    EXPECT_LE(m.wireShare(0.02), 1.0);
}

TEST(DelayModel, DelayMonotonicInWidth)
{
    DelayModel m;
    for (double f : {0.35, 0.25, 0.18}) {
        double prev = 0;
        for (unsigned w : {1u, 2u, 4u, 8u, 16u}) {
            const double d = m.criticalPathPs(w, f);
            EXPECT_GT(d, prev);
            prev = d;
        }
    }
}

TEST(DelayModel, GrowthRatioIncreasesAsFeaturesShrink)
{
    DelayModel m;
    EXPECT_LT(m.widthGrowthRatio(4, 8, 0.35),
              m.widthGrowthRatio(4, 8, 0.25));
    EXPECT_LT(m.widthGrowthRatio(4, 8, 0.25),
              m.widthGrowthRatio(4, 8, 0.18));
}

TEST(DelayModel, RequiredClockReductionMatchesPaper)
{
    // Paper §4.2: a 25% cycle-count slowdown needs a 20% smaller period.
    EXPECT_NEAR(DelayModel::requiredClockReduction(25.0), 0.20, 1e-9);
    EXPECT_NEAR(DelayModel::requiredClockReduction(0.0), 0.0, 1e-12);
    EXPECT_NEAR(DelayModel::requiredClockReduction(100.0), 0.5, 1e-12);
}

TEST(DelayModel, NetSpeedupNegativeAt035ForWorstCase)
{
    DelayModel m;
    // Paper conclusion: at 0.35 um a 25% slowdown outweighs the 18%
    // faster clock of the 4-way-per-cluster machine.
    const double s = m.netSpeedupPercent(1.25, 8, 4, 0.35);
    EXPECT_LT(s, 0.0);
}

TEST(DelayModel, NetSpeedupPositiveAt018ForWorstCase)
{
    DelayModel m;
    // ...but at 0.18 um the 82% clock advantage wins decisively.
    const double s = m.netSpeedupPercent(1.25, 8, 4, 0.18);
    EXPECT_GT(s, 20.0);
}

TEST(DelayModel, BreakEvenSlowdownBetween035And018)
{
    DelayModel m;
    // At exactly the clock ratio, speedup is zero: slowdown of 18%
    // breaks even at 0.35 um.
    EXPECT_NEAR(m.netSpeedupPercent(1.18, 8, 4, 0.35), 0.0, 0.5);
    EXPECT_NEAR(m.netSpeedupPercent(1.82, 8, 4, 0.18), 0.0, 1.0);
}

TEST(DelayModelDeath, RejectsNonsenseInputs)
{
    DelayModel m;
    EXPECT_DEATH(m.criticalPathPs(0, 0.35), "issue width");
    EXPECT_DEATH(m.criticalPathPs(8, 0.0), "feature size");
}

} // namespace
