/**
 * @file
 * Sampled-simulation tests (src/sample).
 *
 * The contracts under test:
 *  - the spec grammar round-trips and rejects infeasible plans;
 *  - sampled CPI tracks the full detailed run's CPI closely;
 *  - a sampled run is deterministic, and parallel measurement
 *    (jobs > 1) is bit-identical to serial (jobs = 1);
 *  - every measured interval's cycle stack conserves retire slots;
 *  - periodic mode starts intervals exactly where asked.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "compiler/pipeline.hh"
#include "core/processor.hh"
#include "exec/trace.hh"
#include "sample/driver.hh"
#include "sample/spec.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

constexpr std::uint64_t kTraceSeed = 42;
constexpr std::uint64_t kMaxInsts = 120'000;

struct Compiled
{
    prog::MachProgram binary;
    isa::RegisterMap map;
};

Compiled
compileBenchmark(const std::string &name, unsigned clusters)
{
    const auto &bench = workloads::benchmarkByName(name);
    const prog::Program program = bench.make({});
    compiler::CompileOptions copt =
        compiler::compileOptionsFor(clusters > 1 ? "local" : "native",
                                    clusters);
    copt.profileSeed = kTraceSeed;
    const auto out = compiler::compile(program, copt);
    return Compiled{out.binary, out.hardwareMap(clusters)};
}

core::ProcessorConfig
dualConfig(const isa::RegisterMap &map)
{
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.regMap = map;
    return cfg;
}

/** Full detailed run: exact CPI to compare the estimate against. */
double
fullRunCpi(const Compiled &c, std::uint64_t *insts_out = nullptr)
{
    StatGroup sg("mca");
    exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
    core::Processor proc(dualConfig(c.map), trace, sg);
    const auto res = proc.run();
    if (insts_out)
        *insts_out = res.instructions;
    return static_cast<double>(res.cycles) /
           static_cast<double>(res.instructions);
}

sample::SampleSpec
testSpec(unsigned jobs = 1)
{
    sample::SampleSpec spec;
    spec.mode = sample::SampleSpec::Mode::Systematic;
    spec.period = 15'000;
    spec.detail = 3'000;
    spec.warmup = 1'000;
    spec.jobs = jobs;
    return spec;
}

// --- spec grammar ----------------------------------------------------

TEST(SampleSpec, ParseFullForm)
{
    const auto spec = sample::SampleSpec::parse(
        "periodic:period=5000,detail=1000,warmup=200,offset=42,jobs=3");
    EXPECT_EQ(spec.mode, sample::SampleSpec::Mode::Periodic);
    EXPECT_EQ(spec.period, 5000u);
    EXPECT_EQ(spec.detail, 1000u);
    EXPECT_EQ(spec.warmup, 200u);
    EXPECT_EQ(spec.offset, 42u);
    EXPECT_EQ(spec.jobs, 3u);
}

TEST(SampleSpec, ModeAloneUsesDefaults)
{
    const auto spec = sample::SampleSpec::parse("systematic");
    EXPECT_EQ(spec.mode, sample::SampleSpec::Mode::Systematic);
    EXPECT_GE(spec.period, spec.warmup + spec.detail);
}

TEST(SampleSpec, CanonicalRoundTrips)
{
    const auto spec = sample::SampleSpec::parse(
        "periodic:period=5000,detail=1000,warmup=200,offset=42");
    const auto again = sample::SampleSpec::parse(spec.canonical());
    EXPECT_EQ(again.canonical(), spec.canonical());
    EXPECT_EQ(again.period, spec.period);
    EXPECT_EQ(again.offset, spec.offset);
}

TEST(SampleSpec, RejectsBadInput)
{
    EXPECT_THROW(sample::SampleSpec::parse("random:period=10"),
                 std::runtime_error);
    EXPECT_THROW(sample::SampleSpec::parse("systematic:periods=10"),
                 std::runtime_error);
    EXPECT_THROW(sample::SampleSpec::parse("systematic:period=ten"),
                 std::runtime_error);
    EXPECT_THROW(sample::SampleSpec::parse("systematic:period"),
                 std::runtime_error);
    EXPECT_THROW(sample::SampleSpec::parse("systematic:detail=0"),
                 std::runtime_error);
    // warmup + detail must fit inside one period.
    EXPECT_THROW(sample::SampleSpec::parse(
                     "systematic:period=1000,detail=900,warmup=200"),
                 std::runtime_error);
}

// --- sampled execution ----------------------------------------------

TEST(SampledRun, CpiTracksFullRun)
{
    const auto c = compileBenchmark("compress", 2);
    std::uint64_t fullInsts = 0;
    const double fullCpi = fullRunCpi(c, &fullInsts);

    sample::SampledDriver driver(c.binary, dualConfig(c.map), kTraceSeed,
                                 kMaxInsts);
    const auto rep = driver.run(testSpec());

    ASSERT_GE(rep.intervals.size(), 4u);
    EXPECT_EQ(rep.totalInsts, fullInsts);
    EXPECT_GT(rep.cpiMean, 0.0);
    const double relErr = std::fabs(rep.cpiMean - fullCpi) / fullCpi;
    EXPECT_LT(relErr, 0.10) << "sampled " << rep.cpiMean << " vs full "
                            << fullCpi;
    // The estimate pays far fewer detailed instructions than the run
    // it predicts.
    EXPECT_LT(rep.detailedInsts, rep.totalInsts / 2);
}

TEST(SampledRun, DeterministicAcrossRuns)
{
    const auto c = compileBenchmark("ora", 2);
    sample::SampledDriver driver(c.binary, dualConfig(c.map), kTraceSeed,
                                 kMaxInsts);
    const auto a = driver.run(testSpec());
    const auto b = driver.run(testSpec());

    ASSERT_EQ(a.intervals.size(), b.intervals.size());
    EXPECT_EQ(a.cpiMean, b.cpiMean);
    EXPECT_EQ(a.estTotalCycles, b.estTotalCycles);
    for (std::size_t i = 0; i < a.intervals.size(); ++i) {
        EXPECT_EQ(a.intervals[i].startInst, b.intervals[i].startInst);
        EXPECT_EQ(a.intervals[i].cycles, b.intervals[i].cycles);
        EXPECT_EQ(a.intervals[i].instructions, b.intervals[i].instructions);
    }
}

TEST(SampledRun, ParallelMatchesSerial)
{
    const auto c = compileBenchmark("gcc1", 2);
    sample::SampledDriver driver(c.binary, dualConfig(c.map), kTraceSeed,
                                 kMaxInsts);
    const auto serial = driver.run(testSpec(1));
    const auto parallel = driver.run(testSpec(4));

    ASSERT_EQ(serial.intervals.size(), parallel.intervals.size());
    EXPECT_EQ(serial.cpiMean, parallel.cpiMean);
    EXPECT_EQ(serial.cpiStdDev, parallel.cpiStdDev);
    EXPECT_EQ(serial.estTotalCycles, parallel.estTotalCycles);
    for (std::size_t i = 0; i < serial.intervals.size(); ++i) {
        EXPECT_EQ(serial.intervals[i].cycles, parallel.intervals[i].cycles);
        EXPECT_EQ(serial.intervals[i].stack.totalSlotCycles(),
                  parallel.intervals[i].stack.totalSlotCycles());
    }
}

TEST(SampledRun, EveryIntervalConservesCycleStack)
{
    const auto c = compileBenchmark("su2cor", 2);
    sample::SampledDriver driver(c.binary, dualConfig(c.map), kTraceSeed,
                                 kMaxInsts);
    const auto rep = driver.run(testSpec());

    ASSERT_FALSE(rep.intervals.empty());
    EXPECT_TRUE(rep.allConserved);
    for (const auto &iv : rep.intervals) {
        EXPECT_TRUE(iv.conserved) << "interval " << iv.index;
        EXPECT_EQ(iv.stack.totalSlotCycles(),
                  static_cast<std::uint64_t>(iv.stack.slots) *
                      iv.stack.cycles);
        EXPECT_GT(iv.instructions, 0u);
        EXPECT_GT(iv.cycles, 0u);
    }
}

TEST(SampledRun, PeriodicModeStartsAtOffset)
{
    const auto c = compileBenchmark("doduc", 2);
    sample::SampledDriver driver(c.binary, dualConfig(c.map), kTraceSeed,
                                 kMaxInsts);
    auto spec = testSpec();
    spec.mode = sample::SampleSpec::Mode::Periodic;
    spec.offset = 7'777;
    const auto rep = driver.run(spec);

    ASSERT_GE(rep.intervals.size(), 2u);
    EXPECT_EQ(rep.intervals[0].startInst, 7'777u);
    EXPECT_EQ(rep.intervals[1].startInst, 7'777u + spec.period);
}

TEST(SampledRun, SingleClusterAlsoSamples)
{
    const auto c = compileBenchmark("compress", 1);
    auto cfg = core::ProcessorConfig::singleCluster8();
    cfg.regMap = c.map;
    const double fullCpi = [&] {
        StatGroup sg("mca");
        exec::ProgramTrace trace(c.binary, kTraceSeed, kMaxInsts);
        core::Processor proc(cfg, trace, sg);
        const auto res = proc.run();
        return static_cast<double>(res.cycles) /
               static_cast<double>(res.instructions);
    }();

    sample::SampledDriver driver(c.binary, cfg, kTraceSeed, kMaxInsts);
    const auto rep = driver.run(testSpec());
    ASSERT_FALSE(rep.intervals.empty());
    const double relErr = std::fabs(rep.cpiMean - fullCpi) / fullCpi;
    EXPECT_LT(relErr, 0.10);
}

} // namespace
