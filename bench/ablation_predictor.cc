/**
 * @file
 * Ablation: branch-predictor organization. The paper uses McFarling's
 * combining predictor; this sweep shows what the choice buys per
 * benchmark against its components (bimodal, gshare) and static
 * prediction, on the single-cluster machine.
 *
 * Usage: ablation_predictor [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "support/table.hh"

namespace
{

using namespace mca;
using Kind = core::ProcessorConfig::PredictorKind;

struct Cell
{
    Cycle cycles;
    double accuracy;
};

Cell
run(const prog::MachProgram &binary, const isa::RegisterMap &map,
    Kind kind, std::uint64_t max_insts, bool spec_history = false)
{
    auto cfg = core::ProcessorConfig::singleCluster8();
    cfg.regMap = map;
    cfg.predictor = kind;
    cfg.speculativeHistory = spec_history;
    StatGroup stats("p");
    exec::ProgramTrace trace(binary, 42, max_insts);
    core::Processor cpu(cfg, trace, stats);
    const auto result = cpu.run(100'000'000);
    return Cell{result.cycles, stats.formulaAt("bpred.accuracy")};
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::WorkloadParams wp;
    wp.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const std::uint64_t max_insts =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 100'000;

    std::cout << "Ablation: branch predictor organization "
                 "(single-cluster 8-way)\n  cell = cycles / accuracy\n\n";

    struct Variant
    {
        const char *name;
        Kind kind;
        bool specHistory;
    };
    const Variant kinds[] = {
        {"mcfarling (paper)", Kind::McFarling, false},
        {"mcf + spec.hist", Kind::McFarling, true},
        {"gshare", Kind::Gshare, false},
        {"gshare + spec.hist", Kind::Gshare, true},
        {"bimodal", Kind::Bimodal, false},
        {"static taken", Kind::StaticTaken, false},
    };

    TextTable table;
    std::vector<std::string> hdr = {"benchmark"};
    for (const auto &v : kinds)
        hdr.push_back(v.name);
    table.header(hdr);

    for (const auto &bench : workloads::allBenchmarks()) {
        const auto program = bench.make(wp);
        compiler::CompileOptions copt;
        copt.scheduler = compiler::SchedulerKind::Native;
        copt.numClusters = 1;
        const auto out = compiler::compile(program, copt);
        std::vector<std::string> cells = {bench.name};
        for (const auto &v : kinds) {
            const auto c = run(out.binary, out.hardwareMap(1), v.kind,
                               max_insts, v.specHistory);
            cells.push_back(std::to_string(c.cycles) + " / " +
                            TextTable::num(c.accuracy, 3));
        }
        table.row(cells);
    }
    table.print(std::cout);
    std::cout << "\n(Note: accuracy is the machine-measured prediction "
                 "rate; the paper's\nfootnote-2 update-at-execute "
                 "history is the default, and the speculative\n"
                 "history column shows what the stale history costs.)\n";
    return 0;
}
