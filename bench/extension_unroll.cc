/**
 * @file
 * Extension bench (paper §6 future work): loop unrolling as a lever
 * for the multicluster architecture. Unrolling replicates loop bodies
 * with fresh live ranges per iteration instance, letting the local
 * scheduler interleave iterations across clusters instead of splitting
 * a serial chain.
 *
 * For each benchmark and unroll factor: the unrolled program is
 * compiled both ways and the Table-2 ratio recomputed (single-cluster
 * baseline also runs the unrolled binary, so the comparison isolates
 * the clustering effect).
 *
 * Usage: extension_unroll [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "support/table.hh"

namespace
{

using namespace mca;

double
localPct(const prog::Program &program, unsigned factor,
         std::uint64_t max_insts)
{
    compiler::CompileOptions nopt;
    nopt.scheduler = compiler::SchedulerKind::Native;
    nopt.numClusters = 1;
    nopt.unrollFactor = factor;
    const auto native = compiler::compile(program, nopt);

    compiler::CompileOptions lopt;
    lopt.scheduler = compiler::SchedulerKind::Local;
    lopt.numClusters = 2;
    lopt.unrollFactor = factor;
    const auto local = compiler::compile(program, lopt);

    const auto single = harness::simulate(
        native.binary, native.hardwareMap(1),
        core::ProcessorConfig::singleCluster8(), 42, max_insts);
    const auto dual = harness::simulate(
        local.binary, local.hardwareMap(2),
        core::ProcessorConfig::dualCluster8(), 42, max_insts);
    return 100.0 - 100.0 * static_cast<double>(dual.cycles) /
                       static_cast<double>(single.cycles);
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::WorkloadParams wp;
    wp.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const std::uint64_t max_insts =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 100'000;

    std::cout << "Extension: loop unrolling (paper §6)\n"
              << "  cell = local-scheduler speedup% vs the single "
                 "cluster running the\n  same unrolled binary\n\n";

    TextTable table;
    table.header({"benchmark", "U=1 (Table 2)", "U=2", "U=4"});
    for (const auto &bench : workloads::allBenchmarks()) {
        const auto program = bench.make(wp);
        table.row({bench.name,
                   TextTable::signedPercent(localPct(program, 1,
                                                     max_insts)),
                   TextTable::signedPercent(localPct(program, 2,
                                                     max_insts)),
                   TextTable::signedPercent(localPct(program, 4,
                                                     max_insts))});
    }
    table.print(std::cout);
    std::cout << "\n(Only counted self-loops unroll; benchmarks whose "
                 "hot loops span\nmultiple blocks are unaffected.)\n";
    return 0;
}
