/**
 * @file
 * Reproduces the paper's Figure 6: the example control-flow graph and
 * the local scheduler's traversal/assignment behaviour on it.
 *
 * Expected (paper §3.5): blocks visited in the order 4, 1, 5, 3, 2;
 * live ranges assigned in the order C, G, B, A, E, D, H; live range S
 * (a global-register candidate) is never partitioned.
 */

#include <iostream>

#include "compiler/affinity.hh"
#include "compiler/partition.hh"
#include "compiler/partition_ml.hh"
#include "compiler/pipeline.hh"
#include "harness/figure6.hh"
#include "support/table.hh"

int
main()
{
    using namespace mca;

    const auto fig = harness::makeFigure6();

    std::cout << "Figure 6: example control flow graph\n\n";
    TextTable cfg;
    cfg.header({"block", "estimate", "instructions"});
    for (int blk = 1; blk <= 5; ++blk) {
        const auto &bb =
            fig.program.functions[0].blocks[fig.blocks.at(blk)];
        std::string instrs;
        for (const auto &in : bb.instrs) {
            if (isa::isCtrlFlow(in.op))
                continue;
            if (!instrs.empty())
                instrs += " ; ";
            if (in.dest != prog::kNoValue)
                instrs += fig.program.values[in.dest].name + "=...";
        }
        cfg.row({"#" + std::to_string(blk),
                 TextTable::num(bb.weight, 0), instrs});
    }
    cfg.print(std::cout);

    compiler::PartitionOptions opt;
    compiler::PartitionTrace trace;
    const auto assignment =
        compiler::localSchedule(fig.program, opt, &trace);

    std::cout << "\nLocal-scheduler block traversal order (paper: "
                 "4, 1, 5, 3, 2):\n  ";
    for (std::size_t i = 0; i < trace.blockOrder.size() && i < 5; ++i) {
        for (const auto &[num, id] : fig.blocks)
            if (id == trace.blockOrder[i].second)
                std::cout << num << (i + 1 < 5 ? ", " : "\n");
    }

    std::cout << "\nLive-range assignment order (paper: C, G, B, A, E, "
                 "D, H):\n  ";
    for (std::size_t i = 0; i < trace.assignmentOrder.size(); ++i) {
        const auto &name =
            fig.program.values[trace.assignmentOrder[i]].name;
        if (name.size() == 1)
            std::cout << name
                      << (i + 1 < trace.assignmentOrder.size() ? ", "
                                                               : "");
    }
    std::cout << "\n\nCluster assignment:\n";
    TextTable result;
    result.header({"live range", "cluster"});
    for (const auto &[name, v] : fig.values) {
        const int c = assignment.clusterOf(v);
        result.row({name, c < 0 ? "global (replicated)"
                                : std::to_string(c)});
    }
    result.print(std::cout);

    // Partitioner comparison on the same graph: every partition pass at
    // 2 clusters, scored against the affinity graph (cut = weighted
    // affinity edges split across clusters, balance = heaviest/ideal).
    const auto graph = compiler::buildAffinityGraph(fig.program);
    std::cout << "\nPartitioner comparison on the Figure-6 graph "
                 "(2 clusters,\naffinity weight "
              << graph.totalEdgeWeight << "):\n";
    TextTable cmp;
    std::vector<std::string> header = {"partitioner", "cut", "balance"};
    for (const auto &[name, v] : fig.values)
        header.push_back(name);
    cmp.header(header);
    for (const auto &pname : compiler::partitionerNames()) {
        compiler::ClusterAssignment a;
        if (pname == "local")
            a = compiler::localSchedule(fig.program, opt);
        else if (pname == "roundrobin")
            a = compiler::roundRobinSchedule(fig.program, opt);
        else
            a = compiler::multilevelPartition(fig.program, opt);
        const auto stats = compiler::scorePartition(graph, a, 2);
        std::vector<std::string> cells = {
            pname, std::to_string(stats.cutWeight),
            TextTable::num(stats.balance)};
        for (const auto &[name, v] : fig.values) {
            const int c = a.clusterOf(v);
            cells.push_back(c < 0 ? "glob" : std::to_string(c));
        }
        cmp.row(cells);
    }
    cmp.print(std::cout);
    return 0;
}
