/**
 * @file
 * Study: dissecting the compress anomaly (paper §4.2).
 *
 * The paper's compress is the one benchmark where the dual-cluster
 * machine *wins in cycles*, attributed to the single-cluster machine's
 * larger dispatch queue: (1) more predictions made on stale
 * branch-predictor state (footnote 2: tables update at execute), and
 * (2) more issue disorder, raising the data-cache miss rate.
 *
 * This study isolates the two channels on our compress stand-in:
 * sweeping the single-cluster queue size, toggling footnote-2 staleness
 * (speculative vs update-at-execute history), and reporting each
 * channel's contribution next to the dual-cluster machine.
 *
 * Usage: study_compress_anomaly [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "support/table.hh"

namespace
{

using namespace mca;

struct Row
{
    Cycle cycles;
    double bpred;
    double dmiss;
    std::uint64_t disorder;
};

Row
run(const prog::MachProgram &binary, const isa::RegisterMap &map,
    core::ProcessorConfig cfg, bool spec_history,
    std::uint64_t max_insts)
{
    cfg.regMap = map;
    cfg.speculativeHistory = spec_history;
    StatGroup stats("s");
    exec::ProgramTrace trace(binary, 42, max_insts);
    core::Processor cpu(cfg, trace, stats);
    const auto result = cpu.run(100'000'000);
    const auto dacc = stats.counterAt("dcache.accesses").value();
    const auto dmiss = stats.counterAt("dcache.misses").value();
    return Row{result.cycles, stats.formulaAt("bpred.accuracy"),
               dacc ? 100.0 * static_cast<double>(dmiss) /
                          static_cast<double>(dacc)
                    : 0.0,
               stats.counterAt("issue.disorder").value()};
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::WorkloadParams wp;
    wp.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const std::uint64_t max_insts =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 100'000;

    const auto program = workloads::makeCompress(wp);
    compiler::CompileOptions nopt;
    nopt.scheduler = compiler::SchedulerKind::Native;
    nopt.numClusters = 1;
    const auto native = compiler::compile(program, nopt);
    compiler::CompileOptions lopt;
    lopt.scheduler = compiler::SchedulerKind::Local;
    lopt.numClusters = 2;
    const auto local = compiler::compile(program, lopt);

    std::cout
        << "Study: the compress anomaly (paper §4.2)\n"
        << "  channel 1 - stale predictor state grows with the queue\n"
        << "  channel 2 - issue disorder grows with the queue and "
           "degrades the cache\n\n";

    TextTable table;
    table.header({"configuration", "cycles", "bpred acc", "dmiss%",
                  "disorder"});

    for (unsigned q : {32u, 64u, 128u, 256u}) {
        auto cfg = core::ProcessorConfig::singleCluster8();
        cfg.dispatchQueueEntries = q;
        const auto r = run(native.binary, native.hardwareMap(1), cfg,
                           false, max_insts);
        table.row({"single, Q=" + std::to_string(q),
                   std::to_string(r.cycles), TextTable::num(r.bpred, 3),
                   TextTable::num(r.dmiss, 1),
                   std::to_string(r.disorder / 1000) + "k"});
    }
    {
        auto cfg = core::ProcessorConfig::singleCluster8();
        const auto r = run(native.binary, native.hardwareMap(1), cfg,
                           true, max_insts);
        table.row({"single, Q=128, spec. history",
                   std::to_string(r.cycles), TextTable::num(r.bpred, 3),
                   TextTable::num(r.dmiss, 1),
                   std::to_string(r.disorder / 1000) + "k"});
    }
    table.separator();
    {
        const auto r = run(local.binary, local.hardwareMap(2),
                           core::ProcessorConfig::dualCluster8(), false,
                           max_insts);
        table.row({"dual, local scheduler", std::to_string(r.cycles),
                   TextTable::num(r.bpred, 3), TextTable::num(r.dmiss, 1),
                   std::to_string(r.disorder / 1000) + "k"});
    }
    {
        const auto r = run(local.binary, local.hardwareMap(2),
                           core::ProcessorConfig::dualCluster8(), true,
                           max_insts);
        table.row({"dual, local, spec. history", std::to_string(r.cycles),
                   TextTable::num(r.bpred, 3), TextTable::num(r.dmiss, 1),
                   std::to_string(r.disorder / 1000) + "k"});
    }
    table.print(std::cout);

    std::cout
        << "\nReading: the queue-size channel is real — prediction "
           "accuracy degrades\nmonotonically as the window grows "
           "(footnote-2 staleness scales with the\nnumber of in-flight "
           "branches), and the speculative-history rows show\nthe full "
           "cost of the stale state. The crossover the paper reports\n"
           "requires the dual machine's *effective* window to be "
           "meaningfully\nsmaller than the single machine's; with a "
           "well-balanced local schedule\nour dual machine sustains "
           "nearly the same combined window (2 x 64 vs\n128, both "
           "capped near the ~97 allocatable integer registers), so "
           "its\npredictor sees the same staleness and the +6 does "
           "not emerge.\n";
    return 0;
}
