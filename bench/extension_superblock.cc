/**
 * @file
 * Extension bench (paper §6): superblock formation ahead of the local
 * scheduler. Tail duplication plus straightening enlarges the hot
 * blocks, giving the §3.5 imbalance estimate more instructions to
 * reason about jointly — the paper's stated motivation.
 *
 * For each benchmark the Table-2 "local" percentage is recomputed with
 * the transformed program feeding both machines (the single-cluster
 * baseline also runs the transformed binary, isolating the clustering
 * effect).
 *
 * Usage: extension_superblock [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "support/table.hh"

namespace
{

using namespace mca;

struct Cell
{
    double pct;
    double dualPct;
};

Cell
localPct(const prog::Program &program, bool superblocks,
         std::uint64_t max_insts)
{
    compiler::CompileOptions nopt;
    nopt.scheduler = compiler::SchedulerKind::Native;
    nopt.numClusters = 1;
    nopt.superblocks = superblocks;
    const auto native = compiler::compile(program, nopt);

    compiler::CompileOptions lopt;
    lopt.scheduler = compiler::SchedulerKind::Local;
    lopt.numClusters = 2;
    lopt.superblocks = superblocks;
    const auto local = compiler::compile(program, lopt);

    const auto single = harness::simulate(
        native.binary, native.hardwareMap(1),
        core::ProcessorConfig::singleCluster8(), 42, max_insts);
    const auto dual = harness::simulate(
        local.binary, local.hardwareMap(2),
        core::ProcessorConfig::dualCluster8(), 42, max_insts);
    const double total =
        static_cast<double>(dual.distSingle + dual.distDual);
    return Cell{100.0 - 100.0 * static_cast<double>(dual.cycles) /
                            static_cast<double>(single.cycles),
                total ? 100.0 * dual.distDual / total : 0.0};
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::WorkloadParams wp;
    wp.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const std::uint64_t max_insts =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 100'000;

    std::cout << "Extension: superblock formation (paper §6)\n"
              << "  cell = local speedup% (dual-dist%)\n\n";

    TextTable table;
    table.header({"benchmark", "basic blocks (Table 2)", "superblocks"});
    for (const auto &bench : workloads::allBenchmarks()) {
        const auto program = bench.make(wp);
        const auto base = localPct(program, false, max_insts);
        const auto super = localPct(program, true, max_insts);
        table.row({bench.name,
                   TextTable::signedPercent(base.pct) + " (" +
                       TextTable::num(base.dualPct, 0) + ")",
                   TextTable::signedPercent(super.pct) + " (" +
                       TextTable::num(super.dualPct, 0) + ")"});
    }
    table.print(std::cout);
    return 0;
}
