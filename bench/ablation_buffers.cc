/**
 * @file
 * Ablation: transfer-buffer sizing. The paper fixes 8 operand and 8
 * result entries per cluster; this sweep shows the cost of smaller
 * buffers (stalled slaves/masters, replay exceptions) and the
 * diminishing returns of larger ones.
 *
 * Usage: ablation_buffers [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "support/table.hh"

int
main(int argc, char **argv)
{
    using namespace mca;

    workloads::WorkloadParams wp;
    wp.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const std::uint64_t max_insts =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 100'000;

    std::cout << "Ablation: operand/result transfer-buffer entries per "
                 "cluster\n  cell = dual-cluster cycles with the native "
                 "binary (replays)\n\n";

    const unsigned sizes[] = {1, 2, 4, 8, 16, 32};

    TextTable table;
    std::vector<std::string> hdr = {"benchmark"};
    for (unsigned s : sizes)
        hdr.push_back("B=" + std::to_string(s));
    table.header(hdr);

    for (const auto &bench : workloads::allBenchmarks()) {
        const auto program = bench.make(wp);
        compiler::CompileOptions copt;
        copt.scheduler = compiler::SchedulerKind::Native;
        copt.numClusters = 1;
        const auto out = compiler::compile(program, copt);

        std::vector<std::string> cells = {bench.name};
        for (unsigned s : sizes) {
            auto cfg = core::ProcessorConfig::dualCluster8();
            cfg.operandBufferEntries = s;
            cfg.resultBufferEntries = s;
            cfg.regMap = out.hardwareMap(2);
            StatGroup stats(bench.name);
            exec::ProgramTrace trace(out.binary, 42, max_insts);
            core::Processor cpu(cfg, trace, stats);
            const auto result = cpu.run(50'000'000);
            cells.push_back(
                std::to_string(result.cycles) + " (" +
                std::to_string(
                    stats.counterAt("replay.exceptions").value()) +
                ")");
        }
        table.row(cells);
    }
    table.print(std::cout);
    return 0;
}
