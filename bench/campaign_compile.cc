/**
 * @file
 * Compile-cache benchmark: the Table-2 campaign with and without
 * compile sharing.
 *
 * The 18 Table-2 jobs (6 benchmarks x {single/native, dual/native,
 * dual/local}) only contain 12 distinct (workload, compile-config)
 * pairs, because each benchmark's native compile is cluster-blind and
 * shared by its single- and dual-machine legs. This harness runs the
 * campaign both ways, asserts the cache does exactly one compile per
 * distinct pair (and that results are bit-identical to the uncached
 * run), and reports the wall-clock difference. A third leg re-runs the
 * cached campaign with CampaignOptions::compileBarrier — no simulation
 * until every compile has finished — to isolate what the task-graph
 * executor's compile/simulate overlap is worth: `overlap_speedup`
 * (wall clock, only meaningful on a multi-core host) and
 * `overlap_critical_path` (barrier/overlap schedule critical-path
 * ratio — the hardware-independent view: the barrier chains the
 * slowest compile in front of every simulation, overlap makes the
 * critical path one job's own compile→simulate chain).
 * scripts/ci.sh stores the result as BENCH_compile.json.
 *
 * Usage: campaign_compile [--scale S] [--max-insts N] [--jobs N]
 *                         [--trials N] [--json-out FILE]
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "runner/table2.hh"

namespace
{

using namespace mca;

struct Sample
{
    double wallS = 0.0;
    runner::CampaignSummary summary;
    std::vector<runner::JobResult> results;
};

Sample
runOnce(const std::vector<runner::JobSpec> &specs, unsigned jobs,
        bool compile_cache, bool compile_barrier = false)
{
    runner::CampaignOptions options;
    options.jobs = jobs;
    options.compileCache = compile_cache;
    options.compileBarrier = compile_barrier;
    Sample s;
    const auto t0 = std::chrono::steady_clock::now();
    s.results = runner::runCampaign(specs, options, &s.summary);
    s.wallS = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    return s;
}

bool
sameResults(const std::vector<runner::JobResult> &a,
            const std::vector<runner::JobResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].status != b[i].status || a[i].cycles != b[i].cycles ||
            a[i].retired != b[i].retired ||
            a[i].spillLoads != b[i].spillLoads ||
            a[i].spillStores != b[i].spillStores)
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = 0.2;
    std::uint64_t max_insts = 100'000;
    unsigned jobs = 4;
    unsigned trials = 3;
    std::string json_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scale")
            scale = std::atof(next());
        else if (arg == "--max-insts")
            max_insts = std::strtoull(next(), nullptr, 10);
        else if (arg == "--jobs")
            jobs = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--trials")
            trials = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--json-out")
            json_out = next();
        else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }
    if (trials == 0)
        trials = 1;

    harness::ExperimentOptions eopt;
    eopt.workload.scale = scale;
    eopt.maxInsts = max_insts;
    const auto specs = runner::table2Jobs(eopt);

    // Distinct (workload, compile-config) pairs expected for Table 2:
    // per benchmark, one native compile (shared by both machine legs)
    // and one local compile.
    const std::size_t expect_jobs = specs.size();
    const std::size_t expect_compiles = (specs.size() / 3) * 2;

    Sample off, on, barrier;
    for (unsigned t = 0; t < trials; ++t) {
        Sample a = runOnce(specs, jobs, /*compile_cache=*/false);
        Sample b = runOnce(specs, jobs, /*compile_cache=*/true);
        Sample c = runOnce(specs, jobs, /*compile_cache=*/true,
                           /*compile_barrier=*/true);
        if (t == 0 || a.wallS < off.wallS)
            off = std::move(a);
        if (t == 0 || b.wallS < on.wallS)
            on = std::move(b);
        if (t == 0 || c.wallS < barrier.wallS)
            barrier = std::move(c);
    }

    int rc = 0;
    if (off.summary.ok != expect_jobs || on.summary.ok != expect_jobs) {
        std::cerr << "FAIL: not every job succeeded (" << off.summary.ok
                  << "/" << on.summary.ok << " of " << expect_jobs
                  << ")\n";
        rc = 1;
    }
    if (off.summary.compiles != 0) {
        std::cerr << "FAIL: uncached run reported "
                  << off.summary.compiles << " shared compiles\n";
        rc = 1;
    }
    if (on.summary.compiles != expect_compiles) {
        std::cerr << "FAIL: cached run did " << on.summary.compiles
                  << " compiles, expected one per distinct config ("
                  << expect_compiles << ")\n";
        rc = 1;
    }
    if (on.summary.compiles + on.summary.compileHits != expect_jobs) {
        std::cerr << "FAIL: compiles + hits ("
                  << on.summary.compiles + on.summary.compileHits
                  << ") != jobs (" << expect_jobs << ")\n";
        rc = 1;
    }
    if (!sameResults(off.results, on.results)) {
        std::cerr << "FAIL: compile sharing changed job results\n";
        rc = 1;
    }
    if (!sameResults(on.results, barrier.results)) {
        std::cerr << "FAIL: compile barrier changed job results\n";
        rc = 1;
    }

    const double speedup = on.wallS > 0.0 ? off.wallS / on.wallS : 0.0;
    const double overlap_speedup =
        on.wallS > 0.0 ? barrier.wallS / on.wallS : 0.0;
    const double overlap_critical_path =
        on.summary.criticalPathMs > 0.0
            ? barrier.summary.criticalPathMs / on.summary.criticalPathMs
            : 0.0;
    std::cout << "table2 campaign: " << expect_jobs << " jobs, "
              << expect_compiles << " distinct compile configs\n"
              << "  no compile cache: " << off.wallS << " s ("
              << expect_jobs << " compiles)\n"
              << "  compile cache:    " << on.wallS << " s ("
              << on.summary.compiles << " compiles, "
              << on.summary.compileHits << " shared)\n"
              << "  compile barrier:  " << barrier.wallS
              << " s (no compile/simulate overlap)\n"
              << "  wall-clock ratio: " << speedup << "x\n"
              << "  overlap speedup:  " << overlap_speedup << "x\n"
              << "  critical path:    " << on.summary.criticalPathMs
              << " ms overlapped vs " << barrier.summary.criticalPathMs
              << " ms barriered (" << overlap_critical_path << "x)\n";

    if (!json_out.empty()) {
        std::ofstream out(json_out, std::ios::trunc);
        if (!out) {
            std::cerr << "cannot write " << json_out << "\n";
            return 1;
        }
        out << "{\n  \"benchmark\": \"compile_cache\",\n"
            << "  \"scale\": " << scale << ",\n"
            << "  \"max_insts\": " << max_insts << ",\n"
            << "  \"jobs\": " << jobs << ",\n"
            << "  \"trials\": " << trials << ",\n"
            << "  \"table2_jobs\": " << expect_jobs << ",\n"
            << "  \"distinct_compile_configs\": " << expect_compiles
            << ",\n"
            << "  \"compiles_with_cache\": " << on.summary.compiles
            << ",\n"
            << "  \"compile_hits\": " << on.summary.compileHits << ",\n"
            << "  \"wall_s_no_cache\": " << off.wallS << ",\n"
            << "  \"wall_s_cache\": " << on.wallS << ",\n"
            << "  \"wall_s_compile_barrier\": " << barrier.wallS << ",\n"
            << "  \"speedup\": " << speedup << ",\n"
            << "  \"overlap_speedup\": " << overlap_speedup << ",\n"
            << "  \"critical_path_ms\": " << on.summary.criticalPathMs
            << ",\n"
            << "  \"critical_path_ms_barrier\": "
            << barrier.summary.criticalPathMs << ",\n"
            << "  \"overlap_critical_path\": " << overlap_critical_path
            << ",\n"
            << "  \"results_identical\": "
            << (sameResults(off.results, on.results) ? "true" : "false")
            << "\n}\n";
        std::cout << "wrote " << json_out << "\n";
    }
    return rc;
}
