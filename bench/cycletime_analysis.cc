/**
 * @file
 * Reproduces the paper's §4.2 cycle-time analysis: the Palacharla-style
 * critical-path delays for 4- and 8-way machines at 0.35 um and
 * 0.18 um, the break-even clock-reduction rule (a 25% slowdown needs a
 * 20% smaller period), and the net run-time effect of clustering per
 * benchmark at each feature size — the paper's bottom-line argument
 * that the multicluster architecture wins below 0.35 um.
 *
 * Usage: cycletime_analysis [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "support/table.hh"
#include "timing/delay_model.hh"

int
main(int argc, char **argv)
{
    using namespace mca;

    timing::DelayModel model;

    std::cout << "Critical-path delay model (calibrated to Palacharla et "
                 "al.)\n\n";
    TextTable delays;
    delays.header({"feature size", "4-way delay (ps)", "8-way delay (ps)",
                   "8/4 growth", "wire share (4-way)"});
    for (double f : {0.8, 0.35, 0.25, 0.18, 0.13}) {
        delays.row({TextTable::num(f, 2) + " um",
                    TextTable::num(model.criticalPathPs(4, f), 0),
                    TextTable::num(model.criticalPathPs(8, f), 0),
                    TextTable::num(model.widthGrowthRatio(4, 8, f), 2),
                    TextTable::num(model.wireShare(f), 3)});
    }
    delays.print(std::cout);
    std::cout << "\nPaper anchors: 1248 ps -> 1484 ps (+18%) at 0.35 um; "
                 "+82% at 0.18 um.\n";

    std::cout << "\nBreak-even clock reduction "
                 "(1 - 1/(1 + slowdown)):\n";
    TextTable brk;
    brk.header({"cycle slowdown", "required period reduction"});
    for (double s : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
        brk.row({TextTable::num(s, 0) + "%",
                 TextTable::num(
                     100.0 * timing::DelayModel::requiredClockReduction(s),
                     1) +
                     "%"});
    }
    brk.print(std::cout);

    // Net effect per benchmark, using measured dual/local slowdowns.
    harness::ExperimentOptions opt;
    opt.workload.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    opt.maxInsts = argc > 2
                       ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                       : 100'000;

    std::cout << "\nNet run-time speedup of the dual-cluster machine "
                 "(local scheduler),\ncombining the measured cycle "
                 "ratio with the clock advantage of 4-way\nclusters "
                 "over an 8-way single cluster:\n";
    TextTable net;
    net.header({"benchmark", "cycle ratio", "net @ 0.35um",
                "net @ 0.25um", "net @ 0.18um"});
    double worst_ratio = 1.0;
    for (const auto &bench : workloads::allBenchmarks()) {
        const auto row = harness::runTable2Row(bench, opt);
        const double ratio =
            static_cast<double>(row.dualLocal.cycles) /
            static_cast<double>(row.single.cycles);
        worst_ratio = std::max(worst_ratio, ratio);
        net.row({row.benchmark, TextTable::num(ratio, 3),
                 TextTable::signedPercent(
                     model.netSpeedupPercent(ratio, 8, 4, 0.35), 1),
                 TextTable::signedPercent(
                     model.netSpeedupPercent(ratio, 8, 4, 0.25), 1),
                 TextTable::signedPercent(
                     model.netSpeedupPercent(ratio, 8, 4, 0.18), 1)});
    }
    net.print(std::cout);

    std::cout << "\nWorst-case cycle ratio " << TextTable::num(worst_ratio, 2)
              << ": net effect "
              << TextTable::signedPercent(
                     model.netSpeedupPercent(worst_ratio, 8, 4, 0.35), 1)
              << "% at 0.35 um vs "
              << TextTable::signedPercent(
                     model.netSpeedupPercent(worst_ratio, 8, 4, 0.18), 1)
              << "% at 0.18 um — partitioning pays off as features "
                 "shrink\n(the paper's conclusion).\n";
    return 0;
}
