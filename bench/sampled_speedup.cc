/**
 * @file
 * Sampled-simulation speedup benchmark (docs/sampling.md).
 *
 * For a long-trace workload, runs the full detailed simulation and the
 * SMARTS-style sampled estimate of the same run — serially (jobs=1)
 * and pipelined on the task-graph executor (jobs=2, window i measures
 * while window i+1 warms) — then reports the effective speedup
 * (detailed wall clock / sampled wall clock) and the CPI estimation
 * error. Acceptance: at least one benchmark reaches a 7x per-core
 * effective speedup with <= 2% CPI error (the absolute floor is
 * host-calibrated — the ratio compresses on hosts that run detailed
 * simulation fast, since warming dominates the sampled leg; relative
 * regressions are tracked by scripts/perf_gate.py's cross-commit
 * geomean instead); the pipelined estimate must be bit-identical to
 * the serial one; every sampled interval must conserve its cycle
 * stack. scripts/ci.sh stores the result as BENCH_sample.json.
 *
 * Usage: sampled_speedup [--scale S] [--max-insts N] [--json-out FILE]
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "compiler/pipeline.hh"
#include "core/processor.hh"
#include "exec/trace.hh"
#include "sample/driver.hh"
#include "sample/spec.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

constexpr std::uint64_t kTraceSeed = 42;

struct CaseSpec
{
    const char *benchmark;
    std::uint64_t period;
    std::uint64_t detail;
    std::uint64_t warmup;
};

struct CaseResult
{
    std::string benchmark;
    std::uint64_t totalInsts = 0;
    Cycle fullCycles = 0;
    double fullWallMs = 0.0;
    double estCycles = 0.0;
    double sampledWallMs = 0.0;
    double cpiFull = 0.0;
    double cpiSampled = 0.0;
    double cpiCi95 = 0.0;
    double cpiErr = 0.0;
    double speedup = 0.0;
    double sampledWallMsPipe = 0.0;
    double speedupPipe = 0.0;
    std::uint64_t intervals = 0;
    std::uint64_t detailedInsts = 0;
    bool conserved = true;
    bool pipeIdentical = true;
};

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

CaseResult
runCase(const CaseSpec &cs, double scale, std::uint64_t max_insts)
{
    CaseResult out;
    out.benchmark = cs.benchmark;

    workloads::WorkloadParams wp;
    wp.scale = scale;
    const prog::Program program =
        workloads::benchmarkByName(cs.benchmark).make(wp);
    compiler::CompileOptions copt = compiler::compileOptionsFor("local", 2);
    copt.profileSeed = kTraceSeed;
    const auto compiled = compiler::compile(program, copt);
    core::ProcessorConfig cfg = core::ProcessorConfig::dualCluster8();
    cfg.regMap = compiled.hardwareMap(2);

    // Full detailed run (the ground truth being predicted).
    {
        const auto t0 = std::chrono::steady_clock::now();
        StatGroup sg("mca");
        exec::ProgramTrace trace(compiled.binary, kTraceSeed, max_insts);
        core::Processor proc(cfg, trace, sg);
        const auto res = proc.run();
        out.fullWallMs = wallMsSince(t0);
        out.fullCycles = res.cycles;
        out.totalInsts = res.instructions;
        out.cpiFull = static_cast<double>(res.cycles) /
                      static_cast<double>(res.instructions);
    }

    // Sampled estimate of the same run.
    sample::SampleSpec spec;
    spec.mode = sample::SampleSpec::Mode::Systematic;
    spec.period = cs.period;
    spec.detail = cs.detail;
    spec.warmup = cs.warmup;
    spec.jobs = 1; // serial: the speedup claim is per-core, no pool help
    const auto t0 = std::chrono::steady_clock::now();
    sample::SampledDriver driver(compiled.binary, cfg, kTraceSeed,
                                 max_insts);
    const sample::SampleReport rep = driver.run(spec);
    out.sampledWallMs = wallMsSince(t0);

    // Pipelined leg: window i measures while window i+1 warms on the
    // task-graph executor. The estimate must be bit-identical to the
    // serial one; the wall clock is reported for the overlap gain.
    {
        sample::SampleSpec pipeSpec = spec;
        pipeSpec.jobs = 2;
        const auto t1 = std::chrono::steady_clock::now();
        sample::SampledDriver pipeDriver(compiled.binary, cfg, kTraceSeed,
                                         max_insts);
        const sample::SampleReport pipeRep = pipeDriver.run(pipeSpec);
        out.sampledWallMsPipe = wallMsSince(t1);
        out.speedupPipe = out.sampledWallMsPipe > 0.0
                              ? out.fullWallMs / out.sampledWallMsPipe
                              : 0.0;
        out.pipeIdentical =
            pipeRep.estTotalCycles == rep.estTotalCycles &&
            pipeRep.cpiMean == rep.cpiMean &&
            pipeRep.cpiCi95 == rep.cpiCi95 &&
            pipeRep.detailedInsts == rep.detailedInsts &&
            pipeRep.intervals.size() == rep.intervals.size();
    }

    out.estCycles = rep.estTotalCycles;
    out.cpiSampled = rep.cpiMean;
    out.cpiCi95 = rep.cpiCi95;
    out.cpiErr = std::fabs(rep.cpiMean - out.cpiFull) / out.cpiFull;
    out.speedup = out.sampledWallMs > 0.0
                      ? out.fullWallMs / out.sampledWallMs
                      : 0.0;
    out.intervals = rep.intervals.size();
    out.detailedInsts = rep.detailedInsts;
    out.conserved = rep.allConserved;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = 10.0;
    std::uint64_t max_insts = 4'000'000;
    std::string json_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scale")
            scale = std::atof(next());
        else if (arg == "--max-insts")
            max_insts = std::strtoull(next(), nullptr, 10);
        else if (arg == "--json-out")
            json_out = next();
        else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    // gcc1 is the long branchy trace sampling exists for; su2cor's
    // vector phases stress interval placement (its CPI swings between
    // memory-bound and issue-bound stretches). Periods chosen for
    // ~10-16 intervals at the default trace length.
    const std::vector<CaseSpec> cases = {
        {"gcc1", 400'000, 8'000, 2'000},
        {"su2cor", 125'000, 8'000, 2'000},
    };

    std::vector<CaseResult> results;
    for (const auto &cs : cases)
        results.push_back(runCase(cs, scale, max_insts));

    int rc = 0;
    bool anyTarget = false;
    for (const auto &r : results) {
        if (!r.conserved) {
            std::cerr << "FAIL: " << r.benchmark
                      << ": sampled interval violated cycle-stack "
                         "conservation\n";
            rc = 1;
        }
        if (!r.pipeIdentical) {
            std::cerr << "FAIL: " << r.benchmark
                      << ": pipelined (jobs=2) estimate differs from "
                         "the serial one\n";
            rc = 1;
        }
        anyTarget |= r.speedup >= 7.0 && r.cpiErr <= 0.02;
    }
    if (!anyTarget) {
        std::cerr << "FAIL: no benchmark reached 7x speedup with <=2% "
                     "CPI error\n";
        rc = 1;
    }

    std::cout << "Sampled-simulation speedup (dual8/local, scale "
              << scale << ")\n\n";
    TextTable table;
    table.header({"benchmark", "insts", "full_cyc", "est_cyc", "cpi_err",
                  "ci95", "intervals", "det_insts", "full_ms",
                  "sampled_ms", "speedup", "pipe_ms", "pipe_speedup"});
    for (const auto &r : results)
        table.row({r.benchmark, std::to_string(r.totalInsts),
                   std::to_string(r.fullCycles),
                   TextTable::num(r.estCycles, 0),
                   TextTable::num(100.0 * r.cpiErr) + "%",
                   TextTable::num(r.cpiCi95),
                   std::to_string(r.intervals),
                   std::to_string(r.detailedInsts),
                   TextTable::num(r.fullWallMs),
                   TextTable::num(r.sampledWallMs),
                   TextTable::num(r.speedup) + "x",
                   TextTable::num(r.sampledWallMsPipe),
                   TextTable::num(r.speedupPipe) + "x"});
    table.print(std::cout);

    if (!json_out.empty()) {
        std::ofstream out(json_out, std::ios::trunc);
        if (!out) {
            std::cerr << "cannot write " << json_out << "\n";
            return 1;
        }
        out << "{\n  \"benchmark\": \"sampled_speedup\",\n"
            << "  \"scale\": " << scale << ",\n"
            << "  \"max_insts\": " << max_insts << ",\n"
            << "  \"target_met\": " << (anyTarget ? "true" : "false")
            << ",\n  \"rows\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            out << "    {\"benchmark\": \"" << r.benchmark
                << "\", \"total_insts\": " << r.totalInsts
                << ", \"full_cycles\": " << r.fullCycles
                << ", \"est_cycles\": " << r.estCycles
                << ", \"cpi_full\": " << r.cpiFull
                << ", \"cpi_sampled\": " << r.cpiSampled
                << ", \"cpi_ci95\": " << r.cpiCi95
                << ", \"cpi_err\": " << r.cpiErr
                << ", \"intervals\": " << r.intervals
                << ", \"detailed_insts\": " << r.detailedInsts
                << ", \"full_wall_ms\": " << r.fullWallMs
                << ", \"sampled_wall_ms\": " << r.sampledWallMs
                << ", \"speedup\": " << r.speedup
                << ", \"sampled_wall_ms_pipe\": " << r.sampledWallMsPipe
                << ", \"speedup_pipe\": " << r.speedupPipe
                << ", \"pipe_identical\": "
                << (r.pipeIdentical ? "true" : "false")
                << ", \"conserved\": " << (r.conserved ? "true" : "false")
                << "}" << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }
    return rc;
}
