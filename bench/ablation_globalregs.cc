/**
 * @file
 * Ablation: global-register designation. Step 3 of the paper's
 * methodology designates the stack- and global-pointer live ranges as
 * global-register candidates (replicated in every cluster). This
 * ablation compares that policy against making them ordinary local
 * candidates, and against promoting additional hot loop-carried values
 * to global registers (the paper's §6 future-work suggestion).
 *
 * Usage: ablation_globalregs [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "support/table.hh"

namespace
{

using namespace mca;

/** Compile with a tweak applied to the IL, then run dual/local. */
harness::RunStats
runVariant(prog::Program program, std::uint64_t max_insts)
{
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Local;
    copt.numClusters = 2;
    const auto out = compiler::compile(program, copt);
    return harness::simulate(out.binary, out.hardwareMap(2),
                             core::ProcessorConfig::dualCluster8(), 42,
                             max_insts);
}

/** Demote every global candidate to a local candidate. */
prog::Program
demoteGlobals(prog::Program p)
{
    for (auto &v : p.values)
        v.globalCandidate = false;
    return p;
}

/**
 * Promote the hottest written live ranges (by weighted reference count)
 * to global candidates, on top of SP/GP.
 */
prog::Program
promoteHotValues(prog::Program p, unsigned extra)
{
    std::vector<std::pair<double, prog::ValueId>> heat;
    std::vector<double> score(p.values.size(), 0.0);
    for (const auto &fn : p.functions)
        for (const auto &blk : fn.blocks)
            for (const auto &in : blk.instrs) {
                if (in.dest != prog::kNoValue)
                    score[in.dest] += blk.weight;
                for (auto s : in.srcs)
                    if (s != prog::kNoValue)
                        score[s] += blk.weight;
            }
    for (prog::ValueId v = 0; v < p.values.size(); ++v)
        if (!p.values[v].globalCandidate && score[v] > 0)
            heat.push_back({score[v], v});
    std::sort(heat.rbegin(), heat.rend());
    for (unsigned i = 0; i < extra && i < heat.size(); ++i)
        p.values[heat[i].second].globalCandidate = true;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::WorkloadParams wp;
    wp.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const std::uint64_t max_insts =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 100'000;

    std::cout << "Ablation: global-register designation (dual-cluster, "
                 "local scheduler)\n  cell = cycles (dual-distributed "
                 "instruction %)\n\n";

    TextTable table;
    table.header({"benchmark", "no globals", "SP/GP global (paper)",
                  "+2 hot values", "+4 hot values"});
    for (const auto &bench : workloads::allBenchmarks()) {
        const auto base = bench.make(wp);
        auto cell = [&](harness::RunStats s) {
            const double total =
                static_cast<double>(s.distSingle + s.distDual);
            return std::to_string(s.cycles) + " (" +
                   TextTable::num(
                       total ? 100.0 * s.distDual / total : 0.0, 0) +
                   ")";
        };
        table.row({bench.name,
                   cell(runVariant(demoteGlobals(base), max_insts)),
                   cell(runVariant(base, max_insts)),
                   cell(runVariant(promoteHotValues(base, 2), max_insts)),
                   cell(runVariant(promoteHotValues(base, 4),
                                   max_insts))});
    }
    table.print(std::cout);
    return 0;
}
