/**
 * @file
 * Ablation: the local scheduler's imbalance threshold (§3.5 calls it a
 * compile-time constant). Sweeps the threshold and reports the
 * dual-cluster/local percentage and the dual-distribution fraction per
 * benchmark.
 *
 * Usage: ablation_threshold [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "support/table.hh"

int
main(int argc, char **argv)
{
    using namespace mca;

    harness::ExperimentOptions opt;
    opt.workload.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    opt.maxInsts = argc > 2
                       ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                       : 100'000;

    const unsigned thresholds[] = {1, 2, 4, 8, 16, 32};

    std::cout << "Ablation: local-scheduler imbalance threshold\n"
              << "  cell = local speedup% (dual-dist%)\n\n";

    TextTable table;
    std::vector<std::string> hdr = {"benchmark"};
    for (unsigned t : thresholds)
        hdr.push_back("T=" + std::to_string(t));
    table.header(hdr);

    for (const auto &bench : workloads::allBenchmarks()) {
        std::vector<std::string> cells = {bench.name};
        for (unsigned t : thresholds) {
            auto o = opt;
            o.imbalanceThreshold = t;
            const auto row = harness::runTable2Row(bench, o);
            const double total = static_cast<double>(
                row.dualLocal.distSingle + row.dualLocal.distDual);
            const double dual_pct =
                total == 0 ? 0 : 100.0 * row.dualLocal.distDual / total;
            cells.push_back(TextTable::signedPercent(row.pctLocal) +
                            " (" + TextTable::num(dual_pct, 0) + ")");
        }
        table.row(cells);
    }
    table.print(std::cout);
    return 0;
}
