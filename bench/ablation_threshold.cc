/**
 * @file
 * Ablation: the local scheduler's imbalance threshold (§3.5 calls it a
 * compile-time constant). Sweeps the threshold and reports the
 * dual-cluster/local percentage and the dual-distribution fraction per
 * benchmark.
 *
 * Runs through the campaign runner (src/runner): one single-cluster
 * baseline job per benchmark plus one dual/local job per (benchmark,
 * threshold) point — the baseline is simulated once per benchmark
 * instead of once per cell, and the independent points shard across
 * worker threads.
 *
 * Usage: ablation_threshold [scale] [max_insts] [jobs]
 */

#include <cstdlib>
#include <iostream>
#include <thread>

#include "runner/campaign.hh"
#include "support/table.hh"

int
main(int argc, char **argv)
{
    using namespace mca;

    const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const std::uint64_t maxInsts =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 100'000;

    runner::CampaignOptions campaign;
    campaign.jobs = argc > 3
                        ? static_cast<unsigned>(std::atoi(argv[3]))
                        : std::max(1u, std::thread::hardware_concurrency());

    const unsigned thresholds[] = {1, 2, 4, 8, 16, 32};

    // Job list per benchmark: [single-cluster baseline, dual/local @ T...].
    std::vector<runner::JobSpec> specs;
    const auto &benchmarks = runner::validBenchmarks();
    for (const auto &name : benchmarks) {
        runner::JobSpec base;
        base.benchmark = name;
        base.scale = scale;
        base.maxInsts = maxInsts;
        base.traceSeed = 42;
        base.profileSeed = 42;

        runner::JobSpec single = base;
        single.machine = "single8";
        single.scheduler = "native";
        specs.push_back(single);

        for (unsigned t : thresholds) {
            runner::JobSpec dual = base;
            dual.machine = "dual8";
            dual.scheduler = "local";
            dual.threshold = t;
            specs.push_back(dual);
        }
    }

    const auto results = runner::runCampaign(specs, campaign);

    std::cout << "Ablation: local-scheduler imbalance threshold\n"
              << "  cell = local speedup% (dual-dist%)\n\n";

    TextTable table;
    std::vector<std::string> hdr = {"benchmark"};
    for (unsigned t : thresholds)
        hdr.push_back("T=" + std::to_string(t));
    table.header(hdr);

    const std::size_t stride = 1 + std::size(thresholds);
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const auto &single = results[b * stride];
        std::vector<std::string> cells = {benchmarks[b]};
        for (std::size_t ti = 0; ti < std::size(thresholds); ++ti) {
            const auto &dual = results[b * stride + 1 + ti];
            const double pct =
                single.cycles == 0
                    ? 0.0
                    : 100.0 - 100.0 * (static_cast<double>(dual.cycles) /
                                       static_cast<double>(single.cycles));
            const double total =
                static_cast<double>(dual.distSingle + dual.distDual);
            const double dual_pct =
                total == 0 ? 0 : 100.0 * dual.distDual / total;
            cells.push_back(TextTable::signedPercent(pct) + " (" +
                            TextTable::num(dual_pct, 0) + ")");
        }
        table.row(cells);
    }
    table.print(std::cout);
    return 0;
}
