/**
 * @file
 * Memory-hierarchy sensitivity campaign: how the dual-cluster speedup
 * story holds up when the paper's perfect 16-cycle backside is replaced
 * by a real hierarchy. Sweeps a shared-L2 size × memory-latency grid
 * over a memory-light and a memory-heavy Table-2 benchmark, checks
 * cycle-stack conservation on every job, re-runs the paper-mode corner
 * and asserts it is bit-identical (the refactor's equivalence claim,
 * end to end through the campaign runner), and reports how the stall
 * attribution shifts between the dcache_l2 and dcache_mem causes.
 * scripts/ci.sh stores the result as BENCH_mem.json.
 *
 * Usage: sensitivity_memory [--scale S] [--max-insts N] [--jobs N]
 *                           [--json-out FILE]
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/cycle_stack.hh"
#include "runner/campaign.hh"
#include "support/table.hh"

namespace
{

using namespace mca;

bool
conserved(const runner::JobResult &r)
{
    std::uint64_t total = 0;
    for (const auto v : r.stackSlotCycles)
        total += v;
    return total == static_cast<std::uint64_t>(r.stackSlots) * r.cycles;
}

std::uint64_t
stackCause(const runner::JobResult &r, obs::StallCause cause)
{
    return r.stackSlotCycles[static_cast<std::size_t>(cause)];
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = 0.1;
    std::uint64_t max_insts = 60'000;
    unsigned jobs = 4;
    std::string json_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scale")
            scale = std::atof(next());
        else if (arg == "--max-insts")
            max_insts = std::strtoull(next(), nullptr, 10);
        else if (arg == "--jobs")
            jobs = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--json-out")
            json_out = next();
        else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    // compress is branchy/memory-light, su2cor is the vector code whose
    // in-flight misses the paper's inverted MSHR exists for; together
    // they bracket the hierarchy's influence. The l2Kb = 0 column is
    // paper mode, so the grid contains its own baseline.
    runner::CampaignGrid grid;
    grid.benchmarks = {"compress", "su2cor"};
    grid.machines = {"dual8"};
    grid.schedulers = {"local"};
    grid.l2Kbs = {0, 256};
    grid.memLats = {8, 16, 32};
    grid.scale = scale;
    grid.maxInsts = max_insts;

    runner::CampaignOptions options;
    options.jobs = jobs;

    runner::CampaignSummary summary;
    const auto specs = runner::expandGrid(grid);
    const auto results = runner::runCampaign(specs, options, &summary);

    int rc = 0;
    if (summary.ok != results.size()) {
        std::cerr << "FAIL: " << summary.ok << "/" << results.size()
                  << " jobs succeeded\n";
        rc = 1;
    }
    std::uint64_t nonConserved = 0;
    for (const auto &r : results)
        if (r.status == runner::JobStatus::Ok && !conserved(r))
            ++nonConserved;
    if (nonConserved != 0) {
        std::cerr << "FAIL: cycle-stack conservation violated on "
                  << nonConserved << " jobs\n";
        rc = 1;
    }
    // Paper-mode corners must attribute no stall to an L2 that does
    // not exist.
    std::uint64_t paperL2Stall = 0;
    for (const auto &r : results)
        if (r.spec.l2Kb == 0)
            paperL2Stall += stackCause(r, obs::StallCause::DcacheL2);
    if (paperL2Stall != 0) {
        std::cerr << "FAIL: dcache_l2 stall cycles without an L2\n";
        rc = 1;
    }

    // Determinism: the paper-mode corner re-run point by point (fresh
    // state, serial) must reproduce the campaign's results bit for bit.
    bool deterministic = true;
    for (const auto &r : results) {
        if (r.spec.l2Kb != 0 || r.spec.memLat != 16)
            continue;
        const runner::JobResult again = runner::runJob(r.spec);
        deterministic &= again.status == r.status &&
                         again.cycles == r.cycles &&
                         again.retired == r.retired &&
                         again.stackSlotCycles == r.stackSlotCycles;
    }
    if (!deterministic) {
        std::cerr << "FAIL: paper-mode re-run diverged from campaign\n";
        rc = 1;
    }

    std::cout << "Memory-hierarchy sensitivity (dual8/local, scale "
              << scale << ")\n  paper mode = l2_kb 0, mem_lat 16\n\n";
    TextTable table;
    table.header({"benchmark", "l2_kb", "mem_lat", "cycles", "ipc",
                  "dcache_mr", "l2_mr", "stall_l2", "stall_mem"});
    for (const auto &r : results)
        table.row({r.spec.benchmark, std::to_string(r.spec.l2Kb),
                   std::to_string(r.spec.memLat),
                   std::to_string(r.cycles), TextTable::num(r.ipc),
                   TextTable::num(r.dcacheMissRate),
                   TextTable::num(r.l2MissRate),
                   std::to_string(
                       stackCause(r, obs::StallCause::DcacheL2)),
                   std::to_string(
                       stackCause(r, obs::StallCause::DcacheMem))});
    table.print(std::cout);

    if (!json_out.empty()) {
        std::ofstream out(json_out, std::ios::trunc);
        if (!out) {
            std::cerr << "cannot write " << json_out << "\n";
            return 1;
        }
        out << "{\n  \"benchmark\": \"memory_sensitivity\",\n"
            << "  \"scale\": " << scale << ",\n"
            << "  \"max_insts\": " << max_insts << ",\n"
            << "  \"jobs_ok\": " << summary.ok << ",\n"
            << "  \"jobs_total\": " << results.size() << ",\n"
            << "  \"conservation_ok\": "
            << (nonConserved == 0 ? "true" : "false") << ",\n"
            << "  \"paper_mode_deterministic\": "
            << (deterministic ? "true" : "false") << ",\n"
            << "  \"rows\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            out << "    {\"benchmark\": \"" << r.spec.benchmark
                << "\", \"l2_kb\": " << r.spec.l2Kb
                << ", \"mem_lat\": " << r.spec.memLat
                << ", \"cycles\": " << r.cycles
                << ", \"ipc\": " << r.ipc
                << ", \"dcache_miss_rate\": " << r.dcacheMissRate
                << ", \"l2_miss_rate\": " << r.l2MissRate
                << ", \"stall_dcache_l2\": "
                << stackCause(r, obs::StallCause::DcacheL2)
                << ", \"stall_dcache_mem\": "
                << stackCause(r, obs::StallCause::DcacheMem) << "}"
                << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::cout << "wrote " << json_out << "\n";
    }
    return rc;
}
