/**
 * @file
 * Ablation: dispatch-queue sizing. The paper attributes compress's
 * dual-cluster speedup to the *disadvantages* of the single-cluster
 * machine's larger queue (stale branch-predictor state and issue
 * disorder that degrades the data cache). This sweep runs the
 * single-cluster machine with varying queue sizes to expose that
 * effect directly.
 *
 * Usage: ablation_queues [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "support/table.hh"

int
main(int argc, char **argv)
{
    using namespace mca;

    workloads::WorkloadParams wp;
    wp.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const std::uint64_t max_insts =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 100'000;

    std::cout << "Ablation: single-cluster dispatch-queue size\n"
              << "  cell = cycles / bpred accuracy / dcache miss% / "
                 "issue disorder(k)\n\n";

    const unsigned sizes[] = {16, 32, 64, 128, 256};

    TextTable table;
    std::vector<std::string> hdr = {"benchmark"};
    for (unsigned s : sizes)
        hdr.push_back("Q=" + std::to_string(s));
    table.header(hdr);

    for (const auto &bench : workloads::allBenchmarks()) {
        const auto program = bench.make(wp);
        compiler::CompileOptions copt;
        copt.scheduler = compiler::SchedulerKind::Native;
        copt.numClusters = 1;
        const auto out = compiler::compile(program, copt);

        std::vector<std::string> cells = {bench.name};
        for (unsigned s : sizes) {
            auto cfg = core::ProcessorConfig::singleCluster8();
            cfg.dispatchQueueEntries = s;
            cfg.regMap = out.hardwareMap(1);
            StatGroup stats(bench.name);
            exec::ProgramTrace trace(out.binary, 42, max_insts);
            core::Processor cpu(cfg, trace, stats);
            const auto result = cpu.run(50'000'000);
            const auto dacc = stats.counterAt("dcache.accesses").value();
            const auto dmiss = stats.counterAt("dcache.misses").value();
            cells.push_back(
                std::to_string(result.cycles) + " / " +
                TextTable::num(stats.formulaAt("bpred.accuracy"), 3) +
                " / " +
                TextTable::num(dacc ? 100.0 * dmiss / dacc : 0.0, 1) +
                " / " +
                std::to_string(
                    stats.counterAt("issue.disorder").value() / 1000));
        }
        table.row(cells);
    }
    table.print(std::cout);
    return 0;
}
