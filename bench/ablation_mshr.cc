/**
 * @file
 * Ablation: miss-handling organization. The paper assumes an inverted
 * MSHR so the data cache "imposes no restriction on the number of
 * in-flight cache misses" — a design choice from the authors' own
 * ISCA'94 complexity/performance study. This sweep replaces it with an
 * explicit MSHR file of N entries and shows how the memory-level
 * parallelism the vector codes depend on collapses as N shrinks.
 *
 * Usage: ablation_mshr [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "support/table.hh"

int
main(int argc, char **argv)
{
    using namespace mca;

    workloads::WorkloadParams wp;
    wp.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const std::uint64_t max_insts =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 100'000;

    std::cout << "Ablation: data-cache miss handling (single-cluster "
                 "8-way machine)\n  cell = cycles (MSHR reject polls)\n\n";

    const unsigned entries[] = {1, 2, 4, 8, 16};

    TextTable table;
    std::vector<std::string> hdr = {"benchmark", "inverted (paper)"};
    for (unsigned e : entries)
        hdr.push_back("N=" + std::to_string(e));
    table.header(hdr);

    for (const auto &bench : workloads::allBenchmarks()) {
        const auto program = bench.make(wp);
        compiler::CompileOptions copt;
        copt.scheduler = compiler::SchedulerKind::Native;
        copt.numClusters = 1;
        const auto out = compiler::compile(program, copt);

        auto run = [&](unsigned mshr) {
            auto cfg = core::ProcessorConfig::singleCluster8();
            cfg.memory.dcache.mshrEntries = mshr;
            cfg.regMap = out.hardwareMap(1);
            StatGroup stats(bench.name);
            exec::ProgramTrace trace(out.binary, 42, max_insts);
            core::Processor cpu(cfg, trace, stats);
            const auto r = cpu.run(50'000'000);
            return std::to_string(r.cycles) + " (" +
                   std::to_string(
                       stats.counterAt("dcache.mshr_reject_polls")
                           .value()) +
                   ")";
        };

        std::vector<std::string> cells = {bench.name, run(0)};
        for (unsigned e : entries)
            cells.push_back(run(e));
        table.row(cells);
    }
    table.print(std::cout);
    return 0;
}
