/**
 * @file
 * Reproduces the paper's Table 1: instruction-issue rules for the
 * single-cluster (row 1) and dual-cluster-per-cluster (row 2) machines,
 * and functional-unit latencies (row 3). The table is printed from the
 * live configuration objects, then each cap is verified by issuing a
 * synthetic burst of that class on the simulator and measuring the
 * per-cycle issue rate.
 */

#include <iostream>
#include <vector>

#include "core/processor.hh"
#include "exec/trace.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace
{

using namespace mca;
using isa::fpReg;
using isa::intReg;
using isa::Op;

/** Measure the peak per-cycle issue rate for a burst of one op kind. */
unsigned
measurePeakIssue(const core::ProcessorConfig &cfg, Op op)
{
    std::vector<exec::DynInst> v;
    for (unsigned i = 0; i < 24; ++i) {
        exec::DynInst di;
        const bool fp = isa::opClass(op) == isa::OpClass::FpDiv ||
                        isa::opClass(op) == isa::OpClass::FpOther;
        const isa::RegId dest = fp ? fpReg(2 * (i % 8))
                                   : intReg(2 * (i % 8));
        switch (isa::opClass(op)) {
          case isa::OpClass::LoadStore:
            di.mi = isa::makeLoad(Op::Ldl, dest, intReg(0), 0);
            di.effAddr = 0x1000 + 8 * i;
            break;
          case isa::OpClass::CtrlFlow:
            di.mi = isa::makeBranch(Op::Bne, intReg(0));
            di.taken = false;
            break;
          default:
            di.mi = fp ? isa::makeRRR(op, dest, fpReg(0), fpReg(0))
                       : isa::makeRRR(op, dest, intReg(0), intReg(0));
        }
        // One icache block so fetch is not the limiter.
        di.pc = 0x1000 + 4 * (i % 8);
        v.push_back(di);
    }
    StatGroup stats("t1");
    exec::VectorTrace trace(exec::VectorTrace::normalize(std::move(v)));
    core::Processor cpu(cfg, trace, stats);
    core::TimelineRecorder rec;
    cpu.attachTimeline(&rec);
    cpu.run(100'000);
    std::map<Cycle, unsigned> per_cycle;
    for (const auto &r : rec.records())
        if (r.event == core::TimelineEvent::MasterIssued &&
            r.cluster == 0)
            ++per_cycle[r.cycle];
    unsigned peak = 0;
    for (const auto &[c, n] : per_cycle)
        peak = std::max(peak, n);
    return peak;
}

std::vector<std::string>
ruleRow(const std::string &label, const isa::IssueRules &r)
{
    return {label,
            std::to_string(r.all),
            std::to_string(r.intMul),
            std::to_string(r.intOther),
            std::to_string(r.fpAll),
            std::to_string(r.fpDiv),
            std::to_string(r.fpOther),
            std::to_string(r.loadStore),
            std::to_string(r.ctrlFlow)};
}

} // namespace

int
main()
{
    using namespace mca;

    std::cout << "Table 1: instruction-issue rules and functional-unit "
                 "latencies\n\n";

    TextTable table;
    table.header({"row", "all", "int mul", "int other", "fp all",
                  "fp div", "fp other", "ld/st", "ctrl"});
    table.row(ruleRow("#1 issued/cycle, single",
                      isa::IssueRules::singleCluster8Way()));
    table.row(ruleRow("#2 issued/cycle, dual per cluster",
                      isa::IssueRules::dualClusterPerCluster()));
    table.row({"#3 latency (cycles)", "-",
               std::to_string(isa::opLatency(isa::Op::Mull)),
               std::to_string(isa::opLatency(isa::Op::Add)), "-",
               std::to_string(isa::opLatency(isa::Op::DivF)) + "/" +
                   std::to_string(isa::opLatency(isa::Op::DivD)),
               std::to_string(isa::opLatency(isa::Op::AddF)),
               std::to_string(isa::opLatency(isa::Op::Stl)) + "+1slot",
               std::to_string(isa::opLatency(isa::Op::Br))});
    table.print(std::cout);

    std::cout << "\nNotes: all units fully pipelined except the "
                 "floating-point divider\n(8 cycles for 32-bit divides, "
                 "16 for 64-bit); loads have a single\nload-delay slot "
                 "(modeled as latency 2).\n";

    std::cout << "\nVerification: measured peak issue/cycle on the live "
                 "simulator\n";
    TextTable verify;
    verify.header({"machine", "int other", "int mul", "fp other",
                   "fp div", "loads"});
    struct MachineRow
    {
        const char *name;
        core::ProcessorConfig cfg;
    };
    const MachineRow machines[] = {
        {"single 8-way", core::ProcessorConfig::singleCluster8()},
        {"dual 8-way (one cluster)", core::ProcessorConfig::dualCluster8()},
    };
    for (const auto &m : machines) {
        verify.row({m.name,
                    std::to_string(measurePeakIssue(m.cfg, Op::Add)),
                    std::to_string(measurePeakIssue(m.cfg, Op::Mull)),
                    std::to_string(measurePeakIssue(m.cfg, Op::AddF)),
                    std::to_string(measurePeakIssue(m.cfg, Op::DivF)),
                    std::to_string(measurePeakIssue(m.cfg, Op::Ldl))});
    }
    verify.print(std::cout);
    return 0;
}
