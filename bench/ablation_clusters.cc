/**
 * @file
 * Cluster-count x partitioner sweep. The paper analyses two clusters;
 * the architecture generalizes (paper §6 future work), and this
 * campaign splits the same 8-way resource pool 1, 2, 4, and 8 ways and
 * compares every partition pass at each width: the paper's local
 * scheduler, the round-robin strawman, and the multilevel graph
 * partitioner (docs/compiler.md).
 *
 * Quality gates recorded in the JSON (scripts/ci.sh stores it as
 * BENCH_partition.json; scripts/perf_gate.py hard-fails on them):
 *   - ml_cut_le_roundrobin: the multilevel partitioner's affinity cut
 *     is no worse than round-robin's on every benchmark x machine.
 *   - ml_ipc_ge_local_quad8 / _octa8: multilevel matches or beats the
 *     local scheduler's geomean IPC at 4 and at 8 clusters.
 *
 * A second, informational sweep crosses the three partitioners with
 * the shared-L2 axis (quad8, l2_kb in {0, 256}) and lands in the JSON
 * as `l2_cross_rows` — it does not participate in the gates above, it
 * records how partition quality interacts with the memory hierarchy.
 *
 * Usage: ablation_clusters [--scale S] [--max-insts N] [--jobs N]
 *                          [--json-out FILE]
 */

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "runner/campaign.hh"
#include "support/table.hh"

namespace
{

using namespace mca;

unsigned
clustersOf(const std::string &machine)
{
    if (machine == "single8")
        return 1;
    if (machine == "dual8")
        return 2;
    if (machine == "quad8")
        return 4;
    return 8; // octa8
}

/** Geometric mean of IPC(multilevel)/IPC(local) over benchmarks. */
double
ipcRatioGeomean(const std::vector<runner::JobResult> &results,
                const std::string &machine)
{
    std::map<std::string, double> local, ml;
    for (const auto &r : results) {
        if (r.spec.machine != machine ||
            r.status != runner::JobStatus::Ok)
            continue;
        if (r.spec.scheduler == "local")
            local[r.spec.benchmark] = r.ipc;
        else if (r.spec.scheduler == "multilevel")
            ml[r.spec.benchmark] = r.ipc;
    }
    double logSum = 0.0;
    std::size_t n = 0;
    for (const auto &[bench, ipc] : local) {
        const auto it = ml.find(bench);
        if (it == ml.end() || ipc <= 0.0 || it->second <= 0.0)
            continue;
        logSum += std::log(it->second / ipc);
        ++n;
    }
    return n == 0 ? 0.0 : std::exp(logSum / static_cast<double>(n));
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = 0.2;
    std::uint64_t max_insts = 100'000;
    unsigned jobs = 4;
    std::string json_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scale")
            scale = std::atof(next());
        else if (arg == "--max-insts")
            max_insts = std::strtoull(next(), nullptr, 10);
        else if (arg == "--jobs")
            jobs = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--json-out")
            json_out = next();
        else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    // Two sub-grids: the unpartitioned single-cluster baseline, and
    // the partitioner comparison at every multi-cluster width.
    runner::CampaignGrid base;
    base.benchmarks = runner::validBenchmarks();
    base.machines = {"single8"};
    base.schedulers = {"native"};
    base.scale = scale;
    base.maxInsts = max_insts;

    runner::CampaignGrid sweep = base;
    sweep.machines = {"dual8", "quad8", "octa8"};
    sweep.schedulers = {"local", "roundrobin", "multilevel"};

    runner::CampaignOptions options;
    options.jobs = jobs;

    auto specs = runner::expandGrid(base);
    const auto sweepSpecs = runner::expandGrid(sweep);
    specs.insert(specs.end(), sweepSpecs.begin(), sweepSpecs.end());

    runner::CampaignSummary summary;
    const auto results = runner::runCampaign(specs, options, &summary);

    // Informational partitioner x L2 cross sweep (gates are computed
    // over the main sweep only).
    runner::CampaignGrid cross = base;
    cross.machines = {"quad8"};
    cross.schedulers = {"local", "roundrobin", "multilevel"};
    cross.l2Kbs = {0, 256};
    const auto crossSpecs = runner::expandGrid(cross);
    runner::CampaignSummary crossSummary;
    const auto crossResults =
        runner::runCampaign(crossSpecs, options, &crossSummary);

    int rc = 0;
    if (summary.ok != results.size()) {
        std::cerr << "FAIL: " << summary.ok << "/" << results.size()
                  << " jobs succeeded\n";
        rc = 1;
    }
    if (crossSummary.ok != crossResults.size()) {
        std::cerr << "FAIL: L2 cross sweep: " << crossSummary.ok << "/"
                  << crossResults.size() << " jobs succeeded\n";
        rc = 1;
    }

    // Gate 1: multilevel cut <= roundrobin cut, per benchmark x machine.
    // Both score against the same affinity graph, so the comparison is
    // apples to apples.
    bool cutOk = true;
    std::map<std::pair<std::string, std::string>, std::uint64_t> rrCut,
        mlCut;
    for (const auto &r : results) {
        if (r.status != runner::JobStatus::Ok)
            continue;
        const auto key = std::make_pair(r.spec.benchmark, r.spec.machine);
        if (r.spec.scheduler == "roundrobin")
            rrCut[key] = r.partitionCut;
        else if (r.spec.scheduler == "multilevel")
            mlCut[key] = r.partitionCut;
    }
    for (const auto &[key, cut] : mlCut) {
        const auto it = rrCut.find(key);
        if (it == rrCut.end())
            continue;
        if (cut > it->second) {
            std::cerr << "FAIL: multilevel cut " << cut << " > roundrobin "
                      << it->second << " on " << key.first << "/"
                      << key.second << "\n";
            cutOk = false;
        }
    }
    if (!cutOk)
        rc = 1;

    // Gate 2: multilevel geomean IPC >= local at 4 and 8 clusters
    // (small epsilon absorbs last-digit float formatting).
    const double quadRatio = ipcRatioGeomean(results, "quad8");
    const double octaRatio = ipcRatioGeomean(results, "octa8");
    const bool quadOk = quadRatio >= 1.0 - 1e-9;
    const bool octaOk = octaRatio >= 1.0 - 1e-9;
    if (!quadOk || !octaOk) {
        std::cerr << "FAIL: multilevel/local IPC geomean quad8 "
                  << quadRatio << ", octa8 " << octaRatio << "\n";
        rc = 1;
    }

    std::cout << "Cluster-count x partitioner sweep (scale " << scale
              << ", " << max_insts << " insts)\n"
              << "  cut = affinity edge weight split across clusters; "
                 "balance = heaviest/ideal\n\n";
    TextTable table;
    table.header({"benchmark", "machine", "N", "partitioner", "cycles",
                  "ipc", "cut", "balance"});
    for (const auto &r : results)
        table.row({r.spec.benchmark, r.spec.machine,
                   std::to_string(clustersOf(r.spec.machine)),
                   r.spec.scheduler, std::to_string(r.cycles),
                   TextTable::num(r.ipc),
                   std::to_string(r.partitionCut),
                   TextTable::num(r.partitionBalance)});
    table.print(std::cout);
    std::cout << "\nmultilevel/local IPC geomean: quad8 "
              << TextTable::num(quadRatio) << ", octa8 "
              << TextTable::num(octaRatio) << "\n";

    std::cout << "\nPartitioner x L2 cross sweep (quad8)\n";
    TextTable crossTable;
    crossTable.header({"benchmark", "partitioner", "l2_kb", "cycles",
                       "ipc", "l2_miss_rate", "cut"});
    for (const auto &r : crossResults)
        crossTable.row({r.spec.benchmark, r.spec.scheduler,
                        std::to_string(r.spec.l2Kb),
                        std::to_string(r.cycles), TextTable::num(r.ipc),
                        TextTable::num(r.l2MissRate),
                        std::to_string(r.partitionCut)});
    crossTable.print(std::cout);

    if (!json_out.empty()) {
        std::ofstream out(json_out, std::ios::trunc);
        if (!out) {
            std::cerr << "cannot write " << json_out << "\n";
            return 1;
        }
        out << "{\n  \"benchmark\": \"partition_quality\",\n"
            << "  \"scale\": " << scale << ",\n"
            << "  \"max_insts\": " << max_insts << ",\n"
            << "  \"jobs_ok\": " << summary.ok << ",\n"
            << "  \"jobs_total\": " << results.size() << ",\n"
            << "  \"ml_cut_le_roundrobin\": "
            << (cutOk ? "true" : "false") << ",\n"
            << "  \"ml_ipc_ge_local_quad8\": "
            << (quadOk ? "true" : "false") << ",\n"
            << "  \"ml_ipc_ge_local_octa8\": "
            << (octaOk ? "true" : "false") << ",\n"
            << "  \"ml_local_ipc_geomean_quad8\": " << quadRatio << ",\n"
            << "  \"ml_local_ipc_geomean_octa8\": " << octaRatio << ",\n"
            << "  \"rows\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            out << "    {\"benchmark\": \"" << r.spec.benchmark
                << "\", \"machine\": \"" << r.spec.machine
                << "\", \"clusters\": " << clustersOf(r.spec.machine)
                << ", \"scheduler\": \"" << r.spec.scheduler
                << "\", \"cycles\": " << r.cycles
                << ", \"ipc\": " << r.ipc
                << ", \"partition_cut\": " << r.partitionCut
                << ", \"partition_balance\": " << r.partitionBalance
                << "}" << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ],\n  \"l2_cross_rows\": [\n";
        for (std::size_t i = 0; i < crossResults.size(); ++i) {
            const auto &r = crossResults[i];
            out << "    {\"benchmark\": \"" << r.spec.benchmark
                << "\", \"scheduler\": \"" << r.spec.scheduler
                << "\", \"l2_kb\": " << r.spec.l2Kb
                << ", \"cycles\": " << r.cycles
                << ", \"ipc\": " << r.ipc
                << ", \"l2_miss_rate\": " << r.l2MissRate
                << ", \"partition_cut\": " << r.partitionCut
                << "}" << (i + 1 < crossResults.size() ? "," : "")
                << "\n";
        }
        out << "  ]\n}\n";
        std::cout << "wrote " << json_out << "\n";
    }
    return rc;
}
