/**
 * @file
 * Ablation: cluster count. The paper analyses two clusters; the
 * architecture generalizes (registers are assigned mod N), and this
 * sweep shows how cycle counts scale when the same 8-way resource pool
 * is split 1, 2, or 4 ways (paper §6 future work).
 *
 * Usage: ablation_clusters [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "support/table.hh"

int
main(int argc, char **argv)
{
    using namespace mca;

    workloads::WorkloadParams wp;
    wp.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const std::uint64_t max_insts =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 100'000;

    std::cout << "Ablation: cluster count (8-way resource pool split N "
                 "ways,\nnative binary; cell = cycles, dual-dist %)\n\n";

    TextTable table;
    table.header({"benchmark", "1 cluster", "2 clusters", "4 clusters"});

    for (const auto &bench : workloads::allBenchmarks()) {
        const auto program = bench.make(wp);
        compiler::CompileOptions copt;
        copt.scheduler = compiler::SchedulerKind::Native;
        copt.numClusters = 1;
        const auto out = compiler::compile(program, copt);

        std::vector<std::string> cells = {bench.name};
        for (unsigned n : {1u, 2u, 4u}) {
            const auto cfg = core::ProcessorConfig::multiCluster8(n);
            const auto s = harness::simulate(
                out.binary, out.hardwareMap(n), cfg, 42, max_insts);
            const double total =
                static_cast<double>(s.distSingle + s.distDual);
            cells.push_back(
                std::to_string(s.cycles) + " (" +
                TextTable::num(total ? 100.0 * s.distDual / total : 0.0,
                               0) +
                ")");
        }
        table.row(cells);
    }
    table.print(std::cout);
    return 0;
}
