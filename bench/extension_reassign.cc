/**
 * @file
 * Extension bench (paper §2.1 + §6): dynamic reassignment of the
 * architectural registers.
 *
 * The paper's machine assumes a static register-to-cluster map but
 * notes that "a simple hardware mechanism exists to support the dynamic
 * reassignment of the architectural registers", and §6 proposes letting
 * the compiler "directly specify the architectural-register-to-cluster
 * assignment" per program phase. This bench demonstrates the mechanism
 * on a two-phase workload whose phases have opposite register
 * affinities: a static map must dual-distribute one phase; a remap
 * point between the phases (drain + architectural-state transfer)
 * removes the transfers at a one-time cost.
 *
 * Usage: extension_reassign [iters-per-phase]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/processor.hh"
#include "exec/trace.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace
{

using namespace mca;
using isa::intReg;
using isa::Op;

/**
 * Two phases of register-blocked integer work:
 *  - phase A uses pairs (r2,r4 -> r6): even registers, cluster 0;
 *  - phase B uses pairs (r3,r5 -> r7): odd registers — cluster 1 under
 *    the default map, but phase B's *consumers* live on r2/r6, so
 *    every other op crosses clusters unless r3/r5 are re-homed.
 */
std::vector<exec::DynInst>
makePhases(unsigned iters, bool with_remap)
{
    std::vector<exec::DynInst> v;
    auto add = [&](unsigned d, unsigned a, unsigned b) {
        exec::DynInst di;
        di.mi = isa::makeRRR(Op::Add, intReg(d), intReg(a), intReg(b));
        v.push_back(di);
    };
    // Phase A: pure cluster-0 work.
    for (unsigned i = 0; i < iters; ++i) {
        add(6, 2, 4);
        add(8, 6, 2);
        add(10, 8, 4);
    }
    // Phase B: a loop-carried chain ping-ponging between r3/r5 (odd)
    // and r6 (even). Under the static map every link hops clusters and
    // the forwarding serialization lands on the critical path; with
    // r3/r5 re-homed the chain stays inside cluster 0.
    const std::size_t phase_b_start = v.size();
    for (unsigned i = 0; i < iters; ++i) {
        add(3, 3, 6);
        add(6, 6, 3);
        add(5, 5, 6);
    }
    if (with_remap)
        v[phase_b_start].remapIndex = 0;
    // Each phase is a loop over a small code footprint, so fetch is
    // icache-resident (otherwise cold fills dominate everything).
    for (std::size_t i = 0; i < v.size(); ++i) {
        const bool in_b = i >= phase_b_start;
        const Addr base = in_b ? 0x2000 : 0x1000;
        const std::size_t off = in_b ? i - phase_b_start : i;
        v[i].pc = base + 4 * static_cast<Addr>(off % 96);
    }
    return v;
}

struct Run
{
    Cycle cycles;
    std::uint64_t duals;
    std::uint64_t forwards;
    std::uint64_t remaps;
    std::uint64_t moved;
};

Run
simulate(unsigned iters, bool with_remap)
{
    core::ProcessorConfig cfg = core::ProcessorConfig::dualCluster8();
    isa::RegisterMap phase_b_map(2);
    phase_b_map.setHome(intReg(3), 0);
    phase_b_map.setHome(intReg(5), 0);
    cfg.mapSchedule = {phase_b_map};

    exec::VectorTrace trace(
        exec::VectorTrace::normalize(makePhases(iters, with_remap)));
    StatGroup stats("reassign");
    core::Processor cpu(cfg, trace, stats);
    const auto result = cpu.run();
    return Run{result.cycles,
               stats.counterAt("dist.dual").value(),
               stats.counterAt("dist.operand_forwards").value() +
                   stats.counterAt("dist.result_forwards").value(),
               stats.counterAt("remap.events").value(),
               stats.counterAt("remap.regs_moved").value()};
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned iters =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2000;

    std::cout << "Extension: dynamic register reassignment (paper §6)\n"
              << "  two-phase workload, " << iters
              << " iterations per phase\n\n";

    const Run fixed = simulate(iters, false);
    const Run remap = simulate(iters, true);

    TextTable table;
    table.header({"configuration", "cycles", "dual-dist", "transfers",
                  "remaps", "regs moved"});
    table.row({"static even/odd map", std::to_string(fixed.cycles),
               std::to_string(fixed.duals),
               std::to_string(fixed.forwards), "0", "0"});
    table.row({"remap before phase B", std::to_string(remap.cycles),
               std::to_string(remap.duals),
               std::to_string(remap.forwards),
               std::to_string(remap.remaps),
               std::to_string(remap.moved)});
    table.print(std::cout);

    const double pct = 100.0 - 100.0 * static_cast<double>(remap.cycles) /
                                   static_cast<double>(fixed.cycles);
    std::cout << "\nremapping "
              << (pct >= 0 ? "saves " : "costs ")
              << TextTable::num(pct >= 0 ? pct : -pct, 1)
              << "% of cycles on this workload (one drain + "
              << remap.moved << " register transfers buys zero "
              << "cross-cluster traffic in phase B)\n";
    return 0;
}
