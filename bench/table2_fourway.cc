/**
 * @file
 * The 4-way companion to Table 2. The paper evaluated both 4-way and
 * 8-way machines and reported the 8-way numbers ("these more clearly
 * show the important trends"); this bench regenerates the 4-way view:
 * a 4-way single cluster against a dual-cluster machine built from two
 * 2-way clusters.
 *
 * Usage: table2_fourway [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "support/table.hh"

int
main(int argc, char **argv)
{
    using namespace mca;

    harness::ExperimentOptions opt;
    opt.workload.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    opt.maxInsts = argc > 2
                       ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                       : 100'000;
    opt.eightWay = false;

    std::cout << "Table 2 (4-way machines): dual-cluster speedup "
                 "ratios\n\n";

    TextTable table;
    table.header({"benchmark", "none", "local", "single cycles",
                  "dual-none cycles", "dual-local cycles"});
    for (const auto &bench : workloads::allBenchmarks()) {
        const auto row = harness::runTable2Row(bench, opt);
        table.row({row.benchmark, TextTable::signedPercent(row.pctNone),
                   TextTable::signedPercent(row.pctLocal),
                   std::to_string(row.single.cycles),
                   std::to_string(row.dualNone.cycles),
                   std::to_string(row.dualLocal.cycles)});
    }
    table.print(std::cout);
    std::cout << "\n(The paper reports only the 8-way data; this view "
                 "is provided for\ncompleteness — the trends are less "
                 "pronounced, as the paper notes.)\n";
    return 0;
}
