/**
 * @file
 * Reproduces the paper's Table 2: percentage speedup/slowdown of the
 * dual-cluster processor relative to the single-cluster processor, for
 * the native binary ("none") and the binary rescheduled with the local
 * scheduler ("local").
 *
 * A negative entry means the dual-cluster machine needs that many
 * percent more cycles (a slowdown); positive means fewer (a speedup).
 * Absolute values differ from the paper (synthetic workloads stand in
 * for SPEC92; see DESIGN.md), but the shape should match: a broad
 * slowdown band for unscheduled binaries, substantial recovery with the
 * local scheduler, compress crossing into speedup, and ora degrading
 * under rescheduling via replay exceptions.
 *
 * The experiment runs through the campaign runner (src/runner): the 18
 * compile-and-simulate jobs (6 benchmarks × {single/native, dual/native,
 * dual/local}) are independent and shard across worker threads. Results
 * are bit-identical at any job width (see docs/campaigns.md).
 *
 * Usage: table2_speedup [scale] [max_insts] [jobs]
 *   jobs defaults to the hardware thread count.
 */

#include <cstdlib>
#include <iostream>
#include <thread>

#include "runner/table2.hh"
#include "support/table.hh"

int
main(int argc, char **argv)
{
    using namespace mca;

    harness::ExperimentOptions opt;
    opt.workload.scale = argc > 1 ? std::atof(argv[1]) : 1.0;
    opt.maxInsts = argc > 2
                       ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                       : 400'000;

    runner::CampaignOptions campaign;
    campaign.jobs = argc > 3
                        ? static_cast<unsigned>(std::atoi(argv[3]))
                        : std::max(1u, std::thread::hardware_concurrency());

    std::cout << "Table 2: dual-cluster speedup ratios, 8-way machines\n"
              << "  100 - 100*(cycles_dual / cycles_single); "
              << "positive = speedup\n"
              << "  workload scale " << opt.workload.scale
              << ", trace cap " << opt.maxInsts << " instructions, "
              << campaign.jobs << " parallel jobs\n\n";

    const auto result = runner::runTable2Campaign(opt, campaign);

    TextTable table;
    table.header({"benchmark", "none (paper)", "none (ours)",
                  "local (paper)", "local (ours)", "single cycles",
                  "dual-none cycles", "dual-local cycles", "replays(l)"});

    const auto &paper = harness::paperTable2();
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
        const auto &row = result.rows[i];
        table.row({row.benchmark,
                   TextTable::signedPercent(paper[i].pctNone),
                   TextTable::signedPercent(row.pctNone),
                   TextTable::signedPercent(paper[i].pctLocal),
                   TextTable::signedPercent(row.pctLocal),
                   std::to_string(row.single.cycles),
                   std::to_string(row.dualNone.cycles),
                   std::to_string(row.dualLocal.cycles),
                   std::to_string(row.dualLocal.replays)});
    }
    table.print(std::cout);

    std::cout << "\nDiagnostics:\n";
    TextTable diag;
    diag.header({"benchmark", "dual% n/l", "fwd op+res n", "fwd op+res l",
                 "spill ld/st", "bpred s/n/l", "dmiss% s/n/l",
                 "disorder s/l"});
    for (const auto &row : result.rows) {
        auto dualPct = [](const harness::RunStats &s) {
            const double total =
                static_cast<double>(s.distSingle + s.distDual);
            return total == 0 ? 0.0 : 100.0 * s.distDual / total;
        };
        diag.row({row.benchmark,
                  TextTable::num(dualPct(row.dualNone), 0) + "/" +
                      TextTable::num(dualPct(row.dualLocal), 0),
                  std::to_string(row.dualNone.operandForwards +
                                 row.dualNone.resultForwards),
                  std::to_string(row.dualLocal.operandForwards +
                                 row.dualLocal.resultForwards),
                  std::to_string(row.spillLoadsLocal) + "/" +
                      std::to_string(row.spillStoresLocal),
                  TextTable::num(row.single.bpredAccuracy, 3) + "/" +
                      TextTable::num(row.dualNone.bpredAccuracy, 3) +
                      "/" +
                      TextTable::num(row.dualLocal.bpredAccuracy, 3),
                  TextTable::num(100 * row.single.dcacheMissRate, 1) +
                      "/" +
                      TextTable::num(100 * row.dualNone.dcacheMissRate,
                                     1) +
                      "/" +
                      TextTable::num(100 * row.dualLocal.dcacheMissRate,
                                     1),
                  std::to_string(row.single.issueDisorder / 1000) +
                      "k/" +
                      std::to_string(row.dualLocal.issueDisorder /
                                     1000) +
                      "k"});
    }
    diag.print(std::cout);
    return 0;
}
