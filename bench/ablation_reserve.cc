/**
 * @file
 * Ablation: deadlock handling policy. The paper's machine resolves
 * transfer-buffer deadlocks with instruction-replay exceptions (squash
 * and refetch). An alternative the paper does not adopt is to *prevent*
 * the deadlock: reserve the last entry of each transfer buffer for the
 * globally oldest instruction, which removes the §2.1 deadlock class
 * on two-cluster machines.
 *
 * This bench compares both policies on the most replay-prone
 * configuration we have: the six benchmarks compiled with the §6
 * superblock pass (which splits serial chains across clusters and
 * provokes ora's replay pathology).
 *
 * Usage: ablation_reserve [scale] [max_insts]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/pipeline.hh"
#include "harness/experiment.hh"
#include "support/table.hh"

namespace
{

using namespace mca;

struct Cell
{
    Cycle cycles;
    std::uint64_t replays;
};

Cell
run(const prog::MachProgram &binary, const isa::RegisterMap &map,
    bool reserve, std::uint64_t max_insts)
{
    auto cfg = core::ProcessorConfig::dualCluster8();
    cfg.regMap = map;
    cfg.reserveOldestEntry = reserve;
    StatGroup stats("r");
    exec::ProgramTrace trace(binary, 42, max_insts);
    core::Processor cpu(cfg, trace, stats);
    const auto result = cpu.run(100'000'000);
    return Cell{result.cycles,
                stats.counterAt("replay.exceptions").value()};
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::WorkloadParams wp;
    wp.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const std::uint64_t max_insts =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 100'000;

    std::cout << "Ablation: deadlock policy — replay exceptions (paper) "
                 "vs an\noldest-reserved transfer-buffer entry "
                 "(prevention)\n  dual-cluster machine, local scheduler "
                 "+ superblocks; cell = cycles (replays)\n\n";

    TextTable table;
    table.header({"benchmark", "replay on deadlock (paper)",
                  "reserved entry (prevention)"});
    for (const auto &bench : workloads::allBenchmarks()) {
        const auto program = bench.make(wp);
        compiler::CompileOptions copt;
        copt.scheduler = compiler::SchedulerKind::Local;
        copt.numClusters = 2;
        copt.superblocks = true;
        const auto out = compiler::compile(program, copt);
        const auto paper =
            run(out.binary, out.hardwareMap(2), false, max_insts);
        const auto reserved =
            run(out.binary, out.hardwareMap(2), true, max_insts);
        table.row({bench.name,
                   std::to_string(paper.cycles) + " (" +
                       std::to_string(paper.replays) + ")",
                   std::to_string(reserved.cycles) + " (" +
                       std::to_string(reserved.replays) + ")"});
    }
    table.print(std::cout);
    std::cout << "\n(Reservation removes the deadlocks outright; the "
                 "paper's replay policy\npays squash-and-refetch each "
                 "time — the cost ora's rescheduled binary\nexposes.)\n";
    return 0;
}
