/**
 * @file
 * Google-benchmark microbenchmarks of the reproduction's own
 * infrastructure: simulator throughput (simulated instructions per
 * wall-clock second), predictor and cache throughput, trace-generation
 * speed, and compilation cost. These guard against performance
 * regressions in the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "bpred/predictors.hh"
#include "compiler/pipeline.hh"
#include "exec/trace.hh"
#include "harness/experiment.hh"
#include "mem/cache.hh"
#include "support/random.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

void
BM_SimulatorSingleCluster(benchmark::State &state)
{
    const auto program =
        workloads::makeCompress(workloads::WorkloadParams{0.2});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Native;
    copt.numClusters = 1;
    const auto out = compiler::compile(program, copt);

    std::uint64_t insts = 0;
    for (auto _ : state) {
        StatGroup stats("bm");
        exec::ProgramTrace trace(out.binary, 42, 50'000);
        core::Processor cpu(core::ProcessorConfig::singleCluster8(),
                            trace, stats);
        const auto r = cpu.run();
        insts += r.instructions;
    }
    state.counters["sim_inst_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorSingleCluster)->Unit(benchmark::kMillisecond);

void
BM_SimulatorDualCluster(benchmark::State &state)
{
    const auto program =
        workloads::makeCompress(workloads::WorkloadParams{0.2});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Local;
    copt.numClusters = 2;
    const auto out = compiler::compile(program, copt);

    std::uint64_t insts = 0;
    for (auto _ : state) {
        StatGroup stats("bm");
        exec::ProgramTrace trace(out.binary, 42, 50'000);
        auto cfg = core::ProcessorConfig::dualCluster8();
        cfg.regMap = out.hardwareMap(2);
        core::Processor cpu(cfg, trace, stats);
        const auto r = cpu.run();
        insts += r.instructions;
    }
    state.counters["sim_inst_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorDualCluster)->Unit(benchmark::kMillisecond);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto program =
        workloads::makeGcc1(workloads::WorkloadParams{0.2});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Native;
    copt.numClusters = 1;
    const auto out = compiler::compile(program, copt);

    std::uint64_t insts = 0;
    for (auto _ : state) {
        exec::ProgramTrace trace(out.binary, 42, 100'000);
        while (auto di = trace.next()) {
            benchmark::DoNotOptimize(di->pc);
            ++insts;
        }
    }
    state.counters["trace_inst_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void
BM_CompilePipeline(benchmark::State &state)
{
    const auto program =
        workloads::makeGcc1(workloads::WorkloadParams{0.2});
    for (auto _ : state) {
        compiler::CompileOptions copt;
        copt.scheduler = compiler::SchedulerKind::Local;
        copt.numClusters = 2;
        copt.profileMaxInsts = 20'000;
        auto out = compiler::compile(program, copt);
        benchmark::DoNotOptimize(out.binary.staticInstCount());
    }
}
BENCHMARK(BM_CompilePipeline)->Unit(benchmark::kMillisecond);

void
BM_McFarlingPredictor(benchmark::State &state)
{
    bpred::McFarlingPredictor pred;
    Rng rng(7);
    std::uint64_t n = 0;
    for (auto _ : state) {
        const Addr pc = 0x1000 + (rng.next() % 256) * 4;
        const bool taken = rng.nextBool(0.6);
        benchmark::DoNotOptimize(pred.predict(pc));
        pred.update(pc, taken);
        ++n;
    }
    state.counters["branches_per_s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_McFarlingPredictor);

void
BM_CacheAccess(benchmark::State &state)
{
    StatGroup stats("bm");
    mem::Cache cache("d", mem::CacheParams{}, stats);
    Rng rng(11);
    Cycle now = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        const Addr a = (rng.next() % (256 * 1024)) & ~Addr{7};
        benchmark::DoNotOptimize(cache.access(a, false, now));
        now += 2;
        ++n;
    }
    state.counters["accesses_per_s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheAccess);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        const auto p =
            workloads::makeTomcatv(workloads::WorkloadParams{0.2});
        benchmark::DoNotOptimize(p.staticInstCount());
    }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
