/**
 * @file
 * Google-benchmark microbenchmarks of the reproduction's own
 * infrastructure: simulator throughput (simulated instructions per
 * wall-clock second), predictor and cache throughput, trace-generation
 * speed, and compilation cost. These guard against performance
 * regressions in the simulator itself.
 *
 * `--json-out FILE` switches to the issue-engine comparison: every
 * workload is run under the reference Scan engine and the wakeup-driven
 * Event engine (identical cycle counts, by the lockstep tests) and the
 * simulated-cycles-per-second of each, plus the speedup, is written as
 * JSON. scripts/ci.sh stores the result as BENCH_core.json.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>

#include "bpred/predictors.hh"
#include "core/processor.hh"
#include "compiler/pipeline.hh"
#include "exec/trace.hh"
#include "harness/experiment.hh"
#include "mem/cache.hh"
#include "support/random.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace mca;

void
BM_SimulatorSingleCluster(benchmark::State &state)
{
    const auto program =
        workloads::makeCompress(workloads::WorkloadParams{0.2});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Native;
    copt.numClusters = 1;
    const auto out = compiler::compile(program, copt);

    std::uint64_t insts = 0;
    for (auto _ : state) {
        StatGroup stats("bm");
        exec::ProgramTrace trace(out.binary, 42, 50'000);
        core::Processor cpu(core::ProcessorConfig::singleCluster8(),
                            trace, stats);
        const auto r = cpu.run();
        insts += r.instructions;
    }
    state.counters["sim_inst_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorSingleCluster)->Unit(benchmark::kMillisecond);

void
BM_SimulatorDualCluster(benchmark::State &state)
{
    const auto program =
        workloads::makeCompress(workloads::WorkloadParams{0.2});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Local;
    copt.numClusters = 2;
    const auto out = compiler::compile(program, copt);

    std::uint64_t insts = 0;
    for (auto _ : state) {
        StatGroup stats("bm");
        exec::ProgramTrace trace(out.binary, 42, 50'000);
        auto cfg = core::ProcessorConfig::dualCluster8();
        cfg.regMap = out.hardwareMap(2);
        core::Processor cpu(cfg, trace, stats);
        const auto r = cpu.run();
        insts += r.instructions;
    }
    state.counters["sim_inst_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorDualCluster)->Unit(benchmark::kMillisecond);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto program =
        workloads::makeGcc1(workloads::WorkloadParams{0.2});
    compiler::CompileOptions copt;
    copt.scheduler = compiler::SchedulerKind::Native;
    copt.numClusters = 1;
    const auto out = compiler::compile(program, copt);

    std::uint64_t insts = 0;
    for (auto _ : state) {
        exec::ProgramTrace trace(out.binary, 42, 100'000);
        while (auto di = trace.next()) {
            benchmark::DoNotOptimize(di->pc);
            ++insts;
        }
    }
    state.counters["trace_inst_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void
BM_CompilePipeline(benchmark::State &state)
{
    const auto program =
        workloads::makeGcc1(workloads::WorkloadParams{0.2});
    for (auto _ : state) {
        compiler::CompileOptions copt;
        copt.scheduler = compiler::SchedulerKind::Local;
        copt.numClusters = 2;
        copt.profileMaxInsts = 20'000;
        auto out = compiler::compile(program, copt);
        benchmark::DoNotOptimize(out.binary.staticInstCount());
    }
}
BENCHMARK(BM_CompilePipeline)->Unit(benchmark::kMillisecond);

void
BM_McFarlingPredictor(benchmark::State &state)
{
    bpred::McFarlingPredictor pred;
    Rng rng(7);
    std::uint64_t n = 0;
    for (auto _ : state) {
        const Addr pc = 0x1000 + (rng.next() % 256) * 4;
        const bool taken = rng.nextBool(0.6);
        benchmark::DoNotOptimize(pred.predict(pc));
        pred.update(pc, taken);
        ++n;
    }
    state.counters["branches_per_s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_McFarlingPredictor);

void
BM_CacheAccess(benchmark::State &state)
{
    StatGroup stats("bm");
    mem::Cache cache("d", mem::CacheParams{}, stats);
    Rng rng(11);
    Cycle now = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        const Addr a = (rng.next() % (256 * 1024)) & ~Addr{7};
        benchmark::DoNotOptimize(cache.access(a, false, now));
        now += 2;
        ++n;
    }
    state.counters["accesses_per_s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheAccess);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        const auto p =
            workloads::makeTomcatv(workloads::WorkloadParams{0.2});
        benchmark::DoNotOptimize(p.staticInstCount());
    }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMicrosecond);

// --- issue-engine throughput comparison (--json-out) -----------------

struct EngineSample
{
    double cyclesPerSecond = 0.0;
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
};

EngineSample
measureEngine(const prog::MachProgram &binary,
              const isa::RegisterMap &map,
              core::ProcessorConfig::IssueEngine engine,
              std::uint64_t max_insts)
{
    EngineSample best;
    // Best-of-3: the simulator is deterministic, so the fastest
    // repetition is the least-perturbed measurement.
    for (int rep = 0; rep < 3; ++rep) {
        auto cfg = core::ProcessorConfig::dualCluster8();
        cfg.regMap = map;
        cfg.issueEngine = engine;
        StatGroup stats("perf");
        exec::ProgramTrace trace(binary, 42, max_insts);
        core::Processor cpu(cfg, trace, stats);
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = cpu.run();
        const auto t1 = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();
        const double rate =
            secs > 0.0 ? static_cast<double>(r.cycles) / secs : 0.0;
        if (rate > best.cyclesPerSecond) {
            best.cyclesPerSecond = rate;
            best.cycles = r.cycles;
            best.instructions = r.instructions;
        }
    }
    return best;
}

int
runEngineComparison(const std::string &json_out)
{
    constexpr std::uint64_t kMaxInsts = 50'000;
    using IssueEngine = core::ProcessorConfig::IssueEngine;

    struct Row
    {
        std::string workload;
        EngineSample scan;
        EngineSample event;
        prog::MachProgram binary;
        isa::RegisterMap map;
    };
    std::vector<Row> rows;

    auto addWorkload = [&](const std::string &name,
                           const prog::Program &program) {
        compiler::CompileOptions copt;
        copt.scheduler = compiler::SchedulerKind::Local;
        copt.numClusters = 2;
        const auto out = compiler::compile(program, copt);
        Row row;
        row.workload = name;
        row.binary = out.binary;
        row.map = out.hardwareMap(2);
        row.scan = measureEngine(row.binary, row.map, IssueEngine::Scan,
                                 kMaxInsts);
        row.event = measureEngine(row.binary, row.map,
                                  IssueEngine::Event, kMaxInsts);
        std::cout << name << ": scan "
                  << static_cast<std::uint64_t>(row.scan.cyclesPerSecond)
                  << " cyc/s, event "
                  << static_cast<std::uint64_t>(
                         row.event.cyclesPerSecond)
                  << " cyc/s ("
                  << row.event.cyclesPerSecond / row.scan.cyclesPerSecond
                  << "x, " << row.scan.cycles << " cycles)\n";
        rows.push_back(std::move(row));
    };

    for (const auto *name : {"compress", "doduc", "gcc1", "ora",
                             "su2cor", "tomcatv"})
        addWorkload(name, workloads::benchmarkByName(name).make(
                              workloads::WorkloadParams{0.2}));
    // Non-registry stress workloads: the serial pointer chase (memory-
    // latency-bound, the idle-skip best case alongside ora) and a
    // random program (mixed, mostly-busy worst case).
    addWorkload("chase", workloads::makePointerChase(
                             workloads::WorkloadParams{0.2}));
    workloads::RandomProgramParams rp;
    rp.seed = 7;
    rp.numFunctions = 4;
    rp.segmentsPerFunction = 16;
    rp.loopTrip = 2000;
    addWorkload("random7", workloads::makeRandomProgram(rp));

    // Regression gate: the event engine must not lose to the reference
    // scan engine on tomcatv (its issue-saturated inner loop once made
    // the wakeup bookkeeping a net loss — the saturated-mode fallback
    // in EventScheduler fixes that). The comparison is a ratio of two
    // wall-clock rates on a shared machine, so re-measure both engines
    // a few times before declaring a real regression.
    for (auto &row : rows) {
        if (row.workload != "tomcatv")
            continue;
        for (int attempt = 0;
             attempt < 5 &&
             row.event.cyclesPerSecond < row.scan.cyclesPerSecond;
             ++attempt) {
            std::cout << "tomcatv event/scan below 1.0, re-measuring ("
                      << attempt + 1 << "/5)\n";
            row.scan = measureEngine(row.binary, row.map,
                                     IssueEngine::Scan, kMaxInsts);
            row.event = measureEngine(row.binary, row.map,
                                      IssueEngine::Event, kMaxInsts);
        }
        if (row.event.cyclesPerSecond < row.scan.cyclesPerSecond) {
            std::cerr << "FAIL: tomcatv event engine slower than scan ("
                      << row.event.cyclesPerSecond / 1e6 << " vs "
                      << row.scan.cyclesPerSecond / 1e6
                      << " Mcyc/s) after 5 re-measurements\n";
            return 1;
        }
    }

    std::ofstream out(json_out, std::ios::trunc);
    if (!out) {
        std::cerr << "cannot write " << json_out << "\n";
        return 1;
    }
    out << "{\n  \"benchmark\": \"issue_engine_throughput\",\n"
        << "  \"machine\": \"dual8\",\n"
        << "  \"max_insts\": " << kMaxInsts << ",\n"
        << "  \"workloads\": [\n";
    // ns_per_cycle is the reciprocal view (host nanoseconds per
    // simulated cycle) that docs/profiling.md and prof_report.py work
    // in; carrying it here lets profiles be compared against the
    // committed baseline without unit juggling.
    auto nsPerCycle = [](double cps) {
        return cps > 0.0 ? 1e9 / cps : 0.0;
    };
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        out << "    {\"workload\": \"" << r.workload << "\", "
            << "\"cycles\": " << r.scan.cycles << ", "
            << "\"instructions\": " << r.scan.instructions << ", "
            << "\"scan_cycles_per_sec\": " << r.scan.cyclesPerSecond
            << ", "
            << "\"event_cycles_per_sec\": " << r.event.cyclesPerSecond
            << ", "
            << "\"scan_ns_per_cycle\": "
            << nsPerCycle(r.scan.cyclesPerSecond) << ", "
            << "\"event_ns_per_cycle\": "
            << nsPerCycle(r.event.cyclesPerSecond) << ", "
            << "\"speedup\": "
            << r.event.cyclesPerSecond / r.scan.cyclesPerSecond << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << json_out << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_out;
    std::vector<char *> pass{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json-out" && i + 1 < argc)
            json_out = argv[++i];
        else
            pass.push_back(argv[i]);
    }
    if (!json_out.empty())
        return runEngineComparison(json_out);
    int pargc = static_cast<int>(pass.size());
    benchmark::Initialize(&pargc, pass.data());
    if (benchmark::ReportUnrecognizedArguments(pargc, pass.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
