#include "sample/spec.hh"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace mca::sample
{

namespace
{

std::uint64_t
parseCount(const std::string &key, const std::string &value)
{
    if (value.empty())
        throw std::runtime_error("sample spec: empty value for '" + key +
                                 "'");
    std::uint64_t out = 0;
    for (char c : value) {
        if (c < '0' || c > '9')
            throw std::runtime_error("sample spec: bad number '" + value +
                                     "' for '" + key + "'");
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (out > (~std::uint64_t{0} - digit) / 10)
            throw std::runtime_error("sample spec: value '" + value +
                                     "' for '" + key + "' overflows");
        out = out * 10 + digit;
    }
    return out;
}

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    std::istringstream in(text);
    while (std::getline(in, cur, sep))
        out.push_back(cur);
    return out;
}

} // namespace

SampleSpec
SampleSpec::parse(const std::string &text)
{
    const auto colon = text.find(':');
    const std::string modeName = text.substr(0, colon);

    SampleSpec spec;
    if (modeName == "systematic")
        spec.mode = Mode::Systematic;
    else if (modeName == "periodic")
        spec.mode = Mode::Periodic;
    else
        throw std::runtime_error("sample spec: unknown mode '" + modeName +
                                 "' (expected systematic or periodic)");

    if (colon != std::string::npos && colon + 1 < text.size()) {
        for (const std::string &item :
             splitList(text.substr(colon + 1), ',')) {
            const auto eq = item.find('=');
            if (eq == std::string::npos)
                throw std::runtime_error(
                    "sample spec: expected key=value, got '" + item + "'");
            const std::string key = item.substr(0, eq);
            const std::uint64_t value =
                parseCount(key, item.substr(eq + 1));
            if (key == "period")
                spec.period = value;
            else if (key == "detail")
                spec.detail = value;
            else if (key == "warmup")
                spec.warmup = value;
            else if (key == "offset")
                spec.offset = value;
            else if (key == "jobs")
                spec.jobs = static_cast<unsigned>(value);
            else
                throw std::runtime_error("sample spec: unknown key '" + key +
                                         "'");
        }
    }

    spec.validate();
    return spec;
}

void
SampleSpec::validate() const
{
    if (period == 0)
        throw std::runtime_error("sample spec: period must be >= 1");
    if (detail == 0)
        throw std::runtime_error("sample spec: detail must be >= 1");
    if (warmup + detail > period)
        throw std::runtime_error(
            "sample spec: warmup+detail exceeds period (intervals overlap)");
    if (jobs == 0)
        throw std::runtime_error("sample spec: jobs must be >= 1");
}

std::string
SampleSpec::canonical() const
{
    std::ostringstream out;
    out << (mode == Mode::Systematic ? "systematic" : "periodic")
        << ":period=" << period << ",detail=" << detail
        << ",warmup=" << warmup;
    if (mode == Mode::Periodic)
        out << ",offset=" << offset;
    return out.str();
}

} // namespace mca::sample
