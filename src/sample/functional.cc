#include "sample/functional.hh"

#include "bpred/predictors.hh"
#include "core/processor.hh"
#include "exec/trace.hh"
#include "isa/opcodes.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"

namespace mca::sample
{

FunctionalWarmer::FunctionalWarmer(core::Processor &proc)
    : proc_(proc),
      icacheBlockBytes_(proc.memorySystem().icache().params().blockBytes),
      lastFetchBlock_(~Addr{0})
{
}

std::uint64_t
FunctionalWarmer::advance(std::uint64_t n)
{
    mem::Cache &icache = proc_.memorySystem().icache();
    mem::Cache &dcache = proc_.memorySystem().dcache();
    bpred::Predictor &pred = proc_.predictor();
    exec::TraceSource &trace = proc_.trace();

    std::uint64_t done = 0;
    while (done < n) {
        const auto di = trace.next();
        if (!di) {
            ended_ = true;
            break;
        }
        ++now_;
        const Addr block = di->pc / icacheBlockBytes_;
        if (block != lastFetchBlock_) {
            icache.accessFast(di->pc, /*is_write=*/false, now_);
            lastFetchBlock_ = block;
        }
        if (isa::isMemOp(di->mi.op))
            dcache.accessFast(di->effAddr, isa::isStore(di->mi.op), now_);
        if (isa::isCondBranch(di->mi.op))
            pred.update(di->pc, di->taken);
        // A taken control transfer breaks fetch-block locality, so the
        // next instruction re-touches the I-cache even within a block.
        if (isa::isCtrlFlow(di->mi.op) && di->taken)
            lastFetchBlock_ = ~Addr{0};
        ++consumed_;
        ++done;
    }
    return done;
}

} // namespace mca::sample
