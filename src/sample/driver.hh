/**
 * @file
 * SMARTS-style sampled-execution driver (docs/sampling.md).
 *
 * A full detailed run simulates every instruction at cycle level. The
 * sampled driver instead makes ONE functional pass over the trace
 * (FunctionalWarmer: caches and predictor warmed, timing skipped) and
 * takes an in-memory checkpoint at each interval start; measurement
 * workers then restore each checkpoint into a fresh Processor, run a
 * short detailed warmup to fill the pipeline, and measure `detail`
 * instructions of true cycle-level execution. Whole-run CPI is the
 * mean of the per-interval CPIs with a 95% confidence interval
 * (1.96 * s / sqrt(K)); estimated total cycles = mean CPI * N.
 *
 * Since the task-graph refactor both passes share one
 * taskgraph::Executor: warming is a chain of per-interval nodes
 * (warm_0 → warm_1 → ... — the warmer state is shared, so the chain
 * edges serialize it), and each measurement node depends only on its
 * own interval's warm node. Window i therefore measures while window
 * i+1 warms, instead of all warming finishing before any measurement
 * starts.
 *
 * Determinism: interval starts are fixed by (spec, trace seed) before
 * any measurement begins, workers write into pre-sized result slots
 * indexed by interval number, and jobs=1 runs the identical code path
 * serially — so parallel and serial runs produce bit-identical reports
 * (tests/sample_test.cc, tests/taskgraph_test.cc).
 *
 * Cost model: a sampled run pays N functional instructions plus
 * K*(warmup+detail) detailed ones, against N detailed instructions for
 * the full run. With functional execution ~25-50x faster per
 * instruction and K*(warmup+detail) << N, effective throughput
 * improves 10-100x (bench/sampled_speedup.cc).
 */

#ifndef MCA_SAMPLE_DRIVER_HH
#define MCA_SAMPLE_DRIVER_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/config.hh"
#include "obs/cycle_stack.hh"
#include "prog/cfg.hh"
#include "sample/spec.hh"
#include "support/types.hh"
#include "taskgraph/taskgraph.hh"

namespace mca::sample
{

/** One measured interval. */
struct IntervalResult
{
    /** Interval number (0-based, in trace order). */
    std::uint64_t index = 0;
    /** Trace position (instructions) where the snapshot was taken. */
    std::uint64_t startInst = 0;
    /** Detailed-warmup instructions actually retired (discarded). */
    std::uint64_t warmupInsts = 0;
    /** Measured instructions retired. */
    std::uint64_t instructions = 0;
    /** Cycles spent retiring them. */
    Cycle cycles = 0;
    double cpi = 0.0;
    /** Stall attribution over the measured window only. */
    obs::CycleStack stack;
    /** Retire-slot conservation held on every measured cycle. */
    bool conserved = true;
    /** Host ns restoring the snapshot into the fresh machine. */
    std::uint64_t restoreHostNs = 0;
    /** Host ns for the whole window (restore + warmup + measure). */
    std::uint64_t hostNs = 0;
};

/** Whole-run extrapolation from the measured intervals. */
struct SampleReport
{
    SampleSpec spec;
    /** Dynamic instructions in the full trace (from the warming pass). */
    std::uint64_t totalInsts = 0;
    /** Detailed instructions simulated (warmup + measured, all K). */
    std::uint64_t detailedInsts = 0;
    std::vector<IntervalResult> intervals;
    double cpiMean = 0.0;
    double cpiStdDev = 0.0;
    /** Half-width of the 95% confidence interval on cpiMean. */
    double cpiCi95 = 0.0;
    /** cpiMean * totalInsts. */
    double estTotalCycles = 0.0;
    /** Every interval's cycle stack conserved. */
    bool allConserved = true;

    // Executor observability (host-time only; never part of the
    // simulated result and excluded from dumpJson).
    /** Per-node spans of the warm/measure graph (Perfetto export). */
    std::vector<taskgraph::TaskSpan> taskSpans;
    /** Longest warm→measure chain in host ms. */
    double execCriticalPathMs = 0.0;
    /** Peak ready-queue depth inside the executor. */
    std::size_t execMaxQueueDepth = 0;

    /**
     * Emit the report as one JSON object (spec, totals, extrapolation,
     * and the per-interval table including cycle stacks).
     */
    void dumpJson(std::ostream &os) const;
};

class SampledDriver
{
  public:
    /**
     * @param binary     Compiled program (copied; the driver replays it
     *                   once per measurement worker).
     * @param config     Machine shape, regMap already applied.
     * @param trace_seed Seed for exec::ProgramTrace; also fixes the
     *                   systematic-sampling phase.
     * @param max_insts  Dynamic-length cap passed to every trace.
     */
    SampledDriver(prog::MachProgram binary,
                  const core::ProcessorConfig &config,
                  std::uint64_t trace_seed, std::uint64_t max_insts);

    /**
     * Execute the sampling plan. Uses spec.jobs measurement workers
     * (1 = serial). Throws std::runtime_error if the spec is
     * infeasible or a worker fails to restore its snapshot.
     */
    SampleReport run(const SampleSpec &spec) const;

  private:
    prog::MachProgram binary_;
    core::ProcessorConfig config_;
    std::uint64_t seed_;
    std::uint64_t maxInsts_;
};

} // namespace mca::sample

#endif // MCA_SAMPLE_DRIVER_HH
