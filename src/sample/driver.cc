#include "sample/driver.hh"

#include <chrono>
#include <cmath>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "ckpt/snapshot.hh"
#include "core/processor.hh"
#include "exec/trace.hh"
#include "exec/walker.hh"
#include "mem/memory.hh"
#include "prof/prof.hh"
#include "sample/functional.hh"
#include "support/stats.hh"

namespace mca::sample
{

namespace
{

/** Salt decorrelating the systematic phase from the trace streams. */
constexpr std::uint64_t kPhaseSalt = 0x5a3f1e;

/**
 * Restore `snap` into a fresh machine, run the detailed warmup, then
 * measure `spec.detail` instructions with a cycle stack attached.
 */
IntervalResult
measureInterval(const prog::MachProgram &binary,
                const core::ProcessorConfig &config, std::uint64_t seed,
                std::uint64_t max_insts, const ckpt::Snapshot &snap,
                std::uint64_t start_inst, std::uint64_t index,
                const SampleSpec &spec)
{
    PROF_SCOPE("sample.measure");
    IntervalResult out;
    out.index = index;
    out.startInst = start_inst;

    const auto t0 = std::chrono::steady_clock::now();
    StatGroup sg("mca");
    exec::ProgramTrace trace(binary, seed, max_insts);
    core::Processor proc(config, trace, sg);
    {
        PROF_SCOPE("sample.restore");
        ckpt::SnapshotParser parser(snap, proc.configHash());
        proc.loadState(parser);
    }
    out.restoreHostNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());

    obs::CycleStack stack;
    proc.attachCycleStack(&stack);

    // The warming pass never stepped the pipeline, so the restored
    // retired-count starts at zero and targets are interval-relative.
    proc.runUntilRetired(spec.warmup);
    out.warmupInsts = proc.retiredInstructions();

    const Cycle measureFrom = proc.now();
    stack.reset();
    proc.runUntilRetired(spec.warmup + spec.detail);

    out.instructions = proc.retiredInstructions() - out.warmupInsts;
    out.cycles = proc.now() - measureFrom;
    out.cpi = out.instructions != 0
                  ? static_cast<double>(out.cycles) /
                        static_cast<double>(out.instructions)
                  : 0.0;
    out.stack = stack;
    out.conserved = stack.conserved();
    out.hostNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return out;
}

} // namespace

void
SampleReport::dumpJson(std::ostream &os) const
{
    os << "{\"spec\": \"" << spec.canonical() << "\""
       << ", \"total_insts\": " << totalInsts
       << ", \"detailed_insts\": " << detailedInsts
       << ", \"intervals\": " << intervals.size()
       << ", \"cpi_mean\": " << cpiMean
       << ", \"cpi_stddev\": " << cpiStdDev
       << ", \"cpi_ci95\": " << cpiCi95
       << ", \"est_total_cycles\": " << estTotalCycles
       << ", \"all_conserved\": " << (allConserved ? "true" : "false")
       << ", \"interval_table\": [";
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        const IntervalResult &iv = intervals[i];
        os << (i ? ", " : "") << "{\"start\": " << iv.startInst
           << ", \"insts\": " << iv.instructions
           << ", \"cycles\": " << iv.cycles << ", \"cpi\": " << iv.cpi
           << ", \"conserved\": " << (iv.conserved ? "true" : "false")
           << ", \"restore_ms\": "
           << static_cast<double>(iv.restoreHostNs) / 1e6 << "}";
    }
    os << "]}\n";
}

SampledDriver::SampledDriver(prog::MachProgram binary,
                             const core::ProcessorConfig &config,
                             std::uint64_t trace_seed,
                             std::uint64_t max_insts)
    : binary_(std::move(binary)), config_(config), seed_(trace_seed),
      maxInsts_(max_insts)
{
}

SampleReport
SampledDriver::run(const SampleSpec &spec) const
{
    spec.validate();

    SampleReport rep;
    rep.spec = spec;

    const std::uint64_t phase =
        spec.mode == SampleSpec::Mode::Systematic
            ? exec::hashSeed(seed_, kPhaseSalt, 0) % spec.period
            : spec.offset % spec.period;

    // Both passes run as one task graph: warm_k advances the shared
    // warmer to interval k's start and snapshots it, warm_k → warm_k+1
    // chain edges serialize the shared state (every edge is a
    // happens-before through the executor), and measure_k depends only
    // on warm_k — so window k measures while window k+1 warms. The
    // node count is the static upper bound on interval starts
    // (s_k = phase + k*period <= maxInsts); windows past the actual
    // trace end warm to nothing and their default slots are trimmed
    // below, exactly like the old sequential loop's break.
    const std::uint64_t nWindows =
        phase <= maxInsts_ ? (maxInsts_ - phase) / spec.period + 1 : 0;

    StatGroup sg("mca");
    exec::ProgramTrace trace(binary_, seed_, maxInsts_);
    core::Processor proc(config_, trace, sg);
    FunctionalWarmer warmer(proc);
    bool traceDone = false; // touched only by chain-ordered warm nodes

    std::vector<ckpt::Snapshot> snaps(nWindows);
    std::vector<char> hasSnap(nWindows, 0);
    std::vector<std::uint64_t> starts(nWindows, 0);
    rep.intervals.resize(nWindows);

    taskgraph::TaskGraph graph;
    std::vector<taskgraph::NodeId> warmNodes(nWindows);
    std::vector<taskgraph::NodeId> measureNodes(nWindows);
    for (std::uint64_t k = 0; k < nWindows; ++k) {
        const std::uint64_t target = phase + k * spec.period;
        warmNodes[k] = graph.add(
            "warm " + std::to_string(k), "warm", [&, k, target] {
                if (traceDone)
                    return;
                PROF_SCOPE("sample.warm");
                warmer.advance(target - warmer.consumed());
                if (warmer.ended()) {
                    traceDone = true;
                    return;
                }
                // Snapshots must capture quiescent hierarchies: retire
                // all in-flight fills so restore needs no event replay.
                proc.memorySystem().settle();
                PROF_SCOPE("sample.snapshot");
                ckpt::SnapshotBuilder b(proc.configHash());
                proc.saveState(b);
                snaps[k] = b.finish();
                starts[k] = warmer.consumed();
                hasSnap[k] = 1;
            });
        measureNodes[k] = graph.add(
            "measure " + std::to_string(k), "measure", [&, k] {
                if (!hasSnap[k])
                    return; // past trace end; slot trimmed below
                rep.intervals[k] = measureInterval(
                    binary_, config_, seed_, maxInsts_, snaps[k],
                    starts[k], k, spec);
                snaps[k] = ckpt::Snapshot{}; // free the payload early
            });
        if (k > 0)
            graph.addEdge(warmNodes[k - 1], warmNodes[k]);
        graph.addEdge(warmNodes[k], measureNodes[k]);
    }
    // The warming pass always consumes the full trace (totalInsts is
    // the extrapolation base), even when the last interval start falls
    // short of the end.
    const taskgraph::NodeId drain =
        graph.add("warm drain", "warm", [&] {
            PROF_SCOPE("sample.warm");
            while (!warmer.ended())
                warmer.advance(spec.period);
            rep.totalInsts = warmer.consumed();
        });
    if (nWindows > 0)
        graph.addEdge(warmNodes[nWindows - 1], drain);

    const taskgraph::Executor executor(spec.jobs);
    const taskgraph::ExecStats estats = executor.run(graph);
    rep.taskSpans = estats.spans;
    rep.execCriticalPathMs = estats.criticalPathMs;
    rep.execMaxQueueDepth = estats.maxQueueDepth;

    // Surface node failures with the same messages the sequential
    // driver threw: warming errors propagate as-is, measurement errors
    // name the lowest failing interval.
    for (std::uint64_t k = 0; k < nWindows; ++k)
        if (graph.status(warmNodes[k]) == taskgraph::NodeStatus::Failed)
            throw std::runtime_error(graph.error(warmNodes[k]));
    if (graph.status(drain) == taskgraph::NodeStatus::Failed)
        throw std::runtime_error(graph.error(drain));
    for (std::uint64_t k = 0; k < nWindows; ++k)
        if (graph.status(measureNodes[k]) ==
            taskgraph::NodeStatus::Failed)
            throw std::runtime_error("sample: interval " +
                                     std::to_string(k) + " failed: " +
                                     graph.error(measureNodes[k]));

    // Trim windows past the trace end (never snapshotted), then any
    // interval snapshotted too close to the end to retire anything
    // inside the measured window.
    std::size_t snapCount = 0;
    while (snapCount < nWindows && hasSnap[snapCount])
        ++snapCount;
    rep.intervals.resize(snapCount);
    while (!rep.intervals.empty() &&
           rep.intervals.back().instructions == 0)
        rep.intervals.pop_back();

    // --- Extrapolate.
    double sum = 0.0;
    for (const IntervalResult &iv : rep.intervals) {
        sum += iv.cpi;
        rep.detailedInsts += iv.warmupInsts + iv.instructions;
        rep.allConserved = rep.allConserved && iv.conserved;
    }
    const std::size_t k = rep.intervals.size();
    if (k > 0) {
        rep.cpiMean = sum / static_cast<double>(k);
        if (k > 1) {
            double ss = 0.0;
            for (const IntervalResult &iv : rep.intervals) {
                const double d = iv.cpi - rep.cpiMean;
                ss += d * d;
            }
            rep.cpiStdDev = std::sqrt(ss / static_cast<double>(k - 1));
            rep.cpiCi95 =
                1.96 * rep.cpiStdDev / std::sqrt(static_cast<double>(k));
        }
        rep.estTotalCycles =
            rep.cpiMean * static_cast<double>(rep.totalInsts);
    }
    return rep;
}

} // namespace mca::sample
