#include "sample/driver.hh"

#include <chrono>
#include <cmath>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "ckpt/snapshot.hh"
#include "core/processor.hh"
#include "exec/trace.hh"
#include "exec/walker.hh"
#include "mem/memory.hh"
#include "prof/prof.hh"
#include "runner/thread_pool.hh"
#include "sample/functional.hh"
#include "support/stats.hh"

namespace mca::sample
{

namespace
{

/** Salt decorrelating the systematic phase from the trace streams. */
constexpr std::uint64_t kPhaseSalt = 0x5a3f1e;

/**
 * Restore `snap` into a fresh machine, run the detailed warmup, then
 * measure `spec.detail` instructions with a cycle stack attached.
 */
IntervalResult
measureInterval(const prog::MachProgram &binary,
                const core::ProcessorConfig &config, std::uint64_t seed,
                std::uint64_t max_insts, const ckpt::Snapshot &snap,
                std::uint64_t start_inst, std::uint64_t index,
                const SampleSpec &spec)
{
    PROF_SCOPE("sample.measure");
    IntervalResult out;
    out.index = index;
    out.startInst = start_inst;

    const auto t0 = std::chrono::steady_clock::now();
    StatGroup sg("mca");
    exec::ProgramTrace trace(binary, seed, max_insts);
    core::Processor proc(config, trace, sg);
    {
        PROF_SCOPE("sample.restore");
        ckpt::SnapshotParser parser(snap, proc.configHash());
        proc.loadState(parser);
    }
    out.restoreHostNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());

    obs::CycleStack stack;
    proc.attachCycleStack(&stack);

    // The warming pass never stepped the pipeline, so the restored
    // retired-count starts at zero and targets are interval-relative.
    proc.runUntilRetired(spec.warmup);
    out.warmupInsts = proc.retiredInstructions();

    const Cycle measureFrom = proc.now();
    stack.reset();
    proc.runUntilRetired(spec.warmup + spec.detail);

    out.instructions = proc.retiredInstructions() - out.warmupInsts;
    out.cycles = proc.now() - measureFrom;
    out.cpi = out.instructions != 0
                  ? static_cast<double>(out.cycles) /
                        static_cast<double>(out.instructions)
                  : 0.0;
    out.stack = stack;
    out.conserved = stack.conserved();
    out.hostNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return out;
}

} // namespace

void
SampleReport::dumpJson(std::ostream &os) const
{
    os << "{\"spec\": \"" << spec.canonical() << "\""
       << ", \"total_insts\": " << totalInsts
       << ", \"detailed_insts\": " << detailedInsts
       << ", \"intervals\": " << intervals.size()
       << ", \"cpi_mean\": " << cpiMean
       << ", \"cpi_stddev\": " << cpiStdDev
       << ", \"cpi_ci95\": " << cpiCi95
       << ", \"est_total_cycles\": " << estTotalCycles
       << ", \"all_conserved\": " << (allConserved ? "true" : "false")
       << ", \"interval_table\": [";
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        const IntervalResult &iv = intervals[i];
        os << (i ? ", " : "") << "{\"start\": " << iv.startInst
           << ", \"insts\": " << iv.instructions
           << ", \"cycles\": " << iv.cycles << ", \"cpi\": " << iv.cpi
           << ", \"conserved\": " << (iv.conserved ? "true" : "false")
           << ", \"restore_ms\": "
           << static_cast<double>(iv.restoreHostNs) / 1e6 << "}";
    }
    os << "]}\n";
}

SampledDriver::SampledDriver(prog::MachProgram binary,
                             const core::ProcessorConfig &config,
                             std::uint64_t trace_seed,
                             std::uint64_t max_insts)
    : binary_(std::move(binary)), config_(config), seed_(trace_seed),
      maxInsts_(max_insts)
{
}

SampleReport
SampledDriver::run(const SampleSpec &spec) const
{
    spec.validate();

    SampleReport rep;
    rep.spec = spec;

    const std::uint64_t phase =
        spec.mode == SampleSpec::Mode::Systematic
            ? exec::hashSeed(seed_, kPhaseSalt, 0) % spec.period
            : spec.offset % spec.period;

    // --- Pass 1: functional warming, snapshotting each interval start.
    std::vector<ckpt::Snapshot> snaps;
    std::vector<std::uint64_t> starts;
    {
        PROF_SCOPE("sample.warm");
        StatGroup sg("mca");
        exec::ProgramTrace trace(binary_, seed_, maxInsts_);
        core::Processor proc(config_, trace, sg);
        FunctionalWarmer warmer(proc);

        std::uint64_t nextStart = phase;
        while (true) {
            warmer.advance(nextStart - warmer.consumed());
            if (warmer.ended())
                break;
            // Snapshots must capture quiescent hierarchies: retire all
            // in-flight fills so restore needs no event replay.
            proc.memorySystem().settle();
            PROF_SCOPE("sample.snapshot");
            ckpt::SnapshotBuilder b(proc.configHash());
            proc.saveState(b);
            snaps.push_back(b.finish());
            starts.push_back(warmer.consumed());
            nextStart += spec.period;
        }
        rep.totalInsts = warmer.consumed();
    }

    // --- Pass 2: detailed measurement, farmed across the pool.
    // Pre-sized slots keep the merge order deterministic regardless of
    // worker scheduling; jobs=1 is the same code path run serially.
    rep.intervals.resize(snaps.size());
    std::vector<std::string> errors(snaps.size());
    {
        runner::ThreadPool pool(spec.jobs);
        for (std::size_t k = 0; k < snaps.size(); ++k) {
            pool.submit([&, k] {
                try {
                    rep.intervals[k] = measureInterval(
                        binary_, config_, seed_, maxInsts_, snaps[k],
                        starts[k], k, spec);
                } catch (const std::exception &e) {
                    errors[k] = e.what();
                }
            });
        }
        pool.wait();
    }
    for (std::size_t k = 0; k < errors.size(); ++k)
        if (!errors[k].empty())
            throw std::runtime_error("sample: interval " +
                                     std::to_string(k) +
                                     " failed: " + errors[k]);

    // An interval snapshotted too close to the trace end may retire
    // nothing inside the measured window; drop it from the estimate.
    while (!rep.intervals.empty() &&
           rep.intervals.back().instructions == 0)
        rep.intervals.pop_back();

    // --- Extrapolate.
    double sum = 0.0;
    for (const IntervalResult &iv : rep.intervals) {
        sum += iv.cpi;
        rep.detailedInsts += iv.warmupInsts + iv.instructions;
        rep.allConserved = rep.allConserved && iv.conserved;
    }
    const std::size_t k = rep.intervals.size();
    if (k > 0) {
        rep.cpiMean = sum / static_cast<double>(k);
        if (k > 1) {
            double ss = 0.0;
            for (const IntervalResult &iv : rep.intervals) {
                const double d = iv.cpi - rep.cpiMean;
                ss += d * d;
            }
            rep.cpiStdDev = std::sqrt(ss / static_cast<double>(k - 1));
            rep.cpiCi95 =
                1.96 * rep.cpiStdDev / std::sqrt(static_cast<double>(k));
        }
        rep.estTotalCycles =
            rep.cpiMean * static_cast<double>(rep.totalInsts);
    }
    return rep;
}

} // namespace mca::sample
