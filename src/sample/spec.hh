/**
 * @file
 * Sampling-plan specification for the sampled-execution driver.
 *
 * A SampleSpec describes how a long run is carved into measurement
 * intervals (docs/sampling.md): every `period` instructions, restore a
 * functionally warmed snapshot, run `warmup` instructions of detailed
 * simulation to fill the pipeline, then measure `detail` instructions.
 * Two interval-selection modes are supported:
 *
 *  - Systematic (SMARTS-style): the first interval starts at a phase
 *    derived deterministically from the trace seed, so repeated runs
 *    of the same workload measure the same intervals while different
 *    seeds decorrelate the phase from any program periodicity.
 *  - Periodic: the first interval starts at a user-chosen `offset`
 *    (useful for reproducing a specific window, e.g. in regression
 *    tests or when bisecting a phase-behavior anomaly).
 *
 * The textual form accepted by `mcasim --sample=` is
 *
 *     <mode>:period=N,detail=N,warmup=N[,offset=N][,jobs=N]
 *
 * with `<mode>` one of `systematic` or `periodic`. Unknown keys and
 * ill-formed values are rejected with std::runtime_error, as are plans
 * whose warmup+detail exceed the period (intervals would overlap).
 */

#ifndef MCA_SAMPLE_SPEC_HH
#define MCA_SAMPLE_SPEC_HH

#include <cstdint>
#include <string>

namespace mca::sample
{

struct SampleSpec
{
    enum class Mode
    {
        Systematic,
        Periodic,
    };

    Mode mode = Mode::Systematic;
    /** Instructions between consecutive interval starts. */
    std::uint64_t period = 100'000;
    /** Detailed instructions measured per interval. */
    std::uint64_t detail = 10'000;
    /** Detailed instructions run (and discarded) before measuring. */
    std::uint64_t warmup = 2'000;
    /** First-interval start for Periodic mode (ignored by Systematic). */
    std::uint64_t offset = 0;
    /** Measurement workers; 1 = serial (same code path, same result). */
    unsigned jobs = 1;

    /**
     * Parse the textual form. Throws std::runtime_error naming the
     * offending token on bad mode, bad key, bad number, or an
     * infeasible plan (period == 0, detail == 0, warmup+detail >
     * period).
     */
    static SampleSpec parse(const std::string &text);

    /**
     * Canonical textual form (stable field order). `jobs` is excluded:
     * it changes wall-clock behaviour, never results, so cache keys
     * built from the canonical form stay worker-count independent.
     */
    std::string canonical() const;

    /** Validate feasibility; throws std::runtime_error when violated. */
    void validate() const;
};

} // namespace mca::sample

#endif // MCA_SAMPLE_SPEC_HH
