/**
 * @file
 * Functional fast-forward with cache and predictor warming.
 *
 * The warmer consumes a processor's trace directly — no pipeline, no
 * timing — while keeping the long-lived microarchitectural state warm:
 * the I-cache is touched once per fetched block, the D-cache once per
 * memory operation, and the branch predictor is trained on every
 * conditional branch outcome. Architectural state needs no separate
 * handling: in this trace-driven model it lives entirely in the trace
 * cursor, which the warmer advances as a side effect of next().
 *
 * Timestamps are synthetic (one cycle per instruction). That skews
 * absolute cache-access times but preserves recency ORDER, which is
 * all the LRU replacement and predictor tables consume — the detailed
 * measurement that follows a snapshot restore (src/sample/driver.hh)
 * uses statistic deltas, so warming-era counter inflation is invisible.
 */

#ifndef MCA_SAMPLE_FUNCTIONAL_HH
#define MCA_SAMPLE_FUNCTIONAL_HH

#include <cstdint>

#include "support/types.hh"

namespace mca::core
{
class Processor;
}

namespace mca::sample
{

class FunctionalWarmer
{
  public:
    /** Warm the caches/predictor owned by `proc` (not owned). */
    explicit FunctionalWarmer(core::Processor &proc);

    /**
     * Consume up to `n` trace instructions, warming as it goes.
     * Returns the number actually consumed (< n only at trace end).
     */
    std::uint64_t advance(std::uint64_t n);

    /** Total instructions consumed so far. */
    std::uint64_t consumed() const { return consumed_; }

    /** True once the trace has been exhausted. */
    bool ended() const { return ended_; }

  private:
    core::Processor &proc_;
    unsigned icacheBlockBytes_;
    Addr lastFetchBlock_;
    Cycle now_ = 0;
    std::uint64_t consumed_ = 0;
    bool ended_ = false;
};

} // namespace mca::sample

#endif // MCA_SAMPLE_FUNCTIONAL_HH
