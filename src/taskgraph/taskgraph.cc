#include "taskgraph/taskgraph.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "runner/thread_pool.hh"

namespace mca::taskgraph
{

namespace
{

constexpr NodeId kNone = std::numeric_limits<NodeId>::max();

} // namespace

NodeId
TaskGraph::add(std::string name, std::string kind,
               std::function<void()> body)
{
    Node n;
    n.name = std::move(name);
    n.kind = std::move(kind);
    n.region = prof::internRegion("taskgraph." + n.kind);
    n.body = std::move(body);
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size() - 1);
}

void
TaskGraph::addEdge(NodeId from, NodeId to)
{
    if (from >= nodes_.size() || to >= nodes_.size())
        throw std::invalid_argument("taskgraph: edge references node " +
                                    std::to_string(from >= nodes_.size()
                                                       ? from
                                                       : to) +
                                    " of " +
                                    std::to_string(nodes_.size()));
    if (from == to)
        throw std::invalid_argument("taskgraph: self-edge on node '" +
                                    nodes_[from].name + "'");
    nodes_[from].dependents.push_back(to);
    nodes_[to].deps.push_back(from);
}

void
TaskGraph::validateAcyclic() const
{
    // Kahn's algorithm; any node never reaching indegree zero sits on
    // (or behind) a cycle — report the lowest-numbered one.
    std::vector<std::size_t> indeg(nodes_.size());
    std::deque<NodeId> ready;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        indeg[i] = nodes_[i].deps.size();
        if (indeg[i] == 0)
            ready.push_back(static_cast<NodeId>(i));
    }
    std::size_t seen = 0;
    while (!ready.empty()) {
        const NodeId id = ready.front();
        ready.pop_front();
        ++seen;
        for (NodeId d : nodes_[id].dependents)
            if (--indeg[d] == 0)
                ready.push_back(d);
    }
    if (seen == nodes_.size())
        return;
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        if (indeg[i] != 0)
            throw std::runtime_error(
                "taskgraph: dependency cycle involving node '" +
                nodes_[i].name + "'");
}

ExecStats
Executor::run(TaskGraph &graph) const
{
    graph.validateAcyclic();

    ExecStats stats;
    stats.total = graph.nodes_.size();
    if (stats.total == 0)
        return stats;

    const auto t0 = std::chrono::steady_clock::now();
    const auto nowNs = [&t0] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    };

    // All scheduling state below is guarded by `m`. Acquiring it
    // between a node's completion and each dependent's start is what
    // turns every edge into a happens-before for the bodies.
    std::mutex m;
    std::size_t readyDepth = 0; // submitted but not yet started
    std::vector<char> laneBusy;
    runner::ThreadPool pool(jobs_);

    // Forward declaration dance: runNode submits dependents via
    // settle, which submits via submitNode, which builds runNode
    // closures. Tie the knot with std::function.
    std::function<void(NodeId)> submitNode;

    // Called with `m` held each time a node reaches a terminal state.
    // Decrements dependents' counters; a dependent whose deps are all
    // settled either starts (all Done) or cancels with the root cause
    // of its lowest-numbered non-Done dependency. Iterative so long
    // cancellation chains cannot overflow the stack.
    const auto settle = [&](NodeId first) {
        std::deque<NodeId> work{first};
        while (!work.empty()) {
            const NodeId id = work.front();
            work.pop_front();
            for (NodeId d : graph.nodes_[id].dependents) {
                TaskGraph::Node &dn = graph.nodes_[d];
                if (--dn.remaining != 0)
                    continue;
                NodeId bad = kNone;
                for (NodeId dep : dn.deps)
                    if (graph.nodes_[dep].status != NodeStatus::Done &&
                        dep < bad)
                        bad = dep;
                if (bad == kNone) {
                    submitNode(d);
                } else {
                    dn.status = NodeStatus::Cancelled;
                    dn.error = graph.nodes_[bad].error;
                    work.push_back(d);
                }
            }
        }
    };

    const auto runNode = [&](NodeId id) {
        TaskGraph::Node &n = graph.nodes_[id];
        {
            std::lock_guard<std::mutex> lock(m);
            --readyDepth;
            n.startNs = nowNs();
            unsigned lane = 0;
            while (lane < laneBusy.size() && laneBusy[lane])
                ++lane;
            if (lane == laneBusy.size())
                laneBusy.push_back(0);
            laneBusy[lane] = 1;
            n.lane = lane;
        }
        bool ok = true;
        std::string err;
        {
            prof::ScopeTimer timer(n.region);
            try {
                n.body();
            } catch (const std::exception &e) {
                ok = false;
                err = e.what();
            } catch (...) {
                ok = false;
                err = "unknown error";
            }
        }
        std::lock_guard<std::mutex> lock(m);
        n.endNs = nowNs();
        laneBusy[n.lane] = 0;
        n.ran = true;
        n.status = ok ? NodeStatus::Done : NodeStatus::Failed;
        n.error = std::move(err);
        settle(id);
    };

    submitNode = [&](NodeId id) {
        // `m` is held by the caller. Submitting before the current
        // pool task returns keeps ThreadPool::wait a correct barrier:
        // the queue cannot drain while dependents remain unsubmitted.
        ++readyDepth;
        stats.maxQueueDepth = std::max(stats.maxQueueDepth, readyDepth);
        pool.submit([&runNode, id] { runNode(id); });
    };

    {
        std::lock_guard<std::mutex> lock(m);
        for (std::size_t i = 0; i < graph.nodes_.size(); ++i) {
            TaskGraph::Node &n = graph.nodes_[i];
            n.status = NodeStatus::Pending;
            n.error.clear();
            n.ran = false;
            n.remaining = n.deps.size();
        }
        for (std::size_t i = 0; i < graph.nodes_.size(); ++i)
            if (graph.nodes_[i].remaining == 0)
                submitNode(static_cast<NodeId>(i));
    }
    pool.wait();

    stats.wallMs = static_cast<double>(nowNs()) / 1e6;

    // Critical path over the DAG in topological order, weighting each
    // node by its measured duration (cancelled nodes weigh nothing).
    std::vector<std::size_t> indeg(graph.nodes_.size());
    std::vector<double> pathMs(graph.nodes_.size(), 0.0);
    std::deque<NodeId> order;
    for (std::size_t i = 0; i < graph.nodes_.size(); ++i) {
        indeg[i] = graph.nodes_[i].deps.size();
        if (indeg[i] == 0)
            order.push_back(static_cast<NodeId>(i));
    }
    while (!order.empty()) {
        const NodeId id = order.front();
        order.pop_front();
        const TaskGraph::Node &n = graph.nodes_[id];
        double longest = 0.0;
        for (NodeId dep : n.deps)
            longest = std::max(longest, pathMs[dep]);
        const double dur =
            n.ran ? static_cast<double>(n.endNs - n.startNs) / 1e6 : 0.0;
        pathMs[id] = longest + dur;
        stats.criticalPathMs = std::max(stats.criticalPathMs, pathMs[id]);
        for (NodeId d : n.dependents)
            if (--indeg[d] == 0)
                order.push_back(d);
    }

    for (std::size_t i = 0; i < graph.nodes_.size(); ++i) {
        const TaskGraph::Node &n = graph.nodes_[i];
        switch (n.status) {
        case NodeStatus::Done:
            ++stats.ran;
            break;
        case NodeStatus::Failed:
            ++stats.ran;
            ++stats.failed;
            break;
        case NodeStatus::Cancelled:
            ++stats.cancelled;
            break;
        case NodeStatus::Pending:
            break; // unreachable on an acyclic graph
        }
        if (n.ran) {
            TaskSpan span;
            span.node = static_cast<NodeId>(i);
            span.name = n.name;
            span.kind = n.kind;
            span.startNs = n.startNs;
            span.endNs = n.endNs;
            span.lane = n.lane;
            stats.spans.push_back(std::move(span));
        }
    }
    std::sort(stats.spans.begin(), stats.spans.end(),
              [](const TaskSpan &a, const TaskSpan &b) {
                  return a.startNs != b.startNs ? a.startNs < b.startNs
                                                : a.node < b.node;
              });
    return stats;
}

} // namespace mca::taskgraph
