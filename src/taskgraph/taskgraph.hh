/**
 * @file
 * Deterministic dependency-aware task-graph executor.
 *
 * The campaign runner and the sampled driver both shard work across a
 * runner::ThreadPool, but until this layer existed each had to encode
 * its stage ordering by hand: the runner blocked whole workers on a
 * shared compile future, and the sampled driver ran its warming pass
 * strictly before any measurement. A TaskGraph makes the ordering
 * explicit — nodes are plain std::function<void()> bodies, edges say
 * "this must finish before that starts" — and the Executor schedules
 * the DAG onto the pool with a topological ready queue, so independent
 * stages overlap automatically (compile while simulating, warm window
 * i+1 while measuring window i).
 *
 * Determinism contract: the executor decides only WHEN a body runs,
 * never what it computes. Bodies write into pre-sized slots owned by
 * the caller, every edge is a happens-before (the executor's mutex is
 * acquired between a node's completion and any dependent's start), and
 * failure handling is deterministic — a failed node's dependents are
 * cancelled with the root cause's error text, choosing the
 * lowest-numbered failed dependency when several could be blamed. So
 * results are bit-identical at any worker width (tests/taskgraph_test).
 *
 * Observability: each body runs under a PROF_SCOPE region named
 * "taskgraph.<kind>", and ExecStats carries per-node spans (start/end
 * host ns, compact lane assignment) plus the critical-path length and
 * the peak ready-queue depth — surfaced in mcarun --telemetry and as a
 * "task graph" process in the Perfetto export (docs/campaigns.md).
 */

#ifndef MCA_TASKGRAPH_TASKGRAPH_HH
#define MCA_TASKGRAPH_TASKGRAPH_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "prof/prof.hh"

namespace mca::taskgraph
{

/** Dense node index, assigned by TaskGraph::add in creation order. */
using NodeId = std::uint32_t;

/** Terminal state of a node after Executor::run. */
enum class NodeStatus : std::uint8_t
{
    Pending,   ///< never scheduled (only before a run)
    Done,      ///< body returned normally
    Failed,    ///< body threw; error() holds what()
    Cancelled, ///< a dependency failed; error() holds the root cause
};

/** One executed node's host-time span (for the Perfetto export). */
struct TaskSpan
{
    NodeId node = 0;
    std::string name;
    std::string kind;
    /** Host ns since Executor::run started. */
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
    /** Compact non-overlapping track index (< worker width). */
    unsigned lane = 0;
};

/** Aggregate result of one Executor::run. */
struct ExecStats
{
    std::size_t total = 0;     ///< nodes in the graph
    std::size_t ran = 0;       ///< bodies that executed (Done + Failed)
    std::size_t failed = 0;    ///< bodies that threw
    std::size_t cancelled = 0; ///< nodes skipped because a dep failed
    double wallMs = 0.0;
    /**
     * Longest dependency chain weighted by measured node durations, in
     * host ms: the lower bound on wall clock at infinite width. A wall
     * clock close to this means the graph, not the pool, is the limit.
     */
    double criticalPathMs = 0.0;
    /** Peak count of ready-but-not-started nodes (pool backpressure). */
    std::size_t maxQueueDepth = 0;
    /** Per-node spans of every body that ran, sorted by start time. */
    std::vector<TaskSpan> spans;
};

/**
 * A DAG of named work items. Build with add()/addEdge(), hand to an
 * Executor. Statuses and errors are readable after the run; a graph
 * may be re-run (statuses reset) but not mutated while running.
 */
class TaskGraph
{
  public:
    /**
     * Append a node. @p kind groups nodes for profiling ("compile",
     * "sim", "warm", ...) — the body runs under PROF_SCOPE
     * "taskgraph.<kind>". @p name labels this node in errors, spans,
     * and traces. Bodies must synchronize only through edges.
     */
    NodeId add(std::string name, std::string kind,
               std::function<void()> body);

    /**
     * Require @p from to finish (successfully) before @p to starts.
     * Throws std::invalid_argument on out-of-range ids or a self-edge.
     */
    void addEdge(NodeId from, NodeId to);

    std::size_t size() const { return nodes_.size(); }

    /**
     * Verify the graph is acyclic; throws std::runtime_error naming a
     * node on a cycle. Executor::run calls this before scheduling.
     */
    void validateAcyclic() const;

    NodeStatus status(NodeId id) const { return nodes_.at(id).status; }
    /** Failed: the body's exception text. Cancelled: the root cause. */
    const std::string &error(NodeId id) const
    {
        return nodes_.at(id).error;
    }
    const std::string &name(NodeId id) const
    {
        return nodes_.at(id).name;
    }

  private:
    friend class Executor;

    struct Node
    {
        std::string name;
        std::string kind;
        prof::RegionId region = 0;
        std::function<void()> body;
        std::vector<NodeId> deps;
        std::vector<NodeId> dependents;
        NodeStatus status = NodeStatus::Pending;
        std::string error;
        // Per-run scheduling state (owned by Executor::run).
        std::size_t remaining = 0;
        std::uint64_t startNs = 0;
        std::uint64_t endNs = 0;
        unsigned lane = 0;
        bool ran = false;
    };

    std::vector<Node> nodes_;
};

/**
 * Runs a TaskGraph on a runner::ThreadPool of the given width. The
 * executor owns all cross-node synchronization: one mutex guards the
 * scheduling state, and every edge implies a happens-before between
 * the two bodies, so bodies themselves stay lock-free.
 */
class Executor
{
  public:
    /** @param jobs Worker width (clamped to at least 1). */
    explicit Executor(unsigned jobs) : jobs_(jobs ? jobs : 1) {}

    /**
     * Execute the graph to completion. Node bodies that throw mark
     * their node Failed and cancel dependents (transitively); run()
     * itself throws only on a cyclic graph. Statuses/errors are left
     * on @p graph for the caller to inspect.
     */
    ExecStats run(TaskGraph &graph) const;

  private:
    unsigned jobs_;
};

} // namespace mca::taskgraph

#endif // MCA_TASKGRAPH_TASKGRAPH_HH
