#include "core/scheduler.hh"

#include <algorithm>

#include "isa/issue_rules.hh"
#include "isa/opcodes.hh"
#include "support/panic.hh"

namespace mca::core
{

bool
Scheduler::masterReady(const InFlightInst &inst, const CopyState &copy,
                       InstSeq oldest_unissued, bool *buffer_blocked,
                       Cycle *earliest)
{
    const Cycle now = m_.now;
    auto blockedAt = [&](Cycle at) {
        if (earliest)
            *earliest = at;
        return false;
    };
    if (buffer_blocked)
        *buffer_blocked = false;
    // Local register reads. A readyAt of kNoCycle means the value is
    // still awaiting its writer's issue — an event, not a time bound.
    for (const auto &rd : copy.reads) {
        const Cycle at =
            m_.clusters[rd.cluster].regs(rd.cls).readyAt[rd.phys];
        if (at > now)
            return blockedAt(at);
    }
    // Forwarded operands: the slave must have issued in a prior cycle.
    for (const auto &sl : inst.copies) {
        if (sl.isMaster || !sl.role.forwardsOperand)
            continue;
        if (!sl.issued)
            return blockedAt(kNoCycle); // the slave's issue is an event
        if (sl.issueCycle + 1 > now)
            return blockedAt(sl.issueCycle + 1);
    }
    // A free divider for non-pipelined floating-point divides.
    if (isa::opClass(inst.di.mi.op) == isa::OpClass::FpDiv) {
        bool free_div = false;
        Cycle min_busy = kNoCycle;
        for (Cycle busy : m_.clusters[copy.cluster].dividerBusyUntil) {
            if (busy <= now)
                free_div = true;
            min_busy = std::min(min_busy, busy);
        }
        if (!free_div)
            return blockedAt(min_busy);
    }
    // With an explicit MSHR file (ablation of the paper's inverted
    // MSHR), a miss that cannot get an entry must retry. The poll is a
    // counted cache event, so the copy must re-poll every cycle.
    if (isa::isMemOp(inst.di.mi.op) &&
        m_.dcache.wouldReject(inst.di.effAddr, now))
        return blockedAt(now + 1);
    // Memory dependence: a load waits until the older same-address
    // store has issued (its data then forwards). The handle resolves
    // the store's pool slot directly; a dead handle (or a reused slot,
    // detected by the sequence check) means the store retired or was
    // squashed — exactly the cases that unblock the load.
    if (inst.memDepStoreSeq != kNoSeq) {
        const InFlightInst *store = m_.pool.tryGet(inst.memDepStore);
        if (store && store->di.seq == inst.memDepStoreSeq) {
            const Cycle issued_at = store->copies[0].issueCycle;
            if (issued_at == kNoCycle || issued_at >= now) {
                if (issued_at == kNoCycle) {
                    // The store's issue is a broadcast event: the load
                    // can be in any cluster relative to the store.
                    scanLeftEventGated_ = true;
                    return blockedAt(kNoCycle);
                }
                return blockedAt(issued_at + 1);
            }
        }
    }
    // Result transfer buffers in every receiving cluster. Checked last
    // so a failure here means the copy is blocked *only* by a buffer.
    for (const auto &sl : inst.copies)
        if (!sl.isMaster && sl.role.receivesResult &&
            !bufferAvailable(m_.clusters[sl.cluster].rtb, inst,
                             oldest_unissued)) {
            if (buffer_blocked)
                *buffer_blocked = true;
            // Buffer frees mature one cycle behind issue/squash
            // events, posted as broadcasts: the blocked master and the
            // freeing slave can be in unrelated clusters.
            scanLeftEventGated_ = true;
            return blockedAt(kNoCycle);
        }
    return true;
}

void
Scheduler::issueMaster(InFlightInst &inst, CopyState &copy)
{
    const Cycle now = m_.now;
    const isa::Op op = inst.di.mi.op;
    copy.issued = true;
    copy.issueCycle = now;
    ++*m_.st.issueTotal;
    m_.st.issueWait->sample(now - inst.dispatchCycle);
    m_.lastProgress = now;
    m_.activityThisCycle = true;
    m_.record(now, inst.di.seq, copy.cluster,
              TimelineEvent::MasterIssued);

    // Effective latency (cache-aware for loads).
    unsigned lat = isa::opLatency(op);
    if (isa::isLoad(op)) {
        const auto r = m_.dcache.accessFast(inst.di.effAddr, false, now);
        const Cycle data_ready = std::max(now + 2, r.readyAt + 2);
        lat = static_cast<unsigned>(data_ready - now);
        if (inst.memDepStoreSeq != kNoSeq) {
            // Store-to-load forwarding: the waited-for store supplies
            // the data at hit latency regardless of the fill.
            lat = 2;
            ++*m_.st.loadsForwarded;
        }
        inst.dcacheLoadMiss = lat > 2;
        inst.dcacheMemBound =
            inst.dcacheLoadMiss && r.servedBy == mem::ServiceLevel::Memory;
    } else if (isa::isStore(op)) {
        m_.dcache.accessFast(inst.di.effAddr, true, now);
        lat = 1;
        // Dependent loads observe the issue through the store's own
        // copy state (copy.issueCycle, set above) via their handle.
    }
    inst.masterEffLat = lat;

    // Claim a divider for the whole operation.
    if (isa::opClass(op) == isa::OpClass::FpDiv) {
        for (Cycle &busy : m_.clusters[copy.cluster].dividerBusyUntil)
            if (busy <= now) {
                busy = now + lat;
                break;
            }
    }

    // Free operand transfer buffer entries the slaves were holding, and
    // allocate result transfer buffer entries in receiving clusters.
    for (auto &sl : inst.copies) {
        if (sl.isMaster)
            continue;
        if (sl.role.forwardsOperand && sl.holdsOtb) {
            m_.clusters[copy.cluster].otb.scheduleFree(now);
            sl.holdsOtb = false;
        }
        if (sl.role.receivesResult) {
            m_.clusters[sl.cluster].rtb.alloc();
            copy.rtbClusters.push_back(sl.cluster);
            m_.record(now + lat + 1, inst.di.seq, sl.cluster,
                      TimelineEvent::ResultWrittenToBuffer);
            ++*m_.st.resultForwards;
        }
    }

    // Destination write in the master's cluster.
    if (inst.dist.masterWritesDest) {
        for (const auto &ru : inst.renames) {
            if (ru.cluster != copy.cluster)
                continue;
            m_.clusters[ru.cluster].regs(ru.cls).readyAt[ru.newPhys] =
                now + lat;
            m_.record(now + lat + 2, inst.di.seq, copy.cluster,
                      TimelineEvent::RegWritten);
        }
    }

    m_.record(now + lat + 1, inst.di.seq, copy.cluster,
              TimelineEvent::ExecutionDone);
    copy.completeCycle = now + lat + 2;

    // Conditional branches schedule a predictor update at write-back.
    if (inst.condBranch)
        m_.pendingBranches.push_back({inst.di.seq, inst.di.pc,
                                      inst.di.taken, inst.mispredicted,
                                      now + lat + 2});

    // Wakeups: the broadcast covers what the issue unblocks at now+1 in
    // arbitrary clusters — freed OTB entries, the satisfied memory
    // dependence, and oldest-unissued movement, all of which gate their
    // waiters (buffer-blocked and store-blocked copies are flagged in
    // their clusters). The written destination and the forwarded result
    // get targeted wakeups at now+lat.
    wakeAll(now + 1);
    if (inst.dist.masterWritesDest)
        wakeCluster(copy.cluster, now + lat);
    for (const auto &sl : inst.copies)
        if (!sl.isMaster && sl.role.receivesResult)
            wakeCluster(sl.cluster, now + lat);
}

void
Scheduler::issueOperandSlave(InFlightInst &inst, CopyState &copy)
{
    const Cycle now = m_.now;
    copy.issued = true;
    copy.issueCycle = now;
    ++*m_.st.issueTotal;
    ++*m_.st.issueSlave;
    ++*m_.st.operandForwards;
    m_.lastProgress = now;
    m_.activityThisCycle = true;
    m_.record(now, inst.di.seq, copy.cluster,
              TimelineEvent::SlaveIssued);
    m_.record(now + 1, inst.di.seq, inst.copies[0].cluster,
              TimelineEvent::OperandWrittenToBuffer);

    m_.clusters[inst.copies[0].cluster].otb.alloc();
    copy.holdsOtb = true;

    if (copy.role.receivesResult) {
        // Scenario 5: stay in the queue, suspended, until the result
        // arrives from the master.
        copy.suspended = true;
        m_.record(now, inst.di.seq, copy.cluster,
                  TimelineEvent::SlaveSuspended);
    } else {
        copy.completeCycle = now + 3;
    }

    // The master (possibly in another cluster) may issue from now+1.
    // Nothing else is unblocked: the slave only *allocates* an OTB
    // entry, and the buffers it could later free are freed by the
    // master's issue.
    wakeCluster(inst.copies[0].cluster, now + 1);
}

void
Scheduler::issueResultSlave(InFlightInst &inst, CopyState &copy,
                            bool is_wake)
{
    const Cycle now = m_.now;
    ++*m_.st.issueTotal;
    m_.lastProgress = now;
    m_.activityThisCycle = true;
    if (is_wake) {
        copy.woke = true;
        copy.suspended = false;
        ++*m_.st.issueWakes;
        m_.record(now, inst.di.seq, copy.cluster,
                  TimelineEvent::SlaveWoke);
    } else {
        copy.issued = true;
        copy.issueCycle = now;
        ++*m_.st.issueSlave;
        m_.record(now, inst.di.seq, copy.cluster,
                  TimelineEvent::SlaveIssued);
    }

    // Read (and free) the result transfer buffer entry, then write the
    // local physical copy of the destination. The master's allocation
    // record is cleared so a later squash cannot double-free the entry.
    m_.clusters[copy.cluster].rtb.scheduleFree(now);
    auto &rtbs = inst.copies[0].rtbClusters;
    const auto it = std::find(rtbs.begin(), rtbs.end(), copy.cluster);
    MCA_ASSERT(it != rtbs.end(), "slave frees unallocated RTB entry");
    rtbs.erase(it);
    for (const auto &ru : inst.renames) {
        if (ru.cluster != copy.cluster)
            continue;
        m_.clusters[ru.cluster].regs(ru.cls).readyAt[ru.newPhys] =
            now + 1;
    }
    m_.record(now + 3, inst.di.seq, copy.cluster,
              TimelineEvent::RegWritten);
    copy.completeCycle = now + 3;

    // The written destination matures at now+1 for readers in this
    // cluster; the freed RTB entry is a broadcast (masters waiting on
    // it can be anywhere, and are gated in their own clusters).
    wakeCluster(copy.cluster, now + 1);
    wakeAll(now + 1);
}

void
Scheduler::scanCluster(unsigned c, InstSeq oldest_unissued,
                       Cycle *wake_out)
{
    Cluster &cl = m_.clusters[c];
    const Cycle now = m_.now;
    scanLeftEventGated_ = false;
    isa::IssueSlots slots(m_.cfg.issueRules);
    slots.newCycle();

    auto fold = [&](Cycle at) {
        if (wake_out && at != kNoCycle && at < *wake_out)
            *wake_out = at;
    };

    // Issued/removed slots are compacted out in place (two-pointer,
    // order-preserving); the issue actions never touch the queue
    // vector, so reading ahead of the write cursor is safe and no
    // per-scan survivor vector is allocated.
    std::size_t out = 0;
    unsigned older_unissued = 0;

    bool head_checked = false;
    for (std::size_t qi = 0; qi < cl.queue.size(); ++qi) {
        const QueueSlot slot = cl.queue[qi];
        InFlightInst &inst = m_.pool.get(slot.inst);
        CopyState &copy = inst.copies[slot.copyIdx];
        const CopyState &master = inst.copies[0];
        bool remove = false;
        bool buffer_blocked = false;

        if (copy.issued && !copy.suspended) {
            // Window mode: already issued, waiting for retirement.
            cl.queue[out++] = slot;
            continue;
        }
        if (inst.dispatchCycle >= now) {
            // Dispatched this cycle; eligible from the next one.
            fold(now + 1);
        } else if (copy.isMaster) {
            Cycle earliest = kNoCycle;
            const bool ready =
                masterReady(inst, copy, oldest_unissued, &buffer_blocked,
                            wake_out ? &earliest : nullptr);
            if (ready && slots.tryConsume(isa::opClass(inst.di.mi.op))) {
                issueMaster(inst, copy);
                *m_.st.issueDisorder += older_unissued;
                remove = true;
            } else if (ready) {
                fold(now + 1); // lost the slot race; slots refresh next cycle
            } else {
                // earliest == kNoCycle means an event-gated block. The
                // buffer and memory-dependence cases flag the cluster
                // for broadcasts inside masterReady; the others (an
                // unissued operand writer or forwarding slave) receive
                // targeted wakeups from the issue action itself.
                fold(earliest);
            }
        } else if (copy.suspended) {
            // Scenario-5 slave waiting for the forwarded result.
            const isa::RegClass dcls = inst.di.mi.dest->cls;
            if (master.issued &&
                now >= master.issueCycle + inst.masterEffLat) {
                if (slots.tryConsumeSlave(dcls)) {
                    issueResultSlave(inst, copy, /*is_wake=*/true);
                    remove = true;
                } else {
                    fold(now + 1);
                }
            } else if (master.issued) {
                fold(master.issueCycle + inst.masterEffLat);
            }
            // else: gated on the master's issue, which posts a
            // targeted wakeup to this cluster at result maturity.
        } else if (copy.role.forwardsOperand) {
            // Operand-forwarding slave (scenarios 2 and 5).
            bool ready = true;
            Cycle regs_at = 0;
            for (const auto &rd : copy.reads) {
                const Cycle at =
                    m_.clusters[rd.cluster].regs(rd.cls).readyAt[rd.phys];
                if (at > now)
                    ready = false;
                regs_at = std::max(regs_at, at);
            }
            const unsigned src_i = copy.role.srcMask & 1 ? 0 : 1;
            const isa::RegClass scls = inst.di.mi.srcs[src_i]->cls;
            const bool otb_ok = bufferAvailable(
                m_.clusters[master.cluster].otb, inst, oldest_unissued);
            buffer_blocked = ready && !otb_ok;
            if (ready && otb_ok) {
                if (slots.tryConsumeSlave(scls)) {
                    issueOperandSlave(inst, copy);
                    // Scenario-5 slaves stay queued while suspended.
                    remove = !copy.suspended;
                } else {
                    fold(now + 1);
                }
            } else if (!ready) {
                // regs_at == kNoCycle means the writer is unissued; its
                // issue action posts a targeted wakeup to this cluster
                // when it schedules the register write.
                fold(regs_at);
            } else {
                // Buffer-gated: OTB frees mature behind issue events.
                scanLeftEventGated_ = true;
            }
        } else if (copy.role.receivesResult) {
            // Result-receiving slave (scenarios 3 and 4).
            const isa::RegClass dcls = inst.di.mi.dest->cls;
            if (master.issued &&
                now >= master.issueCycle + inst.masterEffLat) {
                if (slots.tryConsumeSlave(dcls)) {
                    issueResultSlave(inst, copy, /*is_wake=*/false);
                    remove = true;
                } else {
                    fold(now + 1);
                }
            } else if (master.issued) {
                fold(master.issueCycle + inst.masterEffLat);
            }
            // else: gated on the master's issue, which posts a
            // targeted wakeup to this cluster at result maturity.
        }

        if (remove) {
            copy.inQueue = false;
            // In window mode the entry stays occupied until retirement
            // but never needs another scan: account it in cl.held and
            // drop it from the scan list.
            if (m_.cfg.holdQueueUntilRetire)
                ++cl.held;
        } else {
            if (!copy.issued) {
                ++older_unissued;
                // Precise deadlock avoidance (paper §2.1): if this
                // is the globally oldest unissued instruction and a
                // full buffer blocks it, the holders are younger and
                // cannot drain — replay.
                if (!head_checked && m_.cfg.bufferBlockThreshold > 0) {
                    head_checked = true;
                    if (buffer_blocked &&
                        inst.di.seq == oldest_unissued) {
                        if (copy.bufferBlockedSince == kNoCycle)
                            copy.bufferBlockedSince = now;
                        if (now - copy.bufferBlockedSince >=
                                m_.cfg.bufferBlockThreshold &&
                            (m_.replayRequestSeq == kNoSeq ||
                             inst.di.seq < m_.replayRequestSeq))
                            m_.replayRequestSeq = inst.di.seq;
                        // The block timer must be re-examined when it
                        // expires, and every cycle after a failed
                        // replay request (the request repeats).
                        fold(std::max(copy.bufferBlockedSince +
                                          m_.cfg.bufferBlockThreshold,
                                      now + 1));
                    } else {
                        copy.bufferBlockedSince = kNoCycle;
                    }
                }
            }
            cl.queue[out++] = slot;
        }
    }
    cl.queue.resize(out);
}

// --- scan engine ------------------------------------------------------

void
ScanScheduler::tick()
{
    // The oldest instruction with unissued work: if a full transfer
    // buffer blocks *it*, no older instruction exists to drain the
    // buffer, so the block is a deadlock.
    InstSeq oldest_unissued = kNoSeq;
    for (std::size_t i = 0; i < m_.rob.size(); ++i) {
        const InFlightInst &inst = m_.pool.get(m_.rob.at(i));
        if (!inst.allIssued()) {
            oldest_unissued = inst.di.seq;
            break;
        }
    }

    for (unsigned c = 0; c < m_.clusters.size(); ++c)
        scanCluster(c, oldest_unissued, nullptr);
}

// --- event engine -----------------------------------------------------

void
EventScheduler::tick()
{
    // Advance the monotone cursor over the fully-issued prefix (issued
    // flags are only ever set; squash clamps the cursor instead).
    while (cursor_ < m_.rob.size() &&
           m_.pool.get(m_.rob.at(cursor_)).allIssued())
        ++cursor_;
    const InstSeq oldest =
        cursor_ < m_.rob.size() ? m_.pool.get(m_.rob.at(cursor_)).di.seq
                                : kNoSeq;

    // Saturated: behave exactly like the scan engine and skip the
    // wakeup bookkeeping entirely (wakeAll/wakeCluster are no-ops).
    if (saturated_) {
        for (unsigned c = 0; c < m_.clusters.size(); ++c)
            scanCluster(c, oldest, nullptr);
        return;
    }

    // Deliver a matured broadcast to every cluster that is event-gated
    // NOW (each flag is fresh as of that cluster's latest scan, which
    // may be later than the tick that posted the broadcast).
    if (broadcastAt_ <= m_.now) {
        for (unsigned c = 0; c < m_.clusters.size(); ++c)
            if (eventGated_[c])
                wake_[c] = std::min(wake_[c], broadcastAt_);
        broadcastAt_ = kNoCycle;
    }

    // Consume every matured wakeup BEFORE any cluster scans. Wakeups
    // posted during this tick (an issue in one cluster freeing buffer
    // entries another cluster's copies wait on) then merge into a
    // clean slot and survive the tick — clearing per cluster mid-loop
    // would erase a same-tick posting that had min-merged with an
    // already-matured value.
    for (unsigned c = 0; c < m_.clusters.size(); ++c) {
        matured_[c] = wake_[c] <= m_.now;
        if (matured_[c])
            wake_[c] = kNoCycle;
    }
    bool all_matured = true;
    for (unsigned c = 0; c < m_.clusters.size(); ++c) {
        if (!matured_[c]) {
            all_matured = false;
            continue;
        }
        Cycle bound = kNoCycle;
        scanCluster(c, oldest, &bound);
        eventGated_[c] = scanLeftEventGated_;
        // Wakeups posted during the scan stay; keep the earlier of
        // them and the scan's own time bound.
        if (bound < wake_[c])
            wake_[c] = bound;
    }

    if (all_matured) {
        if (++saturatedStreak_ >= kSaturationStreak)
            saturated_ = true;
    } else {
        saturatedStreak_ = 0;
    }
}

Cycle
EventScheduler::nextWakeCycle() const
{
    if (saturated_)
        return m_.now + 1; // full scan every cycle, like the scan engine
    // Conservatively include a pending broadcast even if no cluster is
    // currently gated on it; broadcasts only arise from issue actions,
    // so they never throttle a genuinely idle stretch.
    Cycle e = broadcastAt_;
    for (Cycle w : wake_)
        e = std::min(e, w);
    return e;
}

void
EventScheduler::onDispatched(const InFlightInst &inst)
{
    // Freshly dispatched copies become eligible next cycle.
    for (const auto &copy : inst.copies)
        wakeCluster(copy.cluster, m_.now + 1);
}

void
EventScheduler::onRetired(unsigned count)
{
    cursor_ = cursor_ > count ? cursor_ - count : 0;
}

void
EventScheduler::onSquash()
{
    exitSaturation();
    saturatedStreak_ = 0;
    if (cursor_ > m_.rob.size())
        cursor_ = m_.rob.size();
    // Squash frees transfer-buffer entries (usable from now+1), undoes
    // renames, and can move the oldest-unissued instruction anywhere:
    // wake every cluster regardless of its gating state, and stay
    // conservative until the next scan recomputes the flags.
    const Cycle at = m_.now + 1;
    for (Cycle &w : wake_)
        w = std::min(w, at);
    std::fill(eventGated_.begin(), eventGated_.end(), char(1));
}

void
EventScheduler::onIdleCycle()
{
    // An idle cycle means the machine is no longer issue-bound: the
    // wakeup machinery (and the idle fast-forward it feeds) earns its
    // keep again.
    exitSaturation();
    saturatedStreak_ = 0;
}

void
EventScheduler::exitSaturation()
{
    if (!saturated_)
        return;
    saturated_ = false;
    // Conservative re-entry into event-driven mode: wake every cluster
    // next cycle and assume event gating everywhere; the next scans
    // recompute the real bounds and flags.
    const Cycle at = m_.now + 1;
    for (Cycle &w : wake_)
        w = std::min(w, at);
    std::fill(eventGated_.begin(), eventGated_.end(), char(1));
    broadcastAt_ = kNoCycle;
}

void
EventScheduler::wakeAll(Cycle at)
{
    if (saturated_)
        return; // every cluster scans every cycle anyway
    // Issue-path broadcast: it only concerns clusters left event-gated
    // by their last scan (a copy blocked on a full buffer or an
    // unissued store), so it is held in broadcastAt_ and matched
    // against the gating flags when it matures — time-bounded copies
    // have their maturity folded into wake_, and an issue never makes
    // a finite bound arrive sooner.
    broadcastAt_ = std::min(broadcastAt_, at);
}

void
EventScheduler::wakeCluster(unsigned c, Cycle at)
{
    if (saturated_)
        return;
    wake_[c] = std::min(wake_[c], at);
}

void
EventScheduler::saveState(ckpt::Writer &w) const
{
    w.u64(cursor_);
    w.u64(wake_.size());
    // Saturation is transient host-side state: snapshots record the
    // conservative exit values instead (same byte layout), so a
    // restored run re-enters event-driven mode with every cluster
    // woken and re-saturates on its own if the workload still
    // qualifies. Resaving a restored snapshot reproduces these bytes.
    const Cycle at = m_.now + 1;
    for (Cycle c : wake_)
        w.u64(saturated_ ? std::min(c, at) : c);
    for (char g : eventGated_)
        w.u8(saturated_ ? std::uint8_t{1} : static_cast<std::uint8_t>(g));
    w.u64(saturated_ ? kNoCycle : broadcastAt_);
}

void
EventScheduler::loadState(ckpt::Reader &r)
{
    cursor_ = static_cast<std::size_t>(r.u64());
    const std::uint64_t n = r.u64();
    MCA_ASSERT(n == wake_.size(),
               "restored scheduler cluster count mismatch");
    for (Cycle &c : wake_)
        c = r.u64();
    for (char &g : eventGated_)
        g = static_cast<char>(r.u8());
    broadcastAt_ = r.u64();
    saturated_ = false;
    saturatedStreak_ = 0;
}

std::unique_ptr<Scheduler>
makeScheduler(MachineState &m)
{
    if (m.cfg.issueEngine == ProcessorConfig::IssueEngine::Scan)
        return std::make_unique<ScanScheduler>(m);
    return std::make_unique<EventScheduler>(m);
}

} // namespace mca::core
