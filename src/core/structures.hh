/**
 * @file
 * Reusable hardware bookkeeping structures of the multicluster core:
 * transfer-buffer occupancy tracking and physical register files.
 * Factored out of the processor so they can be unit-tested and reused
 * by other machine models.
 */

#ifndef MCA_CORE_STRUCTURES_HH
#define MCA_CORE_STRUCTURES_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/panic.hh"
#include "support/types.hh"

namespace mca::core
{

/**
 * Transfer-buffer occupancy tracker. Entries freed at cycle t become
 * allocatable at t+1 (paper §2.1: "this entry can be used by another
 * instruction in the next cycle").
 */
class TransferBuffer
{
  public:
    void
    init(unsigned capacity)
    {
        capacity_ = capacity;
        inUse_ = 0;
        pendingFrees_.clear();
    }

    /** Mature the frees scheduled for cycles <= now. */
    void
    beginCycle(Cycle now)
    {
        auto it = std::remove_if(pendingFrees_.begin(),
                                 pendingFrees_.end(),
                                 [&](Cycle c) { return c <= now; });
        const auto freed =
            static_cast<unsigned>(pendingFrees_.end() - it);
        pendingFrees_.erase(it, pendingFrees_.end());
        MCA_ASSERT(inUse_ >= freed, "transfer buffer underflow");
        inUse_ -= freed;
    }

    bool canAlloc() const { return inUse_ < capacity_; }

    void
    alloc()
    {
        MCA_ASSERT(canAlloc(), "transfer buffer overflow");
        ++inUse_;
    }

    /** Entry becomes reusable at now+1. */
    void scheduleFree(Cycle now) { pendingFrees_.push_back(now + 1); }

    unsigned inUse() const { return inUse_; }
    unsigned pendingFrees() const
    {
        return static_cast<unsigned>(pendingFrees_.size());
    }
    unsigned capacity() const { return capacity_; }

    /** Scheduled free cycles (checkpointing). */
    const std::vector<Cycle> &pendingFreeList() const
    {
        return pendingFrees_;
    }

    /** Overwrite occupancy state (checkpoint restore). */
    void
    restore(unsigned in_use, std::vector<Cycle> pending_frees)
    {
        MCA_ASSERT(in_use <= capacity_,
                   "transfer buffer restore exceeds capacity");
        inUse_ = in_use;
        pendingFrees_ = std::move(pending_frees);
    }

  private:
    unsigned capacity_ = 0;
    unsigned inUse_ = 0;
    std::vector<Cycle> pendingFrees_;
};

/** Physical register file of one cluster and class. */
struct PhysRegFile
{
    /** Cycle each physical register's value becomes readable. */
    std::vector<Cycle> readyAt;
    std::vector<std::uint16_t> freeList;

    void
    init(unsigned count)
    {
        readyAt.assign(count, 0);
        freeList.clear();
        freeList.reserve(count);
        for (unsigned i = count; i-- > 0;)
            freeList.push_back(static_cast<std::uint16_t>(i));
    }

    bool hasFree(unsigned n = 1) const { return freeList.size() >= n; }

    std::uint16_t
    alloc()
    {
        MCA_ASSERT(!freeList.empty(), "physical register underflow");
        const std::uint16_t r = freeList.back();
        freeList.pop_back();
        return r;
    }

    void free(std::uint16_t r) { freeList.push_back(r); }
};

} // namespace mca::core

#endif // MCA_CORE_STRUCTURES_HH
