/**
 * @file
 * Timeline recording for the scenario reproductions (Figures 2-5).
 *
 * The processor reports microarchitectural events (per dynamic
 * instruction, per copy) to an attached recorder; the scenario bench
 * renders them as the per-cycle timelines the paper draws.
 */

#ifndef MCA_CORE_TIMELINE_HH
#define MCA_CORE_TIMELINE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/types.hh"

namespace mca::core
{

enum class TimelineEvent
{
    Dispatched,
    MasterIssued,
    SlaveIssued,
    OperandWrittenToBuffer,
    SlaveSuspended,
    SlaveWoke,
    ResultWrittenToBuffer,
    ExecutionDone,
    RegWritten,
    Retired,
    ReplayException,
};

std::string timelineEventName(TimelineEvent ev);

struct TimelineRecord
{
    Cycle cycle = 0;
    InstSeq seq = 0;
    unsigned cluster = 0;
    TimelineEvent event = TimelineEvent::Dispatched;
};

/** Passive collector of timeline records. */
class TimelineRecorder
{
  public:
    void
    record(Cycle cycle, InstSeq seq, unsigned cluster, TimelineEvent ev)
    {
        bySeq_[seq].push_back(
            static_cast<std::uint32_t>(records_.size()));
        records_.push_back({cycle, seq, cluster, ev});
    }

    const std::vector<TimelineRecord> &records() const { return records_; }

    void
    clear()
    {
        records_.clear();
        bySeq_.clear();
    }

    /**
     * All records for one dynamic instruction, in time order. Indexed:
     * O(records-of-seq log records-of-seq), not a scan of the whole
     * stream, so exporting a long run stays linear overall.
     */
    std::vector<TimelineRecord> forInst(InstSeq seq) const;

  private:
    std::vector<TimelineRecord> records_;
    /** Record indices per sequence number, in insertion order. */
    std::unordered_map<InstSeq, std::vector<std::uint32_t>> bySeq_;
};

} // namespace mca::core

#endif // MCA_CORE_TIMELINE_HH
