/**
 * @file
 * Fetch stage of the multicluster core: pulls dynamic instructions
 * from the trace through a block-granular instruction cache into the
 * shared fetch buffer (up to fetchWidth per cycle, groups ending at
 * taken control flow). Owns the fetch buffer and the fetch-side stall
 * state (replay/redirect windows, outstanding icache miss); exposes
 * the reason it is blocked so the idle fast-forward can compute the
 * next cycle fetch could make progress (docs/architecture.md).
 */

#ifndef MCA_CORE_FETCH_HH
#define MCA_CORE_FETCH_HH

#include <deque>
#include <optional>

#include "ckpt/io.hh"
#include "core/machine.hh"
#include "exec/trace.hh"

namespace mca::core
{

class FetchUnit : public ckpt::Checkpointable
{
  public:
    FetchUnit(MachineState &m, exec::TraceSource &trace)
        : m_(m), trace_(&trace)
    {
    }

    /** Run one fetch cycle (the old Processor::Impl::doFetch). */
    void tick();

    /** The shared fetch buffer; replay pushes squashed work back in. */
    std::deque<exec::DynInst> &buffer() { return buffer_; }
    const std::deque<exec::DynInst> &buffer() const { return buffer_; }

    /** Trace exhausted and nothing buffered. */
    bool
    drained() const
    {
        return traceEnded_ && !pendingFetch_ && buffer_.empty();
    }

    /** Fetch suppressed until this cycle (replay penalty / redirect). */
    Cycle stallUntil() const { return stallUntil_; }
    void setStallUntil(Cycle c) { stallUntil_ = c; }

    /** The trace feeding this fetch unit (checkpointed with it). */
    exec::TraceSource &trace() { return *trace_; }
    const exec::TraceSource &trace() const { return *trace_; }

    /** Stage-local fetch state (the trace is saved separately). */
    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

    Cycle icacheReadyAt() const { return icacheReadyAt_; }
    bool icachePending() const { return icachePending_; }

    /**
     * Counter a blocked fetch cycle bumps; replicated per skipped cycle
     * by the idle fast-forward. Mirrors the precedence of tick()'s
     * blocking checks against end-of-cycle state.
     */
    enum class IdleEffect { None, BranchStall, IcacheStall };

    IdleEffect
    idleEffect() const
    {
        if (m_.mispredictBlockSeq != kNoSeq)
            return IdleEffect::BranchStall;
        if (m_.now < stallUntil_)
            return IdleEffect::None;
        if (m_.now < icacheReadyAt_)
            return IdleEffect::IcacheStall;
        return IdleEffect::None;
    }

    /**
     * Earliest future cycle the blocking condition recorded by the last
     * tick() resolves on its own; kNoCycle when fetch is gated on
     * another unit's event (branch resolution, buffer drain) or done.
     * An explicit-MSHR rejection must be re-polled every cycle (the
     * poll itself is a counted cache event), so it pins the next event
     * to now+1 and disables skipping.
     */
    Cycle
    nextEventCycle() const
    {
        switch (blockReason_) {
          case Block::StallWindow:
            return stallUntil_;
          case Block::Icache:
            return icacheReadyAt_;
          case Block::MshrPoll:
            return m_.now + 1;
          default:
            return kNoCycle;
        }
    }

  private:
    enum class Block {
        None,
        Branch,
        StallWindow,
        Icache,
        MshrPoll,
        BufferFull,
        TraceEnd
    };

    MachineState &m_;
    exec::TraceSource *trace_;
    std::deque<exec::DynInst> buffer_;
    std::optional<exec::DynInst> pendingFetch_; // peeked but not buffered
    bool traceEnded_ = false;
    Cycle stallUntil_ = 0;
    Cycle icacheReadyAt_ = 0;
    Addr lastFetchBlock_ = ~Addr{0};
    bool icachePending_ = false;
    Addr icachePendingBlock_ = 0;
    Block blockReason_ = Block::None;
};

} // namespace mca::core

#endif // MCA_CORE_FETCH_HH
