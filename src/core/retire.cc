#include "core/retire.hh"

#include <algorithm>

#include "isa/opcodes.hh"

namespace mca::core
{

unsigned
RetireUnit::tick()
{
    unsigned n = 0;
    while (n < m_.cfg.retireWidth && !m_.rob.empty() &&
           m_.rob.front()->allComplete(m_.now)) {
        InFlightInst &inst = *m_.rob.front();
        // Free the previous mappings of every renamed destination.
        for (const auto &ru : inst.renames)
            m_.clusters[ru.cluster].regs(ru.cls).free(ru.prevPhys);
        if (isa::isStore(inst.di.mi.op))
            m_.storeIssueCycle.erase(inst.di.seq);
        if (m_.cfg.holdQueueUntilRetire) {
            for (auto &cl : m_.clusters)
                cl.queue.erase(
                    std::remove_if(cl.queue.begin(), cl.queue.end(),
                                   [&](const QueueSlot &s) {
                                       return s.inst == &inst;
                                   }),
                    cl.queue.end());
        }
        m_.record(m_.now, inst.di.seq, inst.copies[0].cluster,
                  TimelineEvent::Retired);
        ++*m_.st.retired;
        ++n;
        ++m_.retiredThisCycle;
        m_.lastProgress = m_.now;
        m_.consecutiveReplays = 0;
        m_.activityThisCycle = true;
        m_.rob.pop_front();
    }
    return n;
}

void
RetireUnit::resolveBranches()
{
    auto it = m_.pendingBranches.begin();
    while (it != m_.pendingBranches.end()) {
        if (it->wbCycle > m_.now) {
            ++it;
            continue;
        }
        m_.predictor->update(it->pc, it->taken);
        if (it->mispredicted)
            m_.predictor->squashRepair(it->taken);
        if (it->seq == m_.mispredictBlockSeq) {
            m_.mispredictBlockSeq = kNoSeq;
            fetch_.setStallUntil(m_.now + 1);
        }
        it = m_.pendingBranches.erase(it);
        m_.activityThisCycle = true;
    }
}

Cycle
RetireUnit::nextEventCycle() const
{
    Cycle e = kNoCycle;
    auto fold = [&](Cycle at) {
        if (at != kNoCycle && at > m_.now && at < e)
            e = at;
    };
    if (!m_.rob.empty())
        for (const auto &copy : m_.rob.front()->copies)
            fold(copy.completeCycle);
    for (const auto &b : m_.pendingBranches)
        fold(b.wbCycle);
    return e;
}

} // namespace mca::core
