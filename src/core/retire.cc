#include "core/retire.hh"

#include <algorithm>

#include "isa/opcodes.hh"

namespace mca::core
{

unsigned
RetireUnit::tick()
{
    unsigned n = 0;
    while (n < m_.cfg.retireWidth && !m_.rob.empty() &&
           m_.pool.get(m_.rob.front()).allComplete(m_.now)) {
        const InFlightHandle h = m_.rob.front();
        InFlightInst &inst = m_.pool.get(h);
        // Free the previous mappings of every renamed destination.
        for (const auto &ru : inst.renames)
            m_.clusters[ru.cluster].regs(ru.cls).free(ru.prevPhys);
        // Release the queue entries the copies held to retirement (a
        // retiring instruction's copies are all complete, hence all in
        // the held account, never in the scan list).
        if (m_.cfg.holdQueueUntilRetire)
            for (const auto &copy : inst.copies)
                --m_.clusters[copy.cluster].held;
        // Drop the store's own dependence-index entry (an older store
        // to the dword cannot still be in flight: retirement is in
        // order, and a younger one would have overwritten the entry).
        if (isa::isStore(inst.di.mi.op)) {
            const auto it = m_.storeByDword.find(inst.di.effAddr >> 3);
            if (it != m_.storeByDword.end() &&
                it->second.seq == inst.di.seq)
                m_.storeByDword.erase(it);
        }
        m_.record(m_.now, inst.di.seq, inst.copies[0].cluster,
                  TimelineEvent::Retired);
        ++*m_.st.retired;
        ++n;
        ++m_.retiredThisCycle;
        m_.lastProgress = m_.now;
        m_.consecutiveReplays = 0;
        m_.activityThisCycle = true;
        m_.rob.popFront();
        m_.pool.free(h);
    }
    return n;
}

void
RetireUnit::resolveBranches()
{
    auto it = m_.pendingBranches.begin();
    while (it != m_.pendingBranches.end()) {
        if (it->wbCycle > m_.now) {
            ++it;
            continue;
        }
        m_.predictor->update(it->pc, it->taken);
        if (it->mispredicted)
            m_.predictor->squashRepair(it->taken);
        if (it->seq == m_.mispredictBlockSeq) {
            m_.mispredictBlockSeq = kNoSeq;
            fetch_.setStallUntil(m_.now + 1);
        }
        it = m_.pendingBranches.erase(it);
        m_.activityThisCycle = true;
    }
}

Cycle
RetireUnit::nextEventCycle() const
{
    Cycle e = kNoCycle;
    auto fold = [&](Cycle at) {
        if (at != kNoCycle && at > m_.now && at < e)
            e = at;
    };
    if (!m_.rob.empty())
        for (const auto &copy : m_.pool.get(m_.rob.front()).copies)
            fold(copy.completeCycle);
    for (const auto &b : m_.pendingBranches)
        fold(b.wbCycle);
    return e;
}

} // namespace mca::core
