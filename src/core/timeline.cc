#include "core/timeline.hh"

#include <algorithm>

namespace mca::core
{

std::string
timelineEventName(TimelineEvent ev)
{
    switch (ev) {
      case TimelineEvent::Dispatched: return "dispatched";
      case TimelineEvent::MasterIssued: return "master issued";
      case TimelineEvent::SlaveIssued: return "slave issued";
      case TimelineEvent::OperandWrittenToBuffer:
        return "operand written into transfer buffer";
      case TimelineEvent::SlaveSuspended: return "slave suspended";
      case TimelineEvent::SlaveWoke: return "slave wakes";
      case TimelineEvent::ResultWrittenToBuffer:
        return "result written into transfer buffer";
      case TimelineEvent::ExecutionDone: return "execution done";
      case TimelineEvent::RegWritten: return "register written";
      case TimelineEvent::Retired: return "retired";
      case TimelineEvent::ReplayException: return "replay exception";
      default: return "<bad-event>";
    }
}

std::vector<TimelineRecord>
TimelineRecorder::forInst(InstSeq seq) const
{
    std::vector<TimelineRecord> out;
    const auto it = bySeq_.find(seq);
    if (it == bySeq_.end())
        return out;
    out.reserve(it->second.size());
    for (const std::uint32_t idx : it->second)
        out.push_back(records_[idx]);
    // Records carry future cycles (e.g. a result write scheduled at
    // issue time), so insertion order is not time order.
    std::stable_sort(out.begin(), out.end(),
                     [](const TimelineRecord &a, const TimelineRecord &b) {
                         return a.cycle < b.cycle;
                     });
    return out;
}

} // namespace mca::core
