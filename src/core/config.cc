#include "core/config.hh"

namespace mca::core
{

namespace
{

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

[[noreturn]] void
fail(const std::string &what)
{
    throw std::runtime_error("ProcessorConfig::validate: " + what);
}

/** Geometry checks mirroring the MCA_ASSERTs in mem::Cache, but as
 *  catchable errors raised before any machine is constructed. */
void
validateCache(const std::string &which, const mem::CacheParams &p)
{
    if (p.sizeBytes == 0)
        fail(which + ": size must be nonzero");
    if (p.assoc == 0)
        fail(which + ": associativity must be >= 1");
    if (!isPowerOfTwo(p.blockBytes))
        fail(which + ": block size must be a power of two (got " +
             std::to_string(p.blockBytes) + ")");
    if (p.sizeBytes % (static_cast<std::uint64_t>(p.blockBytes) * p.assoc) !=
        0)
        fail(which + ": size " + std::to_string(p.sizeBytes) +
             " not divisible by block*assoc (" +
             std::to_string(p.blockBytes) + "*" + std::to_string(p.assoc) +
             ")");
    const std::uint64_t sets =
        p.sizeBytes / (static_cast<std::uint64_t>(p.blockBytes) * p.assoc);
    if (!isPowerOfTwo(sets))
        fail(which + ": set count " + std::to_string(sets) +
             " must be a power of two (size/(block*assoc))");
}

} // namespace

void
ProcessorConfig::validate() const
{
    if (numClusters == 0)
        fail("numClusters must be >= 1");
    if (fetchWidth == 0)
        fail("fetchWidth must be >= 1");
    if (dispatchQueueEntries == 0)
        fail("dispatchQueueEntries must be >= 1");
    if (retireWidth == 0)
        fail("retireWidth must be >= 1");
    if (regMap.numClusters() != numClusters)
        fail("register map covers " + std::to_string(regMap.numClusters()) +
             " clusters but the machine has " + std::to_string(numClusters));

    validateCache("icache", memory.icache);
    validateCache("dcache", memory.dcache);
    if (memory.hasL2()) {
        mem::CacheParams l2;
        l2.sizeBytes = memory.l2SizeBytes;
        l2.assoc = memory.l2Assoc;
        l2.blockBytes = memory.l2BlockBytes;
        validateCache("l2", l2);
        if (memory.l2BlockBytes < memory.icache.blockBytes ||
            memory.l2BlockBytes < memory.dcache.blockBytes)
            fail("l2: block size must be >= the L1 block sizes");
    }
    if (memory.memLatency == 0)
        fail("memory latency must be >= 1 cycle");
}

} // namespace mca::core
