#include "core/processor.hh"

#include <algorithm>

#include "core/dispatch.hh"
#include "core/fetch.hh"
#include "core/machine.hh"
#include "core/retire.hh"
#include "core/scheduler.hh"
#include "isa/opcodes.hh"
#include "obs/cycle_stack.hh"
#include "obs/snapshot.hh"
#include "support/panic.hh"

namespace mca::core
{

/**
 * Composition root of the pipeline components. The stages share one
 * MachineState; the Impl owns the cross-cutting concerns that span
 * stages: replay exceptions (squash + re-feed), the stall watchdog,
 * the paranoid invariant sweep, cycle-stack attribution, and the idle
 * fast-forward used by run() (docs/architecture.md).
 */
struct Processor::Impl
{
    Impl(const ProcessorConfig &config, exec::TraceSource &trace_src,
         StatGroup &sg)
        : m(config, sg), fetch(m, trace_src), sched(makeScheduler(m)),
          retire(m, fetch), dispatch(m, fetch, *sched)
    {
    }

    MachineState m;
    FetchUnit fetch;
    std::unique_ptr<Scheduler> sched;
    RetireUnit retire;
    DispatchUnit dispatch;
    obs::CycleStack *cstack = nullptr;

    /** Scratch for checkInvariants (avoids per-cycle allocation). */
    std::vector<int> invRefs;
    std::vector<unsigned> invOtbHolds;
    std::vector<unsigned> invRtbHolds;

    bool
    pipelineEmpty() const
    {
        return fetch.drained() && m.rob.empty();
    }

    void beginCycle();
    void serviceReplayRequest();
    void replayFromIndex(std::size_t keep);
    void checkWatchdog();
    void checkInvariants();
    obs::StallCause classifyStall() const;
    Cycle fastForward(Cycle next, Cycle limit);
};

void
Processor::Impl::beginCycle()
{
    for (unsigned c = 0; c < m.clusters.size(); ++c) {
        m.clusters[c].otb.beginCycle(m.now);
        m.clusters[c].rtb.beginCycle(m.now);
        m.st.queueOccupancy[c]->sample(m.clusters[c].queue.size());
    }
    m.st.robOccupancy->sample(m.rob.size());
    m.retiredThisCycle = 0;
    m.dqStallThisCycle = false;
    m.activityThisCycle = false;
}

void
Processor::Impl::serviceReplayRequest()
{
    if (m.replayRequestSeq == kNoSeq)
        return;
    const InstSeq seq = m.replayRequestSeq;
    m.replayRequestSeq = kNoSeq;
    // Locate the blocked instruction; squash everything younger so the
    // buffer entries it is waiting for drain.
    for (std::size_t i = 0; i < m.rob.size(); ++i) {
        if (m.rob[i]->di.seq != seq)
            continue;
        if (i + 1 >= m.rob.size())
            return; // nothing younger to squash; watchdog will decide
        ++*m.st.replayBuffer;
        replayFromIndex(i + 1);
        // Restart the block timer so the head waits a full threshold
        // before requesting another replay.
        for (auto &copy : m.rob[i]->copies)
            copy.bufferBlockedSince = kNoCycle;
        return;
    }
}

void
Processor::Impl::replayFromIndex(std::size_t keep)
{
    MCA_ASSERT(keep >= 1 && keep <= m.rob.size(), "bad replay index");
    ++*m.st.replayExceptions;
    m.record(m.now, m.rob[keep - 1]->di.seq,
             m.rob[keep - 1]->copies[0].cluster,
             TimelineEvent::ReplayException);

    // Squash from the youngest back to (and excluding) index keep-1.
    std::vector<exec::DynInst> replayed;
    while (m.rob.size() > keep) {
        InFlightInst &inst = *m.rob.back();
        ++*m.st.replaySquashed;
        replayed.push_back(inst.di);
        // Undo renames in reverse order.
        for (std::size_t i = inst.renames.size(); i-- > 0;) {
            const auto &ru = inst.renames[i];
            Cluster &cl = m.clusters[ru.cluster];
            cl.mapOf(ru.cls, ru.arch) = ru.prevPhys;
            cl.regs(ru.cls).free(ru.newPhys);
        }
        // Release transfer-buffer entries.
        for (auto &copy : inst.copies) {
            if (copy.holdsOtb)
                m.clusters[inst.copies[0].cluster].otb.scheduleFree(
                    m.now);
            if (copy.isMaster)
                for (std::uint8_t c : copy.rtbClusters)
                    m.clusters[c].rtb.scheduleFree(m.now);
        }
        // Remove copies from the queues.
        for (auto &cl : m.clusters)
            cl.queue.erase(
                std::remove_if(cl.queue.begin(), cl.queue.end(),
                               [&](const QueueSlot &s) {
                                   return s.inst == &inst;
                               }),
                cl.queue.end());
        // Drop any pending predictor update.
        m.pendingBranches.erase(
            std::remove_if(m.pendingBranches.begin(),
                           m.pendingBranches.end(),
                           [&](const PendingBranch &b) {
                               return b.seq == inst.di.seq;
                           }),
            m.pendingBranches.end());
        if (m.mispredictBlockSeq == inst.di.seq)
            m.mispredictBlockSeq = kNoSeq;
        if (m.replayRequestSeq == inst.di.seq)
            m.replayRequestSeq = kNoSeq;
        if (isa::isStore(inst.di.mi.op))
            m.storeIssueCycle.erase(inst.di.seq);
        m.rob.pop_back();
    }

    // Re-feed the squashed instructions, oldest first. `replayed` is
    // youngest-first (popped from the ROB tail), so pushing each entry
    // to the buffer front in that order leaves the oldest at the front.
    for (const auto &di : replayed)
        fetch.buffer().push_front(di);

    fetch.setStallUntil(m.now + m.cfg.replayPenalty);
    m.lastProgress = m.now;
    m.activityThisCycle = true;
    ++m.consecutiveReplays;
    if (m.consecutiveReplays > 16)
        MCA_PANIC("replay exceptions are not making progress (seq ",
                  m.rob.empty() ? 0 : m.rob.front()->di.seq, ")");
    sched->onSquash();
}

void
Processor::Impl::checkWatchdog()
{
    if (m.rob.empty() || m.now - m.lastProgress <= m.cfg.replayWatchdog)
        return;
    // The machine is wedged: the oldest instruction cannot finish while
    // younger instructions hold transfer-buffer entries (paper §2.1's
    // issue deadlock). Squash everything younger than the oldest
    // in-flight instruction and replay it.
    ++*m.st.replayWatchdog;
    replayFromIndex(1);
}

void
Processor::Impl::checkInvariants()
{
    for (unsigned c = 0; c < m.clusters.size(); ++c) {
        Cluster &cl = m.clusters[c];
        for (unsigned ci = 0; ci < 2; ++ci) {
            const auto cls = static_cast<isa::RegClass>(ci);
            PhysRegFile &rf = cl.regs(cls);
            invRefs.assign(rf.readyAt.size(), 0);
            for (auto p : rf.freeList) {
                MCA_ASSERT(p < rf.readyAt.size(), "free-list range");
                ++invRefs[p];
            }
            for (unsigned a = 0; a < isa::kNumArchRegs; ++a)
                if (cl.mappedOf(cls, a))
                    ++invRefs[cl.mapOf(cls, a)];
            for (const auto &inst : m.rob)
                for (const auto &ru : inst->renames)
                    if (ru.cluster == c && ru.cls == cls)
                        ++invRefs[ru.prevPhys];
            for (std::size_t p = 0; p < invRefs.size(); ++p)
                MCA_ASSERT(invRefs[p] == 1, "phys reg ", p, " cluster ",
                           c, " class ", ci, " referenced ", invRefs[p],
                           " times at cycle ", m.now);
        }
    }
    // Transfer-buffer occupancy must equal the live holds plus the
    // frees that have not matured yet.
    invOtbHolds.assign(m.clusters.size(), 0);
    invRtbHolds.assign(m.clusters.size(), 0);
    for (const auto &inst : m.rob)
        for (const auto &copy : inst->copies) {
            if (copy.holdsOtb)
                ++invOtbHolds[inst->copies[0].cluster];
            if (copy.isMaster)
                for (auto c : copy.rtbClusters)
                    ++invRtbHolds[c];
        }
    for (unsigned c = 0; c < m.clusters.size(); ++c) {
        MCA_ASSERT(m.clusters[c].otb.inUse() ==
                       invOtbHolds[c] + m.clusters[c].otb.pendingFrees(),
                   "OTB accounting leak in cluster ", c, " at cycle ",
                   m.now, ": inUse ", m.clusters[c].otb.inUse(),
                   " holds ", invOtbHolds[c], " pending ",
                   m.clusters[c].otb.pendingFrees());
        MCA_ASSERT(m.clusters[c].rtb.inUse() ==
                       invRtbHolds[c] + m.clusters[c].rtb.pendingFrees(),
                   "RTB accounting leak in cluster ", c, " at cycle ",
                   m.now, ": inUse ", m.clusters[c].rtb.inUse(),
                   " holds ", invRtbHolds[c], " pending ",
                   m.clusters[c].rtb.pendingFrees());
    }
    // The retire window must hold program order.
    for (std::size_t i = 1; i < m.rob.size(); ++i)
        MCA_ASSERT(m.rob[i - 1]->di.seq < m.rob[i]->di.seq,
                   "retire window out of program order at cycle ",
                   m.now);
    // The fetch buffer must as well.
    const auto &fb = fetch.buffer();
    for (std::size_t i = 1; i < fb.size(); ++i)
        MCA_ASSERT(fb[i - 1].seq < fb[i].seq,
                   "fetch buffer out of program order at cycle ", m.now);
}

/**
 * Attribute this cycle's empty retire slots to a single cause by
 * inspecting the oldest unretired instruction (the classic CPI-stack
 * convention: the head is what retirement is waiting on). Runs at the
 * end of the cycle, after every stage has acted. Evaluated only when a
 * cycle stack is attached and the retire bandwidth was not saturated.
 */
obs::StallCause
Processor::Impl::classifyStall() const
{
    using obs::StallCause;

    if (m.rob.empty()) {
        // Nothing in flight: the front end is the limiter.
        if (m.mispredictBlockSeq != kNoSeq || m.now < fetch.stallUntil())
            return StallCause::Squash; // redirect / replay refill
        if (fetch.icachePending() || m.now < fetch.icacheReadyAt())
            return StallCause::IcacheMiss;
        if (m.dqStallThisCycle)
            return StallCause::DispatchQueue;
        // Trace exhausted (drain) or the pipeline is still filling
        // after a squash-free start; both are charged as drain.
        return StallCause::Drain;
    }

    const InFlightInst &head = *m.rob.front();
    const CopyState &master = head.copies[0];

    if (!master.issued) {
        // Waiting to issue: find the binding constraint, most specific
        // first. A full RTB in any receiving cluster gates issue
        // outright (Table 1), so check it before operand arrival.
        for (const auto &sl : head.copies)
            if (!sl.isMaster && sl.role.receivesResult &&
                !m.clusters[sl.cluster].rtb.canAlloc())
                return StallCause::ResultBuffer;
        for (const auto &sl : head.copies) {
            if (sl.isMaster || !sl.role.forwardsOperand)
                continue;
            if (!sl.issued)
                return m.clusters[master.cluster].otb.canAlloc()
                           ? StallCause::RemoteReg
                           : StallCause::OperandBuffer;
            if (sl.issueCycle + 1 > m.now)
                return StallCause::RemoteReg; // operand still in transit
        }
        // No cluster-specific cause: the head waits on local operands,
        // dividers, or memory dependences. If dispatch also lost
        // bandwidth to a full queue this cycle the machine is congested
        // end to end; charge the capacity loss, else base.
        return m.dqStallThisCycle ? StallCause::DispatchQueue
                                  : StallCause::Base;
    } else if (master.completeCycle == kNoCycle ||
               master.completeCycle > m.now) {
        // Master executing; a long-latency load is a d-cache stall,
        // attributed to the level that serviced the miss; anything else
        // is plain execution latency (base).
        if (head.dcacheLoadMiss)
            return head.dcacheMemBound ? StallCause::DcacheMem
                                       : StallCause::DcacheL2;
        return StallCause::Base;
    } else {
        // Master done; a slave copy is outstanding.
        for (const auto &sl : head.copies)
            if (!sl.isMaster && sl.suspended)
                return StallCause::SlaveSuspend;
        for (const auto &sl : head.copies) {
            if (sl.isMaster)
                continue;
            if (sl.completeCycle == kNoCycle || sl.completeCycle > m.now)
                return sl.role.receivesResult ? StallCause::RemoteReg
                                              : StallCause::Base;
        }
        // Completed this cycle after retirement ran; commits next
        // cycle. Charged as base (commit latency).
    }
    return StallCause::Base;
}

/**
 * Idle fast-forward: called after a stepped cycle with no activity
 * (nothing retired, resolved, issued, fetched, dispatched, remapped,
 * or replayed). Such a cycle's blocked decisions repeat unchanged
 * until the earliest future event, so the simulator jumps straight to
 * it, replicating the per-cycle bookkeeping (occupancy samples, stall
 * counters, cycle-stack attribution) in bulk. Returns the cycle to
 * resume stepping at (`next` when no skip applies).
 */
Cycle
Processor::Impl::fastForward(Cycle next, Cycle limit)
{
    if (!m.cfg.idleSkip ||
        m.cfg.issueEngine != ProcessorConfig::IssueEngine::Event)
        return next;
    if (m.activityThisCycle || pipelineEmpty())
        return next;

    // Earliest future cycle any stage can act: a scheduler wakeup, a
    // head-copy completion or branch write-back, a fetch stall window
    // or icache fill maturing, or the stall watchdog tripping.
    Cycle e = kNoCycle;
    auto fold = [&](Cycle at) {
        if (at != kNoCycle && at < e)
            e = at;
    };
    fold(sched->nextWakeCycle());
    fold(retire.nextEventCycle());
    fold(fetch.nextEventCycle());
    if (!m.rob.empty())
        fold(m.lastProgress + m.cfg.replayWatchdog + 1);
    if (e == kNoCycle)
        return next; // purely event-gated; resolved by other stages
    e = std::min(e, limit);
    if (e <= next)
        return next;
    const Cycle k = e - next;

    // Replicate k identical idle cycles in bulk. No transfer-buffer
    // frees are pending (frees are only scheduled by issue and squash,
    // both activity), so beginCycle would be a pure re-sample.
    for (unsigned c = 0; c < m.clusters.size(); ++c)
        m.st.queueOccupancy[c]->sample(m.clusters[c].queue.size(), k);
    m.st.robOccupancy->sample(m.rob.size(), k);
    switch (fetch.idleEffect()) {
      case FetchUnit::IdleEffect::BranchStall:
        *m.st.stallBranchCycles += k;
        break;
      case FetchUnit::IdleEffect::IcacheStall:
        *m.st.stallIcacheCycles += k;
        break;
      case FetchUnit::IdleEffect::None:
        break;
    }
    switch (dispatch.idleEffect()) {
      case DispatchUnit::IdleEffect::RemapDrain:
        *m.st.remapDrainCycles += k;
        break;
      case DispatchUnit::IdleEffect::StallRob:
        *m.st.stallRob += k;
        break;
      case DispatchUnit::IdleEffect::StallDq:
        *m.st.stallDq += k;
        break;
      case DispatchUnit::IdleEffect::StallPhys:
        *m.st.stallPhys += k;
        break;
      case DispatchUnit::IdleEffect::None:
        break;
    }
    if (cstack) {
        // The stall cause is constant across the window: every
        // now-comparison it makes has its flip cycle folded into e.
        cstack->accountIdle(classifyStall(), k);
    }
    *m.st.cycles += k;
    m.now = e;
    return e;
}

// ---------------------------------------------------------------------

Processor::Processor(const ProcessorConfig &config,
                     exec::TraceSource &trace, StatGroup &stats)
    : config_(config), impl_(std::make_unique<Impl>(config, trace, stats))
{
}

Processor::~Processor() = default;

void
Processor::attachTimeline(TimelineRecorder *recorder)
{
    impl_->m.timeline = recorder;
}

void
Processor::attachCycleStack(obs::CycleStack *stack)
{
    impl_->cstack = stack;
    if (stack)
        stack->slots = impl_->m.cfg.retireWidth;
}

void
Processor::observe(obs::CycleObs &out) const
{
    const Impl &im = *impl_;
    out.cycle = cycle_;
    out.retired = im.m.st.retired->value();
    out.dispatched = im.m.st.dispatched->value();
    out.icacheAccesses = im.m.icache.accesses();
    out.icacheMisses = im.m.icache.misses();
    out.dcacheAccesses = im.m.dcache.accesses();
    out.dcacheMisses = im.m.dcache.misses();
    out.hasL2 = im.m.memsys.hasL2();
    if (const mem::Cache *l2 = im.m.memsys.l2()) {
        out.l2Accesses = l2->accesses();
        out.l2Misses = l2->misses();
        out.l2InFlight = l2->inFlight(cycle_);
    } else {
        out.l2Accesses = 0;
        out.l2Misses = 0;
        out.l2InFlight = 0;
    }
    out.l1iInFlight = im.m.icache.inFlight(cycle_);
    out.l1dInFlight = im.m.dcache.inFlight(cycle_);
    out.memInFlight = im.m.memsys.memory().inFlight(cycle_);
    out.robOcc = static_cast<unsigned>(im.m.rob.size());
    out.robCap = im.m.cfg.retireWindow;
    out.clusters.resize(im.m.clusters.size());
    for (std::size_t c = 0; c < im.m.clusters.size(); ++c) {
        const Cluster &cl = im.m.clusters[c];
        obs::ClusterObs &o = out.clusters[c];
        o.queueOcc = static_cast<unsigned>(cl.queue.size());
        o.queueCap = cl.queueCapacity;
        o.otbInUse = cl.otb.inUse();
        o.otbCap = cl.otb.capacity();
        o.rtbInUse = cl.rtb.inUse();
        o.rtbCap = cl.rtb.capacity();
    }
}

std::uint64_t
Processor::retiredInstructions() const
{
    return impl_->m.st.retired->value();
}

bool
Processor::step()
{
    Impl &im = *impl_;
    if (im.pipelineEmpty())
        return false;
    im.m.now = cycle_;
    im.beginCycle();
    const unsigned n_retired = im.retire.tick();
    if (n_retired > 0)
        im.sched->onRetired(n_retired);
    im.retire.resolveBranches();
    im.sched->tick();
    im.serviceReplayRequest();
    im.fetch.tick();
    im.dispatch.tick();
    im.checkWatchdog();
    if (im.m.cfg.paranoid)
        im.checkInvariants();
    if (im.cstack) {
        obs::CycleStack &cs = *im.cstack;
        cs.slots = im.m.cfg.retireWidth;
        const auto cause = im.m.retiredThisCycle < cs.slots
                               ? im.classifyStall()
                               : obs::StallCause::Base;
        cs.account(im.m.retiredThisCycle, cause);
    }
    ++cycle_;
    ++stepped_;
    ++*im.m.st.cycles;
    return true;
}

SimResult
Processor::run(Cycle max_cycles)
{
    SimResult result;
    while (cycle_ < max_cycles) {
        if (!step())
            break;
        cycle_ = impl_->fastForward(cycle_, max_cycles);
    }
    result.cycles = cycle_;
    result.instructions = impl_->m.st.retired->value();
    result.completed = impl_->pipelineEmpty();
    return result;
}

} // namespace mca::core
