#include "core/processor.hh"

#include "core/structures.hh"

#include <algorithm>
#include <array>
#include <optional>

#include "isa/opcodes.hh"
#include "obs/cycle_stack.hh"
#include "obs/snapshot.hh"
#include "support/panic.hh"

namespace mca::core
{

namespace
{

/** One register read a copy performs from its own cluster. */
struct SrcRead
{
    std::uint8_t srcIndex;
    std::uint8_t cluster;
    isa::RegClass cls;
    std::uint16_t phys;
};

/** Rename-table change made at dispatch (undone on squash). */
struct RenameUpdate
{
    std::uint8_t cluster;
    isa::RegClass cls;
    std::uint8_t arch;
    std::uint16_t newPhys;
    std::uint16_t prevPhys;
};

/** Execution state of one copy (master or slave) of an instruction. */
struct CopyState
{
    std::uint8_t cluster = 0;
    bool isMaster = false;
    isa::SlaveRole role;
    std::vector<SrcRead> reads;
    /** Clusters where this (master) copy allocated RTB entries. */
    std::vector<std::uint8_t> rtbClusters;

    bool inQueue = false;
    bool issued = false;
    /** Scenario-5 slave: operand sent, waiting for the result. */
    bool suspended = false;
    bool woke = false;
    /** Operand slave holds an OTB entry until its master issues. */
    bool holdsOtb = false;
    Cycle issueCycle = kNoCycle;
    Cycle completeCycle = kNoCycle;
    /** First cycle this copy was blocked only by a full buffer. */
    Cycle bufferBlockedSince = kNoCycle;
};

/** A dynamic instruction in flight (ROB entry). */
struct InFlightInst
{
    exec::DynInst di;
    isa::Distribution dist;
    std::vector<CopyState> copies; // copies[0] is the master
    std::vector<RenameUpdate> renames;
    Cycle dispatchCycle = 0;
    /** Master's effective latency (set at master issue; cache-aware). */
    unsigned masterEffLat = 0;
    /**
     * Youngest older store to the same dword, if any (perfect memory
     * disambiguation; the load waits and forwards from it).
     */
    InstSeq memDepStoreSeq = kNoSeq;
    /** Load whose effective latency exceeded the d-cache hit time. */
    bool dcacheLoadMiss = false;
    bool condBranch = false;
    bool predTaken = false;
    bool mispredicted = false;

    bool
    allComplete(Cycle now) const
    {
        for (const auto &c : copies)
            if (c.completeCycle == kNoCycle || c.completeCycle > now)
                return false;
        return true;
    }
};

/** Dispatch-queue slot: a copy waiting to issue. */
struct QueueSlot
{
    InFlightInst *inst;
    unsigned copyIdx;
};

/** Hardware state of one cluster. */
struct Cluster
{
    std::vector<QueueSlot> queue;   // age-ordered
    unsigned queueCapacity = 0;
    PhysRegFile intRegs, fpRegs;
    std::array<std::array<std::uint16_t, isa::kNumArchRegs>, 2> renameMap{};
    std::array<std::array<bool, isa::kNumArchRegs>, 2> mapped{};
    TransferBuffer otb, rtb;
    std::vector<Cycle> dividerBusyUntil;

    PhysRegFile &
    regs(isa::RegClass cls)
    {
        return cls == isa::RegClass::Int ? intRegs : fpRegs;
    }

    std::uint16_t &
    mapOf(isa::RegClass cls, unsigned arch)
    {
        return renameMap[static_cast<unsigned>(cls)][arch];
    }

    bool &
    mappedOf(isa::RegClass cls, unsigned arch)
    {
        return mapped[static_cast<unsigned>(cls)][arch];
    }
};

/** A branch awaiting write-back (predictor update + fetch redirect). */
struct PendingBranch
{
    InstSeq seq;
    Addr pc;
    bool taken;
    bool mispredicted;
    Cycle wbCycle;
};

} // namespace

// ---------------------------------------------------------------------

struct Processor::Impl
{
    Impl(const ProcessorConfig &config, exec::TraceSource &trace,
         StatGroup &stats);

    // --- configuration & substrate -----------------------------------
    ProcessorConfig cfg;
    exec::TraceSource *trace;
    StatGroup *stats;
    mem::Cache icache;
    mem::Cache dcache;
    std::unique_ptr<bpred::Predictor> predictor;
    TimelineRecorder *timeline = nullptr;
    obs::CycleStack *cstack = nullptr;

    // --- machine state ------------------------------------------------
    Cycle now = 0;
    std::vector<Cluster> clusters;
    std::deque<std::unique_ptr<InFlightInst>> rob;
    std::deque<exec::DynInst> fetchBuffer;
    std::optional<exec::DynInst> pendingFetch; // peeked but not buffered
    bool traceEnded = false;

    std::vector<PendingBranch> pendingBranches;
    /** Dispatch/fetch blocked behind this unresolved mispredict. */
    InstSeq mispredictBlockSeq = kNoSeq;
    Cycle fetchStallUntil = 0;
    Cycle icacheReadyAt = 0;
    Addr lastFetchBlock = ~Addr{0};
    bool icachePending = false;
    Addr icachePendingBlock = 0;

    Cycle lastProgress = 0;
    unsigned consecutiveReplays = 0;
    /** Per-cycle facts the cycle-stack attribution reads at cycle end. */
    unsigned retiredThisCycle = 0;
    bool dqStallThisCycle = false;
    /** Oldest buffer-blocked queue head requesting a replay. */
    InstSeq replayRequestSeq = kNoSeq;
    /**
     * In-flight stores by sequence number: kNoCycle until the store
     * issues, then its issue cycle. Erased at retire/squash, so a
     * missing entry means the store completed long ago.
     */
    std::map<InstSeq, Cycle> storeIssueCycle;

    // --- statistics ----------------------------------------------------
    Counter *cycles;
    Counter *retired;
    Counter *dispatched;
    Counter *fetched;
    Counter *distSingle;
    Counter *distDual;
    Counter *distCopies;
    Counter *operandForwards;
    Counter *resultForwards;
    Counter *issueTotal;
    Counter *issueSlave;
    Counter *issueWakes;
    Counter *issueDisorder;
    Counter *stallDq;
    Counter *stallPhys;
    Counter *stallRob;
    Counter *stallIcacheCycles;
    Counter *stallBranchCycles;
    Counter *replayExceptions;
    Counter *replayBuffer;
    Counter *replayWatchdog;
    Counter *replaySquashed;
    Counter *bpredLookups;
    Counter *bpredMispredicts;
    Counter *loadsForwarded;
    Distribution *robOccupancy;
    Distribution *issueWait;
    std::vector<Distribution *> queueOccupancy;
    Counter *remapEvents;
    Counter *remapRegsMoved;
    Counter *remapDrainCycles;

    // --- helpers --------------------------------------------------------
    void record(Cycle cycle, InstSeq seq, unsigned cluster,
                TimelineEvent ev);
    bool pipelineEmpty() const;

    void beginCycle();
    void doRetire();
    void resolveBranches();
    void doIssue();
    void serviceReplayRequest();
    void doFetch();
    void doDispatch();
    void checkWatchdog();
    void checkInvariants();
    obs::StallCause classifyStall() const;

    bool tryDispatch(const exec::DynInst &di);
    void applyRemap(std::uint32_t index);

    /** Entries of `buf` available to this instruction this cycle. */
    bool
    bufferAvailable(const TransferBuffer &buf, const InFlightInst &inst,
                    InstSeq oldest_unissued) const
    {
        if (!buf.canAlloc())
            return false;
        if (!cfg.reserveOldestEntry)
            return true;
        // The last free entry is reserved for the oldest instruction.
        if (buf.capacity() - buf.inUse() > 1)
            return true;
        return inst.di.seq == oldest_unissued;
    }
    bool masterReady(const InFlightInst &inst, const CopyState &copy,
                     InstSeq oldest_unissued,
                     bool *buffer_blocked = nullptr);
    void issueMaster(InFlightInst &inst, CopyState &copy);
    void issueOperandSlave(InFlightInst &inst, CopyState &copy);
    void issueResultSlave(InFlightInst &inst, CopyState &copy,
                          bool is_wake);
    void replayFromIndex(std::size_t keep);
};

Processor::Impl::Impl(const ProcessorConfig &config,
                      exec::TraceSource &trace_src, StatGroup &sg)
    : cfg(config), trace(&trace_src), stats(&sg),
      icache("icache", config.icache, sg),
      dcache("dcache", config.dcache, sg)
{
    switch (cfg.predictor) {
      case ProcessorConfig::PredictorKind::McFarling:
        predictor = std::make_unique<bpred::McFarlingPredictor>(
            cfg.bimodalIndexBits, cfg.historyBits, cfg.gshareIndexBits,
            cfg.chooserIndexBits, cfg.speculativeHistory);
        break;
      case ProcessorConfig::PredictorKind::Gshare:
        predictor = std::make_unique<bpred::GsharePredictor>(
            cfg.historyBits, cfg.gshareIndexBits,
            cfg.speculativeHistory);
        break;
      case ProcessorConfig::PredictorKind::Bimodal:
        predictor = std::make_unique<bpred::BimodalPredictor>(
            cfg.bimodalIndexBits);
        break;
      case ProcessorConfig::PredictorKind::StaticTaken:
        predictor = std::make_unique<bpred::StaticPredictor>(true);
        break;
      case ProcessorConfig::PredictorKind::StaticNotTaken:
        predictor = std::make_unique<bpred::StaticPredictor>(false);
        break;
    }

    MCA_ASSERT(cfg.numClusters >= 1, "need at least one cluster");
    MCA_ASSERT(cfg.regMap.numClusters() == cfg.numClusters,
               "register map cluster count mismatch");

    clusters.resize(cfg.numClusters);
    for (unsigned c = 0; c < cfg.numClusters; ++c) {
        Cluster &cl = clusters[c];
        cl.queueCapacity = cfg.dispatchQueueEntries;
        cl.intRegs.init(cfg.physIntRegs);
        cl.fpRegs.init(cfg.physFpRegs);
        cl.otb.init(cfg.operandBufferEntries);
        cl.rtb.init(cfg.resultBufferEntries);
        cl.dividerBusyUntil.assign(
            std::max(1u, cfg.issueRules.fpDiv), 0);

        // Initial rename state: every architectural register accessible
        // from this cluster is mapped to a ready physical register.
        for (unsigned ci = 0; ci < 2; ++ci) {
            const auto cls = static_cast<isa::RegClass>(ci);
            for (unsigned a = 0; a < isa::kNumArchRegs; ++a) {
                const isa::RegId reg(cls, a);
                if (reg.isZero() || !cfg.regMap.accessibleFrom(reg, c))
                    continue;
                if (!cl.regs(cls).hasFree())
                    MCA_FATAL("too few physical registers to map the "
                              "architectural state");
                cl.mapOf(cls, a) = cl.regs(cls).alloc();
                cl.mappedOf(cls, a) = true;
            }
        }
    }

    cycles = &sg.counter("sim.cycles", "simulated clock cycles");
    retired = &sg.counter("sim.retired", "instructions retired");
    dispatched = &sg.counter("sim.dispatched", "instructions dispatched");
    fetched = &sg.counter("fetch.fetched", "instructions fetched");
    distSingle = &sg.counter("dist.single",
                             "instructions distributed to one cluster");
    distDual = &sg.counter("dist.dual",
                           "instructions distributed to 2+ clusters");
    distCopies = &sg.counter("dist.copies", "total copies dispatched");
    operandForwards = &sg.counter("dist.operand_forwards",
                                  "operand transfer-buffer writes");
    resultForwards = &sg.counter("dist.result_forwards",
                                 "result transfer-buffer writes");
    issueTotal = &sg.counter("issue.total", "copies issued");
    issueSlave = &sg.counter("issue.slave", "slave copies issued");
    issueWakes = &sg.counter("issue.wakes", "suspended slaves awakened");
    issueDisorder = &sg.counter(
        "issue.disorder",
        "older same-cluster copies skipped at issue (disorder metric)");
    stallDq = &sg.counter("dispatch.stall_dq",
                          "dispatch stalls: queue entry unavailable");
    stallPhys = &sg.counter("dispatch.stall_phys",
                            "dispatch stalls: physical register");
    stallRob = &sg.counter("dispatch.stall_rob",
                           "dispatch stalls: retire window full");
    stallIcacheCycles = &sg.counter("fetch.stall_icache_cycles",
                                    "cycles fetch waited on the icache");
    stallBranchCycles = &sg.counter(
        "fetch.stall_branch_cycles",
        "cycles fetch/dispatch waited on a mispredicted branch");
    replayExceptions = &sg.counter("replay.exceptions",
                                   "instruction-replay exceptions");
    replayBuffer = &sg.counter(
        "replay.buffer_blocked",
        "replays raised by a buffer-blocked queue head");
    replayWatchdog = &sg.counter("replay.watchdog",
                                 "replays raised by the stall watchdog");
    replaySquashed = &sg.counter("replay.squashed",
                                 "instructions squashed by replays");
    bpredLookups = &sg.counter("bpred.lookups",
                               "conditional-branch predictions");
    bpredMispredicts = &sg.counter("bpred.mispredicts",
                                   "conditional-branch mispredictions");

    sg.formula("sim.ipc",
               [this] {
                   return cycles->value() == 0
                              ? 0.0
                              : static_cast<double>(retired->value()) /
                                    static_cast<double>(cycles->value());
               },
               "retired instructions per cycle");
    sg.formula("bpred.accuracy",
               [this] {
                   return bpredLookups->value() == 0
                              ? 0.0
                              : 1.0 - static_cast<double>(
                                          bpredMispredicts->value()) /
                                          static_cast<double>(
                                              bpredLookups->value());
               },
               "conditional-branch prediction accuracy");

    loadsForwarded = &sg.counter(
        "mem.loads_forwarded",
        "loads ordered after (and forwarded from) an older store");
    remapEvents = &sg.counter("remap.events",
                              "dynamic register-map switches");
    remapRegsMoved = &sg.counter("remap.regs_moved",
                                 "architectural registers transferred "
                                 "by remaps");
    remapDrainCycles = &sg.counter("remap.drain_cycles",
                                   "cycles dispatch stalled draining "
                                   "for a remap");
    robOccupancy = &sg.distribution("rob.occupancy", 16, 32,
                                    "retire-window entries in use");
    issueWait = &sg.distribution("issue.wait_cycles", 4, 32,
                                 "cycles from dispatch to issue");
    for (unsigned c = 0; c < cfg.numClusters; ++c)
        queueOccupancy.push_back(&sg.distribution(
            "queue.occupancy.c" + std::to_string(c), 8, 32,
            "dispatch-queue entries in use"));
}

void
Processor::Impl::record(Cycle cycle, InstSeq seq, unsigned cluster,
                        TimelineEvent ev)
{
    if (timeline)
        timeline->record(cycle, seq, cluster, ev);
}

bool
Processor::Impl::pipelineEmpty() const
{
    return traceEnded && !pendingFetch && fetchBuffer.empty() &&
           rob.empty();
}

void
Processor::Impl::beginCycle()
{
    for (unsigned c = 0; c < clusters.size(); ++c) {
        clusters[c].otb.beginCycle(now);
        clusters[c].rtb.beginCycle(now);
        queueOccupancy[c]->sample(clusters[c].queue.size());
    }
    robOccupancy->sample(rob.size());
    retiredThisCycle = 0;
    dqStallThisCycle = false;
}

void
Processor::Impl::doRetire()
{
    unsigned n = 0;
    while (n < cfg.retireWidth && !rob.empty() &&
           rob.front()->allComplete(now)) {
        InFlightInst &inst = *rob.front();
        // Free the previous mappings of every renamed destination.
        for (const auto &ru : inst.renames)
            clusters[ru.cluster].regs(ru.cls).free(ru.prevPhys);
        if (isa::isStore(inst.di.mi.op))
            storeIssueCycle.erase(inst.di.seq);
        if (cfg.holdQueueUntilRetire) {
            for (auto &cl : clusters)
                cl.queue.erase(
                    std::remove_if(cl.queue.begin(), cl.queue.end(),
                                   [&](const QueueSlot &s) {
                                       return s.inst == &inst;
                                   }),
                    cl.queue.end());
        }
        record(now, inst.di.seq, inst.copies[0].cluster,
               TimelineEvent::Retired);
        ++*retired;
        ++n;
        ++retiredThisCycle;
        lastProgress = now;
        consecutiveReplays = 0;
        rob.pop_front();
    }
}

void
Processor::Impl::resolveBranches()
{
    auto it = pendingBranches.begin();
    while (it != pendingBranches.end()) {
        if (it->wbCycle > now) {
            ++it;
            continue;
        }
        predictor->update(it->pc, it->taken);
        if (it->mispredicted)
            predictor->squashRepair(it->taken);
        if (it->seq == mispredictBlockSeq) {
            mispredictBlockSeq = kNoSeq;
            fetchStallUntil = now + 1;
        }
        it = pendingBranches.erase(it);
    }
}

bool
Processor::Impl::masterReady(const InFlightInst &inst,
                             const CopyState &copy,
                             InstSeq oldest_unissued,
                             bool *buffer_blocked)
{
    if (buffer_blocked)
        *buffer_blocked = false;
    // Local register reads.
    for (const auto &rd : copy.reads)
        if (clusters[rd.cluster].regs(rd.cls).readyAt[rd.phys] > now)
            return false;
    // Forwarded operands: the slave must have issued in a prior cycle.
    for (const auto &sl : inst.copies) {
        if (sl.isMaster || !sl.role.forwardsOperand)
            continue;
        if (!sl.issued || sl.issueCycle + 1 > now)
            return false;
    }
    // A free divider for non-pipelined floating-point divides.
    if (isa::opClass(inst.di.mi.op) == isa::OpClass::FpDiv) {
        bool free_div = false;
        for (Cycle busy : clusters[copy.cluster].dividerBusyUntil)
            if (busy <= now)
                free_div = true;
        if (!free_div)
            return false;
    }
    // With an explicit MSHR file (ablation of the paper's inverted
    // MSHR), a miss that cannot get an entry must retry.
    if (isa::isMemOp(inst.di.mi.op) &&
        dcache.wouldReject(inst.di.effAddr, now))
        return false;
    // Memory dependence: a load waits until the older same-address
    // store has issued (its data then forwards).
    if (inst.memDepStoreSeq != kNoSeq) {
        const auto it = storeIssueCycle.find(inst.memDepStoreSeq);
        if (it != storeIssueCycle.end() &&
            (it->second == kNoCycle || it->second >= now))
            return false;
    }
    // Result transfer buffers in every receiving cluster. Checked last
    // so a failure here means the copy is blocked *only* by a buffer.
    for (const auto &sl : inst.copies)
        if (!sl.isMaster && sl.role.receivesResult &&
            !bufferAvailable(clusters[sl.cluster].rtb, inst,
                             oldest_unissued)) {
            if (buffer_blocked)
                *buffer_blocked = true;
            return false;
        }
    return true;
}

void
Processor::Impl::issueMaster(InFlightInst &inst, CopyState &copy)
{
    const isa::Op op = inst.di.mi.op;
    copy.issued = true;
    copy.issueCycle = now;
    ++*issueTotal;
    issueWait->sample(now - inst.dispatchCycle);
    lastProgress = now;
    record(now, inst.di.seq, copy.cluster, TimelineEvent::MasterIssued);

    // Effective latency (cache-aware for loads).
    unsigned lat = isa::opLatency(op);
    if (isa::isLoad(op)) {
        const auto r = dcache.access(inst.di.effAddr, false, now);
        const Cycle data_ready = std::max(now + 2, r.readyAt + 2);
        lat = static_cast<unsigned>(data_ready - now);
        if (inst.memDepStoreSeq != kNoSeq) {
            // Store-to-load forwarding: the waited-for store supplies
            // the data at hit latency regardless of the fill.
            lat = 2;
            ++*loadsForwarded;
        }
        inst.dcacheLoadMiss = lat > 2;
    } else if (isa::isStore(op)) {
        dcache.access(inst.di.effAddr, true, now);
        lat = 1;
        storeIssueCycle[inst.di.seq] = now;
    }
    inst.masterEffLat = lat;

    // Claim a divider for the whole operation.
    if (isa::opClass(op) == isa::OpClass::FpDiv) {
        for (Cycle &busy : clusters[copy.cluster].dividerBusyUntil)
            if (busy <= now) {
                busy = now + lat;
                break;
            }
    }

    // Free operand transfer buffer entries the slaves were holding, and
    // allocate result transfer buffer entries in receiving clusters.
    for (auto &sl : inst.copies) {
        if (sl.isMaster)
            continue;
        if (sl.role.forwardsOperand && sl.holdsOtb) {
            clusters[copy.cluster].otb.scheduleFree(now);
            sl.holdsOtb = false;
        }
        if (sl.role.receivesResult) {
            clusters[sl.cluster].rtb.alloc();
            copy.rtbClusters.push_back(sl.cluster);
            record(now + lat + 1, inst.di.seq, sl.cluster,
                   TimelineEvent::ResultWrittenToBuffer);
            ++*resultForwards;
        }
    }

    // Destination write in the master's cluster.
    if (inst.dist.masterWritesDest) {
        for (const auto &ru : inst.renames) {
            if (ru.cluster != copy.cluster)
                continue;
            clusters[ru.cluster].regs(ru.cls).readyAt[ru.newPhys] =
                now + lat;
            record(now + lat + 2, inst.di.seq, copy.cluster,
                   TimelineEvent::RegWritten);
        }
    }

    record(now + lat + 1, inst.di.seq, copy.cluster,
           TimelineEvent::ExecutionDone);
    copy.completeCycle = now + lat + 2;

    // Conditional branches schedule a predictor update at write-back.
    if (inst.condBranch)
        pendingBranches.push_back({inst.di.seq, inst.di.pc, inst.di.taken,
                                   inst.mispredicted, now + lat + 2});
}

void
Processor::Impl::issueOperandSlave(InFlightInst &inst, CopyState &copy)
{
    copy.issued = true;
    copy.issueCycle = now;
    ++*issueTotal;
    ++*issueSlave;
    ++*operandForwards;
    lastProgress = now;
    record(now, inst.di.seq, copy.cluster, TimelineEvent::SlaveIssued);
    record(now + 1, inst.di.seq, inst.copies[0].cluster,
           TimelineEvent::OperandWrittenToBuffer);

    clusters[inst.copies[0].cluster].otb.alloc();
    copy.holdsOtb = true;

    if (copy.role.receivesResult) {
        // Scenario 5: stay in the queue, suspended, until the result
        // arrives from the master.
        copy.suspended = true;
        record(now, inst.di.seq, copy.cluster,
               TimelineEvent::SlaveSuspended);
    } else {
        copy.completeCycle = now + 3;
    }
}

void
Processor::Impl::issueResultSlave(InFlightInst &inst, CopyState &copy,
                                  bool is_wake)
{
    ++*issueTotal;
    lastProgress = now;
    if (is_wake) {
        copy.woke = true;
        copy.suspended = false;
        ++*issueWakes;
        record(now, inst.di.seq, copy.cluster, TimelineEvent::SlaveWoke);
    } else {
        copy.issued = true;
        copy.issueCycle = now;
        ++*issueSlave;
        record(now, inst.di.seq, copy.cluster, TimelineEvent::SlaveIssued);
    }

    // Read (and free) the result transfer buffer entry, then write the
    // local physical copy of the destination. The master's allocation
    // record is cleared so a later squash cannot double-free the entry.
    clusters[copy.cluster].rtb.scheduleFree(now);
    auto &rtbs = inst.copies[0].rtbClusters;
    const auto it = std::find(rtbs.begin(), rtbs.end(), copy.cluster);
    MCA_ASSERT(it != rtbs.end(), "slave frees unallocated RTB entry");
    rtbs.erase(it);
    for (const auto &ru : inst.renames) {
        if (ru.cluster != copy.cluster)
            continue;
        clusters[ru.cluster].regs(ru.cls).readyAt[ru.newPhys] = now + 1;
    }
    record(now + 3, inst.di.seq, copy.cluster, TimelineEvent::RegWritten);
    copy.completeCycle = now + 3;
}

void
Processor::Impl::doIssue()
{
    // The oldest instruction with unissued work: if a full transfer
    // buffer blocks *it*, no older instruction exists to drain the
    // buffer, so the block is a deadlock.
    InstSeq oldest_unissued = kNoSeq;
    for (const auto &inst : rob) {
        bool pending = false;
        for (const auto &copy : inst->copies)
            pending |= !copy.issued;
        if (pending) {
            oldest_unissued = inst->di.seq;
            break;
        }
    }

    for (unsigned c = 0; c < clusters.size(); ++c) {
        Cluster &cl = clusters[c];
        isa::IssueSlots slots(cfg.issueRules);
        slots.newCycle();

        std::vector<QueueSlot> survivors;
        survivors.reserve(cl.queue.size());
        unsigned older_unissued = 0;

        bool head_checked = false;
        for (auto &slot : cl.queue) {
            InFlightInst &inst = *slot.inst;
            CopyState &copy = inst.copies[slot.copyIdx];
            const CopyState &master = inst.copies[0];
            bool remove = false;
            bool buffer_blocked = false;

            if (copy.issued && !copy.suspended) {
                // Window mode: already issued, waiting for retirement.
                survivors.push_back(slot);
                continue;
            }
            if (inst.dispatchCycle >= now) {
                // Dispatched this cycle; eligible from the next one.
            } else if (copy.isMaster) {
                if (masterReady(inst, copy, oldest_unissued,
                                &buffer_blocked) &&
                    slots.tryConsume(isa::opClass(inst.di.mi.op))) {
                    issueMaster(inst, copy);
                    *issueDisorder += older_unissued;
                    remove = true;
                }
            } else if (copy.suspended) {
                // Scenario-5 slave waiting for the forwarded result.
                const isa::RegClass dcls = inst.di.mi.dest->cls;
                if (master.issued &&
                    now >= master.issueCycle + inst.masterEffLat &&
                    slots.tryConsumeSlave(dcls)) {
                    issueResultSlave(inst, copy, /*is_wake=*/true);
                    remove = true;
                }
            } else if (copy.role.forwardsOperand) {
                // Operand-forwarding slave (scenarios 2 and 5).
                bool ready = true;
                for (const auto &rd : copy.reads)
                    if (clusters[rd.cluster].regs(rd.cls)
                            .readyAt[rd.phys] > now)
                        ready = false;
                const unsigned src_i = copy.role.srcMask & 1 ? 0 : 1;
                const isa::RegClass scls = inst.di.mi.srcs[src_i]->cls;
                const bool otb_ok = bufferAvailable(
                    clusters[master.cluster].otb, inst, oldest_unissued);
                buffer_blocked = ready && !otb_ok;
                if (ready && otb_ok && slots.tryConsumeSlave(scls)) {
                    issueOperandSlave(inst, copy);
                    // Scenario-5 slaves stay queued while suspended.
                    remove = !copy.suspended;
                }
            } else if (copy.role.receivesResult) {
                // Result-receiving slave (scenarios 3 and 4).
                const isa::RegClass dcls = inst.di.mi.dest->cls;
                if (master.issued &&
                    now >= master.issueCycle + inst.masterEffLat &&
                    slots.tryConsumeSlave(dcls)) {
                    issueResultSlave(inst, copy, /*is_wake=*/false);
                    remove = true;
                }
            }

            if (remove) {
                if (cfg.holdQueueUntilRetire) {
                    // The entry stays occupied until retirement.
                    survivors.push_back(slot);
                } else {
                    copy.inQueue = false;
                }
            } else {
                if (!copy.issued) {
                    ++older_unissued;
                    // Precise deadlock avoidance (paper §2.1): if this
                    // is the globally oldest unissued instruction and a
                    // full buffer blocks it, the holders are younger and
                    // cannot drain — replay.
                    if (!head_checked && cfg.bufferBlockThreshold > 0) {
                        head_checked = true;
                        if (buffer_blocked &&
                            inst.di.seq == oldest_unissued) {
                            if (copy.bufferBlockedSince == kNoCycle)
                                copy.bufferBlockedSince = now;
                            if (now - copy.bufferBlockedSince >=
                                    cfg.bufferBlockThreshold &&
                                (replayRequestSeq == kNoSeq ||
                                 inst.di.seq < replayRequestSeq))
                                replayRequestSeq = inst.di.seq;
                        } else {
                            copy.bufferBlockedSince = kNoCycle;
                        }
                    }
                }
                survivors.push_back(slot);
            }
        }
        cl.queue = std::move(survivors);
    }
}

void
Processor::Impl::serviceReplayRequest()
{
    if (replayRequestSeq == kNoSeq)
        return;
    const InstSeq seq = replayRequestSeq;
    replayRequestSeq = kNoSeq;
    // Locate the blocked instruction; squash everything younger so the
    // buffer entries it is waiting for drain.
    for (std::size_t i = 0; i < rob.size(); ++i) {
        if (rob[i]->di.seq != seq)
            continue;
        if (i + 1 >= rob.size())
            return; // nothing younger to squash; watchdog will decide
        ++*replayBuffer;
        replayFromIndex(i + 1);
        // Restart the block timer so the head waits a full threshold
        // before requesting another replay.
        for (auto &copy : rob[i]->copies)
            copy.bufferBlockedSince = kNoCycle;
        return;
    }
}

void
Processor::Impl::doFetch()
{
    if (mispredictBlockSeq != kNoSeq) {
        ++*stallBranchCycles;
        return;
    }
    if (now < fetchStallUntil)
        return;
    if (now < icacheReadyAt) {
        ++*stallIcacheCycles;
        return;
    }
    if (icachePending) {
        lastFetchBlock = icachePendingBlock;
        icachePending = false;
    }

    unsigned n = 0;
    while (n < cfg.fetchWidth &&
           fetchBuffer.size() < cfg.fetchBufferEntries) {
        if (!pendingFetch) {
            if (traceEnded)
                break;
            auto next = trace->next();
            if (!next) {
                traceEnded = true;
                break;
            }
            pendingFetch = std::move(next);
        }

        // Instruction-cache access at block granularity.
        const Addr block =
            pendingFetch->pc / cfg.icache.blockBytes;
        if (block != lastFetchBlock) {
            if (icache.wouldReject(pendingFetch->pc, now))
                break; // explicit MSHR full: retry next cycle
            const auto r = icache.access(pendingFetch->pc, false, now);
            if (!r.hit) {
                icacheReadyAt = r.readyAt;
                icachePending = true;
                icachePendingBlock = block;
                ++*stallIcacheCycles;
                break;
            }
            lastFetchBlock = block;
        }

        const exec::DynInst di = *pendingFetch;
        pendingFetch.reset();
        fetchBuffer.push_back(di);
        ++*fetched;
        ++n;

        // The fetch group ends at a taken control-flow instruction.
        if (isa::isCtrlFlow(di.mi.op) && di.taken) {
            lastFetchBlock = ~Addr{0};
            break;
        }
    }
}

bool
Processor::Impl::tryDispatch(const exec::DynInst &di)
{
    if (rob.size() >= cfg.retireWindow) {
        ++*stallRob;
        return false;
    }

    // Distribution decision; instructions with no local-register
    // constraint go to the currently least-loaded cluster.
    unsigned least = 0;
    for (unsigned c = 1; c < clusters.size(); ++c)
        if (clusters[c].queue.size() < clusters[least].queue.size())
            least = c;
    const isa::Distribution dist =
        isa::decideDistribution(di.mi, cfg.regMap, least);

    // --- resource checks ------------------------------------------
    // Queue entries, one per copy.
    std::vector<unsigned> dq_need(clusters.size(), 0);
    ++dq_need[dist.masterCluster];
    for (const auto &sl : dist.slaves)
        ++dq_need[sl.cluster];
    for (unsigned c = 0; c < clusters.size(); ++c)
        if (clusters[c].queue.size() + dq_need[c] >
            clusters[c].queueCapacity) {
            ++*stallDq;
            dqStallThisCycle = true;
            return false;
        }
    // Physical destination registers.
    const bool has_dest = di.mi.hasDest() && !di.mi.dest->isZero();
    if (has_dest) {
        std::vector<unsigned> phys_need(clusters.size(), 0);
        if (dist.masterWritesDest)
            ++phys_need[dist.masterCluster];
        for (const auto &sl : dist.slaves)
            if (sl.receivesResult)
                ++phys_need[sl.cluster];
        for (unsigned c = 0; c < clusters.size(); ++c)
            if (phys_need[c] >
                (clusters[c].regs(di.mi.dest->cls).freeList.size())) {
                ++*stallPhys;
                return false;
            }
    }

    // --- commit the dispatch ----------------------------------------
    auto inst = std::make_unique<InFlightInst>();
    inst->di = di;
    inst->dist = dist;
    inst->dispatchCycle = now;
    inst->condBranch = isa::isCondBranch(di.mi.op);

    // Perfect memory disambiguation (trace addresses are oracle): a
    // store registers itself; a load records the youngest older store
    // to its dword, if one is still in flight.
    if (isa::isStore(di.mi.op)) {
        storeIssueCycle.emplace(di.seq, kNoCycle);
    } else if (isa::isLoad(di.mi.op)) {
        const Addr dword = di.effAddr >> 3;
        for (std::size_t i = rob.size(); i-- > 0;) {
            const auto &older = *rob[i];
            if (isa::isStore(older.di.mi.op) &&
                (older.di.effAddr >> 3) == dword) {
                inst->memDepStoreSeq = older.di.seq;
                break;
            }
        }
    }

    // Build copies: master first.
    CopyState master;
    master.cluster = static_cast<std::uint8_t>(dist.masterCluster);
    master.isMaster = true;
    inst->copies.push_back(master);
    for (const auto &sl : dist.slaves) {
        CopyState s;
        s.cluster = static_cast<std::uint8_t>(sl.cluster);
        s.role = sl;
        inst->copies.push_back(s);
    }

    // Source reads: resolved against the current rename maps, before
    // the destination is renamed.
    for (unsigned i = 0; i < 2; ++i) {
        if (!di.mi.srcs[i])
            continue;
        const isa::RegId reg = *di.mi.srcs[i];
        if (reg.isZero())
            continue;
        if (cfg.regMap.accessibleFrom(reg, dist.masterCluster)) {
            Cluster &cl = clusters[dist.masterCluster];
            MCA_ASSERT(cl.mappedOf(reg.cls, reg.index),
                       "read of unmapped register ", isa::regName(reg));
            inst->copies[0].reads.push_back(
                {static_cast<std::uint8_t>(i),
                 static_cast<std::uint8_t>(dist.masterCluster), reg.cls,
                 cl.mapOf(reg.cls, reg.index)});
        } else {
            // A slave in the register's home cluster forwards it.
            const unsigned home = cfg.regMap.homeCluster(reg);
            bool found = false;
            for (auto &copy : inst->copies) {
                if (copy.isMaster || copy.cluster != home ||
                    !(copy.role.srcMask & (1u << i)))
                    continue;
                Cluster &cl = clusters[home];
                MCA_ASSERT(cl.mappedOf(reg.cls, reg.index),
                           "read of unmapped register ",
                           isa::regName(reg));
                copy.reads.push_back(
                    {static_cast<std::uint8_t>(i),
                     static_cast<std::uint8_t>(home), reg.cls,
                     cl.mapOf(reg.cls, reg.index)});
                found = true;
            }
            MCA_ASSERT(found, "no slave forwards operand ",
                       isa::regName(reg));
        }
    }

    // Destination renaming in every allocating cluster.
    if (has_dest) {
        const isa::RegId dest = *di.mi.dest;
        auto renameIn = [&](unsigned c) {
            Cluster &cl = clusters[c];
            PhysRegFile &rf = cl.regs(dest.cls);
            const std::uint16_t fresh = rf.alloc();
            rf.readyAt[fresh] = kNoCycle;
            RenameUpdate ru;
            ru.cluster = static_cast<std::uint8_t>(c);
            ru.cls = dest.cls;
            ru.arch = dest.index;
            ru.newPhys = fresh;
            MCA_ASSERT(cl.mappedOf(dest.cls, dest.index),
                       "rename of unmapped register ",
                       isa::regName(dest));
            ru.prevPhys = cl.mapOf(dest.cls, dest.index);
            cl.mapOf(dest.cls, dest.index) = fresh;
            inst->renames.push_back(ru);
        };
        if (dist.masterWritesDest)
            renameIn(dist.masterCluster);
        for (const auto &sl : dist.slaves)
            if (sl.receivesResult)
                renameIn(sl.cluster);
    }

    // Insert copies into their dispatch queues.
    for (unsigned i = 0; i < inst->copies.size(); ++i) {
        auto &copy = inst->copies[i];
        copy.inQueue = true;
        clusters[copy.cluster].queue.push_back({inst.get(), i});
        record(now, di.seq, copy.cluster, TimelineEvent::Dispatched);
    }

    // Branch prediction at queue-insertion time (paper footnote 2).
    if (inst->condBranch) {
        ++*bpredLookups;
        inst->predTaken = predictor->predict(di.pc);
        inst->mispredicted = inst->predTaken != di.taken;
        if (inst->mispredicted) {
            ++*bpredMispredicts;
            mispredictBlockSeq = di.seq;
        }
    }

    ++*dispatched;
    *distCopies += inst->copies.size();
    if (dist.isDual())
        ++*distDual;
    else
        ++*distSingle;

    rob.push_back(std::move(inst));
    return true;
}

void
Processor::Impl::doDispatch()
{
    unsigned n = 0;
    while (n < cfg.fetchWidth && !fetchBuffer.empty()) {
        exec::DynInst &di = fetchBuffer.front();
        // Instructions younger than an unresolved mispredicted branch
        // are architecturally wrong-path: hold them.
        if (mispredictBlockSeq != kNoSeq && di.seq > mispredictBlockSeq)
            break;
        // Dynamic register reassignment (§6 extension): the machine
        // drains, transfers the re-homed architectural state, and only
        // then dispatches under the new map.
        if (di.remapIndex != exec::DynInst::kNoRemap) {
            if (!rob.empty()) {
                ++*remapDrainCycles;
                break;
            }
            applyRemap(di.remapIndex);
            di.remapIndex = exec::DynInst::kNoRemap;
        }
        if (!tryDispatch(di))
            break;
        fetchBuffer.pop_front();
        ++n;
    }
}

void
Processor::Impl::applyRemap(std::uint32_t index)
{
    MCA_ASSERT(index < cfg.mapSchedule.size(),
               "remap index outside the map schedule");
    const isa::RegisterMap &next = cfg.mapSchedule[index];
    MCA_ASSERT(next.numClusters() == cfg.numClusters,
               "remap cannot change the cluster count");

    ++*remapEvents;
    const unsigned moved = cfg.regMap.differingHomes(next);
    *remapRegsMoved += moved;

    // The machine is drained: rebuild the architectural mappings under
    // the new assignment. Values whose home moved must be physically
    // transferred; remapTransferRate registers cross per cycle.
    const Cycle ready =
        now + 1 + (moved + cfg.remapTransferRate - 1) /
                      std::max(1u, cfg.remapTransferRate);
    cfg.regMap = next;
    for (unsigned c = 0; c < clusters.size(); ++c) {
        Cluster &cl = clusters[c];
        for (unsigned ci = 0; ci < 2; ++ci) {
            const auto cls = static_cast<isa::RegClass>(ci);
            for (unsigned a = 0; a < isa::kNumArchRegs; ++a) {
                const isa::RegId reg(cls, a);
                if (reg.isZero())
                    continue;
                const bool want = cfg.regMap.accessibleFrom(reg, c);
                const bool have = cl.mappedOf(cls, a);
                if (have && !want) {
                    cl.regs(cls).free(cl.mapOf(cls, a));
                    cl.mappedOf(cls, a) = false;
                } else if (!have && want) {
                    if (!cl.regs(cls).hasFree())
                        MCA_FATAL("remap exhausts the physical "
                                  "registers of cluster ", c);
                    const auto fresh = cl.regs(cls).alloc();
                    cl.mapOf(cls, a) = fresh;
                    cl.mappedOf(cls, a) = true;
                    cl.regs(cls).readyAt[fresh] = ready;
                } else if (have) {
                    // Still mapped here; the value may nevertheless
                    // have moved homes (conservatively re-timed).
                    cl.regs(cls).readyAt[cl.mapOf(cls, a)] =
                        std::max(cl.regs(cls).readyAt[cl.mapOf(cls, a)],
                                 now);
                }
            }
        }
    }
}

void
Processor::Impl::replayFromIndex(std::size_t keep)
{
    MCA_ASSERT(keep >= 1 && keep <= rob.size(), "bad replay index");
    ++*replayExceptions;
    record(now, rob[keep - 1]->di.seq, rob[keep - 1]->copies[0].cluster,
           TimelineEvent::ReplayException);

    // Squash from the youngest back to (and excluding) index keep-1.
    std::vector<exec::DynInst> replayed;
    while (rob.size() > keep) {
        InFlightInst &inst = *rob.back();
        ++*replaySquashed;
        replayed.push_back(inst.di);
        // Undo renames in reverse order.
        for (std::size_t i = inst.renames.size(); i-- > 0;) {
            const auto &ru = inst.renames[i];
            Cluster &cl = clusters[ru.cluster];
            cl.mapOf(ru.cls, ru.arch) = ru.prevPhys;
            cl.regs(ru.cls).free(ru.newPhys);
        }
        // Release transfer-buffer entries.
        for (auto &copy : inst.copies) {
            if (copy.holdsOtb)
                clusters[inst.copies[0].cluster].otb.scheduleFree(now);
            if (copy.isMaster)
                for (std::uint8_t c : copy.rtbClusters)
                    clusters[c].rtb.scheduleFree(now);
        }
        // Remove copies from the queues.
        for (auto &cl : clusters)
            cl.queue.erase(
                std::remove_if(cl.queue.begin(), cl.queue.end(),
                               [&](const QueueSlot &s) {
                                   return s.inst == &inst;
                               }),
                cl.queue.end());
        // Drop any pending predictor update.
        pendingBranches.erase(
            std::remove_if(pendingBranches.begin(), pendingBranches.end(),
                           [&](const PendingBranch &b) {
                               return b.seq == inst.di.seq;
                           }),
            pendingBranches.end());
        if (mispredictBlockSeq == inst.di.seq)
            mispredictBlockSeq = kNoSeq;
        if (replayRequestSeq == inst.di.seq)
            replayRequestSeq = kNoSeq;
        if (isa::isStore(inst.di.mi.op))
            storeIssueCycle.erase(inst.di.seq);
        rob.pop_back();
    }

    // Re-feed the squashed instructions, oldest first. `replayed` is
    // youngest-first (popped from the ROB tail), so pushing each entry
    // to the buffer front in that order leaves the oldest at the front.
    for (const auto &di : replayed)
        fetchBuffer.push_front(di);

    fetchStallUntil = now + cfg.replayPenalty;
    lastProgress = now;
    ++consecutiveReplays;
    if (consecutiveReplays > 16)
        MCA_PANIC("replay exceptions are not making progress (seq ",
                  rob.empty() ? 0 : rob.front()->di.seq, ")");
}

void
Processor::Impl::checkWatchdog()
{
    if (rob.empty() || now - lastProgress <= cfg.replayWatchdog)
        return;
    // The machine is wedged: the oldest instruction cannot finish while
    // younger instructions hold transfer-buffer entries (paper §2.1's
    // issue deadlock). Squash everything younger than the oldest
    // in-flight instruction and replay it.
    ++*replayWatchdog;
    replayFromIndex(1);
}

void
Processor::Impl::checkInvariants()
{
    for (unsigned c = 0; c < clusters.size(); ++c) {
        Cluster &cl = clusters[c];
        for (unsigned ci = 0; ci < 2; ++ci) {
            const auto cls = static_cast<isa::RegClass>(ci);
            PhysRegFile &rf = cl.regs(cls);
            std::vector<int> refs(rf.readyAt.size(), 0);
            for (auto p : rf.freeList) {
                MCA_ASSERT(p < rf.readyAt.size(), "free-list range");
                ++refs[p];
            }
            for (unsigned a = 0; a < isa::kNumArchRegs; ++a)
                if (cl.mappedOf(cls, a))
                    ++refs[cl.mapOf(cls, a)];
            for (const auto &inst : rob)
                for (const auto &ru : inst->renames)
                    if (ru.cluster == c && ru.cls == cls)
                        ++refs[ru.prevPhys];
            for (std::size_t p = 0; p < refs.size(); ++p)
                MCA_ASSERT(refs[p] == 1, "phys reg ", p, " cluster ", c,
                           " class ", ci, " referenced ", refs[p],
                           " times at cycle ", now);
        }
    }
    // Transfer-buffer occupancy must equal the live holds plus the
    // frees that have not matured yet.
    std::vector<unsigned> otb_holds(clusters.size(), 0);
    std::vector<unsigned> rtb_holds(clusters.size(), 0);
    for (const auto &inst : rob)
        for (const auto &copy : inst->copies) {
            if (copy.holdsOtb)
                ++otb_holds[inst->copies[0].cluster];
            if (copy.isMaster)
                for (auto c : copy.rtbClusters)
                    ++rtb_holds[c];
        }
    for (unsigned c = 0; c < clusters.size(); ++c) {
        MCA_ASSERT(clusters[c].otb.inUse() ==
                       otb_holds[c] + clusters[c].otb.pendingFrees(),
                   "OTB accounting leak in cluster ", c, " at cycle ",
                   now, ": inUse ", clusters[c].otb.inUse(), " holds ",
                   otb_holds[c], " pending ",
                   clusters[c].otb.pendingFrees());
        MCA_ASSERT(clusters[c].rtb.inUse() ==
                       rtb_holds[c] + clusters[c].rtb.pendingFrees(),
                   "RTB accounting leak in cluster ", c, " at cycle ",
                   now, ": inUse ", clusters[c].rtb.inUse(), " holds ",
                   rtb_holds[c], " pending ",
                   clusters[c].rtb.pendingFrees());
    }
    // The retire window must hold program order.
    for (std::size_t i = 1; i < rob.size(); ++i)
        MCA_ASSERT(rob[i - 1]->di.seq < rob[i]->di.seq,
                   "retire window out of program order at cycle ", now);
    // The fetch buffer must as well.
    for (std::size_t i = 1; i < fetchBuffer.size(); ++i)
        MCA_ASSERT(fetchBuffer[i - 1].seq < fetchBuffer[i].seq,
                   "fetch buffer out of program order at cycle ", now);
}

/**
 * Attribute this cycle's empty retire slots to a single cause by
 * inspecting the oldest unretired instruction (the classic CPI-stack
 * convention: the head is what retirement is waiting on). Runs at the
 * end of the cycle, after every stage has acted. Evaluated only when a
 * cycle stack is attached and the retire bandwidth was not saturated.
 */
obs::StallCause
Processor::Impl::classifyStall() const
{
    using obs::StallCause;

    if (rob.empty()) {
        // Nothing in flight: the front end is the limiter.
        if (mispredictBlockSeq != kNoSeq || now < fetchStallUntil)
            return StallCause::Squash; // redirect / replay refill
        if (icachePending || now < icacheReadyAt)
            return StallCause::IcacheMiss;
        if (dqStallThisCycle)
            return StallCause::DispatchQueue;
        // Trace exhausted (drain) or the pipeline is still filling
        // after a squash-free start; both are charged as drain.
        return StallCause::Drain;
    }

    const InFlightInst &head = *rob.front();
    const CopyState &master = head.copies[0];

    if (!master.issued) {
        // Waiting to issue: find the binding constraint, most specific
        // first. A full RTB in any receiving cluster gates issue
        // outright (Table 1), so check it before operand arrival.
        for (const auto &sl : head.copies)
            if (!sl.isMaster && sl.role.receivesResult &&
                !clusters[sl.cluster].rtb.canAlloc())
                return StallCause::ResultBuffer;
        for (const auto &sl : head.copies) {
            if (sl.isMaster || !sl.role.forwardsOperand)
                continue;
            if (!sl.issued)
                return clusters[master.cluster].otb.canAlloc()
                           ? StallCause::RemoteReg
                           : StallCause::OperandBuffer;
            if (sl.issueCycle + 1 > now)
                return StallCause::RemoteReg; // operand still in transit
        }
        // No cluster-specific cause: the head waits on local operands,
        // dividers, or memory dependences. If dispatch also lost
        // bandwidth to a full queue this cycle the machine is congested
        // end to end; charge the capacity loss, else base.
        return dqStallThisCycle ? StallCause::DispatchQueue
                                : StallCause::Base;
    } else if (master.completeCycle == kNoCycle ||
               master.completeCycle > now) {
        // Master executing; a long-latency load is a d-cache stall,
        // anything else is plain execution latency (base).
        return head.dcacheLoadMiss ? StallCause::DcacheMiss
                                   : StallCause::Base;
    } else {
        // Master done; a slave copy is outstanding.
        for (const auto &sl : head.copies)
            if (!sl.isMaster && sl.suspended)
                return StallCause::SlaveSuspend;
        for (const auto &sl : head.copies) {
            if (sl.isMaster)
                continue;
            if (sl.completeCycle == kNoCycle || sl.completeCycle > now)
                return sl.role.receivesResult ? StallCause::RemoteReg
                                              : StallCause::Base;
        }
        // Completed this cycle after retirement ran; commits next
        // cycle. Charged as base (commit latency).
    }
    return StallCause::Base;
}

// ---------------------------------------------------------------------

Processor::Processor(const ProcessorConfig &config,
                     exec::TraceSource &trace, StatGroup &stats)
    : config_(config), impl_(std::make_unique<Impl>(config, trace, stats))
{
}

Processor::~Processor() = default;

void
Processor::attachTimeline(TimelineRecorder *recorder)
{
    impl_->timeline = recorder;
}

void
Processor::attachCycleStack(obs::CycleStack *stack)
{
    impl_->cstack = stack;
    if (stack)
        stack->slots = impl_->cfg.retireWidth;
}

void
Processor::observe(obs::CycleObs &out) const
{
    const Impl &im = *impl_;
    out.cycle = cycle_;
    out.retired = im.retired->value();
    out.dispatched = im.dispatched->value();
    out.icacheAccesses = im.icache.accesses();
    out.icacheMisses = im.icache.misses();
    out.dcacheAccesses = im.dcache.accesses();
    out.dcacheMisses = im.dcache.misses();
    out.robOcc = static_cast<unsigned>(im.rob.size());
    out.robCap = im.cfg.retireWindow;
    out.clusters.resize(im.clusters.size());
    for (std::size_t c = 0; c < im.clusters.size(); ++c) {
        const Cluster &cl = im.clusters[c];
        obs::ClusterObs &o = out.clusters[c];
        o.queueOcc = static_cast<unsigned>(cl.queue.size());
        o.queueCap = cl.queueCapacity;
        o.otbInUse = cl.otb.inUse();
        o.otbCap = cl.otb.capacity();
        o.rtbInUse = cl.rtb.inUse();
        o.rtbCap = cl.rtb.capacity();
    }
}

std::uint64_t
Processor::retiredInstructions() const
{
    return impl_->retired->value();
}

bool
Processor::step()
{
    if (impl_->pipelineEmpty())
        return false;
    impl_->now = cycle_;
    impl_->beginCycle();
    impl_->doRetire();
    impl_->resolveBranches();
    impl_->doIssue();
    impl_->serviceReplayRequest();
    impl_->doFetch();
    impl_->doDispatch();
    impl_->checkWatchdog();
    if (impl_->cfg.paranoid)
        impl_->checkInvariants();
    if (impl_->cstack) {
        obs::CycleStack &cs = *impl_->cstack;
        cs.slots = impl_->cfg.retireWidth;
        const auto cause = impl_->retiredThisCycle < cs.slots
                               ? impl_->classifyStall()
                               : obs::StallCause::Base;
        cs.account(impl_->retiredThisCycle, cause);
    }
    ++cycle_;
    ++*impl_->cycles;
    return true;
}

SimResult
Processor::run(Cycle max_cycles)
{
    SimResult result;
    while (cycle_ < max_cycles) {
        if (!step())
            break;
    }
    result.cycles = cycle_;
    result.instructions = impl_->retired->value();
    result.completed = impl_->pipelineEmpty();
    return result;
}

} // namespace mca::core
