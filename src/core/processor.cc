#include "core/processor.hh"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "core/dispatch.hh"
#include "exec/dyninst_io.hh"
#include "core/fetch.hh"
#include "core/machine.hh"
#include "core/retire.hh"
#include "core/scheduler.hh"
#include "isa/opcodes.hh"
#include "obs/cycle_stack.hh"
#include "obs/snapshot.hh"
#include "prof/prof.hh"
#include "support/panic.hh"

namespace mca::core
{

/**
 * Composition root of the pipeline components. The stages share one
 * MachineState; the Impl owns the cross-cutting concerns that span
 * stages: replay exceptions (squash + re-feed), the stall watchdog,
 * the paranoid invariant sweep, cycle-stack attribution, and the idle
 * fast-forward used by run() (docs/architecture.md).
 */
struct Processor::Impl
{
    Impl(const ProcessorConfig &config, exec::TraceSource &trace_src,
         StatGroup &sg)
        : m(config, sg), fetch(m, trace_src), sched(makeScheduler(m)),
          retire(m, fetch), dispatch(m, fetch, *sched), stats(&sg)
    {
    }

    MachineState m;
    FetchUnit fetch;
    std::unique_ptr<Scheduler> sched;
    RetireUnit retire;
    DispatchUnit dispatch;
    StatGroup *stats;
    obs::CycleStack *cstack = nullptr;

    /** Scratch for checkInvariants (avoids per-cycle allocation). */
    std::vector<int> invRefs;
    std::vector<unsigned> invOtbHolds;
    std::vector<unsigned> invRtbHolds;

    bool
    pipelineEmpty() const
    {
        return fetch.drained() && m.rob.empty();
    }

    void beginCycle();
    void serviceReplayRequest();
    void replayFromIndex(std::size_t keep);
    void checkWatchdog();
    void checkInvariants();
    obs::StallCause classifyStall() const;
    Cycle fastForward(Cycle next, Cycle limit);
};

void
Processor::Impl::beginCycle()
{
    for (unsigned c = 0; c < m.clusters.size(); ++c) {
        m.clusters[c].otb.beginCycle(m.now);
        m.clusters[c].rtb.beginCycle(m.now);
        m.st.queueOccupancy[c]->sample(m.clusters[c].occupancy());
    }
    m.st.robOccupancy->sample(m.rob.size());
    m.retiredThisCycle = 0;
    m.dqStallThisCycle = false;
    m.activityThisCycle = false;
}

void
Processor::Impl::serviceReplayRequest()
{
    if (m.replayRequestSeq == kNoSeq)
        return;
    const InstSeq seq = m.replayRequestSeq;
    m.replayRequestSeq = kNoSeq;
    // Locate the blocked instruction; squash everything younger so the
    // buffer entries it is waiting for drain.
    for (std::size_t i = 0; i < m.rob.size(); ++i) {
        if (m.pool.get(m.rob.at(i)).di.seq != seq)
            continue;
        if (i + 1 >= m.rob.size())
            return; // nothing younger to squash; watchdog will decide
        ++*m.st.replayBuffer;
        replayFromIndex(i + 1);
        // Restart the block timer so the head waits a full threshold
        // before requesting another replay.
        for (auto &copy : m.pool.get(m.rob.at(i)).copies)
            copy.bufferBlockedSince = kNoCycle;
        return;
    }
}

void
Processor::Impl::replayFromIndex(std::size_t keep)
{
    MCA_ASSERT(keep >= 1 && keep <= m.rob.size(), "bad replay index");
    ++*m.st.replayExceptions;
    {
        const InFlightInst &anchor = m.pool.get(m.rob.at(keep - 1));
        m.record(m.now, anchor.di.seq, anchor.copies[0].cluster,
                 TimelineEvent::ReplayException);
    }

    // Squash from the youngest back to (and excluding) index keep-1.
    std::vector<exec::DynInst> replayed;
    while (m.rob.size() > keep) {
        const InFlightHandle h = m.rob.back();
        InFlightInst &inst = m.pool.get(h);
        ++*m.st.replaySquashed;
        replayed.push_back(inst.di);
        // Undo renames in reverse order.
        for (std::size_t i = inst.renames.size(); i-- > 0;) {
            const auto &ru = inst.renames[i];
            Cluster &cl = m.clusters[ru.cluster];
            cl.mapOf(ru.cls, ru.arch) = ru.prevPhys;
            cl.regs(ru.cls).free(ru.newPhys);
        }
        // Release transfer-buffer entries.
        for (auto &copy : inst.copies) {
            if (copy.holdsOtb)
                m.clusters[inst.copies[0].cluster].otb.scheduleFree(
                    m.now);
            if (copy.isMaster)
                for (std::uint8_t c : copy.rtbClusters)
                    m.clusters[c].rtb.scheduleFree(m.now);
        }
        // Remove copies from the queues: unissued/suspended copies are
        // in the scan lists; issued ones hold accounted window entries.
        for (auto &cl : m.clusters)
            cl.queue.erase(
                std::remove_if(cl.queue.begin(), cl.queue.end(),
                               [&](const QueueSlot &s) {
                                   return s.inst == h;
                               }),
                cl.queue.end());
        if (m.cfg.holdQueueUntilRetire)
            for (const auto &copy : inst.copies)
                if (!copy.inQueue)
                    --m.clusters[copy.cluster].held;
        // Drop any pending predictor update.
        m.pendingBranches.erase(
            std::remove_if(m.pendingBranches.begin(),
                           m.pendingBranches.end(),
                           [&](const PendingBranch &b) {
                               return b.seq == inst.di.seq;
                           }),
            m.pendingBranches.end());
        if (m.mispredictBlockSeq == inst.di.seq)
            m.mispredictBlockSeq = kNoSeq;
        if (m.replayRequestSeq == inst.di.seq)
            m.replayRequestSeq = kNoSeq;
        m.rob.popBack();
        m.pool.free(h);
    }
    // Squashing can expose an older in-flight store to a dword whose
    // index entry named a now-dead younger store: rebuild the index
    // from the surviving window.
    m.rebuildStoreIndex();

    // Re-feed the squashed instructions, oldest first. `replayed` is
    // youngest-first (popped from the ROB tail), so pushing each entry
    // to the buffer front in that order leaves the oldest at the front.
    for (const auto &di : replayed)
        fetch.buffer().push_front(di);

    fetch.setStallUntil(m.now + m.cfg.replayPenalty);
    m.lastProgress = m.now;
    m.activityThisCycle = true;
    ++m.consecutiveReplays;
    if (m.consecutiveReplays > 16)
        MCA_PANIC("replay exceptions are not making progress (seq ",
                  m.rob.empty() ? 0 : m.pool.get(m.rob.front()).di.seq,
                  ")");
    sched->onSquash();
}

void
Processor::Impl::checkWatchdog()
{
    if (m.rob.empty() || m.now - m.lastProgress <= m.cfg.replayWatchdog)
        return;
    // The machine is wedged: the oldest instruction cannot finish while
    // younger instructions hold transfer-buffer entries (paper §2.1's
    // issue deadlock). Squash everything younger than the oldest
    // in-flight instruction and replay it.
    ++*m.st.replayWatchdog;
    replayFromIndex(1);
}

void
Processor::Impl::checkInvariants()
{
    for (unsigned c = 0; c < m.clusters.size(); ++c) {
        Cluster &cl = m.clusters[c];
        for (unsigned ci = 0; ci < 2; ++ci) {
            const auto cls = static_cast<isa::RegClass>(ci);
            PhysRegFile &rf = cl.regs(cls);
            invRefs.assign(rf.readyAt.size(), 0);
            for (auto p : rf.freeList) {
                MCA_ASSERT(p < rf.readyAt.size(), "free-list range");
                ++invRefs[p];
            }
            for (unsigned a = 0; a < isa::kNumArchRegs; ++a)
                if (cl.mappedOf(cls, a))
                    ++invRefs[cl.mapOf(cls, a)];
            for (std::size_t i = 0; i < m.rob.size(); ++i)
                for (const auto &ru : m.pool.get(m.rob.at(i)).renames)
                    if (ru.cluster == c && ru.cls == cls)
                        ++invRefs[ru.prevPhys];
            for (std::size_t p = 0; p < invRefs.size(); ++p)
                MCA_ASSERT(invRefs[p] == 1, "phys reg ", p, " cluster ",
                           c, " class ", ci, " referenced ", invRefs[p],
                           " times at cycle ", m.now);
        }
    }
    // Transfer-buffer occupancy must equal the live holds plus the
    // frees that have not matured yet.
    invOtbHolds.assign(m.clusters.size(), 0);
    invRtbHolds.assign(m.clusters.size(), 0);
    for (std::size_t i = 0; i < m.rob.size(); ++i) {
        const InFlightInst &inst = m.pool.get(m.rob.at(i));
        for (const auto &copy : inst.copies) {
            if (copy.holdsOtb)
                ++invOtbHolds[inst.copies[0].cluster];
            if (copy.isMaster)
                for (auto c : copy.rtbClusters)
                    ++invRtbHolds[c];
        }
    }
    for (unsigned c = 0; c < m.clusters.size(); ++c) {
        MCA_ASSERT(m.clusters[c].otb.inUse() ==
                       invOtbHolds[c] + m.clusters[c].otb.pendingFrees(),
                   "OTB accounting leak in cluster ", c, " at cycle ",
                   m.now, ": inUse ", m.clusters[c].otb.inUse(),
                   " holds ", invOtbHolds[c], " pending ",
                   m.clusters[c].otb.pendingFrees());
        MCA_ASSERT(m.clusters[c].rtb.inUse() ==
                       invRtbHolds[c] + m.clusters[c].rtb.pendingFrees(),
                   "RTB accounting leak in cluster ", c, " at cycle ",
                   m.now, ": inUse ", m.clusters[c].rtb.inUse(),
                   " holds ", invRtbHolds[c], " pending ",
                   m.clusters[c].rtb.pendingFrees());
    }
    // The retire window must hold program order, and every window
    // handle must resolve to a live pool slot.
    for (std::size_t i = 0; i < m.rob.size(); ++i)
        MCA_ASSERT(m.pool.isLive(m.rob.at(i)),
                   "retire window holds a dead handle at cycle ", m.now);
    for (std::size_t i = 1; i < m.rob.size(); ++i)
        MCA_ASSERT(m.pool.get(m.rob.at(i - 1)).di.seq <
                       m.pool.get(m.rob.at(i)).di.seq,
                   "retire window out of program order at cycle ",
                   m.now);
    MCA_ASSERT(m.pool.size() == m.rob.size(),
               "pool population diverged from the retire window at "
               "cycle ", m.now);
    // Generation-handle hygiene: every dispatch-queue slot must name a
    // live in-flight instruction that is present in the retire window
    // (a handle held across retirement or squash must have gone stale,
    // never aliased a reused slot), and a load's memory-dependence
    // handle, when still live, must name exactly the store whose
    // sequence number it captured at dispatch.
    for (unsigned c = 0; c < m.clusters.size(); ++c)
        for (const auto &slot : m.clusters[c].queue) {
            MCA_ASSERT(m.pool.isLive(slot.inst),
                       "queue slot holds a stale handle in cluster ", c,
                       " at cycle ", m.now);
            const InFlightInst &qi = m.pool.get(slot.inst);
            MCA_ASSERT(slot.copyIdx < qi.copies.size(),
                       "queue slot copy index out of range at cycle ",
                       m.now);
            MCA_ASSERT(qi.copies[slot.copyIdx].cluster == c,
                       "queue slot copy in the wrong cluster at cycle ",
                       m.now);
            bool in_rob = false;
            for (std::size_t i = 0; i < m.rob.size() && !in_rob; ++i)
                in_rob = m.rob.at(i) == slot.inst;
            MCA_ASSERT(in_rob, "queue slot instruction not in the "
                               "retire window at cycle ", m.now);
        }
    // Window-mode held accounting: cl.held must equal the number of
    // in-flight copies that left the scan list at issue (inQueue
    // cleared) but still occupy a queue entry until retirement.
    if (m.cfg.holdQueueUntilRetire) {
        std::vector<unsigned> expect_held(m.clusters.size(), 0);
        for (std::size_t i = 0; i < m.rob.size(); ++i)
            for (const auto &copy : m.pool.get(m.rob.at(i)).copies)
                if (!copy.inQueue)
                    ++expect_held[copy.cluster];
        for (unsigned c = 0; c < m.clusters.size(); ++c)
            MCA_ASSERT(m.clusters[c].held == expect_held[c],
                       "held queue-entry accounting leak in cluster ",
                       c, " at cycle ", m.now, ": held ",
                       m.clusters[c].held, " expected ", expect_held[c]);
    }
    // Store-dependence index: every entry must name the youngest live
    // in-flight store to its dword, and every in-flight store must be
    // covered by an entry at least as young.
    for (const auto &[dword, ref] : m.storeByDword) {
        const InFlightInst *store = m.pool.tryGet(ref.handle);
        MCA_ASSERT(store && store->di.seq == ref.seq &&
                       isa::isStore(store->di.mi.op) &&
                       (store->di.effAddr >> 3) == dword,
                   "store index entry names a dead or mismatched store "
                   "at cycle ", m.now);
    }
    for (std::size_t i = 0; i < m.rob.size(); ++i) {
        const InFlightInst &inst = m.pool.get(m.rob.at(i));
        if (!isa::isStore(inst.di.mi.op))
            continue;
        const auto it = m.storeByDword.find(inst.di.effAddr >> 3);
        MCA_ASSERT(it != m.storeByDword.end() &&
                       it->second.seq >= inst.di.seq,
                   "in-flight store missing from the dependence index "
                   "at cycle ", m.now);
    }
    for (std::size_t i = 0; i < m.rob.size(); ++i) {
        const InFlightInst &inst = m.pool.get(m.rob.at(i));
        if (inst.memDepStoreSeq == kNoSeq)
            continue;
        if (const InFlightInst *dep = m.pool.tryGet(inst.memDepStore))
            if (dep->di.seq == inst.memDepStoreSeq)
                MCA_ASSERT(isa::isStore(dep->di.mi.op) &&
                               dep->di.seq < inst.di.seq,
                           "memory-dependence handle names a non-store "
                           "or younger instruction at cycle ", m.now);
    }
    // The fetch buffer must as well.
    const auto &fb = fetch.buffer();
    for (std::size_t i = 1; i < fb.size(); ++i)
        MCA_ASSERT(fb[i - 1].seq < fb[i].seq,
                   "fetch buffer out of program order at cycle ", m.now);
}

/**
 * Attribute this cycle's empty retire slots to a single cause by
 * inspecting the oldest unretired instruction (the classic CPI-stack
 * convention: the head is what retirement is waiting on). Runs at the
 * end of the cycle, after every stage has acted. Evaluated only when a
 * cycle stack is attached and the retire bandwidth was not saturated.
 */
obs::StallCause
Processor::Impl::classifyStall() const
{
    using obs::StallCause;

    if (m.rob.empty()) {
        // Nothing in flight: the front end is the limiter.
        if (m.mispredictBlockSeq != kNoSeq || m.now < fetch.stallUntil())
            return StallCause::Squash; // redirect / replay refill
        if (fetch.icachePending() || m.now < fetch.icacheReadyAt())
            return StallCause::IcacheMiss;
        if (m.dqStallThisCycle)
            return StallCause::DispatchQueue;
        // Trace exhausted (drain) or the pipeline is still filling
        // after a squash-free start; both are charged as drain.
        return StallCause::Drain;
    }

    const InFlightInst &head = m.pool.get(m.rob.front());
    const CopyState &master = head.copies[0];

    if (!master.issued) {
        // Waiting to issue: find the binding constraint, most specific
        // first. A full RTB in any receiving cluster gates issue
        // outright (Table 1), so check it before operand arrival.
        for (const auto &sl : head.copies)
            if (!sl.isMaster && sl.role.receivesResult &&
                !m.clusters[sl.cluster].rtb.canAlloc())
                return StallCause::ResultBuffer;
        for (const auto &sl : head.copies) {
            if (sl.isMaster || !sl.role.forwardsOperand)
                continue;
            if (!sl.issued)
                return m.clusters[master.cluster].otb.canAlloc()
                           ? StallCause::RemoteReg
                           : StallCause::OperandBuffer;
            if (sl.issueCycle + 1 > m.now)
                return StallCause::RemoteReg; // operand still in transit
        }
        // No cluster-specific cause: the head waits on local operands,
        // dividers, or memory dependences. If dispatch also lost
        // bandwidth to a full queue this cycle the machine is congested
        // end to end; charge the capacity loss, else base.
        return m.dqStallThisCycle ? StallCause::DispatchQueue
                                  : StallCause::Base;
    } else if (master.completeCycle == kNoCycle ||
               master.completeCycle > m.now) {
        // Master executing; a long-latency load is a d-cache stall,
        // attributed to the level that serviced the miss; anything else
        // is plain execution latency (base).
        if (head.dcacheLoadMiss)
            return head.dcacheMemBound ? StallCause::DcacheMem
                                       : StallCause::DcacheL2;
        return StallCause::Base;
    } else {
        // Master done; a slave copy is outstanding.
        for (const auto &sl : head.copies)
            if (!sl.isMaster && sl.suspended)
                return StallCause::SlaveSuspend;
        for (const auto &sl : head.copies) {
            if (sl.isMaster)
                continue;
            if (sl.completeCycle == kNoCycle || sl.completeCycle > m.now)
                return sl.role.receivesResult ? StallCause::RemoteReg
                                              : StallCause::Base;
        }
        // Completed this cycle after retirement ran; commits next
        // cycle. Charged as base (commit latency).
    }
    return StallCause::Base;
}

/**
 * Idle fast-forward: called after a stepped cycle with no activity
 * (nothing retired, resolved, issued, fetched, dispatched, remapped,
 * or replayed). Such a cycle's blocked decisions repeat unchanged
 * until the earliest future event, so the simulator jumps straight to
 * it, replicating the per-cycle bookkeeping (occupancy samples, stall
 * counters, cycle-stack attribution) in bulk. Returns the cycle to
 * resume stepping at (`next` when no skip applies).
 */
Cycle
Processor::Impl::fastForward(Cycle next, Cycle limit)
{
    if (m.cfg.issueEngine != ProcessorConfig::IssueEngine::Event)
        return next;
    if (m.activityThisCycle || pipelineEmpty())
        return next;
    // An idle cycle ends any issue-saturated phase (the event engine
    // drops out of its full-scan mode so wakeups — and this skip — can
    // take over again).
    sched->onIdleCycle();
    if (!m.cfg.idleSkip)
        return next;

    // Earliest future cycle any stage can act: a scheduler wakeup, a
    // head-copy completion or branch write-back, a fetch stall window
    // or icache fill maturing, or the stall watchdog tripping.
    Cycle e = kNoCycle;
    auto fold = [&](Cycle at) {
        if (at != kNoCycle && at < e)
            e = at;
    };
    fold(sched->nextWakeCycle());
    fold(retire.nextEventCycle());
    fold(fetch.nextEventCycle());
    if (!m.rob.empty())
        fold(m.lastProgress + m.cfg.replayWatchdog + 1);
    if (e == kNoCycle)
        return next; // purely event-gated; resolved by other stages
    e = std::min(e, limit);
    if (e <= next)
        return next;
    const Cycle k = e - next;

    // Replicate k identical idle cycles in bulk. No transfer-buffer
    // frees are pending (frees are only scheduled by issue and squash,
    // both activity), so beginCycle would be a pure re-sample.
    for (unsigned c = 0; c < m.clusters.size(); ++c)
        m.st.queueOccupancy[c]->sample(m.clusters[c].occupancy(), k);
    m.st.robOccupancy->sample(m.rob.size(), k);
    switch (fetch.idleEffect()) {
      case FetchUnit::IdleEffect::BranchStall:
        *m.st.stallBranchCycles += k;
        break;
      case FetchUnit::IdleEffect::IcacheStall:
        *m.st.stallIcacheCycles += k;
        break;
      case FetchUnit::IdleEffect::None:
        break;
    }
    switch (dispatch.idleEffect()) {
      case DispatchUnit::IdleEffect::RemapDrain:
        *m.st.remapDrainCycles += k;
        break;
      case DispatchUnit::IdleEffect::StallRob:
        *m.st.stallRob += k;
        break;
      case DispatchUnit::IdleEffect::StallDq:
        *m.st.stallDq += k;
        break;
      case DispatchUnit::IdleEffect::StallPhys:
        *m.st.stallPhys += k;
        break;
      case DispatchUnit::IdleEffect::None:
        break;
    }
    if (cstack) {
        // The stall cause is constant across the window: every
        // now-comparison it makes has its flip cycle folded into e.
        cstack->accountIdle(classifyStall(), k);
    }
    *m.st.cycles += k;
    m.now = e;
    return e;
}

// ---------------------------------------------------------------------

Processor::Processor(const ProcessorConfig &config,
                     exec::TraceSource &trace, StatGroup &stats)
    // Reject inconsistent configurations at the constructor, not just
    // in the CLIs: a library user gets the named-field diagnostic of
    // ProcessorConfig::validate instead of an assert deep inside
    // machine construction.
    : config_((config.validate(), config)),
      impl_(std::make_unique<Impl>(config, trace, stats))
{
}

Processor::~Processor() = default;

void
Processor::attachTimeline(TimelineRecorder *recorder)
{
    impl_->m.timeline = recorder;
}

void
Processor::attachCycleStack(obs::CycleStack *stack)
{
    impl_->cstack = stack;
    if (stack)
        stack->slots = impl_->m.cfg.retireWidth;
}

void
Processor::observe(obs::CycleObs &out) const
{
    const Impl &im = *impl_;
    out.cycle = cycle_;
    out.retired = im.m.st.retired->value();
    out.dispatched = im.m.st.dispatched->value();
    out.icacheAccesses = im.m.icache.accesses();
    out.icacheMisses = im.m.icache.misses();
    out.dcacheAccesses = im.m.dcache.accesses();
    out.dcacheMisses = im.m.dcache.misses();
    out.hasL2 = im.m.memsys.hasL2();
    if (const mem::Cache *l2 = im.m.memsys.l2()) {
        out.l2Accesses = l2->accesses();
        out.l2Misses = l2->misses();
        out.l2InFlight = l2->inFlight(cycle_);
    } else {
        out.l2Accesses = 0;
        out.l2Misses = 0;
        out.l2InFlight = 0;
    }
    out.l1iInFlight = im.m.icache.inFlight(cycle_);
    out.l1dInFlight = im.m.dcache.inFlight(cycle_);
    out.memInFlight = im.m.memsys.memory().inFlight(cycle_);
    out.robOcc = static_cast<unsigned>(im.m.rob.size());
    out.robCap = im.m.cfg.retireWindow;
    out.clusters.resize(im.m.clusters.size());
    for (std::size_t c = 0; c < im.m.clusters.size(); ++c) {
        const Cluster &cl = im.m.clusters[c];
        obs::ClusterObs &o = out.clusters[c];
        o.queueOcc = static_cast<unsigned>(cl.occupancy());
        o.queueCap = cl.queueCapacity;
        o.otbInUse = cl.otb.inUse();
        o.otbCap = cl.otb.capacity();
        o.rtbInUse = cl.rtb.inUse();
        o.rtbCap = cl.rtb.capacity();
    }
}

std::uint64_t
Processor::retiredInstructions() const
{
    return impl_->m.st.retired->value();
}

namespace
{

/**
 * Compile-time-selected host-profiler scope: the <false> sink is an
 * empty object the optimizer deletes, so a WithProf=false cycle kernel
 * carries no per-stage timer construction at all (not even the
 * enabled() load PROF_SCOPE pays).
 */
template <bool WithProf>
struct MaybeProfScope
{
    explicit MaybeProfScope(prof::RegionId) {}
};

template <>
struct MaybeProfScope<true>
{
    explicit MaybeProfScope(prof::RegionId id) : timer(id) {}
    prof::ScopeTimer timer;
};

// Stage regions, interned once (PROF_SCOPE's static-local pattern
// would re-check its guard per call inside the templated kernel).
const prof::RegionId kRegBegin = prof::internRegion("core.begin");
const prof::RegionId kRegRetire = prof::internRegion("core.retire");
const prof::RegionId kRegSchedule = prof::internRegion("core.schedule");
const prof::RegionId kRegFetch = prof::internRegion("core.fetch");
const prof::RegionId kRegDispatch = prof::internRegion("core.dispatch");
const prof::RegionId kRegAccount = prof::internRegion("core.account");
const prof::RegionId kRegIdleSkip = prof::internRegion("core.idle_skip");

} // namespace

template <bool WithObs, bool WithProf>
bool
Processor::stepImpl()
{
    Impl &im = *impl_;
    if (im.pipelineEmpty())
        return false;
    im.m.now = cycle_;
    {
        MaybeProfScope<WithProf> ps(kRegBegin);
        im.beginCycle();
    }
    {
        MaybeProfScope<WithProf> ps(kRegRetire);
        const unsigned n_retired = im.retire.tick();
        if (n_retired > 0)
            im.sched->onRetired(n_retired);
        im.retire.resolveBranches();
    }
    {
        MaybeProfScope<WithProf> ps(kRegSchedule);
        im.sched->tick();
        im.serviceReplayRequest();
    }
    {
        MaybeProfScope<WithProf> ps(kRegFetch);
        im.fetch.tick();
    }
    {
        MaybeProfScope<WithProf> ps(kRegDispatch);
        im.dispatch.tick();
    }
    MaybeProfScope<WithProf> ps(kRegAccount);
    im.checkWatchdog();
    if constexpr (WithObs) {
        if (im.m.cfg.paranoid)
            im.checkInvariants();
        if (im.cstack) {
            obs::CycleStack &cs = *im.cstack;
            cs.slots = im.m.cfg.retireWidth;
            const auto cause = im.m.retiredThisCycle < cs.slots
                                   ? im.classifyStall()
                                   : obs::StallCause::Base;
            cs.account(im.m.retiredThisCycle, cause);
        }
    }
    ++cycle_;
    ++stepped_;
    ++*im.m.st.cycles;
    return true;
}

bool
Processor::step()
{
    // Selected per call: the cycle stack can attach/detach and the
    // profiler can toggle between any two cycles, and the lockstep
    // harness steps machines whose attachment states differ.
    const Impl &im = *impl_;
    const bool obs = im.cstack != nullptr || im.m.cfg.paranoid;
    if (prof::enabled())
        return obs ? stepImpl<true, true>() : stepImpl<false, true>();
    return obs ? stepImpl<true, false>() : stepImpl<false, false>();
}

template <bool WithObs, bool WithProf>
SimResult
Processor::runLoop(std::uint64_t target_retired, Cycle max_cycles)
{
    SimResult result;
    while (cycle_ < max_cycles &&
           impl_->m.st.retired->value() < target_retired) {
        if (!stepImpl<WithObs, WithProf>())
            break;
        MaybeProfScope<WithProf> ps(kRegIdleSkip);
        cycle_ = impl_->fastForward(cycle_, max_cycles);
    }
    result.cycles = cycle_;
    result.instructions = impl_->m.st.retired->value();
    result.completed = impl_->pipelineEmpty();
    return result;
}

SimResult
Processor::runDispatch(std::uint64_t target_retired, Cycle max_cycles)
{
    // Hoist the accounting selection out of the loop. Attachment state
    // cannot change while run() owns the thread, and profiler toggles
    // mid-run only lose attribution for the remainder of that call.
    const Impl &im = *impl_;
    const bool obs = im.cstack != nullptr || im.m.cfg.paranoid;
    if (prof::enabled())
        return obs ? runLoop<true, true>(target_retired, max_cycles)
                   : runLoop<false, true>(target_retired, max_cycles);
    return obs ? runLoop<true, false>(target_retired, max_cycles)
               : runLoop<false, false>(target_retired, max_cycles);
}

SimResult
Processor::run(Cycle max_cycles)
{
    return runDispatch(~std::uint64_t{0}, max_cycles);
}

SimResult
Processor::runUntilRetired(std::uint64_t target_retired, Cycle max_cycles)
{
    return runDispatch(target_retired, max_cycles);
}

mem::MemorySystem &
Processor::memorySystem()
{
    return impl_->m.memsys;
}

bpred::Predictor &
Processor::predictor()
{
    return *impl_->m.predictor;
}

exec::TraceSource &
Processor::trace()
{
    return impl_->fetch.trace();
}

// --- checkpoint/restore ----------------------------------------------

namespace
{

/** Canonical encoding of a RegisterMap (configHash + live-map state). */
void
encodeRegMap(ckpt::Writer &w, const isa::RegisterMap &map)
{
    w.u32(map.numClusters());
    w.u32(map.globalMask(isa::RegClass::Int));
    w.u32(map.globalMask(isa::RegClass::Fp));
    for (unsigned ci = 0; ci < 2; ++ci)
        for (unsigned i = 0; i < isa::kNumArchRegs; ++i)
            w.u8(static_cast<std::uint8_t>(map.homeOverride(
                isa::RegId(static_cast<isa::RegClass>(ci), i))));
}

/** Mirror of encodeRegMap, applied through the public mutators. */
void
decodeRegMap(ckpt::Reader &r, isa::RegisterMap &map)
{
    const std::uint32_t clusters = r.u32();
    if (clusters != map.numClusters())
        throw std::runtime_error(
            "checkpoint: register-map cluster count mismatch");
    const std::uint32_t masks[2] = {r.u32(), r.u32()};
    for (unsigned ci = 0; ci < 2; ++ci) {
        const auto cls = static_cast<isa::RegClass>(ci);
        for (unsigned i = 0; i < isa::kNumArchRegs; ++i) {
            const isa::RegId reg(cls, i);
            if (masks[ci] & (1u << i))
                map.setGlobal(reg);
            else
                map.setLocal(reg);
        }
    }
    for (unsigned ci = 0; ci < 2; ++ci) {
        const auto cls = static_cast<isa::RegClass>(ci);
        for (unsigned i = 0; i < isa::kNumArchRegs; ++i) {
            const isa::RegId reg(cls, i);
            const auto over = static_cast<std::int8_t>(r.u8());
            if (over >= 0)
                map.setHome(reg, static_cast<unsigned>(over));
            else
                map.clearHome(reg);
        }
    }
}

void
writeSlaveRole(ckpt::Writer &w, const isa::SlaveRole &role)
{
    w.u8(static_cast<std::uint8_t>(role.cluster));
    w.b(role.forwardsOperand);
    w.b(role.receivesResult);
    w.u32(role.srcMask);
}

isa::SlaveRole
readSlaveRole(ckpt::Reader &r)
{
    isa::SlaveRole role;
    role.cluster = r.u8();
    role.forwardsOperand = r.b();
    role.receivesResult = r.b();
    role.srcMask = r.u32();
    return role;
}

void
writeInFlightInst(ckpt::Writer &w, const InFlightInst &inst)
{
    exec::writeDynInst(w, inst.di);
    w.u8(static_cast<std::uint8_t>(inst.dist.masterCluster));
    w.b(inst.dist.masterWritesDest);
    w.u64(inst.dist.slaves.size());
    for (const auto &role : inst.dist.slaves)
        writeSlaveRole(w, role);
    w.u64(inst.copies.size());
    for (const auto &copy : inst.copies) {
        w.u8(copy.cluster);
        w.b(copy.isMaster);
        writeSlaveRole(w, copy.role);
        w.u64(copy.reads.size());
        for (const auto &rd : copy.reads) {
            w.u8(rd.srcIndex);
            w.u8(rd.cluster);
            w.u8(static_cast<std::uint8_t>(rd.cls));
            w.u16(rd.phys);
        }
        w.u64(copy.rtbClusters.size());
        for (std::uint8_t c : copy.rtbClusters)
            w.u8(c);
        w.b(copy.inQueue);
        w.b(copy.issued);
        w.b(copy.suspended);
        w.b(copy.woke);
        w.b(copy.holdsOtb);
        w.u64(copy.issueCycle);
        w.u64(copy.completeCycle);
        w.u64(copy.bufferBlockedSince);
    }
    w.u64(inst.renames.size());
    for (const auto &ru : inst.renames) {
        w.u8(ru.cluster);
        w.u8(static_cast<std::uint8_t>(ru.cls));
        w.u8(ru.arch);
        w.u16(ru.newPhys);
        w.u16(ru.prevPhys);
    }
    w.u64(inst.dispatchCycle);
    w.u32(inst.masterEffLat);
    w.u64(inst.memDepStoreSeq);
    w.b(inst.dcacheLoadMiss);
    w.b(inst.dcacheMemBound);
    w.b(inst.condBranch);
    w.b(inst.predTaken);
    w.b(inst.mispredicted);
}

void
readInFlightInst(ckpt::Reader &r, InFlightInst &inst)
{
    inst.di = exec::readDynInst(r);
    inst.dist.masterCluster = r.u8();
    inst.dist.masterWritesDest = r.b();
    inst.dist.slaves.resize(r.u64());
    for (auto &role : inst.dist.slaves)
        role = readSlaveRole(r);
    inst.copies.resize(r.u64());
    for (auto &copy : inst.copies) {
        copy.cluster = r.u8();
        copy.isMaster = r.b();
        copy.role = readSlaveRole(r);
        copy.reads.resize(r.u64());
        for (auto &rd : copy.reads) {
            rd.srcIndex = r.u8();
            rd.cluster = r.u8();
            rd.cls = static_cast<isa::RegClass>(r.u8());
            rd.phys = r.u16();
        }
        copy.rtbClusters.resize(r.u64());
        for (auto &c : copy.rtbClusters)
            c = r.u8();
        copy.inQueue = r.b();
        copy.issued = r.b();
        copy.suspended = r.b();
        copy.woke = r.b();
        copy.holdsOtb = r.b();
        copy.issueCycle = r.u64();
        copy.completeCycle = r.u64();
        copy.bufferBlockedSince = r.u64();
    }
    inst.renames.resize(r.u64());
    for (auto &ru : inst.renames) {
        ru.cluster = r.u8();
        ru.cls = static_cast<isa::RegClass>(r.u8());
        ru.arch = r.u8();
        ru.newPhys = r.u16();
        ru.prevPhys = r.u16();
    }
    inst.dispatchCycle = r.u64();
    inst.masterEffLat = r.u32();
    inst.memDepStoreSeq = r.u64();
    inst.dcacheLoadMiss = r.b();
    inst.dcacheMemBound = r.b();
    inst.condBranch = r.b();
    inst.predTaken = r.b();
    inst.mispredicted = r.b();
}

void
writeTransferBuffer(ckpt::Writer &w, const TransferBuffer &buf)
{
    w.u32(buf.inUse());
    w.u64(buf.pendingFreeList().size());
    for (Cycle c : buf.pendingFreeList())
        w.u64(c);
}

void
readTransferBuffer(ckpt::Reader &r, TransferBuffer &buf)
{
    const unsigned in_use = r.u32();
    std::vector<Cycle> pending(r.u64());
    for (Cycle &c : pending)
        c = r.u64();
    buf.restore(in_use, std::move(pending));
}

void
writePhysRegFile(ckpt::Writer &w, const PhysRegFile &rf)
{
    w.u64(rf.readyAt.size());
    for (Cycle c : rf.readyAt)
        w.u64(c);
    w.u64(rf.freeList.size());
    for (std::uint16_t p : rf.freeList)
        w.u16(p);
}

void
readPhysRegFile(ckpt::Reader &r, PhysRegFile &rf)
{
    const std::uint64_t n = r.u64();
    if (n != rf.readyAt.size())
        throw std::runtime_error(
            "checkpoint: physical register file size mismatch");
    for (Cycle &c : rf.readyAt)
        c = r.u64();
    rf.freeList.resize(r.u64());
    for (std::uint16_t &p : rf.freeList)
        p = r.u16();
}

} // namespace

std::uint64_t
Processor::configHash() const
{
    const ProcessorConfig &c = config_;
    ckpt::Writer w;
    w.u32(c.numClusters);
    w.u32(c.fetchWidth);
    w.u32(c.fetchBufferEntries);
    w.u32(c.dispatchQueueEntries);
    w.b(c.holdQueueUntilRetire);
    w.u32(c.physIntRegs);
    w.u32(c.physFpRegs);
    const isa::IssueRules &ir = c.issueRules;
    for (unsigned v : {ir.all, ir.intMul, ir.intOther, ir.fpAll, ir.fpDiv,
                       ir.fpOther, ir.loadStore, ir.ctrlFlow})
        w.u32(v);
    w.u32(c.retireWidth);
    w.u32(c.retireWindow);
    w.u32(c.operandBufferEntries);
    w.u32(c.resultBufferEntries);
    w.u32(c.replayWatchdog);
    w.u32(c.bufferBlockThreshold);
    w.u32(c.replayPenalty);
    w.b(c.reserveOldestEntry);
    w.u8(static_cast<std::uint8_t>(c.issueEngine));
    encodeRegMap(w, c.regMap);
    w.u64(c.mapSchedule.size());
    for (const auto &map : c.mapSchedule)
        encodeRegMap(w, map);
    w.u32(c.remapTransferRate);
    for (const mem::CacheParams *cp : {&c.memory.icache, &c.memory.dcache}) {
        w.u64(cp->sizeBytes);
        w.u32(cp->assoc);
        w.u32(cp->blockBytes);
        w.u32(cp->missLatency);
        w.b(cp->writeAllocate);
        w.u32(cp->mshrEntries);
        w.u32(cp->hitLatency);
        w.u32(cp->fillPorts);
    }
    w.u64(c.memory.l2SizeBytes);
    w.u32(c.memory.l2Assoc);
    w.u32(c.memory.l2BlockBytes);
    w.u32(c.memory.l2HitLatency);
    w.u32(c.memory.l2FillPorts);
    w.u32(c.memory.memLatency);
    w.u32(c.memory.memPorts);
    w.u8(static_cast<std::uint8_t>(c.predictor));
    w.b(c.speculativeHistory);
    w.u32(c.bimodalIndexBits);
    w.u32(c.historyBits);
    w.u32(c.gshareIndexBits);
    w.u32(c.chooserIndexBits);
    return ckpt::fnv1a(w.data().data(), w.data().size());
}

void
Processor::saveState(ckpt::SnapshotBuilder &b) const
{
    PROF_SCOPE("ckpt.save_state");
    const Impl &im = *impl_;
    ckpt::Writer &w = b.w();

    b.section("CORE");
    w.u64(cycle_);
    w.u64(stepped_);
    w.u64(im.m.now);
    w.u64(im.m.lastProgress);
    w.u32(im.m.consecutiveReplays);
    w.u64(im.m.mispredictBlockSeq);
    w.u64(im.m.replayRequestSeq);
    // The live register map: §6 remaps mutate it at runtime, so it is
    // machine state, distinct from the constructed config's map.
    encodeRegMap(w, im.m.cfg.regMap);
    // In-flight stores' issue cycles, in the legacy map layout (seq ->
    // issue cycle, ascending seq). The data is derived from the stores'
    // master copies — the live map was eliminated — and the retire
    // window is seq-ordered, matching the old std::map iteration.
    std::uint64_t n_store_rows = 0;
    for (std::size_t i = 0; i < im.m.rob.size(); ++i)
        if (isa::isStore(im.m.pool.get(im.m.rob.at(i)).di.mi.op))
            ++n_store_rows;
    w.u64(n_store_rows);
    for (std::size_t i = 0; i < im.m.rob.size(); ++i) {
        const InFlightInst &inst = im.m.pool.get(im.m.rob.at(i));
        if (!isa::isStore(inst.di.mi.op))
            continue;
        w.u64(inst.di.seq);
        w.u64(inst.copies[0].issueCycle);
    }
    w.u64(im.m.pendingBranches.size());
    for (const auto &pb : im.m.pendingBranches) {
        w.u64(pb.seq);
        w.u64(pb.pc);
        w.b(pb.taken);
        w.b(pb.mispredicted);
        w.u64(pb.wbCycle);
    }
    w.u64(im.m.rob.size());
    for (std::size_t i = 0; i < im.m.rob.size(); ++i)
        writeInFlightInst(w, im.m.pool.get(im.m.rob.at(i)));
    // Clusters; dispatch-queue slots name their instruction by retire-
    // window index (handles do not survive serialization). The rows
    // are derived from the retire window rather than the live scan
    // list: in window mode an issued copy's entry lives on only as a
    // cl.held count, but the serialized queue keeps one row per
    // occupied entry in age order, preserving the byte format.
    for (unsigned c = 0; c < im.m.clusters.size(); ++c) {
        const auto forEachRow = [&](auto &&fn) {
            for (std::size_t i = 0; i < im.m.rob.size(); ++i) {
                const InFlightInst &qi = im.m.pool.get(im.m.rob.at(i));
                for (std::uint32_t ci = 0; ci < qi.copies.size(); ++ci) {
                    const CopyState &copy = qi.copies[ci];
                    if (copy.cluster != c ||
                        (!copy.inQueue &&
                         !im.m.cfg.holdQueueUntilRetire))
                        continue;
                    fn(static_cast<std::uint32_t>(i), ci);
                }
            }
        };
        std::uint64_t n_rows = 0;
        forEachRow([&](std::uint32_t, std::uint32_t) { ++n_rows; });
        w.u64(n_rows);
        forEachRow([&](std::uint32_t i, std::uint32_t ci) {
            w.u32(i);
            w.u32(ci);
        });
        const Cluster &cl = im.m.clusters[c];
        writePhysRegFile(w, cl.intRegs);
        writePhysRegFile(w, cl.fpRegs);
        for (unsigned ci = 0; ci < 2; ++ci)
            for (unsigned a = 0; a < isa::kNumArchRegs; ++a)
                w.u16(cl.renameMap[ci][a]);
        for (unsigned ci = 0; ci < 2; ++ci)
            for (unsigned a = 0; a < isa::kNumArchRegs; ++a)
                w.b(cl.mapped[ci][a]);
        writeTransferBuffer(w, cl.otb);
        writeTransferBuffer(w, cl.rtb);
        w.u64(cl.dividerBusyUntil.size());
        for (Cycle c : cl.dividerBusyUntil)
            w.u64(c);
    }
    im.fetch.saveState(w);
    im.sched->saveState(w);

    b.section("TRAC");
    im.fetch.trace().saveState(w);

    b.section("MEMS");
    im.m.memsys.saveState(w);

    b.section("BPRD");
    im.m.predictor->saveState(w);

    b.section("STAT");
    std::uint64_t n_counters = 0, n_dists = 0;
    im.stats->forEachCounter(
        [&](const std::string &, const Counter &) { ++n_counters; });
    im.stats->forEachDistribution(
        [&](const std::string &, const Distribution &) { ++n_dists; });
    w.u64(n_counters);
    im.stats->forEachCounter(
        [&](const std::string &name, const Counter &c) {
            w.str(name);
            w.u64(c.value());
        });
    w.u64(n_dists);
    im.stats->forEachDistribution(
        [&](const std::string &name, const Distribution &d) {
            w.str(name);
            w.u64(d.buckets().size());
            for (std::uint64_t v : d.buckets())
                w.u64(v);
            w.u64(d.overflow());
            w.u64(d.samples());
            w.u64(d.sum());
            w.f64(d.sumSq());
            w.u64(d.max());
        });

    b.section("CSTK");
    w.b(im.cstack != nullptr);
    if (im.cstack) {
        for (std::uint64_t v : im.cstack->slotCycles)
            w.u64(v);
        w.u32(im.cstack->slots);
        w.u64(im.cstack->cycles);
    }
}

void
Processor::loadState(ckpt::SnapshotParser &p)
{
    PROF_SCOPE("ckpt.load_state");
    Impl &im = *impl_;
    ckpt::Reader &r = p.r();

    p.section("CORE");
    cycle_ = r.u64();
    stepped_ = r.u64();
    im.m.now = r.u64();
    im.m.lastProgress = r.u64();
    im.m.consecutiveReplays = r.u32();
    im.m.mispredictBlockSeq = r.u64();
    im.m.replayRequestSeq = r.u64();
    decodeRegMap(r, im.m.cfg.regMap);
    // The legacy store-issue map rows carry no independent state (each
    // value equals the store's master-copy issueCycle, restored with
    // the window below): read and discard, keeping the byte format.
    const std::uint64_t n_store_rows = r.u64();
    for (std::uint64_t i = 0; i < n_store_rows; ++i) {
        r.u64(); // seq
        r.u64(); // issue cycle
    }
    im.m.pendingBranches.resize(r.u64());
    for (auto &pb : im.m.pendingBranches) {
        pb.seq = r.u64();
        pb.pc = r.u64();
        pb.taken = r.b();
        pb.mispredicted = r.b();
        pb.wbCycle = r.u64();
    }
    im.m.rob.clear();
    im.m.pool.clear();
    const std::uint64_t n_rob = r.u64();
    if (n_rob > im.m.pool.capacity())
        throw std::runtime_error(
            "checkpoint: retire window larger than configured");
    for (std::uint64_t i = 0; i < n_rob; ++i) {
        const InFlightHandle h = im.m.pool.alloc();
        InFlightInst &inst = im.m.pool.get(h);
        inst = InFlightInst{};
        readInFlightInst(r, inst);
        im.m.rob.pushBack(h);
    }
    // Rebuild the loads' memory-dependence handles from the serialized
    // sequence numbers; a store that already left the window simply
    // stays unresolved (kNoHandle), the same observable state as a
    // stale handle.
    for (std::size_t i = 0; i < im.m.rob.size(); ++i) {
        InFlightInst &inst = im.m.pool.get(im.m.rob.at(i));
        inst.memDepStore = kNoHandle;
        if (inst.memDepStoreSeq == kNoSeq)
            continue;
        for (std::size_t j = i; j-- > 0;) {
            const InFlightHandle oh = im.m.rob.at(j);
            if (im.m.pool.get(oh).di.seq == inst.memDepStoreSeq) {
                inst.memDepStore = oh;
                break;
            }
        }
    }
    im.m.rebuildStoreIndex();
    for (auto &cl : im.m.clusters) {
        // Split the serialized queue rows back into the live scan list
        // (copies still awaiting issue/wake, i.e. inQueue) and the
        // window-mode held count (issued copies whose entries stay
        // occupied until retirement).
        cl.queue.clear();
        cl.held = 0;
        const std::uint64_t n_rows = r.u64();
        for (std::uint64_t k = 0; k < n_rows; ++k) {
            const std::uint32_t rob_idx = r.u32();
            if (rob_idx >= im.m.rob.size())
                throw std::runtime_error(
                    "checkpoint: queue slot outside retire window");
            const std::uint32_t copy_idx = r.u32();
            const InFlightHandle h = im.m.rob.at(rob_idx);
            const InFlightInst &qi = im.m.pool.get(h);
            if (copy_idx >= qi.copies.size())
                throw std::runtime_error(
                    "checkpoint: queue slot copy index out of range");
            if (qi.copies[copy_idx].inQueue)
                cl.queue.push_back({h, copy_idx});
            else
                ++cl.held;
        }
        readPhysRegFile(r, cl.intRegs);
        readPhysRegFile(r, cl.fpRegs);
        for (unsigned ci = 0; ci < 2; ++ci)
            for (unsigned a = 0; a < isa::kNumArchRegs; ++a)
                cl.renameMap[ci][a] = r.u16();
        for (unsigned ci = 0; ci < 2; ++ci)
            for (unsigned a = 0; a < isa::kNumArchRegs; ++a)
                cl.mapped[ci][a] = r.b();
        readTransferBuffer(r, cl.otb);
        readTransferBuffer(r, cl.rtb);
        const std::uint64_t n_div = r.u64();
        if (n_div != cl.dividerBusyUntil.size())
            throw std::runtime_error(
                "checkpoint: divider count mismatch");
        for (Cycle &c : cl.dividerBusyUntil)
            c = r.u64();
    }
    im.fetch.loadState(r);
    im.sched->loadState(r);

    p.section("TRAC");
    im.fetch.trace().loadState(r);

    p.section("MEMS");
    im.m.memsys.loadState(r);

    p.section("BPRD");
    im.m.predictor->loadState(r);

    p.section("STAT");
    const std::uint64_t n_counters = r.u64();
    for (std::uint64_t i = 0; i < n_counters; ++i) {
        const std::string name = r.str();
        Counter *c = im.stats->findCounter(name);
        if (!c)
            throw std::runtime_error(
                "checkpoint: unknown counter '" + name + "'");
        c->set(r.u64());
    }
    const std::uint64_t n_dists = r.u64();
    for (std::uint64_t i = 0; i < n_dists; ++i) {
        const std::string name = r.str();
        Distribution *d = im.stats->findDistribution(name);
        if (!d)
            throw std::runtime_error(
                "checkpoint: unknown distribution '" + name + "'");
        std::vector<std::uint64_t> buckets(r.u64());
        if (buckets.size() != d->buckets().size())
            throw std::runtime_error(
                "checkpoint: distribution '" + name +
                "' bucket count mismatch");
        for (std::uint64_t &v : buckets)
            v = r.u64();
        const std::uint64_t overflow = r.u64();
        const std::uint64_t samples = r.u64();
        const std::uint64_t sum = r.u64();
        const double sum_sq = r.f64();
        const std::uint64_t max = r.u64();
        d->restore(buckets, overflow, samples, sum, sum_sq, max);
    }

    p.section("CSTK");
    if (r.b()) {
        std::array<std::uint64_t, obs::kNumStallCauses> slot_cycles{};
        for (std::uint64_t &v : slot_cycles)
            v = r.u64();
        const unsigned slots = r.u32();
        const Cycle cycles = r.u64();
        if (im.cstack) {
            im.cstack->slotCycles = slot_cycles;
            im.cstack->slots = slots;
            im.cstack->cycles = cycles;
        }
    }
    p.finish();
}

} // namespace mca::core
