#include "core/dispatch.hh"

#include <algorithm>

#include "isa/opcodes.hh"
#include "support/panic.hh"

namespace mca::core
{

void
DispatchUnit::tick()
{
    idle_ = IdleEffect::None;
    auto &fetchBuffer = fetch_.buffer();
    unsigned n = 0;
    while (n < m_.cfg.fetchWidth && !fetchBuffer.empty()) {
        exec::DynInst &di = fetchBuffer.front();
        // Instructions younger than an unresolved mispredicted branch
        // are architecturally wrong-path: hold them.
        if (m_.mispredictBlockSeq != kNoSeq &&
            di.seq > m_.mispredictBlockSeq)
            break;
        // Dynamic register reassignment (§6 extension): the machine
        // drains, transfers the re-homed architectural state, and only
        // then dispatches under the new map.
        if (di.remapIndex != exec::DynInst::kNoRemap) {
            if (!m_.rob.empty()) {
                ++*m_.st.remapDrainCycles;
                idle_ = IdleEffect::RemapDrain;
                break;
            }
            applyRemap(di.remapIndex);
            di.remapIndex = exec::DynInst::kNoRemap;
        }
        if (!tryDispatch(di))
            break;
        fetchBuffer.pop_front();
        ++n;
    }
}

bool
DispatchUnit::tryDispatch(const exec::DynInst &di)
{
    if (m_.rob.size() >= m_.cfg.retireWindow) {
        ++*m_.st.stallRob;
        idle_ = IdleEffect::StallRob;
        return false;
    }

    auto &clusters = m_.clusters;
    // Distribution decision; instructions with no local-register
    // constraint go to the currently least-loaded cluster (occupancy
    // counts entries held by issued copies awaiting retirement).
    unsigned least = 0;
    for (unsigned c = 1; c < clusters.size(); ++c)
        if (clusters[c].occupancy() < clusters[least].occupancy())
            least = c;
    const isa::Distribution dist =
        isa::decideDistribution(di.mi, m_.cfg.regMap, least);

    // --- resource checks ------------------------------------------
    // Queue entries, one per copy.
    dqNeed_.assign(clusters.size(), 0);
    ++dqNeed_[dist.masterCluster];
    for (const auto &sl : dist.slaves)
        ++dqNeed_[sl.cluster];
    for (unsigned c = 0; c < clusters.size(); ++c)
        if (clusters[c].occupancy() + dqNeed_[c] >
            clusters[c].queueCapacity) {
            ++*m_.st.stallDq;
            m_.dqStallThisCycle = true;
            idle_ = IdleEffect::StallDq;
            return false;
        }
    // Physical destination registers.
    const bool has_dest = di.mi.hasDest() && !di.mi.dest->isZero();
    if (has_dest) {
        physNeed_.assign(clusters.size(), 0);
        if (dist.masterWritesDest)
            ++physNeed_[dist.masterCluster];
        for (const auto &sl : dist.slaves)
            if (sl.receivesResult)
                ++physNeed_[sl.cluster];
        for (unsigned c = 0; c < clusters.size(); ++c)
            if (physNeed_[c] >
                (clusters[c].regs(di.mi.dest->cls).freeList.size())) {
                ++*m_.st.stallPhys;
                idle_ = IdleEffect::StallPhys;
                return false;
            }
    }

    // --- commit the dispatch ----------------------------------------
    const InFlightHandle h = m_.pool.alloc();
    InFlightInst &inst = m_.pool.get(h);
    inst = InFlightInst{};
    inst.di = di;
    inst.dist = dist;
    inst.dispatchCycle = m_.now;
    inst.condBranch = isa::isCondBranch(di.mi.op);

    // Perfect memory disambiguation (trace addresses are oracle): a
    // load records the youngest older store to its dword, if one is
    // still in flight. The per-dword index replaces a backward walk of
    // the retire window; its maintenance (dispatch insert, retire
    // erase, squash rebuild) guarantees any entry found here is live.
    if (isa::isLoad(di.mi.op)) {
        const auto it = m_.storeByDword.find(di.effAddr >> 3);
        if (it != m_.storeByDword.end()) {
            inst.memDepStore = it->second.handle;
            inst.memDepStoreSeq = it->second.seq;
        }
    } else if (isa::isStore(di.mi.op)) {
        m_.storeByDword[di.effAddr >> 3] = {h, di.seq};
    }

    // Build copies: master first.
    CopyState master;
    master.cluster = static_cast<std::uint8_t>(dist.masterCluster);
    master.isMaster = true;
    inst.copies.push_back(master);
    for (const auto &sl : dist.slaves) {
        CopyState s;
        s.cluster = static_cast<std::uint8_t>(sl.cluster);
        s.role = sl;
        inst.copies.push_back(s);
    }

    // Source reads: resolved against the current rename maps, before
    // the destination is renamed.
    for (unsigned i = 0; i < 2; ++i) {
        if (!di.mi.srcs[i])
            continue;
        const isa::RegId reg = *di.mi.srcs[i];
        if (reg.isZero())
            continue;
        if (m_.cfg.regMap.accessibleFrom(reg, dist.masterCluster)) {
            Cluster &cl = clusters[dist.masterCluster];
            MCA_ASSERT(cl.mappedOf(reg.cls, reg.index),
                       "read of unmapped register ", isa::regName(reg));
            inst.copies[0].reads.push_back(
                {static_cast<std::uint8_t>(i),
                 static_cast<std::uint8_t>(dist.masterCluster), reg.cls,
                 cl.mapOf(reg.cls, reg.index)});
        } else {
            // A slave in the register's home cluster forwards it.
            const unsigned home = m_.cfg.regMap.homeCluster(reg);
            bool found = false;
            for (auto &copy : inst.copies) {
                if (copy.isMaster || copy.cluster != home ||
                    !(copy.role.srcMask & (1u << i)))
                    continue;
                Cluster &cl = clusters[home];
                MCA_ASSERT(cl.mappedOf(reg.cls, reg.index),
                           "read of unmapped register ",
                           isa::regName(reg));
                copy.reads.push_back(
                    {static_cast<std::uint8_t>(i),
                     static_cast<std::uint8_t>(home), reg.cls,
                     cl.mapOf(reg.cls, reg.index)});
                found = true;
            }
            MCA_ASSERT(found, "no slave forwards operand ",
                       isa::regName(reg));
        }
    }

    // Destination renaming in every allocating cluster.
    if (has_dest) {
        const isa::RegId dest = *di.mi.dest;
        auto renameIn = [&](unsigned c) {
            Cluster &cl = clusters[c];
            PhysRegFile &rf = cl.regs(dest.cls);
            const std::uint16_t fresh = rf.alloc();
            rf.readyAt[fresh] = kNoCycle;
            RenameUpdate ru;
            ru.cluster = static_cast<std::uint8_t>(c);
            ru.cls = dest.cls;
            ru.arch = dest.index;
            ru.newPhys = fresh;
            MCA_ASSERT(cl.mappedOf(dest.cls, dest.index),
                       "rename of unmapped register ",
                       isa::regName(dest));
            ru.prevPhys = cl.mapOf(dest.cls, dest.index);
            cl.mapOf(dest.cls, dest.index) = fresh;
            inst.renames.push_back(ru);
        };
        if (dist.masterWritesDest)
            renameIn(dist.masterCluster);
        for (const auto &sl : dist.slaves)
            if (sl.receivesResult)
                renameIn(sl.cluster);
    }

    // Insert copies into their dispatch queues.
    for (unsigned i = 0; i < inst.copies.size(); ++i) {
        auto &copy = inst.copies[i];
        copy.inQueue = true;
        clusters[copy.cluster].queue.push_back({h, i});
        m_.record(m_.now, di.seq, copy.cluster,
                  TimelineEvent::Dispatched);
    }

    // Branch prediction at queue-insertion time (paper footnote 2).
    if (inst.condBranch) {
        ++*m_.st.bpredLookups;
        inst.predTaken = m_.predictor->predict(di.pc);
        inst.mispredicted = inst.predTaken != di.taken;
        if (inst.mispredicted) {
            ++*m_.st.bpredMispredicts;
            m_.mispredictBlockSeq = di.seq;
        }
    }

    ++*m_.st.dispatched;
    *m_.st.distCopies += inst.copies.size();
    if (dist.isDual())
        ++*m_.st.distDual;
    else
        ++*m_.st.distSingle;

    m_.rob.pushBack(h);
    m_.activityThisCycle = true;
    sched_.onDispatched(inst);
    return true;
}

void
DispatchUnit::applyRemap(std::uint32_t index)
{
    MCA_ASSERT(index < m_.cfg.mapSchedule.size(),
               "remap index outside the map schedule");
    const isa::RegisterMap &next = m_.cfg.mapSchedule[index];
    MCA_ASSERT(next.numClusters() == m_.cfg.numClusters,
               "remap cannot change the cluster count");

    ++*m_.st.remapEvents;
    const unsigned moved = m_.cfg.regMap.differingHomes(next);
    *m_.st.remapRegsMoved += moved;
    m_.activityThisCycle = true;

    // The machine is drained: rebuild the architectural mappings under
    // the new assignment. Values whose home moved must be physically
    // transferred; remapTransferRate registers cross per cycle.
    const Cycle ready =
        m_.now + 1 + (moved + m_.cfg.remapTransferRate - 1) /
                         std::max(1u, m_.cfg.remapTransferRate);
    m_.cfg.regMap = next;
    for (unsigned c = 0; c < m_.clusters.size(); ++c) {
        Cluster &cl = m_.clusters[c];
        for (unsigned ci = 0; ci < 2; ++ci) {
            const auto cls = static_cast<isa::RegClass>(ci);
            for (unsigned a = 0; a < isa::kNumArchRegs; ++a) {
                const isa::RegId reg(cls, a);
                if (reg.isZero())
                    continue;
                const bool want = m_.cfg.regMap.accessibleFrom(reg, c);
                const bool have = cl.mappedOf(cls, a);
                if (have && !want) {
                    cl.regs(cls).free(cl.mapOf(cls, a));
                    cl.mappedOf(cls, a) = false;
                } else if (!have && want) {
                    if (!cl.regs(cls).hasFree())
                        MCA_FATAL("remap exhausts the physical "
                                  "registers of cluster ", c);
                    const auto fresh = cl.regs(cls).alloc();
                    cl.mapOf(cls, a) = fresh;
                    cl.mappedOf(cls, a) = true;
                    cl.regs(cls).readyAt[fresh] = ready;
                } else if (have) {
                    // Still mapped here; the value may nevertheless
                    // have moved homes (conservatively re-timed).
                    cl.regs(cls).readyAt[cl.mapOf(cls, a)] =
                        std::max(cl.regs(cls).readyAt[cl.mapOf(cls, a)],
                                 m_.now);
                }
            }
        }
    }
}

} // namespace mca::core
