#include "core/fetch.hh"

#include "isa/opcodes.hh"

namespace mca::core
{

void
FetchUnit::tick()
{
    blockReason_ = Block::None;
    if (m_.mispredictBlockSeq != kNoSeq) {
        ++*m_.st.stallBranchCycles;
        blockReason_ = Block::Branch;
        return;
    }
    if (m_.now < stallUntil_) {
        blockReason_ = Block::StallWindow;
        return;
    }
    if (m_.now < icacheReadyAt_) {
        ++*m_.st.stallIcacheCycles;
        blockReason_ = Block::Icache;
        return;
    }
    if (icachePending_) {
        lastFetchBlock_ = icachePendingBlock_;
        icachePending_ = false;
    }

    unsigned n = 0;
    while (n < m_.cfg.fetchWidth &&
           buffer_.size() < m_.cfg.fetchBufferEntries) {
        if (!pendingFetch_) {
            if (traceEnded_) {
                blockReason_ = Block::TraceEnd;
                break;
            }
            auto next = trace_->next();
            if (!next) {
                traceEnded_ = true;
                blockReason_ = Block::TraceEnd;
                break;
            }
            pendingFetch_ = std::move(next);
        }

        // Instruction-cache access at block granularity.
        const Addr block =
            pendingFetch_->pc / m_.cfg.memory.icache.blockBytes;
        if (block != lastFetchBlock_) {
            if (m_.icache.wouldReject(pendingFetch_->pc, m_.now)) {
                // Explicit MSHR full: retry next cycle.
                blockReason_ = Block::MshrPoll;
                break;
            }
            const auto r =
                m_.icache.access(pendingFetch_->pc, false, m_.now);
            if (!r.hit) {
                icacheReadyAt_ = r.readyAt;
                icachePending_ = true;
                icachePendingBlock_ = block;
                ++*m_.st.stallIcacheCycles;
                blockReason_ = Block::Icache;
                break;
            }
            lastFetchBlock_ = block;
        }

        const exec::DynInst di = *pendingFetch_;
        pendingFetch_.reset();
        buffer_.push_back(di);
        ++*m_.st.fetched;
        ++n;
        m_.activityThisCycle = true;

        // The fetch group ends at a taken control-flow instruction.
        if (isa::isCtrlFlow(di.mi.op) && di.taken) {
            lastFetchBlock_ = ~Addr{0};
            break;
        }
    }
    if (n == 0 && blockReason_ == Block::None)
        blockReason_ = Block::BufferFull;
}

} // namespace mca::core
