#include "core/fetch.hh"

#include "exec/dyninst_io.hh"
#include "isa/opcodes.hh"

namespace mca::core
{

void
FetchUnit::tick()
{
    blockReason_ = Block::None;
    if (m_.mispredictBlockSeq != kNoSeq) {
        ++*m_.st.stallBranchCycles;
        blockReason_ = Block::Branch;
        return;
    }
    if (m_.now < stallUntil_) {
        blockReason_ = Block::StallWindow;
        return;
    }
    if (m_.now < icacheReadyAt_) {
        ++*m_.st.stallIcacheCycles;
        blockReason_ = Block::Icache;
        return;
    }
    if (icachePending_) {
        lastFetchBlock_ = icachePendingBlock_;
        icachePending_ = false;
    }

    unsigned n = 0;
    while (n < m_.cfg.fetchWidth &&
           buffer_.size() < m_.cfg.fetchBufferEntries) {
        if (!pendingFetch_) {
            if (traceEnded_) {
                blockReason_ = Block::TraceEnd;
                break;
            }
            auto next = trace_->next();
            if (!next) {
                traceEnded_ = true;
                blockReason_ = Block::TraceEnd;
                break;
            }
            pendingFetch_ = std::move(next);
        }

        // Instruction-cache access at block granularity.
        const Addr block =
            pendingFetch_->pc / m_.cfg.memory.icache.blockBytes;
        if (block != lastFetchBlock_) {
            if (m_.icache.wouldReject(pendingFetch_->pc, m_.now)) {
                // Explicit MSHR full: retry next cycle.
                blockReason_ = Block::MshrPoll;
                break;
            }
            const auto r =
                m_.icache.accessFast(pendingFetch_->pc, false, m_.now);
            if (!r.hit) {
                icacheReadyAt_ = r.readyAt;
                icachePending_ = true;
                icachePendingBlock_ = block;
                ++*m_.st.stallIcacheCycles;
                blockReason_ = Block::Icache;
                break;
            }
            lastFetchBlock_ = block;
        }

        const exec::DynInst di = *pendingFetch_;
        pendingFetch_.reset();
        buffer_.push_back(di);
        ++*m_.st.fetched;
        ++n;
        m_.activityThisCycle = true;

        // The fetch group ends at a taken control-flow instruction.
        if (isa::isCtrlFlow(di.mi.op) && di.taken) {
            lastFetchBlock_ = ~Addr{0};
            break;
        }
    }
    if (n == 0 && blockReason_ == Block::None)
        blockReason_ = Block::BufferFull;
}

void
FetchUnit::saveState(ckpt::Writer &w) const
{
    w.u64(buffer_.size());
    for (const auto &di : buffer_)
        exec::writeDynInst(w, di);
    w.b(pendingFetch_.has_value());
    if (pendingFetch_)
        exec::writeDynInst(w, *pendingFetch_);
    w.b(traceEnded_);
    w.u64(stallUntil_);
    w.u64(icacheReadyAt_);
    w.u64(lastFetchBlock_);
    w.b(icachePending_);
    w.u64(icachePendingBlock_);
    w.u8(static_cast<std::uint8_t>(blockReason_));
}

void
FetchUnit::loadState(ckpt::Reader &r)
{
    buffer_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i)
        buffer_.push_back(exec::readDynInst(r));
    pendingFetch_.reset();
    if (r.b())
        pendingFetch_ = exec::readDynInst(r);
    traceEnded_ = r.b();
    stallUntil_ = r.u64();
    icacheReadyAt_ = r.u64();
    lastFetchBlock_ = r.u64();
    icachePending_ = r.b();
    icachePendingBlock_ = r.u64();
    blockReason_ = static_cast<Block>(r.u8());
}

} // namespace mca::core
