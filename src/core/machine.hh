/**
 * @file
 * Shared machine state of the multicluster core. Every pipeline
 * component (FetchUnit, DispatchUnit, Scheduler, RetireUnit) operates
 * on one MachineState: the clusters, the retire window, the branch and
 * memory-ordering bookkeeping, and the statistic counters. The
 * components themselves hold only stage-local state (fetch buffer,
 * wakeup sets); see docs/architecture.md for the layout.
 */

#ifndef MCA_CORE_MACHINE_HH
#define MCA_CORE_MACHINE_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "bpred/predictors.hh"
#include "core/cluster.hh"
#include "core/config.hh"
#include "core/inflight.hh"
#include "core/timeline.hh"
#include "mem/memory.hh"
#include "support/arena.hh"
#include "support/circular_queue.hh"
#include "support/stats.hh"

namespace mca::core
{

/** Statistic handles of the core, registered once at construction. */
struct CoreStats
{
    Counter *cycles;
    Counter *retired;
    Counter *dispatched;
    Counter *fetched;
    Counter *distSingle;
    Counter *distDual;
    Counter *distCopies;
    Counter *operandForwards;
    Counter *resultForwards;
    Counter *issueTotal;
    Counter *issueSlave;
    Counter *issueWakes;
    Counter *issueDisorder;
    Counter *stallDq;
    Counter *stallPhys;
    Counter *stallRob;
    Counter *stallIcacheCycles;
    Counter *stallBranchCycles;
    Counter *replayExceptions;
    Counter *replayBuffer;
    Counter *replayWatchdog;
    Counter *replaySquashed;
    Counter *bpredLookups;
    Counter *bpredMispredicts;
    Counter *loadsForwarded;
    Distribution *robOccupancy;
    Distribution *issueWait;
    std::vector<Distribution *> queueOccupancy;
    Counter *remapEvents;
    Counter *remapRegsMoved;
    Counter *remapDrainCycles;

    void init(StatGroup &sg, unsigned num_clusters);
};

/**
 * State shared by the pipeline components. Construction builds the
 * clusters (initial rename state fully mapped and ready) and registers
 * the statistics.
 */
struct MachineState
{
    MachineState(const ProcessorConfig &config, StatGroup &sg);

    // --- configuration & substrate -----------------------------------
    ProcessorConfig cfg;
    /** The full hierarchy: L1s -> optional shared L2 -> backside. */
    mem::MemorySystem memsys;
    /** The front-side levels the pipeline talks to (owned by memsys). */
    mem::Cache &icache;
    mem::Cache &dcache;
    std::unique_ptr<bpred::Predictor> predictor;
    TimelineRecorder *timeline = nullptr;

    // --- machine state ------------------------------------------------
    Cycle now = 0;
    std::vector<Cluster> clusters;
    /**
     * In-flight instruction storage: one contiguous slab sized to the
     * retire window (never reallocates, so references held within a
     * cycle stay valid), addressed through generation-checked handles.
     * The ROB itself is a ring of handles in program order.
     */
    SlabPool<InFlightInst> pool;
    CircularQueue<InFlightHandle> rob;

    std::vector<PendingBranch> pendingBranches;
    /** Dispatch/fetch blocked behind this unresolved mispredict. */
    InstSeq mispredictBlockSeq = kNoSeq;

    /** An in-flight store named by dependence bookkeeping. */
    struct StoreRef
    {
        InFlightHandle handle = kNoHandle;
        InstSeq seq = kNoSeq;
    };
    /**
     * Youngest in-flight store per data dword (the perfect-
     * disambiguation index dispatch consults for loads, replacing a
     * backward walk of the retire window). Maintained incrementally:
     * stores insert at dispatch, retirement erases a store's own
     * entry, and a replay squash rebuilds the index from the surviving
     * window (rebuildStoreIndex). Every entry therefore names a live
     * store; derived state, never serialized.
     */
    std::unordered_map<Addr, StoreRef> storeByDword;
    /** Rebuild storeByDword from the retire window (squash/restore). */
    void rebuildStoreIndex();

    Cycle lastProgress = 0;
    unsigned consecutiveReplays = 0;
    /** Per-cycle facts the cycle-stack attribution reads at cycle end. */
    unsigned retiredThisCycle = 0;
    bool dqStallThisCycle = false;
    /**
     * Whether any stage changed machine state this cycle (retire,
     * branch resolution, issue, fetch insertion, dispatch, remap,
     * replay). A cycle with no activity is a pure stall whose effects
     * repeat until the next timed event; the idle fast-forward in
     * Processor::run relies on this (docs/architecture.md).
     */
    bool activityThisCycle = false;
    /** Oldest buffer-blocked queue head requesting a replay. */
    InstSeq replayRequestSeq = kNoSeq;

    // --- statistics ----------------------------------------------------
    CoreStats st;

    InFlightInst &inst(InFlightHandle h) { return pool.get(h); }
    const InFlightInst &inst(InFlightHandle h) const
    {
        return pool.get(h);
    }

    void
    record(Cycle cycle, InstSeq seq, unsigned cluster, TimelineEvent ev)
    {
        if (timeline)
            timeline->record(cycle, seq, cluster, ev);
    }
};

} // namespace mca::core

#endif // MCA_CORE_MACHINE_HH
