/**
 * @file
 * In-flight instruction state of the multicluster core: the per-copy
 * execution state (master/slave), the ROB entry, dispatch-queue slots,
 * and pending branch write-backs. Shared by the pipeline components
 * (FetchUnit, DispatchUnit, Scheduler, RetireUnit) through
 * core::MachineState; see docs/architecture.md.
 *
 * In-flight instructions live in a per-machine SlabPool (the retire
 * window bounds the population), and every reference between machine
 * structures — dispatch-queue slots, memory-dependence links — is a
 * generation-checked InFlightHandle rather than a pointer: a handle
 * held across a squash or retirement goes stale instead of dangling.
 * The short per-instruction sequences (copies, reads, renames) use
 * inline-storage vectors so dispatch performs no heap allocation.
 */

#ifndef MCA_CORE_INFLIGHT_HH
#define MCA_CORE_INFLIGHT_HH

#include <cstdint>

#include "exec/trace.hh"
#include "isa/distribution.hh"
#include "support/arena.hh"
#include "support/small_vector.hh"
#include "support/types.hh"

namespace mca::core
{

/** One register read a copy performs from its own cluster. */
struct SrcRead
{
    std::uint8_t srcIndex;
    std::uint8_t cluster;
    isa::RegClass cls;
    std::uint16_t phys;
};

/** Rename-table change made at dispatch (undone on squash). */
struct RenameUpdate
{
    std::uint8_t cluster;
    isa::RegClass cls;
    std::uint8_t arch;
    std::uint16_t newPhys;
    std::uint16_t prevPhys;
};

/** Execution state of one copy (master or slave) of an instruction. */
struct CopyState
{
    std::uint8_t cluster = 0;
    bool isMaster = false;
    isa::SlaveRole role;
    /** At most one read per source operand. */
    SmallVector<SrcRead, 2> reads;
    /** Clusters where this (master) copy allocated RTB entries. */
    SmallVector<std::uint8_t, 4> rtbClusters;

    bool inQueue = false;
    bool issued = false;
    /** Scenario-5 slave: operand sent, waiting for the result. */
    bool suspended = false;
    bool woke = false;
    /** Operand slave holds an OTB entry until its master issues. */
    bool holdsOtb = false;
    Cycle issueCycle = kNoCycle;
    Cycle completeCycle = kNoCycle;
    /** First cycle this copy was blocked only by a full buffer. */
    Cycle bufferBlockedSince = kNoCycle;
};

/** A dynamic instruction in flight (ROB entry, SlabPool slot). */
struct InFlightInst
{
    exec::DynInst di;
    isa::Distribution dist;
    SmallVector<CopyState, 2> copies; // copies[0] is the master
    SmallVector<RenameUpdate, 2> renames;
    Cycle dispatchCycle = 0;
    /** Master's effective latency (set at master issue; cache-aware). */
    unsigned masterEffLat = 0;
    /**
     * Youngest older store to the same dword, if any (perfect memory
     * disambiguation; the load waits and forwards from it). The handle
     * resolves the store's pool slot directly; its generation check
     * detects retirement/squash, and the sequence number confirms the
     * occupant (a dead handle means the store completed long ago).
     */
    PoolHandle memDepStore = kNoHandle;
    InstSeq memDepStoreSeq = kNoSeq;
    /** Load whose effective latency exceeded the d-cache hit time. */
    bool dcacheLoadMiss = false;
    /** Missing load was serviced by the memory backside (vs the L2). */
    bool dcacheMemBound = false;
    bool condBranch = false;
    bool predTaken = false;
    bool mispredicted = false;

    bool
    allComplete(Cycle now) const
    {
        for (const auto &c : copies)
            if (c.completeCycle == kNoCycle || c.completeCycle > now)
                return false;
        return true;
    }

    /**
     * Every copy has issued (a suspended scenario-5 slave counts as
     * issued: its operand went out; only its wake is outstanding). The
     * oldest-unissued cursor advances past such instructions.
     */
    bool
    allIssued() const
    {
        for (const auto &c : copies)
            if (!c.issued)
                return false;
        return true;
    }
};

/** Handle of a pool-resident in-flight instruction. */
using InFlightHandle = SlabPool<InFlightInst>::Handle;

/** Dispatch-queue slot: a copy waiting to issue. */
struct QueueSlot
{
    InFlightHandle inst;
    unsigned copyIdx;
};

/** A branch awaiting write-back (predictor update + fetch redirect). */
struct PendingBranch
{
    InstSeq seq;
    Addr pc;
    bool taken;
    bool mispredicted;
    Cycle wbCycle;
};

} // namespace mca::core

#endif // MCA_CORE_INFLIGHT_HH
