/**
 * @file
 * In-flight instruction state of the multicluster core: the per-copy
 * execution state (master/slave), the ROB entry, dispatch-queue slots,
 * and pending branch write-backs. Shared by the pipeline components
 * (FetchUnit, DispatchUnit, Scheduler, RetireUnit) through
 * core::MachineState; see docs/architecture.md.
 */

#ifndef MCA_CORE_INFLIGHT_HH
#define MCA_CORE_INFLIGHT_HH

#include <cstdint>
#include <vector>

#include "exec/trace.hh"
#include "isa/distribution.hh"
#include "support/types.hh"

namespace mca::core
{

/** One register read a copy performs from its own cluster. */
struct SrcRead
{
    std::uint8_t srcIndex;
    std::uint8_t cluster;
    isa::RegClass cls;
    std::uint16_t phys;
};

/** Rename-table change made at dispatch (undone on squash). */
struct RenameUpdate
{
    std::uint8_t cluster;
    isa::RegClass cls;
    std::uint8_t arch;
    std::uint16_t newPhys;
    std::uint16_t prevPhys;
};

/** Execution state of one copy (master or slave) of an instruction. */
struct CopyState
{
    std::uint8_t cluster = 0;
    bool isMaster = false;
    isa::SlaveRole role;
    std::vector<SrcRead> reads;
    /** Clusters where this (master) copy allocated RTB entries. */
    std::vector<std::uint8_t> rtbClusters;

    bool inQueue = false;
    bool issued = false;
    /** Scenario-5 slave: operand sent, waiting for the result. */
    bool suspended = false;
    bool woke = false;
    /** Operand slave holds an OTB entry until its master issues. */
    bool holdsOtb = false;
    Cycle issueCycle = kNoCycle;
    Cycle completeCycle = kNoCycle;
    /** First cycle this copy was blocked only by a full buffer. */
    Cycle bufferBlockedSince = kNoCycle;
};

/** A dynamic instruction in flight (ROB entry). */
struct InFlightInst
{
    exec::DynInst di;
    isa::Distribution dist;
    std::vector<CopyState> copies; // copies[0] is the master
    std::vector<RenameUpdate> renames;
    Cycle dispatchCycle = 0;
    /** Master's effective latency (set at master issue; cache-aware). */
    unsigned masterEffLat = 0;
    /**
     * Youngest older store to the same dword, if any (perfect memory
     * disambiguation; the load waits and forwards from it).
     */
    InstSeq memDepStoreSeq = kNoSeq;
    /** Load whose effective latency exceeded the d-cache hit time. */
    bool dcacheLoadMiss = false;
    /** Missing load was serviced by the memory backside (vs the L2). */
    bool dcacheMemBound = false;
    bool condBranch = false;
    bool predTaken = false;
    bool mispredicted = false;

    bool
    allComplete(Cycle now) const
    {
        for (const auto &c : copies)
            if (c.completeCycle == kNoCycle || c.completeCycle > now)
                return false;
        return true;
    }

    /**
     * Every copy has issued (a suspended scenario-5 slave counts as
     * issued: its operand went out; only its wake is outstanding). The
     * oldest-unissued cursor advances past such instructions.
     */
    bool
    allIssued() const
    {
        for (const auto &c : copies)
            if (!c.issued)
                return false;
        return true;
    }
};

/** Dispatch-queue slot: a copy waiting to issue. */
struct QueueSlot
{
    InFlightInst *inst;
    unsigned copyIdx;
};

/** A branch awaiting write-back (predictor update + fetch redirect). */
struct PendingBranch
{
    InstSeq seq;
    Addr pc;
    bool taken;
    bool mispredicted;
    Cycle wbCycle;
};

} // namespace mca::core

#endif // MCA_CORE_INFLIGHT_HH
