#include "core/machine.hh"

#include <algorithm>
#include <string>

#include "isa/opcodes.hh"
#include "support/panic.hh"

namespace mca::core
{

void
CoreStats::init(StatGroup &sg, unsigned num_clusters)
{
    cycles = &sg.counter("sim.cycles", "simulated clock cycles");
    retired = &sg.counter("sim.retired", "instructions retired");
    dispatched = &sg.counter("sim.dispatched", "instructions dispatched");
    fetched = &sg.counter("fetch.fetched", "instructions fetched");
    distSingle = &sg.counter("dist.single",
                             "instructions distributed to one cluster");
    distDual = &sg.counter("dist.dual",
                           "instructions distributed to 2+ clusters");
    distCopies = &sg.counter("dist.copies", "total copies dispatched");
    operandForwards = &sg.counter("dist.operand_forwards",
                                  "operand transfer-buffer writes");
    resultForwards = &sg.counter("dist.result_forwards",
                                 "result transfer-buffer writes");
    issueTotal = &sg.counter("issue.total", "copies issued");
    issueSlave = &sg.counter("issue.slave", "slave copies issued");
    issueWakes = &sg.counter("issue.wakes", "suspended slaves awakened");
    issueDisorder = &sg.counter(
        "issue.disorder",
        "older same-cluster copies skipped at issue (disorder metric)");
    stallDq = &sg.counter("dispatch.stall_dq",
                          "dispatch stalls: queue entry unavailable");
    stallPhys = &sg.counter("dispatch.stall_phys",
                            "dispatch stalls: physical register");
    stallRob = &sg.counter("dispatch.stall_rob",
                           "dispatch stalls: retire window full");
    stallIcacheCycles = &sg.counter("fetch.stall_icache_cycles",
                                    "cycles fetch waited on the icache");
    stallBranchCycles = &sg.counter(
        "fetch.stall_branch_cycles",
        "cycles fetch/dispatch waited on a mispredicted branch");
    replayExceptions = &sg.counter("replay.exceptions",
                                   "instruction-replay exceptions");
    replayBuffer = &sg.counter(
        "replay.buffer_blocked",
        "replays raised by a buffer-blocked queue head");
    replayWatchdog = &sg.counter("replay.watchdog",
                                 "replays raised by the stall watchdog");
    replaySquashed = &sg.counter("replay.squashed",
                                 "instructions squashed by replays");
    bpredLookups = &sg.counter("bpred.lookups",
                               "conditional-branch predictions");
    bpredMispredicts = &sg.counter("bpred.mispredicts",
                                   "conditional-branch mispredictions");

    // Formulas may be evaluated after the Processor (and this CoreStats)
    // is gone — the StatGroup is caller-owned — so capture the counters,
    // which live in the StatGroup, never `this`.
    sg.formula("sim.ipc",
               [cyc = cycles, ret = retired] {
                   return cyc->value() == 0
                              ? 0.0
                              : static_cast<double>(ret->value()) /
                                    static_cast<double>(cyc->value());
               },
               "retired instructions per cycle");
    sg.formula("bpred.accuracy",
               [lookups = bpredLookups, miss = bpredMispredicts] {
                   return lookups->value() == 0
                              ? 0.0
                              : 1.0 - static_cast<double>(miss->value()) /
                                          static_cast<double>(
                                              lookups->value());
               },
               "conditional-branch prediction accuracy");

    loadsForwarded = &sg.counter(
        "mem.loads_forwarded",
        "loads ordered after (and forwarded from) an older store");
    remapEvents = &sg.counter("remap.events",
                              "dynamic register-map switches");
    remapRegsMoved = &sg.counter("remap.regs_moved",
                                 "architectural registers transferred "
                                 "by remaps");
    remapDrainCycles = &sg.counter("remap.drain_cycles",
                                   "cycles dispatch stalled draining "
                                   "for a remap");
    robOccupancy = &sg.distribution("rob.occupancy", 16, 32,
                                    "retire-window entries in use");
    issueWait = &sg.distribution("issue.wait_cycles", 4, 32,
                                 "cycles from dispatch to issue");
    for (unsigned c = 0; c < num_clusters; ++c)
        queueOccupancy.push_back(&sg.distribution(
            "queue.occupancy.c" + std::to_string(c), 8, 32,
            "dispatch-queue entries in use"));
}

MachineState::MachineState(const ProcessorConfig &config, StatGroup &sg)
    : cfg(config), memsys(config.memory, sg), icache(memsys.icache()),
      dcache(memsys.dcache()), pool(config.retireWindow),
      rob(config.retireWindow)
{
    switch (cfg.predictor) {
      case ProcessorConfig::PredictorKind::McFarling:
        predictor = std::make_unique<bpred::McFarlingPredictor>(
            cfg.bimodalIndexBits, cfg.historyBits, cfg.gshareIndexBits,
            cfg.chooserIndexBits, cfg.speculativeHistory);
        break;
      case ProcessorConfig::PredictorKind::Gshare:
        predictor = std::make_unique<bpred::GsharePredictor>(
            cfg.historyBits, cfg.gshareIndexBits,
            cfg.speculativeHistory);
        break;
      case ProcessorConfig::PredictorKind::Bimodal:
        predictor = std::make_unique<bpred::BimodalPredictor>(
            cfg.bimodalIndexBits);
        break;
      case ProcessorConfig::PredictorKind::StaticTaken:
        predictor = std::make_unique<bpred::StaticPredictor>(true);
        break;
      case ProcessorConfig::PredictorKind::StaticNotTaken:
        predictor = std::make_unique<bpred::StaticPredictor>(false);
        break;
    }

    MCA_ASSERT(cfg.numClusters >= 1, "need at least one cluster");
    MCA_ASSERT(cfg.regMap.numClusters() == cfg.numClusters,
               "register map cluster count mismatch");

    clusters.resize(cfg.numClusters);
    for (unsigned c = 0; c < cfg.numClusters; ++c) {
        Cluster &cl = clusters[c];
        cl.queueCapacity = cfg.dispatchQueueEntries;
        cl.intRegs.init(cfg.physIntRegs);
        cl.fpRegs.init(cfg.physFpRegs);
        cl.otb.init(cfg.operandBufferEntries);
        cl.rtb.init(cfg.resultBufferEntries);
        cl.dividerBusyUntil.assign(
            std::max(1u, cfg.issueRules.fpDiv), 0);

        // Initial rename state: every architectural register accessible
        // from this cluster is mapped to a ready physical register.
        for (unsigned ci = 0; ci < 2; ++ci) {
            const auto cls = static_cast<isa::RegClass>(ci);
            for (unsigned a = 0; a < isa::kNumArchRegs; ++a) {
                const isa::RegId reg(cls, a);
                if (reg.isZero() || !cfg.regMap.accessibleFrom(reg, c))
                    continue;
                if (!cl.regs(cls).hasFree())
                    MCA_FATAL("too few physical registers to map the "
                              "architectural state");
                cl.mapOf(cls, a) = cl.regs(cls).alloc();
                cl.mappedOf(cls, a) = true;
            }
        }
    }

    st.init(sg, cfg.numClusters);
}

void
MachineState::rebuildStoreIndex()
{
    storeByDword.clear();
    // Walk oldest to youngest so the youngest store to each dword wins.
    for (std::size_t i = 0; i < rob.size(); ++i) {
        const InFlightHandle h = rob.at(i);
        const InFlightInst &in = pool.get(h);
        if (isa::isStore(in.di.mi.op))
            storeByDword[in.di.effAddr >> 3] = {h, in.di.seq};
    }
}

} // namespace mca::core
