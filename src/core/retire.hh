/**
 * @file
 * Retire stage of the multicluster core: in-order commit of up to
 * retireWidth fully-complete instructions per cycle (freeing previous
 * rename mappings and, in window mode, dispatch-queue entries), and
 * branch write-back (predictor update + fetch redirect release). Also
 * computes the earliest future completion/write-back event for the
 * idle fast-forward (docs/architecture.md).
 */

#ifndef MCA_CORE_RETIRE_HH
#define MCA_CORE_RETIRE_HH

#include "core/fetch.hh"
#include "core/machine.hh"

namespace mca::core
{

class RetireUnit
{
  public:
    RetireUnit(MachineState &m, FetchUnit &fetch) : m_(m), fetch_(fetch)
    {
    }

    /**
     * Retire completed instructions from the window head; returns how
     * many retired (the old Processor::Impl::doRetire).
     */
    unsigned tick();

    /** Write back matured branches (old resolveBranches). */
    void resolveBranches();

    /**
     * Earliest future cycle a head-copy completion or a branch
     * write-back matures; kNoCycle if none is scheduled. Each head copy
     * is folded individually (not just the max) because the cycle-stack
     * attribution distinguishes master completion from slave
     * completion, so any single copy maturing can change the per-cycle
     * stall cause.
     */
    Cycle nextEventCycle() const;

  private:
    MachineState &m_;
    FetchUnit &fetch_;
};

} // namespace mca::core

#endif // MCA_CORE_RETIRE_HH
