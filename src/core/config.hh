/**
 * @file
 * Processor configuration for the multicluster timing model.
 *
 * The two named configurations are the paper's evaluation machines
 * (§4.1): an 8-way single-cluster processor, and a dual-cluster
 * processor with the same total resources split in half. 4-way variants
 * and arbitrary cluster counts are also expressible.
 */

#ifndef MCA_CORE_CONFIG_HH
#define MCA_CORE_CONFIG_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/issue_rules.hh"
#include "isa/registers.hh"
#include "mem/memory.hh"

namespace mca::core
{

struct ProcessorConfig
{
    /** Number of clusters (1 = conventional single-cluster machine). */
    unsigned numClusters = 2;

    /** Instructions fetched/distributed per cycle (shared front end). */
    unsigned fetchWidth = 12;
    /** Fetch-buffer capacity (decoupling fetch from distribution). */
    unsigned fetchBufferEntries = 24;

    /** Dispatch-queue entries per cluster. */
    unsigned dispatchQueueEntries = 64;
    /**
     * Hold dispatch-queue entries until retirement (the queue is the
     * instruction window, R10000-style) instead of freeing them at
     * issue (reservation stations). The paper does not say; windowed
     * queues are the default because they reproduce the paper's
     * unscheduled Table-2 column within ~2 points on five of six
     * benchmarks (see EXPERIMENTS.md), and they make the queue size —
     * the resource the paper's compress discussion leans on — the
     * binding run-ahead limit.
     */
    bool holdQueueUntilRetire = true;
    /** Physical integer registers per cluster. */
    unsigned physIntRegs = 64;
    /** Physical floating-point registers per cluster. */
    unsigned physFpRegs = 64;

    /** Per-cluster issue caps (paper Table 1). */
    isa::IssueRules issueRules = isa::IssueRules::dualClusterPerCluster();

    /** In-order retirement bandwidth (whole processor). */
    unsigned retireWidth = 8;
    /** Retire-window (reorder) entries, shared across clusters. */
    unsigned retireWindow = 256;

    /** Operand transfer buffer entries per cluster. */
    unsigned operandBufferEntries = 8;
    /** Result transfer buffer entries per cluster. */
    unsigned resultBufferEntries = 8;

    /**
     * Cycles without any issue or retirement before the machine raises
     * an instruction-replay exception to break a transfer-buffer
     * deadlock (DESIGN.md §5.3).
     */
    unsigned replayWatchdog = 64;
    /**
     * Precise deadlock avoidance (paper §2.1: "in certain
     * circumstances, an instruction-replay exception is required to
     * avoid issue deadlock"): when the globally oldest instruction with
     * unissued work has been blocked by a full transfer buffer for this
     * many cycles, nothing older can free the entries — the machine
     * raises a replay exception immediately rather than waiting for the
     * watchdog. 0 disables the precise trigger (watchdog only).
     */
    unsigned bufferBlockThreshold = 8;
    /** Fetch-redirect penalty charged by a replay exception. */
    unsigned replayPenalty = 5;
    /**
     * Reserve the last entry of each transfer buffer for the globally
     * oldest instruction. Removes the §2.1 deadlock class entirely on
     * two-cluster machines (a design alternative the paper does not
     * adopt — its machine takes replay exceptions instead; ablation).
     */
    bool reserveOldestEntry = false;
    /** Check rename/free-list invariants every cycle (slow; tests). */
    bool paranoid = false;

    /**
     * Issue-scheduler engine. Both engines are cycle-exact with each
     * other (tests/lockstep_test.cc); they differ only in simulation
     * speed. Scan is the original reference (every cluster's queue
     * scanned every cycle); Event skips clusters with no pending
     * wakeup (src/core/scheduler.hh).
     */
    enum class IssueEngine
    {
        Scan,
        Event,
    };
    IssueEngine issueEngine = IssueEngine::Event;
    /**
     * Let Processor::run() fast-forward across cycles in which no
     * stage can make progress, accounting statistics for the skipped
     * cycles in bulk. Only effective with the Event engine; step()
     * always advances one exact cycle regardless.
     */
    bool idleSkip = true;

    /** Architectural-register-to-cluster assignment. */
    isa::RegisterMap regMap{2};
    /**
     * Alternative register maps for the dynamic-reassignment mechanism
     * (paper §6): a trace instruction carrying remapIndex = i drains
     * the machine and switches to mapSchedule[i].
     */
    std::vector<isa::RegisterMap> mapSchedule;
    /** Architectural registers transferable per cycle during a remap. */
    unsigned remapTransferRate = 4;

    /**
     * Memory hierarchy: L1I/L1D -> optional shared L2 -> fixed-latency
     * backside. The default is paper mode (no L2, 16-cycle backside,
     * unlimited bandwidth), cycle-identical to the old flat caches.
     */
    mem::MemoryParams memory;

    /** Branch predictor organization (the paper uses McFarling). */
    enum class PredictorKind
    {
        McFarling,
        Gshare,
        Bimodal,
        StaticTaken,
        StaticNotTaken,
    };
    PredictorKind predictor = PredictorKind::McFarling;
    /**
     * Maintain the global history speculatively at predict time
     * (repaired on mispredict) instead of the paper's footnote-2
     * update-at-execute. Off by default (paper-faithful).
     */
    bool speculativeHistory = false;

    /** McFarling predictor sizing (DESIGN.md §5.5). */
    unsigned bimodalIndexBits = 11;
    unsigned historyBits = 12;
    unsigned gshareIndexBits = 12;
    unsigned chooserIndexBits = 12;

    /** Paper §4.1 row 1: the 8-way single-cluster machine. */
    static ProcessorConfig
    singleCluster8()
    {
        ProcessorConfig c;
        c.numClusters = 1;
        c.dispatchQueueEntries = 128;
        c.physIntRegs = 128;
        c.physFpRegs = 128;
        c.issueRules = isa::IssueRules::singleCluster8Way();
        c.regMap = isa::RegisterMap(1);
        return c;
    }

    /** Paper §4.1 row 2: the dual-cluster machine. */
    static ProcessorConfig
    dualCluster8()
    {
        ProcessorConfig c;
        c.numClusters = 2;
        c.dispatchQueueEntries = 64;
        c.physIntRegs = 64;
        c.physFpRegs = 64;
        c.issueRules = isa::IssueRules::dualClusterPerCluster();
        c.regMap = isa::RegisterMap(2);
        return c;
    }

    /** 4-way single-cluster machine (paper also evaluated 4-way). */
    static ProcessorConfig
    singleCluster4()
    {
        ProcessorConfig c = singleCluster8();
        c.dispatchQueueEntries = 64;
        c.physIntRegs = 64;
        c.physFpRegs = 64;
        c.issueRules = isa::IssueRules::singleCluster4Way();
        c.retireWidth = 4;
        return c;
    }

    /** Dual-cluster 4-way machine. */
    static ProcessorConfig
    dualCluster4()
    {
        ProcessorConfig c = dualCluster8();
        c.dispatchQueueEntries = 32;
        c.physIntRegs = 32;
        c.physFpRegs = 32;
        c.issueRules = isa::IssueRules::dual4WayPerCluster();
        c.retireWidth = 4;
        return c;
    }

    /**
     * Check the configuration for inconsistencies that would otherwise
     * surface as asserts deep in construction (or worse, as silently
     * wrong machines). Throws std::runtime_error with a message naming
     * the offending field. Called by mcasim/mcarun at parse time.
     */
    void validate() const;

    /**
     * N-cluster generalization of the 8-way machine (extension §6).
     * `flag` names the command-line option a bad count came from so
     * the parse-time error points at what to fix; the default blames
     * the call itself.
     */
    static ProcessorConfig
    multiCluster8(unsigned n, const char *flag = nullptr)
    {
        // The register map supports at most 8 clusters, and the
        // 128-entry window/register budget must split evenly.
        if (n == 0 || n > 8 || 128 % n != 0) {
            const std::string who =
                flag ? flag : "multiCluster8(" + std::to_string(n) + ")";
            throw std::runtime_error(
                who + ": cluster count " + std::to_string(n) +
                " not supported; the 8-way machine's 128-entry "
                "window/register budget divides into 1, 2, 4, or 8 "
                "clusters");
        }
        ProcessorConfig c;
        c.numClusters = n;
        c.dispatchQueueEntries = 128 / n;
        c.physIntRegs = 128 / n;
        c.physFpRegs = 128 / n;
        c.issueRules = isa::IssueRules::singleCluster8Way().dividedBy(n);
        c.regMap = isa::RegisterMap(n);
        return c;
    }
};

} // namespace mca::core

#endif // MCA_CORE_CONFIG_HH
