/**
 * @file
 * Dispatch stage of the multicluster core: drains the fetch buffer
 * into the retire window and the per-cluster dispatch queues —
 * distribution decision, resource checks (queue entries, physical
 * registers), register renaming, memory-dependence capture, branch
 * prediction at queue insertion, and the §6 dynamic register remap
 * (drain, transfer, switch). Posts onDispatched events to the
 * Scheduler and records which stall counter a blocked cycle bumped so
 * the idle fast-forward can replicate it (docs/architecture.md).
 */

#ifndef MCA_CORE_DISPATCH_HH
#define MCA_CORE_DISPATCH_HH

#include "core/fetch.hh"
#include "core/machine.hh"
#include "core/scheduler.hh"

namespace mca::core
{

class DispatchUnit
{
  public:
    DispatchUnit(MachineState &m, FetchUnit &fetch, Scheduler &sched)
        : m_(m), fetch_(fetch), sched_(sched)
    {
    }

    /** Run one dispatch cycle (the old Processor::Impl::doDispatch). */
    void tick();

    /**
     * Counter a blocked dispatch cycle bumped in tick(); replicated
     * per skipped cycle by the idle fast-forward (a cycle with no
     * activity repeats the same blocked decision until the next
     * event).
     */
    enum class IdleEffect { None, RemapDrain, StallRob, StallDq,
                            StallPhys };

    IdleEffect idleEffect() const { return idle_; }

  private:
    bool tryDispatch(const exec::DynInst &di);
    void applyRemap(std::uint32_t index);

    MachineState &m_;
    FetchUnit &fetch_;
    Scheduler &sched_;
    IdleEffect idle_ = IdleEffect::None;
    /** Per-cluster resource-check scratch, reused across dispatches. */
    std::vector<unsigned> dqNeed_;
    std::vector<unsigned> physNeed_;
};

} // namespace mca::core

#endif // MCA_CORE_DISPATCH_HH
