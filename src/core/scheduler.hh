/**
 * @file
 * Issue schedulers of the multicluster core.
 *
 * The Scheduler base class owns the issue mechanics shared by both
 * engines — the age-ordered per-cluster queue scan under the Table-1
 * slot rules, master-readiness evaluation, and the master/slave issue
 * actions — so the two engines cannot drift apart semantically. They
 * differ only in *when* a cluster's queue is scanned:
 *
 *  - ScanScheduler (reference): scans every cluster every cycle and
 *    walks the ROB for the oldest-unissued instruction, exactly like
 *    the original monolithic Processor::Impl::doIssue.
 *
 *  - EventScheduler: keeps a per-cluster wakeup cycle and skips the
 *    scan of any cluster with no matured wakeup. Wakeups are posted by
 *    a narrow event interface (dispatch, any issue, squash) and by
 *    time bounds computed during a scan from the first failing
 *    constraint of each blocked copy (register readyAt maturity,
 *    operand transit, divider release, buffer-block timers). The
 *    oldest-unissued ROB walk is replaced by a monotone cursor.
 *
 * The engines are cycle-exact with each other: tests/lockstep_test.cc
 * runs them in lockstep on all workloads and paper scenarios and
 * asserts identical per-cycle decisions, timelines, and statistics.
 */

#ifndef MCA_CORE_SCHEDULER_HH
#define MCA_CORE_SCHEDULER_HH

#include <memory>
#include <vector>

#include "ckpt/io.hh"
#include "core/machine.hh"

namespace mca::core
{

class Scheduler : public ckpt::Checkpointable
{
  public:
    explicit Scheduler(MachineState &m) : m_(m) {}
    ~Scheduler() override = default;

    /** Run one issue cycle over all clusters. */
    virtual void tick() = 0;

    /**
     * Earliest future cycle any cluster has a pending wakeup; used by
     * the idle fast-forward. The scan engine re-evaluates every cycle,
     * so its next event is always the next cycle.
     */
    virtual Cycle nextWakeCycle() const { return m_.now + 1; }

    // --- event interface (posted by the other pipeline stages) -------
    /** An instruction entered the dispatch queues this cycle. */
    virtual void onDispatched(const InFlightInst &inst)
    {
        static_cast<void>(inst);
    }
    /** `count` instructions left the head of the retire window. */
    virtual void onRetired(unsigned count) { static_cast<void>(count); }
    /** A replay squashed the tail of the retire window. */
    virtual void onSquash() {}
    /**
     * The cycle just stepped had no activity in any stage (the idle
     * fast-forward is about to consider skipping ahead). The event
     * engine uses this as the exit signal of its saturated mode.
     */
    virtual void onIdleCycle() {}

    /** Engine-local state; the scan engine is stateless. */
    void saveState(ckpt::Writer &w) const override
    {
        static_cast<void>(w);
    }
    void loadState(ckpt::Reader &r) override { static_cast<void>(r); }

  protected:
    /**
     * Scan one cluster's queue in age order, issuing every eligible
     * copy (the shared mechanics of both engines). When `wake_out` is
     * non-null, it is folded down to the earliest future cycle any
     * blocked copy in this cluster could become issuable on its own
     * (time-bound constraints only; event-gated copies contribute
     * nothing because the triggering event posts a wakeup itself).
     */
    void scanCluster(unsigned c, InstSeq oldest_unissued,
                     Cycle *wake_out);

    /** Entries of `buf` available to this instruction this cycle. */
    bool
    bufferAvailable(const TransferBuffer &buf, const InFlightInst &inst,
                    InstSeq oldest_unissued) const
    {
        if (!buf.canAlloc())
            return false;
        if (!m_.cfg.reserveOldestEntry)
            return true;
        // The last free entry is reserved for the oldest instruction.
        if (buf.capacity() - buf.inUse() > 1)
            return true;
        return inst.di.seq == oldest_unissued;
    }

    /**
     * Whether the master copy can issue this cycle, evaluating the
     * constraints in the fixed order of the original scan (the d-cache
     * MSHR poll is a counted cache event, so the call pattern is part
     * of the architectural contract). On failure, `*earliest` (when
     * non-null) receives the first failing constraint's maturity
     * cycle, or kNoCycle if it resolves through an event.
     */
    bool masterReady(const InFlightInst &inst, const CopyState &copy,
                     InstSeq oldest_unissued, bool *buffer_blocked,
                     Cycle *earliest);

    void issueMaster(InFlightInst &inst, CopyState &copy);
    void issueOperandSlave(InFlightInst &inst, CopyState &copy);
    void issueResultSlave(InFlightInst &inst, CopyState &copy,
                          bool is_wake);

    /**
     * Set by scanCluster: the scan left at least one copy blocked on
     * an *event* rather than a time bound (a full transfer buffer, an
     * unissued operand writer, slave, or store). Only such clusters
     * need the issue-path wakeAll — a copy blocked on a time bound has
     * that bound folded into the cluster's wakeup, and no issue can
     * make a finite maturity arrive sooner.
     */
    bool scanLeftEventGated_ = false;

    // Wakeup posting, no-ops in the scan engine. Every issue action
    // posts wakeAll(now+1) — nothing an issue enables matures sooner —
    // plus targeted later wakeups for result maturities.
    virtual void wakeAll(Cycle at) { static_cast<void>(at); }
    virtual void
    wakeCluster(unsigned c, Cycle at)
    {
        static_cast<void>(c);
        static_cast<void>(at);
    }

    MachineState &m_;
};

/** Reference engine: full scan of every cluster, every cycle. */
class ScanScheduler final : public Scheduler
{
  public:
    using Scheduler::Scheduler;
    void tick() override;
};

/** Wakeup-driven engine: scans only clusters with matured wakeups. */
class EventScheduler final : public Scheduler
{
  public:
    explicit EventScheduler(MachineState &m)
        : Scheduler(m), wake_(m.clusters.size(), 0),
          matured_(m.clusters.size(), 0),
          eventGated_(m.clusters.size(), 1)
    {
    }

    void tick() override;
    Cycle nextWakeCycle() const override;
    void onDispatched(const InFlightInst &inst) override;
    void onRetired(unsigned count) override;
    void onSquash() override;
    void onIdleCycle() override;
    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  protected:
    void wakeAll(Cycle at) override;
    void wakeCluster(unsigned c, Cycle at) override;

  private:
    /**
     * Index of the first retire-window entry with an unissued copy.
     * Monotone within a cycle (issued flags only ever set); adjusted
     * when the window shrinks at retire or squash.
     */
    std::size_t cursor_ = 0;
    /** Per-cluster earliest pending wakeup; <= now means scan. */
    std::vector<Cycle> wake_;
    /** Scratch: cluster had a matured wakeup at this tick's start. */
    std::vector<char> matured_;
    /**
     * Per-cluster scanLeftEventGated_ as of the cluster's last scan;
     * starts conservative (true) until a first scan refines it. The
     * copy population of a cluster only changes at dispatch (which
     * posts a targeted wakeup, forcing a rescan) and squash (which
     * wakes every cluster), so the flag stays valid between scans.
     */
    std::vector<char> eventGated_;
    /**
     * Earliest pending broadcast (issue-path wakeAll). Broadcasts are
     * matched against eventGated_ when they MATURE (at the start of
     * tick), not when posted: a cluster can become event-gated in the
     * same tick an earlier cluster's issue posts the broadcast, and
     * its flag is only fresh once its own scan has run.
     */
    Cycle broadcastAt_ = kNoCycle;

    /**
     * Saturated mode: on issue-bound workloads every cluster matures a
     * wakeup every cycle (issue broadcasts re-arm all gated clusters at
     * now+1), so the wakeup bookkeeping is pure overhead on top of a de
     * facto full scan. After kSaturationStreak consecutive ticks in
     * which every cluster scanned, the engine degenerates to the scan
     * engine's behavior — scan all clusters, skip the wake/broadcast
     * accounting — which is cycle-exact by the same proof as the scan
     * engine (a full scan is a superset of any wakeup-driven scan).
     * The first idle cycle (onIdleCycle) or squash exits back to
     * event-driven mode with every cluster conservatively woken.
     * Transient host-side state: never serialized (saveState writes
     * the conservative post-exit values instead).
     */
    static constexpr unsigned kSaturationStreak = 64;
    void exitSaturation();
    unsigned saturatedStreak_ = 0;
    bool saturated_ = false;
};

/** Build the engine selected by cfg.issueEngine. */
std::unique_ptr<Scheduler> makeScheduler(MachineState &m);

} // namespace mca::core

#endif // MCA_CORE_SCHEDULER_HH
