/**
 * @file
 * Cycle-level timing model of single- and multi-cluster processors.
 *
 * The model implements the paper's machine (§2, §4.1): a shared fetch
 * stream distributing up to 12 instructions per cycle into per-cluster
 * dispatch queues through explicit register renaming; greedy oldest-first
 * issue under the Table-1 slot rules; dual-distributed master/slave
 * execution with operand and result transfer buffers; speculative
 * execution with McFarling branch prediction (tables updated at
 * execute); non-blocking caches with inverted-MSHR semantics; in-order
 * retirement; and instruction-replay exceptions to break transfer-buffer
 * deadlocks.
 *
 * Pipeline timing (DESIGN.md §5.1-5.2): an instruction issued at cycle t
 * reads registers at t+1, executes during [t+2, t+1+lat], and writes
 * back at t+2+lat; same-cluster consumers may issue at t+lat. A slave
 * copy forwarding an operand lets its master issue from t_slave+1; a
 * slave receiving a result may issue from t_master+lat.
 *
 * Processor is a thin façade over the pipeline components
 * (docs/architecture.md): FetchUnit, DispatchUnit, Scheduler (issue),
 * and RetireUnit share one MachineState; processor.cc composes them
 * and owns the cross-stage concerns (replay exceptions, watchdog,
 * paranoid invariants, cycle-stack attribution, idle fast-forward).
 */

#ifndef MCA_CORE_PROCESSOR_HH
#define MCA_CORE_PROCESSOR_HH

#include <deque>
#include <memory>
#include <vector>

#include "bpred/predictors.hh"
#include "ckpt/snapshot.hh"
#include "core/config.hh"
#include "core/timeline.hh"
#include "exec/trace.hh"
#include "isa/distribution.hh"
#include "isa/issue_rules.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "support/stats.hh"

namespace mca::obs
{
struct CycleStack;
struct CycleObs;
} // namespace mca::obs

namespace mca::core
{

/** Outcome of a simulation. */
struct SimResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    /** False if the run stopped on the cycle limit. */
    bool completed = true;
};

class Processor
{
  public:
    /**
     * @param config  Machine shape; config.regMap defines the
     *                register-to-cluster assignment the hardware applies.
     * @param trace   Dynamic instruction source (not owned).
     * @param stats   Statistic registry the processor populates.
     */
    Processor(const ProcessorConfig &config, exec::TraceSource &trace,
              StatGroup &stats);
    ~Processor();

    Processor(const Processor &) = delete;
    Processor &operator=(const Processor &) = delete;

    /** Attach a timeline recorder (scenario figures); may be null. */
    void attachTimeline(TimelineRecorder *recorder);

    /**
     * Attach a cycle stack (may be null to detach). While attached,
     * every retire slot of every cycle is attributed to exactly one
     * stall cause; obs::CycleStack::conserved() then holds by
     * construction.
     */
    void attachCycleStack(obs::CycleStack *stack);

    /**
     * Fill `out` with this cycle's occupancies and cumulative counters
     * (obs sampling / counter tracks). Reuses out's storage; intended
     * to be called once per cycle, after step().
     */
    void observe(obs::CycleObs &out) const;

    /**
     * Run to completion (or the cycle bound). With config.idleSkip and
     * the Event issue engine, cycles in which no stage can make
     * progress are fast-forwarded in bulk (statistics included); the
     * result is cycle-exact either way (tests/lockstep_test.cc).
     */
    SimResult run(Cycle max_cycles = ~Cycle{0});

    /**
     * Run until `target_retired` total instructions have retired (or
     * the cycle bound / trace end). Same fast-forward semantics as
     * run(); the boundary is approximate by up to retireWidth-1
     * instructions (retirement is batched per cycle).
     */
    SimResult runUntilRetired(std::uint64_t target_retired,
                              Cycle max_cycles = ~Cycle{0});

    /**
     * Advance exactly one cycle (never fast-forwards, so per-cycle
     * observation via observe() sees every cycle). Returns false once
     * the trace is exhausted and the pipeline has drained.
     */
    bool step();

    // --- checkpoint/restore (src/ckpt, docs/sampling.md) -------------
    /**
     * FNV-1a hash over every architecturally relevant configuration
     * field. Snapshots embed it; restoring into a differently shaped
     * machine is rejected up front instead of desynchronizing the
     * payload. idleSkip and paranoid are excluded (they alter neither
     * machine state nor snapshot layout).
     */
    std::uint64_t configHash() const;

    /**
     * Serialize the complete simulation state — pipeline, in-flight
     * window, trace cursor, memory hierarchy, predictor, statistics,
     * attached cycle stack — into `b`. Only legal between cycles
     * (outside step()); resuming a restored snapshot is bit-identical
     * to the uninterrupted run (tests/ckpt_test.cc).
     */
    void saveState(ckpt::SnapshotBuilder &b) const;

    /** Mirror of saveState. Throws std::runtime_error on mismatch. */
    void loadState(ckpt::SnapshotParser &p);

    // --- sampled-simulation access (src/sample) ----------------------
    /** The memory hierarchy (functional cache warming). */
    mem::MemorySystem &memorySystem();
    /** The branch predictor (functional predictor warming). */
    bpred::Predictor &predictor();
    /** The trace feeding fetch (functional fast-forward). */
    exec::TraceSource &trace();

    Cycle now() const { return cycle_; }
    /**
     * Cycles actually stepped, excluding fast-forwarded ones;
     * `now() - steppedCycles()` is the number of idle cycles run()
     * skipped.
     */
    Cycle steppedCycles() const { return stepped_; }
    std::uint64_t retiredInstructions() const;

    const ProcessorConfig &config() const { return config_; }

  private:
    struct Impl;

    /**
     * The cycle kernel, specialized at compile time on its two
     * cross-cutting accounting dimensions so the common configuration
     * (no cycle stack, no paranoid sweep, host profiler off) runs with
     * the observability code removed rather than branched around:
     *  - WithObs: cycle-stack attribution and the paranoid invariant
     *    sweep are reachable;
     *  - WithProf: the per-stage host-profiler scopes are constructed.
     * step() selects the instantiation per call (attachment state can
     * change between any two cycles); run()/runUntilRetired hoist the
     * selection out of their loops.
     */
    template <bool WithObs, bool WithProf> bool stepImpl();
    template <bool WithObs, bool WithProf>
    SimResult runLoop(std::uint64_t target_retired, Cycle max_cycles);
    SimResult runDispatch(std::uint64_t target_retired, Cycle max_cycles);

    ProcessorConfig config_;
    Cycle cycle_ = 0;
    Cycle stepped_ = 0;
    std::unique_ptr<Impl> impl_;
};

} // namespace mca::core

#endif // MCA_CORE_PROCESSOR_HH
