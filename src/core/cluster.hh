/**
 * @file
 * Hardware state of one cluster: the dispatch queue, the physical
 * register files and rename maps, the operand/result transfer buffers,
 * and the non-pipelined dividers. A cluster is pure state — the
 * Scheduler owns the issue policy that operates on it
 * (docs/architecture.md).
 */

#ifndef MCA_CORE_CLUSTER_HH
#define MCA_CORE_CLUSTER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/inflight.hh"
#include "core/structures.hh"
#include "isa/registers.hh"

namespace mca::core
{

/** Hardware state of one cluster. */
struct Cluster
{
    /**
     * The scan list: copies still awaiting issue (or a suspended
     * slave's wake), age-ordered. In window mode an issued copy's
     * queue entry stays occupied until retirement but never needs
     * another scan, so it is dropped from this vector and accounted in
     * `held` instead; occupancy() is the hardware queue's true fill.
     */
    std::vector<QueueSlot> queue;   // age-ordered
    /** Entries held by issued copies awaiting retirement (window mode). */
    unsigned held = 0;
    unsigned queueCapacity = 0;

    std::size_t occupancy() const { return queue.size() + held; }
    PhysRegFile intRegs, fpRegs;
    std::array<std::array<std::uint16_t, isa::kNumArchRegs>, 2> renameMap{};
    std::array<std::array<bool, isa::kNumArchRegs>, 2> mapped{};
    TransferBuffer otb, rtb;
    std::vector<Cycle> dividerBusyUntil;

    PhysRegFile &
    regs(isa::RegClass cls)
    {
        return cls == isa::RegClass::Int ? intRegs : fpRegs;
    }

    const PhysRegFile &
    regs(isa::RegClass cls) const
    {
        return cls == isa::RegClass::Int ? intRegs : fpRegs;
    }

    std::uint16_t &
    mapOf(isa::RegClass cls, unsigned arch)
    {
        return renameMap[static_cast<unsigned>(cls)][arch];
    }

    bool &
    mappedOf(isa::RegClass cls, unsigned arch)
    {
        return mapped[static_cast<unsigned>(cls)][arch];
    }
};

} // namespace mca::core

#endif // MCA_CORE_CLUSTER_HH
