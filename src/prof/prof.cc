#include "prof/prof.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "prof/hwcounters.hh"
#include "support/panic.hh"

namespace mca::prof
{

namespace
{

/** Hardware counters are sampled only this deep (root children = 1). */
constexpr std::uint32_t kHwMaxDepth = 2;

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

/** Region-name intern table. Index 0 is reserved for the merge root. */
struct InternTable {
    std::mutex mutex;
    std::vector<std::string> names{"total"};
    std::unordered_map<std::string, RegionId> ids{{"total", 0}};
};

InternTable &
internTable()
{
    static InternTable table;
    return table;
}

std::atomic<bool> g_hwRequested{false};
std::atomic<bool> g_hwAvailable{false};
std::atomic<std::uint64_t> g_enableT0{0};

} // namespace

namespace detail
{

std::atomic<bool> enabledFlag{false};

struct ThreadData {
    struct Node {
        RegionId region = 0;
        std::uint32_t parent = 0;
        std::uint32_t depth = 0;
        std::uint64_t ns = 0;
        std::uint64_t calls = 0;
        std::uint64_t hw[4] = {0, 0, 0, 0};
        bool hwValid = false;
        /** Small linear child map: (region, node index). */
        std::vector<std::pair<RegionId, std::uint32_t>> children;
    };

    std::vector<Node> nodes;
    std::uint32_t current = 0;
    HwGroup hwGroup;
    bool hwTried = false;

    ThreadData()
    {
        nodes.reserve(64);
        nodes.emplace_back(); // root
    }

    std::uint32_t
    enter(RegionId region)
    {
        for (const auto &[r, idx] : nodes[current].children) {
            if (r == region) {
                current = idx;
                return idx;
            }
        }
        const std::uint32_t parent = current;
        const auto idx = static_cast<std::uint32_t>(nodes.size());
        Node child;
        child.region = region;
        child.parent = parent;
        child.depth = nodes[parent].depth + 1;
        nodes.push_back(std::move(child));
        nodes[parent].children.emplace_back(region, idx);
        current = idx;
        return idx;
    }

    void
    clear()
    {
        nodes.clear();
        nodes.emplace_back();
        current = 0;
    }
};

namespace
{

struct Registry {
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadData>> threads;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

ThreadData &
threadData()
{
    thread_local std::shared_ptr<ThreadData> data = [] {
        auto p = std::make_shared<ThreadData>();
        auto &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        reg.threads.push_back(p);
        return p;
    }();
    return *data;
}

} // namespace detail

RegionId
internRegion(std::string_view name)
{
    auto &table = internTable();
    std::lock_guard<std::mutex> lock(table.mutex);
    std::string key(name);
    const auto it = table.ids.find(key);
    if (it != table.ids.end())
        return it->second;
    const auto id = static_cast<RegionId>(table.names.size());
    table.names.push_back(key);
    table.ids.emplace(std::move(key), id);
    return id;
}

const std::string &
regionName(RegionId id)
{
    auto &table = internTable();
    std::lock_guard<std::mutex> lock(table.mutex);
    MCA_ASSERT(id < table.names.size(), "bad region id ", id);
    return table.names[id];
}

void
setEnabled(bool on)
{
    if (on)
        g_enableT0.store(nowNs(), std::memory_order_relaxed);
    detail::enabledFlag.store(on, std::memory_order_relaxed);
}

void
setHwEnabled(bool on)
{
    g_hwRequested.store(on, std::memory_order_relaxed);
}

bool
hwRequested()
{
    return g_hwRequested.load(std::memory_order_relaxed);
}

bool
hwAvailable()
{
    return g_hwAvailable.load(std::memory_order_relaxed);
}

void
ScopeTimer::begin(RegionId region)
{
    const std::uint64_t t0 = nowNs(); // first: our overhead lands in us
    auto &td = detail::threadData();
    td_ = &td;
    node_ = td.enter(region);
    t0_ = t0;

    if (g_hwRequested.load(std::memory_order_relaxed) &&
        td.nodes[node_].depth <= kHwMaxDepth) {
        if (!td.hwTried) {
            td.hwTried = true;
            if (td.hwGroup.open())
                g_hwAvailable.store(true, std::memory_order_relaxed);
        }
        if (td.hwGroup.usable())
            hwLive_ = td.hwGroup.read(hw0_);
    }
}

void
ScopeTimer::end()
{
    auto &node = td_->nodes[node_];

    if (hwLive_) {
        std::uint64_t hw1[4];
        if (td_->hwGroup.read(hw1)) {
            for (int i = 0; i < 4; ++i)
                node.hw[i] += hw1[i] - hw0_[i];
            node.hwValid = true;
        }
        hwLive_ = false;
    }

    const std::uint64_t t1 = nowNs(); // last: our overhead lands in us
    node.ns += t1 - t0_;
    node.calls += 1;
    td_->current = node.parent;
    td_ = nullptr;
}

namespace
{

ProfileNode &
findOrAddChild(ProfileNode &parent, const std::string &name)
{
    for (auto &child : parent.children)
        if (child.name == name)
            return child;
    parent.children.emplace_back();
    parent.children.back().name = name;
    return parent.children.back();
}

void
mergeThreadNode(ProfileNode &dst, const detail::ThreadData &td,
                std::uint32_t srcIdx)
{
    const auto &src = td.nodes[srcIdx];
    dst.calls += src.calls;
    dst.totalNs += src.ns;
    if (src.hwValid) {
        dst.hw.cycles += src.hw[0];
        dst.hw.instructions += src.hw[1];
        dst.hw.cacheMisses += src.hw[2];
        dst.hw.branchMisses += src.hw[3];
        dst.hw.valid = true;
    }
    for (const auto &[region, childIdx] : src.children)
        mergeThreadNode(findOrAddChild(dst, regionName(region)), td,
                        childIdx);
}

void
finalize(ProfileNode &node)
{
    std::sort(node.children.begin(), node.children.end(),
              [](const ProfileNode &a, const ProfileNode &b) {
                  return a.name < b.name;
              });
    node.childNs = 0;
    for (auto &child : node.children) {
        finalize(child);
        node.childNs += child.totalNs;
    }
}

} // namespace

const ProfileNode *
ProfileNode::child(std::string_view name) const
{
    for (const auto &c : children)
        if (c.name == name)
            return &c;
    return nullptr;
}

const ProfileNode *
ProfileNode::find(std::initializer_list<std::string_view> path) const
{
    const ProfileNode *node = this;
    for (const auto name : path) {
        node = node->child(name);
        if (!node)
            return nullptr;
    }
    return node;
}

Profile
snapshot()
{
    Profile out;
    out.root.name = "total";
    out.hwAvailable = hwAvailable();

    auto &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &td : reg.threads) {
        if (td->nodes.size() <= 1 && td->nodes[0].children.empty())
            continue;
        ++out.threads;
        mergeThreadNode(out.root, *td, 0);
    }
    // The per-thread root never exits a scope, so its own ns/calls are
    // zero; the merged root's total is the sum of its children.
    finalize(out.root);
    out.root.totalNs = out.root.childNs;
    out.root.calls = 0;

    const std::uint64_t t0 = g_enableT0.load(std::memory_order_relaxed);
    out.wallNs = t0 ? nowNs() - t0 : 0;
    return out;
}

void
reset()
{
    auto &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &td : reg.threads)
        td->clear();
    if (enabled())
        g_enableT0.store(nowNs(), std::memory_order_relaxed);
}

namespace
{

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

void
dumpNode(std::ostream &os, const ProfileNode &node, int indent)
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    os << pad << "{\"name\": \"";
    jsonEscape(os, node.name);
    os << "\", \"calls\": " << node.calls
       << ", \"total_ns\": " << node.totalNs
       << ", \"self_ns\": " << node.selfNs();
    if (node.hw.valid) {
        os << ", \"hw\": {\"cycles\": " << node.hw.cycles
           << ", \"instructions\": " << node.hw.instructions
           << ", \"cache_misses\": " << node.hw.cacheMisses
           << ", \"branch_misses\": " << node.hw.branchMisses << "}";
    }
    if (!node.children.empty()) {
        os << ", \"children\": [\n";
        for (std::size_t i = 0; i < node.children.size(); ++i) {
            dumpNode(os, node.children[i], indent + 1);
            os << (i + 1 < node.children.size() ? ",\n" : "\n");
        }
        os << pad << "]";
    }
    os << "}";
}

} // namespace

void
Profile::dumpJson(std::ostream &os) const
{
    os << "{\n"
       << "  \"version\": 1,\n"
       << "  \"wall_ns\": " << wallNs << ",\n"
       << "  \"hw_available\": " << (hwAvailable ? "true" : "false")
       << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"root\":\n";
    dumpNode(os, root, 1);
    os << "\n}\n";
}

std::string
Profile::jsonString() const
{
    std::ostringstream oss;
    dumpJson(oss);
    return oss.str();
}

} // namespace mca::prof
