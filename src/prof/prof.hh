/**
 * @file
 * Hierarchical host-time self-profiler.
 *
 * The simulator has rich *guest* observability (src/obs) but the perf
 * roadmap needs *host* observability: which stage of the cycle loop,
 * which memory level, which compiler pass the wall clock actually goes
 * to. This package provides scoped RAII timers that build a per-thread
 * call tree of named regions:
 *
 *     void FetchUnit::tick() {
 *         PROF_SCOPE("core.fetch");
 *         ...
 *     }
 *
 * Design constraints, in order:
 *
 *  - **Off means off.** Profiling is disabled by default; a disabled
 *    PROF_SCOPE costs one relaxed atomic load and a predictable branch.
 *    Nothing else in the simulator observes the profiler, so simulated
 *    results are bit-identical with profiling on, off, or compiled out
 *    (define MCA_PROF_DISABLE to remove the scopes entirely).
 *  - **No locks on the hot path.** Each thread appends to its own arena
 *    of tree nodes reached through one `thread_local` pointer; the only
 *    global synchronization is a registry mutex taken once per thread
 *    lifetime and at snapshot time.
 *  - **Deterministic merge.** snapshot() folds every thread's tree into
 *    one profile keyed by region-name path with children sorted by
 *    name, so the merged structure and call counts are identical at any
 *    ThreadPool width (only the nanosecond values vary run to run).
 *
 * Accounting: a region's `total_ns` includes its children; `self_ns`
 * is total minus children. The scope timer reads the clock first thing
 * on entry and last thing on exit, so the timer's own overhead lands
 * inside the region being opened, never in the parent's self time —
 * every nanosecond between the first scope entry and the snapshot is
 * attributed to exactly one region's self time.
 *
 * Optionally (`setHwEnabled`), each region at depth <= 2 also samples a
 * perf_event_open group of four hardware counters (cycles,
 * instructions, cache misses, branch misses). When the kernel refuses
 * (unprivileged containers, CI) the profiler degrades to time-only and
 * records that fact in the profile header.
 *
 * Thread-safety: scopes are thread-local and free-running; snapshot()
 * and reset() must be called while instrumented worker threads are
 * quiescent (after ThreadPool::wait or join).
 */

#ifndef MCA_PROF_PROF_HH
#define MCA_PROF_PROF_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mca::prof
{

/** Dense index of an interned region name; stable for process life. */
using RegionId = std::uint32_t;

/** Intern @p name (thread-safe); equal names get equal ids. */
RegionId internRegion(std::string_view name);

/** Name for an id returned by internRegion. */
const std::string &regionName(RegionId id);

namespace detail
{
extern std::atomic<bool> enabledFlag;
struct ThreadData;
ThreadData &threadData();
} // namespace detail

/** True while scopes are recording. */
inline bool
enabled()
{
    return detail::enabledFlag.load(std::memory_order_relaxed);
}

/**
 * Turn recording on or off. Enabling also (re)marks the wall-clock
 * origin that Profile::wallNs is measured from. Flip before spawning
 * instrumented workers; scopes already open straddle the flip safely.
 */
void setEnabled(bool on);

/** Request hardware counters for shallow regions (depth <= 2). */
void setHwEnabled(bool on);

/** True if hardware counters were requested via setHwEnabled. */
bool hwRequested();

/**
 * True once at least one thread opened its perf_event group. Stays
 * false when the kernel denies access (seccomp, perf_event_paranoid).
 */
bool hwAvailable();

/** Summed hardware-counter deltas attributed to one region. */
struct HwCounts {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t branchMisses = 0;
    bool valid = false; ///< at least one sample landed here
};

/** One region in the merged profile tree. */
struct ProfileNode {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t totalNs = 0; ///< inclusive of children
    std::uint64_t childNs = 0; ///< sum of children's totalNs
    HwCounts hw;
    std::vector<ProfileNode> children; ///< sorted by name

    std::uint64_t
    selfNs() const
    {
        return totalNs > childNs ? totalNs - childNs : 0;
    }

    /** Direct child by name, or nullptr. */
    const ProfileNode *child(std::string_view name) const;

    /** Node at a /-free path of names ("a", "b", ...), or nullptr. */
    const ProfileNode *find(std::initializer_list<std::string_view> path)
        const;
};

/** A merged, deterministic snapshot of every thread's region tree. */
struct Profile {
    ProfileNode root;            ///< name "total"; totalNs = sum of children
    std::uint64_t wallNs = 0;    ///< steady-clock span since setEnabled(true)
    bool hwAvailable = false;
    unsigned threads = 0;        ///< threads that recorded at least one scope

    /** Deterministic JSON document (see docs/profiling.md). */
    void dumpJson(std::ostream &os) const;
    std::string jsonString() const;
};

/**
 * Merge all threads' trees into one profile. Call only while
 * instrumented workers are quiescent.
 */
Profile snapshot();

/** Drop all recorded data (tests). Same quiescence rule as snapshot. */
void reset();

/**
 * RAII region timer. Use through PROF_SCOPE; construct directly only
 * for dynamic region names (compiler passes, per-level cache regions)
 * where the RegionId is interned once and cached by the caller.
 */
class ScopeTimer
{
  public:
    explicit ScopeTimer(RegionId region)
    {
        if (enabled())
            begin(region);
    }

    ~ScopeTimer()
    {
        if (td_)
            end();
    }

    ScopeTimer(const ScopeTimer &) = delete;
    ScopeTimer &operator=(const ScopeTimer &) = delete;

  private:
    void begin(RegionId region);
    void end();

    detail::ThreadData *td_ = nullptr;
    std::uint32_t node_ = 0;
    std::uint64_t t0_ = 0;
    std::uint64_t hw0_[4];
    bool hwLive_ = false;
};

} // namespace mca::prof

#define MCA_PROF_CONCAT2(a, b) a##b
#define MCA_PROF_CONCAT(a, b) MCA_PROF_CONCAT2(a, b)

#if defined(MCA_PROF_DISABLE)
#define PROF_SCOPE(name) ((void)0)
#else
/** Time the enclosing scope as region @p name (a string literal). */
#define PROF_SCOPE(name)                                                  \
    static const ::mca::prof::RegionId MCA_PROF_CONCAT(prof_region_,      \
        __LINE__) = ::mca::prof::internRegion(name);                      \
    ::mca::prof::ScopeTimer MCA_PROF_CONCAT(prof_scope_, __LINE__)(       \
        MCA_PROF_CONCAT(prof_region_, __LINE__))
#endif

#endif // MCA_PROF_PROF_HH
