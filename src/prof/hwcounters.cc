#include "prof/hwcounters.hh"

#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define MCA_PROF_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mca::prof
{

#if defined(MCA_PROF_HAVE_PERF_EVENT)

namespace
{

int
openCounter(std::uint64_t config, int group_fd)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof attr;
    attr.config = config;
    attr.disabled = group_fd < 0 ? 1 : 0; // leader starts the group
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP;
    return static_cast<int>(syscall(__NR_perf_event_open, &attr,
                                    /*pid=*/0, /*cpu=*/-1, group_fd,
                                    /*flags=*/0));
}

} // namespace

bool
HwGroup::open()
{
    static const std::uint64_t kConfigs[4] = {
        PERF_COUNT_HW_CPU_CYCLES,
        PERF_COUNT_HW_INSTRUCTIONS,
        PERF_COUNT_HW_CACHE_MISSES,
        PERF_COUNT_HW_BRANCH_MISSES,
    };

    for (int i = 0; i < 4; ++i) {
        fds_[i] = openCounter(kConfigs[i], i == 0 ? -1 : fds_[0]);
        if (fds_[i] < 0) {
            close();
            return false;
        }
    }
    leader_ = fds_[0];

    if (ioctl(leader_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
        ioctl(leader_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
        close();
        return false;
    }
    return true;
}

bool
HwGroup::read(std::uint64_t out[4])
{
    out[0] = out[1] = out[2] = out[3] = 0;
    if (leader_ < 0)
        return false;

    // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; }
    std::uint64_t buf[1 + 4];
    const auto n = ::read(leader_, buf, sizeof buf);
    if (n != static_cast<ssize_t>(sizeof buf) || buf[0] != 4)
        return false;
    for (int i = 0; i < 4; ++i)
        out[i] = buf[1 + i];
    return true;
}

void
HwGroup::close()
{
    for (int i = 3; i >= 0; --i) {
        if (fds_[i] >= 0)
            ::close(fds_[i]);
        fds_[i] = -1;
    }
    leader_ = -1;
}

#else // !MCA_PROF_HAVE_PERF_EVENT

bool
HwGroup::open()
{
    return false;
}

bool
HwGroup::read(std::uint64_t out[4])
{
    out[0] = out[1] = out[2] = out[3] = 0;
    return false;
}

void
HwGroup::close()
{
}

#endif

} // namespace mca::prof
