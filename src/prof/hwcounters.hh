/**
 * @file
 * perf_event_open counter group for the profiler (internal).
 *
 * One group per thread: cycles (leader), instructions, cache misses,
 * branch misses, opened with PERF_FORMAT_GROUP so a single read()
 * returns all four values coherently. open() fails gracefully — and
 * permanently for the thread — when the kernel refuses (EPERM under
 * perf_event_paranoid, ENOSYS in minimal containers) or when built on
 * a platform without perf events; callers fall back to time-only
 * profiling.
 */

#ifndef MCA_PROF_HWCOUNTERS_HH
#define MCA_PROF_HWCOUNTERS_HH

#include <cstdint>

namespace mca::prof
{

class HwGroup
{
  public:
    HwGroup() = default;
    ~HwGroup() { close(); }

    HwGroup(const HwGroup &) = delete;
    HwGroup &operator=(const HwGroup &) = delete;

    /** Open the 4-counter group for the calling thread. */
    bool open();

    /** True after a successful open(). */
    bool usable() const { return leader_ >= 0; }

    /**
     * Read {cycles, instructions, cache misses, branch misses} into
     * @p out. Returns false (and zeroes @p out) if unusable or the
     * read fails.
     */
    bool read(std::uint64_t out[4]);

    void close();

  private:
    int leader_ = -1;
    int fds_[4] = {-1, -1, -1, -1};
};

} // namespace mca::prof

#endif // MCA_PROF_HWCOUNTERS_HH
