/**
 * @file
 * Static machine-instruction representation.
 *
 * A MachInst is a decoded instruction: opcode, up to two source registers,
 * an optional destination register, and an immediate. Memory and control
 * behaviour (effective addresses, branch outcomes) are dynamic properties
 * carried by exec::DynInst, not here.
 */

#ifndef MCA_ISA_INST_HH
#define MCA_ISA_INST_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace mca::isa
{

/** A decoded static instruction. */
struct MachInst
{
    Op op = Op::Nop;
    /** Destination register, if the instruction writes one. */
    std::optional<RegId> dest;
    /** Source registers; srcs[i] is engaged for i < numSrcs(). */
    std::array<std::optional<RegId>, 2> srcs;
    /** Immediate operand (displacements, shift counts, constants). */
    std::int64_t imm = 0;

    unsigned
    numSrcs() const
    {
        return (srcs[0] ? 1u : 0u) + (srcs[1] ? 1u : 0u);
    }

    bool hasDest() const { return dest.has_value(); }

    /** Disassembly-style rendering for logs and tests. */
    std::string toString() const;
};

/** Build a three-register ALU-style instruction. */
MachInst makeRRR(Op op, RegId dest, RegId src1, RegId src2);

/** Build a register-immediate instruction. */
MachInst makeRRI(Op op, RegId dest, RegId src, std::int64_t imm);

/** Build a load: dest <- mem[base + disp]. */
MachInst makeLoad(Op op, RegId dest, RegId base, std::int64_t disp);

/** Build a store: mem[base + disp] <- data. */
MachInst makeStore(Op op, RegId data, RegId base, std::int64_t disp);

/** Build a conditional branch testing `cond`. */
MachInst makeBranch(Op op, RegId cond);

/** Build an unconditional control-flow instruction. */
MachInst makeJump(Op op);

} // namespace mca::isa

#endif // MCA_ISA_INST_HH
