#include "isa/inst.hh"
#include "isa/opcodes.hh"

#include <sstream>

#include "support/panic.hh"

namespace mca::isa
{

OpClass
opClass(Op op)
{
    switch (op) {
      case Op::Mull:
        return OpClass::IntMul;
      case Op::Add: case Op::Sub: case Op::And: case Op::Or:
      case Op::Xor: case Op::Sll: case Op::Srl: case Op::Sra:
      case Op::CmpEq: case Op::CmpLt: case Op::CmpLe:
      case Op::Lda: case Op::Mov:
        return OpClass::IntOther;
      case Op::DivF: case Op::DivD: case Op::SqrtD:
        return OpClass::FpDiv;
      case Op::AddF: case Op::SubF: case Op::MulF: case Op::CmpF:
      case Op::CvtIF: case Op::CvtFI: case Op::MovF:
        return OpClass::FpOther;
      case Op::Ldl: case Op::Ldt: case Op::Stl: case Op::Stt:
        return OpClass::LoadStore;
      case Op::Br: case Op::Beq: case Op::Bne: case Op::FBeq:
      case Op::FBne: case Op::Jmp: case Op::Jsr: case Op::Ret:
        return OpClass::CtrlFlow;
      case Op::Nop:
        return OpClass::Nop;
      default:
        MCA_PANIC("opClass: unknown op ", static_cast<int>(op));
    }
}

unsigned
opLatency(Op op)
{
    switch (opClass(op)) {
      case OpClass::IntMul:
        return 6;
      case OpClass::IntOther:
        return 1;
      case OpClass::FpDiv:
        // 8 cycles for 32-bit divides, 16 for 64-bit divides and sqrt.
        return op == Op::DivF ? 8 : 16;
      case OpClass::FpOther:
        return 3;
      case OpClass::LoadStore:
        // Loads: 1-cycle access + the single load-delay slot of Table 1.
        // Stores complete in one cycle (no register result).
        return isLoad(op) ? 2 : 1;
      case OpClass::CtrlFlow:
        return 1;
      case OpClass::Nop:
        return 1;
      default:
        MCA_PANIC("opLatency: unknown op ", static_cast<int>(op));
    }
}

bool
opPipelined(Op op)
{
    // All units are fully pipelined except the floating-point divider.
    return opClass(op) != OpClass::FpDiv;
}

std::string_view
opName(Op op)
{
    switch (op) {
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Sll: return "sll";
      case Op::Srl: return "srl";
      case Op::Sra: return "sra";
      case Op::CmpEq: return "cmpeq";
      case Op::CmpLt: return "cmplt";
      case Op::CmpLe: return "cmple";
      case Op::Lda: return "lda";
      case Op::Mov: return "mov";
      case Op::Mull: return "mull";
      case Op::AddF: return "addf";
      case Op::SubF: return "subf";
      case Op::MulF: return "mulf";
      case Op::CmpF: return "cmpf";
      case Op::CvtIF: return "cvtif";
      case Op::CvtFI: return "cvtfi";
      case Op::MovF: return "movf";
      case Op::DivF: return "divf";
      case Op::DivD: return "divd";
      case Op::SqrtD: return "sqrtd";
      case Op::Ldl: return "ldl";
      case Op::Ldt: return "ldt";
      case Op::Stl: return "stl";
      case Op::Stt: return "stt";
      case Op::Br: return "br";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::FBeq: return "fbeq";
      case Op::FBne: return "fbne";
      case Op::Jmp: return "jmp";
      case Op::Jsr: return "jsr";
      case Op::Ret: return "ret";
      case Op::Nop: return "nop";
      default: return "<bad-op>";
    }
}

std::string_view
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntMul: return "int-mul";
      case OpClass::IntOther: return "int-other";
      case OpClass::FpDiv: return "fp-div";
      case OpClass::FpOther: return "fp-other";
      case OpClass::LoadStore: return "load-store";
      case OpClass::CtrlFlow: return "ctrl-flow";
      case OpClass::Nop: return "nop";
      default: return "<bad-class>";
    }
}

std::string
MachInst::toString() const
{
    std::ostringstream oss;
    oss << opName(op);
    bool first = true;
    auto emit = [&](const std::string &s) {
        oss << (first ? " " : ", ") << s;
        first = false;
    };
    if (dest)
        emit(regName(*dest));
    for (const auto &src : srcs)
        if (src)
            emit(regName(*src));
    if (imm != 0 || isMemOp(op) || op == Op::Lda)
        emit("#" + std::to_string(imm));
    return oss.str();
}

MachInst
makeRRR(Op op, RegId dest, RegId src1, RegId src2)
{
    MachInst mi;
    mi.op = op;
    mi.dest = dest;
    mi.srcs[0] = src1;
    mi.srcs[1] = src2;
    return mi;
}

MachInst
makeRRI(Op op, RegId dest, RegId src, std::int64_t imm)
{
    MachInst mi;
    mi.op = op;
    mi.dest = dest;
    mi.srcs[0] = src;
    mi.imm = imm;
    return mi;
}

MachInst
makeLoad(Op op, RegId dest, RegId base, std::int64_t disp)
{
    MCA_ASSERT(isLoad(op), "makeLoad with non-load op");
    MachInst mi;
    mi.op = op;
    mi.dest = dest;
    mi.srcs[0] = base;
    mi.imm = disp;
    return mi;
}

MachInst
makeStore(Op op, RegId data, RegId base, std::int64_t disp)
{
    MCA_ASSERT(isStore(op), "makeStore with non-store op");
    MachInst mi;
    mi.op = op;
    mi.srcs[0] = data;
    mi.srcs[1] = base;
    mi.imm = disp;
    return mi;
}

MachInst
makeBranch(Op op, RegId cond)
{
    MCA_ASSERT(isCondBranch(op), "makeBranch with non-branch op");
    MachInst mi;
    mi.op = op;
    mi.srcs[0] = cond;
    return mi;
}

MachInst
makeJump(Op op)
{
    MCA_ASSERT(isCtrlFlow(op) && !isCondBranch(op),
               "makeJump with non-jump op");
    MachInst mi;
    mi.op = op;
    if (op == Op::Jsr)
        mi.dest = intReg(kLinkReg);
    if (op == Op::Ret || op == Op::Jmp)
        mi.srcs[0] = intReg(kLinkReg);
    return mi;
}

} // namespace mca::isa
