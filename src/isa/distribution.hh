/**
 * @file
 * The instruction-distribution rule of the multicluster architecture.
 *
 * Given the cluster assignment of every architectural register an
 * instruction names, this pure function decides which cluster executes
 * the master copy, which clusters receive slave copies, and which
 * transfer mechanisms (operand forwarding, result forwarding) each slave
 * uses. Both the hardware model (core) and the static schedulers
 * (compiler) apply the same rule — in hardware it is implemented by
 * simple inspection of register numbers (paper §2.1).
 */

#ifndef MCA_ISA_DISTRIBUTION_HH
#define MCA_ISA_DISTRIBUTION_HH

#include <optional>

#include "isa/inst.hh"
#include "isa/registers.hh"
#include "support/small_vector.hh"

namespace mca::isa
{

/** Role of one slave copy of a dual-distributed instruction. */
struct SlaveRole
{
    unsigned cluster = 0;
    /** Slave reads a source operand and forwards it to the master. */
    bool forwardsOperand = false;
    /** Slave receives the master's result and writes it locally. */
    bool receivesResult = false;
    /** Bitmask of source indices the slave forwards (bit i = srcs[i]). */
    unsigned srcMask = 0;
};

/** Full distribution decision for one instruction. */
struct Distribution
{
    unsigned masterCluster = 0;
    /** Inline storage covers a master plus slaves in three other
     *  clusters; wider machines spill to the heap. */
    SmallVector<SlaveRole, 3> slaves;
    /** Master allocates a physical register for the destination. */
    bool masterWritesDest = false;

    bool isDual() const { return !slaves.empty(); }

    /** Number of clusters the instruction is distributed to. */
    unsigned
    width() const
    {
        return 1 + static_cast<unsigned>(slaves.size());
    }
};

/**
 * Decide the distribution of an instruction.
 *
 * @param mi   The decoded instruction (register names).
 * @param map  The architectural-register-to-cluster assignment.
 * @param tie_break  Cluster preferred when the instruction has no local
 *                   register constraint at all (e.g. all-global or
 *                   zero-register operands); lets the hardware balance.
 */
Distribution decideDistribution(const MachInst &mi, const RegisterMap &map,
                                unsigned tie_break = 0);

} // namespace mca::isa

#endif // MCA_ISA_DISTRIBUTION_HH
