/**
 * @file
 * Per-cycle instruction-issue rules (the paper's Table 1).
 *
 * Row 1 (single-cluster, 8-way):  all 8; int multiply 8; int other 8;
 * fp all 4; fp divide 4; fp other 4; loads & stores 4; control flow 4.
 * Row 2 (per cluster of the dual machine): exactly half of each.
 */

#ifndef MCA_ISA_ISSUE_RULES_HH
#define MCA_ISA_ISSUE_RULES_HH

#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace mca::isa
{

/** Per-cycle issue caps for one cluster. */
struct IssueRules
{
    unsigned all = 8;       ///< total instructions per cycle
    unsigned intMul = 8;    ///< integer multiplies
    unsigned intOther = 8;  ///< other integer
    unsigned fpAll = 4;     ///< all floating point combined
    unsigned fpDiv = 4;     ///< floating-point divides
    unsigned fpOther = 4;   ///< other floating point
    unsigned loadStore = 4; ///< loads and stores
    unsigned ctrlFlow = 4;  ///< control-flow instructions

    /** Table 1 row 1: the 8-way single-cluster machine. */
    static IssueRules
    singleCluster8Way()
    {
        return IssueRules{8, 8, 8, 4, 4, 4, 4, 4};
    }

    /** Table 1 row 2: one cluster of the dual-cluster machine. */
    static IssueRules
    dualClusterPerCluster()
    {
        return IssueRules{4, 4, 4, 2, 2, 2, 2, 2};
    }

    /** 4-way single-cluster machine (the paper also evaluated 4-way). */
    static IssueRules
    singleCluster4Way()
    {
        return IssueRules{4, 4, 4, 2, 2, 2, 2, 2};
    }

    /** One cluster of a dual-cluster 4-way machine. */
    static IssueRules
    dual4WayPerCluster()
    {
        return IssueRules{2, 2, 2, 1, 1, 1, 1, 1};
    }

    /** Scale every cap by 1/n (for n-cluster generalizations), min 1. */
    IssueRules
    dividedBy(unsigned n) const
    {
        auto div = [n](unsigned v) { return v / n > 0 ? v / n : 1u; };
        return IssueRules{div(all),     div(intMul), div(intOther),
                          div(fpAll),   div(fpDiv),  div(fpOther),
                          div(loadStore), div(ctrlFlow)};
    }
};

/**
 * Per-cycle issue-slot bookkeeping for one cluster.
 *
 * tryConsume() checks every cap an op class is subject to and, on success,
 * debits them. Slave copies of dual-distributed instructions consume an
 * "all" slot plus the int-other or fp-other register-file port but are not
 * subject to load/store or control-flow caps (see DESIGN.md §5.2).
 */
class IssueSlots
{
  public:
    explicit IssueSlots(const IssueRules &rules) : rules_(rules) {}

    /** Reset all slot counts for a new cycle. */
    void
    newCycle()
    {
        usedAll_ = usedIntMul_ = usedIntOther_ = 0;
        usedFpAll_ = usedFpDiv_ = usedFpOther_ = 0;
        usedLdSt_ = usedCtrl_ = 0;
    }

    /** Attempt to issue one instruction of class `cls` this cycle. */
    bool
    tryConsume(OpClass cls)
    {
        if (usedAll_ >= rules_.all)
            return false;
        switch (cls) {
          case OpClass::IntMul:
            if (usedIntMul_ >= rules_.intMul)
                return false;
            ++usedIntMul_;
            break;
          case OpClass::IntOther:
            if (usedIntOther_ >= rules_.intOther)
                return false;
            ++usedIntOther_;
            break;
          case OpClass::FpDiv:
            if (usedFpAll_ >= rules_.fpAll || usedFpDiv_ >= rules_.fpDiv)
                return false;
            ++usedFpAll_;
            ++usedFpDiv_;
            break;
          case OpClass::FpOther:
            if (usedFpAll_ >= rules_.fpAll || usedFpOther_ >= rules_.fpOther)
                return false;
            ++usedFpAll_;
            ++usedFpOther_;
            break;
          case OpClass::LoadStore:
            if (usedLdSt_ >= rules_.loadStore)
                return false;
            ++usedLdSt_;
            break;
          case OpClass::CtrlFlow:
            if (usedCtrl_ >= rules_.ctrlFlow)
                return false;
            ++usedCtrl_;
            break;
          case OpClass::Nop:
            break;
          default:
            return false;
        }
        ++usedAll_;
        return true;
    }

    /**
     * Attempt to issue a slave copy that only needs a register-file port
     * of the given class (integer or floating point).
     */
    bool
    tryConsumeSlave(RegClass file)
    {
        return tryConsume(file == RegClass::Int ? OpClass::IntOther
                                                : OpClass::FpOther);
    }

    unsigned usedAll() const { return usedAll_; }
    const IssueRules &rules() const { return rules_; }

  private:
    IssueRules rules_;
    unsigned usedAll_ = 0;
    unsigned usedIntMul_ = 0;
    unsigned usedIntOther_ = 0;
    unsigned usedFpAll_ = 0;
    unsigned usedFpDiv_ = 0;
    unsigned usedFpOther_ = 0;
    unsigned usedLdSt_ = 0;
    unsigned usedCtrl_ = 0;
};

} // namespace mca::isa

#endif // MCA_ISA_ISSUE_RULES_HH
