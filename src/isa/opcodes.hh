/**
 * @file
 * Opcodes, opcode classes, and the functional-unit latency table.
 *
 * The opcode classes mirror the columns of the paper's Table 1: integer
 * multiply, other integer, floating-point divide, other floating point,
 * loads & stores, and control flow. Latencies come from Table 1 row 3:
 * integer multiply 6, other integer 1, fp divide 8 (32-bit) or 16 (64-bit,
 * not pipelined), other fp 3, loads and stores 1 with a single load-delay
 * slot, control flow 1.
 */

#ifndef MCA_ISA_OPCODES_HH
#define MCA_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

namespace mca::isa
{

/** Machine opcodes of the Alpha-like MCA ISA. */
enum class Op : std::uint8_t
{
    // Integer ALU (latency 1)
    Add, Sub, And, Or, Xor, Sll, Srl, Sra,
    CmpEq, CmpLt, CmpLe,
    Lda,        // load-address / immediate materialization
    Mov,        // integer register move

    // Integer multiply (latency 6)
    Mull,

    // Floating point, other (latency 3)
    AddF, SubF, MulF, CmpF, CvtIF, CvtFI, MovF,

    // Floating point divide (8 cycles single, 16 double; not pipelined)
    DivF, DivD, SqrtD,

    // Loads and stores (latency 1 + one load-delay slot)
    Ldl,        // integer load
    Ldt,        // floating-point load
    Stl,        // integer store
    Stt,        // floating-point store

    // Control flow (latency 1)
    Br,         // unconditional branch
    Beq, Bne,   // conditional on an integer register
    FBeq, FBne, // conditional on a floating-point register
    Jmp,        // indirect jump
    Jsr,        // call (writes the link register)
    Ret,        // return (reads the link register)

    Nop,

    NumOps
};

/** Functional-unit classes; the columns of the paper's Table 1. */
enum class OpClass : std::uint8_t
{
    IntMul,
    IntOther,
    FpDiv,
    FpOther,
    LoadStore,
    CtrlFlow,
    Nop,

    NumClasses
};

/** Map an opcode to its issue class. */
OpClass opClass(Op op);

/**
 * Execution latency in cycles.
 *
 * Loads report 2: the 1-cycle cache access plus the single load-delay slot
 * of Table 1 (a dependent may issue two cycles after the load).
 */
unsigned opLatency(Op op);

/** True if back-to-back issue to the unit is allowed (fully pipelined). */
bool opPipelined(Op op);

/** Mnemonic for printing. */
std::string_view opName(Op op);

/** Printable class name. */
std::string_view opClassName(OpClass cls);

inline bool
isLoad(Op op)
{
    return op == Op::Ldl || op == Op::Ldt;
}

inline bool
isStore(Op op)
{
    return op == Op::Stl || op == Op::Stt;
}

inline bool
isMemOp(Op op)
{
    return isLoad(op) || isStore(op);
}

inline bool
isCtrlFlow(Op op)
{
    return opClass(op) == OpClass::CtrlFlow;
}

inline bool
isCondBranch(Op op)
{
    return op == Op::Beq || op == Op::Bne || op == Op::FBeq ||
           op == Op::FBne;
}

inline bool
isCall(Op op)
{
    return op == Op::Jsr;
}

inline bool
isReturn(Op op)
{
    return op == Op::Ret;
}

} // namespace mca::isa

#endif // MCA_ISA_OPCODES_HH
