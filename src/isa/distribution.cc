#include "isa/distribution.hh"

#include <algorithm>
#include <array>

#include "support/panic.hh"

namespace mca::isa
{

Distribution
decideDistribution(const MachInst &mi, const RegisterMap &map,
                   unsigned tie_break)
{
    const unsigned nclusters = map.numClusters();
    Distribution dist;

    if (nclusters == 1) {
        dist.masterCluster = 0;
        dist.masterWritesDest = mi.hasDest() && !mi.dest->isZero();
        return dist;
    }

    // Count the local registers named per cluster (the paper's
    // master-selection rule: the master executes where the majority of
    // the named local registers live). Fixed-size scratch: this runs
    // once per dispatched instruction, so it must not allocate.
    constexpr unsigned kMaxClusters = 32;
    MCA_ASSERT(nclusters <= kMaxClusters,
               "cluster count exceeds the distribution scratch bound");
    std::array<unsigned, kMaxClusters> local_count{};
    bool any_local = false;

    auto countReg = [&](const RegId &reg) {
        if (reg.isZero() || map.isGlobal(reg))
            return;
        ++local_count[map.homeCluster(reg)];
        any_local = true;
    };

    for (const auto &src : mi.srcs)
        if (src)
            countReg(*src);
    if (mi.dest && !mi.dest->isZero())
        countReg(*mi.dest);

    unsigned master;
    if (!any_local) {
        // No local-register constraint: the distribution hardware is free
        // to pick a cluster (all operands global/zero).
        master = tie_break % nclusters;
    } else {
        master = 0;
        for (unsigned c = 1; c < nclusters; ++c)
            if (local_count[c] > local_count[master])
                master = c;
        // Ties resolve to the lowest cluster index (matches the paper's
        // Figure 5, where the C1 operand's cluster hosts the master).
    }
    dist.masterCluster = master;

    // Destination handling.
    const bool has_dest = mi.hasDest() && !mi.dest->isZero();
    const bool dest_global = has_dest && map.isGlobal(*mi.dest);
    const bool dest_local = has_dest && !dest_global;
    const unsigned dest_home =
        dest_local ? map.homeCluster(*mi.dest) : 0;

    dist.masterWritesDest =
        has_dest && (dest_global || dest_home == master);

    // Build slave roles, merged per cluster.
    auto slaveFor = [&](unsigned cluster) -> SlaveRole & {
        for (auto &s : dist.slaves)
            if (s.cluster == cluster)
                return s;
        dist.slaves.push_back(SlaveRole{cluster, false, false, 0});
        return dist.slaves.back();
    };

    for (unsigned i = 0; i < 2; ++i) {
        const auto &src = mi.srcs[i];
        if (!src || src->isZero() || map.isGlobal(*src))
            continue;
        const unsigned home = map.homeCluster(*src);
        if (home == master)
            continue;
        SlaveRole &slave = slaveFor(home);
        slave.forwardsOperand = true;
        slave.srcMask |= (1u << i);
    }

    if (dest_local && dest_home != master) {
        slaveFor(dest_home).receivesResult = true;
    } else if (dest_global) {
        for (unsigned c = 0; c < nclusters; ++c)
            if (c != master)
                slaveFor(c).receivesResult = true;
    }

    std::sort(dist.slaves.begin(), dist.slaves.end(),
              [](const SlaveRole &a, const SlaveRole &b) {
                  return a.cluster < b.cluster;
              });
    return dist;
}

} // namespace mca::isa
