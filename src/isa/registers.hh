/**
 * @file
 * Architectural register namespace of the MCA ISA.
 *
 * The reproduction models an Alpha-like RISC ISA with 32 integer and 32
 * floating-point architectural registers. As on Alpha, r31 and f31 read as
 * zero and writes to them are discarded; r30 is the stack pointer and r29
 * the global pointer. The multicluster architecture assigns each
 * architectural register to one cluster ("local") or to every cluster
 * ("global"); following the paper, even-numbered registers belong to
 * cluster 0 and odd-numbered to cluster 1, and the SP/GP live ranges are
 * the global-register candidates.
 */

#ifndef MCA_ISA_REGISTERS_HH
#define MCA_ISA_REGISTERS_HH

#include <array>
#include <cstdint>
#include <string>

#include "support/panic.hh"

namespace mca::isa
{

/** Number of architectural registers per class. */
inline constexpr unsigned kNumArchRegs = 32;

/** Integer register that always reads zero. */
inline constexpr unsigned kIntZeroReg = 31;
/** Floating-point register that always reads zero. */
inline constexpr unsigned kFpZeroReg = 31;
/** Conventional stack pointer. */
inline constexpr unsigned kStackPointer = 30;
/** Conventional global pointer. */
inline constexpr unsigned kGlobalPointer = 29;
/** Conventional link register for calls. */
inline constexpr unsigned kLinkReg = 26;

/** Register class: which register file a register names. */
enum class RegClass : std::uint8_t { Int, Fp };

/** An architectural register identifier (class + index). */
struct RegId
{
    RegClass cls = RegClass::Int;
    std::uint8_t index = kIntZeroReg;

    constexpr RegId() = default;
    constexpr RegId(RegClass c, unsigned i)
        : cls(c), index(static_cast<std::uint8_t>(i))
    {}

    constexpr bool
    operator==(const RegId &other) const
    {
        return cls == other.cls && index == other.index;
    }

    /** True if this register always reads zero (writes discarded). */
    constexpr bool
    isZero() const
    {
        return (cls == RegClass::Int && index == kIntZeroReg) ||
               (cls == RegClass::Fp && index == kFpZeroReg);
    }
};

/** Build an integer register id. */
constexpr RegId
intReg(unsigned index)
{
    return RegId(RegClass::Int, index);
}

/** Build a floating-point register id. */
constexpr RegId
fpReg(unsigned index)
{
    return RegId(RegClass::Fp, index);
}

/** Human-readable register name ("r7", "f12"). */
inline std::string
regName(RegId reg)
{
    return (reg.cls == RegClass::Int ? "r" : "f") +
           std::to_string(reg.index);
}

/**
 * Architectural-register-to-cluster assignment.
 *
 * Local registers belong to register_index mod num_clusters by default;
 * registers in the global mask belong to every cluster. The default
 * global set is {SP, GP} in the integer file, per the paper's step 3.
 *
 * Individual registers may be re-homed with setHome() — the
 * compiler-directed assignment the paper's §6 envisions for the dynamic
 * reassignment mechanism ("directly specify the
 * architectural-register-to-cluster assignment for each architectural
 * register").
 */
class RegisterMap
{
  public:
    /** Construct the paper's default map for a given cluster count. */
    explicit RegisterMap(unsigned num_clusters = 2)
        : numClusters_(num_clusters)
    {
        MCA_ASSERT(num_clusters >= 1 && num_clusters <= 8,
                   "unsupported cluster count");
        intHome_.fill(-1);
        fpHome_.fill(-1);
        if (num_clusters > 1) {
            setGlobal(intReg(kStackPointer));
            setGlobal(intReg(kGlobalPointer));
        }
    }

    unsigned numClusters() const { return numClusters_; }

    /** Mark a register as globally assigned (replicated in all clusters). */
    void
    setGlobal(RegId reg)
    {
        mask(reg.cls) |= (1u << reg.index);
    }

    /** Remove a register from the global set. */
    void
    setLocal(RegId reg)
    {
        mask(reg.cls) &= ~(1u << reg.index);
    }

    bool
    isGlobal(RegId reg) const
    {
        // Zero registers are readable everywhere without any transfer.
        return reg.isZero() || numClusters_ == 1 ||
               (maskOf(reg.cls) & (1u << reg.index)) != 0;
    }

    /**
     * Home cluster of a local register. Must not be called for globals
     * (they have no unique home).
     */
    unsigned
    homeCluster(RegId reg) const
    {
        MCA_ASSERT(!isGlobal(reg), "global register has no home cluster");
        const std::int8_t over = overrideOf(reg.cls)[reg.index];
        return over >= 0 ? static_cast<unsigned>(over)
                         : reg.index % numClusters_;
    }

    /** Re-home a local register to an explicit cluster. */
    void
    setHome(RegId reg, unsigned cluster)
    {
        MCA_ASSERT(cluster < numClusters_, "setHome: bad cluster");
        overrideOf(reg.cls)[reg.index] =
            static_cast<std::int8_t>(cluster);
    }

    /** Drop an explicit home, restoring the mod rule. */
    void
    clearHome(RegId reg)
    {
        overrideOf(reg.cls)[reg.index] = -1;
    }

    /** Count of registers whose effective home differs from `other`. */
    unsigned
    differingHomes(const RegisterMap &other) const
    {
        unsigned n = 0;
        for (unsigned ci = 0; ci < 2; ++ci) {
            const auto cls = static_cast<RegClass>(ci);
            for (unsigned i = 0; i < kNumArchRegs; ++i) {
                const RegId reg(cls, i);
                if (reg.isZero())
                    continue;
                const bool g1 = isGlobal(reg);
                const bool g2 = other.isGlobal(reg);
                if (g1 != g2) {
                    ++n;
                } else if (!g1 && !g2 &&
                           homeCluster(reg) != other.homeCluster(reg)) {
                    ++n;
                }
            }
        }
        return n;
    }

    /** True if the register is readable from within `cluster`. */
    bool
    accessibleFrom(RegId reg, unsigned cluster) const
    {
        return isGlobal(reg) || homeCluster(reg) == cluster;
    }

    /** Raw global-register mask of one class (checkpointing). */
    std::uint32_t globalMask(RegClass cls) const { return maskOf(cls); }

    /** Raw home override of one register, -1 = mod rule (checkpointing). */
    std::int8_t
    homeOverride(RegId reg) const
    {
        return overrideOf(reg.cls)[reg.index];
    }

    /** Number of local (non-global, non-zero) registers owned by cluster. */
    unsigned
    localRegCount(RegClass cls, unsigned cluster) const
    {
        unsigned n = 0;
        for (unsigned i = 0; i < kNumArchRegs; ++i) {
            RegId r(cls, i);
            if (!r.isZero() && !isGlobal(r) && homeCluster(r) == cluster)
                ++n;
        }
        return n;
    }

  private:
    std::uint32_t &
    mask(RegClass cls)
    {
        return cls == RegClass::Int ? intGlobalMask_ : fpGlobalMask_;
    }

    std::uint32_t
    maskOf(RegClass cls) const
    {
        return cls == RegClass::Int ? intGlobalMask_ : fpGlobalMask_;
    }

    std::array<std::int8_t, kNumArchRegs> &
    overrideOf(RegClass cls)
    {
        return cls == RegClass::Int ? intHome_ : fpHome_;
    }

    const std::array<std::int8_t, kNumArchRegs> &
    overrideOf(RegClass cls) const
    {
        return cls == RegClass::Int ? intHome_ : fpHome_;
    }

    unsigned numClusters_;
    std::uint32_t intGlobalMask_ = 0;
    std::uint32_t fpGlobalMask_ = 0;
    std::array<std::int8_t, kNumArchRegs> intHome_;
    std::array<std::int8_t, kNumArchRegs> fpHome_;
};

} // namespace mca::isa

#endif // MCA_ISA_REGISTERS_HH
