/**
 * @file
 * Memory-level interface and the set-associative cache level.
 *
 * The memory system is a chain of MemoryLevel objects (docs/memory.md):
 * each level answers `access()` with the cycle the data reaches its
 * requester, forwarding misses to the next level down. `Cache` is the
 * set-associative level with inverted-MSHR miss handling; standalone
 * (no next level) it reproduces the paper's flat model exactly: 64-KB
 * two-way set-associative instruction and data caches, a 16-cycle
 * fetch latency to a perfect next level, unlimited bandwidth, and an
 * inverted MSHR that places no restriction on the number of in-flight
 * misses (Farkas & Jouppi, ISCA'94). Misses to a block that is already
 * being fetched merge with the outstanding fill.
 *
 * Wired to a next level, a miss becomes a real request: the fill's
 * ready cycle comes from the level below, finite fill ports push it
 * back deterministically under contention (FillPorts), and evicting a
 * dirty victim sends write-back traffic down the chain.
 *
 * Every level is a timing model only: it tracks tags and
 * fill-completion cycles, not data.
 */

#ifndef MCA_MEM_CACHE_HH
#define MCA_MEM_CACHE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/io.hh"
#include "prof/prof.hh"
#include "support/panic.hh"
#include "support/stats.hh"
#include "support/types.hh"

namespace mca::mem
{

/** Which level of the hierarchy serviced an access (attribution). */
enum class ServiceLevel : unsigned
{
    L1 = 0,
    L2,
    Memory,
};

inline const char *
serviceLevelName(ServiceLevel level)
{
    switch (level) {
      case ServiceLevel::L1: return "l1";
      case ServiceLevel::L2: return "l2";
      case ServiceLevel::Memory: return "mem";
    }
    return "<bad-level>";
}

/** Configuration of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 32;
    /**
     * Latency of a fetch from the next memory level, used only when the
     * cache is standalone (no next level wired). In a MemorySystem the
     * level below supplies the fill timing instead.
     */
    unsigned missLatency = 16;
    /** True for write-allocate write-back data caches. */
    bool writeAllocate = true;
    /**
     * Miss-handling organization. 0 models the paper's inverted MSHR
     * (no restriction on in-flight misses); a nonzero value models an
     * explicit MSHR file with that many entries — a new miss while all
     * entries are busy is rejected and the requester must retry
     * (Farkas & Jouppi, ISCA'94 complexity/performance tradeoff).
     */
    unsigned mshrEntries = 0;
    /**
     * Extra cycles a hit at this level costs the requester. 0 for the
     * L1s (the core's load-use latency covers the hit path); nonzero
     * for a lower shared level (the L1-miss-to-L2-hit latency).
     */
    unsigned hitLatency = 0;
    /**
     * Fill ports: completed fills this level can accept per cycle.
     * 0 = unlimited (the paper's model). With N ports, the N+1-th fill
     * landing on the same cycle is pushed back deterministically.
     */
    unsigned fillPorts = 0;
};

/** Outcome of one access, at any level. */
struct AccessResult
{
    bool hit = false;
    /** True if the miss merged with an in-flight fill of the same block. */
    bool merged = false;
    /** True if an explicit MSHR file was full: retry later. */
    bool rejected = false;
    /** Cycle at which the data is available to the requester. */
    Cycle readyAt = 0;
    /** Deepest level that serviced the request (stall attribution). */
    ServiceLevel servedBy = ServiceLevel::L1;
};

/**
 * Finite fill bandwidth: each port accepts one completed fill per
 * cycle. schedule() books the desired completion cycle onto the
 * least-busy port (first port on ties — deterministic), pushing the
 * fill back only when every port is taken that cycle; with no
 * contention the result equals the request, so finite-but-uncontended
 * ports are timing-identical to unlimited ones.
 */
class FillPorts
{
  public:
    explicit FillPorts(unsigned ports = 0) { init(ports); }

    void init(unsigned ports) { busyUntil_.assign(ports, 0); }

    /** Book a fill that wants to complete at `ready`; returns the
     *  (possibly later) cycle it actually completes. */
    Cycle
    schedule(Cycle ready)
    {
        if (busyUntil_.empty())
            return ready; // unlimited
        auto port = std::min_element(busyUntil_.begin(), busyUntil_.end());
        const Cycle start = std::max(ready, *port);
        *port = start + 1;
        return start;
    }

    unsigned ports() const
    {
        return static_cast<unsigned>(busyUntil_.size());
    }

    /** Per-port next-free cycles (checkpointing). */
    const std::vector<Cycle> &busyUntil() const { return busyUntil_; }

    /** Overwrite the port schedule (checkpoint restore). */
    void
    restoreBusyUntil(const std::vector<Cycle> &busy)
    {
        MCA_ASSERT(busy.size() == busyUntil_.size(),
                   "fill port count mismatch on restore");
        busyUntil_ = busy;
    }

    /** Forget all port bookings (warm-state normalization). */
    void settle() { std::fill(busyUntil_.begin(), busyUntil_.end(), 0); }

  private:
    /** Cycle each port is next free (empty = unlimited). */
    std::vector<Cycle> busyUntil_;
};

/**
 * One level of the memory hierarchy. Levels form a chain (L1 -> L2 ->
 * memory); `access` returns the cycle the data reaches the requester,
 * recursing down the chain on a miss.
 */
class MemoryLevel : public ckpt::Checkpointable
{
  public:
    ~MemoryLevel() override = default;

    /**
     * Perform one access.
     *
     * @param addr  Effective byte address.
     * @param is_write  True for stores / write-backs from above.
     * @param now  Cycle the request arrives at this level.
     * @return hit/miss status, data-ready cycle, and servicing level.
     */
    virtual AccessResult access(Addr addr, bool is_write, Cycle now) = 0;

    /** True if the block containing addr is resident (no state change). */
    virtual bool probe(Addr addr) const = 0;

    /** Invalidate all blocks (testing support). */
    virtual void flush() = 0;

    /** Fills in flight at this level at `now` (observability). */
    virtual unsigned inFlight(Cycle now) const = 0;

    /**
     * Complete every in-flight fill immediately (warm-state restore:
     * the functional warmer's synthetic clock has no relation to the
     * restoring machine's, so pending fill times are normalized away).
     */
    virtual void settle() = 0;

    virtual const std::string &name() const = 0;
};

class Cache : public MemoryLevel
{
  public:
    /**
     * @param next  Level the cache misses to; nullptr = standalone
     *              (the flat paper model: fills take missLatency).
     * @param level Hierarchy position reported in AccessResult::servedBy
     *              for hits at this level.
     */
    Cache(std::string name, const CacheParams &params, StatGroup &stats,
          MemoryLevel *next = nullptr,
          ServiceLevel level = ServiceLevel::L1);

    AccessResult access(Addr addr, bool is_write, Cycle now) override;

    /**
     * Devirtualized L1-hit fast path for the cycle kernel's dominant
     * case: a resident line whose fill has landed. Semantically
     * identical to access() — the hit replicates the exact hit-path
     * mutations inline (access/hit counters, LRU touch via one
     * useClock_ bump, the dirty bit) and returns the same AccessResult
     * (servedBy = this level). Anything else — a miss, a merge with an
     * in-flight fill, the fast path disabled, or the host profiler
     * active (so per-region attribution stays exact) — falls through
     * to the virtual chain, which re-probes from scratch; the fall
     * through performs no state change, so exactly one probe mutates.
     */
    AccessResult
    accessFast(Addr addr, bool is_write, Cycle now)
    {
        if (!fastPath_ || prof::enabled())
            return access(addr, is_write, now);
        const std::uint64_t set = (addr >> blockShift_) & setMask_;
        const Addr tag = (addr >> blockShift_) >> setShift_;
        Line *ln = &lines_[set * params_.assoc];
        for (unsigned w = 0; w < params_.assoc; ++w, ++ln) {
            if (ln->valid && ln->tag == tag) {
                if (ln->fillReadyAt > now)
                    break; // in-flight merge: take the slow path
                ++*accesses_;
                ln->lastUse = ++useClock_;
                if (is_write)
                    ln->dirty = true;
                ++*hits_;
                return AccessResult{true, false, false,
                                    now + params_.hitLatency, level_};
            }
        }
        return access(addr, is_write, now);
    }

    /**
     * Disable (or re-enable) the inlined hit fast path, forcing every
     * access through the virtual chain; the differential tests compare
     * both configurations for bit-identity.
     */
    void setFastPath(bool on) { fastPath_ = on; }
    bool fastPathEnabled() const { return fastPath_; }

    bool probe(Addr addr) const override;

    /**
     * True if an access to addr at `now` would be rejected by a full
     * explicit MSHR file (always false with the inverted MSHR). Counts
     * a rejection; issue logic polls this before consuming resources.
     * Inline for the common inverted-MSHR configuration: the poll is
     * on the per-issue hot path and usually a single compare.
     */
    bool
    wouldReject(Addr addr, Cycle now)
    {
        if (params_.mshrEntries == 0)
            return false; // inverted MSHR: never rejects
        return wouldRejectSlow(addr, now);
    }

    void flush() override;

    const CacheParams &params() const { return params_; }
    const std::string &name() const override { return name_; }

    std::uint64_t accesses() const { return accesses_->value(); }
    std::uint64_t hits() const { return hits_->value(); }
    std::uint64_t misses() const { return misses_->value(); }
    std::uint64_t mergedMisses() const { return merged_->value(); }
    std::uint64_t writebacks() const { return writebacks_->value(); }
    std::uint64_t mshrRejections() const { return rejections_->value(); }

    /** Outstanding fills at `now` (diagnostics, MSHR accounting). */
    unsigned outstandingFills(Cycle now) const;

    /** Serialize tags, LRU clocks, and in-flight fills (not counters —
     *  those live in the StatGroup and checkpoint with it). */
    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;
    void settle() override;

    unsigned
    inFlight(Cycle now) const override
    {
        return outstandingFills(now);
    }

    double
    missRate() const
    {
        const auto a = accesses();
        return a == 0 ? 0.0 : static_cast<double>(misses()) /
                                  static_cast<double>(a);
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
        /** Fill completion cycle; <= access time once the fill lands. */
        Cycle fillReadyAt = 0;
        /** Level the in-flight (or last) fill was served from. */
        ServiceLevel fillFrom = ServiceLevel::Memory;
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    /** Reconstruct the base address of a resident line (write-backs). */
    Addr lineAddr(std::uint64_t set, Addr tag) const;

    /** Drop completed fills from the outstanding list. */
    void pruneOutstanding(Cycle now) const;

    /** Out-of-line MSHR-file poll (explicit-MSHR configs only). */
    bool wouldRejectSlow(Addr addr, Cycle now);

    std::string name_;
    /** Interned "mem.<name>" host-profiler region (see src/prof). */
    prof::RegionId profRegion_;
    CacheParams params_;
    MemoryLevel *next_;
    ServiceLevel level_;
    FillPorts fillPorts_;
    std::uint64_t numSets_;
    /** Shift/mask forms of the index math (block size and set count
     *  are asserted powers of two at construction). */
    unsigned blockShift_ = 0;
    unsigned setShift_ = 0;
    std::uint64_t setMask_ = 0;
    bool fastPath_ = true;
    std::vector<Line> lines_;   // numSets_ * assoc, row-major by set
    std::uint64_t useClock_ = 0;
    /** Fill-completion times of in-flight misses (mutable: pruning is
     *  bookkeeping, observable through const diagnostics). */
    mutable std::vector<Cycle> outstanding_;

    Counter *accesses_;
    Counter *hits_;
    Counter *misses_;
    Counter *merged_;
    Counter *writebacks_;
    Counter *rejections_;
};

} // namespace mca::mem

#endif // MCA_MEM_CACHE_HH
