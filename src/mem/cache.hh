/**
 * @file
 * Set-associative cache with inverted-MSHR miss handling.
 *
 * Models the paper's memory system: 64-KB two-way set-associative
 * instruction and data caches, a 16-cycle fetch latency to the next level,
 * unlimited bandwidth, and an inverted MSHR that places no restriction on
 * the number of in-flight misses (Farkas & Jouppi, ISCA'94). Misses to a
 * block that is already being fetched merge with the outstanding fill.
 *
 * The cache is a timing model only: it tracks tags and fill-completion
 * cycles, not data.
 */

#ifndef MCA_MEM_CACHE_HH
#define MCA_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "support/stats.hh"
#include "support/types.hh"

namespace mca::mem
{

/** Configuration of one cache. */
struct CacheParams
{
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 32;
    /** Latency of a fetch from the next memory level. */
    unsigned missLatency = 16;
    /** True for write-allocate write-back data caches. */
    bool writeAllocate = true;
    /**
     * Miss-handling organization. 0 models the paper's inverted MSHR
     * (no restriction on in-flight misses); a nonzero value models an
     * explicit MSHR file with that many entries — a new miss while all
     * entries are busy is rejected and the requester must retry
     * (Farkas & Jouppi, ISCA'94 complexity/performance tradeoff).
     */
    unsigned mshrEntries = 0;
};

/** Outcome of one cache access. */
struct AccessResult
{
    bool hit = false;
    /** True if the miss merged with an in-flight fill of the same block. */
    bool merged = false;
    /** True if an explicit MSHR file was full: retry later. */
    bool rejected = false;
    /** Cycle at which the data is available to the requester. */
    Cycle readyAt = 0;
};

class Cache
{
  public:
    Cache(std::string name, const CacheParams &params, StatGroup &stats);

    /**
     * Perform one access.
     *
     * @param addr  Effective byte address.
     * @param is_write  True for stores.
     * @param now  Current cycle.
     * @return hit/miss status and data-ready cycle.
     */
    AccessResult access(Addr addr, bool is_write, Cycle now);

    /** True if the block containing addr is resident (no state change). */
    bool probe(Addr addr) const;

    /**
     * True if an access to addr at `now` would be rejected by a full
     * explicit MSHR file (always false with the inverted MSHR). Counts
     * a rejection; issue logic polls this before consuming resources.
     */
    bool wouldReject(Addr addr, Cycle now);

    /** Invalidate all blocks (testing support). */
    void flush();

    const CacheParams &params() const { return params_; }

    std::uint64_t accesses() const { return accesses_->value(); }
    std::uint64_t hits() const { return hits_->value(); }
    std::uint64_t misses() const { return misses_->value(); }
    std::uint64_t mergedMisses() const { return merged_->value(); }
    std::uint64_t writebacks() const { return writebacks_->value(); }
    std::uint64_t mshrRejections() const { return rejections_->value(); }

    /** Outstanding fills at `now` (diagnostics). */
    unsigned outstandingFills(Cycle now);

    double
    missRate() const
    {
        const auto a = accesses();
        return a == 0 ? 0.0 : static_cast<double>(misses()) /
                                  static_cast<double>(a);
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
        /** Fill completion cycle; <= access time once the fill lands. */
        Cycle fillReadyAt = 0;
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    /** Drop completed fills from the outstanding list. */
    void pruneOutstanding(Cycle now);

    CacheParams params_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;   // numSets_ * assoc, row-major by set
    std::uint64_t useClock_ = 0;
    /** Fill-completion times of in-flight misses (explicit MSHR). */
    std::vector<Cycle> outstanding_;

    Counter *accesses_;
    Counter *hits_;
    Counter *misses_;
    Counter *merged_;
    Counter *writebacks_;
    Counter *rejections_;
};

} // namespace mca::mem

#endif // MCA_MEM_CACHE_HH
