#include "mem/cache.hh"

#include <algorithm>

#include "support/panic.hh"

namespace mca::mem
{

namespace
{

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

Cache::Cache(std::string name, const CacheParams &params, StatGroup &stats)
    : params_(params)
{
    MCA_ASSERT(isPowerOfTwo(params.blockBytes), "block size not 2^n");
    MCA_ASSERT(params.assoc >= 1, "associativity must be >= 1");
    MCA_ASSERT(params.sizeBytes % (params.blockBytes * params.assoc) == 0,
               "cache size not divisible by (block * assoc)");
    numSets_ = params.sizeBytes / (params.blockBytes * params.assoc);
    MCA_ASSERT(isPowerOfTwo(numSets_), "set count not 2^n");
    lines_.resize(numSets_ * params.assoc);

    accesses_ = &stats.counter(name + ".accesses", "cache accesses");
    hits_ = &stats.counter(name + ".hits", "cache hits");
    misses_ = &stats.counter(name + ".misses", "cache misses");
    merged_ = &stats.counter(name + ".merged_misses",
                             "misses merged with in-flight fills");
    writebacks_ = &stats.counter(name + ".writebacks",
                                 "dirty blocks written back");
    rejections_ = &stats.counter(
        name + ".mshr_reject_polls",
        "retry polls rejected by a full MSHR (per blocked cycle)");
}

void
Cache::pruneOutstanding(Cycle now)
{
    auto it = std::remove_if(outstanding_.begin(), outstanding_.end(),
                             [&](Cycle c) { return c <= now; });
    outstanding_.erase(it, outstanding_.end());
}

unsigned
Cache::outstandingFills(Cycle now)
{
    pruneOutstanding(now);
    return static_cast<unsigned>(outstanding_.size());
}

bool
Cache::wouldReject(Addr addr, Cycle now)
{
    if (params_.mshrEntries == 0)
        return false; // inverted MSHR: never rejects
    pruneOutstanding(now);
    if (outstanding_.size() < params_.mshrEntries)
        return false;
    // A hit or a merge with an in-flight fill needs no new entry.
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == tag)
            return false;
    }
    ++*rejections_;
    return true;
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr / params_.blockBytes) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return (addr / params_.blockBytes) / numSets_;
}

bool
Cache::probe(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

AccessResult
Cache::access(Addr addr, bool is_write, Cycle now)
{
    ++*accesses_;
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *victim = nullptr;

    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == tag) {
            line.lastUse = ++useClock_;
            if (is_write)
                line.dirty = true;
            if (line.fillReadyAt > now) {
                // Block still in flight: merge with the outstanding fill
                // (the inverted MSHR tracks any number of these).
                ++*misses_;
                ++*merged_;
                return AccessResult{false, true, false, line.fillReadyAt};
            }
            ++*hits_;
            return AccessResult{true, false, false, now};
        }
        if (!victim || !line.valid ||
            (victim->valid && line.lastUse < victim->lastUse)) {
            if (!victim || victim->valid)
                victim = &line;
        }
    }

    // Miss: allocate (loads always; stores per write-allocate policy).
    MCA_ASSERT(params_.mshrEntries == 0 ||
                   outstandingFills(now) < params_.mshrEntries,
               "access during MSHR-full; callers must poll wouldReject");
    ++*misses_;
    const Cycle ready = now + params_.missLatency;
    if (params_.mshrEntries != 0)
        outstanding_.push_back(ready);
    if (!is_write || params_.writeAllocate) {
        MCA_ASSERT(victim != nullptr, "no victim line found");
        if (victim->valid && victim->dirty)
            ++*writebacks_;
        victim->valid = true;
        victim->dirty = is_write;
        victim->tag = tag;
        victim->lastUse = ++useClock_;
        victim->fillReadyAt = ready;
    }
    return AccessResult{false, false, false, ready};
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
    useClock_ = 0;
}

} // namespace mca::mem
