#include "mem/cache.hh"

#include <algorithm>
#include <stdexcept>

#include "support/panic.hh"

namespace mca::mem
{

namespace
{

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

Cache::Cache(std::string name, const CacheParams &params, StatGroup &stats,
             MemoryLevel *next, ServiceLevel level)
    : name_(std::move(name)), profRegion_(prof::internRegion("mem." + name_)),
      params_(params), next_(next), level_(level),
      fillPorts_(params.fillPorts)
{
    MCA_ASSERT(isPowerOfTwo(params.blockBytes), "block size not 2^n");
    MCA_ASSERT(params.assoc >= 1, "associativity must be >= 1");
    MCA_ASSERT(params.sizeBytes % (params.blockBytes * params.assoc) == 0,
               "cache size not divisible by (block * assoc)");
    numSets_ = params.sizeBytes / (params.blockBytes * params.assoc);
    MCA_ASSERT(isPowerOfTwo(numSets_), "set count not 2^n");
    lines_.resize(numSets_ * params.assoc);
    while ((std::uint64_t{1} << blockShift_) < params.blockBytes)
        ++blockShift_;
    while ((std::uint64_t{1} << setShift_) < numSets_)
        ++setShift_;
    setMask_ = numSets_ - 1;

    accesses_ = &stats.counter(name_ + ".accesses", "cache accesses");
    hits_ = &stats.counter(name_ + ".hits", "cache hits");
    misses_ = &stats.counter(name_ + ".misses", "cache misses");
    merged_ = &stats.counter(name_ + ".merged_misses",
                             "misses merged with in-flight fills");
    writebacks_ = &stats.counter(name_ + ".writebacks",
                                 "dirty blocks written back");
    rejections_ = &stats.counter(
        name_ + ".mshr_reject_polls",
        "retry polls rejected by a full MSHR (per blocked cycle)");
}

void
Cache::pruneOutstanding(Cycle now) const
{
    auto it = std::remove_if(outstanding_.begin(), outstanding_.end(),
                             [&](Cycle c) { return c <= now; });
    outstanding_.erase(it, outstanding_.end());
}

unsigned
Cache::outstandingFills(Cycle now) const
{
    pruneOutstanding(now);
    return static_cast<unsigned>(outstanding_.size());
}

bool
Cache::wouldRejectSlow(Addr addr, Cycle now)
{
    pruneOutstanding(now);
    if (outstanding_.size() < params_.mshrEntries)
        return false;
    // A hit or a merge with an in-flight fill needs no new entry.
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == tag)
            return false;
    }
    ++*rejections_;
    return true;
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> blockShift_) & setMask_;
}

Addr
Cache::tagOf(Addr addr) const
{
    return (addr >> blockShift_) >> setShift_;
}

Addr
Cache::lineAddr(std::uint64_t set, Addr tag) const
{
    return (tag * numSets_ + set) * params_.blockBytes;
}

bool
Cache::probe(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

AccessResult
Cache::access(Addr addr, bool is_write, Cycle now)
{
    prof::ScopeTimer prof_scope(profRegion_);
    ++*accesses_;
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *victim = nullptr;

    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == tag) {
            line.lastUse = ++useClock_;
            if (is_write)
                line.dirty = true;
            if (line.fillReadyAt > now) {
                // Block still in flight: merge with the outstanding fill
                // (the inverted MSHR tracks any number of these).
                ++*misses_;
                ++*merged_;
                return AccessResult{false, true, false, line.fillReadyAt,
                                    line.fillFrom};
            }
            ++*hits_;
            return AccessResult{true, false, false,
                                now + params_.hitLatency, level_};
        }
        if (!victim || !line.valid ||
            (victim->valid && line.lastUse < victim->lastUse)) {
            if (!victim || victim->valid)
                victim = &line;
        }
    }

    // Miss: allocate (loads always; stores per write-allocate policy).
    MCA_ASSERT(params_.mshrEntries == 0 ||
                   outstandingFills(now) < params_.mshrEntries,
               "access during MSHR-full; callers must poll wouldReject");
    ++*misses_;
    // Keep the in-flight list compact even when nobody polls it
    // (inverted MSHR with observability off).
    if (outstanding_.size() >= 64)
        pruneOutstanding(now);
    const bool allocating = !is_write || params_.writeAllocate;

    if (!allocating) {
        // Write-around: the store itself flows to the next level.
        Cycle ready = now + params_.missLatency;
        ServiceLevel from = ServiceLevel::Memory;
        if (next_) {
            const AccessResult down = next_->access(addr, true, now);
            ready = down.readyAt + params_.hitLatency;
            from = down.servedBy;
        }
        if (params_.mshrEntries != 0)
            outstanding_.push_back(ready);
        return AccessResult{false, false, false, ready, from};
    }

    MCA_ASSERT(victim != nullptr, "no victim line found");
    if (victim->valid && victim->dirty) {
        ++*writebacks_;
        // Write-back traffic: the dirty victim is sent down the chain
        // before the demand fetch (deterministic request order).
        if (next_)
            next_->access(lineAddr(set, victim->tag), true, now);
    }

    Cycle fillWants = now + params_.missLatency;
    ServiceLevel from = ServiceLevel::Memory;
    if (next_) {
        const AccessResult down = next_->access(addr, false, now);
        // This level's own lookup (hitLatency) is paid on the miss path
        // too; zero for the L1s, so paper mode is unchanged.
        fillWants = down.readyAt + params_.hitLatency;
        from = down.servedBy;
    }
    const Cycle ready = fillPorts_.schedule(fillWants);
    outstanding_.push_back(ready);

    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lastUse = ++useClock_;
    victim->fillReadyAt = ready;
    victim->fillFrom = from;
    return AccessResult{false, false, false, ready, from};
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
    useClock_ = 0;
    outstanding_.clear();
}

void
Cache::saveState(ckpt::Writer &w) const
{
    w.u64(useClock_);
    w.u64(lines_.size());
    for (const Line &line : lines_) {
        w.b(line.valid);
        w.b(line.dirty);
        w.u64(line.tag);
        w.u64(line.lastUse);
        w.u64(line.fillReadyAt);
        w.u8(static_cast<std::uint8_t>(line.fillFrom));
    }
    w.u64(outstanding_.size());
    for (Cycle c : outstanding_)
        w.u64(c);
    w.u64(fillPorts_.busyUntil().size());
    for (Cycle c : fillPorts_.busyUntil())
        w.u64(c);
}

void
Cache::loadState(ckpt::Reader &r)
{
    useClock_ = r.u64();
    const std::uint64_t nlines = r.u64();
    if (nlines != lines_.size())
        throw std::runtime_error(
            "checkpoint: cache '" + name_ + "' has " +
            std::to_string(lines_.size()) + " lines, snapshot has " +
            std::to_string(nlines));
    for (Line &line : lines_) {
        line.valid = r.b();
        line.dirty = r.b();
        line.tag = r.u64();
        line.lastUse = r.u64();
        line.fillReadyAt = r.u64();
        line.fillFrom = static_cast<ServiceLevel>(r.u8());
    }
    outstanding_.resize(r.u64());
    for (Cycle &c : outstanding_)
        c = r.u64();
    std::vector<Cycle> busy(r.u64());
    for (Cycle &c : busy)
        c = r.u64();
    fillPorts_.restoreBusyUntil(busy);
}

void
Cache::settle()
{
    for (Line &line : lines_)
        line.fillReadyAt = 0;
    outstanding_.clear();
    fillPorts_.settle();
}

} // namespace mca::mem
