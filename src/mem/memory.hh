/**
 * @file
 * The composed memory hierarchy: L1I/L1D -> optional shared L2 ->
 * fixed-latency memory backside.
 *
 * MemorySystem owns the whole chain and hands the core references to
 * the two L1 levels; everything below them is reached through the
 * MemoryLevel chain, never directly. The default MemoryParams is
 * *paper mode*: no L2, a 16-cycle perfect backside, unlimited fill
 * ports — cycle-for-cycle identical to the flat model the paper's
 * evaluation machine uses (see docs/memory.md for the equivalence
 * argument and the sensitivity campaign built on top of this layer).
 */

#ifndef MCA_MEM_MEMORY_HH
#define MCA_MEM_MEMORY_HH

#include <memory>
#include <string>

#include "mem/cache.hh"
#include "support/stats.hh"
#include "support/types.hh"

namespace mca::mem
{

/** Configuration of the full memory hierarchy. */
struct MemoryParams
{
    CacheParams icache{64 * 1024, 2, 32, 16, true};
    CacheParams dcache{64 * 1024, 2, 32, 16, true};

    /** Shared second-level cache size in bytes; 0 disables the L2
     *  entirely (paper mode). */
    std::uint64_t l2SizeBytes = 0;
    unsigned l2Assoc = 8;
    unsigned l2BlockBytes = 32;
    /** L1-miss-to-L2-hit latency (the L2's lookup cost). */
    unsigned l2HitLatency = 6;
    /** Fills per cycle the L2 accepts; 0 = unlimited. */
    unsigned l2FillPorts = 0;

    /** Flat latency of the memory backside. Paper mode: 16 cycles. */
    unsigned memLatency = 16;
    /** Concurrent read completions per cycle at the backside;
     *  0 = unlimited (paper mode). */
    unsigned memPorts = 0;

    bool hasL2() const { return l2SizeBytes != 0; }
};

/**
 * The fixed-latency backside: every read is serviced in `latency`
 * cycles, subject to finite read-completion ports; writes (stores
 * that miss write-around caches, write-backs) are absorbed by an
 * infinite write buffer and only counted.
 */
class FixedLatencyMemory : public MemoryLevel
{
  public:
    FixedLatencyMemory(std::string name, unsigned latency, unsigned ports,
                       StatGroup &stats);

    AccessResult access(Addr addr, bool is_write, Cycle now) override;

    bool probe(Addr) const override { return true; }

    void flush() override { outstanding_.clear(); }

    unsigned inFlight(Cycle now) const override;

    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

    void
    settle() override
    {
        outstanding_.clear();
        ports_.settle();
    }

    const std::string &name() const override { return name_; }

    std::uint64_t reads() const { return reads_->value(); }
    std::uint64_t writes() const { return writes_->value(); }

  private:
    std::string name_;
    /** Interned "mem.<name>" host-profiler region (see src/prof). */
    prof::RegionId profRegion_;
    unsigned latency_;
    FillPorts ports_;
    mutable std::vector<Cycle> outstanding_;

    Counter *reads_;
    Counter *writes_;
};

/**
 * The full hierarchy. Construction wires the chain:
 *
 *   icache ─┐                        ┌─ (no L2, paper mode)
 *           ├─ [shared L2] ─ memory  │
 *   dcache ─┘                        └─ icache/dcache -> memory
 */
class MemorySystem
{
  public:
    MemorySystem(const MemoryParams &params, StatGroup &stats);

    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }
    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }

    /** nullptr when the hierarchy has no L2 (paper mode). */
    Cache *l2() { return l2_.get(); }
    const Cache *l2() const { return l2_.get(); }

    FixedLatencyMemory &memory() { return mem_; }
    const FixedLatencyMemory &memory() const { return mem_; }

    const MemoryParams &params() const { return params_; }
    bool hasL2() const { return l2_ != nullptr; }

    /** Invalidate every level (testing support). */
    void flush();

    /** Serialize every level, L1s through the backside. */
    void saveState(ckpt::Writer &w) const;
    void loadState(ckpt::Reader &r);

    /** Complete all in-flight fills at every level (warm restore). */
    void settle();

  private:
    MemoryParams params_;
    FixedLatencyMemory mem_;
    std::unique_ptr<Cache> l2_; // allocated only when params.hasL2()
    Cache icache_;
    Cache dcache_;
};

} // namespace mca::mem

#endif // MCA_MEM_MEMORY_HH
