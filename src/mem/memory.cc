#include "mem/memory.hh"

#include <algorithm>
#include <stdexcept>

namespace mca::mem
{

FixedLatencyMemory::FixedLatencyMemory(std::string name, unsigned latency,
                                       unsigned ports, StatGroup &stats)
    : name_(std::move(name)), profRegion_(prof::internRegion("mem." + name_)),
      latency_(latency), ports_(ports)
{
    reads_ = &stats.counter(name_ + ".reads",
                            "block fetches serviced by the backside");
    writes_ = &stats.counter(name_ + ".writes",
                             "write-backs/stores absorbed by the backside");
}

AccessResult
FixedLatencyMemory::access(Addr, bool is_write, Cycle now)
{
    prof::ScopeTimer prof_scope(profRegion_);
    if (is_write) {
        // Infinite write buffer: absorbed immediately, counted only.
        ++*writes_;
        return AccessResult{true, false, false, now, ServiceLevel::Memory};
    }
    ++*reads_;
    if (outstanding_.size() >= 64)
        inFlight(now); // amortized prune
    const Cycle ready = ports_.schedule(now + latency_);
    outstanding_.push_back(ready);
    return AccessResult{true, false, false, ready, ServiceLevel::Memory};
}

unsigned
FixedLatencyMemory::inFlight(Cycle now) const
{
    auto it = std::remove_if(outstanding_.begin(), outstanding_.end(),
                             [&](Cycle c) { return c <= now; });
    outstanding_.erase(it, outstanding_.end());
    return static_cast<unsigned>(outstanding_.size());
}

namespace
{

CacheParams
l2CacheParams(const MemoryParams &p)
{
    CacheParams cp;
    cp.sizeBytes = p.l2SizeBytes;
    cp.assoc = p.l2Assoc;
    cp.blockBytes = p.l2BlockBytes;
    cp.missLatency = p.memLatency; // unused once chained; kept coherent
    cp.writeAllocate = true;
    cp.mshrEntries = 0; // the shared level keeps the inverted MSHR
    cp.hitLatency = p.l2HitLatency;
    cp.fillPorts = p.l2FillPorts;
    return cp;
}

} // namespace

MemorySystem::MemorySystem(const MemoryParams &params, StatGroup &stats)
    : params_(params),
      mem_("mem", params.memLatency, params.memPorts, stats),
      l2_(params.hasL2()
              ? std::make_unique<Cache>("l2", l2CacheParams(params), stats,
                                        &mem_, ServiceLevel::L2)
              : nullptr),
      icache_("icache", params.icache, stats,
              l2_ ? static_cast<MemoryLevel *>(l2_.get()) : &mem_,
              ServiceLevel::L1),
      dcache_("dcache", params.dcache, stats,
              l2_ ? static_cast<MemoryLevel *>(l2_.get()) : &mem_,
              ServiceLevel::L1)
{
}

void
MemorySystem::flush()
{
    icache_.flush();
    dcache_.flush();
    if (l2_)
        l2_->flush();
    mem_.flush();
}

void
FixedLatencyMemory::saveState(ckpt::Writer &w) const
{
    w.u64(outstanding_.size());
    for (Cycle c : outstanding_)
        w.u64(c);
    w.u64(ports_.busyUntil().size());
    for (Cycle c : ports_.busyUntil())
        w.u64(c);
}

void
FixedLatencyMemory::loadState(ckpt::Reader &r)
{
    outstanding_.resize(r.u64());
    for (Cycle &c : outstanding_)
        c = r.u64();
    std::vector<Cycle> busy(r.u64());
    for (Cycle &c : busy)
        c = r.u64();
    ports_.restoreBusyUntil(busy);
}

void
MemorySystem::saveState(ckpt::Writer &w) const
{
    w.b(hasL2());
    icache_.saveState(w);
    dcache_.saveState(w);
    if (l2_)
        l2_->saveState(w);
    mem_.saveState(w);
}

void
MemorySystem::loadState(ckpt::Reader &r)
{
    const bool had_l2 = r.b();
    if (had_l2 != hasL2())
        throw std::runtime_error(
            "checkpoint: L2 presence mismatch between snapshot and "
            "restoring hierarchy");
    icache_.loadState(r);
    dcache_.loadState(r);
    if (l2_)
        l2_->loadState(r);
    mem_.loadState(r);
}

void
MemorySystem::settle()
{
    icache_.settle();
    dcache_.settle();
    if (l2_)
        l2_->settle();
    mem_.settle();
}

} // namespace mca::mem
