#include "support/log.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace mca::log
{

namespace
{

Level
initialThreshold()
{
    if (const char *env = std::getenv("MCA_LOG_LEVEL")) {
        Level parsed;
        if (parseLevel(env, parsed))
            return parsed;
        std::fprintf(stderr, "warn: MCA_LOG_LEVEL '%s' not recognized; "
                             "using 'info'\n", env);
    }
    return Level::Info;
}

std::atomic<Level> &
thresholdFlag()
{
    static std::atomic<Level> level{initialThreshold()};
    return level;
}

std::mutex &
writeMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

Level
threshold()
{
    return thresholdFlag().load(std::memory_order_relaxed);
}

void
setThreshold(Level level)
{
    thresholdFlag().store(level, std::memory_order_relaxed);
}

bool
parseLevel(std::string_view text, Level &out)
{
    if (text == "debug") out = Level::Debug;
    else if (text == "info") out = Level::Info;
    else if (text == "warn") out = Level::Warn;
    else if (text == "error") out = Level::Error;
    else if (text == "off") out = Level::Off;
    else return false;
    return true;
}

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Debug: return "debug";
      case Level::Info: return "info";
      case Level::Warn: return "warn";
      case Level::Error: return "error";
      case Level::Off: return "off";
    }
    return "?";
}

void
write(Level level, std::string_view component, const std::string &msg)
{
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch()).count() % 1000;
    std::tm tm{};
    localtime_r(&secs, &tm);

    std::lock_guard<std::mutex> lock(writeMutex());
    std::fprintf(stderr, "[%02d:%02d:%02d.%03d] %-5s %.*s: %s\n",
                 tm.tm_hour, tm.tm_min, tm.tm_sec, static_cast<int>(ms),
                 levelName(level), static_cast<int>(component.size()),
                 component.data(), msg.c_str());
}

} // namespace mca::log
