/**
 * @file
 * Fundamental scalar types shared across the multicluster reproduction.
 */

#ifndef MCA_SUPPORT_TYPES_HH
#define MCA_SUPPORT_TYPES_HH

#include <cstdint>

namespace mca
{

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Byte address in the simulated address space. */
using Addr = std::uint64_t;

/** Unique, monotonically increasing dynamic instruction sequence number. */
using InstSeq = std::uint64_t;

/** Sentinel for "no cycle" / "not yet scheduled". */
inline constexpr Cycle kNoCycle = ~Cycle{0};

/** Sentinel for invalid sequence numbers. */
inline constexpr InstSeq kNoSeq = ~InstSeq{0};

} // namespace mca

#endif // MCA_SUPPORT_TYPES_HH
