/**
 * @file
 * Saturating counter used by the branch predictors.
 */

#ifndef MCA_SUPPORT_SAT_COUNTER_HH
#define MCA_SUPPORT_SAT_COUNTER_HH

#include <cstdint>

#include "support/panic.hh"

namespace mca
{

/**
 * An n-bit saturating up/down counter.
 *
 * The counter saturates at [0, 2^bits - 1]. For 2-bit predictor entries the
 * conventional "predict taken" test is value >= 2 (weakly taken).
 */
class SatCounter
{
  public:
    explicit SatCounter(unsigned bits = 2, std::uint8_t initial = 0)
        : max_(static_cast<std::uint8_t>((1u << bits) - 1)), value_(initial)
    {
        MCA_ASSERT(bits >= 1 && bits <= 8, "counter width out of range");
        MCA_ASSERT(initial <= max_, "initial value exceeds saturation");
    }

    void increment() { if (value_ < max_) ++value_; }
    void decrement() { if (value_ > 0) --value_; }

    /** Train toward taken (true) or not-taken (false). */
    void train(bool taken) { taken ? increment() : decrement(); }

    std::uint8_t value() const { return value_; }
    std::uint8_t saturation() const { return max_; }

    /** Overwrite the count (checkpoint restore). */
    void
    setValue(std::uint8_t v)
    {
        MCA_ASSERT(v <= max_, "restored value exceeds saturation");
        value_ = v;
    }

    /** MSB test: true in the upper half of the range. */
    bool predictTaken() const { return value_ > max_ / 2; }

  private:
    std::uint8_t max_;
    std::uint8_t value_;
};

} // namespace mca

#endif // MCA_SUPPORT_SAT_COUNTER_HH
