/**
 * @file
 * Fixed-capacity object pool ("arena slab") with generation-checked
 * handles.
 *
 * The cycle kernel keeps its in-flight instruction records in one
 * contiguous slab per machine instead of heap-allocated nodes: the
 * retire window bounds the live population, so a SlabPool sized to the
 * window never allocates after construction, and every pipeline stage
 * that walks instructions touches one array. References into the slab
 * are dense 32-bit handles carrying a generation counter; freeing a
 * slot bumps its generation, so a stale handle held across reuse can
 * never alias the new occupant — tryGet() returns nullptr instead
 * (see docs/architecture.md, "cycle kernel anatomy").
 *
 * Allocation order is deterministic (LIFO free list), which the
 * bit-identity harness relies on: two runs of the same workload
 * produce the same handle sequence.
 */

#ifndef MCA_SUPPORT_ARENA_HH
#define MCA_SUPPORT_ARENA_HH

#include <cstdint>
#include <vector>

#include "support/panic.hh"

namespace mca
{

/**
 * Handle into a SlabPool: slot index plus the slot's generation at
 * allocation time. Value type, trivially copyable, totally ordered so
 * it can key sorted containers in tests.
 */
struct PoolHandle
{
    std::uint32_t idx = kInvalidIdx;
    std::uint32_t gen = 0;

    static constexpr std::uint32_t kInvalidIdx = ~std::uint32_t{0};

    bool valid() const { return idx != kInvalidIdx; }

    friend bool
    operator==(const PoolHandle &a, const PoolHandle &b)
    {
        return a.idx == b.idx && a.gen == b.gen;
    }
    friend bool
    operator!=(const PoolHandle &a, const PoolHandle &b)
    {
        return !(a == b);
    }
    friend bool
    operator<(const PoolHandle &a, const PoolHandle &b)
    {
        return a.idx != b.idx ? a.idx < b.idx : a.gen < b.gen;
    }
};

/** Sentinel "no instruction" handle. */
inline constexpr PoolHandle kNoHandle{};

template <typename T>
class SlabPool
{
  public:
    using Handle = PoolHandle;

    explicit SlabPool(std::size_t capacity)
        : slots_(capacity), gens_(capacity, 0), live_(capacity, 0)
    {
        MCA_ASSERT(capacity > 0 && capacity < Handle::kInvalidIdx,
                   "slab pool capacity out of range");
        freeList_.reserve(capacity);
        // LIFO free list popping from the back: seed it in reverse so
        // the first allocations hand out slots 0, 1, 2, ...
        for (std::size_t i = capacity; i-- > 0;)
            freeList_.push_back(static_cast<std::uint32_t>(i));
    }

    std::size_t capacity() const { return slots_.size(); }
    std::size_t size() const { return slots_.size() - freeList_.size(); }
    bool full() const { return freeList_.empty(); }

    /** Allocate a slot; the object keeps whatever state it last had
     *  (callers reset it). The pool must not be full. */
    Handle
    alloc()
    {
        MCA_ASSERT(!freeList_.empty(), "slab pool exhausted");
        const std::uint32_t idx = freeList_.back();
        freeList_.pop_back();
        live_[idx] = 1;
        return Handle{idx, gens_[idx]};
    }

    /** Release a slot; bumps the generation so the handle goes stale. */
    void
    free(Handle h)
    {
        MCA_ASSERT(isLive(h), "freeing a stale or dead pool handle");
        ++gens_[h.idx];
        live_[h.idx] = 0;
        freeList_.push_back(h.idx);
    }

    /** True if `h` names the current occupant of its slot. */
    bool
    isLive(Handle h) const
    {
        return h.idx < slots_.size() && live_[h.idx] &&
               gens_[h.idx] == h.gen;
    }

    /** Resolve a handle known to be live (asserted). */
    T &
    get(Handle h)
    {
        MCA_ASSERT(isLive(h), "dereference of stale pool handle (idx ",
                   h.idx, " gen ", h.gen, ")");
        return slots_[h.idx];
    }

    const T &
    get(Handle h) const
    {
        MCA_ASSERT(isLive(h), "dereference of stale pool handle (idx ",
                   h.idx, " gen ", h.gen, ")");
        return slots_[h.idx];
    }

    /** Resolve a possibly stale handle: nullptr once the slot was
     *  freed or reused (generation mismatch). */
    T *
    tryGet(Handle h)
    {
        return isLive(h) ? &slots_[h.idx] : nullptr;
    }

    const T *
    tryGet(Handle h) const
    {
        return isLive(h) ? &slots_[h.idx] : nullptr;
    }

    /** Free every live slot (checkpoint restore). Generations keep
     *  counting up, so handles from before the clear stay stale. */
    void
    clear()
    {
        for (std::uint32_t i = 0; i < slots_.size(); ++i)
            if (live_[i])
                free(Handle{i, gens_[i]});
    }

  private:
    std::vector<T> slots_;
    std::vector<std::uint32_t> gens_;
    std::vector<std::uint8_t> live_;
    std::vector<std::uint32_t> freeList_;
};

} // namespace mca

#endif // MCA_SUPPORT_ARENA_HH
