/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the reproduction (workload generation,
 * branch-outcome models, address streams) draws from an explicitly seeded
 * Rng so that whole experiments are bit-reproducible. The generator is
 * xoshiro256** seeded through splitmix64, which gives high-quality streams
 * even from small integer seeds.
 */

#ifndef MCA_SUPPORT_RANDOM_HH
#define MCA_SUPPORT_RANDOM_HH

#include <array>
#include <cstdint>

namespace mca
{

/** Seedable xoshiro256** generator with convenience draw helpers. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a single 64-bit seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

    /**
     * Geometric-ish draw: number of successes before failure, capped.
     * Used for run lengths in branch/trip-count models.
     */
    std::uint64_t nextGeometric(double p_continue, std::uint64_t cap);

    /** Fork a child generator with a decorrelated seed stream. */
    Rng fork();

    /** Raw xoshiro256** state words (checkpointing). */
    std::array<std::uint64_t, 4>
    rawState() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }

    /** Overwrite the state words (checkpoint restore). */
    void
    setRawState(const std::array<std::uint64_t, 4> &s)
    {
        for (unsigned i = 0; i < 4; ++i)
            s_[i] = s[i];
    }

  private:
    std::uint64_t s_[4];
};

} // namespace mca

#endif // MCA_SUPPORT_RANDOM_HH
