/**
 * @file
 * Dynamic bitset for dataflow sets (liveness, interference).
 */

#ifndef MCA_SUPPORT_BITSET_HH
#define MCA_SUPPORT_BITSET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/panic.hh"

namespace mca
{

class BitSet
{
  public:
    BitSet() = default;

    explicit BitSet(std::size_t nbits)
        : nbits_(nbits), words_((nbits + 63) / 64, 0)
    {}

    std::size_t size() const { return nbits_; }

    void
    set(std::size_t i)
    {
        MCA_ASSERT(i < nbits_, "bitset index out of range");
        words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
    }

    void
    reset(std::size_t i)
    {
        MCA_ASSERT(i < nbits_, "bitset index out of range");
        words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    bool
    test(std::size_t i) const
    {
        MCA_ASSERT(i < nbits_, "bitset index out of range");
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void
    clear()
    {
        for (auto &w : words_)
            w = 0;
    }

    /** this |= other; returns true if any bit changed. */
    bool
    unionWith(const BitSet &other)
    {
        MCA_ASSERT(nbits_ == other.nbits_, "bitset size mismatch");
        bool changed = false;
        for (std::size_t i = 0; i < words_.size(); ++i) {
            const std::uint64_t before = words_[i];
            words_[i] |= other.words_[i];
            changed |= (words_[i] != before);
        }
        return changed;
    }

    /** this &= ~other. */
    void
    subtract(const BitSet &other)
    {
        MCA_ASSERT(nbits_ == other.nbits_, "bitset size mismatch");
        for (std::size_t i = 0; i < words_.size(); ++i)
            words_[i] &= ~other.words_[i];
    }

    bool
    operator==(const BitSet &other) const
    {
        return nbits_ == other.nbits_ && words_ == other.words_;
    }

    std::size_t
    count() const
    {
        std::size_t n = 0;
        for (auto w : words_)
            n += static_cast<std::size_t>(__builtin_popcountll(w));
        return n;
    }

    /** Invoke fn(index) for every set bit, in increasing index order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t w = words_[wi];
            while (w) {
                const int bit = __builtin_ctzll(w);
                fn(wi * 64 + static_cast<std::size_t>(bit));
                w &= w - 1;
            }
        }
    }

  private:
    std::size_t nbits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace mca

#endif // MCA_SUPPORT_BITSET_HH
