#include "support/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/panic.hh"

namespace mca
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    MCA_ASSERT(header_.empty() || cells.size() == header_.size(),
               "table row width mismatch");
    rows_.push_back(std::move(cells));
}

void
TextTable::separator()
{
    rows_.emplace_back();
}

void
TextTable::print(std::ostream &os) const
{
    const std::size_t ncols = header_.size();
    std::vector<std::size_t> widths(ncols, 0);
    for (std::size_t c = 0; c < ncols; ++c)
        widths[c] = header_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto print_sep = [&] {
        os << "+";
        for (auto w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };
    auto print_row = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string &s = c < cells.size() ? cells[c] : "";
            os << " " << std::left << std::setw(static_cast<int>(widths[c]))
               << s << " |";
        }
        os << "\n";
    };

    print_sep();
    print_row(header_);
    print_sep();
    for (const auto &r : rows_) {
        if (r.empty())
            print_sep();
        else
            print_row(r);
    }
    print_sep();
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
TextTable::signedPercent(double value, int precision)
{
    std::ostringstream oss;
    oss << std::showpos << std::fixed << std::setprecision(precision)
        << value;
    return oss.str();
}

} // namespace mca
