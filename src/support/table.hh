/**
 * @file
 * ASCII table formatter for benchmark-harness output.
 *
 * The benches that regenerate the paper's tables print through this class so
 * they share one consistent, diffable layout.
 */

#ifndef MCA_SUPPORT_TABLE_HH
#define MCA_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mca
{

class TextTable
{
  public:
    /** Set column headers; defines the column count. */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header's column count. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void separator();

    /** Render with column widths fitted to the content. */
    void print(std::ostream &os) const;

    /** Format a double with fixed precision — helper for row building. */
    static std::string num(double value, int precision = 2);

    /** Format a signed percentage like the paper's Table 2 ("+6", "-14"). */
    static std::string signedPercent(double value, int precision = 0);

  private:
    std::vector<std::string> header_;
    // Separator rows are encoded as empty vectors.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mca

#endif // MCA_SUPPORT_TABLE_HH
