/**
 * @file
 * Vector with inline storage for the first N elements.
 *
 * The in-flight instruction records of the cycle kernel hold several
 * short sequences (copies, source reads, renames, slave roles) whose
 * lengths are bounded by the machine shape — almost always 1-3
 * entries. Keeping them inline in the owning record removes the
 * per-dispatch heap allocations std::vector would make and keeps a
 * record's state in one cache-line neighborhood; the rare oversize
 * case (many-cluster configurations) spills to the heap with ordinary
 * geometric growth.
 *
 * Supports the subset of the std::vector interface the simulator uses.
 * Iterators are invalidated by any growth, as with std::vector.
 */

#ifndef MCA_SUPPORT_SMALL_VECTOR_HH
#define MCA_SUPPORT_SMALL_VECTOR_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "support/panic.hh"

namespace mca
{

template <typename T, std::size_t N>
class SmallVector
{
  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    SmallVector() = default;

    SmallVector(const SmallVector &other) { appendAll(other); }

    SmallVector(SmallVector &&other) noexcept { moveFrom(other); }

    SmallVector &
    operator=(const SmallVector &other)
    {
        if (this != &other) {
            clear();
            appendAll(other);
        }
        return *this;
    }

    SmallVector &
    operator=(SmallVector &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            moveFrom(other);
        }
        return *this;
    }

    ~SmallVector() { destroyAll(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return cap_; }

    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }
    T &front() { return data_[0]; }
    const T &front() const { return data_[0]; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    void
    push_back(const T &v)
    {
        reserve(size_ + 1);
        ::new (static_cast<void *>(data_ + size_)) T(v);
        ++size_;
    }

    void
    push_back(T &&v)
    {
        reserve(size_ + 1);
        ::new (static_cast<void *>(data_ + size_)) T(std::move(v));
        ++size_;
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        reserve(size_ + 1);
        T *p = ::new (static_cast<void *>(data_ + size_))
            T(std::forward<Args>(args)...);
        ++size_;
        return *p;
    }

    void
    pop_back()
    {
        MCA_ASSERT(size_ > 0, "pop_back on empty SmallVector");
        data_[--size_].~T();
    }

    /** Erase one element, shifting the tail left (preserves order). */
    iterator
    erase(iterator pos)
    {
        MCA_ASSERT(pos >= begin() && pos < end(),
                   "SmallVector erase out of range");
        for (iterator it = pos; it + 1 != end(); ++it)
            *it = std::move(*(it + 1));
        pop_back();
        return pos;
    }

    void
    clear()
    {
        while (size_ > 0)
            data_[--size_].~T();
    }

    void
    resize(std::size_t n)
    {
        if (n < size_) {
            while (size_ > n)
                data_[--size_].~T();
            return;
        }
        reserve(n);
        while (size_ < n)
            ::new (static_cast<void *>(data_ + size_++)) T();
    }

    void
    reserve(std::size_t n)
    {
        if (n <= cap_)
            return;
        std::size_t want = cap_ * 2;
        if (want < n)
            want = n;
        T *fresh = static_cast<T *>(
            ::operator new(want * sizeof(T), std::align_val_t{alignof(T)}));
        for (std::size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void *>(fresh + i)) T(std::move(data_[i]));
            data_[i].~T();
        }
        if (onHeap())
            ::operator delete(data_, std::align_val_t{alignof(T)});
        data_ = fresh;
        cap_ = want;
    }

  private:
    bool onHeap() const { return data_ != inlinePtr(); }

    T *inlinePtr() { return reinterpret_cast<T *>(inline_); }
    const T *
    inlinePtr() const
    {
        return reinterpret_cast<const T *>(inline_);
    }

    void
    appendAll(const SmallVector &other)
    {
        reserve(other.size_);
        for (std::size_t i = 0; i < other.size_; ++i)
            push_back(other.data_[i]);
    }

    /** Take other's contents; leaves other empty. Requires *this to
     *  hold no constructed elements. */
    void
    moveFrom(SmallVector &other) noexcept
    {
        if (other.onHeap()) {
            data_ = other.data_;
            cap_ = other.cap_;
            size_ = other.size_;
            other.data_ = other.inlinePtr();
            other.cap_ = N;
            other.size_ = 0;
        } else {
            data_ = inlinePtr();
            cap_ = N;
            size_ = 0;
            for (std::size_t i = 0; i < other.size_; ++i) {
                ::new (static_cast<void *>(data_ + i))
                    T(std::move(other.data_[i]));
                ++size_;
            }
            other.clear();
        }
    }

    void
    destroyAll()
    {
        clear();
        if (onHeap())
            ::operator delete(data_, std::align_val_t{alignof(T)});
        data_ = inlinePtr();
        cap_ = N;
    }

    alignas(T) unsigned char inline_[N * sizeof(T)];
    T *data_ = inlinePtr();
    std::size_t size_ = 0;
    std::size_t cap_ = N;
};

} // namespace mca

#endif // MCA_SUPPORT_SMALL_VECTOR_HH
