/**
 * @file
 * Structured, leveled logging for the tools and long-running services.
 *
 * A thin layer over stderr that the ad-hoc `std::cerr <<` prints in
 * mcasim/mcarun converge on: every line carries a wall-clock timestamp,
 * a severity, and the emitting component, so campaign logs interleaved
 * from many threads stay greppable. The threshold is set explicitly
 * (`--log-level`) or through the MCA_LOG_LEVEL environment variable;
 * messages below it are formatted lazily (the argument pack is never
 * stringified when the level is off).
 *
 * MCA_WARN / MCA_INFORM from support/panic.hh route through this logger,
 * so libraries keep using those macros; MCA_LOG_* is for call sites that
 * want an explicit component tag or Debug/Error severities.
 */

#ifndef MCA_SUPPORT_LOG_HH
#define MCA_SUPPORT_LOG_HH

#include <sstream>
#include <string>
#include <string_view>

namespace mca::log
{

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Current threshold; messages below it are dropped. */
Level threshold();

/** Set the threshold programmatically (overrides MCA_LOG_LEVEL). */
void setThreshold(Level level);

/**
 * Parse "debug" / "info" / "warn" / "error" / "off" (case-sensitive).
 * Returns false and leaves @p out untouched on unknown names.
 */
bool parseLevel(std::string_view text, Level &out);

/** Lower-case display name of a level ("debug", "info", ...). */
const char *levelName(Level level);

/** True when a message at @p level would be emitted. */
inline bool
enabled(Level level)
{
    return level >= threshold();
}

/**
 * Emit one formatted line: `[HH:MM:SS.mmm] level component: msg`.
 * Serialized by an internal mutex; safe from any thread.
 */
void write(Level level, std::string_view component, const std::string &msg);

namespace detail
{

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

} // namespace mca::log

#define MCA_LOG(level, component, ...)                                    \
    do {                                                                  \
        if (::mca::log::enabled(level))                                   \
            ::mca::log::write(level, component,                           \
                              ::mca::log::detail::concat(__VA_ARGS__));   \
    } while (0)

#define MCA_LOG_DEBUG(component, ...) \
    MCA_LOG(::mca::log::Level::Debug, component, __VA_ARGS__)
#define MCA_LOG_INFO(component, ...) \
    MCA_LOG(::mca::log::Level::Info, component, __VA_ARGS__)
#define MCA_LOG_WARN(component, ...) \
    MCA_LOG(::mca::log::Level::Warn, component, __VA_ARGS__)
#define MCA_LOG_ERROR(component, ...) \
    MCA_LOG(::mca::log::Level::Error, component, __VA_ARGS__)

#endif // MCA_SUPPORT_LOG_HH
