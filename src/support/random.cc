#include "support/random.hh"

#include "support/panic.hh"

namespace mca
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    MCA_ASSERT(bound != 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    MCA_ASSERT(lo <= hi, "nextRange with lo > hi");
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p_continue, std::uint64_t cap)
{
    std::uint64_t n = 0;
    while (n < cap && nextBool(p_continue))
        ++n;
    return n;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace mca
