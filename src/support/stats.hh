/**
 * @file
 * Lightweight statistics package.
 *
 * Models the subset of gem5's stats that the reproduction needs: named
 * scalar counters, ratios (formulas evaluated at dump time), and bucketed
 * distributions, owned by a StatGroup so a whole processor's statistics can
 * be reset, iterated, and printed uniformly.
 */

#ifndef MCA_SUPPORT_STATS_HH
#define MCA_SUPPORT_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mca
{

/** A named, monotonically adjustable 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    /** Overwrite the value (checkpoint restore only). */
    void set(std::uint64_t v) { value_ = v; }

  private:
    std::uint64_t value_ = 0;
};

/** Simple histogram over fixed-width buckets with overflow bucket. */
class Distribution
{
  public:
    Distribution() = default;

    /** Configure buckets covering [0, bucket_width * num_buckets). */
    void configure(std::uint64_t bucket_width, std::size_t num_buckets);

    void sample(std::uint64_t value, std::uint64_t count = 1);
    void reset();

    std::uint64_t samples() const { return samples_; }
    double mean() const;
    /** Population variance (E[x^2] - E[x]^2); 0 with < 2 samples. */
    double variance() const;
    /**
     * Bucket-resolution p-quantile, p in [0, 1]: the upper edge of the
     * first bucket whose cumulative count reaches ceil(p * samples),
     * clamped to the observed maximum (so a single-sample distribution
     * reports that sample at every p). Samples that landed in the
     * overflow bucket report max(). Returns 0 with no samples.
     */
    std::uint64_t percentile(double p) const;
    std::uint64_t max() const { return max_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t bucketWidth() const { return bucketWidth_; }
    std::uint64_t sum() const { return sum_; }
    double sumSq() const { return sumSq_; }

    /**
     * Overwrite accumulators (checkpoint restore only). The bucket
     * vector must match the configured bucket count.
     */
    void restore(const std::vector<std::uint64_t> &buckets,
                 std::uint64_t overflow, std::uint64_t samples,
                 std::uint64_t sum, double sum_sq, std::uint64_t max);

  private:
    std::uint64_t bucketWidth_ = 1;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    /** Sum of squares, in floating point so huge samples cannot wrap. */
    double sumSq_ = 0.0;
    std::uint64_t max_ = 0;
};

/**
 * Registry of named statistics.
 *
 * Members register themselves under dotted names ("issue.dual_dist").
 * Formulas are std::functions evaluated lazily so dump-time ratios always
 * reflect the live counter values.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Create (or fetch) a counter under this group. */
    Counter &counter(const std::string &name, const std::string &desc = "");

    /** Create (or fetch) a distribution under this group. */
    Distribution &distribution(const std::string &name,
                               std::uint64_t bucket_width,
                               std::size_t num_buckets,
                               const std::string &desc = "");

    /** Register a derived value computed at dump time. */
    void formula(const std::string &name, std::function<double()> fn,
                 const std::string &desc = "");

    /** Look up an existing counter; panics if absent. */
    const Counter &counterAt(const std::string &name) const;

    /** True if a counter with this name exists. */
    bool hasCounter(const std::string &name) const;

    /** Evaluate a registered formula; panics if absent. */
    double formulaAt(const std::string &name) const;

    /** Mutable lookup of an existing counter; null if absent. */
    Counter *findCounter(const std::string &name);
    /** Mutable lookup of an existing distribution; null if absent. */
    Distribution *findDistribution(const std::string &name);

    /** Visit every counter in registration (name) order. */
    void forEachCounter(
        const std::function<void(const std::string &, const Counter &)>
            &fn) const;
    /** Visit every distribution in registration (name) order. */
    void forEachDistribution(
        const std::function<void(const std::string &, const Distribution &)>
            &fn) const;

    void resetAll();
    void dump(std::ostream &os) const;

    /** Machine-readable dump: one flat JSON object of name -> value. */
    void dumpJson(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    struct CounterEntry { Counter counter; std::string desc; };
    struct DistEntry { Distribution dist; std::string desc; };
    struct FormulaEntry { std::function<double()> fn; std::string desc; };

    std::string name_;
    std::map<std::string, CounterEntry> counters_;
    std::map<std::string, DistEntry> dists_;
    std::map<std::string, FormulaEntry> formulas_;
};

} // namespace mca

#endif // MCA_SUPPORT_STATS_HH
