/**
 * @file
 * Fixed-capacity FIFO queue backed by a circular buffer.
 *
 * A general hardware-queue utility; the core's retire window is one
 * (a ring of in-flight handles, see src/core/machine.hh). The backing
 * buffer is rounded up to a power of two so every index computation is
 * a mask, not a division — this sits on the simulator's per-cycle hot
 * path. The logical capacity stays exactly as requested.
 */

#ifndef MCA_SUPPORT_CIRCULAR_QUEUE_HH
#define MCA_SUPPORT_CIRCULAR_QUEUE_HH

#include <cstddef>
#include <vector>

#include "support/panic.hh"

namespace mca
{

template <typename T>
class CircularQueue
{
  public:
    explicit CircularQueue(std::size_t capacity) : capacity_(capacity)
    {
        MCA_ASSERT(capacity > 0, "circular queue needs nonzero capacity");
        std::size_t buf = 1;
        while (buf < capacity)
            buf <<= 1;
        slots_.resize(buf);
        mask_ = buf - 1;
    }

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity_; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t freeSlots() const { return capacity_ - size_; }

    /** Append to the tail; queue must not be full. */
    void
    pushBack(T value)
    {
        MCA_ASSERT(!full(), "push to full circular queue");
        slots_[(head_ + size_) & mask_] = std::move(value);
        ++size_;
    }

    /** Remove and return the head element; queue must not be empty. */
    T
    popFront()
    {
        MCA_ASSERT(!empty(), "pop from empty circular queue");
        T value = std::move(slots_[head_]);
        head_ = (head_ + 1) & mask_;
        --size_;
        return value;
    }

    /** Remove and return the tail element; queue must not be empty. */
    T
    popBack()
    {
        MCA_ASSERT(!empty(), "pop from empty circular queue");
        --size_;
        return std::move(slots_[(head_ + size_) & mask_]);
    }

    /** Access the i-th oldest element (0 == head). */
    T &
    at(std::size_t i)
    {
        MCA_ASSERT(i < size_, "circular queue index out of range");
        return slots_[(head_ + i) & mask_];
    }

    const T &
    at(std::size_t i) const
    {
        MCA_ASSERT(i < size_, "circular queue index out of range");
        return slots_[(head_ + i) & mask_];
    }

    T &front() { return at(0); }
    const T &front() const { return at(0); }
    T &back() { return at(size_ - 1); }
    const T &back() const { return at(size_ - 1); }

    /** Drop the newest n elements (used on squash). */
    void
    truncate(std::size_t n)
    {
        MCA_ASSERT(n <= size_, "truncate more than queue size");
        size_ -= n;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    std::vector<T> slots_;
    std::size_t capacity_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace mca

#endif // MCA_SUPPORT_CIRCULAR_QUEUE_HH
