/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for conditions that indicate a bug in the simulator itself;
 * fatal() is for user-caused conditions (bad configuration, impossible
 * parameters). Both print a message and terminate; panic() aborts so a
 * debugger or core dump can capture the state, fatal() exits cleanly.
 */

#ifndef MCA_SUPPORT_PANIC_HH
#define MCA_SUPPORT_PANIC_HH

#include <sstream>
#include <string>

namespace mca
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail
{

/** Format a parameter pack into a string via an ostringstream. */
template <typename... Args>
std::string
formatMsg(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

} // namespace mca

/** Terminate with a simulator-bug diagnostic (aborts). */
#define MCA_PANIC(...) \
    ::mca::panicImpl(__FILE__, __LINE__, ::mca::detail::formatMsg(__VA_ARGS__))

/** Terminate with a user-error diagnostic (clean exit). */
#define MCA_FATAL(...) \
    ::mca::fatalImpl(__FILE__, __LINE__, ::mca::detail::formatMsg(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define MCA_WARN(...) \
    ::mca::warnImpl(::mca::detail::formatMsg(__VA_ARGS__))

/** Status message to stderr. */
#define MCA_INFORM(...) \
    ::mca::informImpl(::mca::detail::formatMsg(__VA_ARGS__))

/** Internal-invariant check that is kept in release builds. */
#define MCA_ASSERT(cond, ...)                                            \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::mca::panicImpl(__FILE__, __LINE__,                         \
                ::mca::detail::formatMsg("assertion '" #cond "' failed: ", \
                                         ##__VA_ARGS__));                \
        }                                                                \
    } while (0)

#endif // MCA_SUPPORT_PANIC_HH
