#include "support/panic.hh"

#include <cstdlib>
#include <iostream>

#include "support/log.hh"

namespace mca
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    MCA_LOG_WARN("mca", msg);
}

void
informImpl(const std::string &msg)
{
    MCA_LOG_INFO("mca", msg);
}

} // namespace mca
