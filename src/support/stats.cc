#include "support/stats.hh"

#include <iomanip>

#include "support/panic.hh"

namespace mca
{

void
Distribution::configure(std::uint64_t bucket_width, std::size_t num_buckets)
{
    MCA_ASSERT(bucket_width > 0, "distribution bucket width must be > 0");
    bucketWidth_ = bucket_width;
    buckets_.assign(num_buckets, 0);
    reset();
}

void
Distribution::sample(std::uint64_t value, std::uint64_t count)
{
    const std::size_t idx = value / bucketWidth_;
    if (idx < buckets_.size())
        buckets_[idx] += count;
    else
        overflow_ += count;
    samples_ += count;
    sum_ += value * count;
    if (value > max_)
        max_ = value;
}

void
Distribution::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0;
    max_ = 0;
}

double
Distribution::mean() const
{
    return samples_ == 0 ? 0.0
                         : static_cast<double>(sum_) /
                               static_cast<double>(samples_);
}

Counter &
StatGroup::counter(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = counters_.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    return it->second.counter;
}

Distribution &
StatGroup::distribution(const std::string &name, std::uint64_t bucket_width,
                        std::size_t num_buckets, const std::string &desc)
{
    auto [it, inserted] = dists_.try_emplace(name);
    if (inserted) {
        it->second.desc = desc;
        it->second.dist.configure(bucket_width, num_buckets);
    }
    return it->second.dist;
}

void
StatGroup::formula(const std::string &name, std::function<double()> fn,
                   const std::string &desc)
{
    formulas_[name] = FormulaEntry{std::move(fn), desc};
}

const Counter &
StatGroup::counterAt(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        MCA_PANIC("no counter named '", name, "' in group '", name_, "'");
    return it->second.counter;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

double
StatGroup::formulaAt(const std::string &name) const
{
    auto it = formulas_.find(name);
    if (it == formulas_.end())
        MCA_PANIC("no formula named '", name, "' in group '", name_, "'");
    return it->second.fn();
}

void
StatGroup::resetAll()
{
    for (auto &[name, entry] : counters_)
        entry.counter.reset();
    for (auto &[name, entry] : dists_)
        entry.dist.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "==== stats: " << name_ << " ====\n";
    for (const auto &[name, entry] : counters_) {
        os << std::left << std::setw(40) << name << std::right
           << std::setw(16) << entry.counter.value();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << "\n";
    }
    for (const auto &[name, entry] : formulas_) {
        os << std::left << std::setw(40) << name << std::right
           << std::setw(16) << std::fixed << std::setprecision(4)
           << entry.fn();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << "\n";
    }
    for (const auto &[name, entry] : dists_) {
        os << std::left << std::setw(40) << name << std::right
           << "  samples=" << entry.dist.samples()
           << " mean=" << std::fixed << std::setprecision(2)
           << entry.dist.mean() << " max=" << entry.dist.max();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << "\n";
    }
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{\n  \"group\": \"" << name_ << "\"";
    for (const auto &[name, entry] : counters_)
        os << ",\n  \"" << name << "\": " << entry.counter.value();
    for (const auto &[name, entry] : formulas_)
        os << ",\n  \"" << name << "\": " << std::fixed
           << std::setprecision(6) << entry.fn();
    for (const auto &[name, entry] : dists_) {
        os << ",\n  \"" << name << ".samples\": "
           << entry.dist.samples();
        os << ",\n  \"" << name << ".mean\": " << std::fixed
           << std::setprecision(4) << entry.dist.mean();
        os << ",\n  \"" << name << ".max\": " << entry.dist.max();
    }
    os << "\n}\n";
}

} // namespace mca
