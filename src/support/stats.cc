#include "support/stats.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <iomanip>

#include "support/panic.hh"

namespace mca
{

void
Distribution::configure(std::uint64_t bucket_width, std::size_t num_buckets)
{
    MCA_ASSERT(bucket_width > 0, "distribution bucket width must be > 0");
    bucketWidth_ = bucket_width;
    buckets_.assign(num_buckets, 0);
    reset();
}

void
Distribution::sample(std::uint64_t value, std::uint64_t count)
{
    const std::size_t idx = value / bucketWidth_;
    if (idx < buckets_.size())
        buckets_[idx] += count;
    else
        overflow_ += count;
    samples_ += count;
    sum_ += value * count;
    sumSq_ += static_cast<double>(value) * static_cast<double>(value) *
              static_cast<double>(count);
    if (value > max_)
        max_ = value;
}

void
Distribution::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0;
    sumSq_ = 0.0;
    max_ = 0;
}

double
Distribution::mean() const
{
    return samples_ == 0 ? 0.0
                         : static_cast<double>(sum_) /
                               static_cast<double>(samples_);
}

double
Distribution::variance() const
{
    if (samples_ < 2)
        return 0.0;
    const double m = mean();
    const double v = sumSq_ / static_cast<double>(samples_) - m * m;
    return v > 0.0 ? v : 0.0; // clamp -0.0 / rounding residue
}

std::uint64_t
Distribution::percentile(double p) const
{
    if (samples_ == 0)
        return 0;
    if (p <= 0.0)
        p = 0.0;
    if (p >= 1.0)
        return max_;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(samples_)));
    const std::uint64_t want = target == 0 ? 1 : target;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cum += buckets_[i];
        if (cum >= want) {
            const std::uint64_t upper =
                (static_cast<std::uint64_t>(i) + 1) * bucketWidth_ - 1;
            return upper < max_ ? upper : max_;
        }
    }
    return max_; // quantile falls in the overflow bucket
}

void
Distribution::restore(const std::vector<std::uint64_t> &buckets,
                      std::uint64_t overflow, std::uint64_t samples,
                      std::uint64_t sum, double sum_sq, std::uint64_t max)
{
    MCA_ASSERT(buckets.size() == buckets_.size(),
               "distribution restore: bucket count mismatch");
    buckets_ = buckets;
    overflow_ = overflow;
    samples_ = samples;
    sum_ = sum;
    sumSq_ = sum_sq;
    max_ = max;
}

Counter &
StatGroup::counter(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = counters_.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    return it->second.counter;
}

Distribution &
StatGroup::distribution(const std::string &name, std::uint64_t bucket_width,
                        std::size_t num_buckets, const std::string &desc)
{
    auto [it, inserted] = dists_.try_emplace(name);
    if (inserted) {
        it->second.desc = desc;
        it->second.dist.configure(bucket_width, num_buckets);
    }
    return it->second.dist;
}

void
StatGroup::formula(const std::string &name, std::function<double()> fn,
                   const std::string &desc)
{
    formulas_[name] = FormulaEntry{std::move(fn), desc};
}

const Counter &
StatGroup::counterAt(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        MCA_PANIC("no counter named '", name, "' in group '", name_, "'");
    return it->second.counter;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

double
StatGroup::formulaAt(const std::string &name) const
{
    auto it = formulas_.find(name);
    if (it == formulas_.end())
        MCA_PANIC("no formula named '", name, "' in group '", name_, "'");
    return it->second.fn();
}

Counter *
StatGroup::findCounter(const std::string &name)
{
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second.counter;
}

Distribution *
StatGroup::findDistribution(const std::string &name)
{
    auto it = dists_.find(name);
    return it == dists_.end() ? nullptr : &it->second.dist;
}

void
StatGroup::forEachCounter(
    const std::function<void(const std::string &, const Counter &)> &fn)
    const
{
    for (const auto &[name, entry] : counters_)
        fn(name, entry.counter);
}

void
StatGroup::forEachDistribution(
    const std::function<void(const std::string &, const Distribution &)>
        &fn) const
{
    for (const auto &[name, entry] : dists_)
        fn(name, entry.dist);
}

void
StatGroup::resetAll()
{
    for (auto &[name, entry] : counters_)
        entry.counter.reset();
    for (auto &[name, entry] : dists_)
        entry.dist.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "==== stats: " << name_ << " ====\n";
    for (const auto &[name, entry] : counters_) {
        os << std::left << std::setw(40) << name << std::right
           << std::setw(16) << entry.counter.value();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << "\n";
    }
    for (const auto &[name, entry] : formulas_) {
        os << std::left << std::setw(40) << name << std::right
           << std::setw(16) << std::fixed << std::setprecision(4)
           << entry.fn();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << "\n";
    }
    for (const auto &[name, entry] : dists_) {
        os << std::left << std::setw(40) << name << std::right
           << "  samples=" << entry.dist.samples()
           << " mean=" << std::fixed << std::setprecision(2)
           << entry.dist.mean() << " max=" << entry.dist.max();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << "\n";
    }
}

namespace
{

/**
 * Shortest round-trippable decimal form via std::to_chars: immune to
 * the global locale and to stream precision state, and deterministic
 * across platforms (unlike operator<<, which a stray
 * std::setlocale(LC_NUMERIC, ...) turns into "0,3").
 */
std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null"; // JSON has no inf/nan literals
    char buf[40];
    const auto r = std::to_chars(buf, buf + sizeof buf, value);
    if (r.ec != std::errc{})
        return "null";
    std::string out(buf, r.ptr);
    // Keep integral doubles visually typed ("3.0", not "3").
    if (out.find_first_of(".eE") == std::string::npos)
        out += ".0";
    return out;
}

/** Escape a string for use inside a JSON double-quoted literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{\n  \"group\": \"" << jsonEscape(name_) << "\"";
    for (const auto &[name, entry] : counters_)
        os << ",\n  \"" << jsonEscape(name)
           << "\": " << entry.counter.value();
    for (const auto &[name, entry] : formulas_)
        os << ",\n  \"" << jsonEscape(name)
           << "\": " << jsonNumber(entry.fn());
    for (const auto &[name, entry] : dists_) {
        const std::string key = jsonEscape(name);
        os << ",\n  \"" << key << ".samples\": "
           << entry.dist.samples();
        os << ",\n  \"" << key
           << ".mean\": " << jsonNumber(entry.dist.mean());
        os << ",\n  \"" << key << ".max\": " << entry.dist.max();
    }
    os << "\n}\n";
}

} // namespace mca
