/**
 * @file
 * Synthetic SPEC92-like workload generators.
 *
 * The paper evaluates compress, doduc, gcc1, ora, su2cor, and tomcatv
 * under ATOM on Alpha hardware. SPEC92 sources and binaries are not
 * redistributable, so each generator here builds an IL program that
 * mimics the corresponding benchmark along the axes the evaluation is
 * sensitive to: instruction mix (integer vs floating point vs memory vs
 * control), dependence-chain depth (ILP), branch predictability, basic
 * block size, call behaviour, and memory footprint/locality. See
 * DESIGN.md §5.6 for the per-benchmark sketches.
 *
 * All generators are deterministic: a given (name, scale) pair always
 * produces the identical program.
 */

#ifndef MCA_WORKLOADS_WORKLOADS_HH
#define MCA_WORKLOADS_WORKLOADS_HH

#include <functional>
#include <string>
#include <vector>

#include "prog/cfg.hh"

namespace mca::workloads
{

/** Generator sizing knobs. */
struct WorkloadParams
{
    /**
     * Linear scale on loop trip counts; 1.0 targets roughly 150k-300k
     * dynamic instructions per benchmark.
     */
    double scale = 1.0;
};

prog::Program makeCompress(const WorkloadParams &params = {});
prog::Program makeDoduc(const WorkloadParams &params = {});
prog::Program makeGcc1(const WorkloadParams &params = {});
prog::Program makeOra(const WorkloadParams &params = {});
prog::Program makeSu2cor(const WorkloadParams &params = {});
prog::Program makeTomcatv(const WorkloadParams &params = {});

/**
 * Memory-latency-bound pointer-chase stress workload (serial dependent
 * load misses). Not in allBenchmarks(): the paper experiments iterate
 * that registry and must keep reproducing the paper's six benchmarks.
 */
prog::Program makePointerChase(const WorkloadParams &params = {});

/** One registered benchmark. */
struct BenchmarkInfo
{
    std::string name;
    std::function<prog::Program(const WorkloadParams &)> make;
};

/** The paper's six benchmarks, in Table-2 order. */
const std::vector<BenchmarkInfo> &allBenchmarks();

/** Look up one benchmark by name; fatal if unknown. */
const BenchmarkInfo &benchmarkByName(const std::string &name);

/** Shape parameters for the random-program fuzzer. */
struct RandomProgramParams
{
    std::uint64_t seed = 1;
    unsigned numFunctions = 3;
    unsigned segmentsPerFunction = 6;
    unsigned instrsPerBlock = 8;
    /** Probability a generated value is floating point. */
    double fpFraction = 0.3;
    /** Probability an instruction is a memory operation. */
    double memFraction = 0.2;
    std::uint64_t loopTrip = 12;
};

/**
 * Build a random but well-formed program (reducible CFG, terminating
 * branch models, valid operand classes). Used by property tests to fuzz
 * the compiler and the timing model.
 */
prog::Program makeRandomProgram(const RandomProgramParams &params);

} // namespace mca::workloads

#endif // MCA_WORKLOADS_WORKLOADS_HH
