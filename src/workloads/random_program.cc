#include "workloads/workloads.hh"

#include <vector>

#include "support/panic.hh"
#include "support/random.hh"
#include "workloads/util.hh"

namespace mca::workloads
{

using namespace detail;

namespace
{

/** State for generating one random function. */
struct FuncGen
{
    Builder &b;
    FunctionId fn;
    Rng rng;
    const RandomProgramParams &params;
    /** Recently defined values available as operands, per class. */
    std::vector<ValueId> intPool;
    std::vector<ValueId> fpPool;

    ValueId
    pick(RegClass cls)
    {
        auto &pool = cls == RegClass::Int ? intPool : fpPool;
        MCA_ASSERT(!pool.empty(), "operand pool empty");
        return pool[rng.nextBelow(pool.size())];
    }

    void
    push(RegClass cls, ValueId v)
    {
        auto &pool = cls == RegClass::Int ? intPool : fpPool;
        pool.push_back(v);
        if (pool.size() > 24)
            pool.erase(pool.begin());
    }

    /** Emit a random non-control instruction at the insert point. */
    void
    emitRandomInstr()
    {
        const bool fp = rng.nextBool(params.fpFraction);
        const bool mem = rng.nextBool(params.memFraction);
        if (mem) {
            const Addr base = 0x2000'0000 + rng.nextBelow(16) * 0x0010'0000;
            const auto stream =
                rng.nextBool(0.5)
                    ? b.stream(AddrStream::strided(base, 8, 64 * 1024))
                    : b.stream(AddrStream::randomIn(base, 64 * 1024));
            if (rng.nextBool(0.6)) {
                const Op op = fp ? Op::Ldt : Op::Ldl;
                const ValueId v =
                    b.emitLoad(op, stream, pick(RegClass::Int));
                push(fp ? RegClass::Fp : RegClass::Int, v);
            } else {
                const Op op = fp ? Op::Stt : Op::Stl;
                const ValueId data =
                    pick(fp ? RegClass::Fp : RegClass::Int);
                b.emitStore(op, data, stream, pick(RegClass::Int));
            }
            return;
        }
        if (fp) {
            static const Op kFpOps[] = {Op::AddF, Op::SubF, Op::MulF,
                                        Op::DivF, Op::DivD, Op::SqrtD};
            const Op op = kFpOps[rng.nextBelow(4 + (rng.nextBool(0.3)
                                                        ? 2
                                                        : 0))];
            const ValueId v = b.emitRRR(op, pick(RegClass::Fp),
                                        pick(RegClass::Fp));
            push(RegClass::Fp, v);
        } else {
            static const Op kIntOps[] = {Op::Add, Op::Sub, Op::And,
                                         Op::Or,  Op::Xor, Op::Sll,
                                         Op::Mull};
            const Op op = kIntOps[rng.nextBelow(7)];
            ValueId v;
            if (rng.nextBool(0.3))
                v = b.emitRRI(op, pick(RegClass::Int),
                              static_cast<std::int64_t>(
                                  rng.nextBelow(64)));
            else
                v = b.emitRRR(op, pick(RegClass::Int),
                              pick(RegClass::Int));
            push(RegClass::Int, v);
        }
    }

    void
    fillBlock(BlockId blk, unsigned n)
    {
        b.setInsertPoint(fn, blk);
        for (unsigned i = 0; i < n; ++i)
            emitRandomInstr();
    }
};

} // namespace

prog::Program
makeRandomProgram(const RandomProgramParams &params)
{
    MCA_ASSERT(params.numFunctions >= 1, "need at least one function");
    Builder b("random-" + std::to_string(params.seed));
    emitPreamble(b);
    Rng top(params.seed);

    std::vector<FunctionId> fns;
    for (unsigned f = 0; f < params.numFunctions; ++f)
        fns.push_back(b.function("f" + std::to_string(f)));

    for (unsigned f = 0; f < params.numFunctions; ++f) {
        FuncGen gen{b, fns[f], top.fork(), params, {}, {}};

        // Seed the operand pools in an entry block.
        const BlockId entry = b.block(fns[f], 1, "entry");
        b.setInsertPoint(fns[f], entry);
        for (unsigned i = 0; i < 4; ++i) {
            gen.push(RegClass::Int,
                     b.emitConst(RegClass::Int,
                                 static_cast<std::int64_t>(i * 3 + 1)));
            gen.push(RegClass::Fp,
                     b.emitConst(RegClass::Fp,
                                 static_cast<std::int64_t>(i + 2)));
        }

        BlockId cur = entry;
        // Append random segments: straight / diamond / loop / call.
        for (unsigned s = 0; s < params.segmentsPerFunction; ++s) {
            const double roll = gen.rng.nextDouble();
            if (roll < 0.35) {
                // Straight-line block.
                const BlockId nb = b.block(fns[f], 1, "s");
                b.edge(fns[f], cur, nb);
                gen.fillBlock(nb, params.instrsPerBlock);
                cur = nb;
            } else if (roll < 0.65) {
                // Diamond.
                const BlockId head = b.block(fns[f], 1, "dh");
                const BlockId t = b.block(fns[f], 1, "dt");
                const BlockId e = b.block(fns[f], 1, "de");
                const BlockId join = b.block(fns[f], 1, "dj");
                b.edge(fns[f], cur, head);
                gen.fillBlock(head, params.instrsPerBlock / 2 + 1);
                b.setInsertPoint(fns[f], head);
                b.emitBranch(
                    Op::Bne, gen.pick(RegClass::Int),
                    b.branch(BranchModel::bernoulli(
                        0.2 + 0.6 * gen.rng.nextDouble())));
                b.edge(fns[f], head, e);
                b.edge(fns[f], head, t);
                gen.fillBlock(t, params.instrsPerBlock / 2 + 1);
                b.setInsertPoint(fns[f], t);
                b.emitBr();
                b.edge(fns[f], t, join);
                gen.fillBlock(e, params.instrsPerBlock / 2 + 1);
                b.edge(fns[f], e, join);
                cur = join;
            } else if (roll < 0.9 || f + 1 >= params.numFunctions) {
                // Counted loop (counter initialized in the preheader).
                const BlockId body = b.block(fns[f], 10, "lb");
                const BlockId exit = b.block(fns[f], 1, "lx");
                b.setInsertPoint(fns[f], cur);
                const ValueId counter =
                    b.emitConst(RegClass::Int, 0, "lc");
                b.edge(fns[f], cur, body);
                gen.fillBlock(body, params.instrsPerBlock);
                b.setInsertPoint(fns[f], body);
                const std::uint64_t trip =
                    1 + gen.rng.nextBelow(params.loopTrip);
                emitLoopLatch(b, counter,
                              static_cast<std::int64_t>(trip), trip);
                b.edge(fns[f], body, exit);
                b.edge(fns[f], body, body);
                cur = exit;
            } else {
                // Call a later function (keeps the call graph acyclic).
                const unsigned callee =
                    f + 1 +
                    static_cast<unsigned>(gen.rng.nextBelow(
                        params.numFunctions - f - 1));
                const BlockId cb = b.block(fns[f], 1, "call");
                const BlockId cont = b.block(fns[f], 1, "cont");
                b.edge(fns[f], cur, cb);
                gen.fillBlock(cb, 2);
                b.setInsertPoint(fns[f], cb);
                b.emitJsr(fns[callee]);
                b.edge(fns[f], cb, cont);
                cur = cont;
            }
        }
        const BlockId last = b.block(fns[f], 1, "ret");
        b.edge(fns[f], cur, last);
        b.setInsertPoint(fns[f], last);
        b.emitRet();
    }
    return b.build();
}

} // namespace mca::workloads
