#include "workloads/workloads.hh"

#include "workloads/util.hh"

namespace mca::workloads
{

using namespace detail;

/**
 * Pointer-chase stress workload: a serial linked-structure walk whose
 * node pool far exceeds the L1 data cache, so virtually every hop is a
 * load miss, and whose next-pointer is the value the previous hop
 * loaded, so the misses cannot overlap. The pipeline spends most
 * cycles drained, waiting on the head load's fill — the
 * memory-latency-bound counterpart to ora's divider-bound serial
 * chains, and the simulator-side stress case for the idle fast-forward
 * (see bench/micro_perf.cc).
 *
 * Not part of the paper's benchmark suite, so deliberately excluded
 * from allBenchmarks(): the Table-2/figure experiments iterate that
 * registry and must keep reproducing the paper's six benchmarks.
 */
prog::Program
makePointerChase(const WorkloadParams &params)
{
    Builder b("chase");
    emitPreamble(b);

    const auto hops =
        static_cast<std::uint64_t>(32'000 * params.scale) + 1;

    const FunctionId fn = b.function("main");
    const BlockId m_init = b.block(fn, 1, "init");
    const BlockId m_body = b.block(fn, static_cast<double>(hops),
                                   "walk");
    const BlockId m_end = b.block(fn, 1, "end");

    // 16 MiB node pool against a 64 KiB cache: essentially no reuse.
    const auto s_nodes = b.stream(
        AddrStream::randomIn(0x0A00'0040, 16 * 1024 * 1024));

    b.setInsertPoint(fn, m_init);
    const ValueId i = b.emitConst(RegClass::Int, 0, "i");
    const ValueId p = b.emitConst(RegClass::Int, 0xA00000, "p");
    const ValueId acc = b.emitConst(RegClass::Int, 0, "acc");
    b.edge(fn, m_init, m_body);

    // Four serial hops per iteration; each hop's address register is
    // the previous hop's loaded value.
    b.setInsertPoint(fn, m_body);
    b.emitLoadTo(p, Op::Ldl, s_nodes, p);
    b.emitLoadTo(p, Op::Ldl, s_nodes, p);
    b.emitLoadTo(p, Op::Ldl, s_nodes, p);
    b.emitLoadTo(p, Op::Ldl, s_nodes, p);
    b.emitRRRTo(acc, Op::Add, acc, p);
    emitLoopLatch(b, i, static_cast<std::int64_t>(hops), hops);
    b.edge(fn, m_body, m_end);
    b.edge(fn, m_body, m_body);

    b.setInsertPoint(fn, m_end);
    b.emitRet();

    return b.build();
}

} // namespace mca::workloads
