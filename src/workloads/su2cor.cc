#include "workloads/workloads.hh"

#include "workloads/util.hh"

namespace mca::workloads
{

using namespace detail;

/**
 * su2cor-like workload: quantum-physics vector code — long strided
 * floating-point vector loops over arrays far larger than the data
 * cache (streaming misses), plus a dot-product reduction loop with a
 * serial accumulation chain. Control flow is almost perfectly
 * predictable; the action is memory-level parallelism and fp throughput.
 */
prog::Program
makeSu2cor(const WorkloadParams &params)
{
    Builder b("su2cor");
    emitPreamble(b);

    const auto t1 =
        static_cast<std::uint64_t>(9000 * params.scale) + 1;
    const auto t2 =
        static_cast<std::uint64_t>(5000 * params.scale) + 1;

    const FunctionId fn = b.function("main");
    const BlockId m_init = b.block(fn, 1, "init");
    const BlockId v_body = b.block(fn, static_cast<double>(t1),
                                   "vec_body");
    const BlockId mid = b.block(fn, 1, "mid");
    const BlockId d_body = b.block(fn, static_cast<double>(t2),
                                   "dot_body");
    const BlockId m_end = b.block(fn, 1, "end");

    // 2 MB arrays: sequential sweeps miss every 4th access (32 B
    // blocks). Bases are staggered so concurrent streams do not land in
    // the same cache sets (real arrays are not set-aligned).
    const auto s_a = b.stream(AddrStream::strided(0x0a00'0000, 8,
                                                  2 * 1024 * 1024));
    const auto s_b = b.stream(AddrStream::strided(0x0b00'31a0, 8,
                                                  2 * 1024 * 1024));
    const auto s_c = b.stream(AddrStream::strided(0x0c00'6260, 8,
                                                  2 * 1024 * 1024));
    const auto s_d = b.stream(AddrStream::strided(0x0d00'95e8, 8,
                                                  2 * 1024 * 1024));
    const auto s_e = b.stream(AddrStream::strided(0x0e00'c728, 8,
                                                  2 * 1024 * 1024));

    b.setInsertPoint(fn, m_init);
    const ValueId i = b.emitConst(RegClass::Int, 0, "i");
    const ValueId j = b.emitConst(RegClass::Int, 0, "j");
    const ValueId pa = b.emitConst(RegClass::Int, 0xa00000, "pa");
    const ValueId pb = b.emitConst(RegClass::Int, 0xb00000, "pb");
    const ValueId k1 = b.emitConst(RegClass::Fp, 3, "k1");
    const ValueId acc = b.emitConst(RegClass::Fp, 0, "acc");
    b.edge(fn, m_init, v_body);

    // Vector update: c[i] = a[i]*k1 + b[i]; e[i] = a[i] - b[i].
    b.setInsertPoint(fn, v_body);
    const ValueId av = b.emitLoad(Op::Ldt, s_a, pa, "av");
    const ValueId bv = b.emitLoad(Op::Ldt, s_b, pb, "bv");
    const ValueId m1 = b.emitRRR(Op::MulF, av, k1, "m1");
    const ValueId c1 = b.emitRRR(Op::AddF, m1, bv, "c1");
    b.emitStore(Op::Stt, c1, s_c, pa);
    const ValueId e1 = b.emitRRR(Op::SubF, av, bv, "e1");
    b.emitStore(Op::Stt, e1, s_e, pb);
    emitLoopLatch(b, i, static_cast<std::int64_t>(t1), t1);
    b.edge(fn, v_body, mid);
    b.edge(fn, v_body, v_body);

    b.setInsertPoint(fn, mid);
    b.edge(fn, mid, d_body);

    // Dot product: acc += c[j] * d[j] (serial reduction chain).
    b.setInsertPoint(fn, d_body);
    const ValueId cv = b.emitLoad(Op::Ldt, s_c, pa, "cv");
    const ValueId dv = b.emitLoad(Op::Ldt, s_d, pb, "dv");
    const ValueId p1 = b.emitRRR(Op::MulF, cv, dv, "p1");
    b.emitRRRTo(acc, Op::AddF, acc, p1);
    emitLoopLatch(b, j, static_cast<std::int64_t>(t2), t2);
    b.edge(fn, d_body, m_end);
    b.edge(fn, d_body, d_body);

    b.setInsertPoint(fn, m_end);
    b.emitStore(Op::Stt, acc, s_e, pa);
    b.emitRet();

    return b.build();
}

} // namespace mca::workloads
