#include "workloads/workloads.hh"

#include "workloads/util.hh"

namespace mca::workloads
{

using namespace detail;

/**
 * tomcatv-like workload: a 2-D vectorized mesh-generation stencil.
 * Nested loops sweep a mesh row by row reading five neighbouring points
 * per update (same stride, offset bases — neighbouring-row reuse in the
 * cache), combining them with fp multiplies/adds and one divide, and
 * writing two result arrays. Perfectly predictable control flow.
 */
prog::Program
makeTomcatv(const WorkloadParams &params)
{
    Builder b("tomcatv");
    emitPreamble(b);

    const auto rows =
        static_cast<std::uint64_t>(55 * params.scale) + 1;
    const std::uint64_t cols = 250;

    const FunctionId fn = b.function("main");
    const BlockId m_init = b.block(fn, 1, "init");
    const BlockId r_head = b.block(fn, static_cast<double>(rows),
                                   "row_head");
    const BlockId c_body = b.block(fn,
                                   static_cast<double>(rows * cols),
                                   "col_body");
    const BlockId r_latch = b.block(fn, static_cast<double>(rows),
                                    "row_latch");
    const BlockId m_end = b.block(fn, 1, "end");

    // One 500 KB mesh; the five read streams walk it with row offsets.
    constexpr Addr kMesh = 0x0f00'0000;
    constexpr std::uint64_t kMeshBytes = 500 * 1024;
    const std::uint64_t row_bytes = cols * 8;
    const auto s_c = b.stream(AddrStream::strided(kMesh + row_bytes, 8,
                                                  kMeshBytes));
    const auto s_n = b.stream(AddrStream::strided(kMesh, 8, kMeshBytes));
    const auto s_s = b.stream(AddrStream::strided(kMesh + 2 * row_bytes,
                                                  8, kMeshBytes));
    const auto s_w = b.stream(AddrStream::strided(kMesh + row_bytes - 8,
                                                  8, kMeshBytes));
    const auto s_e = b.stream(AddrStream::strided(kMesh + row_bytes + 8,
                                                  8, kMeshBytes));
    const auto s_rx = b.stream(AddrStream::strided(0x1100'2360, 8,
                                                   kMeshBytes));
    const auto s_ry = b.stream(AddrStream::strided(0x1200'55c8, 8,
                                                   kMeshBytes));

    b.setInsertPoint(fn, m_init);
    const ValueId r = b.emitConst(RegClass::Int, 0, "r");
    const ValueId cc = b.emitConst(RegClass::Int, 0, "cc");
    const ValueId pm = b.emitConst(RegClass::Int, 0xf00000, "pm");
    const ValueId w2 = b.emitConst(RegClass::Fp, 2, "w2");
    const ValueId w4 = b.emitConst(RegClass::Fp, 4, "w4");
    b.edge(fn, m_init, r_head);

    b.setInsertPoint(fn, r_head);
    {
        prog::Instr reset;
        reset.op = Op::Lda;
        reset.dest = cc;
        reset.imm = 0;
        b.emitRaw(reset);
    }
    b.edge(fn, r_head, c_body);

    // Five-point stencil update.
    b.setInsertPoint(fn, c_body);
    const ValueId vc = b.emitLoad(Op::Ldt, s_c, pm, "vc");
    const ValueId vn = b.emitLoad(Op::Ldt, s_n, pm, "vn");
    const ValueId vs = b.emitLoad(Op::Ldt, s_s, pm, "vs");
    const ValueId vw = b.emitLoad(Op::Ldt, s_w, pm, "vw");
    const ValueId ve = b.emitLoad(Op::Ldt, s_e, pm, "ve");
    const ValueId ns = b.emitRRR(Op::AddF, vn, vs, "ns");
    const ValueId we = b.emitRRR(Op::AddF, vw, ve, "we");
    const ValueId lap = b.emitRRR(Op::AddF, ns, we, "lap");
    const ValueId cw = b.emitRRR(Op::MulF, vc, w4, "cw");
    const ValueId resid = b.emitRRR(Op::SubF, lap, cw, "resid");
    const ValueId relax = b.emitRRR(Op::DivF, resid, w2, "relax");
    const ValueId nx = b.emitRRR(Op::AddF, vc, relax, "nx");
    const ValueId ny = b.emitRRR(Op::MulF, relax, w2, "ny");
    b.emitStore(Op::Stt, nx, s_rx, pm);
    b.emitStore(Op::Stt, ny, s_ry, pm);
    emitLoopLatch(b, cc, static_cast<std::int64_t>(cols), cols);
    b.edge(fn, c_body, r_latch);
    b.edge(fn, c_body, c_body);

    b.setInsertPoint(fn, r_latch);
    emitLoopLatch(b, r, static_cast<std::int64_t>(rows), rows);
    b.edge(fn, r_latch, m_end);
    b.edge(fn, r_latch, r_head);

    b.setInsertPoint(fn, m_end);
    b.emitRet();

    return b.build();
}

} // namespace mca::workloads
