#include "workloads/workloads.hh"

#include "workloads/util.hh"

namespace mca::workloads
{

using namespace detail;

/**
 * compress-like workload: an integer dictionary/hash loop.
 *
 * Character codes stream in sequentially; a shift/xor hash probes a
 * table larger than the data cache, a data-dependent branch separates
 * hit and miss paths (the predictor sees a noisy ~60/40 branch), and
 * both paths update tables. This reproduces compress's signature
 * behaviour: integer-only, data-dependent control flow, and cache
 * behaviour that is sensitive to issue order.
 */
prog::Program
makeCompress(const WorkloadParams &params)
{
    Builder b("compress");
    emitPreamble(b);

    const auto inner =
        static_cast<std::uint64_t>(4000 * params.scale) + 1;
    const std::uint64_t outer = 4;

    const FunctionId fn = b.function("main");
    const BlockId b_init = b.block(fn, 1, "init");
    const BlockId b_ihead = b.block(fn, outer, "inner_head");
    const BlockId b_body =
        b.block(fn, static_cast<double>(inner * outer), "body");
    const BlockId b_miss =
        b.block(fn, static_cast<double>(inner * outer) * 0.38, "miss");
    const BlockId b_hit =
        b.block(fn, static_cast<double>(inner * outer) * 0.62, "hit");
    const BlockId b_join =
        b.block(fn, static_cast<double>(inner * outer), "join");
    const BlockId b_olatch = b.block(fn, outer, "outer_latch");
    const BlockId b_end = b.block(fn, 1, "end");

    const auto s_input = b.stream(AddrStream::strided(0x0100'0000, 8,
                                                      512 * 1024));
    const auto s_hash = b.stream(AddrStream::hashTable(0x0200'21a0,
                                                       96 * 1024, 0.5));
    const auto s_hash_w = b.stream(AddrStream::hashTable(0x0200'21a0,
                                                         96 * 1024, 0.5));
    const auto s_code = b.stream(AddrStream::strided(0x0300'4360, 8,
                                                     64 * 1024));
    const auto s_code_w = b.stream(AddrStream::strided(0x0300'4360, 8,
                                                       64 * 1024));
    const auto s_out = b.stream(AddrStream::strided(0x0400'6520, 8,
                                                    256 * 1024));

    // --- init ----------------------------------------------------------
    b.setInsertPoint(fn, b_init);
    const ValueId mask = b.emitConst(RegClass::Int, 0xffff, "mask");
    const ValueId i = b.emitConst(RegClass::Int, 0, "i");
    const ValueId j = b.emitConst(RegClass::Int, 0, "j");
    const ValueId prev = b.emitConst(RegClass::Int, 0, "prev");
    const ValueId acc = b.emitConst(RegClass::Int, 0, "acc");
    const ValueId in = b.emitConst(RegClass::Int, 0, "in");
    const ValueId inbase = b.emitConst(RegClass::Int, 0x0100'0000, "inb");
    // Long-lived compressor state (ratio counters, code widths, limits)
    // keeps register pressure realistic: a cluster's local registers are
    // scarce, the full file is not.
    std::vector<ValueId> state;
    for (int s = 0; s < 4; ++s)
        state.push_back(b.emitConst(RegClass::Int, 100 + s,
                                    "st" + std::to_string(s)));
    b.edge(fn, b_init, b_ihead);

    // --- inner_head: reset the inner counter ---------------------------
    b.setInsertPoint(fn, b_ihead);
    {
        prog::Instr reset;
        reset.op = Op::Lda;
        reset.dest = i;
        reset.imm = 0;
        b.emitRaw(reset);
    }
    b.edge(fn, b_ihead, b_body);

    // --- body: read a code, hash, probe --------------------------------
    b.setInsertPoint(fn, b_body);
    b.emitLoadTo(in, Op::Ldl, s_input, inbase);
    const ValueId h1 = b.emitRRR(Op::Xor, in, prev, "h1");
    const ValueId h2 = b.emitRRI(Op::Sll, h1, 3, "h2");
    const ValueId h3 = b.emitRRR(Op::Add, h2, in, "h3");
    const ValueId idx = b.emitRRR(Op::And, h3, mask, "idx");
    const ValueId probe = b.emitLoad(Op::Ldl, s_hash, idx, "probe");
    b.emitRRITo(prev, Op::Mov, in, 0);
    const ValueId found = b.emitRRR(Op::CmpEq, probe, in, "found");
    // Hit/miss follows the input text: repeating but irregular, so the
    // global-history predictor can learn it only when its tables and
    // history are reasonably fresh. The single-cluster machine's larger
    // dispatch queue lengthens the prediction-to-update delay, which is
    // exactly the compress anomaly of §4.2.
    b.emitBranch(Op::Bne, found,
                 b.branch(BranchModel::patterned(
                     {true, true, false, true, false, true, true, true,
                      false, false, true, true, false})));
    b.edge(fn, b_body, b_miss); // fall-through: miss
    b.edge(fn, b_body, b_hit);  // taken: hit

    // --- miss: insert a fresh dictionary entry -------------------------
    b.setInsertPoint(fn, b_miss);
    b.emitStore(Op::Stl, in, s_hash_w, idx);
    const ValueId ncode = b.emitRRI(Op::Add, acc, 1, "ncode");
    b.emitStore(Op::Stl, ncode, s_code_w, idx);
    b.emitRRRTo(acc, Op::Add, acc, ncode);
    b.emitRRRTo(state[0], Op::Add, state[0], in);
    b.edge(fn, b_miss, b_join);

    // --- hit: emit the existing code -----------------------------------
    b.setInsertPoint(fn, b_hit);
    const ValueId code = b.emitLoad(Op::Ldl, s_code, idx, "code");
    b.emitRRRTo(acc, Op::Add, acc, code);
    b.emitStore(Op::Stl, acc, s_out, code);
    b.emitRRRTo(state[1], Op::Add, state[1], code);
    b.edge(fn, b_hit, b_join);

    // --- join: inner latch ----------------------------------------------
    b.setInsertPoint(fn, b_join);
    // Compression-ratio bookkeeping keeps a little long-lived state.
    b.emitRRRTo(state[2], Op::Add, state[2], state[0]);
    b.emitRRRTo(state[3], Op::Xor, state[3], state[1]);
    emitLoopLatch(b, i, static_cast<std::int64_t>(inner), inner);
    b.edge(fn, b_join, b_olatch); // fall-through: inner loop done
    b.edge(fn, b_join, b_body);   // taken: continue inner loop

    // --- outer latch ------------------------------------------------------
    b.setInsertPoint(fn, b_olatch);
    emitLoopLatch(b, j, static_cast<std::int64_t>(outer), outer);
    b.edge(fn, b_olatch, b_end);
    b.edge(fn, b_olatch, b_ihead);

    b.setInsertPoint(fn, b_end);
    b.emitRet();

    return b.build();
}

} // namespace mca::workloads
