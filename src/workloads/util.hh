/**
 * @file
 * Shared helpers for the workload generators (internal).
 */

#ifndef MCA_WORKLOADS_UTIL_HH
#define MCA_WORKLOADS_UTIL_HH

#include "prog/builder.hh"

namespace mca::workloads::detail
{

using isa::Op;
using isa::RegClass;
using prog::AddrStream;
using prog::BlockId;
using prog::BranchModel;
using prog::Builder;
using prog::FunctionId;
using prog::ValueId;

/**
 * Emit the standard counted-loop latch into the current block: the
 * counter is incremented, compared, and a loop-model branch closes the
 * back edge. Returns the comparison value (for reuse if needed).
 *
 * The caller must add the successors: edge(fn, body, exit) first
 * (fall-through, loop exit) then edge(fn, body, head) (taken, back
 * edge).
 */
inline ValueId
emitLoopLatch(Builder &b, ValueId counter, std::int64_t bound,
              std::uint64_t trip, std::uint64_t jitter = 0)
{
    b.emitRRITo(counter, Op::Add, counter, 1);
    const ValueId cond = b.emitRRI(Op::CmpLt, counter, bound, "lc");
    b.emitBranch(Op::Bne, cond, b.branch(BranchModel::loop(trip, jitter)));
    return cond;
}

/** Common program preamble: SP and GP global candidates. */
struct Preamble
{
    ValueId sp;
    ValueId gp;
};

inline Preamble
emitPreamble(Builder &b)
{
    Preamble p;
    p.sp = b.globalValue(RegClass::Int, "sp");
    p.gp = b.globalValue(RegClass::Int, "gp");
    return p;
}

} // namespace mca::workloads::detail

#endif // MCA_WORKLOADS_UTIL_HH
