#include "workloads/workloads.hh"

#include "support/panic.hh"

namespace mca::workloads
{

const std::vector<BenchmarkInfo> &
allBenchmarks()
{
    static const std::vector<BenchmarkInfo> kBenchmarks = {
        {"compress", makeCompress}, {"doduc", makeDoduc},
        {"gcc1", makeGcc1},         {"ora", makeOra},
        {"su2cor", makeSu2cor},     {"tomcatv", makeTomcatv},
    };
    return kBenchmarks;
}

const BenchmarkInfo &
benchmarkByName(const std::string &name)
{
    for (const auto &info : allBenchmarks())
        if (info.name == name)
            return info;
    MCA_FATAL("unknown benchmark '", name, "'");
}

} // namespace mca::workloads
