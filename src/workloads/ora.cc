#include "workloads/workloads.hh"

#include "workloads/util.hh"

namespace mca::workloads
{

using namespace detail;

/**
 * ora-like workload: optical ray tracing — dominated by long serial
 * chains of floating-point divides and square roots, with almost no
 * memory traffic and highly predictable control flow.
 *
 * Two interleaved serial chains (one per ray component) run per
 * iteration. Each chain link is a fresh live range that dies at the
 * next link, so cluster-unaware graph coloring collapses a whole chain
 * onto a single architectural register — the native binary keeps each
 * chain inside one cluster, and the dual-cluster machine runs it with
 * very little transfer traffic (the paper's ora barely slows down
 * unscheduled). The local scheduler, in contrast, balances the
 * per-link live ranges across both clusters, which introduces
 * cross-cluster hops with *late* forwarded operands into the middles of
 * the chains; combined with the ready-operand transfers of the other
 * chain this exhausts the 8-entry operand transfer buffers and provokes
 * the instruction-replay exceptions the paper blames for ora's
 * rescheduled slowdown.
 */
prog::Program
makeOra(const WorkloadParams &params)
{
    Builder b("ora");
    emitPreamble(b);

    const auto rays =
        static_cast<std::uint64_t>(4600 * params.scale) + 1;

    const FunctionId fn = b.function("main");
    const BlockId m_init = b.block(fn, 1, "init");
    const BlockId m_body = b.block(fn, static_cast<double>(rays),
                                   "trace");
    const BlockId m_refract =
        b.block(fn, static_cast<double>(rays) * 0.9, "refract");
    const BlockId m_join = b.block(fn, static_cast<double>(rays),
                                   "join");
    const BlockId m_end = b.block(fn, 1, "end");

    const auto s_img = b.stream(AddrStream::strided(0x0900'1040, 8,
                                                    64 * 1024));

    b.setInsertPoint(fn, m_init);
    const ValueId i = b.emitConst(RegClass::Int, 0, "i");
    const ValueId oneA = b.emitConst(RegClass::Fp, 1, "oneA");
    const ValueId oneB = b.emitConst(RegClass::Fp, 1, "oneB");
    const ValueId muA = b.emitConst(RegClass::Fp, 2, "muA");
    const ValueId muB = b.emitConst(RegClass::Fp, 3, "muB");
    const ValueId va = b.emitConst(RegClass::Fp, 5, "va");
    const ValueId vb = b.emitConst(RegClass::Fp, 7, "vb");
    const ValueId lum = b.emitConst(RegClass::Fp, 0, "lum");
    b.edge(fn, m_init, m_body);

    // Two interleaved serial divide/sqrt chains. Every link is a fresh
    // live range that dies at the next link.
    b.setInsertPoint(fn, m_body);
    const ValueId a1 = b.emitRRR(Op::DivD, va, muA, "a1");
    const ValueId b1 = b.emitRRR(Op::DivD, vb, muB, "b1");
    const ValueId a2 = b.emitRRR(Op::SqrtD, a1, oneA, "a2");
    const ValueId b2 = b.emitRRR(Op::SqrtD, b1, oneB, "b2");
    const ValueId a3 = b.emitRRR(Op::DivD, a2, muA, "a3");
    const ValueId b3 = b.emitRRR(Op::DivD, b2, muB, "b3");
    const ValueId a4 = b.emitRRR(Op::SqrtD, a3, oneA, "a4");
    const ValueId b4 = b.emitRRR(Op::SqrtD, b3, oneB, "b4");
    const ValueId a5 = b.emitRRR(Op::DivD, a4, muA, "a5");
    const ValueId b5 = b.emitRRR(Op::DivD, b4, muB, "b5");
    b.emitRRRTo(va, Op::MulF, a5, muA);
    b.emitRRRTo(vb, Op::MulF, b5, muB);
    const ValueId hit = b.emitRRR(Op::CmpF, va, vb, "hit");
    b.emitBranch(Op::FBne, hit, b.branch(BranchModel::bernoulli(0.9)));
    b.edge(fn, m_body, m_join);     // fall-through: ray misses
    b.edge(fn, m_body, m_refract);  // taken: refract

    // Refraction accumulates luminance from both chains.
    b.setInsertPoint(fn, m_refract);
    const ValueId q1 = b.emitRRR(Op::AddF, va, vb, "q1");
    b.emitRRRTo(lum, Op::AddF, lum, q1);
    b.edge(fn, m_refract, m_join);

    b.setInsertPoint(fn, m_join);
    b.emitStore(Op::Stt, lum, s_img, i);
    emitLoopLatch(b, i, static_cast<std::int64_t>(rays), rays);
    b.edge(fn, m_join, m_end);
    b.edge(fn, m_join, m_body);

    b.setInsertPoint(fn, m_end);
    b.emitRet();

    return b.build();
}

} // namespace mca::workloads
