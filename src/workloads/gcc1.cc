#include "workloads/workloads.hh"

#include "support/random.hh"
#include "workloads/util.hh"

namespace mca::workloads
{

using namespace detail;

namespace
{

/**
 * Emit one small "compiler pass helper": an integer function with a
 * biased diamond, a pointer-chasing load, and optionally a call to a
 * deeper helper. Returns nothing; the function is self-contained.
 */
void
emitHelper(Builder &b, FunctionId fn, Rng &rng, double est_calls,
           FunctionId callee)
{
    const bool has_call = callee != prog::kNoFunction;
    const BlockId entry = b.block(fn, est_calls, "h_entry");
    const BlockId then_b = b.block(fn, est_calls * 0.5, "h_then");
    const BlockId else_b = b.block(fn, est_calls * 0.5, "h_else");
    const BlockId join = b.block(fn, est_calls, "h_join");
    const BlockId tail =
        has_call ? b.block(fn, est_calls, "h_tail") : join;

    const auto s_heap = b.stream(
        AddrStream::randomIn(0x0800'2020, 96 * 1024));

    b.setInsertPoint(fn, entry);
    const ValueId p = b.emitConst(RegClass::Int, 0x800000, "p");
    // Pass-local analysis state live across the whole helper.
    const ValueId flags = b.emitConst(RegClass::Int, 3, "flags");
    const ValueId depth = b.emitConst(RegClass::Int, 5, "depth");
    const ValueId costv = b.emitConst(RegClass::Int, 7, "cost");
    const ValueId node = b.emitLoad(Op::Ldl, s_heap, p, "node");
    const ValueId tag = b.emitRRI(Op::And, node, 0x1f, "tag");
    const ValueId c = b.emitRRI(Op::CmpLt, tag, 12, "c");
    const double bias = 0.3 + 0.4 * rng.nextDouble();
    b.emitBranch(Op::Bne, c, b.branch(BranchModel::bernoulli(bias)));
    b.edge(fn, entry, else_b);
    b.edge(fn, entry, then_b);

    b.setInsertPoint(fn, then_b);
    const ValueId t1 = b.emitRRI(Op::Sll, node, 2, "t1");
    const ValueId t2 = b.emitRRR(Op::Add, t1, tag, "t2");
    const ValueId t3 = b.emitRRR(Op::Xor, t2, node, "t3");
    b.emitStore(Op::Stl, t3, s_heap, t2);
    b.emitRRRTo(costv, Op::Add, costv, t1);
    b.emitRRRTo(flags, Op::Or, flags, tag);
    b.emitBr();
    b.edge(fn, then_b, join);

    b.setInsertPoint(fn, else_b);
    const ValueId u1 = b.emitRRI(Op::Srl, node, 3, "u1");
    const ValueId u2 = b.emitRRR(Op::Sub, u1, tag, "u2");
    const ValueId u3 = b.emitLoad(Op::Ldl, s_heap, u2, "u3");
    const ValueId u4 = b.emitRRR(Op::Or, u3, u2, "u4");
    b.emitStore(Op::Stl, u4, s_heap, u3);
    b.emitRRRTo(costv, Op::Add, costv, u1);
    b.emitRRRTo(depth, Op::Add, depth, flags);
    b.edge(fn, else_b, join);

    b.setInsertPoint(fn, join);
    const ValueId verdict = b.emitRRR(Op::Add, costv, depth, "verdict");
    b.emitStore(Op::Stl, verdict, s_heap, flags);
    if (has_call) {
        b.emitJsr(callee);
        b.edge(fn, join, tail);
        b.setInsertPoint(fn, tail);
    }
    b.emitRet();
}

} // namespace

/**
 * gcc1-like workload: a branchy integer "compiler" — a dispatch loop
 * switching over synthetic IR opcodes into two dozen handlers, each
 * calling into a tree of small helper functions with biased,
 * hard-to-predict branches and pointer-chasing heap accesses.
 */
prog::Program
makeGcc1(const WorkloadParams &params)
{
    Builder b("gcc1");
    emitPreamble(b);
    Rng rng(0x9cc1);

    const auto trips =
        static_cast<std::uint64_t>(4500 * params.scale) + 1;
    constexpr unsigned kHandlers = 24;

    const FunctionId fn = b.function("main");

    // Two levels of helpers: every handler calls a level-1 helper that
    // itself calls a level-2 leaf.
    std::vector<FunctionId> l1, l2;
    for (unsigned i = 0; i < kHandlers; ++i)
        l2.push_back(b.function("leaf" + std::to_string(i)));
    for (unsigned i = 0; i < kHandlers; ++i)
        l1.push_back(b.function("pass" + std::to_string(i)));

    const BlockId m_init = b.block(fn, 1, "init");
    const BlockId m_head = b.block(fn, static_cast<double>(trips),
                                   "dispatch");
    const BlockId m_latch = b.block(fn, static_cast<double>(trips),
                                    "latch");
    const BlockId m_end = b.block(fn, 1, "end");

    const auto s_ir = b.stream(AddrStream::strided(0x0700'4148, 8,
                                                   1024 * 1024));

    b.setInsertPoint(fn, m_init);
    const ValueId n = b.emitConst(RegClass::Int, 0, "n");
    const ValueId ir = b.emitConst(RegClass::Int, 0x700000, "ir");
    b.edge(fn, m_init, m_head);

    // Dispatch: load the next IR op and switch on it.
    b.setInsertPoint(fn, m_head);
    const ValueId op = b.emitLoad(Op::Ldl, s_ir, ir, "op");
    const ValueId sel = b.emitRRI(Op::And, op, kHandlers - 1, "sel");
    b.emitJmp(sel);

    // Handlers: each does local work then calls its pass helper.
    std::vector<double> weights;
    for (unsigned h = 0; h < kHandlers; ++h) {
        // Skewed handler popularity, like real opcode frequencies.
        const double w = 1.0 / (1.0 + h * 0.35);
        weights.push_back(w);
        const BlockId hb = b.block(fn, trips * w / kHandlers,
                                   "handler" + std::to_string(h));
        const BlockId hc = b.block(fn, trips * w / kHandlers,
                                   "hcont" + std::to_string(h));
        b.edge(fn, m_head, hb);

        b.setInsertPoint(fn, hb);
        const ValueId a1 = b.emitRRI(Op::Add, op, 17 + h, "a1");
        const ValueId a2 = b.emitRRR(Op::Xor, a1, sel, "a2");
        const ValueId a3 = b.emitRRI(Op::Sll, a2, (h % 5) + 1, "a3");
        b.emitStore(Op::Stl, a3, s_ir, a2);
        b.emitJsr(l1[h]);
        b.edge(fn, hb, hc);

        b.setInsertPoint(fn, hc);
        b.emitBr();
        b.edge(fn, hc, m_latch);
    }
    b.succWeights(fn, m_head, weights);

    b.setInsertPoint(fn, m_latch);
    emitLoopLatch(b, n, static_cast<std::int64_t>(trips), trips);
    b.edge(fn, m_latch, m_end);
    b.edge(fn, m_latch, m_head);

    b.setInsertPoint(fn, m_end);
    b.emitRet();

    // Helper bodies.
    for (unsigned i = 0; i < kHandlers; ++i)
        emitHelper(b, l2[i], rng, trips * weights[i] / kHandlers,
                   prog::kNoFunction);
    for (unsigned i = 0; i < kHandlers; ++i)
        emitHelper(b, l1[i], rng, trips * weights[i] / kHandlers, l2[i]);

    return b.build();
}

} // namespace mca::workloads
