#include "workloads/workloads.hh"

#include "workloads/util.hh"

namespace mca::workloads
{

using namespace detail;

namespace
{

/**
 * Emit one fp kernel function: a strided sweep whose body mixes divide
 * and multiply/add chains, with a biased internal diamond.
 */
void
emitKernel(Builder &b, FunctionId fn, std::uint64_t trip, bool heavy_div)
{
    const BlockId k_entry = b.block(fn, 1, "k_entry");
    const BlockId k_body = b.block(fn, static_cast<double>(trip),
                                   "k_body");
    const BlockId k_then =
        b.block(fn, static_cast<double>(trip) * 0.8, "k_then");
    const BlockId k_join = b.block(fn, static_cast<double>(trip),
                                   "k_join");
    const BlockId k_exit = b.block(fn, 1, "k_exit");

    const auto s_in = b.stream(AddrStream::strided(
        0x0500'0000 + 0x0010'2140 * fn, 8, 32 * 1024));
    const auto s_out = b.stream(AddrStream::strided(
        0x0600'5260 + 0x0010'3180 * fn, 8, 32 * 1024));

    b.setInsertPoint(fn, k_entry);
    const ValueId k = b.emitConst(RegClass::Int, 0, "k");
    const ValueId base = b.emitConst(RegClass::Int, 0x500000, "kb");
    const ValueId c1 = b.emitConst(RegClass::Fp, 3, "c1");
    const ValueId c2 = b.emitConst(RegClass::Fp, 7, "c2");
    // Hot shared coefficients live in global registers (paper §2.1:
    // globals suit "other commonly used variables"), so their reads
    // never cost an inter-cluster transfer.
    b.markGlobalCandidate(c1);
    b.markGlobalCandidate(c2);
    const ValueId sum = b.emitConst(RegClass::Fp, 0, "sum");
    // Cross-section physics state held in registers across the loop.
    const ValueId w1 = b.emitConst(RegClass::Fp, 11, "w1");
    const ValueId w2 = b.emitConst(RegClass::Fp, 13, "w2");
    const ValueId w3 = b.emitConst(RegClass::Fp, 17, "w3");
    const ValueId w4 = b.emitConst(RegClass::Fp, 19, "w4");
    b.edge(fn, k_entry, k_body);

    b.setInsertPoint(fn, k_body);
    const ValueId x = b.emitLoad(Op::Ldt, s_in, base, "x");
    const ValueId t1 = b.emitRRR(Op::MulF, x, c1, "t1");
    const ValueId t2 =
        b.emitRRR(heavy_div ? Op::DivD : Op::DivF, t1, c2, "t2");
    const ValueId t3 = b.emitRRR(Op::AddF, t2, sum, "t3");
    const ValueId t4 = b.emitRRR(Op::MulF, t3, x, "t4");
    const ValueId gate = b.emitRRR(Op::CmpF, t4, c1, "gate");
    b.emitBranch(Op::FBne, gate, b.branch(BranchModel::bernoulli(0.8)));
    b.edge(fn, k_body, k_join); // fall-through
    b.edge(fn, k_body, k_then); // taken

    b.setInsertPoint(fn, k_then);
    const ValueId u1 = b.emitRRR(Op::SubF, t4, t2, "u1");
    const ValueId u2 = b.emitRRR(Op::DivF, u1, c1, "u2");
    b.emitRRRTo(sum, Op::AddF, sum, u2);
    b.emitStore(Op::Stt, u2, s_out, base);
    b.emitBr();
    b.edge(fn, k_then, k_join);

    b.setInsertPoint(fn, k_join);
    b.emitRRRTo(sum, Op::AddF, sum, t4);
    b.emitRRRTo(w1, Op::AddF, w1, t2);
    b.emitRRRTo(w2, Op::MulF, w2, c1);
    b.emitRRRTo(w3, Op::AddF, w3, w1);
    b.emitRRRTo(w4, Op::SubF, w4, w2);
    emitLoopLatch(b, k, static_cast<std::int64_t>(trip), trip);
    b.edge(fn, k_join, k_exit);
    b.edge(fn, k_join, k_body);

    b.setInsertPoint(fn, k_exit);
    b.emitStore(Op::Stt, sum, s_out, base);
    b.emitRet();
}

} // namespace

/**
 * doduc-like workload: a Monte-Carlo-style nuclear-reactor simulation
 * stand-in — floating-point heavy, many divides (both precisions),
 * moderately predictable branches, and a main loop that calls three fp
 * kernels (exercising call-crossing live ranges).
 */
prog::Program
makeDoduc(const WorkloadParams &params)
{
    Builder b("doduc");
    emitPreamble(b);

    const auto outer =
        static_cast<std::uint64_t>(550 * params.scale) + 1;

    const FunctionId fn = b.function("main");
    const FunctionId k1 = b.function("kernel1");
    const FunctionId k2 = b.function("kernel2");
    const FunctionId k3 = b.function("kernel3");

    const BlockId m_init = b.block(fn, 1, "init");
    const BlockId m_body = b.block(fn, static_cast<double>(outer),
                                   "body");
    const BlockId m_c1 = b.block(fn, static_cast<double>(outer), "c1");
    const BlockId m_c2 = b.block(fn, static_cast<double>(outer), "c2");
    const BlockId m_c3 = b.block(fn, static_cast<double>(outer), "c3");
    const BlockId m_latch = b.block(fn, static_cast<double>(outer),
                                    "latch");
    const BlockId m_end = b.block(fn, 1, "end");

    b.setInsertPoint(fn, m_init);
    const ValueId n = b.emitConst(RegClass::Int, 0, "n");
    const ValueId e1 = b.emitConst(RegClass::Fp, 2, "e1");
    const ValueId e2 = b.emitConst(RegClass::Fp, 5, "e2");
    b.markGlobalCandidate(e1);
    b.markGlobalCandidate(e2);
    const ValueId flux = b.emitConst(RegClass::Fp, 1, "flux");
    b.edge(fn, m_init, m_body);

    // Glue fp work between calls keeps values live across them.
    b.setInsertPoint(fn, m_body);
    const ValueId g1 = b.emitRRR(Op::MulF, flux, e1, "g1");
    const ValueId g2 = b.emitRRR(Op::DivD, g1, e2, "g2");
    b.emitRRRTo(flux, Op::AddF, g2, e1);
    b.emitJsr(k1);
    b.edge(fn, m_body, m_c1);

    b.setInsertPoint(fn, m_c1);
    const ValueId g3 = b.emitRRR(Op::SubF, flux, g2, "g3");
    b.emitRRRTo(flux, Op::MulF, g3, e1);
    b.emitJsr(k2);
    b.edge(fn, m_c1, m_c2);

    b.setInsertPoint(fn, m_c2);
    const ValueId g4 = b.emitRRR(Op::AddF, flux, e2, "g4");
    b.emitRRRTo(flux, Op::DivF, g4, e1);
    b.emitJsr(k3);
    b.edge(fn, m_c2, m_c3);

    b.setInsertPoint(fn, m_c3);
    b.emitRRRTo(flux, Op::MulF, flux, e2);
    b.emitBr();
    b.edge(fn, m_c3, m_latch);

    b.setInsertPoint(fn, m_latch);
    emitLoopLatch(b, n, static_cast<std::int64_t>(outer), outer);
    b.edge(fn, m_latch, m_end);
    b.edge(fn, m_latch, m_body);

    b.setInsertPoint(fn, m_end);
    b.emitRet();

    emitKernel(b, k1, 9, false);
    emitKernel(b, k2, 6, true);
    emitKernel(b, k3, 11, false);

    return b.build();
}

} // namespace mca::workloads
