#include "harness/experiment.hh"

#include "exec/trace.hh"
#include "support/panic.hh"

namespace mca::harness
{

RunStats
simulate(const prog::MachProgram &binary, const isa::RegisterMap &map,
         core::ProcessorConfig base, std::uint64_t trace_seed,
         std::uint64_t max_insts, Cycle max_cycles)
{
    base.regMap = map;
    MCA_ASSERT(map.numClusters() == base.numClusters,
               "register map does not match machine cluster count");

    StatGroup stats(binary.name);
    exec::ProgramTrace trace(binary, trace_seed, max_insts);
    core::Processor cpu(base, trace, stats);
    obs::CycleStack cstack;
    cpu.attachCycleStack(&cstack);
    const core::SimResult result = cpu.run(max_cycles);
    MCA_ASSERT(cstack.conserved(),
               "cycle-stack conservation violated for ", binary.name);

    RunStats out;
    out.cycles = result.cycles;
    out.retired = result.instructions;
    out.ipc = stats.formulaAt("sim.ipc");
    out.distSingle = stats.counterAt("dist.single").value();
    out.distDual = stats.counterAt("dist.dual").value();
    out.operandForwards = stats.counterAt("dist.operand_forwards").value();
    out.resultForwards = stats.counterAt("dist.result_forwards").value();
    out.replays = stats.counterAt("replay.exceptions").value();
    out.issueDisorder = stats.counterAt("issue.disorder").value();
    out.bpredAccuracy = stats.formulaAt("bpred.accuracy");
    const auto dacc = stats.counterAt("dcache.accesses").value();
    const auto dmiss = stats.counterAt("dcache.misses").value();
    out.dcacheMissRate =
        dacc ? static_cast<double>(dmiss) / static_cast<double>(dacc)
             : 0.0;
    const auto iacc = stats.counterAt("icache.accesses").value();
    const auto imiss = stats.counterAt("icache.misses").value();
    out.icacheMissRate =
        iacc ? static_cast<double>(imiss) / static_cast<double>(iacc)
             : 0.0;
    if (stats.hasCounter("l2.accesses")) {
        const auto l2acc = stats.counterAt("l2.accesses").value();
        const auto l2miss = stats.counterAt("l2.misses").value();
        out.l2MissRate = l2acc ? static_cast<double>(l2miss) /
                                     static_cast<double>(l2acc)
                               : 0.0;
    }
    out.completed = result.completed;
    out.cycleStack = cstack;
    return out;
}

Table2Row
runTable2Row(const workloads::BenchmarkInfo &bench,
             const ExperimentOptions &options)
{
    Table2Row row;
    row.benchmark = bench.name;

    const prog::Program program = bench.make(options.workload);

    // Native binary (cluster-unaware compilation).
    compiler::CompileOptions nopt = compiler::compileOptionsFor("native", 1);
    nopt.profileSeed = options.traceSeed;
    const auto native = compiler::compile(program, nopt);

    // Rescheduled binary (local scheduler, dual-cluster target).
    compiler::CompileOptions lopt = compiler::compileOptionsFor("local", 2);
    lopt.imbalanceThreshold = options.imbalanceThreshold;
    lopt.profileSeed = options.traceSeed;
    const auto local = compiler::compile(program, lopt);
    row.spillLoadsLocal = local.alloc.spillLoadsInserted;
    row.spillStoresLocal = local.alloc.spillStoresInserted;
    row.otherClusterSpills = local.alloc.otherClusterSpills;

    const auto singleCfg = options.eightWay
                               ? core::ProcessorConfig::singleCluster8()
                               : core::ProcessorConfig::singleCluster4();
    const auto dualCfg = options.eightWay
                             ? core::ProcessorConfig::dualCluster8()
                             : core::ProcessorConfig::dualCluster4();

    row.single = simulate(native.binary, native.hardwareMap(1), singleCfg,
                          options.traceSeed, options.maxInsts);
    row.dualNone = simulate(native.binary, native.hardwareMap(2), dualCfg,
                            options.traceSeed, options.maxInsts);
    row.dualLocal = simulate(local.binary, local.hardwareMap(2), dualCfg,
                             options.traceSeed, options.maxInsts);

    auto pct = [&](const RunStats &dual) {
        return 100.0 - 100.0 * (static_cast<double>(dual.cycles) /
                                static_cast<double>(row.single.cycles));
    };
    row.pctNone = pct(row.dualNone);
    row.pctLocal = pct(row.dualLocal);
    return row;
}

std::vector<Table2Row>
runTable2(const ExperimentOptions &options)
{
    std::vector<Table2Row> rows;
    for (const auto &bench : workloads::allBenchmarks())
        rows.push_back(runTable2Row(bench, options));
    return rows;
}

const std::vector<PaperTable2Entry> &
paperTable2()
{
    static const std::vector<PaperTable2Entry> kPaper = {
        {"compress", -14, +6},  {"doduc", -21, -15},
        {"gcc1", -15, -10},     {"ora", -5, -22},
        {"su2cor", -36, -25},   {"tomcatv", -41, -19},
    };
    return kPaper;
}

} // namespace mca::harness
