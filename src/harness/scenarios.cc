#include "harness/scenarios.hh"

#include <sstream>

#include "core/processor.hh"
#include "exec/trace.hh"
#include "isa/distribution.hh"
#include "support/panic.hh"

namespace mca::harness
{

namespace
{

using isa::intReg;
using isa::Op;

/**
 * Scenario fixture: producer writes `produced`; the add reads
 * {src_a, src_b} and writes `dest`. With the default even/odd map,
 * even registers live in cluster 0 and odd registers in cluster 1.
 */
struct ScenarioSpec
{
    unsigned number;
    std::string title;
    std::string description;
    isa::RegId produced;
    isa::RegId srcA;
    isa::RegId srcB;
    isa::RegId dest;
    bool destGlobal;
};

ScenarioResult
runOne(const ScenarioSpec &spec,
       core::ProcessorConfig::IssueEngine engine)
{
    core::ProcessorConfig cfg = core::ProcessorConfig::dualCluster8();
    cfg.issueEngine = engine;
    if (spec.destGlobal)
        cfg.regMap.setGlobal(spec.dest);

    // Two-instruction trace: mull produced = srcA * srcA; add dest =
    // srcA + srcB. The multiply's 6-cycle latency separates the copies'
    // issue times the way the paper's figures draw them.
    std::vector<exec::DynInst> insts;
    {
        exec::DynInst p;
        p.mi = isa::makeRRR(Op::Mull, spec.produced, intReg(4),
                            intReg(4));
        insts.push_back(p);
        exec::DynInst a;
        a.mi = isa::makeRRR(Op::Add, spec.dest, spec.srcA, spec.srcB);
        insts.push_back(a);
    }
    exec::VectorTrace trace(exec::VectorTrace::normalize(insts));

    StatGroup stats("scenario" + std::to_string(spec.number));
    core::Processor cpu(cfg, trace, stats);
    core::TimelineRecorder recorder;
    cpu.attachTimeline(&recorder);
    obs::CycleStack cstack;
    cpu.attachCycleStack(&cstack);
    const auto result = cpu.run(10'000);
    MCA_ASSERT(result.completed, "scenario did not drain");

    ScenarioResult out;
    out.number = spec.number;
    out.title = spec.title;
    out.description = spec.description;
    out.producerEvents = recorder.forInst(0);
    out.addEvents = recorder.forInst(1);
    out.totalCycles = result.cycles;
    const auto dist = isa::decideDistribution(
        isa::makeRRR(Op::Add, spec.dest, spec.srcA, spec.srcB),
        cfg.regMap);
    out.dual = dist.isDual();
    out.stack = cstack;
    return out;
}

} // namespace

std::vector<ScenarioResult>
runScenarios()
{
    return runScenarios(core::ProcessorConfig{}.issueEngine);
}

std::vector<ScenarioResult>
runScenarios(core::ProcessorConfig::IssueEngine engine)
{
    // Even register -> cluster 0 ("C1" in the paper's figures), odd ->
    // cluster 1 ("C2").
    std::vector<ScenarioSpec> specs = {
        {1, "all three registers local to one cluster",
         "single distribution; no transfers (paper scenario one)",
         intReg(2), intReg(2), intReg(6), intReg(8), false},
        {2, "source in the other cluster",
         "operand forwarded through the operand transfer buffer "
         "(paper Figure 2)",
         intReg(3), intReg(3), intReg(2), intReg(6), false},
        {3, "destination in the other cluster",
         "result forwarded through the result transfer buffer "
         "(paper Figure 3)",
         intReg(2), intReg(2), intReg(6), intReg(9), false},
        {4, "global destination",
         "both clusters allocate the destination; result forwarded to "
         "the slave's copy (paper Figure 4)",
         intReg(2), intReg(2), intReg(6), intReg(8), true},
        {5, "split sources and global destination",
         "operand forwarded one way, result the other; the slave "
         "suspends then wakes (paper Figure 5)",
         intReg(3), intReg(2), intReg(3), intReg(8), true},
    };

    std::vector<ScenarioResult> results;
    for (const auto &spec : specs)
        results.push_back(runOne(spec, engine));
    return results;
}

std::string
formatScenario(const ScenarioResult &scenario)
{
    std::ostringstream oss;
    oss << "Scenario " << scenario.number << ": " << scenario.title
        << "\n  (" << scenario.description << ")\n"
        << "  distribution: " << (scenario.dual ? "dual" : "single")
        << "\n";
    oss << "  producer (mull, 6-cycle):\n";
    for (const auto &ev : scenario.producerEvents)
        oss << "    cycle " << ev.cycle << "  cluster " << ev.cluster
            << "  " << core::timelineEventName(ev.event) << "\n";
    oss << "  add:\n";
    for (const auto &ev : scenario.addEvents)
        oss << "    cycle " << ev.cycle << "  cluster " << ev.cluster
            << "  " << core::timelineEventName(ev.event) << "\n";
    return oss.str();
}

} // namespace mca::harness
