#include "harness/lockstep.hh"

#include <sstream>

#include "core/processor.hh"
#include "core/timeline.hh"
#include "exec/trace.hh"
#include "obs/cycle_stack.hh"
#include "support/panic.hh"
#include "support/stats.hh"

namespace mca::harness
{

namespace
{

/** One engine's full observable output. */
struct Observed
{
    Cycle cycles = 0;
    std::uint64_t retired = 0;
    bool completed = false;
    std::string statsJson;
    core::TimelineRecorder timeline;
    obs::CycleStack stack;
};

std::string
describeRecord(const core::TimelineRecord &r)
{
    std::ostringstream oss;
    oss << "cycle " << r.cycle << " seq " << r.seq << " cluster "
        << r.cluster << " " << core::timelineEventName(r.event);
    return oss.str();
}

/**
 * Compare every observable of two finished runs. Returns the first
 * difference found, or an empty string.
 */
std::string
compareObserved(const Observed &ref, const Observed &alt,
                const std::string &alt_name)
{
    std::ostringstream oss;
    if (ref.cycles != alt.cycles) {
        oss << alt_name << ": cycles " << alt.cycles << " != reference "
            << ref.cycles;
        return oss.str();
    }
    if (ref.retired != alt.retired) {
        oss << alt_name << ": retired " << alt.retired
            << " != reference " << ref.retired;
        return oss.str();
    }
    if (ref.completed != alt.completed) {
        oss << alt_name << ": completed " << alt.completed
            << " != reference " << ref.completed;
        return oss.str();
    }
    const auto &rr = ref.timeline.records();
    const auto &ar = alt.timeline.records();
    if (rr.size() != ar.size()) {
        oss << alt_name << ": " << ar.size()
            << " timeline records != reference " << rr.size();
        return oss.str();
    }
    for (std::size_t i = 0; i < rr.size(); ++i)
        if (rr[i].cycle != ar[i].cycle || rr[i].seq != ar[i].seq ||
            rr[i].cluster != ar[i].cluster ||
            rr[i].event != ar[i].event) {
            oss << alt_name << ": timeline record " << i << " is ["
                << describeRecord(ar[i]) << "] != reference ["
                << describeRecord(rr[i]) << "]";
            return oss.str();
        }
    if (!alt.stack.conserved()) {
        oss << alt_name << ": cycle stack violates conservation ("
            << alt.stack.totalSlotCycles() << " slot-cycles over "
            << alt.stack.cycles << " cycles of " << alt.stack.slots
            << " slots)";
        return oss.str();
    }
    if (ref.stack.cycles != alt.stack.cycles ||
        ref.stack.slotCycles != alt.stack.slotCycles) {
        for (std::size_t c = 0; c < obs::kNumStallCauses; ++c)
            if (ref.stack.slotCycles[c] != alt.stack.slotCycles[c]) {
                oss << alt_name << ": cycle-stack cause "
                    << obs::stallCauseName(
                           static_cast<obs::StallCause>(c))
                    << " = " << alt.stack.slotCycles[c]
                    << " != reference " << ref.stack.slotCycles[c];
                return oss.str();
            }
        oss << alt_name << ": cycle-stack cycles " << alt.stack.cycles
            << " != reference " << ref.stack.cycles;
        return oss.str();
    }
    if (ref.statsJson != alt.statsJson) {
        oss << alt_name << ": statistics JSON differs from reference";
        return oss.str();
    }
    return {};
}

} // namespace

LockstepResult
runLockstep(const prog::MachProgram &binary, const isa::RegisterMap &map,
            core::ProcessorConfig base, std::uint64_t trace_seed,
            std::uint64_t max_insts, Cycle max_cycles)
{
    base.regMap = map;
    MCA_ASSERT(map.numClusters() == base.numClusters,
               "register map does not match machine cluster count");

    LockstepResult out;
    out.workload = binary.name;

    // Build one (engine, idleSkip) leg. The StatGroup name is shared so
    // the JSON dumps are byte-comparable.
    struct Leg
    {
        Leg(const prog::MachProgram &binary,
            const core::ProcessorConfig &cfg, std::uint64_t seed,
            std::uint64_t max_insts)
            : stats(binary.name), trace(binary, seed, max_insts),
              cpu(cfg, trace, stats)
        {
            cpu.attachTimeline(&obs.timeline);
            cpu.attachCycleStack(&obs.stack);
        }

        void
        finish(core::SimResult result)
        {
            obs.cycles = result.cycles;
            obs.retired = result.instructions;
            obs.completed = result.completed;
            std::ostringstream oss;
            stats.dumpJson(oss);
            obs.statsJson = oss.str();
        }

        StatGroup stats;
        exec::ProgramTrace trace;
        core::Processor cpu;
        Observed obs;
    };

    core::ProcessorConfig scanCfg = base;
    scanCfg.issueEngine = core::ProcessorConfig::IssueEngine::Scan;
    scanCfg.idleSkip = false;
    core::ProcessorConfig eventCfg = base;
    eventCfg.issueEngine = core::ProcessorConfig::IssueEngine::Event;

    // ---- Proof 1: stepwise lockstep, Scan vs Event -------------------
    {
        Leg scan(binary, scanCfg, trace_seed, max_insts);
        Leg event(binary, eventCfg, trace_seed, max_insts);
        bool drained = false;
        for (Cycle cycle = 0; cycle < max_cycles; ++cycle) {
            const bool scanLive = scan.cpu.step();
            const bool eventLive = event.cpu.step();
            if (scanLive != eventLive) {
                std::ostringstream oss;
                oss << "stepwise: engines disagree on pipeline-empty at "
                    << "cycle " << cycle << " (scan " << scanLive
                    << ", event " << eventLive << ")";
                out.divergence = oss.str();
                break;
            }
            if (scan.cpu.retiredInstructions() !=
                event.cpu.retiredInstructions()) {
                std::ostringstream oss;
                oss << "stepwise: retired "
                    << event.cpu.retiredInstructions() << " (event) != "
                    << scan.cpu.retiredInstructions()
                    << " (scan) after cycle " << cycle;
                out.divergence = oss.str();
                break;
            }
            if (!scanLive) {
                drained = true;
                break;
            }
        }
        scan.finish({scan.cpu.now(), scan.cpu.retiredInstructions(),
                     drained});
        event.finish({event.cpu.now(), event.cpu.retiredInstructions(),
                      drained});
        out.cycles = scan.obs.cycles;
        out.retired = scan.obs.retired;
        if (out.divergence.empty())
            out.divergence = compareObserved(scan.obs, event.obs,
                                             "stepwise event engine");

        // ---- Proof 2: Event engine with idle fast-forward ------------
        if (out.divergence.empty()) {
            Leg ff(binary, eventCfg, trace_seed, max_insts);
            const auto result = ff.cpu.run(max_cycles);
            ff.finish(result);
            out.divergence =
                compareObserved(scan.obs, ff.obs, "fast-forward run");
            out.cyclesSkipped = ff.cpu.steppedCycles() <= result.cycles
                                    ? result.cycles -
                                          ff.cpu.steppedCycles()
                                    : 0;
        }
    }

    out.identical = out.divergence.empty();
    return out;
}

} // namespace mca::harness
