/**
 * @file
 * The example control-flow graph of the paper's Figure 6.
 *
 * Five basic blocks with dynamic-execution estimates (20, 10, 10, 100,
 * 20); live range S (the stack pointer) is a global-register candidate,
 * A, B, C, D, E, G, H are local candidates. The local scheduler must
 * traverse the blocks in the order 4, 1, 5, 3, 2 and assign the live
 * ranges in the order C, G, B, A, E, D, H.
 */

#ifndef MCA_HARNESS_FIGURE6_HH
#define MCA_HARNESS_FIGURE6_HH

#include <map>
#include <string>

#include "prog/cfg.hh"

namespace mca::harness
{

/** The Figure-6 program plus name lookups for checking the result. */
struct Figure6
{
    prog::Program program;
    /** Live ranges by paper name ("A".."H", "S"). */
    std::map<std::string, prog::ValueId> values;
    /** Block ids by paper number (1-5). */
    std::map<int, prog::BlockId> blocks;
};

/** Build the Figure-6 program (finalized, ready for the scheduler). */
Figure6 makeFigure6();

} // namespace mca::harness

#endif // MCA_HARNESS_FIGURE6_HH
