/**
 * @file
 * Experiment harness: compile-and-simulate pipelines and the Table-2
 * experiment (the paper's headline result).
 *
 * Methodology reproduced from §4: the *native* binary (cluster-unaware
 * compilation) runs on the single-cluster machine to give the baseline
 * cycle count; the same native binary runs on the dual-cluster machine
 * (Table 2 column "none"); and the binary rescheduled with the local
 * scheduler runs on the dual-cluster machine (column "local"). The
 * reported percentage is 100 - 100 * (C_dual / C_single): positive =
 * speedup, negative = slowdown.
 */

#ifndef MCA_HARNESS_EXPERIMENT_HH
#define MCA_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "compiler/pipeline.hh"
#include "core/config.hh"
#include "core/processor.hh"
#include "obs/cycle_stack.hh"
#include "workloads/workloads.hh"

namespace mca::harness
{

/** Flat snapshot of one simulation's key statistics. */
struct RunStats
{
    Cycle cycles = 0;
    std::uint64_t retired = 0;
    double ipc = 0.0;
    std::uint64_t distSingle = 0;
    std::uint64_t distDual = 0;
    std::uint64_t operandForwards = 0;
    std::uint64_t resultForwards = 0;
    std::uint64_t replays = 0;
    std::uint64_t issueDisorder = 0;
    double bpredAccuracy = 0.0;
    double dcacheMissRate = 0.0;
    double icacheMissRate = 0.0;
    /** Shared-L2 local miss rate; 0 when the machine has no L2. */
    double l2MissRate = 0.0;
    bool completed = false;
    /** Retire-slot stall attribution (always collected; cheap). */
    obs::CycleStack cycleStack;
};

/**
 * Simulate one binary on one machine.
 *
 * @param binary   Compiled program.
 * @param map      Register-to-cluster map the hardware should use
 *                 (normally CompileOutput::hardwareMap()).
 * @param base     Machine configuration (regMap is overwritten).
 * @param trace_seed  Seed for the trace interpreter.
 * @param max_insts   Trace-length bound.
 */
RunStats simulate(const prog::MachProgram &binary,
                  const isa::RegisterMap &map,
                  core::ProcessorConfig base, std::uint64_t trace_seed,
                  std::uint64_t max_insts,
                  Cycle max_cycles = 100'000'000);

/** Per-benchmark options for the Table-2 experiment. */
struct ExperimentOptions
{
    workloads::WorkloadParams workload;
    std::uint64_t traceSeed = 42;
    std::uint64_t maxInsts = 400'000;
    unsigned imbalanceThreshold = 4;
    /** true: 8-way machines (the paper's reported data); false: 4-way. */
    bool eightWay = true;
};

/** One row of the reproduced Table 2 (plus diagnostics). */
struct Table2Row
{
    std::string benchmark;
    RunStats single;      ///< native binary, single-cluster machine
    RunStats dualNone;    ///< native binary, dual-cluster machine
    RunStats dualLocal;   ///< rescheduled binary, dual-cluster machine
    double pctNone = 0.0; ///< 100 - 100*(dualNone/single)
    double pctLocal = 0.0;
    std::uint64_t spillLoadsLocal = 0;
    std::uint64_t spillStoresLocal = 0;
    std::uint64_t otherClusterSpills = 0;
};

/** Run one benchmark through the full Table-2 methodology. */
Table2Row runTable2Row(const workloads::BenchmarkInfo &bench,
                       const ExperimentOptions &options);

/** Run all six benchmarks (Table-2 order). */
std::vector<Table2Row> runTable2(const ExperimentOptions &options);

/** The paper's published Table 2, for side-by-side printing. */
struct PaperTable2Entry
{
    const char *benchmark;
    int pctNone;
    int pctLocal;
};

/** Published values: {-14,+6},{-21,-15},{-15,-10},{-5,-22},{-36,-25},{-41,-19}. */
const std::vector<PaperTable2Entry> &paperTable2();

} // namespace mca::harness

#endif // MCA_HARNESS_EXPERIMENT_HH
