#include "harness/figure6.hh"

#include "prog/builder.hh"

namespace mca::harness
{

Figure6
makeFigure6()
{
    using isa::Op;
    using isa::RegClass;

    prog::Builder b("figure6");
    Figure6 fig;

    // Live range S (the stack pointer) is the global-register candidate;
    // all others are local candidates (paper Figure 6 caption).
    const auto S = b.globalValue(RegClass::Int, "S");
    const auto A = b.value(RegClass::Int, "A");
    const auto B = b.value(RegClass::Int, "B");
    const auto C = b.value(RegClass::Int, "C");
    const auto D = b.value(RegClass::Int, "D");
    const auto E = b.value(RegClass::Int, "E");
    const auto G = b.value(RegClass::Int, "G");
    const auto H = b.value(RegClass::Int, "H");
    fig.values = {{"S", S}, {"A", A}, {"B", B}, {"C", C},
                  {"D", D}, {"E", E}, {"G", G}, {"H", H}};

    // Branch conditions are live-in values so they do not perturb the
    // assignment order of the named live ranges.
    const auto c1 = b.liveInValue(RegClass::Int, "c1");
    const auto c4 = b.liveInValue(RegClass::Int, "c4");
    const auto c5 = b.liveInValue(RegClass::Int, "c5");

    const auto fn = b.function("main");
    const auto b1 = b.block(fn, 20, "bb1");
    const auto b2 = b.block(fn, 10, "bb2");
    const auto b3 = b.block(fn, 10, "bb3");
    const auto b4 = b.block(fn, 100, "bb4");
    const auto b5 = b.block(fn, 20, "bb5");
    const auto bend = b.block(fn, 1, "end");
    fig.blocks = {{1, b1}, {2, b2}, {3, b3}, {4, b4}, {5, b5}};

    // Block 1 (20): C = 0 ; E = 16.
    b.setInsertPoint(fn, b1);
    {
        prog::Instr in;
        in.op = Op::Lda;
        in.dest = C;
        in.imm = 0;
        b.emitRaw(in);
        in.dest = E;
        in.imm = 16;
        b.emitRaw(in);
    }
    b.emitBranch(Op::Bne, c1, b.branch(prog::BranchModel::bernoulli(0.5)));
    b.edge(fn, b1, b2); // fall-through
    b.edge(fn, b1, b3); // taken

    // Block 2 (10): G = [S] + 8 ; H = [S] + 4. Modeled as ALU ops so
    // the register references match the figure exactly.
    b.setInsertPoint(fn, b2);
    b.emitRRITo(G, Op::Add, S, 8);
    b.emitRRITo(H, Op::Add, S, 4);
    b.edge(fn, b2, b4);

    // Block 3 (10): G = [S] + E ; H = [S] + 12 ; S = H + E.
    b.setInsertPoint(fn, b3);
    b.emitRRRTo(G, Op::Add, S, E);
    b.emitRRITo(H, Op::Add, S, 12);
    b.emitRRRTo(S, Op::Add, H, E);
    b.edge(fn, b3, b4);

    // Block 4 (100): A = G + 10 ; B = A * A ; G = B / H ; C = G + C.
    // (The divide is a multi-cycle integer op in our ISA.)
    b.setInsertPoint(fn, b4);
    b.emitRRITo(A, Op::Add, G, 10);
    b.emitRRRTo(B, Op::Mull, A, A);
    b.emitRRRTo(G, Op::Mull, B, H);
    b.emitRRRTo(C, Op::Add, G, C);
    b.emitBranch(Op::Bne, c4, b.branch(prog::BranchModel::loop(5)));
    b.edge(fn, b4, b5); // fall-through: loop exit
    b.edge(fn, b4, b4); // taken: repeat

    // Block 5 (20): D = C + G.
    b.setInsertPoint(fn, b5);
    b.emitRRRTo(D, Op::Add, C, G);
    b.emitBranch(Op::Bne, c5, b.branch(prog::BranchModel::loop(20)));
    b.edge(fn, b5, bend); // fall-through: done
    b.edge(fn, b5, b1);   // taken: next outer iteration

    b.setInsertPoint(fn, bend);
    b.emitRet();

    fig.program = b.build();
    return fig;
}

} // namespace mca::harness
