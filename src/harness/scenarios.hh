/**
 * @file
 * The five execution scenarios of §2.1 (Figures 2-5), reproduced as
 * cycle-accurate event timelines.
 *
 * Each scenario builds a two-instruction trace — a 6-cycle producer
 * (integer multiply) that writes the interesting operand, followed by
 * the `add` instruction whose register placement realizes the scenario —
 * and runs it on the dual-cluster machine with a timeline recorder
 * attached. Registers are chosen so the default even/odd map yields the
 * paper's placements (with one register promoted to global for the
 * scenarios that need a global destination).
 */

#ifndef MCA_HARNESS_SCENARIOS_HH
#define MCA_HARNESS_SCENARIOS_HH

#include <string>
#include <vector>

#include "core/config.hh"
#include "core/timeline.hh"
#include "obs/cycle_stack.hh"

namespace mca::harness
{

struct ScenarioResult
{
    unsigned number = 0;
    std::string title;
    std::string description;
    /** Timeline of the scenario's add instruction. */
    std::vector<core::TimelineRecord> addEvents;
    /** Timeline of the producer feeding it. */
    std::vector<core::TimelineRecord> producerEvents;
    /** Total cycles the two-instruction program took. */
    Cycle totalCycles = 0;
    /** The add was dual-distributed. */
    bool dual = false;
    /** Retire-slot stall attribution of the whole scenario run. */
    obs::CycleStack stack;
};

/** Run all five scenarios on the paper's dual-cluster configuration. */
std::vector<ScenarioResult> runScenarios();

/**
 * Same, forcing a specific issue engine (default config otherwise).
 * The lockstep tests run both engines and require identical timelines.
 */
std::vector<ScenarioResult>
runScenarios(core::ProcessorConfig::IssueEngine engine);

/** Render one scenario as the text block the bench prints. */
std::string formatScenario(const ScenarioResult &scenario);

} // namespace mca::harness

#endif // MCA_HARNESS_SCENARIOS_HH
