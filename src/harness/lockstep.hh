/**
 * @file
 * Differential lockstep harness: proves the Event issue engine (and
 * the idle fast-forward) cycle-exact against the reference Scan
 * engine.
 *
 * Two proofs per workload:
 *
 *  1. **Stepwise**: two processors — one per engine — step() in
 *     lockstep over identical traces; after every cycle the retired
 *     counts must match. At drain the full timeline streams (every
 *     dispatch/issue/suspend/wake/complete/retire event with its
 *     cycle, sequence number, and cluster), the statistics JSON, and
 *     the cycle-stack slot attributions must be identical. The
 *     timeline comparison is the per-cycle issue-decision check: every
 *     issue is a timeline record keyed by cycle.
 *
 *  2. **Fast-forward**: the Event engine re-runs via run() with
 *     idleSkip enabled; final cycle count, retired count, statistics
 *     JSON, timeline, and cycle stack must equal the Scan reference,
 *     and the cycle stack must still conserve slots × cycles.
 *
 * Used by tests/lockstep_test.cc over all seven workloads (the six
 * Table-2 benchmarks plus a fuzzer program) and by the five §2.1
 * scenario reproductions (harness/scenarios.hh runs per-engine).
 */

#ifndef MCA_HARNESS_LOCKSTEP_HH
#define MCA_HARNESS_LOCKSTEP_HH

#include <cstdint>
#include <string>

#include "core/config.hh"
#include "prog/cfg.hh"
#include "support/types.hh"

namespace mca::harness
{

struct LockstepResult
{
    std::string workload;
    /** Total cycles of the reference (Scan) run. */
    Cycle cycles = 0;
    /** Instructions retired by the reference run. */
    std::uint64_t retired = 0;
    /** Cycles the fast-forward run skipped without stepping. */
    Cycle cyclesSkipped = 0;
    /** Both proofs passed. */
    bool identical = false;
    /** First divergence, empty when identical. */
    std::string divergence;
};

/**
 * Run both proofs on one binary/machine pair. `base.issueEngine` and
 * `base.idleSkip` are overwritten per leg.
 */
LockstepResult runLockstep(const prog::MachProgram &binary,
                           const isa::RegisterMap &map,
                           core::ProcessorConfig base,
                           std::uint64_t trace_seed,
                           std::uint64_t max_insts,
                           Cycle max_cycles = 100'000'000);

} // namespace mca::harness

#endif // MCA_HARNESS_LOCKSTEP_HH
