#include "timing/delay_model.hh"

#include <cmath>

#include "support/panic.hh"

namespace mca::timing
{

namespace
{

/** Gate-path width-growth exponent: (w'/w)^pg with 2^pg = kGateGrowth. */
const double kGateExp = std::log2(1.07);

} // namespace

double
DelayModel::wireShare(double feature_um) const
{
    MCA_ASSERT(feature_um > 0.01 && feature_um <= 2.0,
               "feature size out of modeled range");
    const double s =
        kWireShareBase * std::pow(kBaseFeature / feature_um,
                                  kWireShareExp);
    return s > 1.0 ? 1.0 : s;
}

double
DelayModel::criticalPathPs(unsigned issue_width, double feature_um) const
{
    MCA_ASSERT(issue_width >= 1, "issue width must be >= 1");
    const double s = wireShare(feature_um);
    const double w = static_cast<double>(issue_width) / 4.0;
    // Absolute 4-way delay: anchored at 1248 ps for 0.35 um; other nodes
    // use approximate constant-field scaling (only ratios are quoted by
    // the paper).
    const double base =
        kBaseDelay4WayPs * std::pow(feature_um / kBaseFeature, 0.8);
    return base * ((1.0 - s) * std::pow(w, kGateExp) + s * w * w);
}

double
DelayModel::widthGrowthRatio(unsigned from_width, unsigned to_width,
                             double feature_um) const
{
    return criticalPathPs(to_width, feature_um) /
           criticalPathPs(from_width, feature_um);
}

double
DelayModel::requiredClockReduction(double slowdown_pct)
{
    const double r = 1.0 + slowdown_pct / 100.0;
    MCA_ASSERT(r > 0, "bad slowdown");
    return 1.0 - 1.0 / r;
}

double
DelayModel::netSpeedupPercent(double cycle_ratio, unsigned single_width,
                              unsigned cluster_width,
                              double feature_um) const
{
    const double t_cluster = criticalPathPs(cluster_width, feature_um);
    const double t_single = criticalPathPs(single_width, feature_um);
    const double time_ratio = cycle_ratio * t_cluster / t_single;
    return 100.0 * (1.0 - time_ratio);
}

} // namespace mca::timing
