/**
 * @file
 * Analytical cycle-time (critical-path delay) model.
 *
 * Stands in for the Palacharla/Jouppi/Smith delay models the paper uses
 * for its cycle-time argument (§4.2). The model splits the worst-case
 * issue-path delay into a gate-dominated component (grows slowly with
 * issue width, scales with feature size) and a wire-dominated component
 * (grows quadratically with issue width, scales much less). The two free
 * calibration constants are set so the model reproduces the paper's
 * quoted data points exactly:
 *
 *   - 0.35 um: 1248 ps at 4-way, 1484 ps at 8-way (+18%);
 *   - 0.18 um: +82% growth from 4-way to 8-way.
 *
 * This is a calibrated reproduction of the published numbers, not an
 * independent circuit model; see DESIGN.md §2.
 */

#ifndef MCA_TIMING_DELAY_MODEL_HH
#define MCA_TIMING_DELAY_MODEL_HH

namespace mca::timing
{

class DelayModel
{
  public:
    /**
     * Fraction of the 4-way critical path that is wire-dominated at the
     * given feature size (um). Grows as features shrink.
     */
    double wireShare(double feature_um) const;

    /** Worst-case critical-path delay in picoseconds. */
    double criticalPathPs(unsigned issue_width, double feature_um) const;

    /** Ratio delay(to_width) / delay(from_width) at one feature size. */
    double widthGrowthRatio(unsigned from_width, unsigned to_width,
                            double feature_um) const;

    /**
     * Fractional clock-period reduction the clustered machine needs to
     * break even on a cycle-count slowdown (paper §4.2: a 25% slowdown
     * needs a 20% smaller clock period).
     *
     * @param slowdown_pct  Extra cycles in percent (e.g. 25 for +25%).
     */
    static double requiredClockReduction(double slowdown_pct);

    /**
     * Net run-time speedup (percent; positive = clustered machine is
     * faster) when a dual-cluster machine built from `cluster_width`-way
     * clusters replaces a `single_width`-way single-cluster machine and
     * needs `cycle_ratio` = cycles_dual / cycles_single.
     */
    double netSpeedupPercent(double cycle_ratio, unsigned single_width,
                             unsigned cluster_width,
                             double feature_um) const;

  private:
    // Calibration anchors (see file header).
    static constexpr double kBaseDelay4WayPs = 1248.0; // at 0.35 um
    static constexpr double kBaseFeature = 0.35;
    static constexpr double kGateGrowth = 1.07;  // 4->8 gate-path growth
    static constexpr double kWireGrowth = 4.0;   // 4->8 wire-path growth
    static constexpr double kWireShareBase = 0.037542;
    static constexpr double kWireShareExp = 2.8868;
};

} // namespace mca::timing

#endif // MCA_TIMING_DELAY_MODEL_HH
