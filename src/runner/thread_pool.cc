#include "runner/thread_pool.hh"

#include <algorithm>

namespace mca::runner
{

ThreadPool::ThreadPool(unsigned width)
{
    width = std::max(1u, width);
    workers_.reserve(width);
    for (unsigned i = 0; i < width; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
}

std::size_t
ThreadPool::pending() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return queue_.size();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock,
                            [this] { return shutdown_ || !queue_.empty(); });
            if (queue_.empty())
                return; // shutdown with nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --inFlight_;
            if (queue_.empty() && inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace mca::runner
