#include "runner/telemetry.hh"

#include <cstdio>
#include <stdexcept>

namespace mca::runner
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    for (const char *p = buf; *p; ++p)
        if ((*p >= 'a' && *p <= 'z' && *p != 'e') ||
            (*p >= 'A' && *p <= 'Z' && *p != 'E'))
            return "null";
    return buf;
}

} // namespace

TelemetryWriter::TelemetryWriter(const std::string &path)
    : out_(path, std::ios::trunc), start_(std::chrono::steady_clock::now())
{
    if (!out_)
        throw std::runtime_error("telemetry: cannot open '" + path +
                                 "' for writing");
}

double
TelemetryWriter::elapsedMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

void
TelemetryWriter::start(std::size_t total_jobs, unsigned jobs_width)
{
    out_ << "{\"event\":\"start\",\"total\":" << total_jobs
         << ",\"jobs\":" << jobs_width
         << ",\"elapsed_ms\":" << jsonDouble(elapsedMs()) << "}\n";
    out_.flush();
}

void
TelemetryWriter::onResult(std::size_t finished, std::size_t total,
                          const JobResult &result)
{
    const double elapsed = elapsedMs();
    simCycles_ += result.cycles;
    if (result.fromCache) {
        ++cacheHits_;
    } else {
        ++ran_;
        ranWallMs_ += result.wallMs;
    }

    // ETA from the mean wall time of jobs that actually executed,
    // scaled by the worker-pool speedup observed so far (ran jobs'
    // summed host time / campaign elapsed time covers both the pool
    // width and cache-hit short-circuits).
    double eta_ms = 0.0;
    const std::size_t remaining = total - finished;
    if (remaining > 0 && elapsed > 0.0 && finished > 0)
        eta_ms = elapsed / static_cast<double>(finished) *
                 static_cast<double>(remaining);

    const double cycles_per_sec =
        elapsed > 0.0 ? static_cast<double>(simCycles_) * 1000.0 / elapsed
                      : 0.0;

    out_ << "{\"event\":\"job\",\"done\":" << finished
         << ",\"total\":" << total
         << ",\"elapsed_ms\":" << jsonDouble(elapsed)
         << ",\"eta_ms\":" << jsonDouble(eta_ms)
         << ",\"sim_cycles\":" << simCycles_
         << ",\"sim_cycles_per_sec\":" << jsonDouble(cycles_per_sec)
         << ",\"cache_hits\":" << cacheHits_
         << ",\"cache_hit_rate\":"
         << jsonDouble(static_cast<double>(cacheHits_) /
                       static_cast<double>(finished))
         << ",\"host_ms\":" << jsonDouble(ranWallMs_)
         << ",\"job\":{\"key\":\""
         << jsonEscape(result.spec.canonicalKey())
         << "\",\"status\":\"" << jobStatusName(result.status)
         << "\",\"cycles\":" << result.cycles
         << ",\"wall_ms\":" << jsonDouble(result.wallMs)
         << ",\"from_cache\":" << (result.fromCache ? "true" : "false")
         << ",\"sampled\":" << (result.sampled ? "true" : "false")
         << "}}\n";
    out_.flush();
}

void
TelemetryWriter::finish(const CampaignSummary &summary)
{
    out_ << "{\"event\":\"summary\",\"total\":" << summary.total
         << ",\"ok\":" << summary.ok
         << ",\"timeout\":" << summary.timedOut
         << ",\"failed\":" << summary.failed
         << ",\"from_cache\":" << summary.fromCache
         << ",\"compiles\":" << summary.compiles
         << ",\"compile_cache_hits\":" << summary.compileHits
         << ",\"wall_ms\":" << jsonDouble(summary.wallMs)
         << ",\"sim_cycles\":" << simCycles_
         << ",\"host_ms\":" << jsonDouble(ranWallMs_)
         << ",\"jobs\":" << summary.jobs
         << ",\"critical_path_ms\":" << jsonDouble(summary.criticalPathMs)
         << ",\"max_queue_depth\":" << summary.maxQueueDepth << "}\n";
    out_.flush();
}

} // namespace mca::runner
