#include "runner/jobspec.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "compiler/pipeline.hh"
#include "prof/prof.hh"
#include "runner/artifact_store.hh"
#include "core/config.hh"
#include "harness/experiment.hh"
#include "sample/driver.hh"
#include "sample/spec.hh"
#include "workloads/workloads.hh"

namespace mca::runner
{

namespace
{

/** Shortest round-trippable decimal form, stable across platforms. */
std::string
canonicalDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

std::string
joinChoices(const std::vector<std::string> &choices)
{
    std::string out;
    for (const auto &c : choices) {
        if (!out.empty())
            out += "|";
        out += c;
    }
    return out;
}

void
requireOneOf(const std::string &value, const std::vector<std::string> &valid,
             const char *field)
{
    if (std::find(valid.begin(), valid.end(), value) == valid.end())
        throw std::runtime_error(std::string("unknown ") + field + " '" +
                                 value + "' (valid: " +
                                 joinChoices(valid) + ")");
}

} // namespace

core::ProcessorConfig
machineConfigFor(const JobSpec &spec)
{
    core::ProcessorConfig cfg;
    if (spec.machine == "single8")
        cfg = core::ProcessorConfig::singleCluster8();
    else if (spec.machine == "dual8")
        cfg = core::ProcessorConfig::dualCluster8();
    else if (spec.machine == "single4")
        cfg = core::ProcessorConfig::singleCluster4();
    else if (spec.machine == "dual4")
        cfg = core::ProcessorConfig::dualCluster4();
    else if (spec.machine == "quad8")
        cfg = core::ProcessorConfig::multiCluster8(4);
    else if (spec.machine == "octa8")
        cfg = core::ProcessorConfig::multiCluster8(8);
    else
        throw std::runtime_error("unknown machine '" + spec.machine + "'");

    if (!spec.predictor.empty()) {
        using Kind = core::ProcessorConfig::PredictorKind;
        if (spec.predictor == "mcfarling")
            cfg.predictor = Kind::McFarling;
        else if (spec.predictor == "gshare")
            cfg.predictor = Kind::Gshare;
        else if (spec.predictor == "bimodal")
            cfg.predictor = Kind::Bimodal;
        else if (spec.predictor == "taken")
            cfg.predictor = Kind::StaticTaken;
        else if (spec.predictor == "nottaken")
            cfg.predictor = Kind::StaticNotTaken;
        else
            throw std::runtime_error("unknown predictor '" +
                                     spec.predictor + "'");
    }

    cfg.memory.l2SizeBytes = static_cast<std::uint64_t>(spec.l2Kb) * 1024;
    cfg.memory.l2HitLatency = spec.l2Lat;
    cfg.memory.memLatency = spec.memLat;
    cfg.memory.icache.fillPorts = spec.fillPorts;
    cfg.memory.dcache.fillPorts = spec.fillPorts;
    cfg.memory.l2FillPorts = spec.fillPorts;
    cfg.memory.memPorts = spec.fillPorts;
    cfg.validate();
    return cfg;
}

compiler::CompileOptions
jobCompileOptions(const JobSpec &spec, unsigned machine_clusters)
{
    compiler::CompileOptions copt =
        compiler::compileOptionsFor(spec.scheduler, machine_clusters);
    copt.imbalanceThreshold = spec.threshold;
    copt.unrollFactor = spec.unroll;
    copt.profileSeed = spec.profileSeed;
    return copt;
}

std::string
JobSpec::canonicalKey() const
{
    std::ostringstream oss;
    oss << "benchmark=" << benchmark
        << ";scale=" << canonicalDouble(scale)
        << ";machine=" << machine
        << ";scheduler=" << scheduler
        << ";threshold=" << threshold
        << ";unroll=" << unroll
        << ";predictor=" << predictor
        << ";traceSeed=" << traceSeed
        << ";profileSeed=" << profileSeed
        << ";maxInsts=" << maxInsts
        << ";maxCycles=" << maxCycles
        << ";l2Kb=" << l2Kb
        << ";l2Lat=" << l2Lat
        << ";memLat=" << memLat
        << ";fillPorts=" << fillPorts
        << ";samplePeriod=" << samplePeriod
        << ";sampleDetail=" << sampleDetail
        << ";sampleWarmup=" << sampleWarmup;
    return oss.str();
}

std::string
JobSpec::contentHash() const
{
    // FNV-1a, 64-bit: stable across platforms and runs (unlike
    // std::hash, which the standard leaves unspecified).
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : canonicalKey()) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

void
JobSpec::validate() const
{
    requireOneOf(benchmark, validBenchmarks(), "benchmark");
    requireOneOf(machine, validMachines(), "machine");
    requireOneOf(scheduler, validSchedulers(), "scheduler");
    if (!predictor.empty())
        requireOneOf(predictor, validPredictors(), "predictor");
    if (maxInsts == 0)
        throw std::runtime_error("maxInsts must be positive");
    if (maxCycles == 0)
        throw std::runtime_error("maxCycles must be positive");
    if (samplePeriod > 0) {
        sample::SampleSpec sspec;
        sspec.period = samplePeriod;
        sspec.detail = sampleDetail;
        sspec.warmup = sampleWarmup;
        sspec.validate(); // overlap / zero-detail checks, same messages
    }
}

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
    case JobStatus::Ok: return "ok";
    case JobStatus::TimedOut: return "timeout";
    case JobStatus::Failed: return "failed";
    }
    return "unknown";
}

JobResult
runJob(const JobSpec &spec, ArtifactStore *store)
{
    JobResult out;
    out.spec = spec;
    PROF_SCOPE("runner.job");
    const auto start = std::chrono::steady_clock::now();
    try {
        spec.validate();

        const core::ProcessorConfig cfg = machineConfigFor(spec);
        const compiler::CompileOptions copt =
            jobCompileOptions(spec, cfg.numClusters);
        // Workload construction lives inside the builder so cache hits
        // skip it along with the compile.
        const auto build = [&] {
            PROF_SCOPE("runner.compile");
            workloads::WorkloadParams wp;
            wp.scale = spec.scale;
            const prog::Program program =
                workloads::benchmarkByName(spec.benchmark).make(wp);
            return compiler::compile(program, copt);
        };
        const std::shared_ptr<const compiler::CompileOutput> compiled =
            store ? store->getOrCompile(
                        ArtifactStore::compileKeyFor(spec, copt), build)
                  : std::make_shared<const compiler::CompileOutput>(
                        build());
        out.spillLoads = compiled->alloc.spillLoadsInserted;
        out.spillStores = compiled->alloc.spillStoresInserted;
        out.otherClusterSpills = compiled->alloc.otherClusterSpills;
        out.partitionCut = compiled->partitionStats.cutWeight;
        out.partitionBalance = compiled->partitionStats.balance;

        if (spec.samplePeriod > 0) {
            // Sampled job: one functional warming pass + K detailed
            // intervals instead of a full detailed run. The campaign
            // already parallelizes across jobs, so the driver runs its
            // intervals serially (no nested pools).
            sample::SampleSpec sspec;
            sspec.mode = sample::SampleSpec::Mode::Systematic;
            sspec.period = spec.samplePeriod;
            sspec.detail = spec.sampleDetail;
            sspec.warmup = spec.sampleWarmup;
            sspec.jobs = 1;
            core::ProcessorConfig scfg = cfg;
            scfg.regMap = compiled->hardwareMap(cfg.numClusters);
            sample::SampledDriver driver(compiled->binary, scfg,
                                         spec.traceSeed, spec.maxInsts);
            sample::SampleReport rep;
            {
                PROF_SCOPE("runner.sample");
                rep = driver.run(sspec);
            }
            if (!rep.allConserved)
                throw std::runtime_error(
                    "sampled interval violated cycle-stack conservation");
            out.sampled = true;
            out.sampledIntervals = rep.intervals.size();
            out.cpiCi95 = rep.cpiCi95;
            out.retired = rep.totalInsts;
            out.cycles = static_cast<Cycle>(rep.estTotalCycles + 0.5);
            out.ipc = rep.cpiMean > 0.0 ? 1.0 / rep.cpiMean : 0.0;
            // Stall attribution summed over the measured windows; each
            // interval conserves, so the sum does too.
            if (!rep.intervals.empty())
                out.stackSlots = rep.intervals.front().stack.slots;
            for (const auto &iv : rep.intervals)
                for (std::size_t i = 0; i < obs::kNumStallCauses; ++i)
                    out.stackSlotCycles[i] += iv.stack.slotCycles[i];
            out.status = JobStatus::Ok;
            out.wallMs = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
            return out;
        }

        harness::RunStats stats;
        {
            PROF_SCOPE("runner.simulate");
            stats = harness::simulate(
                compiled->binary, compiled->hardwareMap(cfg.numClusters),
                cfg, spec.traceSeed, spec.maxInsts, spec.maxCycles);
        }

        out.cycles = stats.cycles;
        out.retired = stats.retired;
        out.ipc = stats.ipc;
        out.distSingle = stats.distSingle;
        out.distDual = stats.distDual;
        out.operandForwards = stats.operandForwards;
        out.resultForwards = stats.resultForwards;
        out.replays = stats.replays;
        out.issueDisorder = stats.issueDisorder;
        out.bpredAccuracy = stats.bpredAccuracy;
        out.dcacheMissRate = stats.dcacheMissRate;
        out.icacheMissRate = stats.icacheMissRate;
        out.l2MissRate = stats.l2MissRate;
        out.stackSlotCycles = stats.cycleStack.slotCycles;
        out.stackSlots = stats.cycleStack.slots;
        out.status = stats.completed ? JobStatus::Ok : JobStatus::TimedOut;
        if (out.status == JobStatus::TimedOut)
            out.error = "cycle budget exhausted (" +
                        std::to_string(spec.maxCycles) + " cycles)";
    } catch (const std::exception &e) {
        out.status = JobStatus::Failed;
        out.error = e.what();
    }
    out.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    return out;
}

const std::vector<std::string> &
validMachines()
{
    static const std::vector<std::string> kMachines = {
        "single8", "dual8", "single4", "dual4", "quad8", "octa8",
    };
    return kMachines;
}

const std::vector<std::string> &
validSchedulers()
{
    static const std::vector<std::string> kSchedulers = {
        "native", "local", "roundrobin", "multilevel",
    };
    return kSchedulers;
}

const std::vector<std::string> &
validPredictors()
{
    static const std::vector<std::string> kPredictors = {
        "mcfarling", "gshare", "bimodal", "taken", "nottaken",
    };
    return kPredictors;
}

const std::vector<std::string> &
validBenchmarks()
{
    static const std::vector<std::string> kBenchmarks = [] {
        std::vector<std::string> names;
        for (const auto &bench : workloads::allBenchmarks())
            names.push_back(bench.name);
        return names;
    }();
    return kBenchmarks;
}

} // namespace mca::runner
