/**
 * @file
 * Live campaign telemetry: a JSONL heartbeat stream for mcarun.
 *
 * A TelemetryWriter hooks CampaignOptions::onResult and appends one
 * JSON object per settled job to a file (line-buffered, flushed per
 * record so `tail -f` and dashboards see progress live):
 *
 *   {"event":"start", "total":N, "jobs":W, ...}
 *   {"event":"job", "done":k, "total":N, "elapsed_ms":..,
 *    "eta_ms":.., "sim_cycles":.., "sim_cycles_per_sec":..,
 *    "cache_hits":.., "cache_hit_rate":.., "compile_cache_hits":..,
 *    "job":{"key":.., "status":.., "cycles":.., "wall_ms":..,
 *           "from_cache":..,"sampled":..}}
 *   {"event":"summary", ..., "critical_path_ms":..,
 *    "max_queue_depth":..}
 *
 * The summary's `critical_path_ms` and `max_queue_depth` come from the
 * task-graph executor (src/taskgraph): the longest compile→simulate
 * chain bounds the campaign at infinite width, and the peak ready-queue
 * depth shows how saturated the chosen --jobs width ran.
 *
 * `eta_ms` extrapolates the mean per-job wall time over the remaining
 * jobs; `sim_cycles_per_sec` is aggregate simulated throughput
 * (sum of job cycles / campaign elapsed), the campaign-level figure of
 * merit the ROADMAP's perf work optimizes. Per-job host time rides in
 * `job.wall_ms`, so the stream doubles as a host-time attribution
 * record across the campaign (cache hits report ~0 wall and are
 * excluded from the ETA model).
 *
 * Ordering/thread-safety: runCampaign invokes onResult under its
 * progress lock, so records are totally ordered and `done` increases
 * by exactly 1 per line — scripts/check_telemetry.py asserts this.
 */

#ifndef MCA_RUNNER_TELEMETRY_HH
#define MCA_RUNNER_TELEMETRY_HH

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>

#include "runner/campaign.hh"
#include "runner/jobspec.hh"

namespace mca::runner
{

class TelemetryWriter
{
  public:
    /** Opens @p path for truncating write; throws on failure. */
    explicit TelemetryWriter(const std::string &path);

    /** Emit the start record (with the resolved worker width); call
     *  once, before the campaign runs. */
    void start(std::size_t total_jobs, unsigned jobs_width);

    /** CampaignOptions::onResult-compatible per-job record. */
    void onResult(std::size_t finished, std::size_t total,
                  const JobResult &result);

    /** Emit the final summary record and flush. */
    void finish(const CampaignSummary &summary);

  private:
    double elapsedMs() const;

    std::ofstream out_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t simCycles_ = 0;
    std::size_t cacheHits_ = 0;
    std::size_t ran_ = 0;        ///< jobs that actually executed
    double ranWallMs_ = 0.0;     ///< their summed host time
};

} // namespace mca::runner

#endif // MCA_RUNNER_TELEMETRY_HH
